(* lfs_tool: manage LFS disk images from the command line.

   Images are raw files whose size is blocks * 4096 bytes; the simulated
   disk is loaded, operated on, and written back.  Examples:

     lfs_tool mkfs disk.img --blocks 16384
     lfs_tool put disk.img /docs/readme.txt ./README.md
     lfs_tool cat disk.img /docs/readme.txt
     lfs_tool ls disk.img /
     lfs_tool rm disk.img /docs/readme.txt
     lfs_tool fsck disk.img
     lfs_tool info disk.img
     lfs_tool clean disk.img
     lfs_tool recover disk.img *)

open Cmdliner

module Disk = Lfs_disk.Disk
module Fs = Lfs_core.Fs

let geometry_of_file path =
  let size =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)
  in
  if size mod 4096 <> 0 then failwith "image size is not a multiple of 4 KB";
  Lfs_disk.Geometry.wren_iv ~blocks:(size / 4096)

let load path = Disk.load_file (geometry_of_file path) path

let with_fs path f =
  let disk = load path in
  let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
  let result = f fs in
  Fs.unmount fs;
  Disk.save_file disk path;
  result

(* ---- arguments ---- *)

let image =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE" ~doc:"Disk image file")

let fs_path n =
  Arg.(required & pos n (some string) None & info [] ~docv:"PATH" ~doc:"Path inside the file system")

(* The --fs spec shared by serve/stats/crashtest: which implementation
   backs the run.  Grammar documented once in Spec.grammar_doc. *)
let spec_conv =
  let parse s =
    match Lfs_shard.Spec.parse s with
    | Ok t -> Ok t
    | Error e -> Error (`Msg e)
  in
  Arg.conv ~docv:"FS"
    (parse, fun ppf t -> Format.pp_print_string ppf (Lfs_shard.Spec.to_string t))

let fs_spec extra =
  Arg.(
    value
    & opt spec_conv Lfs_shard.Spec.Lfs
    & info [ "fs" ] ~docv:"FS"
        ~doc:
          (Printf.sprintf "File system backend.  Grammar: %s.  %s"
             Lfs_shard.Spec.grammar_doc extra))

let shards_override =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Override the shard count of a $(b,shard) spec (so scripts can \
           sweep counts without rewriting the spec); ignored for \
           single-device backends.")

(* ---- commands ---- *)

let mkfs_cmd =
  let blocks =
    Arg.(value & opt int 16384 & info [ "blocks" ] ~doc:"Disk size in 4 KB blocks")
  in
  let seg_blocks =
    Arg.(value & opt int 256 & info [ "segment-blocks" ] ~doc:"Blocks per segment")
  in
  let run image blocks seg_blocks =
    let geom = Lfs_disk.Geometry.wren_iv ~blocks in
    let disk = Disk.create geom in
    (* Size the inode map to the disk: one inode per two data blocks. *)
    let max_inodes = max 256 (min 65536 (blocks / 2)) in
    Fs.format (Lfs_disk.Vdev.of_disk disk) { Lfs_core.Config.default with seg_blocks; max_inodes };
    Disk.save_file disk image;
    Printf.printf "formatted %s: %d blocks, %d-block segments\n" image blocks seg_blocks
  in
  Cmd.v (Cmd.info "mkfs" ~doc:"Create a fresh LFS image")
    Term.(const run $ image $ blocks $ seg_blocks)

let put_cmd =
  let local = Arg.(required & pos 2 (some file) None & info [] ~docv:"LOCAL" ~doc:"Local file to copy in") in
  let run image path local =
    let data =
      let ic = open_in_bin local in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    with_fs image (fun fs ->
        (* Create parent directories as needed. *)
        let parts = List.filter (fun s -> s <> "") (String.split_on_char '/' path) in
        let rec mkdirs prefix = function
          | [] | [ _ ] -> ()
          | d :: rest ->
              let p = prefix ^ "/" ^ d in
              (if Fs.resolve fs p = None then ignore (Fs.mkdir_path fs p));
              mkdirs p rest
        in
        mkdirs "" parts;
        Fs.write_path fs path (Bytes.of_string data);
        Printf.printf "wrote %d bytes to %s\n" (String.length data) path)
  in
  Cmd.v (Cmd.info "put" ~doc:"Copy a local file into the image")
    Term.(const run $ image $ fs_path 1 $ local)

let cat_cmd =
  let run image path =
    let disk = load image in
    let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
    match Fs.read_path fs path with
    | Some data -> print_string (Bytes.to_string data)
    | None -> prerr_endline "no such path"; exit 1
  in
  Cmd.v (Cmd.info "cat" ~doc:"Print a file's contents")
    Term.(const run $ image $ fs_path 1)

let ls_cmd =
  let run image path =
    let disk = load image in
    let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
    match Fs.resolve fs path with
    | None -> prerr_endline "no such path"; exit 1
    | Some ino ->
        List.iter
          (fun (name, child) ->
            let st = Fs.stat fs child in
            Printf.printf "%c %8d  %s\n"
              (match st.Fs.st_ftype with
              | Lfs_core.Types.Directory -> 'd'
              | Lfs_core.Types.Regular -> '-')
              st.Fs.st_size name)
          (Fs.readdir fs ino)
  in
  Cmd.v (Cmd.info "ls" ~doc:"List a directory") Term.(const run $ image $ fs_path 1)

let rm_cmd =
  let run image path =
    with_fs image (fun fs ->
        match String.rindex_opt path '/' with
        | None -> failwith "need an absolute path"
        | Some i ->
            let dirpath = if i = 0 then "/" else String.sub path 0 i in
            let name = String.sub path (i + 1) (String.length path - i - 1) in
            let dir = Option.get (Fs.resolve fs dirpath) in
            Fs.unlink fs ~dir name;
            Printf.printf "removed %s\n" path)
  in
  Cmd.v (Cmd.info "rm" ~doc:"Remove a file") Term.(const run $ image $ fs_path 1)

let get_cmd =
  let local = Arg.(required & pos 2 (some string) None & info [] ~docv:"LOCAL" ~doc:"Local destination file") in
  let run image path local =
    let disk = load image in
    let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
    let data =
      match Fs.read_path fs path with
      | Some data -> data
      | None -> prerr_endline "no such path"; exit 1
    in
    let oc = open_out_bin local in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc data);
    Printf.printf "copied %d bytes to %s\n" (Bytes.length data) local
  in
  Cmd.v (Cmd.info "get" ~doc:"Copy a file out of the image")
    Term.(const run $ image $ fs_path 1 $ local)

let mkdir_cmd =
  let run image path =
    with_fs image (fun fs ->
        ignore (Fs.mkdir_path fs path);
        Printf.printf "created %s\n" path)
  in
  Cmd.v (Cmd.info "mkdir" ~doc:"Create a directory") Term.(const run $ image $ fs_path 1)

let mv_cmd =
  let dst = Arg.(required & pos 2 (some string) None & info [] ~docv:"DEST" ~doc:"Destination path") in
  let split fs path =
    match String.rindex_opt path '/' with
    | None -> failwith "need an absolute path"
    | Some i ->
        let dirpath = if i = 0 then "/" else String.sub path 0 i in
        (Option.get (Fs.resolve fs dirpath),
         String.sub path (i + 1) (String.length path - i - 1))
  in
  let run image src dst =
    with_fs image (fun fs ->
        let odir, oname = split fs src in
        let ndir, nname = split fs dst in
        Fs.rename fs ~odir oname ~ndir nname;
        Printf.printf "renamed %s -> %s\n" src dst)
  in
  Cmd.v (Cmd.info "mv" ~doc:"Rename (atomically, via the directory operation log)")
    Term.(const run $ image $ fs_path 1 $ dst)

let df_cmd =
  let run image =
    let disk = load image in
    let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
    let layout = Fs.layout fs in
    let total = layout.Lfs_core.Layout.nsegs * layout.Lfs_core.Layout.seg_blocks * 4096 in
    let used = int_of_float (Fs.utilization fs *. float_of_int total) in
    Printf.printf "%-12s %10s %10s %10s %5s\n" "image" "total" "used" "free" "use%";
    Printf.printf "%-12s %10d %10d %10d %4.0f%%\n" (Filename.basename image)
      total used (total - used)
      (100.0 *. Fs.utilization fs)
  in
  Cmd.v (Cmd.info "df" ~doc:"Show space usage") Term.(const run $ image)

let fsck_cmd =
  let run image =
    let disk = load image in
    let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
    let r = Lfs_core.Fsck.check fs in
    Format.printf "%a@." Lfs_core.Fsck.pp_report r;
    if not (Lfs_core.Fsck.is_clean r) then exit 1
  in
  Cmd.v (Cmd.info "fsck" ~doc:"Check file-system consistency") Term.(const run $ image)

let info_cmd =
  let run image =
    let disk = load image in
    let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
    let layout = Fs.layout fs in
    Format.printf "%a@." Lfs_core.Layout.pp layout;
    Printf.printf "utilisation: %.1f%%\n" (100.0 *. Fs.utilization fs);
    Printf.printf "clean segments: %d / %d\n" (Fs.clean_segment_count fs)
      layout.Lfs_core.Layout.nsegs;
    let b = Fs.live_breakdown fs in
    List.iter
      (fun (kind, bytes) ->
        if bytes > 0 then
          Printf.printf "  %-10s %10d bytes\n"
            (Lfs_core.Types.block_kind_name kind)
            bytes)
      b.Fs.by_kind
  in
  Cmd.v (Cmd.info "info" ~doc:"Show image statistics") Term.(const run $ image)

let clean_cmd =
  let run image =
    with_fs image (fun fs ->
        Fs.clean fs;
        Printf.printf "clean segments: %d\n" (Fs.clean_segment_count fs))
  in
  Cmd.v (Cmd.info "clean" ~doc:"Run the segment cleaner") Term.(const run $ image)

let recover_cmd =
  let run image =
    let disk = load image in
    let fs, report = Fs.recover (Lfs_disk.Vdev.of_disk disk) in
    Fs.unmount fs;
    Disk.save_file disk image;
    Printf.printf
      "recovered: %d log writes, %d inodes, %d data blocks, %d dirops (%d segments scanned)\n"
      report.Fs.writes_replayed report.Fs.inodes_recovered
      report.Fs.data_blocks_recovered report.Fs.dirops_applied
      report.Fs.segments_scanned
  in
  Cmd.v (Cmd.info "recover" ~doc:"Roll the log forward from the last checkpoint")
    Term.(const run $ image)

let trace_record_cmd =
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Output trace file") in
  let ops = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"Operations to record") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed") in
  let run out ops seed =
    let t = Lfs_workload.Trace.record_random ~ops ~seed () in
    Lfs_workload.Trace.save t out;
    Printf.printf "recorded %d operations (%d bytes of writes) to %s\n"
      (Lfs_workload.Trace.length t)
      (Lfs_workload.Trace.bytes_written t)
      out
  in
  Cmd.v (Cmd.info "trace-record" ~doc:"Generate a reproducible workload trace")
    Term.(const run $ out $ ops $ seed)

let trace_replay_cmd =
  let tracef = Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file") in
  let run image tracef =
    let t = Lfs_workload.Trace.load tracef in
    let disk = load image in
    let before = (Disk.stats disk).Lfs_disk.Io_stats.busy_s in
    let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
    let skipped = Lfs_workload.Trace.replay t (Lfs_workload.Fsops.of_lfs fs) in
    Fs.unmount fs;
    Disk.save_file disk image;
    Printf.printf "replayed %d operations; disk busy %.2f s; write cost %.2f\n"
      (Lfs_workload.Trace.length t - skipped)
      ((Disk.stats disk).Lfs_disk.Io_stats.busy_s -. before)
      (Lfs_core.Fs_stats.write_cost (Fs.stats fs));
    if skipped > 0 then
      Printf.printf
        "skipped %d operations whose paths did not resolve (trace recorded \
         against different contents?)\n"
        skipped
  in
  Cmd.v (Cmd.info "trace-replay" ~doc:"Replay a recorded trace against an image")
    Term.(const run $ image $ tracef)

let crashtest_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("smallfile", `Smallfile); ("andrew", `Andrew); ("script", `Script) ]) `Smallfile
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Workload to enumerate: $(b,smallfile), $(b,andrew) or $(b,script).")
  in
  let fs_kind =
    fs_spec
      "FFS has no recovery protocol, so its oracle divergences are \
       expected; a shard spec faults shard 0's device at every one of \
       its writes while the other shards must keep their durable state."
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ] ~docv:"N"
          ~doc:"Replay every $(docv)-th crash point instead of all of them \
                (the final write is always included).")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed; reports replay exactly from it.")
  in
  let blocks =
    Arg.(value & opt int 1024 & info [ "blocks" ] ~doc:"Device size in 4 KB blocks.")
  in
  let allow_failures =
    Arg.(
      value & flag
      & info [ "allow-failures" ]
          ~doc:"Exit 0 even when the report shows failures (for the FFS demo).")
  in
  let run workload fs_kind shards stride seed blocks allow_failures =
    let open Lfs_crashtest in
    let w =
      match workload with
      | `Smallfile -> Crashtest.smallfile ()
      | `Andrew -> Crashtest.andrew ()
      | `Script -> Crashtest.script ~seed ()
    in
    let report =
      match fs_kind with
      | Lfs_shard.Spec.Lfs -> Crashtest.run_lfs ~blocks ~stride ~seed w
      | Lfs_shard.Spec.Ffs -> Crashtest.run_ffs ~blocks ~stride ~seed w
      | Lfs_shard.Spec.Heads { heads } ->
          Crashtest.run_heads ~heads ~blocks ~stride ~seed w
      | Lfs_shard.Spec.Tier _ ->
          (* The tier subject pins its own tight demotion/promotion knobs
             so every sweep exercises both migration directions; the
             spec's percentages are a serving-path concern. *)
          Crashtest.run_tier ~blocks ~stride ~seed w
      | Lfs_shard.Spec.Shard { shards = n; policy } ->
          let n = Option.value shards ~default:n in
          Crashtest.run_shard ~shards:n ~policy ~blocks ~stride ~seed w
    in
    Format.printf "%a@." Crashtest.pp_report report;
    if not (Crashtest.is_clean report) && not allow_failures then exit 1
  in
  Cmd.v
    (Cmd.info "crashtest"
       ~doc:
         "Enumerate crash points: replay a workload, cut the power at every \
          device write (torn/dropped/reordered), recover, fsck, and check \
          the surviving state against a logical oracle")
    Term.(
      const run $ workload $ fs_kind $ shards_override $ stride $ seed $ blocks
      $ allow_failures)

let modelcheck_cmd =
  let fs_kind =
    fs_spec
      "FFS has no recovery protocol, so its divergences are expected \
       (pair with --allow-failures); a shard spec faults shard 0's \
       device while the other shards must keep their durable state."
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ]
          ~doc:
            "PRNG seed.  Every reported divergence replays bit-identically \
             from (seed, sequence, cut).")
  in
  let seqs =
    Arg.(
      value & opt int 25
      & info [ "seqs" ] ~docv:"N" ~doc:"Random operation sequences to check.")
  in
  let ops =
    Arg.(
      value & opt int 60
      & info [ "ops" ] ~docv:"M" ~doc:"Operations per sequence.")
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ] ~docv:"K"
          ~doc:
            "Replay every $(docv)-th crash point instead of all of them \
             (the final write is always included).")
  in
  let io_depth =
    Arg.(
      value & opt int 4
      & info [ "io-depth" ] ~docv:"D"
          ~doc:
            "Device requests kept in flight; > 1 runs the whole sequence \
             over queued submission with syncs as group-commit barriers.")
  in
  let blocks =
    Arg.(
      value & opt int 1024
      & info [ "blocks" ] ~doc:"Device size in 4 KB blocks (per device).")
  in
  let engine =
    Arg.(
      value & flag
      & info [ "engine" ]
          ~doc:
            "Check the request-serving engine's own generated load (group \
             commit, admission control) instead of random op sequences.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the report as JSON (byte-identical for equal seeds).")
  in
  let allow_failures =
    Arg.(
      value & flag
      & info [ "allow-failures" ]
          ~doc:"Exit 0 even when divergences were found (for the FFS demo).")
  in
  let run fs_kind shards seed seqs ops stride io_depth blocks engine json
      allow_failures =
    let module Refine = Lfs_model.Refine in
    let go (module S : Lfs_model.Subject.SUBJECT) =
      let module R = Refine.Make (S) in
      if engine then
        [
          R.check_engine ~blocks ~stride ~seed
            {
              Lfs_server.Engine.default with
              Lfs_server.Engine.clients = 3;
              ops_per_client = 15;
              seed;
              io_depth;
            };
        ]
      else
        List.init seqs (fun seq ->
            R.check_seq ~blocks ~io_depth ~stride ~seed ~nops:ops ~seq ())
    in
    let reports =
      match fs_kind with
      | Lfs_shard.Spec.Lfs -> go (module Lfs_model.Subject.Lfs)
      | Lfs_shard.Spec.Ffs -> go (module Lfs_model.Subject.Ffs)
      | Lfs_shard.Spec.Heads { heads } ->
          let module H = Lfs_model.Subject.Lfs_heads (struct
            let heads = heads
          end) in
          go (module H)
      | Lfs_shard.Spec.Tier _ -> go (module Lfs_model.Subject.Tier)
      | Lfs_shard.Spec.Shard { shards = n; policy } ->
          let n = Option.value shards ~default:n in
          let module Sh = Lfs_model.Subject.Shard (struct
            let shards = n
            let policy = policy
          end) in
          go (module Sh)
    in
    let total_divs =
      List.fold_left
        (fun acc r -> acc + List.length r.Refine.divergences)
        0 reports
    in
    let subject =
      match reports with r :: _ -> r.Refine.subject | [] -> "?"
    in
    if json then begin
      let b = Buffer.create 1024 in
      Buffer.add_string b
        (Printf.sprintf
           "{\"subject\":%S,\"seed\":%d,\"io_depth\":%d,\"stride\":%d,\"sequences\":["
           subject seed io_depth stride);
      List.iteri
        (fun i r ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"seq\":%d,\"ops\":%d,\"space\":%d,\"points\":%d,\"crashes\":%d,\"divergences\":["
               r.Refine.seq r.Refine.ops r.Refine.total_blocks r.Refine.points
               r.Refine.crashes);
          List.iteri
            (fun j (d : Refine.divergence) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "{\"cut\":%d,\"stage\":%S,\"detail\":%S}"
                   d.Refine.cut d.Refine.stage d.Refine.detail))
            r.Refine.divergences;
          Buffer.add_string b "]}")
        reports;
      Buffer.add_string b
        (Printf.sprintf "],\"total_divergences\":%d}\n" total_divs);
      print_string (Buffer.contents b)
    end
    else begin
      List.iter (fun r -> Format.printf "%a@." Refine.pp_seq_report r) reports;
      let points = List.fold_left (fun a r -> a + r.Refine.points) 0 reports in
      Format.printf "modelcheck: %d sequence%s, %d crash points, %d divergence%s — %s@."
        (List.length reports)
        (if List.length reports = 1 then "" else "s")
        points total_divs
        (if total_divs = 1 then "" else "s")
        (if total_divs = 0 then "PASS" else "FAIL")
    end;
    if total_divs > 0 && not allow_failures then exit 1
  in
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:
         "Refinement-check a backend against the executable reference \
          model: run random operation sequences (or the serving engine's \
          load) with group commit and io-depth in flight, cut the power at \
          every enumerated device write, recover, fsck, and require the \
          surviving namespace to be some state between the durability \
          frontier and the crash operation")
    Term.(
      const run $ fs_kind $ shards_override $ seed $ seqs $ ops $ stride
      $ io_depth $ blocks $ engine $ json $ allow_failures)

(* The stats/serve exercise, phrased against the shared driver record so
   it runs on any backend a spec can name. *)
let exercise_fsops (fs : Lfs_workload.Fsops.t) ~files ~seed =
  let module Fsops = Lfs_workload.Fsops in
  let prng = Lfs_util.Prng.create ~seed in
  let dirname = "/.stats-exercise" in
  (* Files spread over subdirectories: on a sharded volume the by_hash
     policy places a file by its parent directory, so one flat dir
     would drive a single shard and leave the rest idle. *)
  let ndirs = 16 in
  let dir_of i = Printf.sprintf "%s/d%d" dirname (i mod ndirs) in
  (match fs.Fsops.resolve dirname with
  | Some _ -> ()
  | None -> ignore (fs.Fsops.mkdir_path dirname));
  for d = 0 to ndirs - 1 do
    let p = Printf.sprintf "%s/d%d" dirname d in
    match fs.Fsops.resolve p with
    | Some _ -> ()
    | None -> ignore (fs.Fsops.mkdir_path p)
  done;
  let path i = Printf.sprintf "%s/f%d" (dir_of i) i in
  for round = 1 to 3 do
    for i = 0 to files - 1 do
      let len = 512 + Lfs_util.Prng.int prng 8192 in
      let ino =
        match fs.Fsops.resolve (path i) with
        | Some ino -> ino
        | None -> fs.Fsops.create_path (path i)
      in
      fs.Fsops.write ino ~off:0
        (Bytes.init len (fun j -> Char.chr ((i + j + round) land 0xff)))
    done
  done;
  fs.Fsops.sync ();
  for i = 0 to files - 1 do
    if fs.Fsops.resolve (path i) = None then failwith "exercise file vanished"
  done;
  for i = 0 to files - 1 do
    if i mod 2 = 0 then
      let dir =
        match fs.Fsops.resolve (dir_of i) with
        | Some d -> d
        | None -> assert false
      in
      fs.Fsops.unlink ~dir (Printf.sprintf "f%d" i)
  done;
  (match fs.Fsops.clean_step with
  | Some step -> ignore (step ~max_segments:64)
  | None -> ());
  fs.Fsops.sync ()

let stats_cmd =
  let exercise =
    Arg.(
      value & opt int 0
      & info [ "exercise" ] ~docv:"N"
          ~doc:
            "First run a small deterministic workload of $(docv) files \
             (write, read back, delete half, clean, checkpoint) so the \
             registry has live traffic.  The image file is never modified.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed for the exercise workload")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text tables")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the registry (no NaN, infinite or negative values) and \
             exit 1 listing any violations")
  in
  let image_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"IMAGE"
          ~doc:
            "Disk image file ($(b,lfs) specs only).  Omit it to report on a \
             fresh in-memory volume of --blocks built from --fs instead.")
  in
  let blocks =
    Arg.(
      value & opt int 16384
      & info [ "blocks" ]
          ~doc:"Fresh in-memory volume size in 4 KB blocks (no IMAGE only)")
  in
  let finish ~json ~validate ~title m =
    let problems = if validate then Lfs_obs.Metrics.validate m else [] in
    if json then print_string (Lfs_obs.Metrics.to_json m)
    else print_string (Lfs_obs.Metrics.report ~title m);
    match problems with
    | [] -> ()
    | problems ->
        List.iter
          (fun (name, what) -> Printf.eprintf "bad metric %s: %s\n" name what)
          problems;
        exit 1
  in
  let run_fresh spec shards blocks exercise seed json check =
    let fs = Lfs_shard.Spec.fresh ?shards ~blocks spec in
    match fs.Lfs_workload.Fsops.metrics () with
    | None ->
        Printf.eprintf "backend %s has no metrics registry\n"
          fs.Lfs_workload.Fsops.name;
        exit 1
    | Some m ->
        if exercise > 0 then exercise_fsops fs ~files:exercise ~seed;
        finish ~json
          ~validate:(check || exercise > 0)
          ~title:
            (Printf.sprintf "lfs stats: %s (in-memory)"
               fs.Lfs_workload.Fsops.name)
          m
  in
  let run image spec shards blocks exercise seed json check =
    match (spec, image) with
    | _, None -> run_fresh spec shards blocks exercise seed json check
    | ( ( Lfs_shard.Spec.Ffs | Lfs_shard.Spec.Heads _ | Lfs_shard.Spec.Tier _
        | Lfs_shard.Spec.Shard _ ),
        Some _ ) ->
        prerr_endline
          "an IMAGE argument is only supported with --fs lfs; omit it to \
           build an in-memory volume from the spec";
        exit 1
    | Lfs_shard.Spec.Lfs, Some image ->
    let disk = load image in
    let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
    if exercise > 0 then begin
      let prng = Lfs_util.Prng.create ~seed in
      let dirname = "/.stats-exercise" in
      (match Fs.resolve fs dirname with
      | Some _ -> ()
      | None -> ignore (Fs.mkdir_path fs dirname));
      let file i = Printf.sprintf "%s/f%d" dirname i in
      (* Several overwrite rounds: rewriting a file kills its old blocks,
         leaving partially-live segments for the cleaner to work on. *)
      for round = 1 to 3 do
        for i = 0 to exercise - 1 do
          let len = 512 + Lfs_util.Prng.int prng 8192 in
          Fs.write_path fs (file i)
            (Bytes.init len (fun j -> Char.chr ((i + j + round) land 0xff)))
        done
      done;
      Fs.sync fs;
      for i = 0 to exercise - 1 do
        if Fs.read_path fs (file i) = None then failwith "exercise file vanished"
      done;
      let dir =
        match Fs.resolve fs dirname with Some d -> d | None -> assert false
      in
      for i = 0 to exercise - 1 do
        if i mod 2 = 0 then Fs.unlink fs ~dir (Printf.sprintf "f%d" i)
      done;
      Fs.clean fs;
      Fs.checkpoint fs
    end;
    (* An exercised registry must be self-consistent even without
       --check: validate before printing so a bad value fails the run
       instead of sneaking into the report. *)
    finish ~json
      ~validate:(check || exercise > 0)
      ~title:(Printf.sprintf "lfs stats: %s" image)
      (Fs.metrics fs)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Report the metrics registry of a mounted image or a fresh \
          in-memory volume named by --fs: per-layer IO, cache hit rate, \
          per-op latency, cleaner and checkpoint statistics (text tables or \
          JSON)")
    Term.(
      const run $ image_opt
      $ fs_spec
          "Only $(b,lfs) can read an IMAGE; other specs build a fresh \
           in-memory volume and want --exercise for traffic."
      $ shards_override $ blocks $ exercise $ seed $ json $ check)

let serve_cmd =
  let module Engine = Lfs_server.Engine in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client sessions")
  in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"M" ~doc:"Requests per client")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed; equal seeds replay identically") in
  let fs_kind =
    fs_spec
      "$(b,lfs) batches via group commit, $(b,ffs) writes synchronously, \
       $(b,shard:N) spreads the namespace over N independent logs."
  in
  let blocks =
    Arg.(
      value & opt int 16384
      & info [ "blocks" ]
          ~doc:
            "Fresh in-memory device capacity in 4 KB blocks (total: a shard \
             spec splits it evenly across its devices)")
  in
  let depth =
    Arg.(value & opt int 64 & info [ "depth" ] ~docv:"K" ~doc:"Admission bound: waiting requests across all clients")
  in
  let policy =
    Arg.(
      value
      & opt (enum [ ("block", Engine.Block); ("shed", Engine.Shed) ]) Engine.Block
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Overload policy: $(b,block) the client or $(b,shed) the request")
  in
  let window =
    Arg.(value & opt float 0.01 & info [ "window" ] ~docv:"S" ~doc:"Group-commit batch window, modelled seconds")
  in
  let max_batch =
    Arg.(value & opt int 32 & info [ "max-batch" ] ~docv:"B" ~doc:"Flush early at this many batched requests")
  in
  let think =
    Arg.(value & opt float 0.05 & info [ "think" ] ~docv:"S" ~doc:"Mean client think time, modelled seconds")
  in
  let bg_clean =
    Arg.(
      value & flag
      & info [ "bg-clean" ]
          ~doc:
            "Clean segments in idle windows, paced by the background \
             watermarks, instead of only when a writer stalls on the \
             threshold (no-op on $(b,ffs))")
  in
  let io_depth =
    Arg.(
      value & opt int 1
      & info [ "io-depth" ] ~docv:"N"
          ~doc:
            "Device requests kept in flight together.  $(b,1) serves \
             strictly serially (the historical timings); larger values \
             overlap request IO through the per-device elevator, with \
             group-commit flushes acting as fsync barriers")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the metrics registry as JSON (byte-identical for equal seeds)")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Validate the metrics registry and exit 1 on violations")
  in
  let run clients ops seed fs_kind shards blocks depth policy window max_batch
      think bg_clean io_depth json check =
    let fs = Lfs_shard.Spec.fresh ?shards ~blocks fs_kind in
    let cfg =
      {
        Engine.default with
        Engine.clients;
        ops_per_client = ops;
        seed;
        queue_depth = depth;
        policy;
        batch_window_s = window;
        max_batch;
        think_mean_s = think;
        bg_clean;
        io_depth;
      }
    in
    let r = Engine.run cfg fs in
    let m = r.Engine.metrics in
    if json then print_string (Lfs_obs.Metrics.to_json m)
    else begin
      Printf.printf
        "%s: %d clients x %d ops (seed %d, depth %d, policy %s, io-depth %d)\n"
        r.Engine.fs_name clients ops seed depth (Engine.policy_name policy)
        io_depth;
      Printf.printf
        "completed %d, shed %d, errors %d in %.3f modelled s (%.1f ops/s)\n"
        r.Engine.completed r.Engine.shed r.Engine.errors r.Engine.elapsed_s
        r.Engine.throughput_ops_s;
      Printf.printf "flushes %d, mean batch %.2f, disk %.3f s (%.2f ms/op)\n"
        r.Engine.flushes r.Engine.mean_batch r.Engine.disk_s
        (if r.Engine.completed > 0 then
           1000.0 *. r.Engine.disk_s /. float_of_int r.Engine.completed
         else Float.nan);
      if bg_clean then
        Printf.printf "background cleaner: %d idle steps\n"
          r.Engine.bg_clean_steps;
      print_string (Lfs_obs.Metrics.report ~title:"server metrics" m)
    end;
    if check then
      match Lfs_obs.Metrics.validate m with
      | [] -> ()
      | problems ->
          List.iter
            (fun (name, what) -> Printf.eprintf "bad metric %s: %s\n" name what)
            problems;
          exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve N deterministic client sessions against a fresh in-memory \
          file system over the modelled clock: group commit, admission \
          control, fair dequeue, and per-class latency percentiles")
    Term.(
      const run $ clients $ ops $ seed $ fs_kind $ shards_override $ blocks
      $ depth $ policy $ window $ max_batch $ think $ bg_clean $ io_depth
      $ json $ check)

let () =
  let doc = "manage log-structured file system images" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "lfs_tool" ~doc)
          [ mkfs_cmd; put_cmd; get_cmd; cat_cmd; ls_cmd; mkdir_cmd; mv_cmd;
            rm_cmd; df_cmd; fsck_cmd; info_cmd; clean_cmd; recover_cmd;
            trace_record_cmd; trace_replay_cmd; crashtest_cmd; modelcheck_cmd;
            stats_cmd; serve_cmd ]))
