(* Tests for the crash-point enumeration harness (lib/crashtest) and
   the fault-injecting vdev it is built on. *)

module Fs = Lfs_core.Fs
module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Vdev_fault = Lfs_disk.Vdev_fault
module Geometry = Lfs_disk.Geometry
module Crashtest = Lfs_crashtest.Crashtest

let check_clean report =
  if not (Crashtest.is_clean report) then
    Alcotest.failf "crashtest not clean:@\n%a" Crashtest.pp_report report

(* Every crash point of the smallfile workload recovers fsck-clean and
   oracle-consistent. *)
let test_smallfile_every_point () =
  let report = Crashtest.run_lfs (Crashtest.smallfile ()) in
  Alcotest.(check bool) "has crash points" true (report.Crashtest.total_blocks > 0);
  Alcotest.(check int) "every point crashed" report.Crashtest.points
    report.Crashtest.crashes;
  check_clean report

(* Mixed create/overwrite/append/delete scripts, full enumeration.
   Seed 3 is the run that exposed the inode-reuse resurrection bug in
   roll-forward (a durably unlinked file's content reappearing when its
   inode number was reallocated but the new inode never reached the
   log), so it stays pinned here as a regression. *)
let test_script_seeds () =
  List.iter
    (fun seed ->
      check_clean (Crashtest.run_lfs ~seed (Crashtest.script ~seed ())))
    [ 3; 7; 11 ]

(* The same harness runs against FFS through the shared interface.  FFS
   has no recovery protocol, so failures are allowed — the contract is
   that the harness reports them rather than dying. *)
let test_ffs_reports () =
  let report =
    Crashtest.run_ffs ~stride:5 ~seed:3 (Crashtest.script ~seed:3 ())
  in
  Alcotest.(check bool) "replayed points" true (report.Crashtest.points > 0);
  Alcotest.(check int) "every point crashed" report.Crashtest.points
    report.Crashtest.crashes

(* Property: a random script workload crashed at a random point always
   recovers fsck-clean and oracle-consistent. *)
let prop_random_cut =
  QCheck.Test.make ~count:30 ~name:"random workload, random crash point"
    QCheck.(pair (int_bound 10_000) (int_bound 60))
    (fun (wseed, cut) ->
      let report =
        Crashtest.run_lfs ~seed:wseed ~cuts:[ cut ]
          (Crashtest.script ~ops:30 ~seed:wseed ())
      in
      Crashtest.is_clean report)

(* Build the deterministic two-file scenario used by the checkpoint
   crash tests; returns the fault layer and the mounted fs. *)
let checkpoint_scenario ~seed ~mode_plan =
  let fault = Vdev_fault.create ~seed (Vdev.of_disk (Disk.create (Geometry.instant ~blocks:1024))) in
  let dev = Vdev_fault.vdev fault in
  Fs.format dev Helpers.test_config;
  let fs = Fs.mount dev in
  Fs.write_path fs "/one" (Bytes.of_string "first file");
  Fs.checkpoint fs;
  Fs.write_path fs "/two" (Bytes.of_string "second file");
  Fs.sync fs;
  mode_plan fault fs;
  (fault, dev)

(* Enumerate every crash point inside the checkpoint machinery itself —
   including the multi-block region write — under all three crash
   modes.  Recovery must fall back to the surviving region and roll the
   log forward: both files survive every cut. *)
let test_crash_inside_checkpoint () =
  (* Reference runs: how many blocks does the final checkpoint write? *)
  let before =
    let fault, _ = checkpoint_scenario ~seed:0 ~mode_plan:(fun _ _ -> ()) in
    Vdev_fault.blocks_written fault
  in
  let total =
    let fault, _ =
      checkpoint_scenario ~seed:0 ~mode_plan:(fun _ fs -> Fs.checkpoint fs)
    in
    Vdev_fault.blocks_written fault - before
  in
  Alcotest.(check bool) "checkpoint writes blocks" true (total > 0);
  List.iter
    (fun mode ->
      for cut = 0 to total - 1 do
        let fault, dev =
          checkpoint_scenario ~seed:0 ~mode_plan:(fun fault fs ->
              Vdev_fault.plan_crash fault ~mode ~after_blocks:cut ();
              match Fs.checkpoint fs with
              | () -> Alcotest.failf "cut %d never fired" cut
              | exception Vdev.Crashed -> ())
        in
        Vdev_fault.reboot fault;
        let fs2, _ = Fs.recover dev in
        Helpers.fsck_clean fs2;
        Helpers.check_bytes
          (Printf.sprintf "/one after %s cut %d" (Vdev_fault.mode_name mode) cut)
          (Bytes.of_string "first file")
          (Option.get (Fs.read_path fs2 "/one"));
        Helpers.check_bytes
          (Printf.sprintf "/two after %s cut %d" (Vdev_fault.mode_name mode) cut)
          (Bytes.of_string "second file")
          (Option.get (Fs.read_path fs2 "/two"))
      done)
    [ Vdev_fault.Torn; Vdev_fault.Dropped; Vdev_fault.Reordered ]

(* Bit-rot in the newest checkpoint region: its checksum fails, the
   older region takes over, and roll-forward recovers everything that
   was synced. *)
let test_checkpoint_bitrot_fallback () =
  let fault, dev = checkpoint_scenario ~seed:5 ~mode_plan:(fun _ fs -> Fs.checkpoint fs) in
  let layout = (Lfs_core.Superblock.load dev).Lfs_core.Superblock.layout in
  let region, _ =
    Option.get (Lfs_core.Checkpoint.read_latest layout dev)
  in
  let first_block =
    if region = 0 then layout.Lfs_core.Layout.ckpt_a
    else layout.Lfs_core.Layout.ckpt_b
  in
  Vdev_fault.rot_read fault ~addr:first_block;
  let region', _ = Option.get (Lfs_core.Checkpoint.read_latest layout dev) in
  Alcotest.(check bool) "fell back to the other region" true (region' <> region);
  let fs2, _ = Fs.recover dev in
  Helpers.fsck_clean fs2;
  Helpers.check_bytes "/one survives rot" (Bytes.of_string "first file")
    (Option.get (Fs.read_path fs2 "/one"));
  Helpers.check_bytes "/two survives rot" (Bytes.of_string "second file")
    (Option.get (Fs.read_path fs2 "/two"))

(* Write-rot reaches the medium once and is then visible to fsck. *)
let test_write_rot_detected () =
  let fault = Vdev_fault.create ~seed:1 (Vdev.of_disk (Disk.create (Geometry.instant ~blocks:64))) in
  let dev = Vdev_fault.vdev fault in
  let payload = Bytes.make (Vdev.block_size dev) 'q' in
  Vdev_fault.rot_write fault ~addr:7;
  Vdev.write_blocks dev 7 payload;
  let back = Vdev.read_blocks dev 7 1 in
  Alcotest.(check bool) "medium corrupted" false (Bytes.equal payload back);
  (* the rot plan was consumed: a rewrite heals the block *)
  Vdev.write_blocks dev 7 payload;
  Alcotest.(check bool) "rewrite heals" true
    (Bytes.equal payload (Vdev.read_blocks dev 7 1))

let suite =
  ( "crashtest",
    [
      Alcotest.test_case "smallfile: every crash point recovers" `Quick
        test_smallfile_every_point;
      Alcotest.test_case "script seeds (incl. inode-reuse regression)" `Quick
        test_script_seeds;
      Alcotest.test_case "ffs: harness reports, does not die" `Quick
        test_ffs_reports;
      QCheck_alcotest.to_alcotest prop_random_cut;
      Alcotest.test_case "every crash point inside a checkpoint" `Quick
        test_crash_inside_checkpoint;
      Alcotest.test_case "checkpoint bit-rot falls back a region" `Quick
        test_checkpoint_bitrot_fallback;
      Alcotest.test_case "write bit-rot reaches the medium once" `Quick
        test_write_rot_detected;
    ] )
