(* Unit tests for the on-disk structures: layout, superblock, inodes,
   summaries, the inode map, the segment usage table, directories and
   the directory operation log. *)

module Types = Lfs_core.Types
module Layout = Lfs_core.Layout
module Config = Lfs_core.Config
module Inode = Lfs_core.Inode
module Summary = Lfs_core.Summary
module Inode_map = Lfs_core.Inode_map
module Seg_usage = Lfs_core.Seg_usage
module Directory = Lfs_core.Directory
module Dir_log = Lfs_core.Dir_log
module Superblock = Lfs_core.Superblock
module Checkpoint = Lfs_core.Checkpoint
module Disk = Lfs_disk.Disk

let layout = Layout.compute Helpers.test_config ~disk_blocks:1024

(* ----- Layout ----- *)

let test_layout_segments_fit () =
  let last =
    Layout.seg_first_block layout (layout.Layout.nsegs - 1)
    + layout.Layout.seg_blocks
  in
  Alcotest.(check bool) "within disk" true (last <= 1024);
  Alcotest.(check bool) "fixed area before segments" true
    (layout.Layout.seg_start > layout.Layout.ckpt_b)

let test_layout_seg_of_block () =
  Alcotest.(check int) "fixed area" (-1) (Layout.seg_of_block layout 0);
  let s3 = Layout.seg_first_block layout 3 in
  Alcotest.(check int) "first block of seg 3" 3 (Layout.seg_of_block layout s3);
  Alcotest.(check int) "last block of seg 3" 3
    (Layout.seg_of_block layout (s3 + layout.Layout.seg_blocks - 1))

let test_layout_rejects_tiny_disk () =
  match Layout.compute Helpers.test_config ~disk_blocks:64 with
  | _ -> Alcotest.fail "should reject"
  | exception Invalid_argument _ -> ()

let test_layout_max_file () =
  let m = Layout.max_file_blocks layout in
  let k = layout.Layout.addrs_per_block in
  Alcotest.(check int) "10 + K + K^2" (10 + k + (k * k)) m

(* ----- Superblock ----- *)

let test_superblock_roundtrip () =
  let disk = Helpers.fresh_disk () in
  let sb = Superblock.create Helpers.test_config ~disk_blocks:1024 in
  Superblock.store sb (Helpers.vdev disk);
  let sb' = Superblock.load (Helpers.vdev disk) in
  Alcotest.(check bool) "config preserved" true (sb'.Superblock.config = Helpers.test_config)

let test_superblock_detects_corruption () =
  let disk = Helpers.fresh_disk () in
  let sb = Superblock.create Helpers.test_config ~disk_blocks:1024 in
  Superblock.store sb (Helpers.vdev disk);
  let b = Disk.read_block disk 0 in
  Bytes.set b 40 (Char.chr (Char.code (Bytes.get b 40) lxor 0xff));
  Disk.write_block disk 0 b;
  match Superblock.load (Helpers.vdev disk) with
  | _ -> Alcotest.fail "should detect corruption"
  | exception Types.Corrupt _ -> ()

let test_superblock_rejects_unformatted () =
  let disk = Helpers.fresh_disk () in
  match Superblock.load (Helpers.vdev disk) with
  | _ -> Alcotest.fail "should reject zeroed disk"
  | exception Types.Corrupt _ -> ()

(* ----- Inode ----- *)

let test_inode_roundtrip () =
  let inode = Inode.create ~ino:42 ~ftype:Types.Regular ~mtime:7.5 in
  inode.Inode.size <- 123456;
  inode.Inode.nlink <- 3;
  inode.Inode.direct.(0) <- 99;
  inode.Inode.direct.(9) <- 1234;
  inode.Inode.indirect <- 777;
  inode.Inode.dindirect <- Types.nil_addr;
  let b = Bytes.make 1024 '\000' in
  Inode.encode inode b ~slot:2;
  match Inode.decode b ~slot:2 with
  | None -> Alcotest.fail "slot should decode"
  | Some i -> Alcotest.(check bool) "equal" true (Inode.equal inode i)

let test_inode_empty_slot () =
  let b = Bytes.make 1024 '\000' in
  Alcotest.(check bool) "unused slot" true (Inode.decode b ~slot:0 = None)

let test_inode_clear_slot () =
  let inode = Inode.create ~ino:1 ~ftype:Types.Directory ~mtime:1.0 in
  let b = Bytes.make 1024 '\000' in
  Inode.encode inode b ~slot:1;
  Inode.clear_slot b ~slot:1;
  Alcotest.(check bool) "cleared" true (Inode.decode b ~slot:1 = None)

let test_inode_slots_independent () =
  let a = Inode.create ~ino:1 ~ftype:Types.Regular ~mtime:1.0 in
  let b = Inode.create ~ino:2 ~ftype:Types.Directory ~mtime:2.0 in
  let buf = Bytes.make 1024 '\000' in
  Inode.encode a buf ~slot:0;
  Inode.encode b buf ~slot:1;
  Alcotest.(check bool) "slot0" true
    (Inode.equal a (Option.get (Inode.decode buf ~slot:0)));
  Alcotest.(check bool) "slot1" true
    (Inode.equal b (Option.get (Inode.decode buf ~slot:1)))

let test_inode_bad_magic () =
  let b = Bytes.make 1024 '\000' in
  Bytes.set b 0 '\042';
  match Inode.decode b ~slot:0 with
  | _ -> Alcotest.fail "should raise on bad magic"
  | exception Types.Corrupt _ -> ()

let test_inode_nblocks () =
  let i = Inode.create ~ino:1 ~ftype:Types.Regular ~mtime:0.0 in
  i.Inode.size <- 0;
  Alcotest.(check int) "empty" 0 (Inode.nblocks ~block_size:1024 i);
  i.Inode.size <- 1;
  Alcotest.(check int) "one byte" 1 (Inode.nblocks ~block_size:1024 i);
  i.Inode.size <- 1024;
  Alcotest.(check int) "exact block" 1 (Inode.nblocks ~block_size:1024 i);
  i.Inode.size <- 1025;
  Alcotest.(check int) "one byte over" 2 (Inode.nblocks ~block_size:1024 i)

(* ----- Summary ----- *)

let summary_fixture =
  {
    Summary.seq = 17;
    seg = 3;
    slot = 5;
    next_seg = 9;
    timestamp = 123.0;
    payload_sum = 0xabcdef;
    entries =
      [
        { Summary.kind = Types.Data; ino = 4; blockno = 2; version = 1; mtime = 50.0 };
        { Summary.kind = Types.Inode_block; ino = 0; blockno = 0; version = 0; mtime = 60.0 };
        { Summary.kind = Types.Indirect; ino = 4; blockno = -2; version = 1; mtime = 55.0 };
      ];
  }

let test_summary_roundtrip () =
  let b = Summary.encode ~block_size:1024 summary_fixture in
  match Summary.decode b with
  | None -> Alcotest.fail "should decode"
  | Some s -> Alcotest.(check bool) "equal" true (s = summary_fixture)

let test_summary_detects_corruption () =
  let b = Summary.encode ~block_size:1024 summary_fixture in
  Bytes.set b 100 'X';
  Alcotest.(check bool) "corrupt rejected" true (Summary.decode b = None)

let test_summary_garbage_rejected () =
  Alcotest.(check bool) "zeros" true (Summary.decode (Bytes.make 1024 '\000') = None);
  Alcotest.(check bool) "noise" true
    (Summary.decode (Helpers.bytes_of_pattern ~seed:1 1024) = None)

let test_summary_capacity_enforced () =
  let too_many =
    List.init (Summary.max_entries ~block_size:1024 + 1) (fun i ->
        { Summary.kind = Types.Data; ino = i; blockno = i; version = 0; mtime = 0.0 })
  in
  match Summary.encode ~block_size:1024 { summary_fixture with entries = too_many } with
  | _ -> Alcotest.fail "should reject"
  | exception Invalid_argument _ -> ()

let test_summary_entry_addr () =
  let l = layout in
  let s = { summary_fixture with seg = 2; slot = 4 } in
  Alcotest.(check int) "first payload block"
    (Layout.seg_first_block l 2 + 5)
    (Summary.entry_addr s l 0);
  Alcotest.(check int) "next slot" (4 + 1 + 3) (Summary.next_slot s)

let test_summary_payload_checksum () =
  let p1 = Bytes.make 2048 'a' and p2 = Bytes.make 2048 'b' in
  Alcotest.(check bool) "payloads distinguish" false
    (Summary.payload_checksum p1 = Summary.payload_checksum p2)

(* ----- Inode map ----- *)

let test_imap_allocate_free () =
  let m = Inode_map.create layout in
  let a = Inode_map.allocate m in
  Alcotest.(check int) "first is root ino" Types.root_ino a;
  Inode_map.set_location m a (Types.Iaddr.make ~block:100 ~slot:0);
  let b = Inode_map.allocate m in
  Alcotest.(check bool) "distinct" true (a <> b);
  Inode_map.set_location m b (Types.Iaddr.make ~block:100 ~slot:1);
  Inode_map.free m a;
  Alcotest.(check bool) "freed slot reusable" true (Inode_map.allocate m = a)

let test_imap_version_bumps () =
  let m = Inode_map.create layout in
  let i = Inode_map.allocate m in
  Inode_map.set_location m i (Types.Iaddr.make ~block:5 ~slot:3);
  let v0 = Inode_map.version m i in
  Inode_map.bump_version m i;
  Alcotest.(check int) "bump" (v0 + 1) (Inode_map.version m i);
  Inode_map.free m i;
  Alcotest.(check int) "free bumps too" (v0 + 2) (Inode_map.version m i)

let test_imap_block_roundtrip () =
  let m = Inode_map.create layout in
  for i = 1 to 40 do
    let ino = Inode_map.allocate m in
    Inode_map.set_location m ino (Types.Iaddr.make ~block:(200 + i) ~slot:(i mod 8));
    Inode_map.set_atime m ino (float_of_int i)
  done;
  let disk = Hashtbl.create 8 in
  Inode_map.flush m
    ~write:(fun ~index b ->
      Hashtbl.replace disk (1000 + index) b;
      1000 + index)
    ~free:(fun _ -> ());
  Alcotest.(check bool) "no dirty blocks left" true (Inode_map.dirty_blocks m = []);
  let addrs = Array.init (Inode_map.nblocks m) (Inode_map.block_addr m) in
  let m' = Inode_map.load layout ~read:(Hashtbl.find disk) ~block_addrs:addrs in
  for ino = 0 to Inode_map.max_inodes m - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "ino %d location" ino)
      true
      (Types.Iaddr.equal (Inode_map.location m ino) (Inode_map.location m' ino));
    Alcotest.(check int) "version" (Inode_map.version m ino) (Inode_map.version m' ino)
  done

let test_imap_full () =
  let m = Inode_map.create layout in
  for _ = 1 to Inode_map.max_inodes m - Types.root_ino do
    let i = Inode_map.allocate m in
    Inode_map.set_location m i (Types.Iaddr.make ~block:1 ~slot:0)
  done;
  match Inode_map.allocate m with
  | _ -> Alcotest.fail "map should be full"
  | exception Types.Fs_error _ -> ()

let test_imap_dirty_tracking () =
  let m = Inode_map.create layout in
  Inode_map.flush m ~write:(fun ~index:_ _ -> 1) ~free:(fun _ -> ());
  Alcotest.(check (list int)) "clean" [] (Inode_map.dirty_blocks m);
  let i = Inode_map.allocate m in
  Inode_map.set_location m i (Types.Iaddr.make ~block:2 ~slot:0);
  Alcotest.(check (list int)) "one dirty block"
    [ Inode_map.block_of_ino m i ]
    (Inode_map.dirty_blocks m)

let test_imap_count_allocated () =
  let m = Inode_map.create layout in
  Alcotest.(check int) "empty" 0 (Inode_map.count_allocated m);
  let i = Inode_map.allocate m in
  Inode_map.set_location m i (Types.Iaddr.make ~block:1 ~slot:0);
  Alcotest.(check int) "one" 1 (Inode_map.count_allocated m)

(* ----- Segment usage table ----- *)

let test_usage_accounting () =
  let u = Seg_usage.create layout in
  Seg_usage.add_live u 2 ~bytes:1024 ~mtime:5.0;
  Seg_usage.add_live u 2 ~bytes:512 ~mtime:3.0;
  Alcotest.(check int) "live bytes" 1536 (Seg_usage.live_bytes u 2);
  Alcotest.(check (float 0.0)) "mtime keeps max" 5.0 (Seg_usage.mtime u 2);
  Seg_usage.kill u 2 ~bytes:1536;
  Alcotest.(check bool) "clean again" true (Seg_usage.is_clean u 2)

let test_usage_utilization () =
  let u = Seg_usage.create layout in
  let cap = layout.Layout.seg_blocks * layout.Layout.block_size in
  Seg_usage.add_live u 0 ~bytes:(cap / 2) ~mtime:1.0;
  Alcotest.(check (float 1e-9)) "half" 0.5 (Seg_usage.utilization u 0)

let test_usage_clean_lists () =
  let u = Seg_usage.create layout in
  Seg_usage.add_live u 1 ~bytes:100 ~mtime:1.0;
  Seg_usage.add_live u 3 ~bytes:100 ~mtime:1.0;
  Alcotest.(check (list int)) "dirty" [ 1; 3 ] (Seg_usage.dirty_segments u);
  Alcotest.(check int) "clean count" (Seg_usage.nsegs u - 2) (Seg_usage.clean_count u)

let test_usage_block_roundtrip () =
  let u = Seg_usage.create layout in
  for s = 0 to Seg_usage.nsegs u - 1 do
    Seg_usage.add_live u s ~bytes:(100 * (s + 1)) ~mtime:(float_of_int s)
  done;
  let store = Hashtbl.create 8 in
  Seg_usage.flush u
    ~write:(fun ~index b ->
      Hashtbl.replace store (500 + index) b;
      500 + index)
    ~free:(fun _ -> ());
  let addrs = Array.init (Seg_usage.nblocks u) (Seg_usage.block_addr u) in
  let u' = Seg_usage.load layout ~read:(Hashtbl.find store) ~block_addrs:addrs in
  for s = 0 to Seg_usage.nsegs u - 1 do
    Alcotest.(check int) "live" (Seg_usage.live_bytes u s) (Seg_usage.live_bytes u' s);
    Alcotest.(check (float 0.0)) "mtime" (Seg_usage.mtime u s) (Seg_usage.mtime u' s)
  done

let test_usage_kill_underflow_detected () =
  let u = Seg_usage.create layout in
  Seg_usage.add_live u 0 ~bytes:100 ~mtime:1.0;
  match Seg_usage.kill u 0 ~bytes:200 with
  | () -> Alcotest.fail "should assert"
  | exception Assert_failure _ -> ()

let test_usage_histogram_excludes () =
  let u = Seg_usage.create layout in
  let cap = layout.Layout.seg_blocks * layout.Layout.block_size in
  Seg_usage.add_live u 0 ~bytes:cap ~mtime:1.0;
  let h = Seg_usage.utilization_histogram u ~bins:10 ~exclude:(fun s -> s = 0) in
  Alcotest.(check (float 1e-9)) "only empty segments" 1.0
    (Lfs_util.Histogram.fraction h 0)

(* ----- Directory ----- *)

let test_dir_roundtrip () =
  let d =
    Directory.add (Directory.add Directory.empty "alpha" 10) "beta" 20
  in
  let d' = Directory.of_bytes (Directory.to_bytes d) in
  Alcotest.(check bool) "entries preserved" true
    (Directory.entries d = Directory.entries d')

let test_dir_ops () =
  let d = Directory.add Directory.empty "x" 5 in
  Alcotest.(check bool) "mem" true (Directory.mem d "x");
  Alcotest.(check (option int)) "find" (Some 5) (Directory.find d "x");
  Alcotest.(check (option int)) "missing" None (Directory.find d "y");
  let d = Directory.remove d "x" in
  Alcotest.(check bool) "removed" true (Directory.is_empty d)

let test_dir_duplicate_rejected () =
  let d = Directory.add Directory.empty "a" 1 in
  match Directory.add d "a" 2 with
  | _ -> Alcotest.fail "duplicate should be rejected"
  | exception Types.Fs_error _ -> ()

let test_dir_remove_missing_rejected () =
  match Directory.remove Directory.empty "ghost" with
  | _ -> Alcotest.fail "should fail"
  | exception Types.Fs_error _ -> ()

let test_dir_bad_names_rejected () =
  List.iter
    (fun name ->
      match Directory.check_name name with
      | () -> Alcotest.failf "name %S should be rejected" name
      | exception Types.Fs_error _ -> ())
    [ ""; "a/b"; "nul\000byte"; String.make 256 'n' ]

let test_dir_replace () =
  let d = Directory.add Directory.empty "f" 1 in
  let d = Directory.replace d "f" 2 in
  Alcotest.(check (option int)) "replaced" (Some 2) (Directory.find d "f");
  let d = Directory.replace d "g" 3 in
  Alcotest.(check (option int)) "added" (Some 3) (Directory.find d "g")

let test_dir_order_preserved () =
  let names = [ "c"; "a"; "b" ] in
  let d =
    List.fold_left (fun d (i, n) -> Directory.add d n i)
      Directory.empty
      (List.mapi (fun i n -> (i, n)) names)
  in
  Alcotest.(check (list string)) "insertion order" names
    (List.map fst (Directory.entries d))

let test_dir_corrupt_rejected () =
  match Directory.of_bytes (Bytes.make 4 '\255') with
  | _ -> Alcotest.fail "should reject"
  | exception Types.Corrupt _ -> ()

(* ----- Directory operation log ----- *)

let dirlog_records =
  [
    Dir_log.Add { dir = 1; name = "new"; ino = 7; nlink = 1; fresh = true };
    Dir_log.Remove { dir = 1; name = "old"; ino = 8; nlink = 0 };
    Dir_log.Rename { odir = 1; oname = "a"; ndir = 2; nname = "b"; ino = 9 };
  ]

let test_dirlog_roundtrip () =
  match Dir_log.encode_blocks ~block_size:1024 dirlog_records with
  | [ b ] ->
      Alcotest.(check bool) "records preserved" true
        (Dir_log.decode_block b = dirlog_records)
  | blocks -> Alcotest.failf "expected 1 block, got %d" (List.length blocks)

let test_dirlog_splits_blocks () =
  let many =
    List.init 100 (fun i ->
        Dir_log.Add { dir = 1; name = Printf.sprintf "file-%04d" i; ino = i; nlink = 1; fresh = true })
  in
  let blocks = Dir_log.encode_blocks ~block_size:256 many in
  Alcotest.(check bool) "multiple blocks" true (List.length blocks > 1);
  let decoded = List.concat_map Dir_log.decode_block blocks in
  Alcotest.(check bool) "order preserved" true (decoded = many)

let test_dirlog_empty () =
  Alcotest.(check int) "no blocks for no records" 0
    (List.length (Dir_log.encode_blocks ~block_size:1024 []))

(* ----- Checkpoint regions ----- *)

let ckpt_fixture =
  {
    Checkpoint.timestamp = 42.0;
    log_seq = 7;
    heads = [| { Checkpoint.cur_seg = 2; cur_off = 13; next_seg = 5 } |];
    imap_addrs = [| 100; 101; Types.nil_addr |];
    usage_addrs = [| 200 |];
  }

let ckpt_layout =
  (* A layout whose imap/usage sizes match the fixture. *)
  Layout.compute
    { Helpers.test_config with max_inodes = 120 }
    ~disk_blocks:1024

let test_checkpoint_roundtrip () =
  let disk = Helpers.fresh_disk () in
  let fixture =
    {
      ckpt_fixture with
      Checkpoint.imap_addrs = Array.make ckpt_layout.Layout.imap_blocks 33;
      usage_addrs = Array.make ckpt_layout.Layout.usage_blocks 44;
    }
  in
  Checkpoint.write ckpt_layout (Helpers.vdev disk) ~region:0 fixture;
  (match Checkpoint.read ckpt_layout (Helpers.vdev disk) ~region:0 with
  | Some c -> Alcotest.(check bool) "roundtrip" true (c = fixture)
  | None -> Alcotest.fail "should read back");
  Alcotest.(check bool) "other region invalid" true
    (Checkpoint.read ckpt_layout (Helpers.vdev disk) ~region:1 = None)

let test_checkpoint_multihead_roundtrip () =
  (* Divergent per-head positions must survive the region encoding. *)
  let disk = Helpers.fresh_disk () in
  let fixture =
    {
      ckpt_fixture with
      Checkpoint.heads =
        [|
          { Checkpoint.cur_seg = 2; cur_off = 13; next_seg = 5 };
          { Checkpoint.cur_seg = 9; cur_off = 1; next_seg = 11 };
          { Checkpoint.cur_seg = 4; cur_off = 15; next_seg = Types.nil_addr };
        |];
      imap_addrs = Array.make ckpt_layout.Layout.imap_blocks 33;
      usage_addrs = Array.make ckpt_layout.Layout.usage_blocks 44;
    }
  in
  Checkpoint.write ckpt_layout (Helpers.vdev disk) ~region:0 fixture;
  match Checkpoint.read ckpt_layout (Helpers.vdev disk) ~region:0 with
  | Some c -> Alcotest.(check bool) "heads roundtrip" true (c = fixture)
  | None -> Alcotest.fail "should read back"

let test_checkpoint_latest_wins () =
  let disk = Helpers.fresh_disk () in
  let mk ts = { ckpt_fixture with Checkpoint.timestamp = ts;
                imap_addrs = Array.make ckpt_layout.Layout.imap_blocks 1;
                usage_addrs = Array.make ckpt_layout.Layout.usage_blocks 2 } in
  Checkpoint.write ckpt_layout (Helpers.vdev disk) ~region:0 (mk 10.0);
  Checkpoint.write ckpt_layout (Helpers.vdev disk) ~region:1 (mk 20.0);
  (match Checkpoint.read_latest ckpt_layout (Helpers.vdev disk) with
  | Some (1, c) -> Alcotest.(check (float 0.0)) "newest" 20.0 c.Checkpoint.timestamp
  | Some (r, _) -> Alcotest.failf "wrong region %d" r
  | None -> Alcotest.fail "should find one")

let test_checkpoint_torn_write_invalid () =
  let disk = Helpers.fresh_disk () in
  let fixture =
    {
      ckpt_fixture with
      Checkpoint.imap_addrs = Array.make ckpt_layout.Layout.imap_blocks 1;
      usage_addrs = Array.make ckpt_layout.Layout.usage_blocks 2;
    }
  in
  Checkpoint.write ckpt_layout (Helpers.vdev disk) ~region:0 fixture;
  (* Corrupt one byte, as a torn multi-block region write would. *)
  let addr = ckpt_layout.Layout.ckpt_a in
  let b = Disk.read_block disk addr in
  Bytes.set b 500 '\137';
  Disk.write_block disk addr b;
  Alcotest.(check bool) "torn region rejected" true
    (Checkpoint.read ckpt_layout (Helpers.vdev disk) ~region:0 = None)

(* ----- Property tests ----- *)

let prop_inode_roundtrip =
  QCheck.Test.make ~count:200 ~name:"inode encode/decode roundtrip"
    QCheck.(
      quad (int_range 1 100000) bool (int_bound 1_000_000_000) (int_bound 65535))
    (fun (ino, is_dir, size, nlink) ->
      let ftype = if is_dir then Types.Directory else Types.Regular in
      let i = Inode.create ~ino ~ftype ~mtime:(float_of_int size) in
      i.Inode.size <- size;
      i.Inode.nlink <- nlink;
      Array.iteri (fun k _ -> i.Inode.direct.(k) <- (ino * k) - 1) i.Inode.direct;
      let b = Bytes.make 4096 '\000' in
      Inode.encode i b ~slot:(ino mod 32);
      match Inode.decode b ~slot:(ino mod 32) with
      | Some i' -> Inode.equal i i'
      | None -> false)

let prop_directory_roundtrip =
  QCheck.Test.make ~count:100 ~name:"directory roundtrip"
    QCheck.(small_list (pair (string_gen_of_size (Gen.int_range 1 30) (Gen.char_range 'a' 'z')) (int_bound 100000)))
    (fun entries ->
      let d =
        List.fold_left
          (fun d (name, ino) ->
            if Directory.mem d name then d else Directory.add d name ino)
          Directory.empty entries
      in
      Directory.entries (Directory.of_bytes (Directory.to_bytes d))
      = Directory.entries d)

let prop_summary_roundtrip =
  QCheck.Test.make ~count:100 ~name:"summary roundtrip"
    QCheck.(small_list (triple (int_bound 1000) (int_range (-10) 1000) (int_bound 100)))
    (fun raw ->
      let entries =
        List.filteri (fun i _ -> i < Summary.max_entries ~block_size:1024) raw
        |> List.map (fun (ino, blockno, version) ->
               {
                 Summary.kind = Types.Data;
                 ino;
                 blockno;
                 version;
                 mtime = float_of_int version;
               })
      in
      let s = { summary_fixture with Summary.entries } in
      Summary.decode (Summary.encode ~block_size:1024 s) = Some s)

let suite =
  ( "structures",
    [
      Alcotest.test_case "layout segments fit" `Quick test_layout_segments_fit;
      Alcotest.test_case "layout seg_of_block" `Quick test_layout_seg_of_block;
      Alcotest.test_case "layout rejects tiny disk" `Quick test_layout_rejects_tiny_disk;
      Alcotest.test_case "layout max file" `Quick test_layout_max_file;
      Alcotest.test_case "superblock roundtrip" `Quick test_superblock_roundtrip;
      Alcotest.test_case "superblock corruption" `Quick test_superblock_detects_corruption;
      Alcotest.test_case "superblock unformatted" `Quick test_superblock_rejects_unformatted;
      Alcotest.test_case "inode roundtrip" `Quick test_inode_roundtrip;
      Alcotest.test_case "inode empty slot" `Quick test_inode_empty_slot;
      Alcotest.test_case "inode clear slot" `Quick test_inode_clear_slot;
      Alcotest.test_case "inode slots independent" `Quick test_inode_slots_independent;
      Alcotest.test_case "inode bad magic" `Quick test_inode_bad_magic;
      Alcotest.test_case "inode nblocks" `Quick test_inode_nblocks;
      Alcotest.test_case "summary roundtrip" `Quick test_summary_roundtrip;
      Alcotest.test_case "summary corruption" `Quick test_summary_detects_corruption;
      Alcotest.test_case "summary garbage" `Quick test_summary_garbage_rejected;
      Alcotest.test_case "summary capacity" `Quick test_summary_capacity_enforced;
      Alcotest.test_case "summary entry addr" `Quick test_summary_entry_addr;
      Alcotest.test_case "summary payload checksum" `Quick test_summary_payload_checksum;
      Alcotest.test_case "imap allocate/free" `Quick test_imap_allocate_free;
      Alcotest.test_case "imap version bumps" `Quick test_imap_version_bumps;
      Alcotest.test_case "imap block roundtrip" `Quick test_imap_block_roundtrip;
      Alcotest.test_case "imap full" `Quick test_imap_full;
      Alcotest.test_case "imap dirty tracking" `Quick test_imap_dirty_tracking;
      Alcotest.test_case "imap count allocated" `Quick test_imap_count_allocated;
      Alcotest.test_case "usage accounting" `Quick test_usage_accounting;
      Alcotest.test_case "usage utilization" `Quick test_usage_utilization;
      Alcotest.test_case "usage clean lists" `Quick test_usage_clean_lists;
      Alcotest.test_case "usage block roundtrip" `Quick test_usage_block_roundtrip;
      Alcotest.test_case "usage kill underflow" `Quick test_usage_kill_underflow_detected;
      Alcotest.test_case "usage histogram excludes" `Quick test_usage_histogram_excludes;
      Alcotest.test_case "dir roundtrip" `Quick test_dir_roundtrip;
      Alcotest.test_case "dir ops" `Quick test_dir_ops;
      Alcotest.test_case "dir duplicate" `Quick test_dir_duplicate_rejected;
      Alcotest.test_case "dir remove missing" `Quick test_dir_remove_missing_rejected;
      Alcotest.test_case "dir bad names" `Quick test_dir_bad_names_rejected;
      Alcotest.test_case "dir replace" `Quick test_dir_replace;
      Alcotest.test_case "dir order" `Quick test_dir_order_preserved;
      Alcotest.test_case "dir corrupt" `Quick test_dir_corrupt_rejected;
      Alcotest.test_case "dirlog roundtrip" `Quick test_dirlog_roundtrip;
      Alcotest.test_case "dirlog splits blocks" `Quick test_dirlog_splits_blocks;
      Alcotest.test_case "dirlog empty" `Quick test_dirlog_empty;
      Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
      Alcotest.test_case "checkpoint multi-head roundtrip" `Quick
        test_checkpoint_multihead_roundtrip;
      Alcotest.test_case "checkpoint latest wins" `Quick test_checkpoint_latest_wins;
      Alcotest.test_case "checkpoint torn write" `Quick test_checkpoint_torn_write_invalid;
      QCheck_alcotest.to_alcotest prop_inode_roundtrip;
      QCheck_alcotest.to_alcotest prop_directory_roundtrip;
      QCheck_alcotest.to_alcotest prop_summary_roundtrip;
    ] )
