(* Tests for the cleaning policies (pure) and the full cleaning machinery
   under space pressure. *)

module Fs = Lfs_core.Fs
module Config = Lfs_core.Config
module Cleaner = Lfs_core.Cleaner
module Fs_stats = Lfs_core.Fs_stats
module Prng = Lfs_util.Prng

(* ----- Policy math ----- *)

let cand seg u age = { Cleaner.seg; u; age }

let test_benefit_cost_formula () =
  Alcotest.(check (float 1e-9)) "(1-u)*age/(1+u)"
    (0.5 *. 100.0 /. 1.5)
    (Cleaner.benefit_cost (cand 0 0.5 100.0));
  Alcotest.(check (float 1e-9)) "full segment worthless" 0.0
    (Cleaner.benefit_cost (cand 0 1.0 1e9))

let test_greedy_picks_least_utilized () =
  let cands = [ cand 0 0.9 1.0; cand 1 0.1 1.0; cand 2 0.5 1.0 ] in
  Alcotest.(check (list int)) "order by u" [ 1; 2 ]
    (Cleaner.select ~policy:Config.Greedy ~candidates:cands ~count:2 ())

let test_cost_benefit_prefers_old_cold () =
  (* An old segment at moderate utilisation beats a young empty-ish one
     (the paper's key insight). *)
  let old_cold = cand 0 0.75 10_000.0 in
  let young_hot = cand 1 0.3 10.0 in
  Alcotest.(check (list int)) "old cold first" [ 0; 1 ]
    (Cleaner.select ~policy:Config.Cost_benefit
       ~candidates:[ young_hot; old_cold ] ~count:2 ())

let test_empty_segments_always_first () =
  let cands = [ cand 0 0.9 1e9; cand 1 0.0 0.0; cand 2 0.2 5.0 ] in
  List.iter
    (fun policy ->
      match Cleaner.select ~policy ~rand:(fun n -> n / 2) ~candidates:cands ~count:1 () with
      | [ 1 ] -> ()
      | other ->
          Alcotest.failf "policy %s picked %s"
            (Config.cleaning_policy_name policy)
            (String.concat "," (List.map string_of_int other)))
    [ Config.Greedy; Config.Cost_benefit; Config.Age_only; Config.Random_victim ]

let test_age_only_policy () =
  let cands = [ cand 0 0.5 10.0; cand 1 0.5 100.0; cand 2 0.5 50.0 ] in
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 0 ]
    (Cleaner.select ~policy:Config.Age_only ~candidates:cands ~count:3 ())

let test_select_respects_count () =
  let cands = List.init 10 (fun i -> cand i 0.5 1.0) in
  Alcotest.(check int) "count cap" 4
    (List.length (Cleaner.select ~policy:Config.Greedy ~candidates:cands ~count:4 ()))

let test_random_requires_rand () =
  match
    Cleaner.select ~policy:Config.Random_victim
      ~candidates:[ cand 0 0.5 1.0 ] ~count:1 ()
  with
  | _ -> Alcotest.fail "should require ~rand"
  | exception Invalid_argument _ -> ()

let test_random_victim_deterministic () =
  let cands = List.init 8 (fun i -> cand i (0.1 +. (0.1 *. float_of_int i)) 1.0) in
  let run () =
    let prng = Prng.create ~seed:9 in
    Cleaner.select ~policy:Config.Random_victim
      ~rand:(fun n -> Prng.int prng n)
      ~candidates:cands ~count:8 ()
  in
  let a = run () and b = run () in
  Alcotest.(check (list int)) "pinned seed replays the same order" a b;
  Alcotest.(check (list int)) "a permutation of the candidates"
    (List.init 8 Fun.id)
    (List.sort compare a)

let test_select_count_exceeds_candidates () =
  let cands = [ cand 0 0.5 1.0; cand 1 0.2 1.0; cand 2 0.8 1.0 ] in
  let prng = Prng.create ~seed:9 in
  List.iter
    (fun policy ->
      let picked =
        Cleaner.select ~policy
          ~rand:(fun n -> Prng.int prng n)
          ~candidates:cands ~count:10 ()
      in
      Alcotest.(check (list int))
        (Config.cleaning_policy_name policy ^ " returns everything, once")
        [ 0; 1; 2 ]
        (List.sort compare picked))
    [ Config.Greedy; Config.Cost_benefit; Config.Age_only; Config.Random_victim ]

let test_select_empty_candidates () =
  List.iter
    (fun policy ->
      Alcotest.(check (list int))
        (Config.cleaning_policy_name policy ^ " on no candidates")
        []
        (Cleaner.select ~policy ~rand:(fun n -> n / 2) ~candidates:[] ~count:4 ()))
    [ Config.Greedy; Config.Cost_benefit; Config.Age_only; Config.Random_victim ]

let test_tie_break_is_stable () =
  (* Equal keys keep submission order (stable sort), so victim choice
     does not depend on unrelated candidate-list churn. *)
  let ties = [ cand 7 0.5 40.0; cand 3 0.5 40.0; cand 5 0.5 40.0 ] in
  Alcotest.(check (list int)) "greedy keeps input order on equal u"
    [ 7; 3; 5 ]
    (Cleaner.select ~policy:Config.Greedy ~candidates:ties ~count:3 ());
  Alcotest.(check (list int)) "cost-benefit keeps input order on equal ratio"
    [ 7; 3; 5 ]
    (Cleaner.select ~policy:Config.Cost_benefit ~candidates:ties ~count:3 ())

(* The decorate-sort-undecorate rewrite (with its top-k fast path) must
   order victims exactly like the original sort-everything
   implementation: empties first in submission order, then ascending
   key with submission-order tie-break.  Checked against a straight
   reference re-implementation across list shapes that exercise both
   the top-k path (count << candidates) and the full sort. *)
let reference_select ~policy ~candidates ~count =
  let key =
    match policy with
    | Config.Greedy -> fun c -> c.Cleaner.u
    | Config.Cost_benefit -> fun c -> -.Cleaner.benefit_cost c
    | Config.Age_only -> fun c -> -.c.Cleaner.age
    | Config.Random_victim -> invalid_arg "reference_select: random"
  in
  let empty, nonempty = List.partition (fun c -> c.Cleaner.u = 0.0) candidates in
  let ordered =
    List.stable_sort (fun a b -> compare (key a) (key b)) nonempty
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take count (List.map (fun c -> c.Cleaner.seg) (empty @ ordered))

let test_select_matches_reference () =
  let prng = Prng.create ~seed:21 in
  for trial = 1 to 50 do
    let n = 1 + Prng.int prng 40 in
    let candidates =
      List.init n (fun i ->
          (* Coarse buckets force plenty of exact key ties. *)
          cand i
            (float_of_int (Prng.int prng 5) /. 4.0)
            (float_of_int (Prng.int prng 4) *. 10.0))
    in
    List.iter
      (fun policy ->
        List.iter
          (fun count ->
            Alcotest.(check (list int))
              (Printf.sprintf "trial %d: %s, %d of %d" trial
                 (Config.cleaning_policy_name policy)
                 count n)
              (reference_select ~policy ~candidates ~count)
              (Cleaner.select ~policy ~candidates ~count ()))
          [ 1; 2; n / 4; n / 2; n; n + 3 ])
      [ Config.Greedy; Config.Cost_benefit; Config.Age_only ]
  done

let test_grouping_age_sort () =
  let items = [ ("young", 5.0); ("ancient", 100.0); ("mid", 50.0) ] in
  Alcotest.(check (list string)) "oldest first"
    [ "ancient"; "mid"; "young" ]
    (Cleaner.order_for_grouping ~grouping:Config.Age_sort items);
  Alcotest.(check (list string)) "in order preserved"
    [ "young"; "ancient"; "mid" ]
    (Cleaner.order_for_grouping ~grouping:Config.In_order items)

(* ----- Full-FS cleaning ----- *)

let churn fs prng ~files ~rounds ~size =
  for i = 0 to files - 1 do
    Fs.write_path fs (Printf.sprintf "/f%d" i) (Bytes.make size 'i')
  done;
  for _ = 1 to rounds do
    let i = Prng.int prng files in
    Fs.write_path fs (Printf.sprintf "/f%d" i)
      (Bytes.make (size + Prng.int prng 1024) 'c')
  done

let test_cleaning_triggers_and_reclaims () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  let prng = Prng.create ~seed:5 in
  churn fs prng ~files:40 ~rounds:200 ~size:60_000;
  (* Single-block overwrites fragment segments so the cleaner has to
     read live data, not just reuse self-emptied segments. *)
  for _ = 1 to 600 do
    let i = Prng.int prng 40 in
    match Fs.resolve fs (Printf.sprintf "/f%d" i) with
    | Some ino ->
        Fs.write fs ino ~off:(4096 * Prng.int prng 14) (Bytes.make 4096 'z')
    | None -> ()
  done;
  let stats = Fs.stats fs in
  Alcotest.(check bool) "cleaner ran" true (Fs_stats.segments_cleaned stats > 0);
  Alcotest.(check bool) "cleaner read segments" true
    (Fs_stats.blocks_read_cleaner stats > 0);
  Alcotest.(check bool) "write cost sane" true
    (Fs_stats.write_cost stats >= 1.0 && Fs_stats.write_cost stats < 20.0);
  Helpers.fsck_clean fs

let test_contents_survive_cleaning () =
  let disk, fs = Helpers.fresh_fs ~blocks:2048 () in
  let keep = Helpers.bytes_of_pattern ~seed:77 45_000 in
  Fs.write_path fs "/keeper" keep;
  let prng = Prng.create ~seed:6 in
  churn fs prng ~files:30 ~rounds:500 ~size:50_000;
  Helpers.check_bytes "survives in memory" keep (Option.get (Fs.read_path fs "/keeper"));
  Fs.unmount fs;
  let fs2 = Fs.mount (Helpers.vdev disk) in
  Helpers.check_bytes "survives remount" keep (Option.get (Fs.read_path fs2 "/keeper"));
  Helpers.fsck_clean fs2

let run_policy_churn policy =
  let config = Config.with_policy ~cleaning:policy Helpers.test_config in
  let _, fs = Helpers.fresh_fs ~blocks:2048 ~config () in
  let prng = Prng.create ~seed:8 in
  churn fs prng ~files:35 ~rounds:400 ~size:55_000;
  Helpers.fsck_clean fs;
  Fs_stats.write_cost (Fs.stats fs)

let test_all_policies_safe () =
  List.iter
    (fun policy -> ignore (run_policy_churn policy))
    [ Config.Greedy; Config.Cost_benefit; Config.Age_only; Config.Random_victim ]

let test_grouping_policies_safe () =
  List.iter
    (fun grouping ->
      let config = Config.with_policy ~grouping Helpers.test_config in
      let _, fs = Helpers.fresh_fs ~blocks:2048 ~config () in
      let prng = Prng.create ~seed:9 in
      churn fs prng ~files:35 ~rounds:300 ~size:55_000;
      Helpers.fsck_clean fs)
    [ Config.In_order; Config.Age_sort ]

let test_explicit_clean_call () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  Fs.write_path fs "/a" (Bytes.make 100_000 'a');
  Fs.write_path fs "/a" (Bytes.make 100_000 'b');
  Fs.clean fs;
  Alcotest.(check bool) "clean target reached" true
    (Fs.clean_segment_count fs >= Helpers.test_config.Config.clean_stop);
  Helpers.fsck_clean fs

let test_deletion_reclaims_without_cleaning () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  for i = 0 to 9 do
    Fs.write_path fs (Printf.sprintf "/d%d" i) (Bytes.make 120_000 'd')
  done;
  let used_before = Fs.utilization fs in
  for i = 0 to 9 do
    Fs.unlink fs ~dir:Fs.root (Printf.sprintf "d%d" i)
  done;
  Fs.checkpoint fs;
  Alcotest.(check bool) "space reclaimed" true (Fs.utilization fs < used_before /. 4.0);
  Alcotest.(check bool) "empties counted as cleaned" true
    (Fs_stats.segments_cleaned_empty (Fs.stats fs) > 0);
  Helpers.fsck_clean fs

let test_segment_histogram_shape () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  let prng = Prng.create ~seed:10 in
  churn fs prng ~files:30 ~rounds:200 ~size:50_000;
  Fs.sync fs;
  let h = Fs.segment_histogram fs ~bins:10 in
  let sum = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 (Lfs_util.Histogram.to_series h) in
  Alcotest.(check (float 1e-6)) "fractions sum to 1" 1.0 sum

let test_write_cost_accounting_consistent () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  let prng = Prng.create ~seed:12 in
  churn fs prng ~files:30 ~rounds:300 ~size:50_000;
  let s = Fs.stats fs in
  let manual =
    float_of_int
      (Fs_stats.blocks_written_new s + Fs_stats.blocks_written_cleaner s
     + Fs_stats.blocks_read_cleaner s)
    /. float_of_int (Fs_stats.blocks_written_new s)
  in
  Alcotest.(check (float 1e-9)) "formula matches" manual (Fs_stats.write_cost s)

let test_live_breakdown_sums () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  Fs.write_path fs "/x" (Bytes.make 50_000 'x');
  let b = Fs.live_breakdown fs in
  let sum = List.fold_left (fun acc (_, v) -> acc + v) 0 b.Fs.by_kind in
  Alcotest.(check int) "breakdown total consistent" b.Fs.total_bytes sum;
  Alcotest.(check bool) "data dominates" true
    (List.assoc Lfs_core.Types.Data b.Fs.by_kind > b.Fs.total_bytes / 2)

let test_live_blocks_cleaning_safe () =
  let config = { Helpers.test_config with Config.cleaner_read = Config.Live_blocks } in
  let disk, fs = Helpers.fresh_fs ~blocks:2048 ~config () in
  let keep = Helpers.bytes_of_pattern ~seed:88 45_000 in
  Fs.write_path fs "/keeper" keep;
  let prng = Prng.create ~seed:13 in
  churn fs prng ~files:35 ~rounds:400 ~size:55_000;
  Alcotest.(check bool) "cleaner ran" true
    (Fs_stats.segments_cleaned (Fs.stats fs) > 0);
  Helpers.check_bytes "contents survive" keep (Option.get (Fs.read_path fs "/keeper"));
  Helpers.fsck_clean fs;
  Fs.unmount fs;
  Helpers.fsck_clean (Fs.mount (Helpers.vdev disk))

let test_live_blocks_reads_less_when_sparse () =
  (* At low victim utilisation, reading only live blocks moves far less
     data than whole-segment reads (the paper's Section 3.4 footnote). *)
  let run cleaner_read =
    let config = { Helpers.test_config with Config.cleaner_read } in
    let _, fs = Helpers.fresh_fs ~blocks:2048 ~config () in
    (* Interleave long-lived crumbs with churning files so victim
       segments keep a little live data instead of self-emptying. *)
    for i = 0 to 299 do
      Fs.write_path fs (Printf.sprintf "/stable%d" i) (Bytes.make 4096 's');
      Fs.write_path fs
        (Printf.sprintf "/churn%d" (i mod 40))
        (Bytes.make 16_384 'c')
    done;
    Fs.clean fs;
    Fs_stats.blocks_read_cleaner (Fs.stats fs)
  in
  let whole = run Config.Whole_segment in
  let live = run Config.Live_blocks in
  Alcotest.(check bool)
    (Printf.sprintf "live (%d) < whole (%d)" live whole)
    true (live < whole)

(* ----- Budgeted background cleaning (clean_step) ----- *)

let counter fs name =
  match Lfs_obs.Metrics.value (Fs.metrics fs) name with
  | Some (Lfs_obs.Metrics.Int n) -> n
  | _ -> 0

(* Narrow background band just above the emergency one so tests can
   reach it with a few dozen writes. *)
let bg_config = { Helpers.test_config with Config.bg_clean_start = 6; bg_clean_stop = 8 }

(* Drain the clean pool to [pool] and leave reclaimable dirt behind:
   a fresh fill pins live data until [pool + 3] clean segments remain,
   then rewrites of alternate fill files (half a segment each) dig the
   rest of the way while turning their old segments half dead. *)
let drain_to fs ~pool =
  let n = ref 0 in
  while Fs.clean_segment_count fs > pool + 3 do
    Fs.write_path fs (Printf.sprintf "/fill%d" !n) (Bytes.make 32_768 'f');
    incr n
  done;
  let g = ref 0 in
  while Fs.clean_segment_count fs > pool && !g < !n do
    Fs.write_path fs (Printf.sprintf "/fill%d" !g) (Bytes.make 32_768 'r');
    g := !g + 2
  done

let test_clean_step_idle_above_watermark () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 ~config:bg_config () in
  Fs.write_path fs "/a" (Bytes.make 20_000 'a');
  Alcotest.(check int) "nothing owed on a mostly-clean disk" 0
    (Fs.clean_step fs);
  Alcotest.(check int) "no background pass ran" 0
    (counter fs "fs.cleaner.bg.passes")

let test_clean_step_latch_needs_low_watermark () =
  (* In the middle of the band with the latch never engaged, a step is
     a no-op: hysteresis only arms below the low watermark. *)
  let _, fs = Helpers.fresh_fs ~blocks:2048 ~config:bg_config () in
  drain_to fs ~pool:7;
  Alcotest.(check int) "mid-band, latch off: nothing owed" 0
    (Fs.clean_step fs);
  Alcotest.(check int) "no background pass ran" 0
    (counter fs "fs.cleaner.bg.passes")

let test_clean_step_refills_to_high_watermark () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 ~config:bg_config () in
  drain_to fs ~pool:5;
  let fg_before = counter fs "fs.cleaner.fg.passes" in
  let steps = ref 0 in
  while Fs.clean_step fs > 0 && !steps < 500 do
    incr steps
  done;
  Alcotest.(check bool) "terminates" true (!steps < 500);
  Alcotest.(check bool) "background passes ran" true
    (counter fs "fs.cleaner.bg.passes" > 0);
  Alcotest.(check bool)
    (Printf.sprintf "pool refilled to the high watermark (%d)"
       (Fs.clean_segment_count fs))
    true
    (Fs.clean_segment_count fs >= bg_config.Config.bg_clean_stop);
  Alcotest.(check int) "no foreground pass charged" fg_before
    (counter fs "fs.cleaner.fg.passes");
  (* Refilled and disengaged: further steps are no-ops. *)
  let bg_passes = counter fs "fs.cleaner.bg.passes" in
  Alcotest.(check int) "disengaged after refill" 0 (Fs.clean_step fs);
  Alcotest.(check int) "no extra pass" bg_passes
    (counter fs "fs.cleaner.bg.passes");
  Helpers.fsck_clean fs

let test_clean_step_respects_budget () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 ~config:bg_config () in
  drain_to fs ~pool:5;
  let segs0 = counter fs "fs.cleaner.bg.segments" in
  ignore (Fs.clean_step ~max_segments:1 fs);
  let cleaned = counter fs "fs.cleaner.bg.segments" - segs0 in
  Alcotest.(check bool)
    (Printf.sprintf "single step cleaned at most one victim (%d)" cleaned)
    true (cleaned <= 1);
  Helpers.fsck_clean fs

(* ----- Whole-segment vs live-blocks equivalence ----- *)

(* Property: the cleaner's read policy is an I/O strategy, not a
   semantic one — the same workload leaves the same live data whether
   victims are read wholesale or block-by-block through the cache. *)
let test_read_policy_equivalence () =
  List.iter
    (fun seed ->
      let run cleaner_read =
        let config = { Helpers.test_config with Config.cleaner_read } in
        let _, fs = Helpers.fresh_fs ~blocks:2048 ~config () in
        let prng = Prng.create ~seed in
        let model = Helpers.random_ops ~ops:300 fs prng in
        Fs.clean fs;
        Fs.sync fs;
        Helpers.fsck_clean fs;
        (fs, model)
      in
      let fs_whole, model_whole = run Config.Whole_segment in
      let fs_live, model_live = run Config.Live_blocks in
      (* Same op stream on both: the models must agree, and each file
         system must hold exactly its model's live set. *)
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same surviving file count" seed)
        (Hashtbl.length model_whole)
        (Hashtbl.length model_live);
      Helpers.check_model fs_whole model_whole;
      Helpers.check_model fs_live model_whole;
      let live fs = (Fs.live_breakdown fs).Fs.total_bytes in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: identical live bytes" seed)
        (live fs_whole) (live fs_live))
    [ 1; 2; 3 ]

let test_checkpoint_by_blocks () =
  let config =
    { Helpers.test_config with Config.checkpoint_interval_blocks = 64 }
  in
  let _, fs = Helpers.fresh_fs ~blocks:2048 ~config () in
  for i = 0 to 9 do
    Fs.write_path fs (Printf.sprintf "/f%d" i) (Bytes.make 60_000 'b')
  done;
  (* 10 x 15 blocks of data >> 64-block interval: several checkpoints. *)
  Alcotest.(check bool) "volume-triggered checkpoints" true
    (Fs_stats.checkpoints (Fs.stats fs) >= 2)

let test_checkpoint_by_blocks_bounds_recovery () =
  let config =
    { Helpers.test_config with Config.checkpoint_interval_blocks = 64 }
  in
  let disk, fs = Helpers.fresh_fs ~blocks:2048 ~config () in
  for i = 0 to 9 do
    Fs.write_path fs (Printf.sprintf "/f%d" i) (Bytes.make 60_000 'b')
  done;
  Fs.sync fs;
  (* Crash: at most ~interval blocks of log to roll forward. *)
  let _, report = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check bool)
    (Printf.sprintf "replayed writes bounded (%d)" report.Fs.writes_replayed)
    true
    (report.Fs.writes_replayed <= 6);
  Helpers.fsck_clean (Fs.mount (Helpers.vdev disk))

let suite =
  ( "cleaner",
    [
      Alcotest.test_case "benefit/cost formula" `Quick test_benefit_cost_formula;
      Alcotest.test_case "greedy least-utilised" `Quick test_greedy_picks_least_utilized;
      Alcotest.test_case "cost-benefit old cold" `Quick test_cost_benefit_prefers_old_cold;
      Alcotest.test_case "empties first" `Quick test_empty_segments_always_first;
      Alcotest.test_case "age-only" `Quick test_age_only_policy;
      Alcotest.test_case "count cap" `Quick test_select_respects_count;
      Alcotest.test_case "random needs rand" `Quick test_random_requires_rand;
      Alcotest.test_case "random victim deterministic" `Quick test_random_victim_deterministic;
      Alcotest.test_case "count exceeds candidates" `Quick test_select_count_exceeds_candidates;
      Alcotest.test_case "empty candidates" `Quick test_select_empty_candidates;
      Alcotest.test_case "tie-break stable" `Quick test_tie_break_is_stable;
      Alcotest.test_case "select matches reference" `Quick test_select_matches_reference;
      Alcotest.test_case "grouping" `Quick test_grouping_age_sort;
      Alcotest.test_case "cleaning triggers" `Quick test_cleaning_triggers_and_reclaims;
      Alcotest.test_case "contents survive" `Quick test_contents_survive_cleaning;
      Alcotest.test_case "all policies safe" `Slow test_all_policies_safe;
      Alcotest.test_case "grouping policies safe" `Slow test_grouping_policies_safe;
      Alcotest.test_case "explicit clean" `Quick test_explicit_clean_call;
      Alcotest.test_case "deletion reclaims" `Quick test_deletion_reclaims_without_cleaning;
      Alcotest.test_case "histogram shape" `Quick test_segment_histogram_shape;
      Alcotest.test_case "write-cost accounting" `Quick test_write_cost_accounting_consistent;
      Alcotest.test_case "live breakdown" `Quick test_live_breakdown_sums;
      Alcotest.test_case "live-blocks cleaning safe" `Quick test_live_blocks_cleaning_safe;
      Alcotest.test_case "live-blocks reads less" `Quick test_live_blocks_reads_less_when_sparse;
      Alcotest.test_case "clean_step idle above watermark" `Quick
        test_clean_step_idle_above_watermark;
      Alcotest.test_case "clean_step latch hysteresis" `Quick
        test_clean_step_latch_needs_low_watermark;
      Alcotest.test_case "clean_step refills to high watermark" `Quick
        test_clean_step_refills_to_high_watermark;
      Alcotest.test_case "clean_step respects budget" `Quick
        test_clean_step_respects_budget;
      Alcotest.test_case "read-policy equivalence" `Quick
        test_read_policy_equivalence;
      Alcotest.test_case "checkpoint by volume" `Quick test_checkpoint_by_blocks;
      Alcotest.test_case "volume checkpoint bounds recovery" `Quick
        test_checkpoint_by_blocks_bounds_recovery;
    ] )
