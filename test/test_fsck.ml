(* fsck must catch seeded corruption: every class of invariant violation
   it claims to check is deliberately introduced and must be reported. *)

module Fs = Lfs_core.Fs
module Fsck = Lfs_core.Fsck
module Types = Lfs_core.Types
module Disk = Lfs_disk.Disk

let expect_dirty label fs =
  let r = Fsck.check fs in
  if Fsck.is_clean r then Alcotest.failf "%s: fsck missed the corruption" label

let test_clean_fs_is_clean () =
  let _, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/a" (Bytes.make 9000 'a');
  ignore (Fs.mkdir_path fs "/d");
  Fs.write_path fs "/d/b" (Bytes.make 3000 'b');
  Helpers.fsck_clean fs;
  let r = Fsck.check fs in
  Alcotest.(check int) "files" 2 r.Fsck.files;
  Alcotest.(check int) "dirs" 2 r.Fsck.directories

(* Corrupt the on-disk copy of a directory's data block after a sync and
   drop caches: the parse must fail and fsck must notice. *)
let test_detects_corrupt_directory () =
  let disk, fs = Helpers.fresh_fs () in
  let d = Fs.mkdir fs ~dir:Fs.root "d" in
  ignore (Fs.create fs ~dir:d "victim");
  Fs.checkpoint fs;
  (* Find the directory's data block and scribble on it. *)
  let addr = Fs.with_handle fs d (fun _ fmap -> Lfs_core.Filemap.get fmap 0) in
  let b = Disk.read_block disk addr in
  Bytes.fill b 0 64 '\255';
  Disk.write_block disk addr b;
  Fs.drop_caches fs;
  expect_dirty "corrupt directory" fs

(* Damage the usage table via a remount of a hand-corrupted usage block:
   the live-byte recount must disagree. *)
let test_detects_usage_mismatch () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/f" (Bytes.make 20_000 'f');
  Fs.unmount fs;
  let fs2 = Fs.mount (Helpers.vdev disk) in
  (* Mutate in-memory usage accounting directly through a fake kill:
     simplest is to corrupt the persisted usage block and remount. *)
  let addrs = Fs.usage_block_addrs fs2 in
  (match addrs with
  | addr :: _ when addr <> Types.nil_addr ->
      let b = Disk.read_block disk addr in
      Bytes.set_int32_le b 0 99999l;
      Disk.write_block disk addr b
  | _ -> Alcotest.fail "expected a usage block");
  let fs3 = Fs.mount (Helpers.vdev disk) in
  expect_dirty "usage mismatch" fs3

(* An inode slot cleared behind the inode map's back: the reference
   becomes dangling. *)
let test_detects_dangling_imap_entry () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/gone" (Bytes.of_string "x");
  Fs.checkpoint fs;
  let ino = Option.get (Fs.resolve fs "/gone") in
  let iaddr = Fs.imap_location fs ino in
  let b = Disk.read_block disk (Types.Iaddr.block iaddr) in
  Lfs_core.Inode.clear_slot b ~slot:(Types.Iaddr.slot iaddr);
  Disk.write_block disk (Types.Iaddr.block iaddr) b;
  let fs2 = Fs.mount (Helpers.vdev disk) in
  (match Fsck.check fs2 with
  | _ -> Alcotest.fail "walk should raise or report"
  | exception Types.Corrupt _ -> ())

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_report_printable () =
  let _, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/x" (Bytes.of_string "y");
  let r = Fsck.check fs in
  let s = Format.asprintf "%a" Fsck.pp_report r in
  Alcotest.(check bool) "mentions clean" true (contains ~needle:"clean" s)

let suite =
  ( "fsck",
    [
      Alcotest.test_case "clean fs" `Quick test_clean_fs_is_clean;
      Alcotest.test_case "corrupt directory" `Quick test_detects_corrupt_directory;
      Alcotest.test_case "usage mismatch" `Quick test_detects_usage_mismatch;
      Alcotest.test_case "dangling imap entry" `Quick test_detects_dangling_imap_entry;
      Alcotest.test_case "report printable" `Quick test_report_printable;
    ] )
