(* QCheck model properties over arbitrary operation sequences.  Unlike
   the seeded random_ops tests, these generate the operation list as a
   first-class value, so failures shrink to a minimal counterexample. *)

module Fs = Lfs_core.Fs
module Types = Lfs_core.Types
module Disk = Lfs_disk.Disk

type op =
  | Write of int * int  (* file index, size *)
  | Patch of int * int * int  (* file index, offset, size *)
  | Truncate of int * int
  | Delete of int
  | Rename of int * int
  | Sync
  | Checkpoint

let nfiles = 8

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun f s -> Write (f, s)) (int_bound (nfiles - 1)) (int_range 1 30_000));
        (2, map3 (fun f o s -> Patch (f, o, s)) (int_bound (nfiles - 1)) (int_bound 20_000) (int_range 1 4_000));
        (1, map2 (fun f l -> Truncate (f, l)) (int_bound (nfiles - 1)) (int_bound 20_000));
        (2, map (fun f -> Delete f) (int_bound (nfiles - 1)));
        (1, map2 (fun a b -> Rename (a, b)) (int_bound (nfiles - 1)) (int_bound (nfiles - 1)));
        (1, return Sync);
        (1, return Checkpoint);
      ])

let print_op = function
  | Write (f, s) -> Printf.sprintf "Write(f%d, %d)" f s
  | Patch (f, o, s) -> Printf.sprintf "Patch(f%d, @%d, %d)" f o s
  | Truncate (f, l) -> Printf.sprintf "Truncate(f%d, %d)" f l
  | Delete f -> Printf.sprintf "Delete(f%d)" f
  | Rename (a, b) -> Printf.sprintf "Rename(f%d, f%d)" a b
  | Sync -> "Sync"
  | Checkpoint -> "Checkpoint"

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    ~shrink:QCheck.Shrink.list
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

let name i = Printf.sprintf "f%d" i

(* Apply one op to the file system and, in parallel, to a trivial
   in-memory model.  Returns the updated model. *)
let apply fs model op =
  let content i = List.assoc_opt (name i) model in
  let fill len tag = Bytes.make len (Char.chr (65 + (tag mod 26))) in
  match op with
  | Write (f, size) ->
      let data = fill size (f + size) in
      Fs.write_path fs ("/" ^ name f) data;
      (name f, data) :: List.remove_assoc (name f) model
  | Patch (f, off, size) -> (
      match content f with
      | None -> model
      | Some old ->
          let ino = Option.get (Fs.resolve fs ("/" ^ name f)) in
          let off = min off (Bytes.length old) in
          let patch = fill size (f + off) in
          Fs.write fs ino ~off patch;
          let len = max (Bytes.length old) (off + size) in
          let merged = Bytes.make len '\000' in
          Bytes.blit old 0 merged 0 (Bytes.length old);
          Bytes.blit patch 0 merged off size;
          (name f, merged) :: List.remove_assoc (name f) model)
  | Truncate (f, len) -> (
      match content f with
      | None -> model
      | Some old ->
          let ino = Option.get (Fs.resolve fs ("/" ^ name f)) in
          let len = min len (Bytes.length old) in
          Fs.truncate fs ino ~len;
          (name f, Bytes.sub old 0 len) :: List.remove_assoc (name f) model)
  | Delete f -> (
      match content f with
      | None -> model
      | Some _ ->
          Fs.unlink fs ~dir:Fs.root (name f);
          List.remove_assoc (name f) model)
  | Rename (a, b) -> (
      match content a with
      | None -> model
      | Some data ->
          if a = b then model
          else begin
            Fs.rename fs ~odir:Fs.root (name a) ~ndir:Fs.root (name b);
            (name b, data)
            :: List.remove_assoc (name a) (List.remove_assoc (name b) model)
          end)
  | Sync ->
      Fs.sync fs;
      model
  | Checkpoint ->
      Fs.checkpoint fs;
      model

let check_against_model fs model =
  List.for_all
    (fun (n, data) ->
      match Fs.resolve fs ("/" ^ n) with
      | None -> false
      | Some ino ->
          Bytes.equal data (Fs.read fs ino ~off:0 ~len:(Fs.file_size fs ino)))
    model
  && List.length (Fs.readdir fs Fs.root) = List.length model

let prop_model_agreement =
  QCheck.Test.make ~count:60 ~name:"fs agrees with model under arbitrary ops"
    arb_ops
    (fun ops ->
      let _, fs = Helpers.fresh_fs ~blocks:2048 () in
      let model = List.fold_left (apply fs) [] ops in
      check_against_model fs model
      && Lfs_core.Fsck.is_clean (Lfs_core.Fsck.check fs))

let prop_remount_preserves =
  QCheck.Test.make ~count:40 ~name:"remount preserves arbitrary op results"
    arb_ops
    (fun ops ->
      let disk, fs = Helpers.fresh_fs ~blocks:2048 () in
      let model = List.fold_left (apply fs) [] ops in
      Fs.unmount fs;
      let fs2 = Fs.mount (Helpers.vdev disk) in
      check_against_model fs2 model)

let prop_recovery_after_sync_preserves =
  QCheck.Test.make ~count:40
    ~name:"roll-forward preserves synced arbitrary op results" arb_ops
    (fun ops ->
      let disk, fs = Helpers.fresh_fs ~blocks:2048 () in
      let model = List.fold_left (apply fs) [] ops in
      Fs.sync fs;
      (* Crash (abandon the instance), recover, compare. *)
      let fs2, _ = Fs.recover (Helpers.vdev disk) in
      check_against_model fs2 model
      && Lfs_core.Fsck.is_clean (Lfs_core.Fsck.check fs2))

(* The same op generator drives the NVRAM-backed FS; a crash may happen
   at any point (no sync at all) and nothing acknowledged may be lost. *)
let prop_nvram_no_loss =
  QCheck.Test.make ~count:40 ~name:"nvram loses nothing across a crash"
    arb_ops
    (fun ops ->
      let disk, fs0 = Helpers.fresh_fs ~blocks:2048 () in
      let nvram = Lfs_core.Nvram.create () in
      let nfs = Lfs_core.Nvram_fs.wrap fs0 nvram in
      let apply_nvram model op =
        let content i = List.assoc_opt (name i) model in
        let fill len tag = Bytes.make len (Char.chr (65 + (tag mod 26))) in
        match op with
        | Write (f, size) ->
            let data = fill size (f + size) in
            Lfs_core.Nvram_fs.write_path nfs ("/" ^ name f) data;
            (name f, data) :: List.remove_assoc (name f) model
        | Patch (f, off, size) -> (
            match content f with
            | None -> model
            | Some old ->
                let ino = Option.get (Lfs_core.Nvram_fs.resolve nfs ("/" ^ name f)) in
                let off = min off (Bytes.length old) in
                let patch = fill size (f + off) in
                Lfs_core.Nvram_fs.write nfs ino ~off patch;
                let len = max (Bytes.length old) (off + size) in
                let merged = Bytes.make len '\000' in
                Bytes.blit old 0 merged 0 (Bytes.length old);
                Bytes.blit patch 0 merged off size;
                (name f, merged) :: List.remove_assoc (name f) model)
        | Truncate (f, len) -> (
            match content f with
            | None -> model
            | Some old ->
                let ino = Option.get (Lfs_core.Nvram_fs.resolve nfs ("/" ^ name f)) in
                let len = min len (Bytes.length old) in
                Lfs_core.Nvram_fs.truncate nfs ino ~len;
                (name f, Bytes.sub old 0 len) :: List.remove_assoc (name f) model)
        | Delete f -> (
            match content f with
            | None -> model
            | Some _ ->
                Lfs_core.Nvram_fs.unlink nfs ~dir:Fs.root (name f);
                List.remove_assoc (name f) model)
        | Rename (a, b) -> (
            match content a with
            | None -> model
            | Some data ->
                if a = b then model
                else begin
                  Lfs_core.Nvram_fs.rename nfs ~odir:Fs.root (name a)
                    ~ndir:Fs.root (name b);
                  (name b, data)
                  :: List.remove_assoc (name a) (List.remove_assoc (name b) model)
                end)
        | Sync ->
            Fs.sync fs0;
            model
        | Checkpoint ->
            Lfs_core.Nvram_fs.checkpoint nfs;
            model
      in
      let model = List.fold_left apply_nvram [] ops in
      (* Power cut with no warning; recover with the journal. *)
      Helpers.reboot disk;
      let nfs2, _ = Lfs_core.Nvram_fs.recover (Helpers.vdev disk) nvram in
      let fs2 = Lfs_core.Nvram_fs.fs nfs2 in
      check_against_model fs2 model
      && Lfs_core.Fsck.is_clean (Lfs_core.Fsck.check fs2))

(* ----- Device-stack properties ----- *)

module Vdev = Lfs_disk.Vdev
module Vdev_stripe = Lfs_disk.Vdev_stripe
module Vdev_cache = Lfs_disk.Vdev_cache
module Vdev_trace = Lfs_disk.Vdev_trace
module Geometry = Lfs_disk.Geometry

let stripe_width = 4
let stripe_child_blocks = 64
let stripe_blocks = stripe_width * stripe_child_blocks

(* Writes as (addr, len, seed) triples; lens cross stripe boundaries. *)
let arb_stripe_writes =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 40)
        (map2
           (fun (addr, seed) len -> (min addr (stripe_blocks - len), len, seed))
           (pair (int_bound (stripe_blocks - 1)) (int_bound 10_000))
           (int_range 1 (2 * stripe_width + 1))))
  in
  QCheck.make
    ~print:(fun ws ->
      String.concat "; "
        (List.map (fun (a, l, s) -> Printf.sprintf "w@%d+%d#%d" a l s) ws))
    ~shrink:QCheck.Shrink.list gen

let prop_stripe_matches_single_disk =
  QCheck.Test.make ~count:60
    ~name:"striped vdev stores the same bytes as one disk" arb_stripe_writes
    (fun writes ->
      let striped =
        Vdev_stripe.create
          (Array.init stripe_width (fun _ ->
               Vdev.of_disk (Disk.create (Geometry.instant ~blocks:stripe_child_blocks))))
      in
      let single =
        Vdev.of_disk (Disk.create (Geometry.instant ~blocks:stripe_blocks))
      in
      let bs = Vdev.block_size striped in
      List.iter
        (fun (addr, len, seed) ->
          let data = Helpers.bytes_of_pattern ~seed (len * bs) in
          Vdev.write_blocks striped addr data;
          Vdev.write_blocks single addr data)
        writes;
      Bytes.equal
        (Vdev.read_blocks striped 0 stripe_blocks)
        (Vdev.read_blocks single 0 stripe_blocks))

(* A cached stack must be observationally identical to the raw device,
   and every block that travels through the read path must be accounted
   as exactly one hit or one miss. *)

let cache_prop_blocks = 128

let arb_cache_ops =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 60)
        (map2
           (fun (w, addr, seed) len ->
             (w, min addr (cache_prop_blocks - len), len, seed))
           (triple bool (int_bound (cache_prop_blocks - 1)) (int_bound 10_000))
           (int_range 1 12)))
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (fun (w, a, l, s) ->
             Printf.sprintf "%c@%d+%d#%d" (if w then 'w' else 'r') a l s)
           ops))
    ~shrink:QCheck.Shrink.list gen

let prop_cached_stack_matches_raw =
  QCheck.Test.make ~count:80
    ~name:"Vdev_cache serves identical bytes and accounts every block"
    arb_cache_ops
    (fun ops ->
      let mk () = Disk.create (Geometry.instant ~blocks:cache_prop_blocks) in
      let raw = Vdev.of_disk (mk ()) in
      let cache = Vdev_cache.create ~capacity:32 (Vdev.of_disk (mk ())) in
      let cached = Vdev_cache.vdev cache in
      let bs = Vdev.block_size raw in
      let blocks_read = ref 0 in
      let reads_match =
        List.for_all
          (fun (w, addr, len, seed) ->
            if w then begin
              let data = Helpers.bytes_of_pattern ~seed (len * bs) in
              Vdev.write_blocks raw addr data;
              Vdev.write_blocks cached addr data;
              true
            end
            else begin
              blocks_read := !blocks_read + len;
              Bytes.equal (Vdev.read_blocks raw addr len)
                (Vdev.read_blocks cached addr len)
            end)
          ops
      in
      let counts_match =
        Vdev_cache.hits cache + Vdev_cache.misses cache = !blocks_read
      in
      reads_match && counts_match
      && Bytes.equal
           (Vdev.read_blocks raw 0 cache_prop_blocks)
           (Vdev.read_blocks cached 0 cache_prop_blocks))

(* A torn write must persist exactly the planned prefix, and the wrapper
   (cache or trace) must not serve stale data for the torn tail. *)
let check_torn_write wrap (k, extra) =
  let disk = Disk.create (Geometry.instant ~blocks:256) in
  let dev = wrap disk in
  let bs = Vdev.block_size dev in
  let n = k + extra in
  let addr = 3 in
  let old = Helpers.bytes_of_pattern ~seed:1 (n * bs) in
  Vdev.write_blocks dev addr old;
  (* Warm any cache with the old contents. *)
  for i = 0 to n - 1 do
    ignore (Vdev.read_block dev (addr + i))
  done;
  (* Arm the crash through the wrapped view: scheduling composes down
     the stack instead of reaching under it. *)
  Vdev.plan_crash dev ~after_blocks:k;
  let fresh = Helpers.bytes_of_pattern ~seed:2 (n * bs) in
  let crashed =
    match Vdev.write_blocks dev addr fresh with
    | () -> false
    | exception Vdev.Crashed -> true
  in
  Vdev.reboot dev;
  let block_ok i =
    let expect = if i < k then fresh else old in
    let want = Bytes.sub expect (i * bs) bs in
    Bytes.equal want (Vdev.read_block dev (addr + i))
    && Bytes.equal want (Disk.read_block disk (addr + i))
  in
  let all_ok = ref crashed in
  for i = 0 to n - 1 do
    all_ok := !all_ok && block_ok i
  done;
  !all_ok

let arb_torn =
  QCheck.make
    ~print:(fun (k, e) -> Printf.sprintf "survive=%d torn=%d" k e)
    QCheck.Gen.(pair (int_bound 6) (int_range 1 6))

let prop_torn_write_through_cache =
  QCheck.Test.make ~count:60
    ~name:"torn writes keep a Vdev_cache coherent" arb_torn
    (check_torn_write (fun disk ->
         Vdev_cache.vdev (Vdev_cache.create ~capacity:64 (Vdev.of_disk disk))))

let prop_torn_write_through_trace =
  QCheck.Test.make ~count:60
    ~name:"torn writes propagate through Vdev_trace" arb_torn
    (check_torn_write (fun disk ->
         Vdev_trace.vdev (Vdev_trace.create (Vdev.of_disk disk))))

(* ----- Submit/complete vs synchronous data equivalence ----- *)

(* Scheduling lives purely on the time plane: a program of tagged
   submits, awaits and drains must leave exactly the bytes the
   synchronous API leaves, on every composition of the device stack. *)

module Vdev_fault = Lfs_disk.Vdev_fault
module Io_queue = Lfs_disk.Io_queue

let sq_blocks = 128

type sq_op =
  | Sq_read of int * int
  | Sq_write of int * int * int
  | Sq_await
  | Sq_drain

let print_sq = function
  | Sq_read (a, l) -> Printf.sprintf "r@%d+%d" a l
  | Sq_write (a, l, s) -> Printf.sprintf "w@%d+%d#%d" a l s
  | Sq_await -> "await"
  | Sq_drain -> "drain"

let sq_stack_names = [| "plain"; "cache"; "stripe"; "trace"; "fault" |]

let sq_stack = function
  | 0 -> Vdev.of_disk (Disk.create (Geometry.instant ~blocks:sq_blocks))
  | 1 ->
      Vdev_cache.vdev
        (Vdev_cache.create ~capacity:16
           (Vdev.of_disk (Disk.create (Geometry.instant ~blocks:sq_blocks))))
  | 2 ->
      Vdev_stripe.create
        (Array.init 4 (fun _ ->
             Vdev.of_disk (Disk.create (Geometry.instant ~blocks:(sq_blocks / 4)))))
  | 3 ->
      Vdev_trace.vdev
        (Vdev_trace.create
           (Vdev.of_disk (Disk.create (Geometry.instant ~blocks:sq_blocks))))
  | _ ->
      Vdev_fault.vdev
        (Vdev_fault.create
           (Vdev.of_disk (Disk.create (Geometry.instant ~blocks:sq_blocks))))

let arb_sq_prog =
  let gen =
    QCheck.Gen.(
      pair (int_bound 4)
        (list_size (int_range 1 50)
           (frequency
              [
                ( 4,
                  map2
                    (fun (a, s) l -> Sq_write (min a (sq_blocks - l), l, s))
                    (pair (int_bound (sq_blocks - 1)) (int_bound 10_000))
                    (int_range 1 8) );
                ( 4,
                  map2
                    (fun a l -> Sq_read (min a (sq_blocks - l), l))
                    (int_bound (sq_blocks - 1))
                    (int_range 1 8) );
                (1, return Sq_await);
                (1, return Sq_drain);
              ])))
  in
  QCheck.make
    ~print:(fun (c, ops) ->
      Printf.sprintf "%s: %s" sq_stack_names.(c)
        (String.concat "; " (List.map print_sq ops)))
    ~shrink:(fun (c, ops) ->
      QCheck.Iter.map (fun ops -> (c, ops)) (QCheck.Shrink.list ops))
    gen

let prop_queued_data_equivalence =
  QCheck.Test.make ~count:100
    ~name:"queued submit/await programs are data-equivalent to the sync path"
    arb_sq_prog
    (fun (comp, ops) ->
      let sync_v = sq_stack comp in
      let queued_v = sq_stack comp in
      let now = ref 0.0 in
      Vdev.set_mode queued_v (Vdev.Queued (fun () -> !now));
      let bs = Vdev.block_size sync_v in
      let tickets = ref [] in
      let reads_match =
        List.for_all
          (fun op ->
            now := !now +. 1.0;
            match op with
            | Sq_write (addr, len, seed) ->
                let data = Helpers.bytes_of_pattern ~seed (len * bs) in
                Vdev.write_blocks sync_v addr data;
                tickets := Vdev.submit_write queued_v addr data :: !tickets;
                true
            | Sq_read (addr, len) ->
                let want = Vdev.read_blocks sync_v addr len in
                let tk, got = Vdev.submit_read queued_v addr len in
                tickets := tk :: !tickets;
                Bytes.equal want got
            | Sq_await ->
                (match !tickets with
                | [] -> ()
                | tk :: _ -> ignore (Vdev.await tk));
                true
            | Sq_drain ->
                ignore (Vdev.drain queued_v);
                true)
          ops
      in
      ignore (Vdev.drain queued_v);
      let settled = Vdev.outstanding_in queued_v ~lo:0 ~hi:max_int = 0 in
      Vdev.set_mode queued_v Vdev.Direct;
      reads_match && settled
      && Bytes.equal
           (Vdev.read_blocks sync_v 0 sq_blocks)
           (Vdev.read_blocks queued_v 0 sq_blocks))

let suite =
  ( "properties",
    [
      QCheck_alcotest.to_alcotest prop_model_agreement;
      QCheck_alcotest.to_alcotest prop_remount_preserves;
      QCheck_alcotest.to_alcotest prop_recovery_after_sync_preserves;
      QCheck_alcotest.to_alcotest prop_nvram_no_loss;
      QCheck_alcotest.to_alcotest prop_stripe_matches_single_disk;
      QCheck_alcotest.to_alcotest prop_cached_stack_matches_raw;
      QCheck_alcotest.to_alcotest prop_torn_write_through_cache;
      QCheck_alcotest.to_alcotest prop_torn_write_through_trace;
      QCheck_alcotest.to_alcotest prop_queued_data_equivalence;
    ] )
