(* Tests for the workload layer: the CPU model, the common driver, and
   the three benchmark workloads at miniature scale. *)

module W = Lfs_workload
module Cpu = W.Cpu_model

let test_cpu_cost_scales () =
  let base = Cpu.sun4_260 in
  let fast = Cpu.scale base 2.0 in
  Alcotest.(check (float 1e-12)) "2x faster halves cost"
    (Cpu.cost base ~ops:100 ~blocks:50 /. 2.0)
    (Cpu.cost fast ~ops:100 ~blocks:50)

let test_cpu_elapsed () =
  Alcotest.(check (float 1e-12)) "sync adds" 5.0
    (Cpu.elapsed ~sync:true ~cpu_s:2.0 ~disk_s:3.0);
  Alcotest.(check (float 1e-12)) "async overlaps" 3.0
    (Cpu.elapsed ~sync:false ~cpu_s:2.0 ~disk_s:3.0)

let tiny_geom = Lfs_disk.Geometry.wren_iv ~blocks:4096

let test_fsops_lfs_and_ffs_agree () =
  List.iter
    (fun (fs : W.Fsops.t) ->
      ignore (fs.W.Fsops.mkdir_path "/d");
      let ino = fs.W.Fsops.create_path "/d/f" in
      fs.W.Fsops.write ino ~off:0 (Bytes.of_string "same api");
      Alcotest.(check (option int)) "resolve" (Some ino) (fs.W.Fsops.resolve "/d/f");
      Helpers.check_bytes "read" (Bytes.of_string "same api")
        (fs.W.Fsops.read ino ~off:0 ~len:8);
      fs.W.Fsops.sync ();
      fs.W.Fsops.drop_caches ();
      Helpers.check_bytes "read after cache drop" (Bytes.of_string "same api")
        (fs.W.Fsops.read ino ~off:0 ~len:8))
    [ W.Fsops.fresh_lfs tiny_geom; W.Fsops.fresh_ffs tiny_geom ]

let smallfile_params =
  { W.Smallfile.default_params with W.Smallfile.nfiles = 300; files_per_dir = 50 }

let test_smallfile_runs_both () =
  let lfs = W.Smallfile.run smallfile_params (W.Fsops.fresh_lfs tiny_geom) in
  let ffs = W.Smallfile.run smallfile_params (W.Fsops.fresh_ffs tiny_geom) in
  List.iter
    (fun (r : W.Smallfile.result) ->
      Alcotest.(check int) "three phases" 3 (List.length r.W.Smallfile.phases);
      List.iter
        (fun (ph : W.Smallfile.phase_result) ->
          Alcotest.(check bool) "positive rate" true (ph.W.Smallfile.files_per_sec > 0.0);
          Alcotest.(check bool) "busy fraction in [0,1]" true
            (ph.W.Smallfile.disk_busy_frac >= 0.0 && ph.W.Smallfile.disk_busy_frac <= 1.0001))
        r.W.Smallfile.phases)
    [ lfs; ffs ];
  let create (r : W.Smallfile.result) =
    (List.find (fun p -> p.W.Smallfile.phase = W.Smallfile.Create) r.W.Smallfile.phases)
      .W.Smallfile.files_per_sec
  in
  Alcotest.(check bool) "LFS creates much faster" true (create lfs > 3.0 *. create ffs)

let test_smallfile_prediction_monotone () =
  let lfs = W.Smallfile.run smallfile_params (W.Fsops.fresh_lfs tiny_geom) in
  let p1 = W.Smallfile.predict_create smallfile_params lfs ~cpu_multiple:1.0 in
  let p4 = W.Smallfile.predict_create smallfile_params lfs ~cpu_multiple:4.0 in
  Alcotest.(check bool) "faster CPU never slower" true (p4 >= p1)

let test_largefile_phases () =
  let p = { W.Largefile.default_params with W.Largefile.file_mb = 2 } in
  let geom = Lfs_disk.Geometry.wren_iv ~blocks:4096 in
  let lfs = W.Largefile.run p (W.Fsops.fresh_lfs geom) in
  let ffs = W.Largefile.run p (W.Fsops.fresh_ffs geom) in
  List.iter
    (fun (r : W.Largefile.result) ->
      Alcotest.(check int) "five phases" 5 (List.length r.W.Largefile.phases);
      List.iter
        (fun (ph : W.Largefile.phase_result) ->
          Alcotest.(check bool)
            (W.Largefile.phase_name ph.W.Largefile.phase ^ " positive")
            true
            (ph.W.Largefile.kbytes_per_sec > 0.0))
        r.W.Largefile.phases)
    [ lfs; ffs ];
  let rate phase (r : W.Largefile.result) =
    (List.find (fun p -> p.W.Largefile.phase = phase) r.W.Largefile.phases)
      .W.Largefile.kbytes_per_sec
  in
  Alcotest.(check bool) "LFS wins random writes" true
    (rate W.Largefile.Rand_write lfs > rate W.Largefile.Rand_write ffs);
  Alcotest.(check bool) "FFS wins reread after random writes" true
    (rate W.Largefile.Reread ffs > rate W.Largefile.Reread lfs)

let test_production_tiny_run () =
  let spec =
    {
      W.Production.tmp with
      W.Production.name = "/test";
      disk_mb = 8;
      seg_kb = 128;
      traffic_to_disk_ratio = 0.5;
      target_util = 0.3;
    }
  in
  let r = W.Production.run spec in
  Alcotest.(check bool) "utilisation near target" true
    (r.W.Production.in_use > 0.2 && r.W.Production.in_use < 0.45);
  Alcotest.(check bool) "write cost >= 1" true (r.W.Production.write_cost >= 1.0);
  let live_sum =
    List.fold_left (fun acc (_, f) -> acc +. f) 0.0 r.W.Production.live_breakdown
  in
  Alcotest.(check (float 1e-6)) "live fractions sum to 1" 1.0 live_sum;
  let bw_sum =
    List.fold_left (fun acc (_, f) -> acc +. f) 0.0 r.W.Production.log_bandwidth
  in
  Alcotest.(check (float 1e-6)) "bandwidth fractions sum to 1" 1.0 bw_sum

let test_recovery_bench_scales_with_files () =
  let run file_kb =
    W.Recovery_bench.run
      { W.Recovery_bench.file_kb; data_mb = 2; disk_mb = 16; cpu = Cpu.sun4_260 }
  in
  let small_files = run 1 in
  let large_files = run 10 in
  Alcotest.(check bool) "more files recovered" true
    (small_files.W.Recovery_bench.files_recovered
    > large_files.W.Recovery_bench.files_recovered);
  Alcotest.(check bool) "more files take longer" true
    (small_files.W.Recovery_bench.recovery_s
    > large_files.W.Recovery_bench.recovery_s)

let test_trace_roundtrip () =
  let t = W.Trace.record_random ~ops:100 ~seed:5 () in
  let path = Filename.temp_file "lfs_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.Trace.save t path;
      let t' = W.Trace.load path in
      Alcotest.(check int) "same length" (W.Trace.length t) (W.Trace.length t');
      Alcotest.(check bool) "identical" true (t = t'))

let test_trace_replay_identical_both_systems () =
  (* The same trace drives LFS and FFS; afterwards the namespaces and
     contents agree between the two systems. *)
  let t = W.Trace.record_random ~ops:150 ~seed:6 () in
  let lfs = W.Fsops.fresh_lfs tiny_geom in
  let ffs = W.Fsops.fresh_ffs tiny_geom in
  Alcotest.(check int) "lfs replay skips nothing" 0 (W.Trace.replay t lfs);
  Alcotest.(check int) "ffs replay skips nothing" 0 (W.Trace.replay t ffs);
  List.iter
    (fun op ->
      match op with
      | W.Trace.Write { path; _ } -> (
          match (lfs.W.Fsops.resolve path, ffs.W.Fsops.resolve path) with
          | Some a, Some b ->
              let la = lfs.W.Fsops.file_size a in
              let lb = ffs.W.Fsops.file_size b in
              Alcotest.(check int) (path ^ " same size") la lb;
              Helpers.check_bytes (path ^ " same content")
                (lfs.W.Fsops.read a ~off:0 ~len:la)
                (ffs.W.Fsops.read b ~off:0 ~len:lb)
          | None, None -> ()
          | _ -> Alcotest.failf "%s exists in only one system" path)
      | W.Trace.Mkdir _ | W.Trace.Create _ | W.Trace.Read _
      | W.Trace.Unlink _ | W.Trace.Sync ->
          ())
    t

let test_trace_replay_counts_skips () =
  (* A hand-edited trace touching paths that never existed: replay
     applies what it can and reports exactly how much it dropped. *)
  let t =
    [
      W.Trace.Create "/real";
      W.Trace.Write { path = "/real"; off = 0; len = 64; seed = 1 };
      W.Trace.Read { path = "/ghost"; off = 0; len = 16 };
      W.Trace.Write { path = "/ghost"; off = 0; len = 16; seed = 2 };
      W.Trace.Unlink "/ghost";
      W.Trace.Sync;
    ]
  in
  let lfs = W.Fsops.fresh_lfs tiny_geom in
  Alcotest.(check int) "three skipped" 3 (W.Trace.replay t lfs);
  Alcotest.(check bool) "real file survived" true (lfs.W.Fsops.resolve "/real" <> None)

let test_trace_deterministic () =
  let a = W.Trace.record_random ~ops:80 ~seed:9 () in
  let b = W.Trace.record_random ~ops:80 ~seed:9 () in
  Alcotest.(check bool) "same trace" true (a = b)

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "lfs_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a trace";
      close_out oc;
      match W.Trace.load path with
      | _ -> Alcotest.fail "should reject"
      | exception Failure _ -> ())

let test_andrew_benchmark () =
  let p = W.Andrew.default_params in
  let geom = Lfs_disk.Geometry.wren_iv ~blocks:8192 in
  let lfs = W.Andrew.run p (W.Fsops.fresh_lfs geom) in
  let ffs = W.Andrew.run p (W.Fsops.fresh_ffs geom) in
  Alcotest.(check bool) "LFS faster" true (lfs.W.Andrew.total_s < ffs.W.Andrew.total_s);
  let speedup = ffs.W.Andrew.total_s /. lfs.W.Andrew.total_s in
  Alcotest.(check bool)
    (Printf.sprintf "modest speedup (%.2fx): the benchmark is CPU-bound" speedup)
    true
    (speedup < 1.6);
  Alcotest.(check bool) "LFS CPU-bound" true (lfs.W.Andrew.cpu_utilization > 0.8)

let test_cyclic_pattern_is_free () =
  (* Round-robin overwrite: the log's oldest segment is fully dead by
     the time it is needed again, so cleaning costs nothing. *)
  let r =
    Lfs_sim.Simulator.run
      {
        Lfs_sim.Simulator.default_params with
        nsegs = 64;
        blocks_per_seg = 32;
        utilization = 0.8;
        pattern = Lfs_sim.Access.Cyclic;
        warmup_writes = 50_000;
        measured_writes = 20_000;
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "write cost %.3f ~ 1" r.Lfs_sim.Simulator.write_cost)
    true
    (r.Lfs_sim.Simulator.write_cost < 1.05)

let suite =
  ( "workload",
    [
      Alcotest.test_case "cpu cost scales" `Quick test_cpu_cost_scales;
      Alcotest.test_case "cpu elapsed" `Quick test_cpu_elapsed;
      Alcotest.test_case "fsops drivers agree" `Quick test_fsops_lfs_and_ffs_agree;
      Alcotest.test_case "smallfile both systems" `Slow test_smallfile_runs_both;
      Alcotest.test_case "smallfile prediction" `Slow test_smallfile_prediction_monotone;
      Alcotest.test_case "largefile phases" `Slow test_largefile_phases;
      Alcotest.test_case "production tiny run" `Slow test_production_tiny_run;
      Alcotest.test_case "recovery bench scaling" `Slow test_recovery_bench_scales_with_files;
      Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
      Alcotest.test_case "trace replay agreement" `Slow test_trace_replay_identical_both_systems;
      Alcotest.test_case "trace replay counts skips" `Quick test_trace_replay_counts_skips;
      Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
      Alcotest.test_case "trace rejects garbage" `Quick test_trace_load_rejects_garbage;
      Alcotest.test_case "cyclic pattern free" `Quick test_cyclic_pattern_is_free;
      Alcotest.test_case "andrew benchmark" `Slow test_andrew_benchmark;
    ] )
