(* Integration tests for the LFS public API: file IO, namespace
   operations, persistence across remounts, and fsck invariants. *)

module Fs = Lfs_core.Fs
module Types = Lfs_core.Types
module Disk = Lfs_disk.Disk
module Prng = Lfs_util.Prng

let test_format_mount_empty () =
  let _, fs = Helpers.fresh_fs () in
  Alcotest.(check (list (pair string int))) "empty root" [] (Fs.readdir fs Fs.root);
  Helpers.fsck_clean fs

let test_write_read_small () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "hello" in
  let data = Bytes.of_string "hello, log-structured world" in
  Fs.write fs ino ~off:0 data;
  Helpers.check_bytes "read back" data (Fs.read fs ino ~off:0 ~len:(Bytes.length data));
  Alcotest.(check int) "size" (Bytes.length data) (Fs.file_size fs ino)

let test_write_read_multiblock () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "big" in
  let data = Helpers.bytes_of_pattern ~seed:1 50_000 in
  Fs.write fs ino ~off:0 data;
  Helpers.check_bytes "read back" data (Fs.read fs ino ~off:0 ~len:50_000)

let test_write_at_offset () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "f" in
  Fs.write fs ino ~off:0 (Bytes.of_string "aaaa");
  Fs.write fs ino ~off:2 (Bytes.of_string "BB");
  Helpers.check_bytes "overlapped" (Bytes.of_string "aaBB")
    (Fs.read fs ino ~off:0 ~len:4)

let test_sparse_hole_reads_zero () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "sparse" in
  Fs.write fs ino ~off:20_000 (Bytes.of_string "end");
  Alcotest.(check int) "size covers hole" 20_003 (Fs.file_size fs ino);
  let hole = Fs.read fs ino ~off:5_000 ~len:100 in
  Alcotest.(check bool) "hole is zeros" true
    (Bytes.for_all (fun c -> c = '\000') hole)

let test_read_past_eof_truncated () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "short" in
  Fs.write fs ino ~off:0 (Bytes.of_string "xyz");
  Alcotest.(check int) "short read" 3 (Bytes.length (Fs.read fs ino ~off:0 ~len:100));
  Alcotest.(check int) "read at eof" 0 (Bytes.length (Fs.read fs ino ~off:3 ~len:10));
  Alcotest.(check int) "read past eof" 0 (Bytes.length (Fs.read fs ino ~off:50 ~len:10))

let test_empty_write_noop () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "empty" in
  Fs.write fs ino ~off:0 (Bytes.create 0);
  Alcotest.(check int) "still empty" 0 (Fs.file_size fs ino)

let test_truncate_shrinks () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "t" in
  Fs.write fs ino ~off:0 (Helpers.bytes_of_pattern ~seed:2 10_000);
  Fs.truncate fs ino ~len:100;
  Alcotest.(check int) "new size" 100 (Fs.file_size fs ino);
  Alcotest.(check int) "reads stop at size" 100
    (Bytes.length (Fs.read fs ino ~off:0 ~len:10_000));
  Helpers.fsck_clean fs

let test_truncate_then_extend_zeros () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "tz" in
  Fs.write fs ino ~off:0 (Bytes.make 5000 'x');
  Fs.truncate fs ino ~len:2500;
  Fs.write fs ino ~off:4000 (Bytes.of_string "!");
  let gap = Fs.read fs ino ~off:2500 ~len:1500 in
  Alcotest.(check bool) "gap re-reads as zeros" true
    (Bytes.for_all (fun c -> c = '\000') gap)

let test_truncate_zero_bumps_version () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "v" in
  Fs.write fs ino ~off:0 (Bytes.of_string "data");
  let v0 = (Fs.stat fs ino).Fs.st_version in
  Fs.truncate fs ino ~len:0;
  Alcotest.(check int) "version bumped" (v0 + 1) (Fs.stat fs ino).Fs.st_version

let test_stat_fields () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "s" in
  Fs.write fs ino ~off:0 (Bytes.of_string "abc");
  let st = Fs.stat fs ino in
  Alcotest.(check int) "ino" ino st.Fs.st_ino;
  Alcotest.(check int) "size" 3 st.Fs.st_size;
  Alcotest.(check int) "nlink" 1 st.Fs.st_nlink;
  Alcotest.(check bool) "regular" true (st.Fs.st_ftype = Types.Regular)

(* ----- Namespace ----- *)

let test_mkdir_and_nesting () =
  let _, fs = Helpers.fresh_fs () in
  let a = Fs.mkdir fs ~dir:Fs.root "a" in
  let b = Fs.mkdir fs ~dir:a "b" in
  let f = Fs.create fs ~dir:b "f" in
  Alcotest.(check (option int)) "resolve nested" (Some f) (Fs.resolve fs "/a/b/f");
  Alcotest.(check (option int)) "resolve dir" (Some b) (Fs.resolve fs "/a/b");
  Alcotest.(check (option int)) "missing" None (Fs.resolve fs "/a/zzz")

let test_duplicate_create_rejected () =
  let _, fs = Helpers.fresh_fs () in
  ignore (Fs.create fs ~dir:Fs.root "dup");
  (match Fs.create fs ~dir:Fs.root "dup" with
  | _ -> Alcotest.fail "duplicate should fail"
  | exception Types.Fs_error _ -> ());
  (match Fs.mkdir fs ~dir:Fs.root "dup" with
  | _ -> Alcotest.fail "mkdir over file should fail"
  | exception Types.Fs_error _ -> ())

let test_unlink_removes () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "gone" in
  Fs.write fs ino ~off:0 (Bytes.make 8000 'g');
  Fs.unlink fs ~dir:Fs.root "gone";
  Alcotest.(check (option int)) "no longer resolves" None (Fs.resolve fs "/gone");
  (match Fs.stat fs ino with
  | _ -> Alcotest.fail "stat of deleted inode should fail"
  | exception Types.Fs_error _ -> ());
  Helpers.fsck_clean fs

let test_unlink_missing_rejected () =
  let _, fs = Helpers.fresh_fs () in
  match Fs.unlink fs ~dir:Fs.root "ghost" with
  | () -> Alcotest.fail "should fail"
  | exception Types.Fs_error _ -> ()

let test_unlink_directory_rejected () =
  let _, fs = Helpers.fresh_fs () in
  ignore (Fs.mkdir fs ~dir:Fs.root "d");
  match Fs.unlink fs ~dir:Fs.root "d" with
  | () -> Alcotest.fail "unlink of dir should fail"
  | exception Types.Fs_error _ -> ()

let test_rmdir () =
  let _, fs = Helpers.fresh_fs () in
  let d = Fs.mkdir fs ~dir:Fs.root "d" in
  ignore (Fs.create fs ~dir:d "inner");
  (match Fs.rmdir fs ~dir:Fs.root "d" with
  | () -> Alcotest.fail "non-empty rmdir should fail"
  | exception Types.Fs_error _ -> ());
  Fs.unlink fs ~dir:d "inner";
  Fs.rmdir fs ~dir:Fs.root "d";
  Alcotest.(check (option int)) "gone" None (Fs.resolve fs "/d");
  Helpers.fsck_clean fs

let test_hard_links () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "orig" in
  Fs.write fs ino ~off:0 (Bytes.of_string "shared");
  Fs.link fs ~dir:Fs.root "alias" ino;
  Alcotest.(check int) "nlink 2" 2 (Fs.stat fs ino).Fs.st_nlink;
  Alcotest.(check (option int)) "alias resolves" (Some ino) (Fs.resolve fs "/alias");
  Fs.unlink fs ~dir:Fs.root "orig";
  Helpers.check_bytes "alive through alias" (Bytes.of_string "shared")
    (Fs.read fs ino ~off:0 ~len:6);
  Alcotest.(check int) "nlink 1" 1 (Fs.stat fs ino).Fs.st_nlink;
  Fs.unlink fs ~dir:Fs.root "alias";
  Helpers.fsck_clean fs

let test_rename_same_dir () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "before" in
  Fs.rename fs ~odir:Fs.root "before" ~ndir:Fs.root "after";
  Alcotest.(check (option int)) "new name" (Some ino) (Fs.resolve fs "/after");
  Alcotest.(check (option int)) "old gone" None (Fs.resolve fs "/before");
  Helpers.fsck_clean fs

let test_rename_across_dirs () =
  let _, fs = Helpers.fresh_fs () in
  let a = Fs.mkdir fs ~dir:Fs.root "a" in
  let b = Fs.mkdir fs ~dir:Fs.root "b" in
  let ino = Fs.create fs ~dir:a "f" in
  Fs.rename fs ~odir:a "f" ~ndir:b "g";
  Alcotest.(check (option int)) "moved" (Some ino) (Fs.resolve fs "/b/g");
  Alcotest.(check (option int)) "source gone" None (Fs.resolve fs "/a/f");
  Helpers.fsck_clean fs

let test_rename_replaces_target () =
  let _, fs = Helpers.fresh_fs () in
  let src = Fs.create fs ~dir:Fs.root "src" in
  Fs.write fs src ~off:0 (Bytes.of_string "SRC");
  let tgt = Fs.create fs ~dir:Fs.root "tgt" in
  Fs.write fs tgt ~off:0 (Bytes.of_string "TGT");
  Fs.rename fs ~odir:Fs.root "src" ~ndir:Fs.root "tgt";
  Alcotest.(check (option int)) "target is source" (Some src) (Fs.resolve fs "/tgt");
  (match Fs.stat fs tgt with
  | _ -> Alcotest.fail "old target should be deleted"
  | exception Types.Fs_error _ -> ());
  Helpers.fsck_clean fs

let test_rename_noop_same_file () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "x" in
  Fs.link fs ~dir:Fs.root "y" ino;
  Fs.rename fs ~odir:Fs.root "x" ~ndir:Fs.root "y";
  (* POSIX: both links remain. *)
  Alcotest.(check (option int)) "x stays" (Some ino) (Fs.resolve fs "/x");
  Alcotest.(check (option int)) "y stays" (Some ino) (Fs.resolve fs "/y");
  Helpers.fsck_clean fs

let test_readdir_lists_everything () =
  let _, fs = Helpers.fresh_fs () in
  let names = [ "one"; "two"; "three" ] in
  List.iter (fun n -> ignore (Fs.create fs ~dir:Fs.root n)) names;
  Alcotest.(check (list string)) "listing" names
    (List.map fst (Fs.readdir fs Fs.root))

let test_many_files_in_dir () =
  let _, fs = Helpers.fresh_fs ~blocks:4096 () in
  for i = 0 to 199 do
    ignore (Fs.create fs ~dir:Fs.root (Printf.sprintf "file%03d" i))
  done;
  Alcotest.(check int) "200 entries" 200 (List.length (Fs.readdir fs Fs.root));
  Helpers.fsck_clean fs

let test_path_helpers () =
  let _, fs = Helpers.fresh_fs () in
  ignore (Fs.mkdir_path fs "/x");
  ignore (Fs.mkdir_path fs "/x/y");
  Fs.write_path fs "/x/y/z" (Bytes.of_string "deep");
  Helpers.check_bytes "read_path" (Bytes.of_string "deep") (Option.get (Fs.read_path fs "/x/y/z"));
  Fs.write_path fs "/x/y/z" (Bytes.of_string "replaced");
  Helpers.check_bytes "write_path replaces" (Bytes.of_string "replaced")
    (Option.get (Fs.read_path fs "/x/y/z"))

(* ----- Persistence ----- *)

let test_remount_preserves_everything () =
  let disk, fs = Helpers.fresh_fs () in
  let prng = Prng.create ~seed:31 in
  let model = Helpers.random_ops ~ops:120 fs prng in
  Fs.unmount fs;
  let fs2 = Fs.mount (Helpers.vdev disk) in
  Helpers.check_model fs2 model;
  Helpers.fsck_clean fs2

let test_mount_discards_after_checkpoint () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/durable" (Bytes.of_string "saved");
  Fs.checkpoint fs;
  Fs.write_path fs "/volatile" (Bytes.of_string "lost");
  Fs.sync fs;
  (* A plain mount (no roll-forward) returns to the checkpoint. *)
  let fs2 = Fs.mount (Helpers.vdev disk) in
  Alcotest.(check bool) "durable present" true (Fs.resolve fs2 "/durable" <> None);
  Alcotest.(check (option int)) "volatile discarded" None (Fs.resolve fs2 "/volatile");
  Helpers.fsck_clean fs2

let test_mount_unformatted_fails () =
  let disk = Helpers.fresh_disk () in
  match Fs.mount (Helpers.vdev disk) with
  | _ -> Alcotest.fail "should fail"
  | exception Types.Corrupt _ -> ()

let test_double_remount () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/f" (Bytes.of_string "1");
  Fs.unmount fs;
  let fs2 = Fs.mount (Helpers.vdev disk) in
  Fs.write_path fs2 "/g" (Bytes.of_string "2");
  Fs.unmount fs2;
  let fs3 = Fs.mount (Helpers.vdev disk) in
  Alcotest.(check bool) "both survive" true
    (Fs.resolve fs3 "/f" <> None && Fs.resolve fs3 "/g" <> None);
  Helpers.fsck_clean fs3

let test_atime_updates_on_read () =
  let _, fs = Helpers.fresh_fs () in
  let ino = Fs.create fs ~dir:Fs.root "r" in
  Fs.write fs ino ~off:0 (Bytes.of_string "data");
  let before = (Fs.stat fs ino).Fs.st_atime in
  ignore (Fs.read fs ino ~off:0 ~len:4);
  Alcotest.(check bool) "atime advanced" true ((Fs.stat fs ino).Fs.st_atime >= before)

let test_out_of_space () =
  (* A tiny disk filled beyond capacity must fail cleanly; the durable
     state (last checkpoint) stays consistent. *)
  let disk = Helpers.fresh_disk ~blocks:512 () in
  Lfs_core.Fs.format (Helpers.vdev disk) Helpers.test_config;
  let fs = Fs.mount (Helpers.vdev disk) in
  (match
     for i = 0 to 100 do
       Fs.write_path fs (Printf.sprintf "/f%d" i) (Bytes.make 60_000 'F')
     done
   with
  | () -> Alcotest.fail "should run out of space"
  | exception Types.Fs_error _ -> ());
  let fs2 = Fs.mount (Helpers.vdev disk) in
  Helpers.fsck_clean fs2

let test_deterministic_runs () =
  let run () =
    let _, fs = Helpers.fresh_fs () in
    let prng = Prng.create ~seed:99 in
    let _ = Helpers.random_ops ~ops:80 fs prng in
    Fs.sync fs;
    Lfs_core.Fs_stats.blocks_written_new (Fs.stats fs)
  in
  Alcotest.(check int) "identical traffic" (run ()) (run ())

(* ----- Randomised integration (model-checked) ----- *)

let test_random_ops_model ~seed () =
  let disk, fs = Helpers.fresh_fs ~blocks:2048 () in
  let prng = Prng.create ~seed in
  let model = Helpers.random_ops ~ops:300 fs prng in
  Helpers.check_model fs model;
  Helpers.fsck_clean fs;
  Fs.unmount fs;
  let fs2 = Fs.mount (Helpers.vdev disk) in
  Helpers.check_model fs2 model;
  Helpers.fsck_clean fs2

let suite =
  ( "fs",
    [
      Alcotest.test_case "format/mount empty" `Quick test_format_mount_empty;
      Alcotest.test_case "write/read small" `Quick test_write_read_small;
      Alcotest.test_case "write/read multiblock" `Quick test_write_read_multiblock;
      Alcotest.test_case "write at offset" `Quick test_write_at_offset;
      Alcotest.test_case "sparse holes" `Quick test_sparse_hole_reads_zero;
      Alcotest.test_case "read past eof" `Quick test_read_past_eof_truncated;
      Alcotest.test_case "empty write" `Quick test_empty_write_noop;
      Alcotest.test_case "truncate shrinks" `Quick test_truncate_shrinks;
      Alcotest.test_case "truncate then extend" `Quick test_truncate_then_extend_zeros;
      Alcotest.test_case "truncate bumps version" `Quick test_truncate_zero_bumps_version;
      Alcotest.test_case "stat fields" `Quick test_stat_fields;
      Alcotest.test_case "mkdir nesting" `Quick test_mkdir_and_nesting;
      Alcotest.test_case "duplicate create" `Quick test_duplicate_create_rejected;
      Alcotest.test_case "unlink removes" `Quick test_unlink_removes;
      Alcotest.test_case "unlink missing" `Quick test_unlink_missing_rejected;
      Alcotest.test_case "unlink directory" `Quick test_unlink_directory_rejected;
      Alcotest.test_case "rmdir" `Quick test_rmdir;
      Alcotest.test_case "hard links" `Quick test_hard_links;
      Alcotest.test_case "rename same dir" `Quick test_rename_same_dir;
      Alcotest.test_case "rename across dirs" `Quick test_rename_across_dirs;
      Alcotest.test_case "rename replaces" `Quick test_rename_replaces_target;
      Alcotest.test_case "rename noop same file" `Quick test_rename_noop_same_file;
      Alcotest.test_case "readdir" `Quick test_readdir_lists_everything;
      Alcotest.test_case "many files in dir" `Quick test_many_files_in_dir;
      Alcotest.test_case "path helpers" `Quick test_path_helpers;
      Alcotest.test_case "remount preserves" `Quick test_remount_preserves_everything;
      Alcotest.test_case "mount discards post-ckpt" `Quick test_mount_discards_after_checkpoint;
      Alcotest.test_case "mount unformatted" `Quick test_mount_unformatted_fails;
      Alcotest.test_case "double remount" `Quick test_double_remount;
      Alcotest.test_case "atime on read" `Quick test_atime_updates_on_read;
      Alcotest.test_case "out of space" `Quick test_out_of_space;
      Alcotest.test_case "deterministic" `Quick test_deterministic_runs;
      Alcotest.test_case "random ops model (seed 1)" `Quick (test_random_ops_model ~seed:1);
      Alcotest.test_case "random ops model (seed 2)" `Quick (test_random_ops_model ~seed:2);
      Alcotest.test_case "random ops model (seed 3)" `Quick (test_random_ops_model ~seed:3);
    ] )
