(* Tests for the observability layer: the metrics registry itself, the
   write-cost accounting fix, and the registry as wired into a live
   mounted file system. *)

module Metrics = Lfs_obs.Metrics
module Fs = Lfs_core.Fs
module Fs_stats = Lfs_core.Fs_stats
module Prng = Lfs_util.Prng

(* ----- Registry unit tests ----- *)

let test_counter_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "passes" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "incremented" 5 (Metrics.counter_value c);
  (* Get-or-create: a second handle is the same instrument. *)
  let c2 = Metrics.counter m "passes" in
  Metrics.incr c2;
  Alcotest.(check int) "same instrument" 6 (Metrics.counter_value c);
  match Metrics.value m "passes" with
  | Some (Metrics.Int 6) -> ()
  | _ -> Alcotest.fail "value should be Int 6"

let test_gauge_basics () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "depth" in
  Alcotest.(check bool) "undefined until set" true
    (Float.is_nan (Metrics.float_value m "depth"));
  Metrics.set g 3.25;
  Alcotest.(check (float 0.0)) "set value" 3.25 (Metrics.float_value m "depth")

let test_gauge_fn_duplicate_rejected () =
  let m = Metrics.create () in
  let cell = ref 1.0 in
  Metrics.gauge_fn m "live" (fun () -> !cell);
  cell := 7.0;
  Alcotest.(check (float 0.0)) "samples at read time" 7.0
    (Metrics.float_value m "live");
  (* A second registration would silently shadow the first instance's
     callback — it must be a loud error instead. *)
  (match Metrics.gauge_fn m "live" (fun () -> 42.0) with
  | () -> Alcotest.fail "duplicate callback gauge should raise"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (float 0.0)) "original callback intact" 7.0
    (Metrics.float_value m "live")

let test_scoped_prefixes () =
  let m = Metrics.create () in
  let s0 = Metrics.scoped m "shard0." and s1 = Metrics.scoped m "shard1." in
  (* The same name registers independently under each scope... *)
  Metrics.gauge_fn s0 "fs.live" (fun () -> 10.0);
  Metrics.gauge_fn s1 "fs.live" (fun () -> 11.0);
  Alcotest.(check (float 0.0)) "scope 0 reads its own" 10.0
    (Metrics.float_value s0 "fs.live");
  Alcotest.(check (float 0.0)) "scope 1 reads its own" 11.0
    (Metrics.float_value s1 "fs.live");
  (* ...and is visible registry-wide under its full name. *)
  Alcotest.(check (float 0.0)) "full name from the root" 11.0
    (Metrics.float_value m "shard1.fs.live");
  Metrics.incr ~by:3 (Metrics.counter s0 "ops");
  Alcotest.(check int) "snapshot shows full names" 1
    (List.length
       (List.filter
          (fun (n, _) -> String.equal n "shard0.ops")
          (Metrics.snapshot m)));
  (* Prefixes compose. *)
  let s0c = Metrics.scoped s0 "cleaner." in
  Metrics.incr (Metrics.counter s0c "passes");
  Alcotest.(check (float 0.0)) "composed prefix" 1.0
    (Metrics.float_value m "shard0.cleaner.passes")

let test_kind_conflict_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  match Metrics.gauge m "x" with
  | _ -> Alcotest.fail "kind conflict should raise"
  | exception Invalid_argument _ -> ()

let test_histogram_summary () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  (match Metrics.value m "lat" with
  | Some (Metrics.Summary { count; _ }) -> Alcotest.(check int) "empty" 0 count
  | _ -> Alcotest.fail "expected Summary");
  List.iter (Metrics.observe h) [ 0.5; 1.5; 4.0 ];
  match Metrics.value m "lat" with
  | Some (Metrics.Summary { count; sum; mean; vmin; vmax; p50; p95; p99 }) ->
      Alcotest.(check int) "count" 3 count;
      Alcotest.(check (float 1e-9)) "sum" 6.0 sum;
      Alcotest.(check (float 1e-9)) "mean" 2.0 mean;
      Alcotest.(check (float 1e-9)) "min" 0.5 vmin;
      Alcotest.(check (float 1e-9)) "max" 4.0 vmax;
      Alcotest.(check bool) "percentiles monotone" true (p50 <= p95 && p95 <= p99);
      Alcotest.(check bool) "percentiles in range" true (p50 >= 0.5 && p99 <= 4.0)
  | _ -> Alcotest.fail "expected Summary"

let test_histogram_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "p" in
  Alcotest.(check bool) "empty histogram: nan" true
    (Float.is_nan (Metrics.percentile h 0.5));
  (* 100 samples spread over two decades. *)
  for i = 1 to 100 do
    Metrics.observe h (0.001 *. float_of_int i)
  done;
  let p50 = Metrics.percentile h 0.50 in
  let p95 = Metrics.percentile h 0.95 in
  let p99 = Metrics.percentile h 0.99 in
  (* Bucket estimates: generous tolerances, but the ordering and the
     clamp to the observed extrema must hold exactly. *)
  Alcotest.(check bool) "p50 near the median" true (p50 >= 0.03 && p50 <= 0.07);
  Alcotest.(check bool) "p95 above p50" true (p95 >= p50);
  Alcotest.(check bool) "p99 above p95" true (p99 >= p95);
  Alcotest.(check bool) "p0 clamps to min" true (Metrics.percentile h 0.0 >= 0.001);
  Alcotest.(check (float 1e-12)) "p100 clamps to max" 0.1 (Metrics.percentile h 1.0);
  (match Metrics.percentile h 1.5 with
  | _ -> Alcotest.fail "quantile out of range should raise"
  | exception Invalid_argument _ -> ());
  (* A single sample: every quantile is that sample. *)
  let h1 = Metrics.histogram m "p1" in
  Metrics.observe h1 2.5;
  Alcotest.(check (float 1e-12)) "single sample p50" 2.5 (Metrics.percentile h1 0.5);
  Alcotest.(check (float 1e-12)) "single sample p99" 2.5 (Metrics.percentile h1 0.99)

let test_span_measures_clock_delta () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "busy" in
  let clock = ref 10.0 in
  let r =
    Metrics.span h ~clock:(fun () -> !clock) (fun () ->
        clock := !clock +. 2.5;
        "done")
  in
  Alcotest.(check string) "result passed through" "done" r;
  (* A failing operation still records its partial cost. *)
  (try
     Metrics.span h
       ~clock:(fun () -> !clock)
       (fun () ->
         clock := !clock +. 1.5;
         failwith "boom")
   with Failure _ -> ());
  match Metrics.value m "busy" with
  | Some (Metrics.Summary { count; sum; _ }) ->
      Alcotest.(check int) "both spans recorded" 2 count;
      Alcotest.(check (float 1e-9)) "deltas summed" 4.0 sum
  | _ -> Alcotest.fail "expected Summary"

let test_dist_series () =
  let m = Metrics.create () in
  let d = Metrics.dist ~bins:4 m "u" in
  Metrics.dist_add d 0.1;
  Metrics.dist_add ~weight:2.0 d 0.9;
  match Metrics.value m "u" with
  | Some (Metrics.Series { total; series }) ->
      Alcotest.(check (float 1e-9)) "total weight" 3.0 total;
      Alcotest.(check int) "bins" 4 (Array.length series);
      let fraction_sum =
        Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 series
      in
      Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0 fraction_sum
  | _ -> Alcotest.fail "expected Series"

let test_unknown_name () =
  let m = Metrics.create () in
  Alcotest.(check bool) "value None" true (Metrics.value m "nope" = None);
  Alcotest.(check bool) "float_value nan" true
    (Float.is_nan (Metrics.float_value m "nope"))

let test_validate_flags_bad_values () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "ok");
  Alcotest.(check int) "clean registry (counter)" 0 (List.length (Metrics.validate m));
  let g = Metrics.gauge m "g" in
  Metrics.set g Float.nan;
  Alcotest.(check bool) "NaN gauge flagged" true
    (List.exists (fun (n, _) -> n = "g") (Metrics.validate m));
  Metrics.set g 1.0;
  Alcotest.(check int) "finite gauge clean" 0 (List.length (Metrics.validate m));
  let c = Metrics.counter m "neg" in
  Metrics.incr ~by:(-2) c;
  Alcotest.(check bool) "negative counter flagged" true
    (List.exists (fun (n, _) -> n = "neg") (Metrics.validate m))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_report_and_json_render_nan () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "undef" in
  ignore g;
  ignore (Metrics.histogram m "empty_hist");
  let txt = Metrics.report ~title:"t" m in
  Alcotest.(check bool) "text prints undefined" true
    (contains ~sub:"undefined" txt);
  let json = Metrics.to_json m in
  Alcotest.(check bool) "json has no nan token" false (contains ~sub:"nan" json);
  Alcotest.(check bool) "json renders null" true (contains ~sub:"null" json)

(* ----- Fs_stats.write_cost: undefined (nan) without fresh data ----- *)

let test_write_cost_undefined_without_fresh_data () =
  let s = Fs_stats.create () in
  Alcotest.(check bool) "fresh stats: nan" true (Float.is_nan (Fs_stats.write_cost s));
  (* Cleaner-only traffic must not masquerade as a 1.0x write cost. *)
  Fs_stats.note_segment_read s ~blocks:32;
  Fs_stats.note_written s Lfs_core.Types.Data ~cleaner:true ~blocks:16;
  Alcotest.(check bool) "cleaner-only interval: still nan" true
    (Float.is_nan (Fs_stats.write_cost s));
  Fs_stats.note_written s Lfs_core.Types.Data ~cleaner:false ~blocks:16;
  Alcotest.(check (float 1e-9)) "defined once fresh data lands"
    ((16.0 +. 16.0 +. 32.0) /. 16.0)
    (Fs_stats.write_cost s)

(* ----- The registry wired into a mounted file system ----- *)

let exercise fs =
  let prng = Prng.create ~seed:21 in
  for round = 0 to 2 do
    for i = 0 to 19 do
      let len = 2_000 + Prng.int prng 30_000 in
      Fs.write_path fs
        (Printf.sprintf "/f%d" i)
        (Bytes.make len (Char.chr (Char.code 'a' + ((i + round) mod 26))))
    done
  done;
  Fs.sync fs;
  for i = 0 to 19 do
    if i mod 2 = 0 then Fs.unlink fs ~dir:Fs.root (Printf.sprintf "f%d" i)
  done;
  Fs.clean fs;
  Fs.checkpoint fs

let test_fs_write_cost_gauge_agrees () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  exercise fs;
  let m = Fs.metrics fs in
  let from_gauge = Metrics.float_value m "fs.write_cost" in
  let from_stats = Fs_stats.write_cost (Fs.stats fs) in
  Alcotest.(check bool) "write cost defined" true (Float.is_finite from_stats);
  Alcotest.(check (float 1e-9)) "gauge tracks Fs_stats" from_stats from_gauge

let test_fs_metrics_cover_layers () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  (* Exactly three creates through the public API. *)
  List.iter
    (fun name -> ignore (Fs.create fs ~dir:Fs.root name))
    [ "a"; "b"; "c" ];
  Fs.checkpoint fs;
  let m = Fs.metrics fs in
  (match Metrics.value m "fs.op.create.busy_s" with
  | Some (Metrics.Summary { count; _ }) ->
      Alcotest.(check int) "create spans" 3 count
  | _ -> Alcotest.fail "create histogram missing");
  (* Checkpoint instruments agree with the long-term accounting. *)
  let ckpts = Fs_stats.checkpoints (Fs.stats fs) in
  Alcotest.(check (float 0.0)) "checkpoint counter gauge" (float_of_int ckpts)
    (Metrics.float_value m "fs.checkpoints");
  (match Metrics.value m "fs.checkpoint.busy_s" with
  | Some (Metrics.Summary { count; _ }) ->
      Alcotest.(check int) "one span per checkpoint" ckpts count
  | _ -> Alcotest.fail "checkpoint histogram missing");
  (* The handed-in vdev registered IO gauges that track live Io_stats. *)
  let dev_writes =
    (Lfs_disk.Vdev.stats (List.hd (Fs.devices fs))).Lfs_disk.Io_stats
      .blocks_written
  in
  Alcotest.(check bool) "vdev layer registered" true
    (Metrics.float_value m "vdev.trace.blocks_written" = float_of_int dev_writes)

let test_fs_metrics_validate_clean () =
  let _, fs = Helpers.fresh_fs ~blocks:2048 () in
  exercise fs;
  match Metrics.validate (Fs.metrics fs) with
  | [] -> ()
  | violations ->
      Alcotest.failf "validate: %s"
        (String.concat "; "
           (List.map (fun (n, msg) -> n ^ ": " ^ msg) violations))

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
      Alcotest.test_case "gauge_fn duplicate rejected" `Quick
        test_gauge_fn_duplicate_rejected;
      Alcotest.test_case "scoped prefixes" `Quick test_scoped_prefixes;
      Alcotest.test_case "kind conflict" `Quick test_kind_conflict_rejected;
      Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
      Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
      Alcotest.test_case "span clock delta" `Quick test_span_measures_clock_delta;
      Alcotest.test_case "dist series" `Quick test_dist_series;
      Alcotest.test_case "unknown name" `Quick test_unknown_name;
      Alcotest.test_case "validate flags bad values" `Quick test_validate_flags_bad_values;
      Alcotest.test_case "report/json nan rendering" `Quick test_report_and_json_render_nan;
      Alcotest.test_case "write cost undefined" `Quick test_write_cost_undefined_without_fresh_data;
      Alcotest.test_case "fs write-cost gauge agrees" `Quick test_fs_write_cost_gauge_agrees;
      Alcotest.test_case "fs metrics cover layers" `Quick test_fs_metrics_cover_layers;
      Alcotest.test_case "fs metrics validate clean" `Quick test_fs_metrics_validate_clean;
    ] )
