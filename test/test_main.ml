let () =
  Alcotest.run "lfs"
    [
      Test_util.suite;
      Test_obs.suite;
      Test_disk.suite;
      Test_structures.suite;
      Test_filemap.suite;
      Test_log_writer.suite;
      Test_fs.suite;
      Test_cleaner.suite;
      Test_recovery.suite;
      Test_nvram.suite;
      Test_fsck.suite;
      Test_props.suite;
      Test_ffs.suite;
      Test_sim.suite;
      Test_workload.suite;
      Test_crashtest.suite;
      Test_heads.suite;
      Test_tier.suite;
      Test_model.suite;
      Test_shard.suite;
      Test_server.suite;
    ]
