(* The shard router: placement determinism, the unified namespace's
   observational equivalence with a single LFS, ino encoding, per-shard
   metrics scoping, and the one-faulted-shard crash sweep. *)

module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Geometry = Lfs_disk.Geometry
module Fs = Lfs_core.Fs
module Router = Lfs_shard.Shard_router
module Spec = Lfs_shard.Spec
module Metrics = Lfs_obs.Metrics
module Prng = Lfs_util.Prng

let shard_config = Helpers.test_config

let fresh_devs n =
  List.init n (fun _ -> Vdev.of_disk (Disk.create (Geometry.instant ~blocks:2048)))

let fresh_router ?(shards = 3) ?(policy = Router.By_hash) () =
  let devs = fresh_devs shards in
  Router.format ~config:shard_config devs;
  (devs, Router.mount ~config:shard_config ~policy devs)

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let test_spec_grammar () =
  let ok s = match Spec.parse s with Ok t -> t | Error e -> Alcotest.fail e in
  (match ok "lfs" with Spec.Lfs -> () | _ -> Alcotest.fail "lfs");
  (match ok "ffs" with Spec.Ffs -> () | _ -> Alcotest.fail "ffs");
  (match ok "shard:4" with
  | Spec.Shard { shards = 4; policy = Router.By_hash } -> ()
  | t -> Alcotest.failf "shard:4 -> %s" (Spec.to_string t));
  (match ok "shard:2:by_subtree" with
  | Spec.Shard { shards = 2; policy = Router.By_subtree } -> ()
  | t -> Alcotest.failf "shard:2:by_subtree -> %s" (Spec.to_string t));
  (match Spec.parse ~default_shards:8 "shard" with
  | Ok (Spec.Shard { shards = 8; _ }) -> ()
  | _ -> Alcotest.fail "bare shard should take default_shards");
  (match Spec.parse "shard:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shard:0 should be rejected");
  (match Spec.parse "ext4" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ext4 should be rejected");
  List.iter
    (fun s ->
      match Spec.parse (Spec.to_string (ok s)) with
      | Ok t -> Alcotest.(check string) "roundtrip" (Spec.to_string (ok s)) (Spec.to_string t)
      | Error e -> Alcotest.fail e)
    [ "lfs"; "ffs"; "shard:4"; "shard:2:by_subtree" ]

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let test_placement_determinism () =
  let _, r1 = fresh_router () in
  let _, r2 = fresh_router () in
  let paths =
    List.init 40 (fun i -> Printf.sprintf "dir%d/sub%d/f%d" (i mod 5) (i mod 3) i)
  in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "place %s" p)
        (Router.place_path r1 p) (Router.place_path r2 p))
    paths;
  (* placement must actually spread: 40 paths over 3 shards should not
     degenerate onto one *)
  let used =
    List.sort_uniq compare (List.map (Router.place_path r1) paths)
  in
  Alcotest.(check bool) "spreads over >1 shard" true (List.length used > 1)

let test_by_hash_colocates_siblings () =
  let _, r = fresh_router ~policy:Router.By_hash () in
  let home = Router.place_path r "proj/a" in
  List.iter
    (fun n ->
      Alcotest.(check int) "siblings colocate" home
        (Router.place_path r (Printf.sprintf "proj/%s" n)))
    [ "b"; "c"; "d"; "e" ]

let test_by_subtree_pins_tree () =
  let _, r = fresh_router ~policy:Router.By_subtree () in
  let home = Router.place_path r "proj" in
  List.iter
    (fun p ->
      Alcotest.(check int) (Printf.sprintf "%s pins to subtree root" p) home
        (Router.place_path r p))
    [ "proj/a"; "proj/deep/nest/f"; "proj/x/y/z/w" ]

(* ------------------------------------------------------------------ *)
(* Ino encoding                                                        *)
(* ------------------------------------------------------------------ *)

let test_ino_encoding () =
  let _, r = fresh_router () in
  Alcotest.(check (option int)) "root carries no shard" None
    (Router.ino_shard Router.root);
  let d = Router.mkdir_path r "docs" in
  let f = Router.create_path r "docs/note" in
  Alcotest.(check (option int))
    "dir ino carries its home shard"
    (Some (Router.place_path r "docs"))
    (Router.ino_shard d);
  Alcotest.(check (option int))
    "file ino carries its home shard"
    (Some (Router.place_path r "docs/note"))
    (Router.ino_shard f);
  (* a foreign / root ino is rejected by file IO, not misrouted *)
  (match Router.read r Router.root ~off:0 ~len:1 with
  | exception Lfs_core.Types.Fs_error _ -> ()
  | _ -> Alcotest.fail "file IO on the root ino should be an Fs_error")

(* ------------------------------------------------------------------ *)
(* Namespace equivalence with a single LFS                             *)
(* ------------------------------------------------------------------ *)

(* One random op applied to both systems through their path helpers;
   results are compared in normalized form (contents, sorted readdir
   names, presence) because inos legitimately differ. *)
type op =
  | Write of string * int * int  (* path, size, tag *)
  | Append of string * int
  | Unlink of string
  | Readdir of string
  | Read of string
  | Sync

let dirs = [| ""; "a"; "a/b"; "c" |]

let op_gen =
  QCheck.Gen.(
    let path =
      map2
        (fun d f -> Filename.concat dirs.(d) (Printf.sprintf "f%d" f))
        (int_bound (Array.length dirs - 1))
        (int_bound 3)
    in
    frequency
      [
        (5, map3 (fun p s t -> Write (p, s, t)) path (int_range 1 12_000) (int_bound 25));
        (2, map2 (fun p s -> Append (p, s)) path (int_range 1 4_000));
        (2, map (fun p -> Unlink p) path);
        (2, map (fun d -> Readdir dirs.(d)) (int_bound (Array.length dirs - 1)));
        (3, map (fun p -> Read p) path);
        (1, return Sync);
      ])

let print_op = function
  | Write (p, s, t) -> Printf.sprintf "Write(%s,%d,#%d)" p s t
  | Append (p, s) -> Printf.sprintf "Append(%s,%d)" p s
  | Unlink p -> Printf.sprintf "Unlink(%s)" p
  | Readdir d -> Printf.sprintf "Readdir(%s)" d
  | Read p -> Printf.sprintf "Read(%s)" p
  | Sync -> "Sync"

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    ~shrink:QCheck.Shrink.list
    QCheck.Gen.(list_size (int_range 1 40) op_gen)

(* The same surface over both systems, via first-class packing — the
   equivalence property doubles as an exercise of [Fs_intf.Any]. *)
let surface (Lfs_core.Fs_intf.Any.Any ((module F), fs)) =
  object
    method write_path p b = F.write_path fs p b
    method resolve p = F.resolve fs p
    method read_path p = F.read_path fs p
    method file_size ino = F.file_size fs ino
    method write ino ~off b = F.write fs ino ~off b
    method unlink ~dir n = F.unlink fs ~dir n
    method readdir ino = F.readdir fs ino
    method mkdir_path p = F.mkdir_path fs p
    method sync = F.sync fs
  end

let apply o = function
  | Write (p, size, tag) ->
      let b = Bytes.make size (Char.chr (65 + (tag mod 26))) in
      o#write_path p b;
      Printf.sprintf "wrote %d" size
  | Append (p, size) -> (
      match o#resolve p with
      | None -> "absent"
      | Some ino ->
          let off = o#file_size ino in
          o#write ino ~off (Bytes.make size 'z');
          Printf.sprintf "appended at %d" off)
  | Unlink p -> (
      match o#resolve (Filename.dirname p) with
      | Some dir when o#resolve p <> None -> (
          try
            o#unlink ~dir (Filename.basename p);
            "unlinked"
          with Lfs_core.Types.Fs_error m -> "err:" ^ m)
      | _ -> "absent")
  | Readdir d -> (
      match o#resolve d with
      | None -> "absent"
      | Some ino ->
          let names = List.map fst (o#readdir ino) in
          String.concat "," (List.sort String.compare names))
  | Read p -> (
      match o#read_path p with
      | None -> "absent"
      | Some b -> Digest.to_hex (Digest.bytes b))
  | Sync ->
      o#sync;
      "synced"

let prop_sharded_matches_single =
  QCheck.Test.make ~count:60 ~name:"sharded volume is observationally a single LFS"
    arb_ops (fun ops ->
      let _, single = Helpers.fresh_fs ~blocks:4096 () in
      let _, sharded = fresh_router ~shards:3 () in
      let s1 = surface (Lfs_core.Fs_intf.Any.pack (module Fs) single) in
      let s2 = surface (Lfs_core.Fs_intf.Any.pack (module Router) sharded) in
      List.iter (fun d -> if d <> "" then ignore (s1#mkdir_path d)) (Array.to_list dirs);
      List.iter (fun d -> if d <> "" then ignore (s2#mkdir_path d)) (Array.to_list dirs);
      List.for_all
        (fun op ->
          let a = apply s1 op and b = apply s2 op in
          if String.equal a b then true
          else
            QCheck.Test.fail_reportf "%s: single=%S sharded=%S" (print_op op) a b)
        ops)

(* ------------------------------------------------------------------ *)
(* Durability across shards                                            *)
(* ------------------------------------------------------------------ *)

let test_sync_recover_roundtrip () =
  let devs, r = fresh_router ~shards:3 () in
  ignore (Router.mkdir_path r "p");
  let contents =
    List.init 12 (fun i ->
        let path = Printf.sprintf "p/f%d" i in
        let b = Helpers.bytes_of_pattern ~seed:i (500 + (i * 37)) in
        Router.write_path r path b;
        (path, b))
  in
  Router.sync r;
  let r2, reports = Router.recover ~config:shard_config devs in
  Alcotest.(check int) "one report per shard" 3 (List.length reports);
  List.iter
    (fun (path, b) ->
      match Router.read_path r2 path with
      | None -> Alcotest.failf "%s lost across recover" path
      | Some got -> Helpers.check_bytes path b got)
    contents;
  for i = 0 to 2 do
    Helpers.fsck_clean (Router.shard_fs r2 i)
  done

let test_metrics_scoping () =
  let _, r = fresh_router ~shards:2 () in
  ignore (Router.mkdir_path r "m");
  for i = 0 to 9 do
    Router.write_path r (Printf.sprintf "m/f%d" i) (Bytes.make 100 'x')
  done;
  Router.sync r;
  let m = Router.metrics r in
  let snap = Metrics.snapshot m in
  let value name =
    if not (List.mem_assoc name snap) then
      Alcotest.failf "metric %s missing (have: %s)" name
        (String.concat ", " (List.map fst snap));
    Metrics.float_value m name
  in
  Alcotest.(check (float 0.0)) "router.shards" 2.0 (value "router.shards");
  (* both shards publish their own fs instruments under their scopes *)
  ignore (value "shard0.fs.log.blocks_new");
  ignore (value "shard1.fs.log.blocks_new");
  ignore (value "shard0.fs.cleaner.passes");
  ignore (value "shard1.fs.cleaner.passes");
  (* the placement counters account for every create/mkdir: 10 files,
     the "m" dir, plus mirror shells (which are placed on the canonical
     path's shard and counted once each) *)
  let placed =
    value "router.placed.shard0" +. value "router.placed.shard1"
  in
  Alcotest.(check bool) "placements counted" true (placed >= 11.0)

(* Regression: a mirror shell that survives its home shard's rollback
   must be pruned at recover.  Before [revalidate_mirrors], the stale
   subtree stayed in the other shard's log, and recreating a directory
   of the same name inherited the old children through the union
   readdir — resurrecting files the canonical namespace had lost. *)
let test_stale_mirror_pruned_at_recover () =
  let devs, r = fresh_router ~shards:2 () in
  (* a directory whose children hash to the other shard, so creating
     the child plants a mirror shell of the directory there *)
  let dir =
    let rec find i =
      if i > 100 then Alcotest.fail "no cross-shard dir name found"
      else
        let d = Printf.sprintf "d%d" i in
        if Router.place_path r d <> Router.place_path r (d ^ "/f") then d
        else find (i + 1)
    in
    find 0
  in
  let file = dir ^ "/f" in
  let home = Router.place_path r dir in
  let other = Router.place_path r file in
  ignore (Router.mkdir_path r dir);
  Router.write_path r file (Bytes.make 256 's');
  Router.sync r;
  (* simulate shard [home]'s per-shard recovery rolling back past the
     mkdir: the canonical dirent vanishes while the mirror shell and
     the file survive in shard [other]'s independent log *)
  let hfs = Router.shard_fs r home in
  Fs.rmdir hfs ~dir:Fs.root dir;
  Fs.sync hfs;
  let r2, _ = Router.recover ~config:shard_config devs in
  Alcotest.(check bool)
    "revalidation dropped the orphaned mirror subtree" true
    (Metrics.float_value (Router.metrics r2) "router.mirrors_dropped" >= 2.0);
  Alcotest.(check bool) "stale file unreachable" true
    (Router.read_path r2 file = None);
  Alcotest.(check bool) "mirror shell gone from its shard" true
    (Fs.lookup (Router.shard_fs r2 other) ~dir:Fs.root dir = None);
  (* recreating the directory must start empty, not inherit the ghost *)
  let d2 = Router.mkdir_path r2 dir in
  Alcotest.(check (list string)) "recreated dir inherits nothing" []
    (List.map fst (Router.readdir r2 d2));
  for i = 0 to 1 do
    Helpers.fsck_clean (Router.shard_fs r2 i)
  done

(* ------------------------------------------------------------------ *)
(* Crash sweep: one faulted shard                                      *)
(* ------------------------------------------------------------------ *)

let test_crash_sweep_one_shard () =
  let report =
    Lfs_crashtest.Crashtest.run_shard ~shards:2 ~blocks:1024 ~stride:5
      ~seed:11
      (Lfs_crashtest.Crashtest.script ~ops:40 ~seed:5 ())
  in
  if not (Lfs_crashtest.Crashtest.is_clean report) then
    Alcotest.failf "shard crash sweep: %a" Lfs_crashtest.Crashtest.pp_report
      report;
  Alcotest.(check bool) "sweep replayed crash points" true
    (report.points > 0 && report.crashes > 0)

let test_crash_sweep_by_subtree () =
  let report =
    Lfs_crashtest.Crashtest.run_shard ~shards:3 ~policy:Router.By_subtree
      ~blocks:1024 ~stride:19 ~seed:3
      (Lfs_crashtest.Crashtest.script ~ops:30 ~seed:9 ())
  in
  if not (Lfs_crashtest.Crashtest.is_clean report) then
    Alcotest.failf "by_subtree crash sweep: %a"
      Lfs_crashtest.Crashtest.pp_report report

let suite =
  ( "shard",
    [
      Alcotest.test_case "spec grammar" `Quick test_spec_grammar;
      Alcotest.test_case "placement determinism" `Quick test_placement_determinism;
      Alcotest.test_case "by_hash colocates siblings" `Quick
        test_by_hash_colocates_siblings;
      Alcotest.test_case "by_subtree pins a tree" `Quick test_by_subtree_pins_tree;
      Alcotest.test_case "ino encoding" `Quick test_ino_encoding;
      QCheck_alcotest.to_alcotest prop_sharded_matches_single;
      Alcotest.test_case "sync/recover roundtrip" `Quick
        test_sync_recover_roundtrip;
      Alcotest.test_case "metrics scoping" `Quick test_metrics_scoping;
      Alcotest.test_case "stale mirror pruned at recover" `Quick
        test_stale_mirror_pruned_at_recover;
      Alcotest.test_case "crash sweep, one faulted shard" `Slow
        test_crash_sweep_one_shard;
      Alcotest.test_case "crash sweep, by_subtree" `Slow
        test_crash_sweep_by_subtree;
    ] )
