(* Unit and property tests for the utility substrate. *)

module Prng = Lfs_util.Prng
module Stats = Lfs_util.Stats
module Histogram = Lfs_util.Histogram
module Table = Lfs_util.Table
module Checksum = Lfs_util.Checksum

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_int_range () =
  let p = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_covers () =
  let p = Prng.create ~seed:9 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Prng.int p 8) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let p = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.float p 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bernoulli_bias () =
  let p = Prng.create ~seed:5 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bernoulli p ~p:0.3 then incr hits
  done;
  let frac = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "near 0.3" true (frac > 0.27 && frac < 0.33)

let test_prng_split_independent () =
  let a = Prng.create ~seed:11 in
  let b = Prng.split a in
  Alcotest.(check bool) "streams differ" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_exponential_mean () =
  let p = Prng.create ~seed:13 in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (Prng.exponential p ~mean:5.0)
  done;
  Alcotest.(check bool) "mean near 5" true
    (Stats.mean s > 4.7 && Stats.mean s < 5.3)

let test_prng_shuffle_permutes () =
  let p = Prng.create ~seed:17 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_value s);
  Alcotest.(check (float 1e-6)) "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "variance of empty" 0.0 (Stats.variance s)

let test_stats_percentile () =
  let data = Array.init 101 float_of_int in
  Alcotest.(check (float 1e-9)) "median" 50.0 (Stats.percentile data 0.5);
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile data 0.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile data 1.0)

let test_histogram_basic () =
  let h = Histogram.create ~bins:10 in
  Histogram.add h 0.05;
  Histogram.add h 0.05;
  Histogram.add h 0.95;
  Alcotest.(check (float 1e-9)) "bin 0 fraction" (2.0 /. 3.0) (Histogram.fraction h 0);
  Alcotest.(check (float 1e-9)) "bin 9 fraction" (1.0 /. 3.0) (Histogram.fraction h 9);
  Alcotest.(check (float 1e-9)) "total" 3.0 (Histogram.total h)

let test_histogram_clamps () =
  let h = Histogram.create ~bins:4 in
  Histogram.add h (-1.0);
  Histogram.add h 2.0;
  Alcotest.(check (float 1e-9)) "low clamped" 0.5 (Histogram.fraction h 0);
  Alcotest.(check (float 1e-9)) "high clamped" 0.5 (Histogram.fraction h 3)

let test_histogram_series_sums_to_one () =
  let h = Histogram.create ~bins:7 in
  let p = Prng.create ~seed:23 in
  for _ = 1 to 100 do
    Histogram.add h (Prng.float p 1.0)
  done;
  let sum = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 (Histogram.to_series h) in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 sum

let test_histogram_merge () =
  let a = Histogram.create ~bins:4 and b = Histogram.create ~bins:4 in
  Histogram.add a 0.1;
  Histogram.add b 0.9;
  let m = Histogram.merge a b in
  Alcotest.(check (float 1e-9)) "merged total" 2.0 (Histogram.total m);
  Alcotest.(check (float 1e-9)) "bin0" 0.5 (Histogram.fraction m 0)

let test_table_renders () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ] in
  Alcotest.(check bool) "has header" true
    (String.length s > 0
    && String.index_opt s 'a' <> None
    && String.index_opt s '+' <> None)

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "x"; "y"; "z" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_checksum_stable () =
  let c1 = Checksum.adler32_string "hello world" in
  let c2 = Checksum.adler32_string "hello world" in
  Alcotest.(check int32) "deterministic" c1 c2

let test_checksum_differs () =
  Alcotest.(check bool) "different inputs differ" false
    (Checksum.adler32_string "hello" = Checksum.adler32_string "hellp")

let test_checksum_range () =
  let b = Bytes.make 100 'x' in
  let whole = Checksum.adler32 b in
  let part = Checksum.adler32 ~pos:10 ~len:50 b in
  Alcotest.(check bool) "range differs from whole" false (whole = part);
  Alcotest.(check int32) "range stable" part (Checksum.adler32 ~pos:10 ~len:50 b)

let test_plot_renders () =
  let s =
    Lfs_util.Plot.render ~title:"t"
      [ { Lfs_util.Plot.label = "s"; points = [| (0.0, 1.0); (1.0, 2.0) |] } ]
  in
  Alcotest.(check bool) "non-empty with glyph" true
    (String.length s > 0 && String.contains s '*')

let test_plot_empty_series () =
  let s = Lfs_util.Plot.render ~title:"t" [ { Lfs_util.Plot.label = "e"; points = [||] } ] in
  Alcotest.(check bool) "renders without crash" true (String.length s > 0)

(* Property tests. *)

let prop_codec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"bytes_codec roundtrip"
    QCheck.(
      triple (int_bound 0xffff) (string_of_size (Gen.int_bound 200)) (float_bound_exclusive 1e9))
    (fun (n, s, f) ->
      let module C = Lfs_util.Bytes_codec in
      let b = Bytes.make 1024 '\000' in
      let w = C.writer b in
      C.put_u16 w n;
      C.put_string w s;
      C.put_float w f;
      C.put_int w (-n);
      let r = C.reader b in
      C.get_u16 r = n && C.get_string r = s
      && C.get_float r = f
      && C.get_int r = -n)

let prop_codec_overflow =
  QCheck.Test.make ~count:50 ~name:"bytes_codec overflow raises"
    QCheck.(int_range 1 64)
    (fun n ->
      let module C = Lfs_util.Bytes_codec in
      let b = Bytes.make n '\000' in
      let w = C.at b (max 0 (n - 4)) in
      match C.put_u64 w 1L with
      | () -> n - (n - 4) >= 8
      | exception C.Overflow _ -> true)

let prop_percentile_bounds =
  QCheck.Test.make ~count:100 ~name:"percentile within min/max"
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1e6)) (float_bound_inclusive 1.0))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let v = Stats.percentile a p in
      let lo = Array.fold_left min a.(0) a and hi = Array.fold_left max a.(0) a in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ----- Io_stats: copy/diff/merge round-trips ----- *)

module Io_stats = Lfs_disk.Io_stats

let arb_io_stats =
  let gen =
    QCheck.Gen.(
      map
        (fun (reads, writes, blocks_read, blocks_written, seeks, busy) ->
          {
            Io_stats.reads;
            writes;
            blocks_read;
            blocks_written;
            seeks;
            busy_s = float_of_int busy /. 16.0;
            queue_wait_s = float_of_int seeks /. 8.0;
            max_queue_depth = reads mod 32;
          })
        (tup6 (int_bound 1000) (int_bound 1000) (int_bound 10000)
           (int_bound 10000) (int_bound 1000) (int_bound 1000)))
  in
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Io_stats.pp s)
    gen

let stats_equal a b =
  a.Io_stats.reads = b.Io_stats.reads
  && a.Io_stats.writes = b.Io_stats.writes
  && a.Io_stats.blocks_read = b.Io_stats.blocks_read
  && a.Io_stats.blocks_written = b.Io_stats.blocks_written
  && a.Io_stats.seeks = b.Io_stats.seeks
  && Float.abs (a.Io_stats.busy_s -. b.Io_stats.busy_s) < 1e-9
  (* max_queue_depth is a watermark, not additive — excluded here. *)
  && Float.abs (a.Io_stats.queue_wait_s -. b.Io_stats.queue_wait_s) < 1e-9

let prop_io_stats_copy_independent =
  QCheck.Test.make ~count:100 ~name:"io_stats copy is independent" arb_io_stats
    (fun s ->
      let c = Io_stats.copy s in
      let before = Io_stats.copy s in
      c.Io_stats.reads <- c.Io_stats.reads + 1;
      c.Io_stats.busy_s <- c.Io_stats.busy_s +. 1.0;
      stats_equal s before)

let prop_io_stats_merge_diff_roundtrip =
  QCheck.Test.make ~count:100 ~name:"io_stats diff (merge a b) b = a"
    QCheck.(pair arb_io_stats arb_io_stats)
    (fun (a, b) ->
      (* merge is commutative, and diff undoes it *)
      stats_equal (Io_stats.merge a b) (Io_stats.merge b a)
      && stats_equal (Io_stats.diff (Io_stats.merge a b) b) a)

let test_io_stats_merge_zero () =
  let z = Io_stats.create () in
  let s = Io_stats.create () in
  s.Io_stats.reads <- 3;
  s.Io_stats.blocks_read <- 7;
  s.Io_stats.busy_s <- 0.5;
  Alcotest.(check bool) "zero is neutral" true
    (stats_equal (Io_stats.merge s z) s && stats_equal (Io_stats.merge z s) s)

let test_io_stats_reset () =
  let s = Io_stats.create () in
  s.Io_stats.writes <- 9;
  s.Io_stats.busy_s <- 2.0;
  Io_stats.reset s;
  Alcotest.(check bool) "reset zeroes" true (stats_equal s (Io_stats.create ()))

let suite =
  ( "util",
    [
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
      Alcotest.test_case "prng int range" `Quick test_prng_int_range;
      Alcotest.test_case "prng int covers" `Quick test_prng_int_covers;
      Alcotest.test_case "prng float range" `Quick test_prng_float_range;
      Alcotest.test_case "prng bernoulli bias" `Quick test_prng_bernoulli_bias;
      Alcotest.test_case "prng split" `Quick test_prng_split_independent;
      Alcotest.test_case "prng exponential mean" `Quick test_prng_exponential_mean;
      Alcotest.test_case "prng shuffle permutes" `Quick test_prng_shuffle_permutes;
      Alcotest.test_case "stats basic" `Quick test_stats_basic;
      Alcotest.test_case "stats empty" `Quick test_stats_empty;
      Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
      Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
      Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps;
      Alcotest.test_case "histogram sums to one" `Quick test_histogram_series_sums_to_one;
      Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
      Alcotest.test_case "table renders" `Quick test_table_renders;
      Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
      Alcotest.test_case "checksum stable" `Quick test_checksum_stable;
      Alcotest.test_case "checksum differs" `Quick test_checksum_differs;
      Alcotest.test_case "checksum range" `Quick test_checksum_range;
      Alcotest.test_case "plot renders" `Quick test_plot_renders;
      Alcotest.test_case "plot empty series" `Quick test_plot_empty_series;
      Alcotest.test_case "io_stats merge zero" `Quick test_io_stats_merge_zero;
      Alcotest.test_case "io_stats reset" `Quick test_io_stats_reset;
      QCheck_alcotest.to_alcotest prop_codec_roundtrip;
      QCheck_alcotest.to_alcotest prop_codec_overflow;
      QCheck_alcotest.to_alcotest prop_percentile_bounds;
      QCheck_alcotest.to_alcotest prop_io_stats_copy_independent;
      QCheck_alcotest.to_alcotest prop_io_stats_merge_diff_roundtrip;
    ] )
