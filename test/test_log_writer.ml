(* Unit tests for the log appender: address assignment, batching,
   partial-segment writes, segment advancement, the on-disk summary
   chain, lazy payloads, and multi-head segregation. *)

module Disk = Lfs_disk.Disk
module Types = Lfs_core.Types
module Layout = Lfs_core.Layout
module Summary = Lfs_core.Summary
module Log_writer = Lfs_core.Log_writer

let layout = Layout.compute Helpers.test_config ~disk_blocks:1024
(* 32-block segments, 4 KB blocks. *)

type env = {
  disk : Disk.t;
  log : Log_writer.t;
  appended : (Types.block_kind * int * float) list ref;  (* kind, seg, mtime *)
  batches : (int * int * int) list ref;  (* head, addr, blocks *)
}

let mk_env ?(heads = 1) () =
  let disk = Helpers.fresh_disk () in
  let appended = ref [] in
  let batches = ref [] in
  let next_clean = ref (2 * heads) in
  let positions =
    Array.init heads (fun i ->
        { Log_writer.pos_seg = 2 * i; pos_off = 0; pos_next = (2 * i) + 1 })
  in
  let log =
    Log_writer.create layout (Helpers.vdev disk)
      ~pick_clean:(fun ~exclude ->
        let rec pick () =
          let s = !next_clean in
          incr next_clean;
          if List.mem s exclude then pick () else s
        in
        pick ())
      ~on_append:(fun kind ~seg ~mtime -> appended := (kind, seg, mtime) :: !appended)
      ~on_batch:(fun ~head ~addr ~blocks ->
        batches := (head, addr, blocks) :: !batches)
      ~heads:positions ~seq:1
  in
  { disk; log; appended; batches }

let payload c = Log_writer.Bytes (Bytes.make layout.Layout.block_size c)

let append ?head ?(kind = Types.Data) ?(ino = 7) ?(blockno = 0) ?(mtime = 1.0)
    env c =
  Log_writer.append ?head env.log ~kind ~ino ~blockno ~version:0 ~mtime
    (payload c)

let test_addresses_sequential_in_batch () =
  let env = mk_env () in
  let a1 = append env 'a' ~blockno:0 in
  let a2 = append env 'b' ~blockno:1 in
  (* Slot 0 is the batch's summary; payloads follow contiguously. *)
  Alcotest.(check int) "first payload after summary"
    (Layout.seg_first_block layout 0 + 1) a1;
  Alcotest.(check int) "contiguous" (a1 + 1) a2

let test_nothing_on_disk_before_sync () =
  let env = mk_env () in
  ignore (append env 'x');
  Alcotest.(check int) "no writes yet" 0 (Disk.stats env.disk).Lfs_disk.Io_stats.writes;
  Log_writer.sync env.log;
  Alcotest.(check int) "one batch write" 1 (Disk.stats env.disk).Lfs_disk.Io_stats.writes

let test_batch_is_single_io () =
  let env = mk_env () in
  for i = 0 to 9 do
    ignore (append env 'm' ~blockno:i)
  done;
  Log_writer.sync env.log;
  let s = Disk.stats env.disk in
  Alcotest.(check int) "one IO" 1 s.Lfs_disk.Io_stats.writes;
  Alcotest.(check int) "summary + 10 payloads" 11 s.Lfs_disk.Io_stats.blocks_written;
  (match !(env.batches) with
  | [ (_, _, blocks) ] -> Alcotest.(check int) "callback blocks" 11 blocks
  | l -> Alcotest.failf "expected 1 batch, got %d" (List.length l))

let test_summary_on_disk_decodes () =
  let env = mk_env () in
  let a = append env 'p' ~ino:42 ~blockno:5 ~mtime:9.0 in
  Log_writer.sync env.log;
  let sum_addr = a - 1 in
  match Summary.decode (Disk.read_block env.disk sum_addr) with
  | None -> Alcotest.fail "summary should decode"
  | Some s ->
      Alcotest.(check int) "seq" 1 s.Summary.seq;
      Alcotest.(check int) "seg" 0 s.Summary.seg;
      Alcotest.(check int) "next_seg pointer" 1 s.Summary.next_seg;
      (match s.Summary.entries with
      | [ e ] ->
          Alcotest.(check int) "ino" 42 e.Summary.ino;
          Alcotest.(check int) "blockno" 5 e.Summary.blockno;
          Alcotest.(check (float 0.0)) "mtime" 9.0 e.Summary.mtime
      | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))

let test_payload_checksum_matches () =
  let env = mk_env () in
  let a = append env 'q' in
  Log_writer.sync env.log;
  let s = Option.get (Summary.decode (Disk.read_block env.disk (a - 1))) in
  let payload = Disk.read_blocks env.disk a 1 in
  Alcotest.(check int) "checksum" s.Summary.payload_sum
    (Summary.payload_checksum payload)

let test_partial_segment_chain () =
  (* Two syncs produce two summaries chained within one segment. *)
  let env = mk_env () in
  let a1 = append env '1' in
  Log_writer.sync env.log;
  let a2 = append env '2' in
  Log_writer.sync env.log;
  let s1 = Option.get (Summary.decode (Disk.read_block env.disk (a1 - 1))) in
  Alcotest.(check int) "second write follows first" (Summary.next_slot s1)
    (a2 - 1 - Layout.seg_first_block layout 0);
  let s2 = Option.get (Summary.decode (Disk.read_block env.disk (a2 - 1))) in
  Alcotest.(check bool) "seq grows" true (s2.Summary.seq > s1.Summary.seq)

let test_segment_advance_uses_reservation () =
  let env = mk_env () in
  (* Fill segment 0 (31 payload slots + summaries). *)
  for i = 0 to 40 do
    ignore (append env 'f' ~blockno:i)
  done;
  Log_writer.sync env.log;
  Alcotest.(check int) "moved to the reserved segment" 1
    (Log_writer.current_segment env.log);
  Alcotest.(check bool) "new reservation" true
    (Log_writer.reserved_segment env.log <> 1)

let test_on_append_accounting () =
  let env = mk_env () in
  ignore (append env 'a' ~mtime:3.0);
  ignore (append env 'b' ~mtime:5.0 ~kind:Types.Indirect);
  match List.rev !(env.appended) with
  | [ (Types.Data, 0, 3.0); (Types.Indirect, 0, 5.0) ] -> ()
  | l -> Alcotest.failf "unexpected accounting (%d entries)" (List.length l)

let test_lazy_payload_rendered_at_sync () =
  let env = mk_env () in
  let rendered = ref false in
  let (_ : Types.baddr) =
    Log_writer.append env.log ~kind:Types.Imap ~ino:0 ~blockno:0 ~version:0
      ~mtime:1.0
      (Log_writer.Lazy
         (fun () ->
           rendered := true;
           Bytes.make layout.Layout.block_size 'L'))
  in
  Alcotest.(check bool) "not rendered at append" false !rendered;
  Log_writer.sync env.log;
  Alcotest.(check bool) "rendered at sync" true !rendered

let test_wrong_payload_size_rejected () =
  let env = mk_env () in
  let (_ : Types.baddr) =
    Log_writer.append env.log ~kind:Types.Data ~ino:1 ~blockno:0 ~version:0
      ~mtime:1.0
      (Log_writer.Bytes (Bytes.make 17 'x'))
  in
  match Log_writer.sync env.log with
  | () -> Alcotest.fail "should reject non-block payload"
  | exception Invalid_argument _ -> ()

let test_addresses_never_reused_within_segment () =
  let env = mk_env () in
  let seen = Hashtbl.create 64 in
  for i = 0 to 25 do
    let a = append env 'u' ~blockno:i in
    Alcotest.(check bool) "fresh address" false (Hashtbl.mem seen a);
    Hashtbl.replace seen a ();
    if i mod 7 = 0 then Log_writer.sync env.log
  done

let one_head_ckpt =
  {
    Lfs_core.Checkpoint.timestamp = 0.0;
    log_seq = 1;
    heads = [| { Lfs_core.Checkpoint.cur_seg = 0; cur_off = 0; next_seg = 1 } |];
    imap_addrs = [||];
    usage_addrs = [||];
  }

let test_scan_follows_chain_across_segments () =
  let env = mk_env () in
  for i = 0 to 70 do
    ignore (append env 'c' ~blockno:i);
    if i mod 5 = 0 then Log_writer.sync env.log
  done;
  Log_writer.sync env.log;
  (* Scan the log like recovery would, from a synthetic checkpoint at
     the very beginning. *)
  let result =
    Lfs_core.Recovery.scan layout (Helpers.vdev env.disk) ~ckpt:one_head_ckpt
  in
  let total_entries =
    List.fold_left
      (fun acc w ->
        acc + List.length w.Lfs_core.Recovery.summary.Summary.entries)
      0 result.Lfs_core.Recovery.writes
  in
  Alcotest.(check int) "all 71 blocks found" 71 total_entries;
  Alcotest.(check int) "writer position recovered"
    (Log_writer.current_segment env.log)
    result.Lfs_core.Recovery.tails.(0).Lfs_core.Recovery.tail_seg;
  Alcotest.(check int) "seq recovered" (Log_writer.seq env.log)
    result.Lfs_core.Recovery.next_seq

let test_scan_stops_at_stale_summary () =
  let env = mk_env () in
  ignore (append env 's');
  Log_writer.sync env.log;
  (* Plant a stale summary (lower seq) where the chain would continue:
     the scan must not accept it. *)
  let stale =
    Summary.encode ~block_size:layout.Layout.block_size
      {
        Summary.seq = 0;
        seg = 0;
        slot = 2;
        next_seg = 5;
        timestamp = 0.0;
        payload_sum = Summary.payload_checksum (Bytes.create 0);
        entries = [];
      }
  in
  Disk.write_block env.disk (Layout.seg_first_block layout 0 + 2) stale;
  let result =
    Lfs_core.Recovery.scan layout (Helpers.vdev env.disk) ~ckpt:one_head_ckpt
  in
  Alcotest.(check int) "only the real write" 1
    (List.length result.Lfs_core.Recovery.writes)

(* ----- Multi-head ----- *)

let test_heads_write_disjoint_segments () =
  let env = mk_env ~heads:2 () in
  let a = append env 'h' ~head:0 ~blockno:0 in
  let b = append env 'c' ~head:1 ~blockno:1 in
  Alcotest.(check int) "hot head in segment 0" 0 (Layout.seg_of_block layout a);
  Alcotest.(check int) "cold head in segment 2" 2 (Layout.seg_of_block layout b);
  Log_writer.sync env.log;
  (* Each head issued its own batch, tagged with its index. *)
  (match List.sort compare !(env.batches) with
  | [ (0, _, 2); (1, _, 2) ] -> ()
  | l -> Alcotest.failf "expected 2 single-block batches, got %d" (List.length l));
  Alcotest.(check (list int)) "active segments cover both heads"
    [ 0; 1; 2; 3 ]
    (List.sort compare (Log_writer.active_segments env.log))

let test_heads_share_seq () =
  let env = mk_env ~heads:2 () in
  let a = append env 'h' ~head:0 in
  Log_writer.sync env.log;
  let b = append env 'c' ~head:1 in
  Log_writer.sync env.log;
  let sa = Option.get (Summary.decode (Disk.read_block env.disk (a - 1))) in
  let sb = Option.get (Summary.decode (Disk.read_block env.disk (b - 1))) in
  Alcotest.(check int) "hot batch first" 1 sa.Summary.seq;
  Alcotest.(check int) "cold batch shares the counter" 2 sb.Summary.seq

let test_advance_excludes_all_heads () =
  let env = mk_env ~heads:2 () in
  (* Roll both heads over several segments; no segment may ever be
     owned by two heads. *)
  for i = 0 to 200 do
    ignore (append env 'x' ~head:(i mod 2) ~blockno:i);
    if i mod 9 = 0 then Log_writer.sync env.log
  done;
  Log_writer.sync env.log;
  let active = Log_writer.active_segments env.log in
  Alcotest.(check int) "4 distinct active segments" 4
    (List.length (List.sort_uniq compare active))

let test_barrier_covers_all_heads () =
  let env = mk_env ~heads:2 () in
  ignore (append env 'h' ~head:0);
  ignore (append env 'c' ~head:1);
  Log_writer.sync env.log;
  Alcotest.(check int) "both batches unflushed" 2
    (Log_writer.unflushed_batches env.log);
  ignore (Log_writer.barrier env.log);
  Alcotest.(check int) "barrier drains every head" 0
    (Log_writer.unflushed_batches env.log)

let test_head_stats_attribute_traffic () =
  let env = mk_env ~heads:2 () in
  for i = 0 to 4 do
    ignore (append env 'h' ~head:0 ~blockno:i)
  done;
  ignore (append env 'c' ~head:1 ~blockno:9);
  Log_writer.sync env.log;
  let h0 = Log_writer.head_stats env.log 0 in
  let h1 = Log_writer.head_stats env.log 1 in
  Alcotest.(check int) "head 0 blocks" 5 h0.Log_writer.blocks;
  Alcotest.(check int) "head 1 blocks" 1 h1.Log_writer.blocks;
  Alcotest.(check int) "head 0 syncs" 1 h0.Log_writer.syncs;
  Alcotest.(check int) "head 1 syncs" 1 h1.Log_writer.syncs

let test_scan_merges_two_chains_by_seq () =
  let env = mk_env ~heads:2 () in
  (* Interleave batches across heads so the chains interleave in seq. *)
  for i = 0 to 30 do
    ignore (append env 'm' ~head:(i mod 2) ~blockno:i);
    Log_writer.sync env.log
  done;
  let ckpt =
    {
      one_head_ckpt with
      Lfs_core.Checkpoint.heads =
        [|
          { Lfs_core.Checkpoint.cur_seg = 0; cur_off = 0; next_seg = 1 };
          { Lfs_core.Checkpoint.cur_seg = 2; cur_off = 0; next_seg = 3 };
        |];
    }
  in
  let result = Lfs_core.Recovery.scan layout (Helpers.vdev env.disk) ~ckpt in
  Alcotest.(check int) "all 31 writes found" 31
    (List.length result.Lfs_core.Recovery.writes);
  let seqs =
    List.map
      (fun w -> w.Lfs_core.Recovery.summary.Summary.seq)
      result.Lfs_core.Recovery.writes
  in
  Alcotest.(check (list int)) "merged in ascending seq order"
    (List.sort compare seqs) seqs;
  Alcotest.(check int) "seq recovered" (Log_writer.seq env.log)
    result.Lfs_core.Recovery.next_seq;
  Array.iteri
    (fun i (tl : Lfs_core.Recovery.tail) ->
      Alcotest.(check int)
        (Printf.sprintf "head %d tail segment" i)
        (Log_writer.current_segment ~head:i env.log)
        tl.Lfs_core.Recovery.tail_seg)
    result.Lfs_core.Recovery.tails

let test_scan_torn_write_truncates_all_chains () =
  let env = mk_env ~heads:2 () in
  let addrs = ref [] in
  for i = 0 to 9 do
    addrs := append env 't' ~head:(i mod 2) ~blockno:i :: !addrs;
    Log_writer.sync env.log
  done;
  let addrs = Array.of_list (List.rev !addrs) in
  (* Tear the payload of the 5th batch (head 0, seq 5): everything from
     seq 5 on must be discarded in BOTH chains, because the global
     barrier never acknowledged anything beyond it. *)
  Disk.write_block env.disk addrs.(4)
    (Bytes.make layout.Layout.block_size '\255');
  let ckpt =
    {
      one_head_ckpt with
      Lfs_core.Checkpoint.heads =
        [|
          { Lfs_core.Checkpoint.cur_seg = 0; cur_off = 0; next_seg = 1 };
          { Lfs_core.Checkpoint.cur_seg = 2; cur_off = 0; next_seg = 3 };
        |];
    }
  in
  let result = Lfs_core.Recovery.scan layout (Helpers.vdev env.disk) ~ckpt in
  Alcotest.(check int) "only the 4 pre-torn writes survive" 4
    (List.length result.Lfs_core.Recovery.writes);
  Alcotest.(check int) "next_seq is the torn write's" 5
    result.Lfs_core.Recovery.next_seq;
  List.iter
    (fun w ->
      Alcotest.(check bool) "no write at or past the cutoff" true
        (w.Lfs_core.Recovery.summary.Summary.seq < 5))
    result.Lfs_core.Recovery.writes

let suite =
  ( "log_writer",
    [
      Alcotest.test_case "addresses sequential" `Quick test_addresses_sequential_in_batch;
      Alcotest.test_case "buffered until sync" `Quick test_nothing_on_disk_before_sync;
      Alcotest.test_case "batch is one IO" `Quick test_batch_is_single_io;
      Alcotest.test_case "summary decodes" `Quick test_summary_on_disk_decodes;
      Alcotest.test_case "payload checksum" `Quick test_payload_checksum_matches;
      Alcotest.test_case "partial-segment chain" `Quick test_partial_segment_chain;
      Alcotest.test_case "advance uses reservation" `Quick test_segment_advance_uses_reservation;
      Alcotest.test_case "on_append accounting" `Quick test_on_append_accounting;
      Alcotest.test_case "lazy payload" `Quick test_lazy_payload_rendered_at_sync;
      Alcotest.test_case "payload size checked" `Quick test_wrong_payload_size_rejected;
      Alcotest.test_case "addresses unique" `Quick test_addresses_never_reused_within_segment;
      Alcotest.test_case "scan follows chain" `Quick test_scan_follows_chain_across_segments;
      Alcotest.test_case "scan rejects stale" `Quick test_scan_stops_at_stale_summary;
      Alcotest.test_case "heads disjoint" `Quick test_heads_write_disjoint_segments;
      Alcotest.test_case "heads share seq" `Quick test_heads_share_seq;
      Alcotest.test_case "advance excludes heads" `Quick test_advance_excludes_all_heads;
      Alcotest.test_case "barrier covers heads" `Quick test_barrier_covers_all_heads;
      Alcotest.test_case "head stats" `Quick test_head_stats_attribute_traffic;
      Alcotest.test_case "scan merges chains" `Quick test_scan_merges_two_chains_by_seq;
      Alcotest.test_case "torn write cuts all chains" `Quick test_scan_torn_write_truncates_all_chains;
    ] )
