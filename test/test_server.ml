(* Tests for the request-serving engine: the discrete-event scheduler,
   determinism, group commit, admission control (shed and block),
   fairness, and dir-log roll-forward under interleaved sessions. *)

module Sched = Lfs_server.Sched
module Engine = Lfs_server.Engine
module Session = Lfs_workload.Session
module Fsops = Lfs_workload.Fsops
module Metrics = Lfs_obs.Metrics
module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Geometry = Lfs_disk.Geometry
module Fs = Lfs_core.Fs

(* ----- Scheduler ----- *)

let test_sched_ordering () =
  let s = Sched.create () in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  Sched.at s 2.0 (mark "c");
  Sched.at s 1.0 (mark "a");
  (* Same instant: insertion order breaks the tie. *)
  Sched.at s 1.0 (mark "b");
  (* Past times clamp to now (0), firing before everything later. *)
  Sched.at s (-5.0) (mark "past");
  Alcotest.(check int) "pending" 4 (Sched.pending s);
  Sched.run s;
  Alcotest.(check (list string)) "fired in (time, insertion) order"
    [ "past"; "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check (float 0.0)) "now is the last event time" 2.0 (Sched.now s)

let test_sched_nested_events () =
  let s = Sched.create () in
  let hits = ref 0 in
  (* Events scheduled from inside an event still run, including at zero
     delay (they fire after the current one, not recursively). *)
  Sched.after s 1.0 (fun () ->
      Sched.after s 0.0 (fun () -> incr hits);
      Sched.after s 0.5 (fun () -> incr hits));
  Sched.run s;
  Alcotest.(check int) "nested events fired" 2 !hits;
  Alcotest.(check (float 0.0)) "clock advanced" 1.5 (Sched.now s)

(* ----- Engine fixtures ----- *)

(* Modelled-time geometry: group commit is invisible on an instant
   disk, so engine tests run on the paper's Wren IV. *)
let engine_geom ?(blocks = 8192) () = Geometry.wren_iv ~blocks

let small_cfg =
  {
    Engine.default with
    Engine.clients = 4;
    ops_per_client = 40;
    session_files = 8;
    write_size = 4096;
  }

(* ----- Determinism ----- *)

let test_engine_deterministic () =
  let once () =
    let r = Engine.run small_cfg (Fsops.fresh_lfs (engine_geom ())) in
    (Metrics.to_json r.Engine.metrics, r.Engine.completed, r.Engine.elapsed_s)
  in
  let j1, c1, e1 = once () in
  let j2, c2, e2 = once () in
  Alcotest.(check int) "same completions" c1 c2;
  Alcotest.(check (float 0.0)) "same modelled elapsed" e1 e2;
  Alcotest.(check string) "byte-identical metrics JSON" j1 j2;
  (* A different seed is a different run. *)
  let r3 =
    Engine.run { small_cfg with Engine.seed = 43 } (Fsops.fresh_lfs (engine_geom ()))
  in
  Alcotest.(check bool) "different seed diverges" false
    (Metrics.to_json r3.Engine.metrics = j1)

(* ----- Group commit ----- *)

let test_group_commit_amortises () =
  let run clients =
    Engine.run
      { small_cfg with Engine.clients; ops_per_client = 60 }
      (Fsops.fresh_lfs (engine_geom ()))
  in
  let r1 = run 1 in
  let r8 = run 8 in
  Alcotest.(check bool) "all ops completed" true
    (r1.Engine.completed = 60 && r8.Engine.completed = 480);
  Alcotest.(check bool) "batches form under concurrency" true
    (r8.Engine.mean_batch > 1.0);
  Alcotest.(check bool) "8 clients out-serve 1 client" true
    (r8.Engine.throughput_ops_s > r1.Engine.throughput_ops_s);
  let per_op r = r.Engine.disk_s /. float_of_int r.Engine.completed in
  Alcotest.(check bool) "group commit cuts disk time per op" true
    (per_op r8 < per_op r1);
  (* The flush instruments saw the shared syncs. *)
  Alcotest.(check bool) "flushes counted" true (r8.Engine.flushes > 0);
  match Metrics.value r8.Engine.metrics "server.batch.requests" with
  | Some (Metrics.Summary { count; vmax; _ }) ->
      Alcotest.(check int) "one observation per flush" r8.Engine.flushes count;
      Alcotest.(check bool) "some batch carried several requests" true (vmax > 1.0)
  | _ -> Alcotest.fail "batch histogram missing"

let test_ffs_runs_without_batching () =
  let r =
    Engine.run small_cfg (Fsops.fresh_ffs (engine_geom ()))
  in
  Alcotest.(check int) "all ops completed" 160 r.Engine.completed;
  Alcotest.(check int) "no group commit on a synchronous backend" 0
    r.Engine.flushes;
  Alcotest.(check bool) "mean batch undefined" true
    (Float.is_nan r.Engine.mean_batch)

(* ----- Admission control ----- *)

let overload_cfg policy =
  {
    small_cfg with
    Engine.clients = 12;
    ops_per_client = 30;
    queue_depth = 2;
    policy;
    think_mean_s = 0.01;  (* offered load far beyond a depth-2 queue *)
  }

let test_overload_shed_accounting () =
  let cfg = overload_cfg Engine.Shed in
  let r = Engine.run cfg (Fsops.fresh_lfs (engine_geom ())) in
  Alcotest.(check bool) "overload actually sheds" true (r.Engine.shed > 0);
  (* No silent loss: every generated request completed or was shed. *)
  Array.iteri
    (fun c completed ->
      Alcotest.(check int)
        (Printf.sprintf "client %d accounted" c)
        cfg.Engine.ops_per_client
        (completed + r.Engine.per_client_shed.(c)))
    r.Engine.per_client_completed;
  Alcotest.(check int) "totals add up"
    (cfg.Engine.clients * cfg.Engine.ops_per_client)
    (r.Engine.completed + r.Engine.shed);
  Alcotest.(check bool) "waiting room respected the bound" true
    (r.Engine.max_queue_depth <= cfg.Engine.queue_depth)

let test_overload_block_completes_everything () =
  let cfg = overload_cfg Engine.Block in
  let r = Engine.run cfg (Fsops.fresh_lfs (engine_geom ())) in
  Alcotest.(check int) "nothing shed under Block" 0 r.Engine.shed;
  Alcotest.(check int) "every request completed"
    (cfg.Engine.clients * cfg.Engine.ops_per_client)
    r.Engine.completed;
  Alcotest.(check bool) "waiting room respected the bound" true
    (r.Engine.max_queue_depth <= cfg.Engine.queue_depth)

let test_fair_dequeue_bounds_ratio () =
  (* Round-robin dequeue: with a waiting room deep enough that every
     client keeps a request queued (the regime fair dequeue governs),
     a saturating overload must not let any session starve or run away
     with the server.  (At tiny depths completion is decided by
     admission luck, not dequeue order.) *)
  let cfg =
    {
      (overload_cfg Engine.Shed) with
      Engine.ops_per_client = 60;
      queue_depth = 24;
      think_mean_s = 0.005;
    }
  in
  let r = Engine.run cfg (Fsops.fresh_lfs (engine_geom ())) in
  Alcotest.(check bool) "the sweep saturates (some shed)" true
    (r.Engine.shed > 0);
  let mn = Array.fold_left min max_int r.Engine.per_client_completed in
  let mx = Array.fold_left max 0 r.Engine.per_client_completed in
  Alcotest.(check bool) "every client completed something" true (mn > 0);
  Alcotest.(check bool)
    (Printf.sprintf "max/min completed ratio bounded (%d/%d)" mx mn)
    true
    (float_of_int mx /. float_of_int mn <= 2.0)

(* ----- Dir-log roll-forward under the scheduler ----- *)

(* Engine run, power cut after its final sync (the checkpoint on disk is
   stale), roll-forward, and compare the recovered namespace and file
   contents against a second identical run that stayed mounted — the
   engine's determinism is the oracle.  Guards the PR 2 inode-reuse fix
   under scheduler-interleaved create/remove traffic. *)
let snapshot_state fs clients =
  List.concat_map
    (fun c ->
      let dir = Printf.sprintf "/c%d" c in
      match Fs.resolve fs dir with
      | None -> Alcotest.failf "session dir %s missing" dir
      | Some ino ->
          Fs.readdir fs ino
          |> List.map (fun (name, child) ->
                 let data =
                   Fs.read fs child ~off:0 ~len:(Fs.file_size fs child)
                 in
                 (dir ^ "/" ^ name, Digest.bytes data))
          |> List.sort compare)
    (List.init clients (fun c -> c))

let recovery_cfg =
  {
    small_cfg with
    Engine.clients = 3;
    ops_per_client = 50;
    session_files = 4;  (* tiny working set: constant name reuse *)
  }

let test_rollforward_after_engine_run () =
  let run_engine () =
    let dev = Vdev.of_disk (Disk.create (engine_geom ())) in
    Fs.format dev Lfs_core.Config.default;
    let fs = Fs.mount dev in
    let r = Engine.run recovery_cfg (Fsops.of_lfs fs) in
    Alcotest.(check int) "run completed" 150 r.Engine.completed;
    (dev, fs)
  in
  (* Run A: drop the mounted handle without unmount (the crash) and
     roll the log forward from the stale checkpoint. *)
  let dev_a, _abandoned = run_engine () in
  let fs_rec, report = Fs.recover dev_a in
  Alcotest.(check bool) "roll-forward replayed log writes" true
    (report.Fs.writes_replayed > 0);
  Helpers.fsck_clean fs_rec;
  (* Run B: identical run, still mounted — the deterministic oracle. *)
  let _dev_b, fs_oracle = run_engine () in
  Alcotest.(check (list (pair string string)))
    "recovered namespace and contents match the oracle"
    (snapshot_state fs_oracle recovery_cfg.Engine.clients)
    (snapshot_state fs_rec recovery_cfg.Engine.clients)

(* ----- Background cleaning under the engine ----- *)

(* A high-utilisation image whose clean pool sits at the stop watermark:
   the measured run's writes drain it into the background band, so an
   engine with --bg-clean has real cleaning to schedule.  Small segments
   keep each single-victim step a short stall; the band is two segments
   above the emergency trigger. *)
let bg_fs_config =
  {
    Lfs_core.Config.default with
    seg_blocks = 64;
    write_buffer_blocks = 64;
    bg_clean_start = 7;
    bg_clean_stop = 10;
  }

let prefilled_bg_fs () =
  let dev = Vdev.of_disk (Disk.create (engine_geom ~blocks:4096 ())) in
  Fs.format dev bg_fs_config;
  let fs = Fs.mount dev in
  let payload = Bytes.make 32768 'p' in
  ignore (Fs.mkdir_path fs "/fill");
  let n = ref 0 in
  while Fs.clean_segment_count fs > 10 do
    Fs.write_path fs (Printf.sprintf "/fill/g%d" !n) payload;
    incr n
  done;
  (* Dirt at constant live bytes, then settle the pool at the stop
     watermark so the run starts from a reproducible state. *)
  for g = 0 to !n - 1 do
    if g mod 2 = 0 then
      Fs.write_path fs (Printf.sprintf "/fill/g%d" g) payload
  done;
  Fs.clean fs;
  Fs.sync fs;
  (dev, fs)

let bg_cfg =
  {
    small_cfg with
    Engine.ops_per_client = 60;
    think_mean_s = 0.2;  (* unsaturated: real idle windows *)
    bg_clean = true;
  }

let test_engine_bg_clean_deterministic () =
  let once () =
    let _dev, fs = prefilled_bg_fs () in
    let r = Engine.run bg_cfg (Fsops.of_lfs fs) in
    (Metrics.to_json r.Engine.metrics, r.Engine.bg_clean_steps)
  in
  let j1, s1 = once () in
  let j2, s2 = once () in
  Alcotest.(check bool) "background steps actually ran" true (s1 > 0);
  Alcotest.(check int) "same step count" s1 s2;
  Alcotest.(check string) "byte-identical metrics JSON" j1 j2

let test_engine_bg_clean_keeps_foreground_out () =
  let _dev, fs = prefilled_bg_fs () in
  let fs_metrics = Fs.metrics fs in
  let counter name =
    match Metrics.value fs_metrics name with
    | Some (Metrics.Int n) -> n
    | _ -> 0
  in
  let fg0 = counter "fs.cleaner.fg.passes" in
  let r = Engine.run bg_cfg (Fsops.of_lfs fs) in
  Alcotest.(check int) "all ops completed"
    (bg_cfg.Engine.clients * bg_cfg.Engine.ops_per_client)
    r.Engine.completed;
  Alcotest.(check bool) "background cleaning kept up" true
    (r.Engine.bg_clean_steps > 0);
  Alcotest.(check bool) "background segments cleaned" true
    (counter "fs.cleaner.bg.segments" > 0);
  Alcotest.(check int) "zero foreground passes during the run" fg0
    (counter "fs.cleaner.fg.passes");
  Helpers.fsck_clean fs

let test_rollforward_after_bg_clean_run () =
  (* Crash after a run that interleaved background cleaning with client
     traffic; the deterministic twin run that stayed mounted is the
     oracle for the recovered state. *)
  let run_engine () =
    let dev, fs = prefilled_bg_fs () in
    let r = Engine.run bg_cfg (Fsops.of_lfs fs) in
    Alcotest.(check bool) "background steps ran" true
      (r.Engine.bg_clean_steps > 0);
    (dev, fs)
  in
  let dev_a, _abandoned = run_engine () in
  let fs_rec, _report = Fs.recover dev_a in
  Helpers.fsck_clean fs_rec;
  let _dev_b, fs_oracle = run_engine () in
  Alcotest.(check (list (pair string string)))
    "recovered namespace and contents match the oracle"
    (snapshot_state fs_oracle bg_cfg.Engine.clients)
    (snapshot_state fs_rec bg_cfg.Engine.clients)

(* Two interleaved sessions create/remove/recreate the same names
   between checkpoints — the minimal form of the PR 2 inode-reuse
   resurrection bug, driven through Session streams. *)
let test_interleaved_same_name_rollforward () =
  let disk, fs = Helpers.fresh_fs ~blocks:2048 () in
  ignore (Fs.mkdir_path fs "/shared");
  let dir = Option.get (Fs.resolve fs "/shared") in
  Fs.checkpoint fs;
  (* Apply two sessions' streams into ONE shared directory, strictly
     interleaved; track the expected surviving contents. *)
  let sessions =
    Array.init 2 (fun c ->
        Session.create ~client:c ~seed:9 ~files:3 ~write_size:2048 ())
  in
  let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
  for round = 0 to 39 do
    let s = sessions.(round mod 2) in
    let op = Session.next s in
    let path = "/shared/" ^ op.Session.name in
    match op.Session.cls with
    | Session.Create | Session.Write ->
        let len = max 16 op.Session.size in
        let data =
          Bytes.make len (Char.chr (Char.code 'a' + (round mod 26)))
        in
        Fs.write_path fs path data;
        Hashtbl.replace model op.Session.name (Bytes.to_string data)
    | Session.Delete -> (
        match Fs.resolve fs path with
        | Some _ ->
            Fs.unlink fs ~dir op.Session.name;
            Hashtbl.remove model op.Session.name
        | None -> ())
    | Session.Read -> (
        match Fs.resolve fs path with
        | Some ino -> ignore (Fs.read fs ino ~off:0 ~len:(Fs.file_size fs ino))
        | None -> ())
  done;
  Fs.sync fs;
  (* Crash: recover from the checkpoint, rolling forward through the
     interleaved create/remove records. *)
  let fs2, _report = Fs.recover (Helpers.vdev disk) in
  Helpers.fsck_clean fs2;
  let dir2 = Option.get (Fs.resolve fs2 "/shared") in
  let live = Fs.readdir fs2 dir2 in
  Alcotest.(check int) "surviving name count" (Hashtbl.length model)
    (List.length live);
  List.iter
    (fun (name, ino) ->
      match Hashtbl.find_opt model name with
      | None -> Alcotest.failf "removed file %s resurrected" name
      | Some expected ->
          let data = Fs.read fs2 ino ~off:0 ~len:(Fs.file_size fs2 ino) in
          Alcotest.(check string)
            (Printf.sprintf "contents of %s" name)
            expected (Bytes.to_string data))
    live

(* ----- The IO-depth pipeline ----- *)

(* Queued serving must stay a pure function of the config: equal seeds,
   byte-identical metrics, no lost requests — with device completions as
   first-class events on the shared clock. *)
let test_engine_io_depth_deterministic () =
  let cfg = { small_cfg with Engine.clients = 8; io_depth = 4 } in
  let once () =
    let r = Engine.run cfg (Fsops.fresh_lfs (engine_geom ())) in
    (Metrics.to_json r.Engine.metrics, r.Engine.completed, r.Engine.elapsed_s)
  in
  let j1, c1, e1 = once () in
  let j2, c2, e2 = once () in
  Alcotest.(check int) "same completions" c1 c2;
  Alcotest.(check (float 0.0)) "same modelled elapsed" e1 e2;
  Alcotest.(check string) "byte-identical metrics JSON" j1 j2

(* Overlapping request IO must help, not hurt: same offered load, same
   seed, and the pipelined run finishes no later than the serial one
   while serving cached reads without queueing behind durable writes. *)
let test_engine_io_depth_overlaps () =
  let cfg =
    { small_cfg with Engine.clients = 8; ops_per_client = 60; think_mean_s = 0.1 }
  in
  let run io_depth =
    Engine.run { cfg with Engine.io_depth } (Fsops.fresh_lfs (engine_geom ()))
  in
  let serial = run 1 in
  let piped = run 8 in
  Alcotest.(check int) "both complete everything" serial.Engine.completed
    piped.Engine.completed;
  Alcotest.(check bool) "pipelined run no slower" true
    (piped.Engine.elapsed_s <= serial.Engine.elapsed_s +. 1e-9);
  let p95_read r =
    match Metrics.value r.Engine.metrics "server.latency.read.s" with
    | Some (Metrics.Summary { p95; _ }) -> p95
    | _ -> Float.nan
  in
  Alcotest.(check bool) "read tail shrinks" true
    (p95_read piped < p95_read serial);
  (* The device queue instruments saw the overlap... *)
  let gauge r name =
    match Metrics.value r.Engine.metrics name with
    | Some (Metrics.Float f) -> f
    | _ -> Float.nan
  in
  Alcotest.(check bool) "queue wait recorded" true
    (gauge piped "server.dev.queue_wait_s" > 0.0);
  (* ...and depth 1 stayed on the serial path: zero wait by construction. *)
  Alcotest.(check (float 0.0)) "serial path has no device queue" 0.0
    (gauge serial "server.dev.queue_wait_s")

(* The engine hands the device stack back in Direct mode, so post-run
   tooling (fsck, stats, another engine run) sees the synchronous API. *)
let test_engine_io_depth_restores_mode () =
  let fs = Fsops.fresh_lfs (engine_geom ()) in
  let r = Engine.run { small_cfg with Engine.io_depth = 4 } fs in
  Alcotest.(check int) "completed" (4 * 40) r.Engine.completed;
  List.iter
    (fun d ->
      (match Vdev.get_mode d with
      | Vdev.Direct -> ()
      | Vdev.Queued _ -> Alcotest.fail "engine must restore Direct mode");
      Alcotest.(check int) "nothing outstanding" 0
        (Vdev.outstanding_in d ~lo:0 ~hi:max_int))
    fs.Fsops.devices

let suite =
  ( "server",
    [
      Alcotest.test_case "sched ordering" `Quick test_sched_ordering;
      Alcotest.test_case "sched nested events" `Quick test_sched_nested_events;
      Alcotest.test_case "engine deterministic" `Quick test_engine_deterministic;
      Alcotest.test_case "group commit amortises" `Quick test_group_commit_amortises;
      Alcotest.test_case "ffs without batching" `Quick test_ffs_runs_without_batching;
      Alcotest.test_case "overload shed accounting" `Quick test_overload_shed_accounting;
      Alcotest.test_case "overload block completes" `Quick test_overload_block_completes_everything;
      Alcotest.test_case "fair dequeue ratio" `Quick test_fair_dequeue_bounds_ratio;
      Alcotest.test_case "roll-forward after engine run" `Quick test_rollforward_after_engine_run;
      Alcotest.test_case "bg-clean deterministic" `Quick test_engine_bg_clean_deterministic;
      Alcotest.test_case "bg-clean keeps foreground out" `Quick
        test_engine_bg_clean_keeps_foreground_out;
      Alcotest.test_case "roll-forward after bg-clean run" `Quick
        test_rollforward_after_bg_clean_run;
      Alcotest.test_case "interleaved same-name roll-forward" `Quick
        test_interleaved_same_name_rollforward;
      Alcotest.test_case "io-depth deterministic" `Quick
        test_engine_io_depth_deterministic;
      Alcotest.test_case "io-depth overlaps requests" `Quick
        test_engine_io_depth_overlaps;
      Alcotest.test_case "io-depth restores direct mode" `Quick
        test_engine_io_depth_restores_mode;
    ] )
