(* Tests for the NVRAM write-buffer extension: zero data loss across
   crashes, journal replay semantics, remapping and capacity. *)

module Fs = Lfs_core.Fs
module Nvram = Lfs_core.Nvram
module Nfs = Lfs_core.Nvram_fs
module Disk = Lfs_disk.Disk
module Types = Lfs_core.Types
module Prng = Lfs_util.Prng

let fresh () =
  let disk, fs = Helpers.fresh_fs ~blocks:2048 () in
  let nvram = Nvram.create () in
  (disk, nvram, Nfs.wrap fs nvram)

(* Crash without any sync: everything acknowledged lives only in the
   volatile cache and the NVRAM. *)
let crash disk = Helpers.reboot disk

let test_journal_accounting () =
  let n = Nvram.create ~capacity_bytes:1024 () in
  Alcotest.(check int) "empty" 0 (Nvram.used_bytes n);
  Nvram.append n (Nvram.Unlink { dir = 1; name = "abc"; ino = 9 });
  Alcotest.(check bool) "used grows" true (Nvram.used_bytes n > 0);
  Alcotest.(check int) "one record" 1 (List.length (Nvram.records n));
  Nvram.clear n;
  Alcotest.(check int) "cleared" 0 (Nvram.used_bytes n)

let test_no_data_loss_without_sync () =
  let disk, nvram, nfs = fresh () in
  let data = Helpers.bytes_of_pattern ~seed:50 20_000 in
  let ino = Nfs.create nfs ~dir:Fs.root "precious" in
  Nfs.write nfs ino ~off:0 data;
  (* Power cut before any sync or checkpoint. *)
  crash disk;
  let nfs2, replay = Nfs.recover (Helpers.vdev disk) nvram in
  Alcotest.(check bool) "records replayed" true (replay.Nfs.replayed >= 2);
  Helpers.check_bytes "nothing lost" data (Option.get (Nfs.read_path nfs2 "/precious"));
  Helpers.fsck_clean (Nfs.fs nfs2)

let test_replay_is_ordered () =
  let disk, nvram, nfs = fresh () in
  let ino = Nfs.create nfs ~dir:Fs.root "f" in
  Nfs.write nfs ino ~off:0 (Bytes.of_string "AAAA");
  Nfs.write nfs ino ~off:2 (Bytes.of_string "bb");
  Nfs.truncate nfs ino ~len:3;
  crash disk;
  let nfs2, _ = Nfs.recover (Helpers.vdev disk) nvram in
  Helpers.check_bytes "history order preserved" (Bytes.of_string "AAb")
    (Option.get (Nfs.read_path nfs2 "/f"))

let test_delete_not_resurrected () =
  let disk, nvram, nfs = fresh () in
  let ino = Nfs.create nfs ~dir:Fs.root "ghost" in
  Nfs.write nfs ino ~off:0 (Bytes.of_string "boo");
  Nfs.unlink nfs ~dir:Fs.root "ghost";
  crash disk;
  let nfs2, _ = Nfs.recover (Helpers.vdev disk) nvram in
  Alcotest.(check (option int)) "stays deleted" None (Nfs.resolve nfs2 "/ghost");
  Helpers.fsck_clean (Nfs.fs nfs2)

let test_replay_on_partially_durable_state () =
  (* Some journalled work also reached the log (sync); replay must not
     duplicate or corrupt it. *)
  let disk, nvram, nfs = fresh () in
  Nfs.write_path nfs "/a" (Bytes.of_string "first");
  Fs.sync (Nfs.fs nfs);
  Nfs.write_path nfs "/b" (Bytes.of_string "second");
  crash disk;
  let nfs2, _ = Nfs.recover (Helpers.vdev disk) nvram in
  Helpers.check_bytes "durable file" (Bytes.of_string "first") (Option.get (Nfs.read_path nfs2 "/a"));
  Helpers.check_bytes "volatile file" (Bytes.of_string "second") (Option.get (Nfs.read_path nfs2 "/b"));
  Helpers.fsck_clean (Nfs.fs nfs2)

let test_rename_replay () =
  let disk, nvram, nfs = fresh () in
  let d1 = Nfs.mkdir nfs ~dir:Fs.root "d1" in
  let d2 = Nfs.mkdir nfs ~dir:Fs.root "d2" in
  let ino = Nfs.create nfs ~dir:d1 "x" in
  Nfs.write nfs ino ~off:0 (Bytes.of_string "move me");
  Nfs.rename nfs ~odir:d1 "x" ~ndir:d2 "y";
  crash disk;
  let nfs2, _ = Nfs.recover (Helpers.vdev disk) nvram in
  Helpers.check_bytes "moved with contents" (Bytes.of_string "move me")
    (Option.get (Nfs.read_path nfs2 "/d2/y"));
  Alcotest.(check (option int)) "old gone" None (Nfs.resolve nfs2 "/d1/x")

let test_remap_after_create_replay () =
  (* A create whose inode never reached the log gets a fresh inode at
     replay; later writes must follow the remap. *)
  let disk, nvram, nfs = fresh () in
  Fs.checkpoint (Nfs.fs nfs);
  Nvram.clear nvram;
  let ino = Nfs.create nfs ~dir:Fs.root "fresh" in
  Nfs.write nfs ino ~off:0 (Bytes.of_string "remapped");
  crash disk;
  let nfs2, _ = Nfs.recover (Helpers.vdev disk) nvram in
  Helpers.check_bytes "write followed remap" (Bytes.of_string "remapped")
    (Option.get (Nfs.read_path nfs2 "/fresh"))

let test_checkpoint_clears_journal () =
  let _, nvram, nfs = fresh () in
  Nfs.write_path nfs "/x" (Bytes.make 5000 'x');
  Alcotest.(check bool) "journal non-empty" true (Nvram.used_bytes nvram > 0);
  Nfs.checkpoint nfs;
  Alcotest.(check int) "journal cleared" 0 (Nvram.used_bytes nvram)

let test_capacity_forces_checkpoint () =
  let disk, _ = Helpers.fresh_fs ~blocks:2048 () in
  let fs = Fs.mount (Helpers.vdev disk) in
  let nvram = Nvram.create ~capacity_bytes:(128 * 1024) () in
  let nfs = Nfs.wrap fs nvram in
  for i = 0 to 30 do
    Nfs.write_path nfs (Printf.sprintf "/f%d" i) (Bytes.make 10_000 'c')
  done;
  (* The journal never exceeds capacity: checkpoints drained it. *)
  Alcotest.(check bool) "bounded" true
    (Nvram.used_bytes nvram <= Nvram.capacity_bytes nvram);
  Alcotest.(check bool) "checkpoints happened" true
    (Lfs_core.Fs_stats.checkpoints (Fs.stats fs) > 1)

let test_randomised_no_loss ~seed () =
  let disk, nvram, nfs = fresh () in
  let prng = Prng.create ~seed in
  let model : (string, bytes) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to 200 do
    let name = Printf.sprintf "/f%d" (Prng.int prng 15) in
    if Prng.int prng 5 = 0 && Hashtbl.mem model name then begin
      Nfs.unlink nfs ~dir:Fs.root (String.sub name 1 (String.length name - 1));
      Hashtbl.remove model name
    end
    else begin
      let data = Helpers.bytes_of_pattern ~seed:(i * 7) (100 + Prng.int prng 20_000) in
      Nfs.write_path nfs name data;
      Hashtbl.replace model name data
    end;
    if Prng.int prng 20 = 0 then Fs.sync (Nfs.fs nfs)
  done;
  crash disk;
  let nfs2, _ = Nfs.recover (Helpers.vdev disk) nvram in
  Hashtbl.iter
    (fun path data ->
      Helpers.check_bytes ("content of " ^ path) data (Option.get (Nfs.read_path nfs2 path)))
    model;
  Helpers.fsck_clean (Nfs.fs nfs2)

let test_write_path_missing_dir_rejected () =
  let _, _, nfs = fresh () in
  match Nfs.write_path nfs "/nodir/f" (Bytes.of_string "x") with
  | () -> Alcotest.fail "should reject missing directory"
  | exception Types.Fs_error _ -> ()

let test_internal_checkpoint_clears_journal () =
  (* The hook fires for the file system's own automatic checkpoints. *)
  let disk, _ = Helpers.fresh_fs ~blocks:2048 () in
  let fs =
    Fs.mount
      ~config:{ Helpers.test_config with Lfs_core.Config.checkpoint_interval_ops = 5 }
      (Helpers.vdev disk)
  in
  let nvram = Nvram.create () in
  let nfs = Nfs.wrap fs nvram in
  for i = 0 to 19 do
    Nfs.write_path nfs (Printf.sprintf "/f%d" i) (Bytes.make 2000 'h')
  done;
  (* 20 ops with a 5-op interval: several internal checkpoints, so only
     a suffix of the work is still journalled. *)
  Alcotest.(check bool) "journal holds a suffix only" true
    (List.length (Nvram.records nvram) < 20);
  crash disk;
  let nfs2, _ = Nfs.recover (Helpers.vdev disk) nvram in
  for i = 0 to 19 do
    Alcotest.(check bool)
      (Printf.sprintf "f%d survives" i)
      true
      (Nfs.resolve nfs2 (Printf.sprintf "/f%d" i) <> None)
  done;
  Helpers.fsck_clean (Nfs.fs nfs2)

let suite =
  ( "nvram",
    [
      Alcotest.test_case "journal accounting" `Quick test_journal_accounting;
      Alcotest.test_case "no loss without sync" `Quick test_no_data_loss_without_sync;
      Alcotest.test_case "replay ordered" `Quick test_replay_is_ordered;
      Alcotest.test_case "delete not resurrected" `Quick test_delete_not_resurrected;
      Alcotest.test_case "partially durable" `Quick test_replay_on_partially_durable_state;
      Alcotest.test_case "rename replay" `Quick test_rename_replay;
      Alcotest.test_case "create remap" `Quick test_remap_after_create_replay;
      Alcotest.test_case "checkpoint clears" `Quick test_checkpoint_clears_journal;
      Alcotest.test_case "capacity bound" `Quick test_capacity_forces_checkpoint;
      Alcotest.test_case "random no loss (seed 60)" `Quick (test_randomised_no_loss ~seed:60);
      Alcotest.test_case "random no loss (seed 61)" `Quick (test_randomised_no_loss ~seed:61);
      Alcotest.test_case "write_path missing dir" `Quick test_write_path_missing_dir_rejected;
      Alcotest.test_case "internal checkpoints clear journal" `Quick
        test_internal_checkpoint_clears_journal;
    ] )
