(* Tests for the simulated block device: contents, timing model, crash
   injection, snapshots, and the block cache. *)

module Disk = Lfs_disk.Disk
module Geometry = Lfs_disk.Geometry
module Io_stats = Lfs_disk.Io_stats
module Block_cache = Lfs_disk.Block_cache

let wren = Geometry.wren_iv ~blocks:256

let block c = Bytes.make 4096 c

let test_read_back () =
  let d = Disk.create wren in
  Disk.write_block d 5 (block 'a');
  Helpers.check_bytes "read back" (block 'a') (Disk.read_block d 5);
  Helpers.check_bytes "other block untouched" (block '\000') (Disk.read_block d 6)

let test_multi_block () =
  let d = Disk.create wren in
  let buf = Bytes.cat (block 'x') (block 'y') in
  Disk.write_blocks d 10 buf;
  Helpers.check_bytes "first" (block 'x') (Disk.read_block d 10);
  Helpers.check_bytes "second" (block 'y') (Disk.read_block d 11);
  Helpers.check_bytes "range read" buf (Disk.read_blocks d 10 2)

let test_bounds_checked () =
  let d = Disk.create wren in
  Alcotest.check_raises "write oob" (Invalid_argument "Disk.write_blocks: blocks [256, 257) out of range [0, 256)")
    (fun () -> Disk.write_block d 256 (block 'z'));
  (match Disk.read_blocks d 250 10 with
  | _ -> Alcotest.fail "read past end should raise"
  | exception Invalid_argument _ -> ())

let test_write_partial_block_rejected () =
  let d = Disk.create wren in
  (match Disk.write_blocks d 0 (Bytes.make 100 'p') with
  | () -> Alcotest.fail "partial block should be rejected"
  | exception Invalid_argument _ -> ())

let test_sequential_cheaper_than_random () =
  let d1 = Disk.create wren in
  for i = 0 to 63 do
    Disk.write_block d1 i (block 's')
  done;
  let d2 = Disk.create wren in
  let p = Lfs_util.Prng.create ~seed:3 in
  for _ = 0 to 63 do
    Disk.write_block d2 (Lfs_util.Prng.int p 256) (block 'r')
  done;
  let t1 = (Disk.stats d1).Io_stats.busy_s in
  let t2 = (Disk.stats d2).Io_stats.busy_s in
  Alcotest.(check bool) "sequential at least 3x cheaper" true (t2 > 3.0 *. t1)

let test_one_big_write_cheaper_than_many () =
  let d1 = Disk.create wren in
  Disk.write_blocks d1 0 (Bytes.create (64 * 4096));
  let d2 = Disk.create wren in
  for i = 0 to 63 do
    Disk.write_block d2 i (block 'm')
  done;
  Alcotest.(check bool) "batch beats singles" true
    ((Disk.stats d2).Io_stats.busy_s > (Disk.stats d1).Io_stats.busy_s)

let test_stats_counts () =
  let d = Disk.create wren in
  Disk.write_blocks d 0 (Bytes.create (3 * 4096));
  ignore (Disk.read_blocks d 0 2);
  let s = Disk.stats d in
  Alcotest.(check int) "writes" 1 s.Io_stats.writes;
  Alcotest.(check int) "blocks written" 3 s.Io_stats.blocks_written;
  Alcotest.(check int) "reads" 1 s.Io_stats.reads;
  Alcotest.(check int) "blocks read" 2 s.Io_stats.blocks_read

let test_stats_diff () =
  let d = Disk.create wren in
  Disk.write_block d 0 (block 'a');
  let before = Io_stats.copy (Disk.stats d) in
  Disk.write_block d 1 (block 'b');
  let delta = Io_stats.diff (Disk.stats d) before in
  Alcotest.(check int) "one new write" 1 delta.Io_stats.writes

let test_crash_tears_write () =
  let d = Disk.create wren in
  Disk.plan_crash d ~after_blocks:1;
  (match Disk.write_blocks d 0 (Bytes.cat (block 'A') (block 'B')) with
  | () -> Alcotest.fail "write should crash"
  | exception Disk.Crashed -> ());
  Alcotest.(check bool) "device crashed" true (Disk.is_crashed d);
  Disk.reboot d;
  Helpers.check_bytes "prefix persisted" (block 'A') (Disk.read_block d 0);
  Helpers.check_bytes "suffix lost" (block '\000') (Disk.read_block d 1)

let test_crash_blocks_io_until_reboot () =
  let d = Disk.create wren in
  Disk.plan_crash d ~after_blocks:0;
  (match Disk.write_block d 0 (block 'x') with
  | () -> Alcotest.fail "should crash"
  | exception Disk.Crashed -> ());
  (match Disk.read_block d 0 with
  | _ -> Alcotest.fail "read after crash should raise"
  | exception Disk.Crashed -> ());
  Disk.reboot d;
  ignore (Disk.read_block d 0)

let test_cancel_crash () =
  let d = Disk.create wren in
  Disk.plan_crash d ~after_blocks:5;
  Disk.cancel_crash d;
  for i = 0 to 9 do
    Disk.write_block d i (block 'k')
  done;
  Alcotest.(check bool) "still alive" false (Disk.is_crashed d)

let test_snapshot_restore () =
  let d = Disk.create wren in
  Disk.write_block d 3 (block 'v');
  let snap = Disk.snapshot d in
  Disk.write_block d 3 (block 'w');
  Disk.restore d ~from:snap;
  Helpers.check_bytes "restored" (block 'v') (Disk.read_block d 3)

let test_snapshot_independent () =
  let d = Disk.create wren in
  let snap = Disk.snapshot d in
  Disk.write_block d 0 (block 'n');
  Helpers.check_bytes "snapshot unchanged" (block '\000') (Disk.read_block snap 0)

let test_save_load_file () =
  let d = Disk.create wren in
  Disk.write_block d 7 (block 'f');
  let path = Filename.temp_file "lfs_test" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Disk.save_file d path;
      let d2 = Disk.load_file wren path in
      Helpers.check_bytes "persisted" (block 'f') (Disk.read_block d2 7))

let test_seek_time_monotone () =
  let g = wren in
  Alcotest.(check (float 0.0)) "zero distance" 0.0 (Geometry.seek_time g ~distance_blocks:0);
  let t1 = Geometry.seek_time g ~distance_blocks:1 in
  let t2 = Geometry.seek_time g ~distance_blocks:128 in
  let t3 = Geometry.seek_time g ~distance_blocks:256 in
  Alcotest.(check bool) "monotone" true (t1 < t2 && t2 < t3);
  Alcotest.(check bool) "bounded by ~1.8x avg" true (t3 < 2.0 *. g.Geometry.avg_seek_s)

let test_geometry_io_time () =
  let g = wren in
  let t = Geometry.io_time g ~seeks:1 ~bytes:1_300_000 in
  (* One average seek + rotation + 1 second of transfer. *)
  Alcotest.(check bool) "about 1.03s" true (t > 1.0 && t < 1.1)

let test_cache_hit_costs_nothing () =
  let d = Disk.create wren in
  Disk.write_block d 2 (block 'c');
  let c = Block_cache.create ~capacity:8 in
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 2);
  let busy = (Disk.stats d).Io_stats.busy_s in
  Helpers.check_bytes "cache hit" (block 'c') (Block_cache.read c ~fetch:(Disk.read_block d) 2);
  Alcotest.(check (float 0.0)) "no extra disk time" busy (Disk.stats d).Io_stats.busy_s;
  Alcotest.(check int) "one hit" 1 (Block_cache.hits c);
  Alcotest.(check int) "one miss" 1 (Block_cache.misses c)

let test_cache_eviction_lru () =
  let d = Disk.create wren in
  let c = Block_cache.create ~capacity:2 in
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 0);
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 1);
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 0);  (* touch 0: now 1 is LRU *)
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 2);  (* evicts 1 *)
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 0);
  Alcotest.(check int) "0 stayed cached" 2 (Block_cache.hits c);
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 1);
  Alcotest.(check int) "1 was evicted" 4 (Block_cache.misses c)

let test_cache_put_and_invalidate () =
  let d = Disk.create wren in
  let c = Block_cache.create ~capacity:4 in
  Block_cache.put c 5 (block 'p');
  Helpers.check_bytes "put visible" (block 'p') (Block_cache.read c ~fetch:(Disk.read_block d) 5);
  Block_cache.invalidate c 5;
  Disk.write_block d 5 (block 'q');
  Helpers.check_bytes "invalidate forces re-read" (block 'q') (Block_cache.read c ~fetch:(Disk.read_block d) 5)

let test_cache_returns_copies () =
  let d = Disk.create wren in
  let c = Block_cache.create ~capacity:4 in
  let b = Block_cache.read c ~fetch:(Disk.read_block d) 1 in
  Bytes.fill b 0 10 'Z';
  Helpers.check_bytes "cache unpolluted" (block '\000') (Block_cache.read c ~fetch:(Disk.read_block d) 1)

let test_cache_zero_capacity () =
  let d = Disk.create wren in
  let c = Block_cache.create ~capacity:0 in
  Disk.write_block d 0 (block 'z');
  Helpers.check_bytes "still reads through" (block 'z') (Block_cache.read c ~fetch:(Disk.read_block d) 0);
  Alcotest.(check int) "never hits" 0 (Block_cache.hits c)

let test_geometry_presets () =
  let w = Geometry.wren_iv ~blocks:100 in
  Alcotest.(check int) "wren block size" 4096 w.Geometry.block_size;
  Alcotest.(check (float 1e-9)) "wren seek" 0.0175 w.Geometry.avg_seek_s;
  let m = Geometry.modern_hdd ~blocks:100 in
  Alcotest.(check bool) "modern is faster" true
    (m.Geometry.bandwidth_bytes_per_s > w.Geometry.bandwidth_bytes_per_s
    && m.Geometry.avg_seek_s < w.Geometry.avg_seek_s);
  let i = Geometry.instant ~blocks:100 in
  Alcotest.(check (float 0.0)) "instant is free" 0.0
    (Geometry.io_time i ~seeks:10 ~bytes:1_000_000)

(* ----- Cache statistics and multi-block (range) reads ----- *)

let test_cache_clear_resets_counters () =
  let d = Disk.create wren in
  let c = Block_cache.create ~capacity:8 in
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 0);
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 1);
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 0);
  Alcotest.(check int) "warm hits" 1 (Block_cache.hits c);
  Alcotest.(check int) "warm misses" 2 (Block_cache.misses c);
  Block_cache.clear c;
  Alcotest.(check int) "hits reset" 0 (Block_cache.hits c);
  Alcotest.(check int) "misses reset" 0 (Block_cache.misses c);
  (* The new epoch starts cold: the next read is a miss, not a stale hit. *)
  ignore (Block_cache.read c ~fetch:(Disk.read_block d) 0);
  Alcotest.(check int) "cold again" 1 (Block_cache.misses c);
  Alcotest.(check int) "no phantom hits" 0 (Block_cache.hits c)

let range_fetch d addr n = Disk.read_blocks d addr n

let test_cache_read_range_coalesces () =
  let d = Disk.create wren in
  for i = 0 to 15 do
    Disk.write_block d (10 + i) (block (Char.chr (Char.code 'a' + i)))
  done;
  let expect = Disk.read_blocks d 10 8 in
  let reads0 = (Disk.stats d).Io_stats.reads in
  let c = Block_cache.create ~capacity:32 in
  let got = Block_cache.read_range c ~block_size:4096 ~fetch:(range_fetch d) 10 8 in
  Helpers.check_bytes "cold range" expect got;
  Alcotest.(check int) "one coalesced device read" (reads0 + 1)
    (Disk.stats d).Io_stats.reads;
  Alcotest.(check int) "eight misses" 8 (Block_cache.misses c);
  Alcotest.(check int) "no hits yet" 0 (Block_cache.hits c);
  let busy = (Disk.stats d).Io_stats.busy_s in
  let again = Block_cache.read_range c ~block_size:4096 ~fetch:(range_fetch d) 10 8 in
  Helpers.check_bytes "warm range" expect again;
  Alcotest.(check int) "warm read is free" (reads0 + 1) (Disk.stats d).Io_stats.reads;
  Alcotest.(check (float 0.0)) "no extra disk time" busy (Disk.stats d).Io_stats.busy_s;
  Alcotest.(check int) "eight hits" 8 (Block_cache.hits c)

let test_cache_read_range_partial_overlap () =
  let d = Disk.create wren in
  for i = 0 to 7 do
    Disk.write_block d i (block (Char.chr (Char.code 'A' + i)))
  done;
  let c = Block_cache.create ~capacity:32 in
  ignore (Block_cache.read_range c ~block_size:4096 ~fetch:(range_fetch d) 0 4);
  let expect = Disk.read_blocks d 2 4 in
  let reads1 = (Disk.stats d).Io_stats.reads in
  (* [2,6) overlaps the cached [0,4): two hits, one fetch for [4,6). *)
  let got = Block_cache.read_range c ~block_size:4096 ~fetch:(range_fetch d) 2 4 in
  Helpers.check_bytes "overlap contents" expect got;
  Alcotest.(check int) "two hits" 2 (Block_cache.hits c);
  Alcotest.(check int) "4 + 2 misses" 6 (Block_cache.misses c);
  Alcotest.(check int) "one extra device read" (reads1 + 1)
    (Disk.stats d).Io_stats.reads

let test_vdev_cache_range_reads () =
  let d = Disk.create wren in
  let raw = Lfs_disk.Vdev.of_disk d in
  let cache = Lfs_disk.Vdev_cache.create ~capacity:64 raw in
  let dev = Lfs_disk.Vdev_cache.vdev cache in
  Alcotest.(check bool) "hit rate undefined when cold" true
    (Float.is_nan (Lfs_disk.Vdev_cache.hit_rate cache));
  let data = Helpers.bytes_of_pattern ~seed:11 (6 * 4096) in
  Lfs_disk.Vdev.write_blocks dev 20 data;
  (* Writes populate the cache, so a multi-block read-back is all hits. *)
  Helpers.check_bytes "range read back" data (Lfs_disk.Vdev.read_blocks dev 20 6);
  Alcotest.(check int) "write-through warms the cache" 6
    (Lfs_disk.Vdev_cache.hits cache);
  Alcotest.(check int) "no misses" 0 (Lfs_disk.Vdev_cache.misses cache);
  Alcotest.(check (float 1e-9)) "hit rate" 1.0 (Lfs_disk.Vdev_cache.hit_rate cache);
  (* A disjoint cold range misses per block but costs one lower IO. *)
  let reads0 = (Disk.stats d).Io_stats.reads in
  ignore (Lfs_disk.Vdev.read_blocks dev 100 5);
  Alcotest.(check int) "cold range misses" 5 (Lfs_disk.Vdev_cache.misses cache);
  Alcotest.(check int) "one lower IO" (reads0 + 1) (Disk.stats d).Io_stats.reads

let test_geometry_capacity () =
  Alcotest.(check int) "capacity" (256 * 4096)
    (Geometry.capacity_bytes (Geometry.wren_iv ~blocks:256))

let test_random_seek_averages_avg () =
  (* The distance-dependent curve is calibrated so a uniformly random
     seek costs about avg_seek_s. *)
  let g = Geometry.wren_iv ~blocks:100_000 in
  let p = Lfs_util.Prng.create ~seed:77 in
  let total = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    let a = Lfs_util.Prng.int p g.Geometry.blocks in
    let b = Lfs_util.Prng.int p g.Geometry.blocks in
    total := !total +. Geometry.seek_time g ~distance_blocks:(abs (a - b))
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f within 10%% of avg" mean)
    true
    (mean > 0.9 *. g.Geometry.avg_seek_s && mean < 1.1 *. g.Geometry.avg_seek_s)

(* ---- The submit/complete pipeline ---------------------------------- *)

module Io_queue = Lfs_disk.Io_queue
module Vdev = Lfs_disk.Vdev

(* Regression: zeroing is a real write — it charges modelled time and
   counts in the stats like any other transfer. *)
let test_zero_blocks_is_a_write () =
  let d = Disk.create wren in
  Disk.zero_blocks d 0 4;
  let s = Disk.stats d in
  Alcotest.(check int) "counts as one write" 1 s.Io_stats.writes;
  Alcotest.(check int) "blocks written" 4 s.Io_stats.blocks_written;
  Alcotest.(check bool) "charges modelled time" true (s.Io_stats.busy_s > 0.0)

(* Regression: zeroing respects an armed crash — the countdown ticks, a
   torn zero clears only its writable prefix, and a crashed device
   rejects further zeroing like any other IO. *)
let test_zero_blocks_respects_crash () =
  let d = Disk.create wren in
  Disk.write_blocks d 0 (Bytes.cat (block 'A') (block 'B'));
  Disk.plan_crash d ~after_blocks:1;
  (match Disk.zero_blocks d 0 2 with
  | () -> Alcotest.fail "zero past the countdown should crash"
  | exception Disk.Crashed -> ());
  (match Disk.zero_blocks d 5 1 with
  | () -> Alcotest.fail "crashed device must reject zeroing"
  | exception Disk.Crashed -> ());
  Disk.reboot d;
  Helpers.check_bytes "prefix zeroed" (block '\000') (Disk.read_block d 0);
  Helpers.check_bytes "suffix survives the torn zero" (block 'B')
    (Disk.read_block d 1)

let leaf_tag = function
  | Io_queue.Tag (_, tag) -> tag
  | _ -> Alcotest.fail "expected a leaf ticket"

(* In Queued mode the C-LOOK elevator services outstanding requests by
   ascending address from the head — not in submission order — and
   wraps to the lowest address when nothing lies ahead. *)
let test_elevator_clook_order () =
  let d = Disk.create wren in
  let now = ref 0.0 in
  Disk.set_mode d (Io_queue.Queued (fun () -> !now));
  let t100 = leaf_tag (fst (Disk.submit_read d 100 1)) in
  let t10 = leaf_tag (fst (Disk.submit_read d 10 1)) in
  let t50 = leaf_tag (fst (Disk.submit_read d 50 1)) in
  Alcotest.(check int) "three outstanding" 3 (Disk.queue_depth d);
  Alcotest.(check int) "watermark saw all three" 3
    (Disk.stats d).Io_stats.max_queue_depth;
  now := 1e9;
  let order = ref [] in
  (* The engine's completion ticks in miniature: collect each committed
     service and advance the clock to its finish so the elevator may
     commit its next pick. *)
  let rec go () =
    match Disk.pump d ~now:!now with
    | [] -> ()
    | started ->
        order := !order @ List.map fst started;
        List.iter (fun (_, fin) -> if fin > !now then now := fin) started;
        go ()
  in
  go ();
  Alcotest.(check (list int)) "ascending from a cold head" [ t10; t50; t100 ]
    !order;
  (* Head now sits past block 100: 200 is ahead, 5 forces the wrap. *)
  let t5 = leaf_tag (fst (Disk.submit_read d 5 1)) in
  let t200 = leaf_tag (fst (Disk.submit_read d 200 1)) in
  order := [];
  go ();
  Alcotest.(check (list int)) "sweep on, then wrap" [ t200; t5 ] !order;
  Alcotest.(check bool) "later arrivals waited" true
    ((Disk.stats d).Io_stats.queue_wait_s > 0.0)

(* The synchronous API is submit-then-await: in Direct mode both spell
   the same data, the same timings, and zero queue wait. *)
let test_direct_sync_equals_submit_await () =
  let d1 = Disk.create wren and d2 = Disk.create wren in
  Disk.write_blocks d1 7 (block 'q');
  let b1 = Disk.read_blocks d1 7 1 in
  ignore (Disk.submit_write d2 7 (block 'q'));
  let tk, b2 = Disk.submit_read d2 7 1 in
  ignore (Io_queue.await tk);
  Helpers.check_bytes "same data" b1 b2;
  Alcotest.(check (float 1e-12)) "same busy time"
    (Disk.stats d1).Io_stats.busy_s (Disk.stats d2).Io_stats.busy_s;
  Alcotest.(check (float 0.0)) "no queue wait in direct" 0.0
    (Disk.stats d2).Io_stats.queue_wait_s;
  Alcotest.(check int) "nothing left outstanding" 0 (Disk.queue_depth d2)

(* A drain is the fsync barrier: it services everything outstanding and
   returns the completion horizon, while the data plane already ran at
   submit time. *)
let test_queued_drain_barrier () =
  let d = Disk.create wren in
  let now = ref 0.0 in
  Disk.set_mode d (Io_queue.Queued (fun () -> !now));
  ignore (Disk.submit_write d 3 (block 'd'));
  ignore (Disk.submit_write d 9 (block 'e'));
  Alcotest.(check int) "both queued" 2 (Disk.queue_depth d);
  let fin = Disk.drain d in
  Alcotest.(check int) "nothing outstanding after the barrier" 0
    (Disk.queue_depth d);
  Alcotest.(check (float 1e-12)) "barrier time is the device busy time"
    (Disk.stats d).Io_stats.busy_s fin;
  Helpers.check_bytes "contents landed at submit" (block 'd')
    (snd (Disk.submit_read d 3 1));
  ignore (Disk.drain d)

(* Satellite: the vdev layer validates read results against
   n * block_size, so a misbehaving compositor fails at the boundary
   instead of corrupting its caller. *)
let test_vdev_read_length_validated () =
  let d = Vdev.of_disk (Disk.create wren) in
  let short =
    { d with Vdev.read_blocks = (fun _ n -> Bytes.create ((n * 4096) - 1)) }
  in
  (match Vdev.read_blocks short 0 2 with
  | _ -> Alcotest.fail "short read must be rejected"
  | exception Invalid_argument _ -> ());
  let long =
    {
      d with
      Vdev.submit_read =
        (fun ?now:_ _ n -> (Io_queue.Done, Bytes.create ((n * 4096) + 1)));
    }
  in
  match Vdev.submit_read long 0 1 with
  | _ -> Alcotest.fail "oversized read must be rejected"
  | exception Invalid_argument _ -> ()

let suite =
  ( "disk",
    [
      Alcotest.test_case "read back" `Quick test_read_back;
      Alcotest.test_case "multi block" `Quick test_multi_block;
      Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
      Alcotest.test_case "partial block rejected" `Quick test_write_partial_block_rejected;
      Alcotest.test_case "sequential cheaper" `Quick test_sequential_cheaper_than_random;
      Alcotest.test_case "batching cheaper" `Quick test_one_big_write_cheaper_than_many;
      Alcotest.test_case "stats counts" `Quick test_stats_counts;
      Alcotest.test_case "stats diff" `Quick test_stats_diff;
      Alcotest.test_case "crash tears write" `Quick test_crash_tears_write;
      Alcotest.test_case "crash blocks io" `Quick test_crash_blocks_io_until_reboot;
      Alcotest.test_case "cancel crash" `Quick test_cancel_crash;
      Alcotest.test_case "snapshot restore" `Quick test_snapshot_restore;
      Alcotest.test_case "snapshot independent" `Quick test_snapshot_independent;
      Alcotest.test_case "save/load file" `Quick test_save_load_file;
      Alcotest.test_case "seek time monotone" `Quick test_seek_time_monotone;
      Alcotest.test_case "io time model" `Quick test_geometry_io_time;
      Alcotest.test_case "cache hit free" `Quick test_cache_hit_costs_nothing;
      Alcotest.test_case "cache LRU eviction" `Quick test_cache_eviction_lru;
      Alcotest.test_case "cache put/invalidate" `Quick test_cache_put_and_invalidate;
      Alcotest.test_case "cache returns copies" `Quick test_cache_returns_copies;
      Alcotest.test_case "cache zero capacity" `Quick test_cache_zero_capacity;
      Alcotest.test_case "cache clear resets counters" `Quick test_cache_clear_resets_counters;
      Alcotest.test_case "range read coalesces" `Quick test_cache_read_range_coalesces;
      Alcotest.test_case "range read partial overlap" `Quick test_cache_read_range_partial_overlap;
      Alcotest.test_case "vdev cache range reads" `Quick test_vdev_cache_range_reads;
      Alcotest.test_case "geometry presets" `Quick test_geometry_presets;
      Alcotest.test_case "geometry capacity" `Quick test_geometry_capacity;
      Alcotest.test_case "random seek averages" `Quick test_random_seek_averages_avg;
      Alcotest.test_case "zero blocks is a write" `Quick test_zero_blocks_is_a_write;
      Alcotest.test_case "zero blocks respects crash" `Quick test_zero_blocks_respects_crash;
      Alcotest.test_case "elevator C-LOOK order" `Quick test_elevator_clook_order;
      Alcotest.test_case "direct sync = submit+await" `Quick test_direct_sync_equals_submit_await;
      Alcotest.test_case "queued drain barrier" `Quick test_queued_drain_barrier;
      Alcotest.test_case "vdev read length validated" `Quick test_vdev_read_length_validated;
    ] )
