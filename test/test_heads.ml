(* Multi-head log: observational equivalence across head counts,
   checkpoint/recovery with divergent head positions, and crash sweeps
   whose cut points land inside each head's summary chain. *)

module Fs = Lfs_core.Fs
module Fs_stats = Lfs_core.Fs_stats
module Config = Lfs_core.Config
module Checkpoint = Lfs_core.Checkpoint
module Superblock = Lfs_core.Superblock
module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Geometry = Lfs_disk.Geometry
module Crashtest = Lfs_crashtest.Crashtest
module Subject = Lfs_model.Subject
module Refine = Lfs_model.Refine
module Opgen = Lfs_model.Opgen
module Fsops = Lfs_workload.Fsops

let heads_config heads = { Helpers.test_config with Config.log_heads = heads }

let fresh ?(blocks = 1024) heads =
  let dev = Vdev.of_disk (Disk.create (Geometry.instant ~blocks)) in
  Fs.format dev (heads_config heads);
  (dev, Fs.mount dev)

(* ------------------------------------------------------------------ *)
(* QCheck: the head count is invisible to the namespace                *)
(* ------------------------------------------------------------------ *)

(* Writes are big enough that a sequence plus the churn epilogue laps
   the 32-segment disk, so the cleaner runs and its survivors travel
   through the cold head(s) on the multi-head instances. *)
type op =
  | Write of int * int * int  (* file index, size, content tag *)
  | Append of int * int
  | Delete of int
  | Read of int
  | Clean
  | Sync

let nfiles = 8
let name i = Printf.sprintf "/f%d" i

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map3
            (fun f s t -> Write (f, s, t))
            (int_bound (nfiles - 1))
            (int_range 4_096 80_000) (int_bound 25) );
        (2, map2 (fun f s -> Append (f, s)) (int_bound (nfiles - 1)) (int_range 1 8_000));
        (2, map (fun f -> Delete f) (int_bound (nfiles - 1)));
        (2, map (fun f -> Read f) (int_bound (nfiles - 1)));
        (1, return Clean);
        (1, return Sync);
      ])

let print_op = function
  | Write (f, s, t) -> Printf.sprintf "Write(f%d,%d,#%d)" f s t
  | Append (f, s) -> Printf.sprintf "Append(f%d,%d)" f s
  | Delete f -> Printf.sprintf "Delete(f%d)" f
  | Read f -> Printf.sprintf "Read(f%d)" f
  | Clean -> "Clean"
  | Sync -> "Sync"

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    ~shrink:QCheck.Shrink.list
    QCheck.Gen.(list_size (int_range 10 50) op_gen)

(* One op applied to one instance, summarised as a normalized
   observation string (content digests, not inos — inos may differ once
   cleaning reorders allocations). *)
let apply fs = function
  | Write (f, size, tag) ->
      Fs.write_path fs (name f) (Bytes.make size (Char.chr (65 + (tag mod 26))));
      Printf.sprintf "wrote %d" size
  | Append (f, size) -> (
      match Fs.resolve fs (name f) with
      | None -> "absent"
      | Some ino ->
          let off = Fs.file_size fs ino in
          Fs.write fs ino ~off (Bytes.make size 'z');
          Printf.sprintf "appended at %d" off)
  | Delete f -> (
      match Fs.resolve fs (name f) with
      | None -> "absent"
      | Some _ ->
          Fs.unlink fs ~dir:Fs.root (String.sub (name f) 1 (String.length (name f) - 1));
          "unlinked")
  | Read f -> (
      match Fs.read_path fs (name f) with
      | None -> "absent"
      | Some b -> Digest.to_hex (Digest.bytes b))
  | Clean ->
      Fs.clean fs;
      "cleaned"
  | Sync ->
      Fs.sync fs;
      "synced"

(* Deterministic overwrite churn, identical on every instance: enough
   traffic to lap the log so the cleaner must relocate survivors. *)
let churn fs =
  for k = 1 to 24 do
    Fs.write_path fs "/churn" (Bytes.make 40_960 (Char.chr (97 + (k mod 26))));
    if k mod 6 = 0 then Fs.clean fs
  done;
  Fs.sync fs

let namespace fs =
  let files =
    List.map
      (fun i ->
        match Fs.read_path fs (name i) with
        | None -> name i ^ ":absent"
        | Some b -> name i ^ ":" ^ Digest.to_hex (Digest.bytes b))
      (List.init nfiles (fun i -> i))
  in
  let root =
    List.sort String.compare (List.map fst (Fs.readdir fs Fs.root))
  in
  String.concat ";" files ^ "|" ^ String.concat "," root

let prop_heads_equivalent =
  QCheck.Test.make ~count:20
    ~name:"heads=1, heads=2 and heads=4 produce identical namespaces"
    arb_ops
    (fun ops ->
      match List.map (fun h -> snd (fresh h)) [ 1; 2; 4 ] with
      | [ fs1; fs2; fs4 ] ->
          List.for_all
            (fun op ->
              let a = apply fs1 op and b = apply fs2 op and c = apply fs4 op in
              if String.equal a b && String.equal b c then true
              else
                QCheck.Test.fail_reportf "%s: heads=1 %S heads=2 %S heads=4 %S"
                  (print_op op) a b c)
            ops
          &&
          (List.iter churn [ fs1; fs2; fs4 ];
           List.iter Helpers.fsck_clean [ fs1; fs2; fs4 ];
           let n1 = namespace fs1 and n2 = namespace fs2 and n4 = namespace fs4 in
           if String.equal n1 n2 && String.equal n2 n4 then true
           else
             QCheck.Test.fail_reportf "final namespaces differ:@\n1: %s@\n2: %s@\n4: %s"
               n1 n2 n4)
      | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Checkpoint / recovery with divergent head positions                 *)
(* ------------------------------------------------------------------ *)

let test_recover_divergent_heads () =
  let dev, fs = fresh ~blocks:1024 3 in
  let expected : (string, bytes) Hashtbl.t = Hashtbl.create 16 in
  let put path len tag =
    let data = Bytes.make len (Char.chr (97 + (tag mod 26))) in
    Fs.write_path fs path data;
    Hashtbl.replace expected path data
  in
  for i = 0 to 79 do
    put (name i) 16_384 i
  done;
  Fs.sync fs;
  (* Overwrite one file per step, rotating slower than the log laps the
     disk: victim segments then still hold live blocks, so the cleaner
     pushes survivors through the cold heads and the head positions
     genuinely diverge. *)
  let steps = ref 0 in
  while Fs_stats.blocks_written_cleaner (Fs.stats fs) = 0 && !steps < 600 do
    incr steps;
    put (name (!steps * 7 mod 80)) 16_384 !steps;
    if !steps mod 10 = 0 then Fs.clean fs
  done;
  Alcotest.(check bool) "cleaner relocated survivors" true
    (Fs_stats.blocks_written_cleaner (Fs.stats fs) > 0);
  Fs.checkpoint fs;
  let layout = (Superblock.load dev).Superblock.layout in
  let _, ck = Option.get (Checkpoint.read_latest layout dev) in
  let segs =
    Array.to_list (Array.map (fun h -> h.Checkpoint.cur_seg) ck.Checkpoint.heads)
  in
  Alcotest.(check int) "checkpoint records three heads" 3 (List.length segs);
  Alcotest.(check bool) "head positions diverged" true
    (List.length (List.sort_uniq compare segs) >= 2);
  (* Post-checkpoint traffic sits in the roll-forward window. *)
  put "/late" 8_192 7;
  Fs.sync fs;
  let fs2, _report = Fs.recover dev in
  Helpers.fsck_clean fs2;
  Hashtbl.iter
    (fun path data ->
      Helpers.check_bytes path data (Option.get (Fs.read_path fs2 path)))
    expected

(* ------------------------------------------------------------------ *)
(* Crash sweeps with cuts inside each head's chain                     *)
(* ------------------------------------------------------------------ *)

(* Heavy overwrite churn on a small disk: one file rewritten per step,
   rotating over more files than one log lap covers, so victim segments
   still hold live blocks.  The cleaner then relocates survivors and the
   device-write tape contains both heads' chains — the strided sweep
   cuts inside each. *)
let churn_workload ~files ~steps ~bytes =
  {
    Crashtest.wname = Printf.sprintf "churn(files=%d,steps=%d)" files steps;
    run =
      (fun fsops ->
        let path i = Printf.sprintf "/c%d" i in
        for k = 1 to steps do
          let p = path (k * 7 mod files) in
          let ino =
            match fsops.Fsops.resolve p with
            | Some ino -> ino
            | None -> fsops.Fsops.create_path p
          in
          fsops.Fsops.write ino ~off:0
            (Bytes.make bytes (Char.chr (97 + (k mod 26))));
          if k mod 20 = 0 then fsops.Fsops.sync ()
        done;
        fsops.Fsops.sync ());
  }

(* The same traffic on a plain heads=2 instance must drive the cold
   head: this pins down that the sweep below really enumerates cut
   points inside a second chain, not just head 0's. *)
let test_churn_reaches_cold_head () =
  let dev = Vdev.of_disk (Disk.create (Geometry.instant ~blocks:1024)) in
  Fs.format dev { Subject.lfs_config with Config.log_heads = 2 };
  let fs = Fs.mount dev in
  let w = churn_workload ~files:160 ~steps:500 ~bytes:16_384 in
  w.Crashtest.run (Fsops.of_lfs fs);
  Alcotest.(check bool) "survivors flowed through the cold head" true
    (Fs_stats.blocks_written_cleaner (Fs.stats fs) > 0)

let check_clean report =
  if not (Crashtest.is_clean report) then
    Alcotest.failf "crashtest not clean:@\n%a" Crashtest.pp_report report

let test_crashtest_heads_chain_cuts () =
  let report =
    Crashtest.run_heads ~heads:2 ~stride:89 ~seed:3
      (churn_workload ~files:160 ~steps:500 ~bytes:16_384)
  in
  Alcotest.(check bool) "has crash points" true (report.Crashtest.total_blocks > 0);
  check_clean report

(* Script workloads with deletes and appends over the 3-head subject. *)
let test_crashtest_three_heads_script () =
  check_clean
    (Crashtest.run_heads ~heads:3 ~stride:7 ~seed:11 (Crashtest.script ~seed:11 ()))

(* Model-based refinement: every strided crash point of a generated
   sequence recovers to a state the model allows, on the 2-head
   subject. *)
module RH2 = Refine.Make (Subject.Lfs_heads (struct
  let heads = 2
end))

let test_refinement_heads2 () =
  let r =
    RH2.check_ops ~io_depth:4 ~stride:11 ~seed:5 ~seq:1
      (Opgen.sequence ~seed:5 ~seq:1 ~nops:30)
  in
  if not (Refine.seq_clean r) then
    Alcotest.failf "refinement not clean:@\n%a" Refine.pp_seq_report r

let suite =
  ( "heads",
    [
      QCheck_alcotest.to_alcotest prop_heads_equivalent;
      Alcotest.test_case "recover with divergent head positions" `Quick
        test_recover_divergent_heads;
      Alcotest.test_case "churn drives the cold head" `Quick
        test_churn_reaches_cold_head;
      Alcotest.test_case "crash sweep cuts inside both chains" `Quick
        test_crashtest_heads_chain_cuts;
      Alcotest.test_case "crash sweep, three heads, script workload" `Quick
        test_crashtest_three_heads_script;
      Alcotest.test_case "refinement sweep on lfs:heads=2" `Quick
        test_refinement_heads2;
    ] )
