(* Tests for the model-based crash refinement checker (lib/model): the
   pure model's semantics, the oracle's judgement, replay determinism,
   QCheck-driven random sequences with shrinking, proof that the checker
   rejects a subject without crash consistency, and fsck completeness
   against injected corruption the structural checks cannot see. *)

module M = Lfs_model.Fs_model
module Subject = Lfs_model.Subject
module Opgen = Lfs_model.Opgen
module Refine = Lfs_model.Refine
module Fs = Lfs_core.Fs
module Fsck = Lfs_core.Fsck
module Layout = Lfs_core.Layout
module Filemap = Lfs_core.Filemap
module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Vdev_fault = Lfs_disk.Vdev_fault
module Geometry = Lfs_disk.Geometry
module RL = Refine.Make (Subject.Lfs)
module RF = Refine.Make (Subject.Ffs)

let check_clean r =
  if not (Refine.seq_clean r) then
    Alcotest.failf "refinement not clean:@\n%a" Refine.pp_seq_report r

(* ------------------------------------------------------------------ *)
(* The pure model's transition semantics                               *)
(* ------------------------------------------------------------------ *)

let ok st op =
  match M.step st op with
  | Ok (st', _) -> st'
  | Error m -> Alcotest.failf "%s refused: %s" (M.op_to_string op) m

let refused st op =
  match M.step st op with
  | Ok _ -> Alcotest.failf "%s accepted" (M.op_to_string op)
  | Error _ -> ()

let test_step_semantics () =
  let st = M.empty in
  let st = ok st (M.Mkdir "/d") in
  refused st (M.Mkdir "/d");
  (* no implicit ancestor creation *)
  refused st (M.Create "/missing/f");
  let st = ok st (M.Create "/d/f") in
  refused st (M.Create "/d/f");
  (* truncate extends with zeros *)
  let st = ok st (M.Write { path = "/d/f"; off = 0; data = Bytes.make 3 'a' }) in
  let st = ok st (M.Truncate { path = "/d/f"; len = 5 }) in
  (match M.files st with
  | [ (p, c) ] ->
      Alcotest.(check string) "path" "/d/f" p;
      Alcotest.(check string) "zero-extended" "aaa\000\000" (Bytes.to_string c)
  | fs -> Alcotest.failf "expected one file, got %d" (List.length fs));
  (* directory renames refused; non-empty rmdir refused *)
  refused st (M.Rename { src = "/d"; dst = "/e" });
  refused st (M.Rmdir "/d");
  refused st (M.Rmdir "/");
  let st = ok st (M.Remove "/d/f") in
  let st = ok st (M.Rmdir "/d") in
  Alcotest.(check int) "empty again" 0 (List.length (M.files st))

(* ------------------------------------------------------------------ *)
(* The oracle's judgement on hand-built recovered states               *)
(* ------------------------------------------------------------------ *)

let tbl kvs =
  let t = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) kvs;
  t

let dirset ps = tbl (List.map (fun p -> (p, ())) ps)

let b s = Bytes.of_string s

let test_oracle_flags_durable_loss () =
  (* /f written and synced; a recovered state without it diverges. *)
  let events = [ (1, M.Efile ("/f", Some (b "abc"))) ] in
  let divs =
    M.check ~bs:4 ~events ~durable:1 ~upto:2 ~files:(tbl []) ~dirs:(dirset [ "" ])
  in
  Alcotest.(check bool) "flagged" true (divs <> []);
  (* the same state is fine while /f is still in the in-flight window *)
  let divs =
    M.check ~bs:4 ~events ~durable:0 ~upto:2 ~files:(tbl []) ~dirs:(dirset [ "" ])
  in
  Alcotest.(check (list string)) "window absence ok" [] divs

let test_oracle_flags_foreign_content () =
  let events =
    [ (1, M.Efile ("/f", Some (b "aaaa"))); (2, M.Efile ("/f", Some (b "bbbb"))) ]
  in
  let clean =
    M.check ~bs:2 ~events ~durable:1 ~upto:2
      ~files:(tbl [ ("/f", b "aabb") ]) (* block-mix of the two versions *)
      ~dirs:(dirset [ "" ])
  in
  Alcotest.(check (list string)) "mixed blocks ok" [] clean;
  let divs =
    M.check ~bs:2 ~events ~durable:1 ~upto:2
      ~files:(tbl [ ("/f", b "zzzz") ])
      ~dirs:(dirset [ "" ])
  in
  Alcotest.(check bool) "foreign content flagged" true (divs <> []);
  let divs =
    M.check ~bs:2 ~events ~durable:1 ~upto:2
      ~files:(tbl [ ("/g", b "aaaa") ])
      ~dirs:(dirset [ "" ])
  in
  Alcotest.(check bool) "never-written path flagged" true (divs <> [])

let test_oracle_rename_rollback () =
  (* rename in the window: the dirent can persist while the moved
     inode's data rolls back to content it held under the old name. *)
  let events =
    [
      (1, M.Efile ("/src", Some (b "old!")));
      (2, M.Efile ("/src", Some (b "new!")));
      (3, M.Erename { src = "/src"; dst = "/dst" });
      (3, M.Efile ("/dst", Some (b "new!")));
      (3, M.Efile ("/src", None));
    ]
  in
  let ok files =
    M.check ~bs:4 ~events ~durable:1 ~upto:3 ~files ~dirs:(dirset [ "" ])
  in
  Alcotest.(check (list string)) "pre-rename version under new name ok" []
    (ok (tbl [ ("/dst", b "old!") ]));
  Alcotest.(check (list string)) "latest version under new name ok" []
    (ok (tbl [ ("/dst", b "new!") ]));
  Alcotest.(check bool) "foreign content still flagged" true
    (ok (tbl [ ("/dst", b "!!!!") ]) <> [])

(* ------------------------------------------------------------------ *)
(* Refinement runs: determinism and random sequences                   *)
(* ------------------------------------------------------------------ *)

(* A (seed, seq, cut) triple must replay bit-identically: same crash
   mode, same divergences (none here), same report. *)
let test_replay_deterministic () =
  let ops = Opgen.sequence ~seed:7 ~seq:3 ~nops:40 in
  let run () = RL.check_ops ~io_depth:4 ~cuts:[ 9; 17 ] ~seed:7 ~seq:3 ops in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "two runs identical" true (r1 = r2);
  Alcotest.(check bool) "probed at least one cut" true (r1.Refine.points > 0);
  Alcotest.(check int) "every probed cut crashed" r1.Refine.points
    r1.Refine.crashes;
  check_clean r1

(* Random sequences from the CLI generator at strided crash points. *)
let test_generated_sequences () =
  for seq = 0 to 2 do
    let ops = Opgen.sequence ~seed:13 ~seq ~nops:40 in
    check_clean (RL.check_ops ~io_depth:4 ~stride:7 ~seed:13 ~seq ops)
  done

(* QCheck: arbitrary op sequences must refine the model at every probed
   crash point.  On failure QCheck's list shrinker drops ops to report
   a minimal counterexample sequence. *)
let op_gen =
  QCheck.Gen.(
    let file = oneofl [ "/f0"; "/f1"; "/d0/f0"; "/d0/f1" ] in
    let dir = oneofl [ "/d0"; "/d1" ] in
    frequency
      [
        (2, map (fun p -> M.Create p) file);
        (2, map (fun p -> M.Mkdir p) dir);
        ( 4,
          map3
            (fun p off (len, ch) ->
              M.Write { path = p; off; data = Bytes.make len ch })
            file (int_bound 3_000)
            (pair (int_range 1 5_000) (char_range 'a' 'z')) );
        ( 2,
          map2 (fun p len -> M.Truncate { path = p; len }) file (int_bound 5_000)
        );
        (1, map2 (fun s d -> M.Rename { src = s; dst = d }) file file);
        (2, map (fun p -> M.Remove p) file);
        (1, map (fun p -> M.Rmdir p) dir);
        (2, return M.Sync);
      ])

let prop_random_sequences =
  QCheck.Test.make ~count:12 ~name:"random op sequence refines the model"
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map M.op_to_string ops))
       ~shrink:QCheck.Shrink.list
       QCheck.Gen.(list_size (int_range 1 30) op_gen))
    (fun ops ->
      Refine.seq_clean (RL.check_ops ~io_depth:4 ~stride:11 ~seed:3 ops))

(* The checker must reject a subject without crash consistency: FFS
   writes metadata in place and has no recovery protocol, so random
   sequences diverge.  (If this ever passes cleanly the checker has
   gone vacuous — exactly what it guards against.) *)
let test_checker_rejects_ffs () =
  let divergent = ref 0 in
  for seq = 0 to 2 do
    let ops = Opgen.sequence ~seed:2 ~seq ~nops:60 in
    let r = RF.check_ops ~io_depth:1 ~stride:4 ~seed:2 ~seq ops in
    if not (Refine.seq_clean r) then incr divergent
  done;
  Alcotest.(check bool) "ffs diverges" true (!divergent > 0)

(* ------------------------------------------------------------------ *)
(* Group-commit durability frontier (regression)                       *)
(* ------------------------------------------------------------------ *)

(* The frontier must advance when a sync's IO *completes*, not when ops
   are accepted.  Verifying with the recorder's frontier is clean at
   every crash point; pretending every op executed before the crash was
   durable must flag a divergence at some point — if it never does, the
   distinction has stopped being load-bearing and an "acked but not yet
   synced to disk" bug could slip through. *)
let test_frontier_is_sync_completion () =
  let ops = Opgen.sequence ~seed:1 ~seq:2 ~nops:40 in
  let reference = RL.run_once ~blocks:1024 ~seed:1 ~io_depth:4 ops in
  let bs = (List.hd reference.RL.devs).Vdev.block_size in
  let naive_flagged = ref false in
  let cut = ref (reference.RL.total - 1) in
  while (not !naive_flagged) && !cut >= 0 do
    let mode = RL.mode_for ~seed:1 !cut in
    let correct =
      RL.run_once ~blocks:1024 ~seed:1 ~io_depth:4 ~cut:!cut ~mode ops
    in
    if correct.RL.crashed then begin
      (match
         RL.verify ~bs ~events:correct.RL.events ~durable:correct.RL.durable
           ~upto:correct.RL.upto ~fault:correct.RL.fault ~devs:correct.RL.devs
       with
      | None -> ()
      | Some (stage, detail) ->
          Alcotest.failf "cut %d not clean with true frontier: %s %s" !cut
            stage detail);
      let naive =
        RL.run_once ~blocks:1024 ~seed:1 ~io_depth:4 ~cut:!cut ~mode ops
      in
      match
        RL.verify ~bs ~events:naive.RL.events ~durable:naive.RL.upto
          ~upto:naive.RL.upto ~fault:naive.RL.fault ~devs:naive.RL.devs
      with
      | Some ("oracle", _) -> naive_flagged := true
      | _ -> ()
    end;
    decr cut
  done;
  Alcotest.(check bool) "acked-but-unsynced ops are not durable" true
    !naive_flagged

(* ------------------------------------------------------------------ *)
(* Commit-order crash countdown under queued submission (regression)   *)
(* ------------------------------------------------------------------ *)

(* Under Queued mode the fault countdown must tick as the elevator
   commits blocks, not as the client submits them: a crash point then
   cuts the durable prefix in commit order, which is what recovery sees
   on real hardware.  Submit three single-block writes with a 2-block
   countdown armed — nothing fires at submission; the drain commits two
   blocks and then cuts the power. *)
let test_queued_countdown_commit_order () =
  let lower = Vdev.of_disk (Disk.create (Geometry.instant ~blocks:64)) in
  let fault = Vdev_fault.create ~seed:0 lower in
  let dev = Vdev_fault.vdev fault in
  let bs = dev.Vdev.block_size in
  let now = ref 0.0 in
  Vdev.set_mode dev (Vdev.Queued (fun () -> !now));
  Vdev_fault.plan_crash fault ~mode:Vdev_fault.Dropped ~after_blocks:2 ();
  let payload c = Bytes.make bs c in
  Vdev.write_blocks dev 10 (payload 'a');
  Vdev.write_blocks dev 11 (payload 'b');
  Vdev.write_blocks dev 12 (payload 'c');
  (* all three submissions were accepted without firing the cut *)
  Alcotest.(check int) "countdown counts commits, not submissions" 3
    (Vdev_fault.blocks_written fault);
  (match Vdev.drain dev with
  | _ -> Alcotest.fail "drain must hit the armed crash"
  | exception Vdev.Crashed -> ());
  Vdev_fault.reboot fault;
  Vdev.set_mode dev Vdev.Direct;
  let survived =
    List.filter
      (fun addr -> Bytes.get (Vdev.read_block dev addr) 0 <> '\000')
      [ 10; 11; 12 ]
  in
  Alcotest.(check (list int)) "commit-order prefix survived" [ 10; 11 ]
    survived

(* ------------------------------------------------------------------ *)
(* Fsck completeness: corruption the structural checks cannot see      *)
(* ------------------------------------------------------------------ *)

(* A small LFS with one multi-block file; returns the fs, its device
   and the address of a live data block. *)
let fs_with_live_block () =
  let dev = Vdev.of_disk (Disk.create (Geometry.instant ~blocks:1024)) in
  Fs.format dev Subject.lfs_config;
  let fs = Fs.mount dev in
  let ino = Fs.create fs ~dir:Fs.root "f" in
  Fs.write fs ino ~off:0 (Bytes.make 10_000 'x');
  Fs.sync fs;
  let addr = ref (-1) in
  Fs.with_handle fs ino (fun _ fmap ->
      Filemap.iter_mapped fmap (fun _ a -> if !addr < 0 then addr := a));
  Alcotest.(check bool) "found a live data block" true (!addr >= 0);
  (fs, dev, !addr)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let assert_flags what needle report =
  if not (List.exists (fun e -> contains e needle) report.Fsck.errors) then
    Alcotest.failf "%s not flagged; errors: [%s]" what
      (String.concat "; " report.Fsck.errors)

let test_fsck_clean_baseline () =
  let fs, _, _ = fs_with_live_block () in
  let r = Fsck.check fs in
  Alcotest.(check (list string)) "clean" [] r.Fsck.errors

let test_fsck_flags_bitrot () =
  let fs, dev, addr = fs_with_live_block () in
  (* flip one byte of a live data block behind the filesystem's back *)
  let blk = Vdev.read_block dev addr in
  Bytes.set blk 100 (if Bytes.get blk 100 = 'x' then 'y' else 'x');
  Vdev.write_block dev addr blk;
  assert_flags "bit rot" "payload checksum" (Fsck.check fs)

let test_fsck_flags_truncated_chain () =
  let fs, dev, addr = fs_with_live_block () in
  (* smash the summary block at the head of the live block's segment:
     the chain no longer reaches the live blocks behind it *)
  let layout = Fs.layout fs in
  let seg = Layout.seg_of_block layout addr in
  let first = Layout.seg_first_block layout seg in
  Vdev.write_block dev first (Bytes.make layout.Layout.block_size '\255');
  assert_flags "truncated chain" "not covered by any summary chain"
    (Fsck.check fs)

let suite =
  ( "model",
    [
      Alcotest.test_case "step semantics" `Quick test_step_semantics;
      Alcotest.test_case "oracle flags durable loss" `Quick
        test_oracle_flags_durable_loss;
      Alcotest.test_case "oracle flags foreign content" `Quick
        test_oracle_flags_foreign_content;
      Alcotest.test_case "oracle accepts rename rollback" `Quick
        test_oracle_rename_rollback;
      Alcotest.test_case "replay is deterministic" `Quick
        test_replay_deterministic;
      Alcotest.test_case "generated sequences refine" `Slow
        test_generated_sequences;
      QCheck_alcotest.to_alcotest ~long:true prop_random_sequences;
      Alcotest.test_case "checker rejects ffs" `Slow test_checker_rejects_ffs;
      Alcotest.test_case "frontier is sync completion" `Slow
        test_frontier_is_sync_completion;
      Alcotest.test_case "queued countdown in commit order" `Quick
        test_queued_countdown_commit_order;
      Alcotest.test_case "fsck baseline clean" `Quick test_fsck_clean_baseline;
      Alcotest.test_case "fsck flags bit rot" `Quick test_fsck_flags_bitrot;
      Alcotest.test_case "fsck flags truncated chain" `Quick
        test_fsck_flags_truncated_chain;
    ] )
