(* Shared fixtures for the test suite. *)

module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Geometry = Lfs_disk.Geometry
module Fs = Lfs_core.Fs
module Config = Lfs_core.Config
module Types = Lfs_core.Types
module Prng = Lfs_util.Prng

(* A small, fast geometry: zero-cost timing, 4 MB disk. *)
let test_geometry ?(blocks = 1024) () = Geometry.instant ~blocks

let test_config =
  {
    Config.default with
    max_inodes = 512;
    seg_blocks = 32;
    write_buffer_blocks = 16;
    clean_start = 3;
    clean_stop = 6;
    segs_per_pass = 3;
    cache_blocks = 128;
  }

let fresh_disk ?blocks () = Disk.create (test_geometry ?blocks ())

(* Tests keep the concrete [Disk.t] (for [snapshot] and [stats]) and
   hand the file system a [Vdev] view of it — routed through a
   [Vdev_trace] shim so the whole suite exercises crash and recovery
   semantics across a wrapped device stack. *)
let vdev disk = Lfs_disk.Vdev_trace.vdev (Lfs_disk.Vdev_trace.create (Vdev.of_disk disk))

(* Crash plumbing goes through the vdev view, not the raw disk: fault
   scheduling composes through wrapped device stacks instead of
   reaching under them. *)
let plan_crash disk ~after_blocks = Vdev.plan_crash (vdev disk) ~after_blocks
let reboot disk = Vdev.reboot (vdev disk)

let fresh_fs ?blocks ?(config = test_config) () =
  let disk = fresh_disk ?blocks () in
  Fs.format (vdev disk) config;
  (disk, Fs.mount (vdev disk))

let fsck_clean fs =
  let r = Lfs_core.Fsck.check fs in
  if not (Lfs_core.Fsck.is_clean r) then
    Alcotest.failf "fsck: %a" Lfs_core.Fsck.pp_report r

let bytes_of_pattern ~seed len =
  let prng = Prng.create ~seed in
  Bytes.init len (fun _ -> Char.chr (32 + Prng.int prng 95))

let check_bytes msg expected actual =
  Alcotest.(check string) msg (Bytes.to_string expected) (Bytes.to_string actual)

(* A random sequence of file-system operations over a bounded namespace,
   used by integration and property tests.  Returns a model of the
   expected live files: path -> contents. *)
let random_ops ?(files = 12) ?(dir_count = 3) ~ops fs prng =
  let model : (string, bytes) Hashtbl.t = Hashtbl.create 16 in
  let dirs = Array.init dir_count (fun d -> Printf.sprintf "/dir%d" d) in
  Array.iter (fun d -> ignore (Fs.mkdir_path fs d)) dirs;
  let random_path () =
    Printf.sprintf "%s/f%d" dirs.(Prng.int prng dir_count) (Prng.int prng files)
  in
  for _ = 1 to ops do
    let path = random_path () in
    match Prng.int prng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
        let data = bytes_of_pattern ~seed:(Prng.int prng 10000) (1 + Prng.int prng 60000) in
        Fs.write_path fs path data;
        Hashtbl.replace model path data
    | 5 ->
        (* Partial overwrite at a random offset. *)
        (match Fs.resolve fs path with
        | Some ino ->
            let size = Fs.file_size fs ino in
            let off = Prng.int prng (max 1 size) in
            let patch = bytes_of_pattern ~seed:(Prng.int prng 1000) (1 + Prng.int prng 5000) in
            Fs.write fs ino ~off patch;
            let old = Hashtbl.find model path in
            let newlen = max (Bytes.length old) (off + Bytes.length patch) in
            let merged = Bytes.make newlen '\000' in
            Bytes.blit old 0 merged 0 (Bytes.length old);
            Bytes.blit patch 0 merged off (Bytes.length patch);
            Hashtbl.replace model path merged
        | None -> ())
    | 6 ->
        (match Fs.resolve fs path with
        | Some ino ->
            let size = Fs.file_size fs ino in
            let len = Prng.int prng (size + 1) in
            Fs.truncate fs ino ~len;
            let old = Hashtbl.find model path in
            Hashtbl.replace model path (Bytes.sub old 0 len)
        | None -> ())
    | 7 ->
        (match Fs.resolve fs path with
        | Some _ ->
            let dir =
              Option.get (Fs.resolve fs (Filename.dirname path))
            in
            Fs.unlink fs ~dir (Filename.basename path);
            Hashtbl.remove model path
        | None -> ())
    | 8 ->
        (* Rename within / across directories. *)
        (match Fs.resolve fs path with
        | Some _ ->
            let dst = random_path () in
            if dst <> path then begin
              let odir = Option.get (Fs.resolve fs (Filename.dirname path)) in
              let ndir = Option.get (Fs.resolve fs (Filename.dirname dst)) in
              (match
                 Fs.rename fs ~odir (Filename.basename path) ~ndir
                   (Filename.basename dst)
               with
              | () ->
                  (match Hashtbl.find_opt model path with
                  | Some data ->
                      Hashtbl.remove model path;
                      Hashtbl.replace model dst data
                  | None -> ())
              | exception Types.Fs_error _ -> ())
            end
        | None -> ())
    | _ ->
        (match Fs.resolve fs path with
        | Some ino ->
            let size = Fs.file_size fs ino in
            ignore (Fs.read fs ino ~off:0 ~len:size)
        | None -> ())
  done;
  model

let check_model fs model =
  Hashtbl.iter
    (fun path data ->
      match Fs.resolve fs path with
      | None -> Alcotest.failf "model file %s missing" path
      | Some ino ->
          let actual = Fs.read fs ino ~off:0 ~len:(Fs.file_size fs ino) in
          if not (Bytes.equal actual data) then
            Alcotest.failf "contents of %s differ (len %d vs %d)" path
              (Bytes.length actual) (Bytes.length data))
    model
