(* Tests for the FFS baseline: same functional behaviour as LFS (so
   benchmarks compare like with like) plus its characteristic IO
   patterns (synchronous metadata, in-place updates). *)

module Ffs = Lfs_ffs.Ffs
module Bitmap = Lfs_ffs.Bitmap
module Disk = Lfs_disk.Disk
module Io_stats = Lfs_disk.Io_stats
module Types = Lfs_core.Types

let config =
  {
    Ffs.default_config with
    Ffs.cg_blocks = 256;
    inodes_per_cg = 128;
    write_buffer_blocks = 16;
    cache_blocks = 64;
  }

let fresh () =
  let disk = Disk.create (Lfs_disk.Geometry.instant ~blocks:1024) in
  Ffs.format (Helpers.vdev disk) config;
  (disk, Ffs.mount (Helpers.vdev disk))

(* ----- Bitmap ----- *)

let test_bitmap_basic () =
  let b = Bitmap.create ~bits:100 in
  Alcotest.(check bool) "initially clear" false (Bitmap.get b 50);
  Bitmap.set b 50;
  Alcotest.(check bool) "set" true (Bitmap.get b 50);
  Bitmap.clear b 50;
  Alcotest.(check bool) "cleared" false (Bitmap.get b 50);
  Alcotest.(check int) "popcount" 0 (Bitmap.popcount b)

let test_bitmap_find_free () =
  let b = Bitmap.create ~bits:10 in
  for i = 0 to 4 do
    Bitmap.set b i
  done;
  Alcotest.(check (option int)) "first free" (Some 5) (Bitmap.find_free_from b 0);
  Alcotest.(check (option int)) "from hint" (Some 8) (Bitmap.find_free_from b 8);
  Bitmap.set b 8;
  Bitmap.set b 9;
  Alcotest.(check (option int)) "wraps" (Some 5) (Bitmap.find_free_from b 8);
  Bitmap.clear b 8;
  Bitmap.clear b 9;
  for i = 5 to 9 do
    Bitmap.set b i
  done;
  Alcotest.(check (option int)) "full" None (Bitmap.find_free_from b 0)

let test_bitmap_roundtrip () =
  let b = Bitmap.create ~bits:64 in
  List.iter (Bitmap.set b) [ 0; 7; 8; 63 ];
  let b' = Bitmap.of_bytes (Bitmap.to_bytes b ~block_size:512) ~bits:64 in
  for i = 0 to 63 do
    Alcotest.(check bool) (Printf.sprintf "bit %d" i) (Bitmap.get b i) (Bitmap.get b' i)
  done

(* ----- Functional behaviour ----- *)

let test_write_read () =
  let _, fs = fresh () in
  let ino = Ffs.create fs ~dir:Ffs.root "f" in
  let data = Helpers.bytes_of_pattern ~seed:3 30_000 in
  Ffs.write fs ino ~off:0 data;
  Helpers.check_bytes "read back" data (Ffs.read fs ino ~off:0 ~len:30_000)

let test_directories () =
  let _, fs = fresh () in
  let d = Ffs.mkdir fs ~dir:Ffs.root "sub" in
  let f = Ffs.create fs ~dir:d "inner" in
  Alcotest.(check (option int)) "resolve" (Some f) (Ffs.resolve fs "/sub/inner");
  Alcotest.(check (list string)) "listing" [ "inner" ]
    (List.map fst (Ffs.readdir fs d))

let test_unlink_frees_space () =
  let _, fs = fresh () in
  let free0 = Ffs.free_blocks fs in
  let ino = Ffs.create fs ~dir:Ffs.root "f" in
  Ffs.write fs ino ~off:0 (Bytes.make 40_000 'x');
  Ffs.sync fs;
  Alcotest.(check bool) "space consumed" true (Ffs.free_blocks fs < free0);
  Ffs.unlink fs ~dir:Ffs.root "f";
  Alcotest.(check bool) "space mostly back" true (Ffs.free_blocks fs >= free0 - 2)

let test_persistence () =
  let disk, fs = fresh () in
  let data = Helpers.bytes_of_pattern ~seed:4 20_000 in
  ignore (Ffs.mkdir_path fs "/d");
  Ffs.write_path fs "/d/file" data;
  Ffs.sync fs;
  let fs2 = Ffs.mount (Helpers.vdev disk) in
  Helpers.check_bytes "after remount" data (Option.get (Ffs.read_path fs2 "/d/file"))

let test_truncate () =
  let _, fs = fresh () in
  let ino = Ffs.create fs ~dir:Ffs.root "t" in
  Ffs.write fs ino ~off:0 (Bytes.make 20_000 't');
  Ffs.truncate fs ino ~len:1000;
  Alcotest.(check int) "size" 1000 (Ffs.file_size fs ino);
  Alcotest.(check int) "read truncated" 1000
    (Bytes.length (Ffs.read fs ino ~off:0 ~len:20_000))

let test_inode_fixed_location () =
  (* FFS inodes persist at fixed locations: deleting and re-creating
     reuses the inode number from the same cylinder group. *)
  let _, fs = fresh () in
  let a = Ffs.create fs ~dir:Ffs.root "a" in
  Ffs.unlink fs ~dir:Ffs.root "a";
  let b = Ffs.create fs ~dir:Ffs.root "b" in
  Alcotest.(check int) "inode number reused" a b

let test_disk_full () =
  let _, fs = fresh () in
  (match
     for i = 0 to 50 do
       Ffs.write_path fs (Printf.sprintf "/f%d" i) (Bytes.make 200_000 'F')
     done
   with
  | () -> Alcotest.fail "should fill up"
  | exception Types.Fs_error _ -> ())

let test_out_of_inodes () =
  let _, fs = fresh () in
  match
    for i = 0 to 2000 do
      ignore (Ffs.create fs ~dir:Ffs.root (Printf.sprintf "f%d" i))
    done
  with
  | () -> Alcotest.fail "should run out of inodes"
  | exception Types.Fs_error _ -> ()

(* ----- IO-pattern characteristics ----- *)

let wren_fresh () =
  let disk = Disk.create (Lfs_disk.Geometry.wren_iv ~blocks:4096) in
  Ffs.format (Helpers.vdev disk) Ffs.{ config with cg_blocks = 512; inodes_per_cg = 256 };
  (disk, Ffs.mount (Helpers.vdev disk))

let test_create_is_synchronous () =
  let disk, fs = wren_fresh () in
  let before = Io_stats.copy (Disk.stats disk) in
  ignore (Ffs.create fs ~dir:Ffs.root "sync");
  let d = Io_stats.diff (Disk.stats disk) before in
  (* Paper, Section 2.3: at least the inode (twice), the directory data
     and the directory inode are written before create returns. *)
  Alcotest.(check bool) "several synchronous writes" true (d.Io_stats.writes >= 4)

let test_data_is_buffered () =
  let disk, fs = wren_fresh () in
  let ino = Ffs.create fs ~dir:Ffs.root "buf" in
  let before = Io_stats.copy (Disk.stats disk) in
  Ffs.write fs ino ~off:0 (Bytes.make 4096 'b');
  let d = Io_stats.diff (Disk.stats disk) before in
  Alcotest.(check int) "no data write yet" 0 d.Io_stats.writes;
  Ffs.sync fs;
  let d = Io_stats.diff (Disk.stats disk) before in
  Alcotest.(check bool) "written at sync" true (d.Io_stats.writes > 0)

let test_random_writes_in_place () =
  let disk, fs = wren_fresh () in
  let ino = Ffs.create fs ~dir:Ffs.root "rw" in
  Ffs.write fs ino ~off:0 (Bytes.make (64 * 4096) 'i');
  Ffs.sync fs;
  let free_before = Ffs.free_blocks fs in
  (* Overwrite every block; in-place updates allocate nothing new. *)
  for i = 0 to 63 do
    Ffs.write fs ino ~off:(i * 4096) (Bytes.make 4096 'j')
  done;
  Ffs.sync fs;
  Alcotest.(check int) "no new allocation" free_before (Ffs.free_blocks fs);
  ignore disk

let test_sequential_allocation_contiguous () =
  let disk, fs = wren_fresh () in
  let ino = Ffs.create fs ~dir:Ffs.root "seq" in
  Ffs.write fs ino ~off:0 (Bytes.make (32 * 4096) 's');
  Ffs.sync fs;
  Ffs.drop_caches fs;
  (* Sequential read of a sequentially written file: few seeks. *)
  let before = Io_stats.copy (Disk.stats disk) in
  ignore (Ffs.read fs ino ~off:0 ~len:(32 * 4096));
  let d = Io_stats.diff (Disk.stats disk) before in
  Alcotest.(check bool) "mostly contiguous" true (d.Io_stats.seeks <= 4)

let test_clustering_coalesces_ios () =
  let mk cluster_writes =
    let disk = Disk.create (Lfs_disk.Geometry.wren_iv ~blocks:4096) in
    Ffs.format (Helpers.vdev disk)
      { config with Ffs.cg_blocks = 512; inodes_per_cg = 256; cluster_writes };
    (disk, Ffs.mount (Helpers.vdev disk))
  in
  let run (disk, fs) =
    let ino = Ffs.create fs ~dir:Ffs.root "big" in
    let before = Io_stats.copy (Disk.stats disk) in
    Ffs.write fs ino ~off:0 (Bytes.make (64 * 4096) 'c');
    Ffs.sync fs;
    let d = Io_stats.diff (Disk.stats disk) before in
    (d.Io_stats.writes, d.Io_stats.busy_s)
  in
  let ios_plain, time_plain = run (mk false) in
  let ios_clustered, time_clustered = run (mk true) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer IOs (%d vs %d)" ios_clustered ios_plain)
    true
    (ios_clustered < ios_plain / 4);
  Alcotest.(check bool) "faster" true (time_clustered < time_plain);
  (* And the data is still correct. *)
  let disk, fs = mk true in
  let ino = Ffs.create fs ~dir:Ffs.root "check" in
  let data = Helpers.bytes_of_pattern ~seed:21 (40 * 4096) in
  Ffs.write fs ino ~off:0 data;
  Ffs.sync fs;
  Ffs.drop_caches fs;
  Helpers.check_bytes "clustered contents" data (Ffs.read fs ino ~off:0 ~len:(40 * 4096));
  ignore disk

let suite =
  ( "ffs",
    [
      Alcotest.test_case "bitmap basic" `Quick test_bitmap_basic;
      Alcotest.test_case "bitmap find free" `Quick test_bitmap_find_free;
      Alcotest.test_case "bitmap roundtrip" `Quick test_bitmap_roundtrip;
      Alcotest.test_case "write/read" `Quick test_write_read;
      Alcotest.test_case "directories" `Quick test_directories;
      Alcotest.test_case "unlink frees" `Quick test_unlink_frees_space;
      Alcotest.test_case "persistence" `Quick test_persistence;
      Alcotest.test_case "truncate" `Quick test_truncate;
      Alcotest.test_case "fixed inode locations" `Quick test_inode_fixed_location;
      Alcotest.test_case "disk full" `Quick test_disk_full;
      Alcotest.test_case "out of inodes" `Quick test_out_of_inodes;
      Alcotest.test_case "create synchronous" `Quick test_create_is_synchronous;
      Alcotest.test_case "data buffered" `Quick test_data_is_buffered;
      Alcotest.test_case "random writes in place" `Quick test_random_writes_in_place;
      Alcotest.test_case "sequential contiguous" `Quick test_sequential_allocation_contiguous;
      Alcotest.test_case "clustering coalesces" `Quick test_clustering_coalesces_ios;
    ] )
