(* Crash-recovery tests: roll-forward of data, inodes and directory
   operations; torn writes; crash injection at arbitrary points. *)

module Fs = Lfs_core.Fs
module Disk = Lfs_disk.Disk
module Types = Lfs_core.Types
module Prng = Lfs_util.Prng

let test_recover_nothing_to_do () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/f" (Bytes.of_string "data");
  Fs.checkpoint fs;
  let fs2, report = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check int) "nothing replayed" 0 report.Fs.writes_replayed;
  Helpers.check_bytes "file intact" (Bytes.of_string "data") (Option.get (Fs.read_path fs2 "/f"));
  Helpers.fsck_clean fs2

let test_recover_new_file () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.checkpoint fs;
  Fs.write_path fs "/post" (Bytes.of_string "after checkpoint");
  Fs.sync fs;
  let fs2, report = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check bool) "writes replayed" true (report.Fs.writes_replayed > 0);
  Alcotest.(check bool) "inodes recovered" true (report.Fs.inodes_recovered > 0);
  Helpers.check_bytes "file recovered" (Bytes.of_string "after checkpoint")
    (Option.get (Fs.read_path fs2 "/post"));
  Helpers.fsck_clean fs2

let test_recover_overwrite () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/f" (Bytes.make 9000 'o');
  Fs.checkpoint fs;
  Fs.write_path fs "/f" (Bytes.make 5000 'n');
  Fs.sync fs;
  let fs2, _ = Fs.recover (Helpers.vdev disk) in
  Helpers.check_bytes "newest version wins" (Bytes.make 5000 'n')
    (Option.get (Fs.read_path fs2 "/f"));
  Helpers.fsck_clean fs2

let test_recover_delete () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/doomed" (Bytes.make 8000 'd');
  Fs.checkpoint fs;
  Fs.unlink fs ~dir:Fs.root "doomed";
  Fs.sync fs;
  let fs2, report = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check bool) "dirop applied" true (report.Fs.dirops_applied > 0);
  Alcotest.(check (option int)) "file stays deleted" None (Fs.resolve fs2 "/doomed");
  Helpers.fsck_clean fs2

let test_recover_rename_atomic () =
  let disk, fs = Helpers.fresh_fs () in
  ignore (Fs.mkdir_path fs "/a");
  ignore (Fs.mkdir_path fs "/b");
  Fs.write_path fs "/a/f" (Bytes.of_string "payload");
  Fs.checkpoint fs;
  let a = Option.get (Fs.resolve fs "/a") in
  let b = Option.get (Fs.resolve fs "/b") in
  Fs.rename fs ~odir:a "f" ~ndir:b "f";
  Fs.sync fs;
  let fs2, _ = Fs.recover (Helpers.vdev disk) in
  let in_a = Fs.resolve fs2 "/a/f" <> None in
  let in_b = Fs.resolve fs2 "/b/f" <> None in
  Alcotest.(check bool) "exactly one location" true (in_a <> in_b);
  Alcotest.(check bool) "rename completed" true in_b;
  Helpers.fsck_clean fs2

let test_recover_link_counts () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/orig" (Bytes.of_string "x");
  Fs.checkpoint fs;
  let ino = Option.get (Fs.resolve fs "/orig") in
  Fs.link fs ~dir:Fs.root "alias" ino;
  Fs.sync fs;
  let fs2, _ = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check int) "nlink recovered" 2
    (Fs.stat fs2 (Option.get (Fs.resolve fs2 "/orig"))).Fs.st_nlink;
  Helpers.fsck_clean fs2

let test_torn_tail_ignored () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.write_path fs "/safe" (Bytes.of_string "safe");
  Fs.checkpoint fs;
  Fs.write_path fs "/torn" (Bytes.make 30_000 't');
  (* Tear the final log write a few blocks in. *)
  Helpers.plan_crash disk ~after_blocks:3;
  (match Fs.sync fs with () -> () | exception Disk.Crashed -> ());
  Helpers.reboot disk;
  let fs2, _ = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check bool) "safe file present" true (Fs.resolve fs2 "/safe" <> None);
  Helpers.fsck_clean fs2

let test_recovery_is_idempotent () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.checkpoint fs;
  Fs.write_path fs "/f" (Bytes.of_string "once");
  Fs.sync fs;
  let fs2, _ = Fs.recover (Helpers.vdev disk) in
  Helpers.fsck_clean fs2;
  (* Recover again from the new checkpoint: no-op, still consistent. *)
  let fs3, report = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check int) "second recovery replays nothing" 0 report.Fs.writes_replayed;
  Helpers.check_bytes "data still there" (Bytes.of_string "once")
    (Option.get (Fs.read_path fs3 "/f"));
  Helpers.fsck_clean fs3

let test_recover_multiple_checkpoint_cycles () =
  let disk, fs = Helpers.fresh_fs () in
  for round = 1 to 5 do
    Fs.write_path fs (Printf.sprintf "/r%d" round) (Bytes.make 4000 'r');
    Fs.checkpoint fs
  done;
  Fs.write_path fs "/tail" (Bytes.of_string "tail");
  Fs.sync fs;
  let fs2, _ = Fs.recover (Helpers.vdev disk) in
  for round = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "round %d present" round)
      true
      (Fs.resolve fs2 (Printf.sprintf "/r%d" round) <> None)
  done;
  Alcotest.(check bool) "tail recovered" true (Fs.resolve fs2 "/tail" <> None);
  Helpers.fsck_clean fs2

let test_recover_create_without_inode_drops_entry () =
  (* The paper's one uncompletable operation: a directory entry whose
     inode never reached the log is removed during roll-forward.  We
     build it by tearing the flush right after the dir-log block. *)
  let disk, fs = Helpers.fresh_fs () in
  Fs.checkpoint fs;
  ignore (Fs.create fs ~dir:Fs.root "phantom");
  Helpers.plan_crash disk ~after_blocks:2;  (* summary + dirlog, then power cut *)
  (match Fs.sync fs with () -> () | exception Disk.Crashed -> ());
  Helpers.reboot disk;
  let fs2, _ = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check (option int)) "phantom dropped" None (Fs.resolve fs2 "/phantom");
  Helpers.fsck_clean fs2

(* Exhaustive crash points over a fixed op sequence: cut power after
   every possible number of written blocks and verify recovery. *)
let test_crash_every_point () =
  let scenario disk =
    let fs = Fs.mount (Helpers.vdev disk) in
    Fs.write_path fs "/a" (Bytes.make 3000 'a');
    Fs.checkpoint fs;
    Fs.write_path fs "/b" (Bytes.make 12_000 'b');
    Fs.sync fs;
    ignore (Fs.mkdir_path fs "/d");
    Fs.write_path fs "/d/c" (Bytes.make 2000 'c');
    Fs.unlink fs ~dir:Fs.root "a";
    Fs.checkpoint fs
  in
  (* How many blocks does the whole scenario write? *)
  let probe = Helpers.fresh_disk () in
  Lfs_core.Fs.format (Helpers.vdev probe) Helpers.test_config;
  let base = (Disk.stats probe).Lfs_disk.Io_stats.blocks_written in
  scenario probe;
  let total = (Disk.stats probe).Lfs_disk.Io_stats.blocks_written - base in
  let failures = ref [] in
  for cut = 0 to total - 1 do
    let disk = Helpers.fresh_disk () in
    Lfs_core.Fs.format (Helpers.vdev disk) Helpers.test_config;
    Helpers.plan_crash disk ~after_blocks:cut;
    (match scenario disk with () -> () | exception Disk.Crashed -> ());
    Helpers.reboot disk;
    match Fs.recover (Helpers.vdev disk) with
    | fs2, _ ->
        let r = Lfs_core.Fsck.check fs2 in
        if not (Lfs_core.Fsck.is_clean r) then failures := cut :: !failures
    | exception e ->
        failures := cut :: !failures;
        ignore e
  done;
  if !failures <> [] then
    Alcotest.failf "crash points with broken recovery: %s"
      (String.concat ", " (List.map string_of_int (List.rev !failures)))

(* Crash injection while the segment cleaner is running: churn a small
   disk until cleaning must happen, then cut power at sampled points
   throughout and verify recovery every time.  This exercises the
   "cleaned segments only become reusable after a checkpoint" rule. *)
let test_crash_during_cleaning () =
  let scenario disk =
    let fs = Fs.mount (Helpers.vdev disk) in
    for i = 0 to 19 do
      Fs.write_path fs (Printf.sprintf "/f%d" i) (Bytes.make 50_000 'a')
    done;
    for round = 0 to 2 do
      for i = 0 to 19 do
        Fs.write_path fs
          (Printf.sprintf "/f%d" i)
          (Bytes.make 50_000 (Char.chr (98 + round)))
      done
    done;
    Fs.checkpoint fs;
    Lfs_core.Fs_stats.segments_cleaned (Fs.stats fs)
  in
  let probe = Helpers.fresh_disk ~blocks:1536 () in
  Lfs_core.Fs.format (Helpers.vdev probe) Helpers.test_config;
  let base = (Disk.stats probe).Lfs_disk.Io_stats.blocks_written in
  let cleaned = scenario probe in
  Alcotest.(check bool) "scenario forces cleaning" true (cleaned > 0);
  let total = (Disk.stats probe).Lfs_disk.Io_stats.blocks_written - base in
  let failures = ref [] in
  let cut = ref 1 in
  while !cut < total do
    let disk = Helpers.fresh_disk ~blocks:1536 () in
    Lfs_core.Fs.format (Helpers.vdev disk) Helpers.test_config;
    Helpers.plan_crash disk ~after_blocks:!cut;
    (match scenario disk with (_ : int) -> () | exception Disk.Crashed -> ());
    Helpers.reboot disk;
    (match Fs.recover (Helpers.vdev disk) with
    | fs2, _ ->
        if not (Lfs_core.Fsck.is_clean (Lfs_core.Fsck.check fs2)) then
          failures := !cut :: !failures
    | exception _ -> failures := !cut :: !failures);
    cut := !cut + 37  (* sample points coprime with block patterns *)
  done;
  if !failures <> [] then
    Alcotest.failf "broken recovery at cuts: %s"
      (String.concat ", " (List.map string_of_int (List.rev !failures)))

(* Randomised crash torture, as in the development smoke tests. *)
let test_crash_torture ~seed () =
  let prng = Prng.create ~seed in
  let disk, fs0 = Helpers.fresh_fs ~blocks:2048 () in
  let fs = ref fs0 in
  let crash_after = 100 + Prng.int prng 3000 in
  Helpers.plan_crash disk ~after_blocks:crash_after;
  (try
     for i = 0 to 1500 do
       let name = Printf.sprintf "f%d" (Prng.int prng 30) in
       try
         match Prng.int prng 8 with
         | 0 | 1 | 2 | 3 ->
             Fs.write_path !fs ("/" ^ name)
               (Bytes.make (256 + Prng.int prng 40_000) (Char.chr (65 + (i mod 26))))
         | 4 ->
             (match Fs.resolve !fs ("/" ^ name) with
             | Some _ -> Fs.unlink !fs ~dir:Fs.root name
             | None -> ())
         | 5 -> Fs.sync !fs
         | 6 -> Fs.checkpoint !fs
         | _ ->
             (match Fs.resolve !fs ("/" ^ name) with
             | Some ino -> ignore (Fs.read !fs ino ~off:0 ~len:4096)
             | None -> ())
       with Types.Fs_error _ -> ()
     done;
     raise Disk.Crashed
   with Disk.Crashed -> ());
  Helpers.reboot disk;
  let fs2, _ = Fs.recover (Helpers.vdev disk) in
  Helpers.fsck_clean fs2

let test_recovery_report_counts () =
  let disk, fs = Helpers.fresh_fs () in
  Fs.checkpoint fs;
  for i = 0 to 9 do
    Fs.write_path fs (Printf.sprintf "/n%d" i) (Bytes.make 2000 'n')
  done;
  Fs.sync fs;
  let _, report = Fs.recover (Helpers.vdev disk) in
  Alcotest.(check bool) "10 files + root recovered" true
    (report.Fs.inodes_recovered >= 10);
  Alcotest.(check bool) "dirops for each create" true (report.Fs.dirops_applied >= 10);
  Alcotest.(check bool) "data blocks seen" true (report.Fs.data_blocks_recovered >= 10)

let suite =
  ( "recovery",
    [
      Alcotest.test_case "nothing to do" `Quick test_recover_nothing_to_do;
      Alcotest.test_case "new file" `Quick test_recover_new_file;
      Alcotest.test_case "overwrite" `Quick test_recover_overwrite;
      Alcotest.test_case "delete" `Quick test_recover_delete;
      Alcotest.test_case "rename atomic" `Quick test_recover_rename_atomic;
      Alcotest.test_case "link counts" `Quick test_recover_link_counts;
      Alcotest.test_case "torn tail" `Quick test_torn_tail_ignored;
      Alcotest.test_case "idempotent" `Quick test_recovery_is_idempotent;
      Alcotest.test_case "multiple cycles" `Quick test_recover_multiple_checkpoint_cycles;
      Alcotest.test_case "phantom create dropped" `Quick
        test_recover_create_without_inode_drops_entry;
      Alcotest.test_case "crash at every block" `Slow test_crash_every_point;
      Alcotest.test_case "crash during cleaning" `Slow test_crash_during_cleaning;
      Alcotest.test_case "crash torture (seed 41)" `Quick (test_crash_torture ~seed:41);
      Alcotest.test_case "crash torture (seed 42)" `Quick (test_crash_torture ~seed:42);
      Alcotest.test_case "crash torture (seed 43)" `Quick (test_crash_torture ~seed:43);
      Alcotest.test_case "crash torture (seed 44)" `Quick (test_crash_torture ~seed:44);
      Alcotest.test_case "report counts" `Quick test_recovery_report_counts;
    ] )
