(* Tests for the tiered block device (lib/disk/vdev_tier) and its FS
   integration: geometry planning, placement-map persistence, migration
   semantics, crash-mid-migration sweeps at device level, tiered-vs-flat
   data equivalence (device and FS level), and the demotion/promotion
   policies. *)

module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Vdev_tier = Lfs_disk.Vdev_tier
module Geometry = Lfs_disk.Geometry
module Fs = Lfs_core.Fs
module Config = Lfs_core.Config
module Layout = Lfs_core.Layout
module Spec = Lfs_shard.Spec

let mk_child blocks = Vdev.of_disk (Disk.create (Geometry.instant ~blocks))

(* The worked geometry used throughout: 1024-block children, 32-block
   chunks, 3 pinned blocks.  One map region block, two regions, so the
   fast child holds 3 metadata blocks + 3 pinned + 31 chunks; the slow
   child 32 chunks; two physical chunks float as the free pool. *)
let mk_tier () =
  let fast = mk_child 1024 and slow = mk_child 1024 in
  (fast, slow, Vdev_tier.format ~base:3 ~chunk_blocks:32 ~fast ~slow)

let test_plan_geometry () =
  let fast = mk_child 1024 and slow = mk_child 1024 in
  let p = Vdev_tier.plan ~base:3 ~chunk_blocks:32 ~fast ~slow in
  Alcotest.(check int) "base" 3 p.Vdev_tier.p_base;
  Alcotest.(check int) "fast chunks" 31 p.Vdev_tier.p_fast_chunks;
  Alcotest.(check int) "slow chunks" 32 p.Vdev_tier.p_slow_chunks;
  Alcotest.(check int) "logical chunks" 61 p.Vdev_tier.p_nchunks;
  Alcotest.(check int) "exported blocks" (3 + (61 * 32)) p.Vdev_tier.p_nblocks;
  (* Children too small for a chunk plus the free pool are rejected. *)
  (match Vdev_tier.plan ~base:0 ~chunk_blocks:512 ~fast ~slow with
  | _ -> Alcotest.fail "undersized children accepted"
  | exception Invalid_argument _ -> ())

let test_format_load_roundtrip () =
  let fast, slow, ti = mk_tier () in
  let dev = Vdev_tier.vdev ti in
  let bs = Vdev.block_size dev in
  let total = Vdev_tier.exported_blocks ti in
  Alcotest.(check int) "fast placement" 30
    (Vdev_tier.count_chunks ti ~tier:Vdev_tier.Fast);
  Alcotest.(check int) "slow placement" 31
    (Vdev_tier.count_chunks ti ~tier:Vdev_tier.Slow);
  Alcotest.(check int) "one free fast" 1
    (Vdev_tier.free_chunks ti ~tier:Vdev_tier.Fast);
  Alcotest.(check int) "one free slow" 1
    (Vdev_tier.free_chunks ti ~tier:Vdev_tier.Slow);
  let image = Helpers.bytes_of_pattern ~seed:3 (total * bs) in
  Vdev.write_blocks dev 0 image;
  Alcotest.(check (list string)) "verify clean" [] (Vdev_tier.verify ti);
  let ti2 = Vdev_tier.load ~fast ~slow in
  let dev2 = Vdev_tier.vdev ti2 in
  Helpers.check_bytes "bytes survive reload" image (Vdev.read_blocks dev2 0 total);
  for c = 0 to Vdev_tier.nchunks ti - 1 do
    if Vdev_tier.chunk_tier ti c <> Vdev_tier.chunk_tier ti2 c then
      Alcotest.failf "chunk %d placed differently after reload" c
  done

let test_migrate_semantics () =
  let _, _, ti = mk_tier () in
  let dev = Vdev_tier.vdev ti in
  let bs = Vdev.block_size dev in
  let total = Vdev_tier.exported_blocks ti in
  let image = Helpers.bytes_of_pattern ~seed:7 (total * bs) in
  Vdev.write_blocks dev 0 image;
  (* Demote chunk 0 (fast), promote the last chunk (slow). *)
  Alcotest.(check bool) "demote succeeds" true
    (Vdev_tier.migrate ti ~chunk:0 ~target:Vdev_tier.Slow);
  Alcotest.(check bool) "now on slow" true
    (Vdev_tier.chunk_tier ti 0 = Vdev_tier.Slow);
  let last = Vdev_tier.nchunks ti - 1 in
  Alcotest.(check bool) "promote succeeds" true
    (Vdev_tier.migrate ti ~chunk:last ~target:Vdev_tier.Fast);
  Alcotest.(check bool) "now on fast" true
    (Vdev_tier.chunk_tier ti last = Vdev_tier.Fast);
  Alcotest.(check int) "one demotion" 1 (Vdev_tier.demotions ti);
  Alcotest.(check int) "one promotion" 1 (Vdev_tier.promotions ti);
  (* Already on target: success without a copy. *)
  Alcotest.(check bool) "idempotent" true
    (Vdev_tier.migrate ti ~chunk:0 ~target:Vdev_tier.Slow);
  Alcotest.(check int) "no extra demotion" 1 (Vdev_tier.demotions ti);
  (* Exhaust the slow free pool: the next demotion reports no capacity. *)
  let rec drain c =
    if Vdev_tier.free_chunks ti ~tier:Vdev_tier.Slow > 0 then begin
      ignore (Vdev_tier.migrate ti ~chunk:c ~target:Vdev_tier.Slow);
      drain (c + 1)
    end
  in
  drain 1;
  let fast_chunk =
    let rec find c =
      if Vdev_tier.chunk_tier ti c = Vdev_tier.Fast then c else find (c + 1)
    in
    find 0
  in
  Alcotest.(check bool) "no free slow chunk" false
    (Vdev_tier.migrate ti ~chunk:fast_chunk ~target:Vdev_tier.Slow);
  (* Rehome flips placement without copying. *)
  let slow_chunk =
    let rec find c =
      if Vdev_tier.chunk_tier ti c = Vdev_tier.Slow then c else find (c + 1)
    in
    find 0
  in
  Alcotest.(check bool) "rehome succeeds" true
    (Vdev_tier.rehome ti ~chunk:slow_chunk ~target:Vdev_tier.Fast);
  Alcotest.(check bool) "rehomed to fast" true
    (Vdev_tier.chunk_tier ti slow_chunk = Vdev_tier.Fast);
  (* Data equality after all the shuffling (the rehomed chunk is exempt:
     its contents are declared dead by contract). *)
  Alcotest.(check (list string)) "verify clean" [] (Vdev_tier.verify ti);
  let got = Vdev.read_blocks dev 0 total in
  let cb = Vdev_tier.chunk_blocks ti * bs in
  let base = Vdev_tier.base ti * bs in
  Bytes.blit image (base + (slow_chunk * cb)) got (base + (slow_chunk * cb)) cb;
  Helpers.check_bytes "bytes survive migrations" image got

(* Swap exchanges the physical chunks of a live chunk and a dead one in
   a single map write, without touching the free pools. *)
let test_swap_semantics () =
  let _, _, ti = mk_tier () in
  let dev = Vdev_tier.vdev ti in
  let bs = Vdev.block_size dev in
  let total = Vdev_tier.exported_blocks ti in
  let image = Helpers.bytes_of_pattern ~seed:11 (total * bs) in
  Vdev.write_blocks dev 0 image;
  let last = Vdev_tier.nchunks ti - 1 in
  (* chunk 0 starts fast, the last chunk slow: a demotion-by-swap. *)
  Alcotest.(check bool) "swap succeeds" true
    (Vdev_tier.swap ti ~chunk:0 ~dead:last);
  Alcotest.(check bool) "chunk now slow" true
    (Vdev_tier.chunk_tier ti 0 = Vdev_tier.Slow);
  Alcotest.(check bool) "donor now fast" true
    (Vdev_tier.chunk_tier ti last = Vdev_tier.Fast);
  Alcotest.(check int) "counted as demotion" 1 (Vdev_tier.demotions ti);
  (* Free pools are untouched: swap scales past them by design. *)
  Alcotest.(check int) "free fast unchanged" 1
    (Vdev_tier.free_chunks ti ~tier:Vdev_tier.Fast);
  Alcotest.(check int) "free slow unchanged" 1
    (Vdev_tier.free_chunks ti ~tier:Vdev_tier.Slow);
  (* Chunks 1 and 2 both sit on fast: nothing to exchange. *)
  Alcotest.(check bool) "same-tier swap refused" false
    (Vdev_tier.swap ti ~chunk:1 ~dead:2);
  Alcotest.(check int) "no extra demotion" 1 (Vdev_tier.demotions ti);
  (match Vdev_tier.swap ti ~chunk:5 ~dead:5 with
  | _ -> Alcotest.fail "chunk = dead accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (list string)) "verify clean" [] (Vdev_tier.verify ti);
  (* The live chunk's bytes survive at its logical address; the donor's
     logical address holds stale bytes by contract. *)
  let got = Vdev.read_blocks dev 0 total in
  let cb = Vdev_tier.chunk_blocks ti * bs in
  let base = Vdev_tier.base ti * bs in
  Bytes.blit image (base + (last * cb)) got (base + (last * cb)) cb;
  Helpers.check_bytes "bytes survive swap" image got

(* Crash sweep over every block of a migration — copy, then map flip —
   with the power cut planned on either child.  Whatever the cut point,
   reboot + load must find a valid map whose chunks all read back the
   pre-migration bytes: the only copy is never lost. *)
let test_crash_mid_migration_sweep () =
  List.iter
    (fun (target, armed_name) ->
      for cut = 0 to 36 do
        let fast = mk_child 1024 and slow = mk_child 1024 in
        let ti = Vdev_tier.format ~base:3 ~chunk_blocks:32 ~fast ~slow in
        let dev = Vdev_tier.vdev ti in
        let bs = Vdev.block_size dev in
        let total = Vdev_tier.exported_blocks ti in
        let image = Helpers.bytes_of_pattern ~seed:9 (total * bs) in
        Vdev.write_blocks dev 0 image;
        let chunk =
          match target with
          | Vdev_tier.Slow -> 0 (* starts fast *)
          | Vdev_tier.Fast -> Vdev_tier.nchunks ti - 1 (* starts slow *)
        in
        let armed = if armed_name = "fast" then fast else slow in
        Vdev.plan_crash armed ~after_blocks:cut;
        (match Vdev_tier.migrate ti ~chunk ~target with
        | (_ : bool) -> ()
        | exception Vdev.Crashed -> ());
        Vdev.reboot armed;
        let ti2 = Vdev_tier.load ~fast ~slow in
        (match Vdev_tier.verify ti2 with
        | [] -> ()
        | errs ->
            Alcotest.failf "cut %d on %s (-> %s): %s" cut armed_name
              (Vdev_tier.tier_name target)
              (String.concat "; " errs));
        let got = Vdev.read_blocks (Vdev_tier.vdev ti2) 0 total in
        if not (Bytes.equal image got) then
          Alcotest.failf "cut %d on %s (-> %s): exported bytes changed"
            cut armed_name
            (Vdev_tier.tier_name target)
      done)
    [
      (Vdev_tier.Slow, "fast");
      (Vdev_tier.Slow, "slow");
      (Vdev_tier.Fast, "fast");
      (Vdev_tier.Fast, "slow");
    ]

(* The same sweep over a swap: the copy into the donor's physical chunk,
   then the single map write exchanging both entries.  After any cut the
   surviving map must read back the live chunk's bytes — the donor chunk
   is exempt (dead by contract). *)
let test_crash_mid_swap_sweep () =
  List.iter
    (fun armed_name ->
      for cut = 0 to 36 do
        let fast = mk_child 1024 and slow = mk_child 1024 in
        let ti = Vdev_tier.format ~base:3 ~chunk_blocks:32 ~fast ~slow in
        let dev = Vdev_tier.vdev ti in
        let bs = Vdev.block_size dev in
        let total = Vdev_tier.exported_blocks ti in
        let image = Helpers.bytes_of_pattern ~seed:13 (total * bs) in
        Vdev.write_blocks dev 0 image;
        let last = Vdev_tier.nchunks ti - 1 in
        let armed = if armed_name = "fast" then fast else slow in
        Vdev.plan_crash armed ~after_blocks:cut;
        (match Vdev_tier.swap ti ~chunk:0 ~dead:last with
        | (_ : bool) -> ()
        | exception Vdev.Crashed -> ());
        Vdev.reboot armed;
        let ti2 = Vdev_tier.load ~fast ~slow in
        (match Vdev_tier.verify ti2 with
        | [] -> ()
        | errs ->
            Alcotest.failf "swap cut %d on %s: %s" cut armed_name
              (String.concat "; " errs));
        let got = Vdev.read_blocks (Vdev_tier.vdev ti2) 0 total in
        let cb = Vdev_tier.chunk_blocks ti2 * bs in
        let base = Vdev_tier.base ti2 * bs in
        Bytes.blit image (base + (last * cb)) got (base + (last * cb)) cb;
        if not (Bytes.equal image got) then
          Alcotest.failf "swap cut %d on %s: live bytes changed" cut armed_name
      done)
    [ "fast"; "slow" ]

(* ----- Device-level tiered-vs-flat equivalence ----- *)

type tier_op =
  | T_write of int * int * int  (* addr, len, seed *)
  | T_migrate of int * bool  (* chunk, to fast *)

let tier_prop_total = 3 + (61 * 32)

let print_tier_op = function
  | T_write (a, l, s) -> Printf.sprintf "w@%d+%d#%d" a l s
  | T_migrate (c, f) -> Printf.sprintf "mig(c%d->%s)" c (if f then "fast" else "slow")

let arb_tier_prog =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 40)
        (frequency
           [
             ( 5,
               map2
                 (fun (addr, seed) len ->
                   T_write (min addr (tier_prop_total - len), len, seed))
                 (pair (int_bound (tier_prop_total - 1)) (int_bound 10_000))
                 (int_range 1 80) );
             ( 2,
               map2
                 (fun c f -> T_migrate (c, f))
                 (int_bound 60) bool );
           ]))
  in
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_tier_op ops))
    ~shrink:QCheck.Shrink.list gen

let prop_tier_matches_flat =
  QCheck.Test.make ~count:60
    ~name:"tiered vdev stores the same bytes as one flat disk" arb_tier_prog
    (fun ops ->
      let _, _, ti = mk_tier () in
      let tiered = Vdev_tier.vdev ti in
      let flat = mk_child tier_prop_total in
      let bs = Vdev.block_size tiered in
      List.iter
        (fun op ->
          match op with
          | T_write (addr, len, seed) ->
              let data = Helpers.bytes_of_pattern ~seed (len * bs) in
              Vdev.write_blocks tiered addr data;
              Vdev.write_blocks flat addr data
          | T_migrate (chunk, to_fast) ->
              let target = if to_fast then Vdev_tier.Fast else Vdev_tier.Slow in
              ignore (Vdev_tier.migrate ti ~chunk ~target))
        ops;
      Vdev_tier.verify ti = []
      && Bytes.equal
           (Vdev.read_blocks tiered 0 tier_prop_total)
           (Vdev.read_blocks flat 0 tier_prop_total))

(* ----- FS-level properties over a tiered volume ----- *)

let tier_fs_config ?(demote_age_s = 64.0) ?(promote_reads = 0)
    ?(cache_blocks = 128) () =
  { Helpers.test_config with Config.demote_age_s; promote_reads; cache_blocks }

let fresh_tier_fs ?(config = tier_fs_config ()) () =
  let fast = mk_child 768 and slow = mk_child 1536 in
  let ti = Spec.tier_volume ~config ~fast ~slow in
  let dev = Vdev_tier.vdev ti in
  Fs.format dev config;
  (fast, slow, ti, Fs.mount ~tier:ti dev)

let prop_tier_fs_matches_model =
  QCheck.Test.make ~count:30
    ~name:"tiered fs agrees with model under arbitrary ops" Test_props.arb_ops
    (fun ops ->
      let _, _, ti, fs = fresh_tier_fs () in
      let model = List.fold_left (Test_props.apply fs) [] ops in
      ignore (Fs.demote_step ~max_segments:4 fs);
      Test_props.check_against_model fs model
      && Lfs_core.Fsck.is_clean (Lfs_core.Fsck.check fs)
      && Vdev_tier.verify ti = [])

let prop_tier_remount_preserves =
  QCheck.Test.make ~count:20
    ~name:"tier reload + remount preserves arbitrary op results"
    Test_props.arb_ops
    (fun ops ->
      let fast, slow, _, fs = fresh_tier_fs () in
      let model = List.fold_left (Test_props.apply fs) [] ops in
      ignore (Fs.demote_step ~max_segments:4 fs);
      Fs.unmount fs;
      let ti2 = Vdev_tier.load ~fast ~slow in
      let fs2 = Fs.mount ~tier:ti2 (Vdev_tier.vdev ti2) in
      Test_props.check_against_model fs2 model)

(* ----- Policies: demotion moves cold data, promotion brings it back ----- *)

let test_demotion_and_promotion () =
  let config =
    tier_fs_config ~demote_age_s:2.0 ~promote_reads:2 ~cache_blocks:16 ()
  in
  let _, _, ti, fs = fresh_tier_fs ~config () in
  let layout = Fs.layout fs in
  for i = 0 to 19 do
    Fs.write_path fs (Printf.sprintf "/f%d" i) (Bytes.make 8192 'x')
  done;
  Fs.sync fs;
  (* Age the early segments: the clock ticks once per mutating op. *)
  for i = 0 to 19 do
    Fs.write_path fs (Printf.sprintf "/g%d" i) (Bytes.make 4096 'y')
  done;
  Fs.sync fs;
  let rec pump n = if n > 0 && Fs.demote_step fs > 0 then pump (n - 1) in
  pump 16;
  Alcotest.(check bool) "demotions happened" true (Vdev_tier.demotions ti > 0);
  Alcotest.(check bool) "live data sits on slow" true
    (Vdev_tier.count_chunks ti ~tier:Vdev_tier.Slow > 0);
  (* Find a live file block on a slow chunk and read it until the
     promotion threshold trips. *)
  let slow_victim = ref None in
  Fs.iter_files fs (fun ino inode ->
      if !slow_victim = None && inode.Lfs_core.Inode.ftype = Lfs_core.Types.Regular
      then
        Fs.with_handle fs ino (fun _inode fmap ->
            Lfs_core.Filemap.iter_mapped fmap (fun blockno addr ->
                if !slow_victim = None then begin
                  let seg = Layout.seg_of_block layout addr in
                  if
                    seg >= 0
                    && seg < Vdev_tier.nchunks ti
                    && Vdev_tier.chunk_tier ti seg = Vdev_tier.Slow
                  then slow_victim := Some (ino, blockno)
                end)));
  (match !slow_victim with
  | None -> Alcotest.fail "no file block landed on the slow tier"
  | Some (ino, blockno) ->
      let off = blockno * layout.Layout.block_size in
      for _ = 1 to 4 do
        ignore (Fs.read fs ino ~off ~len:layout.Layout.block_size)
      done;
      Alcotest.(check bool) "promotions happened" true
        (Vdev_tier.promotions ti > 0));
  Alcotest.(check bool) "fsck clean after migrations" true
    (Lfs_core.Fsck.is_clean (Lfs_core.Fsck.check fs))

(* ----- Harness regressions: the tier subject under both checkers ----- *)

module RT = Lfs_model.Refine.Make (Lfs_model.Subject.Tier)

let test_modelcheck_tier () =
  (* Crash points enumerated over the fast child, including the map
     writes of the demotion the subject runs before every sync. *)
  List.iter
    (fun seq ->
      let r = RT.check_seq ~blocks:1024 ~io_depth:2 ~stride:3 ~seed:0 ~nops:40 ~seq () in
      if not (Lfs_model.Refine.seq_clean r) then
        Alcotest.failf "tier refinement not clean:@\n%a"
          Lfs_model.Refine.pp_seq_report r)
    [ 0; 1 ]

let test_crashtest_tier () =
  let module C = Lfs_crashtest.Crashtest in
  let report = C.run_tier ~stride:5 ~seed:3 (C.script ~seed:3 ()) in
  Alcotest.(check bool) "has crash points" true (report.C.total_blocks > 0);
  if not (C.is_clean report) then
    Alcotest.failf "tier crashtest not clean:@\n%a" C.pp_report report

let suite =
  ( "tier",
    [
      Alcotest.test_case "plan geometry" `Quick test_plan_geometry;
      Alcotest.test_case "format/load roundtrip" `Quick test_format_load_roundtrip;
      Alcotest.test_case "migrate semantics" `Quick test_migrate_semantics;
      Alcotest.test_case "swap semantics" `Quick test_swap_semantics;
      Alcotest.test_case "crash mid-migration sweep" `Slow test_crash_mid_migration_sweep;
      Alcotest.test_case "crash mid-swap sweep" `Slow test_crash_mid_swap_sweep;
      QCheck_alcotest.to_alcotest prop_tier_matches_flat;
      QCheck_alcotest.to_alcotest prop_tier_fs_matches_model;
      QCheck_alcotest.to_alcotest prop_tier_remount_preserves;
      Alcotest.test_case "demotion and promotion" `Quick test_demotion_and_promotion;
      Alcotest.test_case "modelcheck tier subject" `Slow test_modelcheck_tier;
      Alcotest.test_case "crashtest tier subject" `Slow test_crashtest_tier;
    ] )
