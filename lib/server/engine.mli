(** The multi-client request-serving engine.

    Runs N client {!Lfs_workload.Session} streams against one mounted
    file system over the modelled clock, reproducing the shared file
    server of Section 5.1:

    - {e open-loop arrivals}: each client submits its next request an
      exponentially-distributed think time after the previous one was
      accepted (or shed), independent of completions — so offered load
      grows with the client count and the server genuinely saturates;
    - {e admission control}: a bounded waiting room
      ([queue_depth] requests across all clients, with each client
      capped at an equal share, [max 1 (queue_depth / clients)], so a
      hot session cannot buy up the whole queue).  On overload the
      configured {!policy} either {e sheds} the arrival (counted, never
      silent) or {e blocks} the client — a blocked client stalls its
      stream until both a global slot and its own share free, in
      arrival order;
    - {e fair dequeue}: the single server picks the next request
      round-robin across per-client FIFOs, so one hot session cannot
      starve the rest;
    - {e group commit}: on a log-structured backend
      ([Fsops.async_writes]), durable requests (create/write/delete) do
      not complete at service end — they join the open batch, which is
      flushed by one shared [sync] when the batch window expires or
      [max_batch] requests have joined.  The flush's modelled disk time
      is paid once and its completion stamps every member, so the
      per-op write cost falls as concurrency grows.  On a synchronous
      backend (FFS) each durable op pays its own disk time in service
      and completes immediately — the paper's contrast.

    Every request records a latency span (submit to completion, queueing
    and flush wait included) into per-class histograms of a fresh
    {!Lfs_obs.Metrics} registry, alongside batch-size and queue-depth
    instruments; the registry's JSON render is the deterministic
    artifact the CI check compares byte-for-byte across equal seeds. *)

module Cpu_model := Lfs_workload.Cpu_model
module Fsops := Lfs_workload.Fsops

type policy = Block | Shed

val policy_name : policy -> string
val policy_of_string : string -> policy option

type config = {
  clients : int;
  ops_per_client : int;
  seed : int;
  think_mean_s : float;  (** mean of the exponential think time *)
  queue_depth : int;  (** admission bound on waiting requests *)
  policy : policy;
  batch_window_s : float;  (** group-commit window from first join *)
  max_batch : int;  (** flush early at this many requests *)
  session_files : int;  (** per-client working-set size *)
  write_size : int;  (** max bytes of one write/read *)
  cpu : Cpu_model.t;
  bg_clean : bool;
      (** run budgeted {!Lfs_workload.Fsops.clean_step} passes in idle
          windows (empty queue, no flush due), paced by the FS's
          background watermarks and preempted by arrivals; no-op on
          backends without a cleaner *)
  io_depth : int;
      (** device requests kept in flight together.  [1] (the default)
          serves strictly serially over the Direct device mode,
          reproducing the historical timings exactly.  [> 1] switches
          the device stack to queued submission for the run: up to
          [io_depth] requests overlap their IO, the per-device C-LOOK
          elevator orders outstanding transfers, group-commit flushes
          become fsync barriers ({!Lfs_disk.Vdev.drain}), and idle-window
          cleaner passes overlap with foreground service. *)
}

val default : config
(** 4 clients x 200 ops, seed 42, 50 ms think, depth 64, Block,
    10 ms window, batch cap 32, Sun-4/260 CPU, io_depth 1. *)

type result = {
  fs_name : string;
  clients : int;
  completed : int;
  shed : int;
  errors : int;  (** requests whose FS op raised [Fs_error]; still completed *)
  elapsed_s : float;  (** modelled time of the last completion *)
  throughput_ops_s : float;
  disk_s : float;  (** modelled disk busy time during serving *)
  flushes : int;
  mean_batch : float;  (** requests per flush; [nan] when no flushes *)
  bg_clean_steps : int;  (** idle cleaner steps that did work *)
  max_queue_depth : int;
  per_client_completed : int array;
  per_client_shed : int array;
  metrics : Lfs_obs.Metrics.t;
      (** [server.*] instruments: per-class latency histograms
          ([server.latency.<class>.s], with p50/p95/p99 in the summary),
          [server.batch.requests], [server.log_batch.blocks] (from
          {!Lfs_core.Fs.on_log_batch}), [server.flush.busy_s],
          [server.queue.depth_at_admit], and end-of-run gauges
          (throughput, elapsed, disk seconds per op, ...). *)
}

val run : config -> Fsops.t -> result
(** Serve the configured load to completion: every generated request is
    either completed or shed ([completed + shed =
    clients * ops_per_client], checked internally), all batches are
    flushed, and the file system is synced.  Deterministic in
    [(config, fs)]. *)
