module Metrics = Lfs_obs.Metrics
module Io_stats = Lfs_disk.Io_stats
module Vdev = Lfs_disk.Vdev
module Prng = Lfs_util.Prng
module Types = Lfs_core.Types
module Session = Lfs_workload.Session
module Fsops = Lfs_workload.Fsops
module Cpu_model = Lfs_workload.Cpu_model

type policy = Block | Shed

let policy_name = function Block -> "block" | Shed -> "shed"

let policy_of_string = function
  | "block" -> Some Block
  | "shed" -> Some Shed
  | _ -> None

type config = {
  clients : int;
  ops_per_client : int;
  seed : int;
  think_mean_s : float;
  queue_depth : int;
  policy : policy;
  batch_window_s : float;
  max_batch : int;
  session_files : int;
  write_size : int;
  cpu : Cpu_model.t;
  bg_clean : bool;
      (* clean in idle windows, paced by the FS's background watermarks *)
  io_depth : int;
      (* device requests kept in flight; 1 = the serial-equivalent path *)
}

let default =
  {
    clients = 4;
    ops_per_client = 200;
    seed = 42;
    think_mean_s = 0.05;
    queue_depth = 64;
    policy = Block;
    batch_window_s = 0.01;
    max_batch = 32;
    session_files = 32;
    write_size = 8192;
    cpu = Cpu_model.sun4_260;
    bg_clean = false;
    io_depth = 1;
  }

type request = { client : int; op : Session.op; submit : float }

(* Queued-mode bookkeeping: the contiguous range of leaf tags a piece of
   work submitted on the single-threaded data plane.  The work's IO is
   finished once no tag in [lo, hi) is outstanding, at the latest of
   their service finish times. *)
type io_kind = Op of request | Bg | Flush of request list
type io_span = { lo : int; hi : int; cpu_s : float; started_s : float; kind : io_kind }

type result = {
  fs_name : string;
  clients : int;
  completed : int;
  shed : int;
  errors : int;
  elapsed_s : float;
  throughput_ops_s : float;
  disk_s : float;
  flushes : int;
  mean_batch : float;
  bg_clean_steps : int;
  max_queue_depth : int;
  per_client_completed : int array;
  per_client_shed : int array;
  metrics : Lfs_obs.Metrics.t;
}

let is_durable = function
  | Session.Create | Session.Write | Session.Delete -> true
  | Session.Read -> false

let run (cfg : config) (fs : Fsops.t) =
  if cfg.clients <= 0 then invalid_arg "Engine.run: clients must be positive";
  if cfg.ops_per_client < 0 then
    invalid_arg "Engine.run: ops_per_client must be non-negative";
  if cfg.queue_depth <= 0 then
    invalid_arg "Engine.run: queue_depth must be positive";
  if cfg.max_batch <= 0 then invalid_arg "Engine.run: max_batch must be positive";
  if not (cfg.batch_window_s >= 0.0) then
    invalid_arg "Engine.run: batch_window_s must be non-negative";
  if not (cfg.think_mean_s > 0.0) then
    invalid_arg "Engine.run: think_mean_s must be positive";
  if cfg.io_depth <= 0 then invalid_arg "Engine.run: io_depth must be positive";
  let sched = Sched.create () in
  let m = Metrics.create () in
  let lat_create = Metrics.histogram m "server.latency.create.s" in
  let lat_write = Metrics.histogram m "server.latency.write.s" in
  let lat_read = Metrics.histogram m "server.latency.read.s" in
  let lat_delete = Metrics.histogram m "server.latency.delete.s" in
  let lat_of = function
    | Session.Create -> lat_create
    | Session.Write -> lat_write
    | Session.Read -> lat_read
    | Session.Delete -> lat_delete
  in
  let completed_c = Metrics.counter m "server.completed" in
  let shed_c = Metrics.counter m "server.shed" in
  let errors_c = Metrics.counter m "server.errors" in
  let flushes_c = Metrics.counter m "server.flushes" in
  let batch_hist = Metrics.histogram ~lo:1.0 ~hi:1e4 m "server.batch.requests" in
  let log_batch_hist =
    Metrics.histogram ~lo:1.0 ~hi:1e6 m "server.log_batch.blocks"
  in
  let flush_hist = Metrics.histogram m "server.flush.busy_s" in
  let qdepth_hist =
    Metrics.histogram ~lo:1.0 ~hi:1e4 m "server.queue.depth_at_admit"
  in
  let qdepth_g = Metrics.gauge m "server.queue.depth" in
  let qmax_g = Metrics.gauge m "server.queue.depth_max" in
  let bg_steps_c = Metrics.counter m "server.bg_clean.steps" in
  let bg_busy_hist = Metrics.histogram m "server.bg_clean.busy_s" in

  (* Seeded substreams: one think-time PRNG per client, sessions keyed
     by (client, seed) — the whole run is a function of [cfg]. *)
  let master = Prng.create ~seed:cfg.seed in
  let think = Array.init cfg.clients (fun _ -> Prng.split master) in
  let sessions =
    Array.init cfg.clients (fun c ->
        Session.create ~client:c ~seed:cfg.seed ~files:cfg.session_files
          ~write_size:cfg.write_size ())
  in

  (* Setup outside the measured run: the per-client directories.  A
     pre-populated image (high-utilisation benchmarks) may already have
     them. *)
  let dir_ino =
    Array.map
      (fun s ->
        match fs.Fsops.resolve (Session.dir s) with
        | Some ino -> ino
        | None -> fs.Fsops.mkdir_path (Session.dir s))
      sessions
  in
  fs.Fsops.sync ();
  (match fs.Fsops.on_log_batch with
  | Some register ->
      register (fun ~blocks ->
          Metrics.observe log_batch_hist (float_of_int blocks))
  | None -> ());
  (* All device interaction goes over the full [devices] list so a
     sharded volume's per-shard vdevs pump, drain and account exactly
     like a single disk: busy time sums per spindle, IO tags are
     allocated from one global counter so a span's [lo, hi) range spans
     every device at once. *)
  let devs = fs.Fsops.devices in
  let io0 = Fsops.io_stats fs in
  let disk_busy () = (Fsops.io_stats fs).Io_stats.busy_s in

  (* io_depth > 1 switches the device stack to queued submission: sync
     calls submit without waiting, device completions become events on
     the shared clock, and up to [io_depth] requests keep their IO in
     flight together.  Depth 1 keeps the historical serial path (and its
     exact timings). *)
  let queued = cfg.io_depth > 1 in
  if queued then
    List.iter
      (fun d -> Vdev.set_mode d (Vdev.Queued (fun () -> Sched.now sched)))
      devs;

  let group_commit = fs.Fsops.async_writes in
  let block_size = Vdev.block_size (List.hd devs) in
  let blocks_of n = (n + block_size - 1) / block_size in

  (* Serving state.  All iteration is over arrays and FIFOs — no
     hash-table order anywhere near the event stream. *)
  (* Fair admission: the waiting room is bounded globally by
     [queue_depth] and per client by an equal share of it, so a hot
     session cannot buy up the whole queue and starve the rest —
     admission fairness is what makes the round-robin dequeue below
     effective under overload. *)
  let per_client_cap = max 1 (cfg.queue_depth / cfg.clients) in
  let queues = Array.init cfg.clients (fun _ -> Queue.create ()) in
  let queued_total = ref 0 in
  let blocked : request Queue.t = Queue.create () in
  let rr = ref 0 in
  let server_busy = ref false in
  let batch : request list ref = ref [] in
  let batch_n = ref 0 in
  let batch_epoch = ref 0 in
  let flush_due = ref false in
  let generated = Array.make cfg.clients 0 in
  let completed = Array.make cfg.clients 0 in
  let shed = Array.make cfg.clients 0 in
  let qmax = ref 0 in
  let flushes = ref 0 in
  let batched_reqs = ref 0 in
  let errors = ref 0 in
  let last_completion = ref 0.0 in
  let bg_steps = ref 0 in
  let bg_step = if cfg.bg_clean then fs.Fsops.clean_step else None in
  (* Queued-mode state: in-flight spans, per-tag finish times (recorded
     as the elevator commits each service), and the cleaner latch. *)
  let inflight : io_span list ref = ref [] in
  let inflight_n = ref 0 in
  let finish_of : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let bg_busy = ref false in
  let bg_last = ref neg_infinity in

  let complete req =
    let lat = Sched.now sched -. req.submit in
    Metrics.observe (lat_of req.op.Session.cls) lat;
    Metrics.incr completed_c;
    completed.(req.client) <- completed.(req.client) + 1;
    last_completion := Sched.now sched
  in
  (* Execute the FS op.  Streams are generated blind to FS state, so a
     read/delete may name a file that lost the race with its create —
     those resolve to cheap no-ops; [Fs_error] (e.g. disk full) is
     counted, never dropped on the floor.  Returns blocks moved, for the
     CPU cost model. *)
  let perform req =
    let op = req.op in
    try
      match op.Session.cls with
      | Session.Create ->
          (match fs.Fsops.resolve op.Session.path with
          | Some _ -> ()
          | None -> ignore (fs.Fsops.create_path op.Session.path));
          0
      | Session.Write ->
          let ino =
            match fs.Fsops.resolve op.Session.path with
            | Some ino -> ino
            | None -> fs.Fsops.create_path op.Session.path
          in
          let fill =
            Char.chr (Char.code 'a' + ((req.client + op.Session.size) mod 26))
          in
          fs.Fsops.write ino ~off:0 (Bytes.make op.Session.size fill);
          blocks_of op.Session.size
      | Session.Read -> (
          match fs.Fsops.resolve op.Session.path with
          | None -> 0
          | Some ino ->
              let len = min op.Session.size (fs.Fsops.file_size ino) in
              if len > 0 then ignore (fs.Fsops.read ino ~off:0 ~len);
              blocks_of len)
      | Session.Delete -> (
          match fs.Fsops.resolve op.Session.path with
          | None -> 0
          | Some _ ->
              fs.Fsops.unlink ~dir:dir_ino.(req.client) op.Session.name;
              0)
    with Types.Fs_error _ ->
      incr errors;
      Metrics.incr errors_c;
      0
  in
  let set_qdepth () = Metrics.set qdepth_g (float_of_int !queued_total) in

  let rec maybe_start () =
    if queued then maybe_start_queued ()
    else if not !server_busy then
      if !flush_due && !batch_n > 0 then start_flush ()
      else
        match pick_next () with
        | None -> maybe_bg_clean ()
        | Some req ->
            server_busy := true;
            admit_blocked ();
            let d0 = disk_busy () in
            let blocks = perform req in
            let disk_s = disk_busy () -. d0 in
            let cpu_s = Cpu_model.cost cfg.cpu ~ops:1 ~blocks in
            Sched.after sched (cpu_s +. disk_s) (fun () -> service_done req)
  (* Queued pipeline: a due flush starts immediately (it does not occupy
     a service slot), then the request slots are refilled up to
     [io_depth].  Each start runs the op's data plane instantly and
     brackets its leaf tags; the op finishes when its tag range drains. *)
  and maybe_start_queued () =
    if !flush_due && !batch_n > 0 then start_flush_queued ();
    start_requests ()
  and start_requests () =
    if !inflight_n < cfg.io_depth then
      match pick_next () with
      | None ->
          if !inflight_n = 0 && not !bg_busy then maybe_bg_clean_queued ()
      | Some req ->
          incr inflight_n;
          admit_blocked ();
          let lo = Vdev.next_tag () in
          let blocks = perform req in
          let hi = Vdev.next_tag () in
          let cpu_s = Cpu_model.cost cfg.cpu ~ops:1 ~blocks in
          if hi = lo then
            (* No device IO (cache hits, no-op resolves): CPU only. *)
            Sched.after sched cpu_s (fun () -> op_io_done req)
          else
            inflight :=
              !inflight
              @ [ { lo; hi; cpu_s; started_s = Sched.now sched; kind = Op req } ];
          device_progress ();
          start_requests ()
  (* Surface every service the elevator committed since the last call:
     record finish times, schedule a tick at each completion (the tick
     commits the next pick, making device completions first-class
     events), then settle any span whose tag range has drained. *)
  and device_progress () =
    let started =
      List.concat_map (fun d -> Vdev.pump d ~now:(Sched.now sched)) devs
    in
    List.iter
      (fun (tag, fin) ->
        Hashtbl.replace finish_of tag fin;
        Sched.at sched fin device_tick)
      started;
    check_inflight ()
  and device_tick () = device_progress ()
  and check_inflight () =
    let ready, rest =
      List.partition
        (fun sp ->
          List.for_all
            (fun d -> Vdev.outstanding_in d ~lo:sp.lo ~hi:sp.hi = 0)
            devs)
        !inflight
    in
    if ready <> [] then begin
      inflight := rest;
      List.iter
        (fun sp ->
          let fin = ref (Sched.now sched) in
          for tag = sp.lo to sp.hi - 1 do
            (match Hashtbl.find_opt finish_of tag with
            | Some f -> if f > !fin then fin := f
            | None -> ());
            Hashtbl.remove finish_of tag
          done;
          match sp.kind with
          | Op req -> Sched.at sched (!fin +. sp.cpu_s) (fun () -> op_io_done req)
          | Bg ->
              let fin = !fin in
              Sched.at sched fin (fun () -> bg_done sp.started_s fin)
          | Flush members ->
              let fin = !fin in
              Metrics.observe flush_hist (Float.max 0.0 (fin -. sp.started_s));
              Sched.at sched fin (fun () ->
                  List.iter complete members;
                  maybe_start ()))
        ready
    end
  and op_io_done req =
    decr inflight_n;
    finish_op req;
    maybe_start ()
  (* Idle window with nothing in flight: run one budgeted cleaner step.
     Its reads and the log writer's writes share the elevator, so victim
     read-in overlaps write-out, and foreground arrivals keep starting
     while it runs.  At most one step per modelled instant, so a
     zero-cost geometry cannot spin the clock in place. *)
  and maybe_bg_clean_queued () =
    match bg_step with
    | None -> ()
    | Some step ->
        if Sched.now sched > !bg_last then begin
          let lo = Vdev.next_tag () in
          let (_ : int) = step ~max_segments:1 in
          let hi = Vdev.next_tag () in
          if hi > lo then begin
            bg_last := Sched.now sched;
            incr bg_steps;
            Metrics.incr bg_steps_c;
            bg_busy := true;
            inflight :=
              !inflight
              @ [ { lo; hi; cpu_s = 0.0; started_s = Sched.now sched; kind = Bg } ];
            device_progress ()
          end
        end
  and bg_done started_s fin =
    bg_busy := false;
    Metrics.observe bg_busy_hist (Float.max 0.0 (fin -. started_s));
    maybe_start ()
  and start_flush_queued () =
    flush_due := false;
    incr batch_epoch;
    let members = List.rev !batch in
    let n = !batch_n in
    batch := [];
    batch_n := 0;
    incr flushes;
    batched_reqs := !batched_reqs + n;
    Metrics.incr flushes_c;
    Metrics.observe batch_hist (float_of_int n);
    (* The shared sync is the fsync barrier for the batch's own log
       writes (and any cleaning it triggered) — bracket its tags and
       complete the members when exactly that IO has drained.  Other
       requests' in-flight reads are not part of the barrier. *)
    let t0 = Sched.now sched in
    let lo = Vdev.next_tag () in
    fs.Fsops.sync ();
    let hi = Vdev.next_tag () in
    if hi = lo then begin
      (* Everything durable already reached the device (pressure-flushed
         earlier): the batch completes on the spot. *)
      Metrics.observe flush_hist 0.0;
      List.iter complete members
    end
    else begin
      inflight :=
        !inflight @ [ { lo; hi; cpu_s = 0.0; started_s = t0; kind = Flush members } ];
      device_progress ()
    end
  (* Idle window: no runnable request and no flush due.  Run one
     budgeted cleaner step on the modelled clock — the FS's watermark
     hysteresis decides whether there is anything to do.  The step
     itself is synchronous; its disk time occupies the server, so
     requests arriving meanwhile queue up and preempt further steps
     (the next step only runs if the queue is empty again). *)
  and maybe_bg_clean () =
    match bg_step with
    | None -> ()
    | Some step ->
        let d0 = disk_busy () in
        let (_ : int) = step ~max_segments:1 in
        let disk_s = disk_busy () -. d0 in
        if disk_s > 0.0 then begin
          incr bg_steps;
          Metrics.incr bg_steps_c;
          Metrics.observe bg_busy_hist disk_s;
          server_busy := true;
          Sched.after sched disk_s (fun () ->
              server_busy := false;
              maybe_start ())
        end
  (* Round-robin across per-client FIFOs from the cursor: each dequeue
     hands the next turn to the following client, so a hot session gets
     at most one request in before everyone else is offered a slot. *)
  and pick_next () =
    let n = cfg.clients in
    let rec go i tries =
      if tries = n then None
      else if Queue.is_empty queues.(i) then go ((i + 1) mod n) (tries + 1)
      else begin
        rr := (i + 1) mod n;
        decr queued_total;
        set_qdepth ();
        Some (Queue.pop queues.(i))
      end
    in
    go !rr 0
  and finish_op req =
    if group_commit && is_durable req.op.Session.cls then begin
      if !batch_n = 0 then begin
        (* First member opens the batch and arms its window deadline;
           the epoch cookie lets an early (max-size) flush invalidate
           the stale deadline. *)
        let epoch = !batch_epoch in
        Sched.after sched cfg.batch_window_s (fun () -> deadline epoch)
      end;
      batch := req :: !batch;
      incr batch_n;
      if !batch_n >= cfg.max_batch then flush_due := true
    end
    else complete req
  and service_done req =
    finish_op req;
    server_busy := false;
    maybe_start ()
  and deadline epoch =
    if epoch = !batch_epoch && !batch_n > 0 then
      if queued then begin
        start_flush_queued ();
        start_requests ()
      end
      else if !server_busy then flush_due := true
      else start_flush ()
  and start_flush () =
    server_busy := true;
    flush_due := false;
    incr batch_epoch;
    let members = List.rev !batch in
    let n = !batch_n in
    batch := [];
    batch_n := 0;
    incr flushes;
    batched_reqs := !batched_reqs + n;
    Metrics.incr flushes_c;
    Metrics.observe batch_hist (float_of_int n);
    (* One shared sync makes the whole batch durable; its disk time is
       paid once, and every member's completion waits for it. *)
    let d0 = disk_busy () in
    fs.Fsops.sync ();
    let disk_s = disk_busy () -. d0 in
    Metrics.observe flush_hist disk_s;
    Sched.after sched disk_s (fun () ->
        List.iter complete members;
        server_busy := false;
        maybe_start ())
  and admit req =
    Queue.push req queues.(req.client);
    incr queued_total;
    if !queued_total > !qmax then qmax := !queued_total;
    Metrics.observe qdepth_hist (float_of_int !queued_total);
    set_qdepth ();
    maybe_start ()
  and admissible c =
    !queued_total < cfg.queue_depth
    && Queue.length queues.(c) < per_client_cap
  and admit_blocked () =
    (* Strict FIFO over blocked clients: the head waits for both a
       global slot and its own share; its queued requests draining is
       what frees the share, so no deadlock. *)
    if not (Queue.is_empty blocked) then begin
      let req = Queue.peek blocked in
      if admissible req.client then begin
        ignore (Queue.pop blocked);
        admit req;
        schedule_arrival req.client
      end
    end
  and schedule_arrival c =
    Sched.after sched
      (Prng.exponential think.(c) ~mean:cfg.think_mean_s)
      (fun () -> arrival c)
  (* Open-loop: the next request follows think time after this one was
     accepted or shed — except under Block, where the client stalls
     until its request is admitted. *)
  and arrival c =
    if generated.(c) < cfg.ops_per_client then begin
      generated.(c) <- generated.(c) + 1;
      let req = { client = c; op = Session.next sessions.(c); submit = Sched.now sched } in
      if admissible c then begin
        admit req;
        schedule_arrival c
      end
      else
        match cfg.policy with
        | Shed ->
            shed.(c) <- shed.(c) + 1;
            Metrics.incr shed_c;
            schedule_arrival c
        | Block -> Queue.push req blocked
    end
  in
  for c = 0 to cfg.clients - 1 do
    schedule_arrival c
  done;
  (* Settle any stragglers on the device clock and hand the stack back
     in the mode we found it — even when a fault layer cuts the power
     mid-run ([Vdev.Crashed] escaping the scheduler): a crash harness
     recovers on the same devices, and mounting against a dead elevator
     stuck in queued mode would wedge it. *)
  Fun.protect
    ~finally:(fun () ->
      if queued then begin
        List.iter
          (fun d -> try ignore (Vdev.drain d) with Vdev.Crashed -> ())
          devs;
        List.iter (fun d -> Vdev.set_mode d Vdev.Direct) devs
      end)
    (fun () ->
      Sched.run sched;
      fs.Fsops.sync ());

  (* Nothing may be lost silently: every generated request either
     completed or was shed, and the engine checks its own books. *)
  let total_completed = Array.fold_left ( + ) 0 completed in
  let total_shed = Array.fold_left ( + ) 0 shed in
  for c = 0 to cfg.clients - 1 do
    if completed.(c) + shed.(c) <> cfg.ops_per_client then
      failwith
        (Printf.sprintf
           "Engine.run: client %d lost requests (%d completed + %d shed <> %d)"
           c completed.(c) shed.(c) cfg.ops_per_client)
  done;

  let elapsed_s = !last_completion in
  let disk_s = (Io_stats.diff (Fsops.io_stats fs) io0).Io_stats.busy_s in
  let throughput_ops_s =
    if elapsed_s > 0.0 then float_of_int total_completed /. elapsed_s
    else Float.nan
  in
  let mean_batch =
    if !flushes > 0 then float_of_int !batched_reqs /. float_of_int !flushes
    else Float.nan
  in
  Metrics.set qmax_g (float_of_int !qmax);
  Metrics.set (Metrics.gauge m "server.io_depth") (float_of_int cfg.io_depth);
  (* One device keeps the historical [server.dev.*] names; a sharded
     volume's devices register as [server.dev<i>.*] in shard order. *)
  (match devs with
  | [ d ] -> Vdev.register_metrics ~prefix:"server.dev" m d
  | ds ->
      List.iteri
        (fun i d ->
          Vdev.register_metrics ~prefix:(Printf.sprintf "server.dev%d" i) m d)
        ds);
  Metrics.set (Metrics.gauge m "server.clients") (float_of_int cfg.clients);
  Metrics.set
    (Metrics.gauge m "server.ops_per_client")
    (float_of_int cfg.ops_per_client);
  Metrics.set (Metrics.gauge m "server.elapsed_s") elapsed_s;
  Metrics.set (Metrics.gauge m "server.throughput_ops_s") throughput_ops_s;
  Metrics.set (Metrics.gauge m "server.disk_s") disk_s;
  Metrics.set
    (Metrics.gauge m "server.disk_s_per_op")
    (if total_completed > 0 then disk_s /. float_of_int total_completed
     else Float.nan);
  (* Only meaningful on batching backends; a NaN gauge would trip
     [Metrics.validate] on the FFS baseline, which never flushes. *)
  if !flushes > 0 then Metrics.set (Metrics.gauge m "server.mean_batch") mean_batch;
  {
    fs_name = fs.Fsops.name;
    clients = cfg.clients;
    completed = total_completed;
    shed = total_shed;
    errors = !errors;
    elapsed_s;
    throughput_ops_s;
    disk_s;
    flushes = !flushes;
    mean_batch;
    bg_clean_steps = !bg_steps;
    max_queue_depth = !qmax;
    per_client_completed = completed;
    per_client_shed = shed;
    metrics = m;
  }
