type event = { time : float; seq : int; fn : unit -> unit }

(* Binary min-heap ordered by (time, seq): seq breaks ties by insertion
   order, which is what makes same-instant events deterministic. *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
  mutable now : float;
}

let dummy = { time = 0.0; seq = 0; fn = (fun () -> ()) }
let create () = { heap = Array.make 64 dummy; size = 0; next_seq = 0; now = 0.0 }
let now t = t.now
let pending t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  while !i > 0 && before t.heap.(!i) t.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  top

let at t time fn =
  if Float.is_nan time then invalid_arg "Sched.at: NaN time";
  let time = Float.max time t.now in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time; seq; fn }

let after t dt fn = at t (t.now +. dt) fn

let run t =
  while t.size > 0 do
    let ev = pop t in
    t.now <- ev.time;
    ev.fn ()
  done
