(** A discrete-event scheduler over the modelled clock.

    The serving engine interleaves many client sessions against one
    mounted file system without threads: every future action (an op
    arrival, a service completion, a group-commit deadline) is an event
    at a modelled time, and {!run} fires them in order.  Ties are broken
    by insertion order, so a run is a pure function of its seed — the
    property the determinism CI check and the crash/fault vdevs
    underneath rely on.

    Times are modelled seconds on the same axis as the vdev layer's
    [Io_stats.busy_s]; nothing here reads the wall clock. *)

type t

val create : unit -> t
(** An empty scheduler with [now = 0]. *)

val now : t -> float
(** Current modelled time: the timestamp of the last event fired. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at t time fn] schedules [fn] at [time] (clamped to [now] if it is
    in the past, so a zero-delay event still fires after the current
    one). *)

val after : t -> float -> (unit -> unit) -> unit
(** [after t dt fn] is [at t (now t +. dt) fn]. *)

val pending : t -> int
(** Events not yet fired. *)

val run : t -> unit
(** Fire events in (time, insertion) order until none remain.  Events
    scheduled while running are honoured, so the call returns only when
    the simulated system is fully quiescent. *)
