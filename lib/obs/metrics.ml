module Histogram = Lfs_util.Histogram
module Table = Lfs_util.Table

type counter = { mutable n : int }
type gauge = { mutable g : float }

type histogram = {
  buckets : Histogram.t;  (* log-scaled samples, mapped into [0, 1] *)
  lo : float;
  hi : float;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type dist = Histogram.t

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Gauge_fn of (unit -> float) ref
  | Hist of histogram
  | Dist of dist

(* One shared underlying registry; [t] is a view onto it that prepends
   [prefix] to every name registered or looked up through it.  Scoped
   views are how several file-system instances (the shard router's N
   mounts) share one process-wide registry without name collisions. *)
type root = {
  table : (string, instrument) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
}

type t = { root : root; prefix : string }

let create () = { root = { table = Hashtbl.create 64; order = [] }; prefix = "" }
let scoped t prefix = { t with prefix = t.prefix ^ prefix }
let full t name = t.prefix ^ name

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Gauge_fn _ -> "gauge"
  | Hist _ -> "histogram"
  | Dist _ -> "dist"

(* Get-or-create: [make ()] builds the instrument, [extract] projects an
   existing entry back out (None on kind mismatch). *)
let intern t name ~make ~extract =
  let name = full t name in
  match Hashtbl.find_opt t.root.table name with
  | Some existing -> (
      match extract existing with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name existing)))
  | None ->
      let inst, v = make () in
      Hashtbl.replace t.root.table name inst;
      t.root.order <- name :: t.root.order;
      v

let counter t name =
  intern t name
    ~make:(fun () ->
      let c = { n = 0 } in
      (Counter c, c))
    ~extract:(function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = c.n <- c.n + by
let counter_value c = c.n

let gauge t name =
  intern t name
    ~make:(fun () ->
      let g = { g = Float.nan } in
      (Gauge g, g))
    ~extract:(function Gauge g -> Some g | _ -> None)

let set g v = g.g <- v

(* Callback gauges are registered exactly once per name.  A second
   registration means two live instances are writing into the same
   registry — the second would silently shadow the first, so it is a
   hard error; instances that deliberately share a registry must
   disambiguate through [scoped]. *)
let gauge_fn t name f =
  let fname = full t name in
  intern t name
    ~make:(fun () -> (Gauge_fn (ref f), ()))
    ~extract:(function
      | Gauge_fn _ ->
          invalid_arg
            (Printf.sprintf
               "Metrics: callback gauge %S registered twice — two instances \
                sharing one registry must use Metrics.scoped prefixes"
               fname)
      | _ -> None)

let default_lo = 1e-6
let default_hi = 1e4

let histogram ?(lo = default_lo) ?(hi = default_hi) ?(bins = 40) t name =
  if not (lo > 0. && hi > lo) then
    invalid_arg "Metrics.histogram: need 0 < lo < hi";
  intern t name
    ~make:(fun () ->
      let h =
        {
          buckets = Histogram.create ~bins;
          lo;
          hi;
          count = 0;
          sum = 0.;
          vmin = Float.infinity;
          vmax = Float.neg_infinity;
        }
      in
      (Hist h, h))
    ~extract:(function Hist h -> Some h | _ -> None)

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  (* Log-map [lo, hi] onto [0, 1]; Histogram.add clamps the rest. *)
  let x = log (Float.max v h.lo /. h.lo) /. log (h.hi /. h.lo) in
  Histogram.add h.buckets x

let span h ~clock f =
  let t0 = clock () in
  let record () = observe h (clock () -. t0) in
  match f () with
  | v ->
      record ();
      v
  | exception e ->
      record ();
      raise e

(* Invert the log map: bucket coordinate [x] in [0, 1] back to a value. *)
let unmap h x = h.lo *. ((h.hi /. h.lo) ** x)

let percentile h q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Metrics.percentile: quantile outside [0, 1]";
  if h.count = 0 then Float.nan
  else begin
    let nb = Histogram.bins h.buckets in
    (* Walk the cumulative distribution; interpolate inside the bucket
       that crosses [q].  The loop invariant keeps [cum <= q] on entry,
       so [within] is in [0, 1] and the result is monotone in [q]. *)
    let rec go i cum =
      if i >= nb then h.vmax
      else
        let f = Histogram.fraction h.buckets i in
        if f > 0. && cum +. f >= q then
          let within = (q -. cum) /. f in
          unmap h ((float_of_int i +. within) /. float_of_int nb)
        else go (i + 1) (cum +. f)
    in
    let v = go 0 0. in
    (* Buckets clamp at [lo, hi]; the summary's exact extrema are
       tighter bounds, and clamping keeps the estimate monotone. *)
    Float.min h.vmax (Float.max h.vmin v)
  end

let dist ?(bins = 20) t name =
  intern t name
    ~make:(fun () ->
      let d = Histogram.create ~bins in
      (Dist d, d))
    ~extract:(function Dist d -> Some d | _ -> None)

let dist_add ?(weight = 1.0) d v = Histogram.add_weighted d v weight

(* ---- Reading ---- *)

type value =
  | Int of int
  | Float of float
  | Summary of {
      count : int;
      sum : float;
      mean : float;
      vmin : float;
      vmax : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }
  | Series of { total : float; series : (float * float) array }

let value_of = function
  | Counter c -> Int c.n
  | Gauge g -> Float g.g
  | Gauge_fn f -> Float (!f ())
  | Hist h ->
      if h.count = 0 then
        Summary
          {
            count = 0;
            sum = 0.;
            mean = Float.nan;
            vmin = Float.nan;
            vmax = Float.nan;
            p50 = Float.nan;
            p95 = Float.nan;
            p99 = Float.nan;
          }
      else
        Summary
          {
            count = h.count;
            sum = h.sum;
            mean = h.sum /. float_of_int h.count;
            vmin = h.vmin;
            vmax = h.vmax;
            p50 = percentile h 0.50;
            p95 = percentile h 0.95;
            p99 = percentile h 0.99;
          }
  | Dist d -> Series { total = Histogram.total d; series = Histogram.to_series d }

let value t name = Option.map value_of (Hashtbl.find_opt t.root.table (full t name))

let float_value t name =
  match value t name with
  | None -> Float.nan
  | Some (Int n) -> float_of_int n
  | Some (Float v) -> v
  | Some (Summary s) -> s.mean
  | Some (Series s) -> s.total

(* Snapshots (and the reports built on them) always cover the whole
   underlying registry, whichever view they are taken through. *)
let snapshot t =
  List.rev_map
    (fun name -> (name, value_of (Hashtbl.find t.root.table name)))
    t.root.order

(* ---- Text report ---- *)

let undefined v = Float.is_nan v

let fmt_scalar v =
  if undefined v then "undefined"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let report ?title t =
  let snap = snapshot t in
  let buf = Buffer.create 1024 in
  let scalars =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Int n -> Some [ name; string_of_int n ]
        | Float v -> Some [ name; fmt_scalar v ]
        | _ -> None)
      snap
  and summaries =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Summary { count; sum; mean; vmin; vmax; p50; p95; p99 } ->
            Some
              [
                name;
                string_of_int count;
                fmt_scalar sum;
                fmt_scalar mean;
                fmt_scalar vmin;
                fmt_scalar vmax;
                fmt_scalar p50;
                fmt_scalar p95;
                fmt_scalar p99;
              ]
        | _ -> None)
      snap
  and dists =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Series { total; series } -> Some (name, total, series)
        | _ -> None)
      snap
  in
  if scalars <> [] then
    Buffer.add_string buf
      (Table.render ?title ~header:[ "metric"; "value" ] scalars);
  if summaries <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Table.render ~title:"histograms"
         ~header:
           [ "metric"; "count"; "sum"; "mean"; "min"; "max"; "p50"; "p95"; "p99" ]
         summaries)
  end;
  List.iter
    (fun (name, total, series) ->
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      let rows =
        Array.to_list series
        |> List.filter_map (fun (x, frac) ->
               if frac = 0. then None
               else
                 Some
                   [ Table.fmt_float ~decimals:3 x; Table.fmt_float ~decimals:3 frac ])
      in
      let rows = if rows = [] then [ [ "(empty)"; "" ] ] else rows in
      Buffer.add_string buf
        (Table.render
           ~title:(Printf.sprintf "%s (total %s)" name (fmt_scalar total))
           ~header:[ "bin"; "fraction" ] rows))
    dists;
  Buffer.contents buf

(* ---- JSON ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  (* JSON has no NaN/Infinity: undefined renders as null. *)
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_json t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      if !first then first := false else Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n  \"%s\": " (json_escape name));
      (match v with
      | Int n -> Buffer.add_string buf (string_of_int n)
      | Float v -> Buffer.add_string buf (json_float v)
      | Summary { count; sum; mean; vmin; vmax; p50; p95; p99 } ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"count\": %d, \"sum\": %s, \"mean\": %s, \"min\": %s, \
                \"max\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}"
               count (json_float sum) (json_float mean) (json_float vmin)
               (json_float vmax) (json_float p50) (json_float p95)
               (json_float p99))
      | Series { total; series } ->
          Buffer.add_string buf
            (Printf.sprintf "{\"total\": %s, \"bins\": [" (json_float total));
          Array.iteri
            (fun i (x, frac) ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf
                (Printf.sprintf "[%s, %s]" (json_float x) (json_float frac)))
            series;
          Buffer.add_string buf "]}"))
    (snapshot t);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* ---- Validation ---- *)

let validate t =
  let problems = ref [] in
  let bad name what = problems := (name, what) :: !problems in
  let check_finite_nonneg name what v =
    if Float.is_nan v then bad name (what ^ " is NaN")
    else if Float.abs v = Float.infinity then bad name (what ^ " is infinite")
    else if v < 0. then bad name (what ^ " is negative")
  in
  List.iter
    (fun (name, v) ->
      match v with
      | Int n -> if n < 0 then bad name "counter is negative"
      | Float v -> check_finite_nonneg name "gauge" v
      | Summary { count; sum; mean; vmin; vmax; p50; p95; p99 } ->
          if count < 0 then bad name "histogram count is negative"
          else if count > 0 then begin
            check_finite_nonneg name "sum" sum;
            check_finite_nonneg name "mean" mean;
            check_finite_nonneg name "min" vmin;
            check_finite_nonneg name "max" vmax;
            check_finite_nonneg name "p50" p50;
            check_finite_nonneg name "p95" p95;
            check_finite_nonneg name "p99" p99;
            if p50 > p95 || p95 > p99 then
              bad name "percentiles are non-monotone (p50 <= p95 <= p99)";
            if count > 0 && (p50 < vmin || p99 > vmax) then
              bad name "percentiles escape the [min, max] range"
          end
      | Series { total; series } ->
          check_finite_nonneg name "total" total;
          Array.iter
            (fun (_, frac) -> check_finite_nonneg name "bin fraction" frac)
            series)
    (snapshot t);
  List.rev !problems
