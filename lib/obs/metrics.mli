(** A lightweight metrics registry for the whole stack.

    Every layer — vdev wrappers, the file system, the cleaner, the
    checkpoint machinery — registers its instruments into one [t] owned
    by the mounted file system, so benchmarks and tools read performance
    numbers off a single registry instead of ad-hoc printfs.

    Four instrument kinds:

    - {e counters}: monotonically increasing integers (cleaner passes,
      checkpoints taken);
    - {e gauges}: point-in-time floats, either set explicitly or backed
      by a callback sampled at read time (live [Io_stats] fields, cache
      hit rate, the running write cost);
    - {e histograms}: summaries of observed samples (modelled op latency,
      checkpoint duration/blocks).  Samples land in log-spaced buckets
      backed by {!Lfs_util.Histogram}, and the summary tracks count, sum,
      mean, min and max;
    - {e dists}: distributions over [\[0, 1\]] (the victim segment
      utilisation of Figure 6), stored directly in a
      {!Lfs_util.Histogram}.

    Time is the {e modelled} disk time of the vdev layer, not wall-clock:
    {!span} reads a caller-supplied clock (typically
    [fun () -> (Vdev.stats dev).Io_stats.busy_s]) before and after the
    wrapped operation.

    Registration is get-or-create by name: asking twice for the same
    name and kind returns the same instrument; asking for an existing
    name with a different kind — or re-registering a callback gauge —
    raises [Invalid_argument].  Reports preserve registration order.

    A [t] is a {e view} onto a shared underlying registry.  {!scoped}
    derives a view that prepends a prefix to every name registered or
    looked up through it, so several file-system instances (the shard
    router's N mounts, each under [shard<i>.]) share one process-wide
    registry without colliding. *)

type t
type counter
type gauge
type histogram
type dist

val create : unit -> t

val scoped : t -> string -> t
(** [scoped t p] is a view of [t]'s underlying registry in which every
    name is prefixed with [p] (prefixes compose:
    [scoped (scoped t "a.") "b."] prepends ["a.b."]).  Registration
    order, snapshots and reports stay global to the shared registry. *)

(** {1 Instruments} *)

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
(** An explicitly-set gauge; reads as [nan] ("undefined") until {!set}. *)

val set : gauge -> float -> unit

val gauge_fn : t -> string -> (unit -> float) -> unit
(** [gauge_fn t name f] registers a gauge whose value is [f ()] at each
    report/snapshot.  Registering the same name twice raises
    [Invalid_argument]: a duplicate means two live instances share one
    registry and the second would silently shadow the first — scope the
    instances apart with {!scoped} instead. *)

val histogram : ?lo:float -> ?hi:float -> ?bins:int -> t -> string -> histogram
(** Log-spaced buckets covering [\[lo, hi\]] (defaults [1e-6], [1e4],
    [40] bins); samples outside the range clamp to the edge buckets but
    still count exactly in the summary statistics. *)

val observe : histogram -> float -> unit

val percentile : histogram -> float -> float
(** [percentile h q] estimates the [q]-quantile ([q] in [\[0, 1\]]) of the
    observed samples from the log-spaced buckets, interpolating within
    the bucket that crosses [q] and clamping into the exact
    [\[min, max\]] observed so far.  [nan] when the histogram is empty;
    monotone in [q] by construction.  The summary value exposes the
    common tail quantiles as [p50]/[p95]/[p99]. *)

val span : histogram -> clock:(unit -> float) -> (unit -> 'a) -> 'a
(** [span h ~clock f] runs [f ()] and records [clock () - clock ()] taken
    across it into [h] — also when [f] raises, so crash-injection runs
    still account the partial operation. *)

val dist : ?bins:int -> t -> string -> dist
(** A distribution over [\[0, 1\]] (default [20] bins). *)

val dist_add : ?weight:float -> dist -> float -> unit

(** {1 Reading} *)

type value =
  | Int of int  (** counter *)
  | Float of float  (** gauge; [nan] means undefined *)
  | Summary of {
      count : int;
      sum : float;
      mean : float;
      vmin : float;
      vmax : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }
      (** histogram; everything but [count]/[sum] is [nan] when
          [count = 0].  Percentiles come from {!percentile}. *)
  | Series of { total : float; series : (float * float) array }
      (** dist, as [(bin center, fraction)] pairs *)

val value : t -> string -> value option
(** Current value of the named instrument (callback gauges are sampled). *)

val float_value : t -> string -> float
(** Convenience: the value as a float ([Int] coerced; [Summary] is its
    mean; [Series] its total).  [nan] if the name is unknown. *)

val snapshot : t -> (string * value) list
(** All instruments of the shared registry (every scope) in
    registration order, under their full prefixed names. *)

(** {1 Reports} *)

val report : ?title:string -> t -> string
(** Text report: box-drawn tables via {!Lfs_util.Table}.  Undefined
    values print as ["undefined"]. *)

val to_json : t -> string
(** One JSON object keyed by instrument name.  Counters and gauges are
    numbers, histograms [{count, sum, mean, min, max}], dists
    [{total, bins: [[center, fraction], ...]}].  NaN and infinities
    render as [null] (JSON has no NaN). *)

val validate : t -> (string * string) list
(** [(name, problem)] pairs for values that should never occur in a
    healthy registry: negative counters or gauges, NaN/infinite gauges,
    non-finite or negative histogram summaries (empty histograms are
    fine), non-monotone percentiles ([p50 <= p95 <= p99], all inside
    [\[min, max\]]), NaN dist totals.  Used by [lfs_tool stats --check]
    and [lfs_tool serve --check]. *)
