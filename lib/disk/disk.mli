(** A simulated block device.

    Stores block contents in memory, charges modelled time for every
    transfer ({!Geometry}), and keeps cumulative {!Io_stats}.  Sequential
    accesses (starting exactly where the previous transfer ended) cost no
    seek — this is the property log-structured writing exploits.

    IO is split into two planes.  The data plane runs at submit time in
    submission order: contents move, crash countdowns tick.  The time
    plane is a per-device {!Io_queue}: every transfer takes a tag, and a
    C-LOOK elevator decides when the device is modelled to finish it.
    In the default [Direct] mode each submit is serviced immediately,
    reproducing synchronous timings exactly; under
    [Queued] ({!set_mode}) submits queue and overlap until awaited,
    drained, or pumped.

    Crash injection: {!plan_crash} arms a countdown of blocks after which
    the device "loses power": the offending write is torn (a prefix may
    reach the medium) and {!Crashed} is raised.  All subsequent IO raises
    {!Crashed} until {!reboot}.  This lets tests cut power at any point
    of a checkpoint or segment write and exercise recovery.

    In [Direct] mode, persistence, countdowns and service coincide with
    submission, so crash points are independent of queueing.  In
    [Queued] mode the data plane is deferred to the elevator's commit:
    contents land, countdowns burn and crashes tear in the order the
    device actually retires writes (C-LOOK), reads stay coherent by
    overlaying submitted-but-uncommitted writes, and a reboot drops
    whatever the elevator had not yet retired. *)

type t

exception Crashed
(** Raised by IO once an armed crash has triggered (and by the write that
    triggers it). *)

val create : Geometry.t -> t
(** A fresh device with all blocks zeroed. *)

val geometry : t -> Geometry.t
val block_size : t -> int
val nblocks : t -> int

val stats : t -> Io_stats.t
(** Live view of the cumulative statistics (mutated by every IO). *)

val set_mode : t -> Io_queue.mode -> unit
val get_mode : t -> Io_queue.mode

val read_block : t -> int -> bytes
(** [read_block d addr] returns a copy of block [addr]. *)

val write_block : t -> int -> bytes -> unit
(** [write_block d addr b] stores a copy of [b] (must be exactly one
    block) at [addr]. *)

val read_blocks : t -> int -> int -> bytes
(** [read_blocks d addr n] reads [n] contiguous blocks as one transfer
    (one seek at most). *)

val write_blocks : t -> int -> bytes -> unit
(** [write_blocks d addr b] writes [Bytes.length b / block_size]
    contiguous blocks as one transfer. *)

val zero_blocks : t -> int -> int -> unit
(** [zero_blocks d addr n] writes zeros over blocks [addr, addr+n): it
    charges modelled time, counts as a write in {!Io_stats}, and
    respects an armed {!plan_crash} exactly like {!write_blocks} (a torn
    zero clears only its writable prefix). *)

val submit_read : ?now:float -> t -> int -> int -> Io_queue.ticket * bytes
(** Tagged read: the data is copied out at submit time; the ticket
    resolves at the modelled completion.  [now] defaults to the device
    horizon ([Direct]) or the queued-mode clock. *)

val submit_write : ?now:float -> t -> int -> bytes -> Io_queue.ticket
(** Tagged write.  In [Direct] mode contents (and any crash) land at
    submit time; in [Queued] mode they land when the elevator commits
    the request, and the ticket resolves at that modelled completion. *)

val drain : t -> float
(** Service every outstanding request; returns the final horizon. *)

val pump : t -> now:float -> (int * float) list
(** See {!Io_queue.pump}. *)

val outstanding_in : t -> lo:int -> hi:int -> int
val queue_depth : t -> int

val plan_crash : t -> after_blocks:int -> unit
(** Arm a power cut after [after_blocks] more blocks have been written.
    The triggering write persists only its first [after_blocks] remaining
    blocks (a torn write). *)

val cancel_crash : t -> unit
val is_crashed : t -> bool

val reboot : t -> unit
(** Clear the crashed state; contents are whatever survived.  Pending
    queued requests are dropped and the head goes cold. *)

val snapshot : t -> t
(** Deep copy (contents and stats); the copy is independent and starts
    in [Direct] mode with an idle queue. *)

val restore : t -> from:t -> unit
(** Overwrite contents and stats of [t] with those of [from].  The two
    devices must have identical geometry.  Pending queued requests on
    [t] are dropped. *)

val save_file : t -> string -> unit
(** Persist contents to a raw image file. *)

val load_file : Geometry.t -> string -> t
(** Load a raw image produced by {!save_file}; the file size must match
    the geometry's capacity. *)
