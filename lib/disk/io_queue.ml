(* Per-device request queue in the modelled-time domain.

   The data plane (moving bytes, crash countdowns, cache coherence) runs
   at submit time in submission order; this queue only decides *when* the
   device is modelled to finish each transfer.  Requests are tagged with
   a globally monotonic id, ordered for service by a C-LOOK elevator, and
   serviced one at a time: service start = max(previous completion,
   submit time), so queued requests overlap their wait with the device's
   current transfer instead of summing serially. *)

type req = {
  tag : int;
  addr : int;
  nblocks : int;
  submit_s : float;
  on_commit : (unit -> unit) option;
      (* data-plane action deferred to service time (queued writes) *)
}

type t = {
  service : head:int -> addr:int -> nblocks:int -> float * bool;
      (* modelled duration of one transfer and whether it repositioned *)
  stats : Io_stats.t;
  mutable head : int;  (* block index just past the previous transfer *)
  mutable horizon : float;  (* completion time of the last serviced request *)
  mutable outstanding : req list;  (* submission order, oldest first *)
  mutable started : (int * float) list;
      (* services committed since the last [pump]: (tag, finish) *)
}

type ticket = Done | Tag of t * int | Join of ticket list

type mode = Direct | Queued of (unit -> float)

(* One id space across every queue in a stack: a contiguous range of
   tags identifies "all leaf IO submitted between two points in time",
   which is how the serving engine tracks per-request completion. *)
let tag_counter = ref 0
let next_tag () = !tag_counter

let create ~service ~stats =
  { service; stats; head = -1; horizon = 0.0; outstanding = []; started = [] }

let head t = t.head
let set_head t h = t.head <- h
let horizon t = t.horizon
let set_horizon t h = t.horizon <- h
let depth t = List.length t.outstanding

let reset t =
  t.outstanding <- [];
  t.started <- []

let submit ?on_commit t ~now ~addr ~nblocks =
  let tag = !tag_counter in
  incr tag_counter;
  t.outstanding <-
    t.outstanding @ [ { tag; addr; nblocks; submit_s = now; on_commit } ];
  let d = List.length t.outstanding in
  if d > t.stats.Io_stats.max_queue_depth then
    t.stats.Io_stats.max_queue_depth <- d;
  tag

(* C-LOOK: the next outstanding request at or beyond the head, lowest
   address first (ties break by submission order); when nothing lies
   ahead, sweep back to the lowest address. *)
let pick t =
  match t.outstanding with
  | [] -> None
  | reqs ->
      let pool =
        match List.filter (fun r -> r.addr >= t.head) reqs with
        | [] -> reqs
        | ahead -> ahead
      in
      Some
        (List.fold_left
           (fun best r -> if r.addr < best.addr then r else best)
           (List.hd pool) pool)

let commit t r =
  t.outstanding <- List.filter (fun x -> x.tag <> r.tag) t.outstanding;
  let start = Float.max t.horizon r.submit_s in
  let dur, seeked = t.service ~head:t.head ~addr:r.addr ~nblocks:r.nblocks in
  if seeked then t.stats.Io_stats.seeks <- t.stats.Io_stats.seeks + 1;
  t.stats.Io_stats.busy_s <- t.stats.Io_stats.busy_s +. dur;
  t.stats.Io_stats.queue_wait_s <-
    t.stats.Io_stats.queue_wait_s +. (start -. r.submit_s);
  t.head <- r.addr + r.nblocks;
  t.horizon <- start +. dur;
  t.started <- t.started @ [ (r.tag, t.horizon) ];
  (* Deferred data plane last: a crash countdown tripping here must not
     leave the request half-accounted in the time plane. *)
  match r.on_commit with None -> () | Some f -> f ()

let service_next t =
  match pick t with
  | None -> false
  | Some r ->
      commit t r;
      true

(* Service (in elevator order) until [tag] is no longer outstanding.
   Returns the queue horizon, an upper bound on the tag's completion
   time that is exact when the awaited tag was serviced last. *)
let await_tag t tag =
  while List.exists (fun r -> r.tag = tag) t.outstanding do
    ignore (service_next t)
  done;
  t.horizon

let rec await = function
  | Done -> neg_infinity
  | Tag (q, tag) -> await_tag q tag
  | Join ts -> List.fold_left (fun acc tk -> Float.max acc (await tk)) neg_infinity ts

let drain t =
  while t.outstanding <> [] do
    ignore (service_next t)
  done;
  t.horizon

(* Event-driven servicing: once the horizon has passed, commit the
   elevator's next pick, and hand back every service committed since the
   last pump (including ones forced by [await]/[drain]) so the caller
   can schedule completion events. *)
let pump t ~now =
  if t.outstanding <> [] && t.horizon <= now then ignore (service_next t);
  let out = t.started in
  t.started <- [];
  out

let outstanding_in t ~lo ~hi =
  List.length (List.filter (fun r -> r.tag >= lo && r.tag < hi) t.outstanding)
