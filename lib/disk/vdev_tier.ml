module Codec = Lfs_util.Bytes_codec
module Checksum = Lfs_util.Checksum

type tier = Fast | Slow

let tier_name = function Fast -> "fast" | Slow -> "slow"

(* On-disk layout, all on the FAST child (the slow child is pure chunk
   payload, so a cheap device needs no metadata reservation):

     block 0                  tier superblock (geometry, checksummed)
     [1, 1+map_r)             placement map, region A
     [1+map_r, 1+2*map_r)     placement map, region B
     [map_reserved, +base)    pinned prefix: exported blocks [0, base)
     then fast chunks         fast physical chunks 0..fast_chunks-1

   The map is journalled superblock-style: two generation-stamped,
   checksummed regions written alternately; recovery takes the highest
   valid generation, so a power cut during a map write falls back to the
   previous placement — under which every chunk's old copy is still
   intact, because migration never reuses the source before the new map
   is durable. *)

let magic = 0x4C46_5431 (* "LFT1" *)
let version = 1

type plan = {
  p_base : int;
  p_chunk_blocks : int;
  p_fast_chunks : int;
  p_slow_chunks : int;
  p_nchunks : int;
  p_map_r : int;
  p_map_reserved : int;
  p_nblocks : int;
}

(* Size the map regions from an upper bound on the chunk count so the
   reservation does not itself depend on the final chunk split. *)
let map_region_blocks ~block_size ~fast_blocks ~slow_blocks ~chunk_blocks =
  let bound = (fast_blocks + slow_blocks) / chunk_blocks in
  let bytes = 24 + (4 * bound) in
  (bytes + block_size - 1) / block_size

let plan ~base ~chunk_blocks ~(fast : Vdev.t) ~(slow : Vdev.t) =
  if chunk_blocks <= 0 then invalid_arg "Vdev_tier.plan: chunk_blocks";
  if base < 0 then invalid_arg "Vdev_tier.plan: base";
  if fast.Vdev.block_size <> slow.Vdev.block_size then
    invalid_arg "Vdev_tier.plan: children disagree on block size";
  let bs = fast.Vdev.block_size in
  let map_r =
    map_region_blocks ~block_size:bs ~fast_blocks:fast.Vdev.nblocks
      ~slow_blocks:slow.Vdev.nblocks ~chunk_blocks
  in
  let map_reserved = 1 + (2 * map_r) in
  let fast_chunks = (fast.Vdev.nblocks - map_reserved - base) / chunk_blocks in
  let slow_chunks = slow.Vdev.nblocks / chunk_blocks in
  (* Two physical chunks stay out of the logical space as a floating
     free pool (initially one per tier): migration copies into a free
     chunk, flips the map, and only then releases the source, so there
     is always somewhere to copy to and never a moment without a
     durable copy. *)
  let nchunks = fast_chunks + slow_chunks - 2 in
  if fast_chunks < 2 || slow_chunks < 2 || nchunks < 1 then
    invalid_arg "Vdev_tier.plan: children too small for tiering";
  {
    p_base = base;
    p_chunk_blocks = chunk_blocks;
    p_fast_chunks = fast_chunks;
    p_slow_chunks = slow_chunks;
    p_nchunks = nchunks;
    p_map_r = map_r;
    p_map_reserved = map_reserved;
    p_nblocks = base + (nchunks * chunk_blocks);
  }

type t = {
  fast : Vdev.t;
  slow : Vdev.t;
  block_size : int;
  base : int;
  chunk_blocks : int;
  fast_chunks : int;
  slow_chunks : int;
  nchunks : int;
  map_r : int;
  map_reserved : int;
  nblocks : int;
  map : int array; (* logical chunk -> physical chunk *)
  mutable gen : int64; (* generation of the durable map *)
  mutable free_fast : int list; (* unmapped physical chunks, fast tier *)
  mutable free_slow : int list;
  mutable demotions : int;
  mutable promotions : int;
  mutable crash_countdown : int option;
  mutable crashed : bool;
}

let nchunks t = t.nchunks
let chunk_blocks t = t.chunk_blocks
let base t = t.base
let exported_blocks t = t.nblocks
let demotions t = t.demotions
let promotions t = t.promotions

let phys_tier t phys = if phys < t.fast_chunks then Fast else Slow

let chunk_tier t chunk =
  if chunk < 0 || chunk >= t.nchunks then invalid_arg "Vdev_tier.chunk_tier";
  phys_tier t t.map.(chunk)

let free_chunks t ~tier =
  match tier with
  | Fast -> List.length t.free_fast
  | Slow -> List.length t.free_slow

let count_chunks t ~tier =
  Array.fold_left
    (fun acc phys -> if phys_tier t phys = tier then acc + 1 else acc)
    0 t.map

(* Child address of a physical chunk's first block. *)
let phys_addr t phys =
  if phys < t.fast_chunks then
    (t.fast, t.map_reserved + t.base + (phys * t.chunk_blocks))
  else (t.slow, (phys - t.fast_chunks) * t.chunk_blocks)

let check_range t addr n what =
  if addr < 0 || n < 0 || addr + n > t.nblocks then
    invalid_arg
      (Printf.sprintf "Vdev_tier.%s: blocks [%d, %d) out of range [0, %d)"
         what addr (addr + n) t.nblocks)

(* Apply [f] to each contiguous child extent of the exported range
   [addr, addr+n): the pinned prefix maps 1:1 onto the fast child and
   each chunk lands wherever the placement map currently says. *)
let iter_extents t addr n f =
  let pos = ref addr in
  let stop = addr + n in
  while !pos < stop do
    if !pos < t.base then begin
      let count = min stop t.base - !pos in
      f ~dev:t.fast ~daddr:(t.map_reserved + !pos) ~first:!pos ~count;
      pos := !pos + count
    end
    else begin
      let c = (!pos - t.base) / t.chunk_blocks in
      let off = (!pos - t.base) mod t.chunk_blocks in
      let count = min (stop - !pos) (t.chunk_blocks - off) in
      let dev, cbase = phys_addr t t.map.(c) in
      f ~dev ~daddr:(cbase + off) ~first:!pos ~count;
      pos := !pos + count
    end
  done

let ensure_alive t = if t.crashed then raise Vdev.Crashed

let writable_prefix t n =
  match t.crash_countdown with None -> n | Some k -> min k n

let consume_countdown t n =
  match t.crash_countdown with
  | None -> ()
  | Some k ->
      let k = k - n in
      if k <= 0 then begin
        t.crash_countdown <- None;
        t.crashed <- true
      end
      else t.crash_countdown <- Some k

let submit_read ?now t addr n =
  ensure_alive t;
  check_range t addr n "read_blocks";
  let bs = t.block_size in
  let out = Bytes.create (n * bs) in
  let tickets = ref [] in
  iter_extents t addr n (fun ~dev ~daddr ~first ~count ->
      let tk, buf = Vdev.submit_read ?now dev daddr count in
      tickets := tk :: !tickets;
      Bytes.blit buf 0 out ((first - addr) * bs) (count * bs));
  (Io_queue.Join !tickets, out)

let submit_prefix ?now t addr b persist =
  let bs = t.block_size in
  let tickets = ref [] in
  iter_extents t addr persist (fun ~dev ~daddr ~first ~count ->
      let buf = Bytes.sub b ((first - addr) * bs) (count * bs) in
      tickets := Vdev.submit_write ?now dev daddr buf :: !tickets);
  !tickets

let submit_write ?now t addr b =
  ensure_alive t;
  if Bytes.length b mod t.block_size <> 0 then
    invalid_arg "Vdev_tier.write_blocks: buffer is not a whole number of blocks";
  let n = Bytes.length b / t.block_size in
  check_range t addr n "write_blocks";
  let tickets = submit_prefix ?now t addr b (writable_prefix t n) in
  consume_countdown t n;
  if t.crashed then raise Vdev.Crashed;
  Io_queue.Join tickets

let zero_blocks t addr n =
  ensure_alive t;
  check_range t addr n "zero_blocks";
  iter_extents t addr (writable_prefix t n) (fun ~dev ~daddr ~first:_ ~count ->
      Vdev.zero_blocks dev daddr count);
  consume_countdown t n;
  if t.crashed then raise Vdev.Crashed

(* ------------------------------------------------------------------ *)
(* Persistent placement map                                            *)
(* ------------------------------------------------------------------ *)

let superblock_bytes t =
  let b = Bytes.make t.block_size '\000' in
  let c = Codec.writer b in
  Codec.put_u32 c 0 (* checksum, patched below *);
  Codec.put_u32 c magic;
  Codec.put_u32 c version;
  Codec.put_u32 c t.base;
  Codec.put_u32 c t.chunk_blocks;
  Codec.put_u32 c t.nchunks;
  Codec.put_u32 c t.fast_chunks;
  Codec.put_u32 c t.slow_chunks;
  Codec.put_u32 c t.map_r;
  let ck = Checksum.adler32 ~pos:8 b in
  Codec.put_u32 (Codec.at b 0) (Int32.to_int ck land 0xffff_ffff);
  b

let map_bytes t ~gen =
  let b = Bytes.make (t.map_r * t.block_size) '\000' in
  let c = Codec.writer b in
  Codec.put_u32 c 0 (* checksum, patched below *);
  Codec.put_u32 c 0;
  Codec.put_u64 c gen;
  Codec.put_u32 c t.nchunks;
  Codec.put_u32 c 0;
  Array.iter (fun phys -> Codec.put_u32 c phys) t.map;
  let ck = Checksum.adler32 ~pos:8 b in
  Codec.put_u32 (Codec.at b 0) (Int32.to_int ck land 0xffff_ffff);
  b

let region_addr t gen = if Int64.rem gen 2L = 0L then 1 else 1 + t.map_r

(* Decode one map region; [None] if the checksum or shape is invalid. *)
let decode_map t b =
  if Bytes.length b <> t.map_r * t.block_size then None
  else
    let c = Codec.reader b in
    let stored = Codec.get_u32 c in
    let _pad = Codec.get_u32 c in
    let computed = Int32.to_int (Checksum.adler32 ~pos:8 b) land 0xffff_ffff in
    if stored <> computed then None
    else
      let gen = Codec.get_u64 c in
      let n = Codec.get_u32 c in
      let _pad = Codec.get_u32 c in
      if n <> t.nchunks || gen = 0L then None
      else
        let map = Array.init t.nchunks (fun _ -> Codec.get_u32 c) in
        let total = t.fast_chunks + t.slow_chunks in
        let seen = Array.make total false in
        let ok = ref true in
        Array.iter
          (fun phys ->
            if phys < 0 || phys >= total || seen.(phys) then ok := false
            else seen.(phys) <- true)
          map;
        if !ok then Some (gen, map) else None

(* Rebuild the free pool from the map: every physical chunk not claimed
   by a logical chunk is free in its tier. *)
let rebuild_free t =
  let total = t.fast_chunks + t.slow_chunks in
  let used = Array.make total false in
  Array.iter (fun phys -> used.(phys) <- true) t.map;
  let ff = ref [] and fs = ref [] in
  for phys = total - 1 downto 0 do
    if not used.(phys) then
      if phys < t.fast_chunks then ff := phys :: !ff else fs := phys :: !fs
  done;
  t.free_fast <- !ff;
  t.free_slow <- !fs

let read_map_regions t =
  let a = Vdev.read_blocks t.fast 1 t.map_r in
  let b = Vdev.read_blocks t.fast (1 + t.map_r) t.map_r in
  (decode_map t a, decode_map t b)

(* Load the winning (highest-generation valid) region into [t]. *)
let reload_map t =
  let pick =
    match read_map_regions t with
    | None, None -> failwith "Vdev_tier: no valid placement map region"
    | Some m, None | None, Some m -> m
    | Some (ga, ma), Some (gb, mb) -> if ga >= gb then (ga, ma) else (gb, mb)
  in
  let gen, map = pick in
  t.gen <- gen;
  Array.blit map 0 t.map 0 t.nchunks;
  rebuild_free t

(* Persist the in-memory map at generation [gen+1].  The write consumes
   the tier-level crash countdown (so tests can cut power mid-map-write)
   and is awaited before [gen] advances: a torn region fails its
   checksum on reload and the previous generation wins. *)
let write_map ?now t =
  let next = Int64.add t.gen 1L in
  let buf = map_bytes t ~gen:next in
  let addr = region_addr t next in
  let persist = writable_prefix t t.map_r in
  let ticket =
    if persist > 0 then
      Vdev.submit_write ?now t.fast addr (Bytes.sub buf 0 (persist * t.block_size))
    else Io_queue.Done
  in
  consume_countdown t t.map_r;
  if t.crashed then raise Vdev.Crashed;
  ignore (Vdev.await ticket);
  t.gen <- next

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

let take_free t tier =
  match tier with
  | Fast -> (
      match t.free_fast with
      | [] -> None
      | p :: rest ->
          t.free_fast <- rest;
          Some p)
  | Slow -> (
      match t.free_slow with
      | [] -> None
      | p :: rest ->
          t.free_slow <- rest;
          Some p)

let release t phys =
  match phys_tier t phys with
  | Fast -> t.free_fast <- List.sort compare (phys :: t.free_fast)
  | Slow -> t.free_slow <- List.sort compare (phys :: t.free_slow)

let flip_and_persist ?now t ~chunk ~dst =
  let src = t.map.(chunk) in
  t.map.(chunk) <- dst;
  (try write_map ?now t
   with e ->
     (* Not durable: reboot reloads the old map, but keep the in-memory
        view coherent for callers that catch and carry on. *)
     t.map.(chunk) <- src;
     release t dst;
     raise e);
  release t src

(* Copy chunk [chunk] to a free physical chunk of [target] and flip the
   placement map.  Ordering is the whole point: (1) the copy is awaited
   to completion, (2) the map flip is made durable, (3) only then does
   the source chunk rejoin the free pool.  A crash at any cut leaves a
   durable map whose every entry still points at an intact copy. *)
let migrate ?now t ~chunk ~target =
  ensure_alive t;
  if chunk < 0 || chunk >= t.nchunks then invalid_arg "Vdev_tier.migrate";
  if phys_tier t t.map.(chunk) = target then true
  else
    match take_free t target with
    | None -> false
    | Some dst -> (
        try
          let src_dev, src_addr = phys_addr t t.map.(chunk) in
          let rt, data = Vdev.submit_read ?now src_dev src_addr t.chunk_blocks in
          let dst_dev, dst_addr = phys_addr t dst in
          let persist = writable_prefix t t.chunk_blocks in
          let wt =
            if persist > 0 then
              Vdev.submit_write ?now dst_dev dst_addr
                (Bytes.sub data 0 (persist * t.block_size))
            else Io_queue.Done
          in
          consume_countdown t t.chunk_blocks;
          if t.crashed then raise Vdev.Crashed;
          ignore (Vdev.await (Io_queue.Join [ rt; wt ]));
          flip_and_persist ?now t ~chunk ~dst;
          (match target with
          | Slow -> t.demotions <- t.demotions + 1
          | Fast -> t.promotions <- t.promotions + 1);
          true
        with e ->
          (match e with Vdev.Crashed -> () | _ -> release t dst);
          raise e)

(* Exchange the physical chunks of [chunk] (live) and [dead] (a logical
   chunk whose contents are dead — a clean segment).  [chunk]'s bytes
   are copied into [dead]'s physical chunk, then one map write flips
   both entries atomically.  This is how migration scales past the
   two-chunk free pool: any clean segment on the target tier can donate
   its physical chunk, and the donor simultaneously surfaces on the
   source tier as a clean segment for the write head.  [dead] ends up
   holding stale bytes — the rehome hazard class, neutralised by the
   summary self-identification checks.  Same copy-before-flip ordering
   as [migrate]; the single map write keeps the exchange atomic. *)
let swap ?now t ~chunk ~dead =
  ensure_alive t;
  if
    chunk < 0 || chunk >= t.nchunks || dead < 0 || dead >= t.nchunks
    || chunk = dead
  then invalid_arg "Vdev_tier.swap";
  let src = t.map.(chunk) and dst = t.map.(dead) in
  if phys_tier t src = phys_tier t dst then false
  else begin
    let src_dev, src_addr = phys_addr t src in
    let rt, data = Vdev.submit_read ?now src_dev src_addr t.chunk_blocks in
    let dst_dev, dst_addr = phys_addr t dst in
    let persist = writable_prefix t t.chunk_blocks in
    let wt =
      if persist > 0 then
        Vdev.submit_write ?now dst_dev dst_addr
          (Bytes.sub data 0 (persist * t.block_size))
      else Io_queue.Done
    in
    consume_countdown t t.chunk_blocks;
    if t.crashed then raise Vdev.Crashed;
    ignore (Vdev.await (Io_queue.Join [ rt; wt ]));
    t.map.(chunk) <- dst;
    t.map.(dead) <- src;
    (try write_map ?now t
     with e ->
       t.map.(chunk) <- src;
       t.map.(dead) <- dst;
       raise e);
    (match phys_tier t dst with
    | Slow -> t.demotions <- t.demotions + 1
    | Fast -> t.promotions <- t.promotions + 1);
    true
  end

(* Reassign [chunk] to a free chunk of [target] WITHOUT copying.  Only
   valid when the chunk's contents are dead (a clean segment about to be
   rewritten from block 0): the freed source still holds stale bytes,
   which is the same hazard class as ordinary segment reuse and is
   neutralised by the summary checksum / sequence checks above. *)
let rehome ?now t ~chunk ~target =
  ensure_alive t;
  if chunk < 0 || chunk >= t.nchunks then invalid_arg "Vdev_tier.rehome";
  if phys_tier t t.map.(chunk) = target then true
  else
    match take_free t target with
    | None -> false
    | Some dst -> (
        try
          flip_and_persist ?now t ~chunk ~dst;
          true
        with e ->
          (match e with Vdev.Crashed -> () | _ -> release t dst);
          raise e)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make_t (p : plan) ~(fast : Vdev.t) ~(slow : Vdev.t) =
  {
    fast;
    slow;
    block_size = fast.Vdev.block_size;
    base = p.p_base;
    chunk_blocks = p.p_chunk_blocks;
    fast_chunks = p.p_fast_chunks;
    slow_chunks = p.p_slow_chunks;
    nchunks = p.p_nchunks;
    map_r = p.p_map_r;
    map_reserved = p.p_map_reserved;
    nblocks = p.p_nblocks;
    map = Array.make p.p_nchunks 0;
    gen = 0L;
    free_fast = [];
    free_slow = [];
    demotions = 0;
    promotions = 0;
    crash_countdown = None;
    crashed = false;
  }

let format ~base ~chunk_blocks ~fast ~slow =
  let p = plan ~base ~chunk_blocks ~fast ~slow in
  let t = make_t p ~fast ~slow in
  (* Initial placement: the write head's worth of logical chunks on the
     fast tier, the rest on slow, one free physical chunk per tier. *)
  for c = 0 to t.nchunks - 1 do
    t.map.(c) <-
      (if c < t.fast_chunks - 1 then c else t.fast_chunks + (c - (t.fast_chunks - 1)))
  done;
  rebuild_free t;
  Vdev.write_blocks t.fast 0 (superblock_bytes t);
  t.gen <- 0L;
  write_map t;
  t

let load ~(fast : Vdev.t) ~(slow : Vdev.t) =
  if fast.Vdev.block_size <> slow.Vdev.block_size then
    invalid_arg "Vdev_tier.load: children disagree on block size";
  let sb = Vdev.read_block fast 0 in
  let c = Codec.reader sb in
  let stored = Codec.get_u32 c in
  let m = Codec.get_u32 c in
  let computed = Int32.to_int (Checksum.adler32 ~pos:8 sb) land 0xffff_ffff in
  if m <> magic then failwith "Vdev_tier.load: bad magic (not a tiered volume)";
  if stored <> computed then failwith "Vdev_tier.load: superblock checksum";
  let v = Codec.get_u32 c in
  if v <> version then
    failwith (Printf.sprintf "Vdev_tier.load: version %d (want %d)" v version);
  let base = Codec.get_u32 c in
  let chunk_blocks = Codec.get_u32 c in
  let nchunks = Codec.get_u32 c in
  let fast_chunks = Codec.get_u32 c in
  let slow_chunks = Codec.get_u32 c in
  let map_r = Codec.get_u32 c in
  let p = plan ~base ~chunk_blocks ~fast ~slow in
  if
    p.p_fast_chunks <> fast_chunks || p.p_slow_chunks <> slow_chunks
    || p.p_nchunks <> nchunks || p.p_map_r <> map_r
  then failwith "Vdev_tier.load: geometry does not match the children";
  let t = make_t p ~fast ~slow in
  reload_map t;
  t

(* ------------------------------------------------------------------ *)
(* Verification (fsck)                                                 *)
(* ------------------------------------------------------------------ *)

let verify t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (let sb = Vdev.read_block t.fast 0 in
   let c = Codec.reader sb in
   let stored = Codec.get_u32 c in
   let m = Codec.get_u32 c in
   let computed = Int32.to_int (Checksum.adler32 ~pos:8 sb) land 0xffff_ffff in
   if m <> magic then err "tier superblock: bad magic"
   else if stored <> computed then err "tier superblock: bad checksum"
   else begin
     let v = Codec.get_u32 c in
     let base = Codec.get_u32 c in
     let cb = Codec.get_u32 c in
     let nc = Codec.get_u32 c in
     if v <> version || base <> t.base || cb <> t.chunk_blocks || nc <> t.nchunks
     then err "tier superblock: geometry mismatch"
   end);
  (match read_map_regions t with
  | None, None -> err "tier map: no valid region"
  | ra, rb -> (
      let gen, map =
        match (ra, rb) with
        | Some (ga, ma), Some (gb, mb) -> if ga >= gb then (ga, ma) else (gb, mb)
        | Some m, None | None, Some m -> m
        | None, None -> assert false
      in
      if gen <> t.gen then
        err "tier map: durable generation %Ld <> in-memory %Ld" gen t.gen;
      if map <> t.map then err "tier map: durable placement <> in-memory";
      (* decode_map already guarantees range and injectivity; check the
         free pool is exactly the complement, split by tier. *)
      let total = t.fast_chunks + t.slow_chunks in
      let used = Array.make total false in
      Array.iter (fun p -> used.(p) <- true) t.map;
      List.iter
        (fun p ->
          if p < 0 || p >= t.fast_chunks || used.(p) then
            err "tier free pool: bad fast entry %d" p)
        t.free_fast;
      List.iter
        (fun p ->
          if p < t.fast_chunks || p >= total || used.(p) then
            err "tier free pool: bad slow entry %d" p)
        t.free_slow;
      let free = List.length t.free_fast + List.length t.free_slow in
      let unused = ref 0 in
      Array.iter (fun u -> if not u then incr unused) used;
      if free <> !unused then
        err "tier free pool: %d entries, %d unmapped chunks" free !unused));
  List.rev !errors

(* ------------------------------------------------------------------ *)
(* The exported vdev                                                   *)
(* ------------------------------------------------------------------ *)

let stats t = Io_stats.merge (Vdev.stats t.fast) (Vdev.stats t.slow)

let vdev ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "tier(%s+%s)" t.fast.Vdev.name t.slow.Vdev.name
  in
  {
    Vdev.name;
    block_size = t.block_size;
    nblocks = t.nblocks;
    read_blocks = (fun addr n -> snd (submit_read t addr n));
    write_blocks = (fun addr b -> ignore (submit_write t addr b));
    zero_blocks = (fun addr n -> zero_blocks t addr n);
    submit_read = (fun ?now addr n -> submit_read ?now t addr n);
    submit_write = (fun ?now addr b -> submit_write ?now t addr b);
    drain =
      (fun () -> Float.max (Vdev.drain t.fast) (Vdev.drain t.slow));
    pump = (fun ~now -> Vdev.pump t.fast ~now @ Vdev.pump t.slow ~now);
    outstanding_in =
      (fun ~lo ~hi ->
        Vdev.outstanding_in t.fast ~lo ~hi + Vdev.outstanding_in t.slow ~lo ~hi);
    set_mode =
      (fun m ->
        Vdev.set_mode t.fast m;
        Vdev.set_mode t.slow m);
    get_mode = (fun () -> Vdev.get_mode t.fast);
    stats = (fun () -> stats t);
    plan_crash =
      (fun ~after_blocks ->
        assert (after_blocks >= 0);
        t.crash_countdown <- Some after_blocks);
    cancel_crash = (fun () -> t.crash_countdown <- None);
    is_crashed =
      (fun () ->
        t.crashed || Vdev.is_crashed t.fast || Vdev.is_crashed t.slow);
    reboot =
      (fun () ->
        t.crashed <- false;
        t.crash_countdown <- None;
        Vdev.reboot t.fast;
        Vdev.reboot t.slow;
        reload_map t);
  }

let register_metrics ?(prefix = "tier") m t =
  Vdev.register_metrics ~prefix:(prefix ^ ".fast") m t.fast;
  Vdev.register_metrics ~prefix:(prefix ^ ".slow") m t.slow;
  let g name f = Lfs_obs.Metrics.gauge_fn m (prefix ^ name) f in
  g ".fast.segs" (fun () -> float_of_int (count_chunks t ~tier:Fast));
  g ".fast.free" (fun () -> float_of_int (free_chunks t ~tier:Fast));
  g ".slow.segs" (fun () -> float_of_int (count_chunks t ~tier:Slow));
  g ".slow.free" (fun () -> float_of_int (free_chunks t ~tier:Slow));
  g ".demotions" (fun () -> float_of_int t.demotions);
  g ".promotions" (fun () -> float_of_int t.promotions)
