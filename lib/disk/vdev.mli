(** A first-class block-device interface.

    Everything above the device layer ({!Lfs_core}, {!Lfs_ffs}, the
    benchmarks) programs against this record of operations instead of
    the concrete {!Disk} simulator, so devices compose: a file system
    can run over a plain disk, a RAID-0 stripe ({!Vdev_stripe}), a
    block cache ({!Vdev_cache}), a tracing shim ({!Vdev_trace}), or any
    stack of them.

    Semantics mirror {!Disk}: multi-block transfers are contiguous and
    charged as a single IO where the backing allows it, [zero_blocks]
    is free (mkfs), and the crash plumbing arms a torn-write power cut
    after which every IO raises {!Crashed} until [reboot]. *)

type t = {
  name : string;  (** for traces and error messages, e.g. ["disk"], ["stripe(4)"] *)
  block_size : int;
  nblocks : int;
  read_blocks : int -> int -> bytes;
      (** [read_blocks addr n]: [n] contiguous blocks starting at [addr]. *)
  write_blocks : int -> bytes -> unit;
      (** [write_blocks addr b]: [Bytes.length b / block_size] contiguous
          blocks; length must be a positive multiple of [block_size]. *)
  zero_blocks : int -> int -> unit;
      (** Clear blocks without charging modelled IO time. *)
  stats : unit -> Io_stats.t;
      (** Cumulative statistics of the device (a live view for single
          devices; an aggregated snapshot for composites). *)
  plan_crash : after_blocks:int -> unit;
  cancel_crash : unit -> unit;
  is_crashed : unit -> bool;
  reboot : unit -> unit;
}

exception Crashed
(** Equal to {!Disk.Crashed}: raised by any layer once a planned crash
    has triggered, whichever device in the stack it was armed on. *)

val of_disk : Disk.t -> t
(** The canonical implementation: expose a simulated {!Disk} through the
    interface.  All operations delegate 1:1. *)

(** Convenience wrappers (derived from the record's fields). *)

val block_size : t -> int
val nblocks : t -> int

val read_block : t -> int -> bytes
(** [read_block v addr] = [v.read_blocks addr 1]. *)

val write_block : t -> int -> bytes -> unit
(** Writes exactly one block; raises [Invalid_argument] on a length
    mismatch. *)

val read_blocks : t -> int -> int -> bytes
val write_blocks : t -> int -> bytes -> unit
val zero_blocks : t -> int -> int -> unit
val stats : t -> Io_stats.t
val plan_crash : t -> after_blocks:int -> unit
val cancel_crash : t -> unit
val is_crashed : t -> bool
val reboot : t -> unit

val register_metrics : ?prefix:string -> Lfs_obs.Metrics.t -> t -> unit
(** Register callback gauges [<prefix>.reads], [.writes], [.blocks_read],
    [.blocks_written], [.seeks] and [.busy_s], all backed by the live
    {!stats} of this layer.  [prefix] defaults to ["vdev." ^ name].
    Works on any layer of a stack — register each wrapper to see per-layer
    IO in one {!Lfs_obs.Metrics} registry. *)
