(** A first-class block-device interface.

    Everything above the device layer ({!Lfs_core}, {!Lfs_ffs}, the
    benchmarks) programs against this record of operations instead of
    the concrete {!Disk} simulator, so devices compose: a file system
    can run over a plain disk, a RAID-0 stripe ({!Vdev_stripe}), a
    block cache ({!Vdev_cache}), a tracing shim ({!Vdev_trace}), or any
    stack of them.

    IO has two faces.  The synchronous [read_blocks]/[write_blocks]/
    [zero_blocks] are thin submit-then-complete wrappers: in the default
    [Direct] mode every transfer is serviced at submit time, so existing
    call sites behave exactly as before.  The tagged
    [submit_read]/[submit_write] expose the time plane: each leaf
    transfer takes a tag on its device's {!Io_queue}, a C-LOOK elevator
    orders outstanding requests, and tickets resolve at the modelled
    completion time.  Switching a stack to [Queued] ({!set_mode}) makes
    the synchronous wrappers submit without waiting, so callers overlap
    transfers and settle at barriers ({!drain}, {!await}).

    Crash plumbing arms a torn-write power cut after which every IO
    raises {!Crashed} until [reboot]; countdowns are consumed at submit
    time in submission order, independent of queueing. *)

type mode = Io_queue.mode = Direct | Queued of (unit -> float)

type t = {
  name : string;  (** for traces and error messages, e.g. ["disk"], ["stripe(4)"] *)
  block_size : int;
  nblocks : int;
  read_blocks : int -> int -> bytes;
      (** [read_blocks addr n]: [n] contiguous blocks starting at [addr]. *)
  write_blocks : int -> bytes -> unit;
      (** [write_blocks addr b]: [Bytes.length b / block_size] contiguous
          blocks; length must be a positive multiple of [block_size]. *)
  zero_blocks : int -> int -> unit;
      (** Write zeros: charged and crash-checked like [write_blocks]. *)
  submit_read : ?now:float -> int -> int -> Io_queue.ticket * bytes;
      (** Tagged read: data is produced at submit time, the ticket
          resolves at the modelled completion. *)
  submit_write : ?now:float -> int -> bytes -> Io_queue.ticket;
      (** Tagged write: contents (and any armed crash) land at submit
          time, the ticket resolves at the modelled completion. *)
  drain : unit -> float;
      (** Barrier: service every outstanding request on every leaf;
          returns the latest completion time. *)
  pump : now:float -> (int * float) list;
      (** Event-driven servicing; see {!Io_queue.pump}.  Composites
          concatenate their children's pumps in child order. *)
  outstanding_in : lo:int -> hi:int -> int;
      (** Not-yet-serviced leaf requests with tag in [\[lo, hi)]. *)
  set_mode : mode -> unit;  (** Applied to every leaf device of the stack. *)
  get_mode : unit -> mode;
  stats : unit -> Io_stats.t;
      (** Cumulative statistics of the device (a live view for single
          devices; an aggregated snapshot for composites). *)
  plan_crash : after_blocks:int -> unit;
  cancel_crash : unit -> unit;
  is_crashed : unit -> bool;
  reboot : unit -> unit;
}

exception Crashed
(** Equal to {!Disk.Crashed}: raised by any layer once a planned crash
    has triggered, whichever device in the stack it was armed on. *)

val of_disk : Disk.t -> t
(** The canonical implementation: expose a simulated {!Disk} through the
    interface.  All operations delegate 1:1. *)

(** Convenience wrappers (derived from the record's fields). *)

val block_size : t -> int
val nblocks : t -> int

val read_block : t -> int -> bytes
(** [read_block v addr] = [v.read_blocks addr 1]. *)

val write_block : t -> int -> bytes -> unit
(** Writes exactly one block; raises [Invalid_argument] on a length
    mismatch. *)

val read_blocks : t -> int -> int -> bytes
(** Validates the result length against [n * block_size] so a
    misbehaving compositor fails loudly at the boundary. *)

val write_blocks : t -> int -> bytes -> unit
val zero_blocks : t -> int -> int -> unit

val submit_read : ?now:float -> t -> int -> int -> Io_queue.ticket * bytes
(** Validated like {!read_blocks}. *)

val submit_write : ?now:float -> t -> int -> bytes -> Io_queue.ticket

val await : Io_queue.ticket -> float
(** Re-export of {!Io_queue.await}: force service of everything the
    ticket covers and return an upper bound on its completion time. *)

val drain : t -> float
val pump : t -> now:float -> (int * float) list
val outstanding_in : t -> lo:int -> hi:int -> int
val set_mode : t -> mode -> unit
val get_mode : t -> mode

val next_tag : unit -> int
(** Re-export of {!Io_queue.next_tag}: bracket a block of work with two
    reads to learn the tag range of every leaf transfer it submitted. *)

val stats : t -> Io_stats.t
val plan_crash : t -> after_blocks:int -> unit
val cancel_crash : t -> unit
val is_crashed : t -> bool
val reboot : t -> unit

val register_metrics : ?prefix:string -> Lfs_obs.Metrics.t -> t -> unit
(** Register callback gauges [<prefix>.reads], [.writes], [.blocks_read],
    [.blocks_written], [.seeks], [.busy_s], [.queue_wait_s] and
    [.max_queue_depth], all backed by the live {!stats} of this layer.
    [prefix] defaults to ["vdev." ^ name].  Works on any layer of a
    stack — register each wrapper to see per-layer IO in one
    {!Lfs_obs.Metrics} registry. *)
