(** Tiered block device: one address space over a fast and a slow child.

    The paper's Section 3.5 observation — cold segments decay slowest,
    so they are the best candidates to move out of the cleaner's way —
    becomes a capacity/cost win when "out of the way" means a slower,
    cheaper device (LogBase, PAPERS.md).  [Vdev_tier] composes two
    children with different timing models into one exported block space:

    - a {e pinned prefix} [\[0, base)] that always lives on the fast
      child (the FS superblock and checkpoint regions, which the write
      path touches constantly), and
    - [nchunks] fixed-size {e chunks} (sized to one FS segment) that a
      persistent placement map assigns to physical chunks on either
      child.

    The map is crash-consistent in the style of the FS checkpoint: two
    generation-stamped, checksummed regions on the fast child written
    alternately; {!load} and reboot take the highest valid generation.
    {!migrate} orders copy-completion before the map flip and the map
    flip before freeing the source, so a power cut at any block never
    leaves the surviving map pointing at a lost copy.

    Two physical chunks float outside the logical space as a free pool,
    giving migration somewhere to copy without double-buffering whole
    tiers.  When the slow tier's pool is empty, demotion simply blocks
    (returns [false]) until a slow chunk is freed — e.g. by {!rehome},
    which the FS uses to recycle a cleaned (dead) slow chunk back under
    the write head without paying for a copy. *)

type t

type tier = Fast | Slow

val tier_name : tier -> string

(** Geometry planning, exposed so callers (e.g. [Spec]) can solve the
    fixpoint between the FS layout's metadata reservation and the
    exported size before formatting. *)
type plan = private {
  p_base : int;
  p_chunk_blocks : int;
  p_fast_chunks : int;
  p_slow_chunks : int;
  p_nchunks : int;
  p_map_r : int;
  p_map_reserved : int;
  p_nblocks : int;  (** exported block count *)
}

val plan : base:int -> chunk_blocks:int -> fast:Vdev.t -> slow:Vdev.t -> plan
(** Raises [Invalid_argument] if the children disagree on block size or
    are too small to hold at least one logical chunk plus the free
    pool. *)

val format : base:int -> chunk_blocks:int -> fast:Vdev.t -> slow:Vdev.t -> t
(** Write a fresh tier superblock and initial placement map: the first
    [fast_chunks - 1] logical chunks on the fast tier, the rest on slow,
    one free physical chunk per tier. *)

val load : fast:Vdev.t -> slow:Vdev.t -> t
(** Recover the placement map from the fast child (highest valid
    generation wins).  Fails if the superblock is missing, corrupt, or
    disagrees with the children's geometry. *)

val vdev : ?name:string -> t -> Vdev.t
(** The exported device.  Reads and writes fan out to the child that
    owns each extent; tickets join across children so queued IO
    completes at the max child completion.  [reboot] reloads the
    placement map from disk, discarding any un-persisted flip. *)

(** {1 Geometry and placement queries} *)

val base : t -> int
val nchunks : t -> int
val chunk_blocks : t -> int
val exported_blocks : t -> int

val chunk_tier : t -> int -> tier
(** Current tier of logical chunk [c] (exported blocks
    [\[base + c*chunk_blocks, base + (c+1)*chunk_blocks)]). *)

val count_chunks : t -> tier:tier -> int
(** Logical chunks currently placed on [tier]. *)

val free_chunks : t -> tier:tier -> int
(** Free physical chunks on [tier] — migration capacity. *)

val demotions : t -> int
(** Completed {!migrate}s to [Slow]. *)

val promotions : t -> int
(** Completed {!migrate}s to [Fast]. *)

(** {1 Migration} *)

val migrate : ?now:float -> t -> chunk:int -> target:tier -> bool
(** Copy [chunk] to a free physical chunk of [target] and durably flip
    the placement map; the source rejoins the free pool only after the
    flip is durable.  Returns [false] when [target] has no free chunk
    (the caller should retry after freeing one), [true] on success or
    when the chunk is already on [target].  May raise {!Vdev.Crashed}
    mid-copy or mid-flip; after reboot the durable map still points at
    an intact copy. *)

val swap : ?now:float -> t -> chunk:int -> dead:int -> bool
(** Exchange the physical chunks of [chunk] and [dead]: copy [chunk]'s
    bytes into [dead]'s physical chunk, then atomically (one map write)
    point [chunk] there and [dead] at [chunk]'s old physical chunk.
    Only valid when [dead]'s contents are dead — a clean segment —
    because it ends up holding stale bytes ({!rehome}'s hazard class).
    This is how migration scales past the two-chunk free pool: any
    clean segment on the target tier can donate its physical chunk, and
    the donor simultaneously surfaces on the source tier as a clean
    segment for the write head.  Returns [false] when both chunks
    already sit on the same tier (nothing to exchange).  Same
    crash contract as {!migrate}. *)

val rehome : ?now:float -> t -> chunk:int -> target:tier -> bool
(** Reassign [chunk] to a free chunk of [target] {e without} copying.
    Only valid when the chunk's contents are dead — a clean segment
    about to be rewritten from its first block — because the newly
    assigned chunk holds stale bytes (the same hazard class as ordinary
    segment reuse, caught by summary checksums).  Same return/crash
    contract as {!migrate}. *)

(** {1 Integrity and observability} *)

val verify : t -> string list
(** Fsck hook: re-read the superblock and both map regions and check
    checksums, geometry, generation, in-memory-vs-durable agreement,
    and that the free pool is exactly the unmapped complement.  Empty
    list = consistent. *)

val register_metrics : ?prefix:string -> Lfs_obs.Metrics.t -> t -> unit
(** Per-child IO metrics under [<prefix>.fast.*] / [<prefix>.slow.*]
    (busy_s, blocks, seeks, queue depth — see {!Vdev.register_metrics})
    plus placement gauges [.{fast,slow}.{segs,free}] and cumulative
    [.demotions] / [.promotions].  [prefix] defaults to ["tier"]. *)
