type t = {
  geometry : Geometry.t;
  data : bytes array;
  stats : Io_stats.t;
  queue : Io_queue.t;
  mutable mode : Io_queue.mode;
  mutable crash_countdown : int option;  (* blocks until power cut *)
  mutable crashed : bool;
  mutable pending : (int * int * bytes) list;
      (* queued-mode writes submitted but not yet committed by the
         elevator: (seq, addr, payload) in submission order.  Reads
         overlay these so the FS observes its own writes; a reboot
         drops them. *)
  mutable write_seq_counter : int;
  write_seq : int array;
      (* per block, the submission seq of the newest committed write:
         content is defined by submission order even though the elevator
         commits out of order, so a commit must not clobber a block a
         later-submitted write has already retired. *)
}

exception Crashed

(* Modelled duration of one transfer: reposition (none when the head is
   already at [addr]), transfer at media bandwidth, fixed per-IO
   overhead.  A cold head ([-1], fresh or rebooted device) pays an
   average-ish seek of a third of the disk. *)
let service_fn geometry ~head ~addr ~nblocks =
  let seeked = addr <> head in
  let reposition =
    if not seeked then 0.0
    else begin
      let distance_blocks =
        if head < 0 then geometry.Geometry.blocks / 3 else abs (addr - head)
      in
      Geometry.seek_time geometry ~distance_blocks
      +. geometry.Geometry.rotational_latency_s
    end
  in
  let transfer =
    if geometry.Geometry.bandwidth_bytes_per_s = infinity then 0.0
    else
      float_of_int (nblocks * geometry.Geometry.block_size)
      /. geometry.Geometry.bandwidth_bytes_per_s
  in
  (reposition +. transfer +. geometry.Geometry.per_io_overhead_s, seeked)

let create geometry =
  let stats = Io_stats.create () in
  {
    geometry;
    data = Array.init geometry.Geometry.blocks (fun _ -> Bytes.make geometry.Geometry.block_size '\000');
    stats;
    queue = Io_queue.create ~service:(service_fn geometry) ~stats;
    mode = Io_queue.Direct;
    crash_countdown = None;
    crashed = false;
    pending = [];
    write_seq_counter = 0;
    write_seq = Array.make geometry.Geometry.blocks 0;
  }

let geometry t = t.geometry
let block_size t = t.geometry.Geometry.block_size
let nblocks t = t.geometry.Geometry.blocks
let stats t = t.stats
(* Entering queued mode re-bases the idle device into the caller's clock
   domain: the horizon accumulated by Direct-mode service (total busy
   time since creation) is history, not future busy time, so the first
   queued request must not wait behind it. *)
let set_mode t m =
  (match m with
  | Io_queue.Queued clock when Io_queue.depth t.queue = 0 ->
      Io_queue.set_horizon t.queue (clock ())
  | _ -> ());
  t.mode <- m

let get_mode t = t.mode

let check_range t addr n what =
  if addr < 0 || n < 0 || addr + n > nblocks t then
    invalid_arg
      (Printf.sprintf "Disk.%s: blocks [%d, %d) out of range [0, %d)" what addr
         (addr + n) (nblocks t))

(* Enqueue the transfer on the time plane.  [Direct] services it on the
   spot — submission order, zero wait, the historical synchronous
   timings; [Queued] leaves it for await/drain/pump. *)
let enqueue ?on_commit t ?now ~addr ~n () =
  let now =
    match now with
    | Some s -> s
    | None -> (
        match t.mode with
        | Io_queue.Direct -> Io_queue.horizon t.queue
        | Io_queue.Queued clock -> clock ())
  in
  let tag = Io_queue.submit ?on_commit t.queue ~now ~addr ~nblocks:n in
  (match t.mode with
  | Io_queue.Direct -> ignore (Io_queue.await (Io_queue.Tag (t.queue, tag)))
  | Io_queue.Queued _ -> ());
  Io_queue.Tag (t.queue, tag)

let ensure_alive t = if t.crashed then raise Crashed

(* Overlay not-yet-committed queued writes, oldest first, so reads are
   coherent with the submission order the FS observed.  A block whose
   committed content is already newer (a later-submitted write the
   elevator retired first) keeps the committed data. *)
let overlay_pending t ~addr ~n out =
  let bs = block_size t in
  List.iter
    (fun (seq, waddr, payload) ->
      let wn = Bytes.length payload / bs in
      let lo = max addr waddr and hi = min (addr + n) (waddr + wn) in
      for blk = lo to hi - 1 do
        if t.write_seq.(blk) <= seq then
          Bytes.blit payload ((blk - waddr) * bs) out ((blk - addr) * bs) bs
      done)
    t.pending

let submit_read ?now t addr n =
  ensure_alive t;
  check_range t addr n "read_blocks";
  t.stats.Io_stats.reads <- t.stats.Io_stats.reads + 1;
  t.stats.Io_stats.blocks_read <- t.stats.Io_stats.blocks_read + n;
  let bs = block_size t in
  let out = Bytes.create (n * bs) in
  for i = 0 to n - 1 do
    Bytes.blit t.data.(addr + i) 0 out (i * bs) bs
  done;
  if t.pending <> [] then overlay_pending t ~addr ~n out;
  (enqueue t ?now ~addr ~n (), out)

let read_blocks t addr n = snd (submit_read t addr n)
let read_block t addr = read_blocks t addr 1

(* How many of the next [n] blocks may still be persisted before the
   armed crash triggers.  Returns [n] when no crash is armed. *)
let writable_prefix t n =
  match t.crash_countdown with
  | None -> n
  | Some k -> min k n

let consume_countdown t n =
  match t.crash_countdown with
  | None -> ()
  | Some k ->
      let k = k - n in
      if k <= 0 then begin
        t.crash_countdown <- None;
        t.crashed <- true
      end
      else t.crash_countdown <- Some k

(* Land one write on the medium: persist the writable prefix, burn the
   crash countdown, raise if it tripped.  In [Direct] mode this runs at
   submit time (submission order == service order); in [Queued] mode it
   is deferred into the elevator's commit, so countdowns burn — and
   crashes tear — in the order the device actually retires writes. *)
let perform_write t ~seq addr payload =
  if t.crashed then raise Crashed;
  let bs = block_size t in
  let n = Bytes.length payload / bs in
  let persist = writable_prefix t n in
  for i = 0 to persist - 1 do
    if t.write_seq.(addr + i) <= seq then begin
      Bytes.blit payload (i * bs) t.data.(addr + i) 0 bs;
      t.write_seq.(addr + i) <- seq
    end
  done;
  consume_countdown t n;
  if t.crashed then raise Crashed

let submit_write_payload ?now t addr payload =
  let bs = block_size t in
  let n = Bytes.length payload / bs in
  t.write_seq_counter <- t.write_seq_counter + 1;
  let seq = t.write_seq_counter in
  match t.mode with
  | Io_queue.Direct ->
      let tk = enqueue t ?now ~addr ~n () in
      perform_write t ~seq addr payload;
      tk
  | Io_queue.Queued _ ->
      let payload = Bytes.copy payload in
      let cell = (seq, addr, payload) in
      t.pending <- t.pending @ [ cell ];
      enqueue t ?now ~addr ~n ()
        ~on_commit:(fun () ->
          t.pending <- List.filter (fun c -> c != cell) t.pending;
          perform_write t ~seq addr payload)

let submit_write ?now t addr b =
  ensure_alive t;
  let bs = block_size t in
  if Bytes.length b mod bs <> 0 then
    invalid_arg "Disk.write_blocks: buffer is not a whole number of blocks";
  let n = Bytes.length b / bs in
  check_range t addr n "write_blocks";
  t.stats.Io_stats.writes <- t.stats.Io_stats.writes + 1;
  t.stats.Io_stats.blocks_written <- t.stats.Io_stats.blocks_written + n;
  submit_write_payload ?now t addr b

let write_blocks t addr b = ignore (submit_write t addr b)

let write_block t addr b =
  if Bytes.length b <> block_size t then
    invalid_arg "Disk.write_block: buffer is not exactly one block";
  write_blocks t addr b

(* Zeroing is a write of zeros: it charges modelled time, counts in the
   stats, and respects an armed crash (a torn zero clears only its
   writable prefix). *)
let zero_blocks t addr n =
  ensure_alive t;
  check_range t addr n "zero_blocks";
  t.stats.Io_stats.writes <- t.stats.Io_stats.writes + 1;
  t.stats.Io_stats.blocks_written <- t.stats.Io_stats.blocks_written + n;
  ignore (submit_write_payload t addr (Bytes.make (n * block_size t) '\000'))

let drain t = Io_queue.drain t.queue
let pump t ~now = Io_queue.pump t.queue ~now
let outstanding_in t ~lo ~hi = Io_queue.outstanding_in t.queue ~lo ~hi
let queue_depth t = Io_queue.depth t.queue

let plan_crash t ~after_blocks =
  assert (after_blocks >= 0);
  t.crash_countdown <- Some after_blocks

let cancel_crash t = t.crash_countdown <- None
let is_crashed t = t.crashed

let reboot t =
  t.crashed <- false;
  t.crash_countdown <- None;
  (* Submitted-but-uncommitted writes die with the power: only what the
     elevator actually retired is on the medium. *)
  t.pending <- [];
  Io_queue.reset t.queue;
  Io_queue.set_head t.queue (-1)

let snapshot t =
  let stats = Io_stats.copy t.stats in
  let queue = Io_queue.create ~service:(service_fn t.geometry) ~stats in
  Io_queue.set_head queue (Io_queue.head t.queue);
  Io_queue.set_horizon queue (Io_queue.horizon t.queue);
  {
    geometry = t.geometry;
    data = Array.map Bytes.copy t.data;
    stats;
    queue;
    mode = Io_queue.Direct;
    crash_countdown = t.crash_countdown;
    crashed = t.crashed;
    pending = [];
    write_seq_counter = 0;
    write_seq = Array.make t.geometry.Geometry.blocks 0;
  }

let restore t ~from =
  if t.geometry <> from.geometry then
    invalid_arg "Disk.restore: geometry mismatch";
  Array.iteri (fun i b -> Bytes.blit b 0 t.data.(i) 0 (Bytes.length b)) from.data;
  let s = t.stats and s' = from.stats in
  s.Io_stats.reads <- s'.Io_stats.reads;
  s.Io_stats.writes <- s'.Io_stats.writes;
  s.Io_stats.blocks_read <- s'.Io_stats.blocks_read;
  s.Io_stats.blocks_written <- s'.Io_stats.blocks_written;
  s.Io_stats.seeks <- s'.Io_stats.seeks;
  s.Io_stats.busy_s <- s'.Io_stats.busy_s;
  s.Io_stats.queue_wait_s <- s'.Io_stats.queue_wait_s;
  s.Io_stats.max_queue_depth <- s'.Io_stats.max_queue_depth;
  (* Pending time-plane requests do not survive a restore. *)
  t.pending <- [];
  Array.fill t.write_seq 0 (Array.length t.write_seq) 0;
  t.write_seq_counter <- 0;
  Io_queue.reset t.queue;
  Io_queue.set_head t.queue (Io_queue.head from.queue);
  Io_queue.set_horizon t.queue (Io_queue.horizon from.queue);
  t.crash_countdown <- from.crash_countdown;
  t.crashed <- from.crashed

let save_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Array.iter (fun b -> output_bytes oc b) t.data)

let load_file geometry path =
  let expected = Geometry.capacity_bytes geometry in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      if in_channel_length ic <> expected then
        invalid_arg
          (Printf.sprintf "Disk.load_file: %s is %d bytes, geometry wants %d"
             path (in_channel_length ic) expected);
      let t = create geometry in
      Array.iter (fun b -> really_input ic b 0 (Bytes.length b)) t.data;
      t)
