(** Cumulative IO accounting for a block device.

    Time is the modelled disk busy time; callers compare it against a CPU
    model to derive elapsed time (Section 5.1's "disk was 17% busy"
    analysis).  [queue_wait_s] and [max_queue_depth] describe the request
    queue in front of the device: how long submits waited for service and
    the deepest the queue ever got (1 under synchronous callers). *)

type t = {
  mutable reads : int;           (** read operations *)
  mutable writes : int;          (** write operations *)
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable seeks : int;           (** non-sequential repositionings *)
  mutable busy_s : float;        (** total modelled device busy time *)
  mutable queue_wait_s : float;  (** total time requests waited for service *)
  mutable max_queue_depth : int; (** high watermark of outstanding requests *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff now before] is the per-field difference: activity since
    [before] was captured with {!copy}.  [max_queue_depth], a watermark,
    carries [now]'s value. *)

val merge : t -> t -> t
(** Per-field sum: the combined activity of two devices (busy time is a
    sum of per-spindle busy times, not wall-clock; [max_queue_depth] is
    the max of the two watermarks). *)

val bytes_read : block_size:int -> t -> int
val bytes_written : block_size:int -> t -> int
val total_ios : t -> int

val pp : Format.formatter -> t -> unit
