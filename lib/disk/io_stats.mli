(** Cumulative IO accounting for a block device.

    Time is the modelled disk busy time; callers compare it against a CPU
    model to derive elapsed time (Section 5.1's "disk was 17% busy"
    analysis). *)

type t = {
  mutable reads : int;           (** read operations *)
  mutable writes : int;          (** write operations *)
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable seeks : int;           (** non-sequential repositionings *)
  mutable busy_s : float;        (** total modelled device busy time *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff now before] is the per-field difference: activity since
    [before] was captured with {!copy}. *)

val merge : t -> t -> t
(** Per-field sum: the combined activity of two devices (busy time is a
    sum of per-spindle busy times, not wall-clock). *)

val bytes_read : block_size:int -> t -> int
val bytes_written : block_size:int -> t -> int
val total_ios : t -> int

val pp : Format.formatter -> t -> unit
