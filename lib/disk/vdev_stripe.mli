(** RAID-0: block-interleaved striping across N child devices.

    Global block [a] lives on child [a mod n] at child block [a / n], so
    a large contiguous transfer — an LFS segment write — splits into one
    contiguous transfer per child and the modelled bandwidth scales with
    the spindle count (the paper's bandwidth-limited regime, Section 1;
    cf. Dagenais's RAID striping study).

    [stats] returns the children's {!Io_stats} aggregated with
    {!Io_stats.merge}; busy time is therefore the *sum* of per-spindle
    busy times, while the modelled elapsed time of a balanced workload is
    the per-child maximum (query the children directly for that).

    Crash plumbing: [plan_crash] arms a countdown at stripe level, in
    global blocks, with the same torn-write prefix semantics as
    {!Disk.plan_crash}.  Crashes armed directly on a child also surface
    (the child raises); [is_crashed] reports either, and [reboot] clears
    the stripe and reboots every child. *)

val create : ?name:string -> Vdev.t array -> Vdev.t
(** [create children] stripes over the children, which must be non-empty
    and share a block size.  Capacity is [n * min child nblocks];
    trailing blocks of larger children are unused. *)
