(** An observability shim: logs every operation crossing it, with the
    modelled latency each one cost the layer below.

    Wrap any vdev to get a bounded per-layer op log plus running
    counters — useful for debugging device stacks (what did the cleaner
    actually read?) and as the hook point for future tracing work.  The
    shim is transparent: data, stats and crash semantics are exactly
    those of the wrapped device, and operations that raise (e.g. a torn
    write hitting {!Vdev.Crashed}) are still recorded before the
    exception propagates. *)

type op = Read | Write | Zero

type entry = {
  op : op;
  addr : int;
  nblocks : int;
  busy_s : float;  (** modelled device time this operation added below *)
}

type t

val create : ?name:string -> ?capacity:int -> Vdev.t -> t
(** [capacity] bounds the retained log (default 1024 entries, oldest
    dropped first); counters are never dropped. *)

val vdev : t -> Vdev.t

val entries : t -> entry list
(** Retained log, oldest first. *)

val reads : t -> int
val writes : t -> int
val zeros : t -> int

val traced_busy_s : t -> float
(** Sum of [busy_s] over every operation ever traced. *)

val register_metrics : ?prefix:string -> Lfs_obs.Metrics.t -> t -> unit
(** Register [<prefix>.traced_{reads,writes,zeros,busy_s}] callback
    gauges; [prefix] defaults to ["vdev." ^ name]. *)

val reset : t -> unit
val pp_entry : Format.formatter -> entry -> unit
