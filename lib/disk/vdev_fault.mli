(** A fault-injecting {!Vdev} layer.

    Wraps any lower vdev and injects failures at block granularity
    according to a deterministic, PRNG-seeded plan — the seam the
    crash-point enumeration harness ([lib/crashtest]) is built on:

    - {b power cuts}: [plan_crash] arms a countdown of payload blocks;
      the write that exhausts it persists only part of itself (see
      {!mode}), the layer enters the crashed state and every subsequent
      IO raises {!Vdev.Crashed} until [reboot].  Unlike
      {!Disk.plan_crash}, the triggering write can be torn (a prefix
      survives), dropped entirely, or reordered within the transfer (an
      arbitrary subset of its blocks survives — what a disk that
      schedules sectors freely can leave behind).
    - {b bit-rot}: [rot_read]/[rot_write] corrupt one byte of a chosen
      block, either every time it is read or once as it is written —
      fodder for fsck and checkpoint/summary checksum exercises.

    All randomness (reorder subsets, rotted byte positions) comes from
    the seed given to [create], so any observed failure replays
    exactly.  The layer keeps its own write counter ({!blocks_written}),
    making it the "recording vdev" used to count a workload's crash
    points.  The crash plumbing of the wrapped {!Vdev.t} view maps to
    this layer's own plan (mode {!Torn}, matching [Disk] semantics);
    the lower device's own crash state is never touched. *)

type mode =
  | Torn  (** a prefix of the triggering write reaches the medium *)
  | Dropped  (** nothing of the triggering write reaches the medium *)
  | Reordered
      (** a pseudo-random subset of the triggering write's blocks
          reaches the medium *)

val mode_name : mode -> string

type t

val create : ?name:string -> ?seed:int -> Vdev.t -> t
(** [create lower] wraps [lower].  [seed] (default 0) drives every
    randomised fault decision. *)

val vdev : t -> Vdev.t
(** The faulting device view.  Its [plan_crash] field arms a {!Torn}
    crash on this layer. *)

val plan_crash : t -> ?mode:mode -> after_blocks:int -> unit -> unit
(** Arm a power cut after [after_blocks] more payload blocks have been
    accepted by [write_blocks].  The triggering write persists according
    to [mode] (default {!Torn}: its first [after_blocks] remaining
    blocks). *)

val cancel_crash : t -> unit
val is_crashed : t -> bool

val reboot : t -> unit
(** Clear the crashed state and disarm any plan; surviving contents are
    whatever reached the lower device.  Also reboots the lower device so
    a power cycle resets modelled head position. *)

val blocks_written : t -> int
(** Cumulative payload blocks accepted by [write_blocks] (including the
    persisted part of a triggering write); the crash-point space of a
    recorded run. *)

val rot_read : t -> addr:int -> unit
(** Corrupt one pseudo-randomly chosen byte of block [addr] in every
    subsequent read of it, until [clear_rot].  The medium itself is
    untouched. *)

val rot_write : t -> addr:int -> unit
(** Corrupt one pseudo-randomly chosen byte of block [addr] in the next
    write that covers it (the corruption reaches the medium); the plan
    entry is consumed by that write. *)

val clear_rot : t -> unit
(** Forget all planned and active bit-rot. *)

val register_metrics : ?prefix:string -> Lfs_obs.Metrics.t -> t -> unit
(** Register [<prefix>.blocks_written] (the layer's own payload counter)
    and [<prefix>.crashed] (0/1) callback gauges; [prefix] defaults to
    ["vdev." ^ name].  Combine with {!Vdev.register_metrics} on {!vdev}
    for the IO-level view. *)
