(** Per-device request queue in the modelled-time domain.

    Splits every IO into two planes.  The {e data plane} executes at
    submit time, in submission order: block contents move, crash
    countdowns tick, caches stay coherent — so torn-write enumeration
    and replay determinism are untouched by scheduling.  The {e time
    plane} is this queue: each submit takes a globally monotonic tag,
    outstanding requests are ordered by a C-LOOK elevator, and the
    device services one request at a time with
    [service start = max(previous completion, submit time)].

    In {!mode} [Direct] (the default for every device) a submit is
    serviced immediately, which reproduces the historical synchronous
    timings exactly; [Queued] defers service to {!await}, {!drain} and
    {!pump}, letting queued requests overlap. *)

type t

type ticket =
  | Done  (** completed at submit time (e.g. a cache hit) *)
  | Tag of t * int  (** one leaf transfer on one queue *)
  | Join of ticket list  (** completes when every member completes *)

type mode =
  | Direct  (** every submit is serviced immediately (synchronous timing) *)
  | Queued of (unit -> float)
      (** submits default their arrival time to the given clock and wait
          in the queue for {!await}/{!drain}/{!pump} *)

val next_tag : unit -> int
(** The tag the next submit (on any queue) will take.  Two reads around
    a block of work bracket every leaf transfer it submitted. *)

val create :
  service:(head:int -> addr:int -> nblocks:int -> float * bool) ->
  stats:Io_stats.t ->
  t
(** [service] returns the modelled duration of one transfer and whether
    it repositioned the head; the queue accumulates [busy_s], [seeks],
    [queue_wait_s] and [max_queue_depth] into [stats]. *)

val submit :
  ?on_commit:(unit -> unit) -> t -> now:float -> addr:int -> nblocks:int -> int
(** Enqueue a request that arrived at [now]; returns its tag.
    [on_commit] runs when the elevator services the request — the hook
    by which a device defers its data plane (payload persistence, crash
    countdowns) to commit order under [Queued] mode.  Exceptions raised
    by the hook (a tripped crash countdown) propagate out of whichever
    call forced the service ({!await}, {!drain} or {!pump}). *)

val await : ticket -> float
(** Force service (in elevator order) of everything the ticket covers.
    Returns an upper bound on its completion time — exact when the
    awaited request was serviced last, the queue horizon otherwise.
    [Done] yields [neg_infinity]. *)

val drain : t -> float
(** Service every outstanding request; returns the final horizon.  The
    sync-barrier primitive. *)

val pump : t -> now:float -> (int * float) list
(** If the device is idle at [now], commit the elevator's next pick.
    Returns every [(tag, finish)] committed since the last pump so the
    caller can schedule completion events. *)

val outstanding_in : t -> lo:int -> hi:int -> int
(** Number of not-yet-serviced requests with tag in [\[lo, hi)]. *)

val head : t -> int
val set_head : t -> int -> unit
val horizon : t -> float
(** Completion time of the most recently serviced request. *)

val set_horizon : t -> float -> unit
val depth : t -> int
val reset : t -> unit
(** Forget outstanding and unacknowledged requests (reboot). *)
