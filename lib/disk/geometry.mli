(** Disk geometry and performance parameters.

    The timing model charges three costs, mirroring the way the paper
    reasons about disks (Section 2.1): a seek whenever an access is not
    sequential with the previous one, half a rotation of latency after
    each seek, and transfer time proportional to bytes moved. *)

type t = {
  block_size : int;          (** bytes per block (the FS allocation unit) *)
  blocks : int;              (** total blocks on the device *)
  avg_seek_s : float;        (** average seek time, seconds *)
  rotational_latency_s : float;  (** average rotational delay, seconds *)
  bandwidth_bytes_per_s : float; (** sustained transfer bandwidth *)
  per_io_overhead_s : float;
      (** fixed controller/command overhead charged once per operation;
          this is what makes many small transfers slower than one large
          one even when they are perfectly sequential *)
}

val capacity_bytes : t -> int

val wren_iv : blocks:int -> t
(** The disk used in the paper's evaluation (Section 5.1): 1.3 MB/s
    maximum transfer bandwidth, 17.5 ms average seek, 4 KB blocks.
    Rotational latency is 8.3 ms (3600 RPM half-rotation). *)

val modern_hdd : blocks:int -> t
(** A 2020s 7200 RPM drive (200 MB/s, 4.2 ms seek) for what-if runs; the
    seek/bandwidth ratio is even more LFS-favourable than the Wren IV. *)

val flash : blocks:int -> t
(** An SSD-like fast tier for {!Vdev_tier} stacks: no rotational delay,
    near-zero repositioning cost, 500 MB/s sustained bandwidth and a
    50 us per-command overhead.  Several hundred times faster than
    {!wren_iv} per random IO, which is the timing asymmetry tiered
    placement trades on. *)

val instant : blocks:int -> t
(** Zero-cost timing, for unit tests that only care about contents. *)

val io_time : t -> seeks:int -> bytes:int -> float
(** [io_time g ~seeks ~bytes] is the modelled time to perform [seeks]
    average-cost repositionings and transfer [bytes] bytes. *)

val seek_time : t -> distance_blocks:int -> float
(** Distance-dependent seek cost: zero for a sequential access, roughly
    [0.15 * avg] for a one-cylinder hop, rising with the square root of
    the distance (the classic seek curve) so that a uniformly random
    seek averages [avg_seek_s]. *)

val pp : Format.formatter -> t -> unit
