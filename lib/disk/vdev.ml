type t = {
  name : string;
  block_size : int;
  nblocks : int;
  read_blocks : int -> int -> bytes;
  write_blocks : int -> bytes -> unit;
  zero_blocks : int -> int -> unit;
  stats : unit -> Io_stats.t;
  plan_crash : after_blocks:int -> unit;
  cancel_crash : unit -> unit;
  is_crashed : unit -> bool;
  reboot : unit -> unit;
}

exception Crashed = Disk.Crashed

let of_disk d =
  {
    name = "disk";
    block_size = Disk.block_size d;
    nblocks = Disk.nblocks d;
    read_blocks = (fun addr n -> Disk.read_blocks d addr n);
    write_blocks = (fun addr b -> Disk.write_blocks d addr b);
    zero_blocks = (fun addr n -> Disk.zero_blocks d addr n);
    stats = (fun () -> Disk.stats d);
    plan_crash = (fun ~after_blocks -> Disk.plan_crash d ~after_blocks);
    cancel_crash = (fun () -> Disk.cancel_crash d);
    is_crashed = (fun () -> Disk.is_crashed d);
    reboot = (fun () -> Disk.reboot d);
  }

let block_size v = v.block_size
let nblocks v = v.nblocks
let read_blocks v addr n = v.read_blocks addr n
let write_blocks v addr b = v.write_blocks addr b
let zero_blocks v addr n = v.zero_blocks addr n
let stats v = v.stats ()
let plan_crash v ~after_blocks = v.plan_crash ~after_blocks
let cancel_crash v = v.cancel_crash ()
let is_crashed v = v.is_crashed ()
let reboot v = v.reboot ()

let read_block v addr = v.read_blocks addr 1

let register_metrics ?prefix metrics v =
  let module M = Lfs_obs.Metrics in
  let p = match prefix with Some p -> p | None -> "vdev." ^ v.name in
  let g name f = M.gauge_fn metrics (p ^ "." ^ name) f in
  let gi name field = g name (fun () -> float_of_int (field (stats v))) in
  gi "reads" (fun s -> s.Io_stats.reads);
  gi "writes" (fun s -> s.Io_stats.writes);
  gi "blocks_read" (fun s -> s.Io_stats.blocks_read);
  gi "blocks_written" (fun s -> s.Io_stats.blocks_written);
  gi "seeks" (fun s -> s.Io_stats.seeks);
  g "busy_s" (fun () -> (stats v).Io_stats.busy_s)

let write_block v addr b =
  if Bytes.length b <> v.block_size then
    invalid_arg
      (Printf.sprintf "Vdev.write_block(%s): %d bytes, block size %d" v.name
         (Bytes.length b) v.block_size);
  v.write_blocks addr b
