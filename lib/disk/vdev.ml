type mode = Io_queue.mode = Direct | Queued of (unit -> float)

type t = {
  name : string;
  block_size : int;
  nblocks : int;
  read_blocks : int -> int -> bytes;
  write_blocks : int -> bytes -> unit;
  zero_blocks : int -> int -> unit;
  submit_read : ?now:float -> int -> int -> Io_queue.ticket * bytes;
  submit_write : ?now:float -> int -> bytes -> Io_queue.ticket;
  drain : unit -> float;
  pump : now:float -> (int * float) list;
  outstanding_in : lo:int -> hi:int -> int;
  set_mode : mode -> unit;
  get_mode : unit -> mode;
  stats : unit -> Io_stats.t;
  plan_crash : after_blocks:int -> unit;
  cancel_crash : unit -> unit;
  is_crashed : unit -> bool;
  reboot : unit -> unit;
}

exception Crashed = Disk.Crashed

let of_disk d =
  {
    name = "disk";
    block_size = Disk.block_size d;
    nblocks = Disk.nblocks d;
    read_blocks = (fun addr n -> Disk.read_blocks d addr n);
    write_blocks = (fun addr b -> Disk.write_blocks d addr b);
    zero_blocks = (fun addr n -> Disk.zero_blocks d addr n);
    submit_read = (fun ?now addr n -> Disk.submit_read ?now d addr n);
    submit_write = (fun ?now addr b -> Disk.submit_write ?now d addr b);
    drain = (fun () -> Disk.drain d);
    pump = (fun ~now -> Disk.pump d ~now);
    outstanding_in = (fun ~lo ~hi -> Disk.outstanding_in d ~lo ~hi);
    set_mode = (fun m -> Disk.set_mode d m);
    get_mode = (fun () -> Disk.get_mode d);
    stats = (fun () -> Disk.stats d);
    plan_crash = (fun ~after_blocks -> Disk.plan_crash d ~after_blocks);
    cancel_crash = (fun () -> Disk.cancel_crash d);
    is_crashed = (fun () -> Disk.is_crashed d);
    reboot = (fun () -> Disk.reboot d);
  }

let block_size v = v.block_size
let nblocks v = v.nblocks

(* A compositor returning the wrong amount of data corrupts everything
   downstream; fail loudly at the boundary instead. *)
let check_read_len v n b =
  if Bytes.length b <> n * v.block_size then
    invalid_arg
      (Printf.sprintf
         "Vdev.read_blocks(%s): %d blocks came back as %d bytes, want %d"
         v.name n (Bytes.length b) (n * v.block_size))

let read_blocks v addr n =
  let b = v.read_blocks addr n in
  check_read_len v n b;
  b

let write_blocks v addr b = v.write_blocks addr b
let zero_blocks v addr n = v.zero_blocks addr n

let submit_read ?now v addr n =
  let tk, b = v.submit_read ?now addr n in
  check_read_len v n b;
  (tk, b)

let submit_write ?now v addr b = v.submit_write ?now addr b
let await = Io_queue.await
let drain v = v.drain ()
let pump v ~now = v.pump ~now
let outstanding_in v ~lo ~hi = v.outstanding_in ~lo ~hi
let set_mode v m = v.set_mode m
let get_mode v = v.get_mode ()
let next_tag = Io_queue.next_tag
let stats v = v.stats ()
let plan_crash v ~after_blocks = v.plan_crash ~after_blocks
let cancel_crash v = v.cancel_crash ()
let is_crashed v = v.is_crashed ()
let reboot v = v.reboot ()

let read_block v addr = read_blocks v addr 1

let register_metrics ?prefix metrics v =
  let module M = Lfs_obs.Metrics in
  let p = match prefix with Some p -> p | None -> "vdev." ^ v.name in
  let g name f = M.gauge_fn metrics (p ^ "." ^ name) f in
  let gi name field = g name (fun () -> float_of_int (field (stats v))) in
  gi "reads" (fun s -> s.Io_stats.reads);
  gi "writes" (fun s -> s.Io_stats.writes);
  gi "blocks_read" (fun s -> s.Io_stats.blocks_read);
  gi "blocks_written" (fun s -> s.Io_stats.blocks_written);
  gi "seeks" (fun s -> s.Io_stats.seeks);
  g "busy_s" (fun () -> (stats v).Io_stats.busy_s);
  g "queue_wait_s" (fun () -> (stats v).Io_stats.queue_wait_s);
  gi "max_queue_depth" (fun s -> s.Io_stats.max_queue_depth)

let write_block v addr b =
  if Bytes.length b <> v.block_size then
    invalid_arg
      (Printf.sprintf "Vdev.write_block(%s): %d bytes, block size %d" v.name
         (Bytes.length b) v.block_size);
  v.write_blocks addr b
