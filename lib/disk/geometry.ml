type t = {
  block_size : int;
  blocks : int;
  avg_seek_s : float;
  rotational_latency_s : float;
  bandwidth_bytes_per_s : float;
  per_io_overhead_s : float;
}

let capacity_bytes g = g.block_size * g.blocks

let wren_iv ~blocks =
  {
    block_size = 4096;
    blocks;
    avg_seek_s = 0.0175;
    rotational_latency_s = 0.0083;
    bandwidth_bytes_per_s = 1.3e6;
    per_io_overhead_s = 0.002;
  }

let modern_hdd ~blocks =
  {
    block_size = 4096;
    blocks;
    avg_seek_s = 0.0042;
    rotational_latency_s = 0.00417;
    bandwidth_bytes_per_s = 200.0e6;
    per_io_overhead_s = 0.0001;
  }

let flash ~blocks =
  {
    block_size = 4096;
    blocks;
    avg_seek_s = 1e-5;
    rotational_latency_s = 0.0;
    bandwidth_bytes_per_s = 500.0e6;
    per_io_overhead_s = 5e-5;
  }

let instant ~blocks =
  {
    block_size = 4096;
    blocks;
    avg_seek_s = 0.0;
    rotational_latency_s = 0.0;
    bandwidth_bytes_per_s = infinity;
    per_io_overhead_s = 0.0;
  }

let seek_time g ~distance_blocks =
  if distance_blocks = 0 then 0.0
  else begin
    let frac = Float.min 1.0 (float_of_int distance_blocks /. float_of_int g.blocks) in
    let min_s = g.avg_seek_s *. 0.15 in
    let max_s = g.avg_seek_s *. 1.75 in
    (* E[sqrt |U1 - U2|] = 8/15, so a uniformly random seek costs
       min + (max-min) * 8/15 = avg. *)
    min_s +. ((max_s -. min_s) *. sqrt frac)
  end

let io_time g ~seeks ~bytes =
  let transfer =
    if g.bandwidth_bytes_per_s = infinity then 0.0
    else float_of_int bytes /. g.bandwidth_bytes_per_s
  in
  (float_of_int seeks *. (g.avg_seek_s +. g.rotational_latency_s)) +. transfer

let pp ppf g =
  Format.fprintf ppf
    "%d blocks x %d B (%.1f MB), seek %.1f ms, rot %.1f ms, bw %.1f MB/s"
    g.blocks g.block_size
    (float_of_int (capacity_bytes g) /. 1e6)
    (g.avg_seek_s *. 1e3)
    (g.rotational_latency_s *. 1e3)
    (g.bandwidth_bytes_per_s /. 1e6)
