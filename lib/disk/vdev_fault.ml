module Prng = Lfs_util.Prng

type mode = Torn | Dropped | Reordered

let mode_name = function
  | Torn -> "torn"
  | Dropped -> "dropped"
  | Reordered -> "reordered"

type t = {
  lower : Vdev.t;
  prng : Prng.t;
  mutable countdown : int; (* payload blocks until the power cut; -1 = disarmed *)
  mutable mode : mode;
  mutable crashed : bool;
  mutable written : int;
  read_rot : (int, int * int) Hashtbl.t; (* addr -> (byte, xor mask) *)
  write_rot : (int, int * int) Hashtbl.t;
}

let create ?name:(_ = "fault") ?(seed = 0) lower =
  {
    lower;
    prng = Prng.create ~seed;
    countdown = -1;
    mode = Torn;
    crashed = false;
    written = 0;
    read_rot = Hashtbl.create 4;
    write_rot = Hashtbl.create 4;
  }

let check_alive t = if t.crashed then raise Vdev.Crashed

let plan_crash t ?(mode = Torn) ~after_blocks () =
  if after_blocks < 0 then invalid_arg "Vdev_fault.plan_crash";
  t.countdown <- after_blocks;
  t.mode <- mode

let cancel_crash t =
  t.countdown <- -1;
  t.lower.Vdev.cancel_crash ()

let is_crashed t = t.crashed || t.lower.Vdev.is_crashed ()

let reboot t =
  t.crashed <- false;
  t.countdown <- -1;
  t.lower.Vdev.reboot ()

let blocks_written t = t.written

let rot_byte t =
  let byte = Prng.int t.prng t.lower.Vdev.block_size in
  let mask = 1 + Prng.int t.prng 255 in
  (byte, mask)

let rot_read t ~addr = Hashtbl.replace t.read_rot addr (rot_byte t)
let rot_write t ~addr = Hashtbl.replace t.write_rot addr (rot_byte t)

let clear_rot t =
  Hashtbl.reset t.read_rot;
  Hashtbl.reset t.write_rot

let flip b off (byte, mask) =
  Bytes.set b (off + byte) (Char.chr (Char.code (Bytes.get b (off + byte)) lxor mask))

let submit_read ?now t addr n =
  check_alive t;
  let bs = t.lower.Vdev.block_size in
  let tk, b = Vdev.submit_read ?now t.lower addr n in
  for i = 0 to n - 1 do
    match Hashtbl.find_opt t.read_rot (addr + i) with
    | Some rot -> flip b (i * bs) rot
    | None -> ()
  done;
  (tk, b)

(* Write blocks [first, first+count) of the transfer individually so a
   reordered subset costs the same interface calls either way. *)
let submit_sub ?now lower bs addr b ~first ~count tickets =
  if count > 0 then
    tickets :=
      Vdev.submit_write ?now lower (addr + first)
        (Bytes.sub b (first * bs) (count * bs))
      :: !tickets

(* With a Direct lower stack, crash points are decided here at submit
   time, by counting payload blocks in submission order — the historical
   behaviour, deterministic by construction.  With a Queued lower stack
   the elevator retires writes in C-LOOK order, not submission order, so
   a submit-time countdown would tear a block the device had already
   retired: the countdown is handed down to the leaf device, which burns
   it at commit and tears the write the power cut actually interrupts. *)
let lower_is_queued t =
  match t.lower.Vdev.get_mode () with
  | Io_queue.Queued _ -> true
  | Io_queue.Direct -> false

let submit_write ?now t addr b =
  check_alive t;
  if t.countdown >= 0 && lower_is_queued t then begin
    t.lower.Vdev.plan_crash ~after_blocks:t.countdown;
    t.countdown <- -1
  end;
  let bs = t.lower.Vdev.block_size in
  let len = Bytes.length b in
  if len = 0 || len mod bs <> 0 then
    invalid_arg (Printf.sprintf "Vdev_fault.write_blocks: %d bytes" len);
  let n = len / bs in
  let b =
    (* Apply write-rot on a copy; the caller's buffer stays pristine. *)
    let rec rotted i =
      if i >= n then b
      else
        match Hashtbl.find_opt t.write_rot (addr + i) with
        | Some rot ->
            let c = Bytes.copy b in
            for j = i to n - 1 do
              match Hashtbl.find_opt t.write_rot (addr + j) with
              | Some rot' ->
                  flip c (j * bs) (if j = i then rot else rot');
                  Hashtbl.remove t.write_rot (addr + j)
              | None -> ()
            done;
            c
        | None -> rotted (i + 1)
    in
    rotted 0
  in
  let tickets = ref [] in
  if t.countdown >= 0 && n >= t.countdown then begin
    (* This write triggers the power cut. *)
    let keep = t.countdown in
    (match t.mode with
    | Torn -> submit_sub ?now t.lower bs addr b ~first:0 ~count:keep tickets
    | Dropped -> ()
    | Reordered ->
        (* Persist [keep] of the [n] blocks, chosen uniformly: the disk
           scheduled the sectors freely and power failed part-way. *)
        let order = Array.init n (fun i -> i) in
        Prng.shuffle t.prng order;
        for k = 0 to keep - 1 do
          submit_sub ?now t.lower bs addr b ~first:order.(k) ~count:1 tickets
        done);
    t.written <- t.written + keep;
    t.countdown <- -1;
    t.crashed <- true;
    raise Vdev.Crashed
  end
  else begin
    if t.countdown >= 0 then t.countdown <- t.countdown - n;
    tickets := [ Vdev.submit_write ?now t.lower addr b ];
    t.written <- t.written + n
  end;
  Io_queue.Join !tickets

let vdev t =
  {
    t.lower with
    Vdev.name = Printf.sprintf "fault(%s)" t.lower.Vdev.name;
    read_blocks = (fun addr n -> snd (submit_read t addr n));
    write_blocks = (fun addr b -> ignore (submit_write t addr b));
    zero_blocks =
      (fun addr n ->
        (* mkfs path: charged and crash-checked by the layers below, but
           exempt from this layer's payload countdown so crash-point
           enumeration (payload writes only) stays stable. *)
        check_alive t;
        t.lower.Vdev.zero_blocks addr n);
    submit_read = (fun ?now addr n -> submit_read ?now t addr n);
    submit_write = (fun ?now addr b -> submit_write ?now t addr b);
    plan_crash = (fun ~after_blocks -> plan_crash t ~mode:Torn ~after_blocks ());
    cancel_crash = (fun () -> cancel_crash t);
    is_crashed = (fun () -> is_crashed t);
    reboot = (fun () -> reboot t);
  }

let register_metrics ?prefix metrics t =
  let module M = Lfs_obs.Metrics in
  let p =
    match prefix with
    | Some p -> p
    | None -> "vdev." ^ Printf.sprintf "fault(%s)" t.lower.Vdev.name
  in
  let g name f = M.gauge_fn metrics (p ^ "." ^ name) f in
  g "blocks_written" (fun () -> float_of_int t.written);
  g "crashed" (fun () -> if t.crashed then 1.0 else 0.0)
