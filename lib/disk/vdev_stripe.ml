type t = {
  children : Vdev.t array;
  block_size : int;
  nblocks : int;
  mutable crash_countdown : int option;  (* global blocks until power cut *)
  mutable crashed : bool;
}

let check_range t addr n what =
  if addr < 0 || n < 0 || addr + n > t.nblocks then
    invalid_arg
      (Printf.sprintf "Vdev_stripe.%s: blocks [%d, %d) out of range [0, %d)"
         what addr (addr + n) t.nblocks)

(* Apply [f] to each child's contiguous extent of the global range
   [addr, addr+n): child [c] owns the global blocks congruent to [c],
   which map to consecutive child blocks starting at [first / nch]. *)
let iter_extents t addr n f =
  let nch = Array.length t.children in
  for c = 0 to nch - 1 do
    let delta = (c - (addr mod nch) + nch) mod nch in
    let first = addr + delta in
    if first < addr + n then
      let count = ((addr + n - 1 - first) / nch) + 1 in
      f ~child:c ~caddr:(first / nch) ~first ~count
  done

let ensure_alive t = if t.crashed then raise Vdev.Crashed

(* Fan the read across the children and join their tickets: each child
   queue services its extent independently, so the stripe completes at
   the max child completion instead of the sum — this is where stripe
   parallelism pays under queued IO. *)
let submit_read ?now t addr n =
  ensure_alive t;
  check_range t addr n "read_blocks";
  let bs = t.block_size and nch = Array.length t.children in
  let out = Bytes.create (n * bs) in
  let tickets = ref [] in
  iter_extents t addr n (fun ~child ~caddr ~first ~count ->
      let tk, buf = Vdev.submit_read ?now t.children.(child) caddr count in
      tickets := tk :: !tickets;
      for i = 0 to count - 1 do
        Bytes.blit buf (i * bs) out ((first + (i * nch) - addr) * bs) bs
      done);
  (Io_queue.Join !tickets, out)

(* Persist the first [persist] blocks of [b]; used for both intact and
   torn writes. *)
let submit_prefix ?now t addr b persist =
  let bs = t.block_size and nch = Array.length t.children in
  let tickets = ref [] in
  iter_extents t addr persist (fun ~child ~caddr ~first ~count ->
      let buf = Bytes.create (count * bs) in
      for i = 0 to count - 1 do
        Bytes.blit b ((first + (i * nch) - addr) * bs) buf (i * bs) bs
      done;
      tickets := Vdev.submit_write ?now t.children.(child) caddr buf :: !tickets);
  !tickets

let writable_prefix t n =
  match t.crash_countdown with None -> n | Some k -> min k n

let consume_countdown t n =
  match t.crash_countdown with
  | None -> ()
  | Some k ->
      let k = k - n in
      if k <= 0 then begin
        t.crash_countdown <- None;
        t.crashed <- true
      end
      else t.crash_countdown <- Some k

let submit_write ?now t addr b =
  ensure_alive t;
  if Bytes.length b mod t.block_size <> 0 then
    invalid_arg "Vdev_stripe.write_blocks: buffer is not a whole number of blocks";
  let n = Bytes.length b / t.block_size in
  check_range t addr n "write_blocks";
  let tickets = submit_prefix ?now t addr b (writable_prefix t n) in
  consume_countdown t n;
  if t.crashed then raise Vdev.Crashed;
  Io_queue.Join tickets

let zero_blocks t addr n =
  ensure_alive t;
  check_range t addr n "zero_blocks";
  iter_extents t addr (writable_prefix t n)
    (fun ~child ~caddr ~first:_ ~count ->
      Vdev.zero_blocks t.children.(child) caddr count);
  consume_countdown t n;
  if t.crashed then raise Vdev.Crashed

let stats t =
  Array.fold_left
    (fun acc c -> Io_stats.merge acc (Vdev.stats c))
    (Io_stats.create ()) t.children

let create ?name children =
  if Array.length children = 0 then
    invalid_arg "Vdev_stripe.create: no children";
  let block_size = Vdev.block_size children.(0) in
  Array.iter
    (fun c ->
      if Vdev.block_size c <> block_size then
        invalid_arg "Vdev_stripe.create: children disagree on block size")
    children;
  let nch = Array.length children in
  let per_child =
    Array.fold_left (fun m c -> min m (Vdev.nblocks c)) max_int children
  in
  let t =
    {
      children;
      block_size;
      nblocks = nch * per_child;
      crash_countdown = None;
      crashed = false;
    }
  in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "stripe(%d)" nch
  in
  {
    Vdev.name;
    block_size;
    nblocks = t.nblocks;
    read_blocks = (fun addr n -> snd (submit_read t addr n));
    write_blocks = (fun addr b -> ignore (submit_write t addr b));
    zero_blocks = (fun addr n -> zero_blocks t addr n);
    submit_read = (fun ?now addr n -> submit_read ?now t addr n);
    submit_write = (fun ?now addr b -> submit_write ?now t addr b);
    drain =
      (fun () ->
        Array.fold_left
          (fun acc c -> Float.max acc (Vdev.drain c))
          neg_infinity t.children);
    pump =
      (fun ~now ->
        Array.fold_left
          (fun acc c -> acc @ Vdev.pump c ~now)
          [] t.children);
    outstanding_in =
      (fun ~lo ~hi ->
        Array.fold_left
          (fun acc c -> acc + Vdev.outstanding_in c ~lo ~hi)
          0 t.children);
    set_mode = (fun m -> Array.iter (fun c -> Vdev.set_mode c m) t.children);
    get_mode = (fun () -> Vdev.get_mode t.children.(0));
    stats = (fun () -> stats t);
    plan_crash = (fun ~after_blocks ->
      assert (after_blocks >= 0);
      t.crash_countdown <- Some after_blocks);
    cancel_crash = (fun () -> t.crash_countdown <- None);
    is_crashed =
      (fun () ->
        t.crashed || Array.exists (fun c -> Vdev.is_crashed c) t.children);
    reboot =
      (fun () ->
        t.crashed <- false;
        t.crash_countdown <- None;
        Array.iter (fun c -> Vdev.reboot c) t.children);
  }
