type t = { lower : Vdev.t; cache : Block_cache.t; view : Vdev.t }

let make_view lower cache name =
  let bs = Vdev.block_size lower in
  let fetch addr = Vdev.read_block lower addr in
  let read_blocks addr n =
    if Vdev.is_crashed lower then raise Vdev.Crashed;
    if n = 1 then Block_cache.read cache ~fetch addr
    else Vdev.read_blocks lower addr n
  in
  let write_blocks addr b =
    let n = Bytes.length b / bs in
    (* Invalidate first: if the write below is torn, nothing stale
       survives in the cache. *)
    Block_cache.invalidate_range cache addr n;
    Vdev.write_blocks lower addr b;
    for i = 0 to n - 1 do
      Block_cache.put cache (addr + i) (Bytes.sub b (i * bs) bs)
    done
  in
  let zero_blocks addr n =
    Block_cache.invalidate_range cache addr n;
    Vdev.zero_blocks lower addr n
  in
  {
    lower with
    Vdev.name;
    read_blocks;
    write_blocks;
    zero_blocks;
  }

let create ?(name = "cache") ~capacity lower =
  let cache = Block_cache.create ~capacity in
  { lower; cache; view = make_view lower cache name }

let vdev t = t.view
let hits t = Block_cache.hits t.cache
let misses t = Block_cache.misses t.cache
let clear t = Block_cache.clear t.cache
