type t = { lower : Vdev.t; cache : Block_cache.t; view : Vdev.t }

let make_view lower cache name =
  let bs = Vdev.block_size lower in
  (* Cache hits complete at submit time (a [Done] ticket); misses
     forward to the lower device and join its tickets. *)
  let submit_read ?now addr n =
    if Vdev.is_crashed lower then raise Vdev.Crashed;
    let tickets = ref [] in
    let fetch addr n =
      let tk, b = Vdev.submit_read ?now lower addr n in
      tickets := tk :: !tickets;
      b
    in
    let b = Block_cache.read_range cache ~block_size:bs ~fetch addr n in
    let tk =
      match !tickets with [] -> Io_queue.Done | ts -> Io_queue.Join ts
    in
    (tk, b)
  in
  let submit_write ?now addr b =
    let n = Bytes.length b / bs in
    (* Invalidate first: if the write below is torn, nothing stale
       survives in the cache. *)
    Block_cache.invalidate_range cache addr n;
    let tk = Vdev.submit_write ?now lower addr b in
    for i = 0 to n - 1 do
      Block_cache.put cache (addr + i) (Bytes.sub b (i * bs) bs)
    done;
    tk
  in
  let zero_blocks addr n =
    Block_cache.invalidate_range cache addr n;
    Vdev.zero_blocks lower addr n
  in
  {
    lower with
    Vdev.name;
    read_blocks = (fun addr n -> snd (submit_read addr n));
    write_blocks = (fun addr b -> ignore (submit_write addr b));
    zero_blocks;
    submit_read;
    submit_write;
  }

let create ?(name = "cache") ~capacity lower =
  let cache = Block_cache.create ~capacity in
  { lower; cache; view = make_view lower cache name }

let vdev t = t.view
let hits t = Block_cache.hits t.cache
let misses t = Block_cache.misses t.cache

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then Float.nan else float_of_int h /. float_of_int (h + m)

let clear t = Block_cache.clear t.cache

let register_metrics ?prefix metrics t =
  let module M = Lfs_obs.Metrics in
  let p = match prefix with Some p -> p | None -> "vdev." ^ t.view.Vdev.name in
  let g name f = M.gauge_fn metrics (p ^ "." ^ name) f in
  g "hits" (fun () -> float_of_int (hits t));
  g "misses" (fun () -> float_of_int (misses t));
  g "hit_rate" (fun () -> hit_rate t)
