(** An LRU buffer cache over single-block reads.

    Models the main-memory file cache of Section 2.1: repeated reads of
    hot metadata blocks (packed inodes, directories, indirect blocks)
    cost no disk time.  Writers must call {!put} (write-through update)
    or {!invalidate} so the cache never returns stale data. *)

type t

val create : capacity:int -> t
(** Capacity in blocks.  A zero capacity disables caching. *)

val read : t -> fetch:(int -> bytes) -> int -> bytes
(** [read t ~fetch addr] returns a copy of the block, from cache when
    possible; on a miss [fetch addr] supplies it from the device below. *)

val put : t -> int -> bytes -> unit
(** Record the new contents of a block just written. *)

val invalidate : t -> int -> unit
val invalidate_range : t -> int -> int -> unit
val clear : t -> unit

val hits : t -> int
val misses : t -> int
