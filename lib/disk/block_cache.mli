(** An LRU buffer cache over single-block reads.

    Models the main-memory file cache of Section 2.1: repeated reads of
    hot metadata blocks (packed inodes, directories, indirect blocks)
    cost no disk time.  Writers must call {!put} (write-through update)
    or {!invalidate} so the cache never returns stale data. *)

type t

val create : capacity:int -> t
(** Capacity in blocks.  A zero capacity disables caching. *)

val read : t -> fetch:(int -> bytes) -> int -> bytes
(** [read t ~fetch addr] returns a copy of the block, from cache when
    possible; on a miss [fetch addr] supplies it from the device below. *)

val read_range :
  t -> block_size:int -> fetch:(int -> int -> bytes) -> int -> int -> bytes
(** [read_range t ~block_size ~fetch addr n] reads [n] consecutive
    blocks, serving each from the cache when present and counting a hit
    or miss per block.  Maximal runs of missing blocks are fetched with a
    single [fetch addr count] call, so a cold segment-sized read still
    costs one device IO; fetched blocks populate the cache. *)

val put : t -> int -> bytes -> unit
(** Record the new contents of a block just written. *)

val invalidate : t -> int -> unit
val invalidate_range : t -> int -> int -> unit

val clear : t -> unit
(** Drop every entry and reset the hit/miss counters: after a clear the
    cache reports statistics for the new, cold epoch only. *)

val hits : t -> int
val misses : t -> int
