(* Exact LRU: an intrusive doubly-linked list threaded through the
   entries plus a hash table for lookup. *)

type node = {
  addr : int;
  mutable data : bytes;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | Some _ | None ->
      unlink t n;
      push_front t n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.addr

let insert t addr data =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table addr with
    | Some n ->
        n.data <- data;
        touch t n
    | None ->
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        let n = { addr; data; prev = None; next = None } in
        Hashtbl.replace t.table addr n;
        push_front t n)
  end

let read t ~fetch addr =
  match Hashtbl.find_opt t.table addr with
  | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Bytes.copy n.data
  | None ->
      t.misses <- t.misses + 1;
      let b = fetch addr in
      insert t addr (Bytes.copy b);
      b

let put t addr data = insert t addr (Bytes.copy data)

let invalidate t addr =
  match Hashtbl.find_opt t.table addr with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table addr
  | None -> ()

let invalidate_range t addr n =
  for a = addr to addr + n - 1 do
    invalidate t a
  done

let read_range t ~block_size:bs ~fetch addr n =
  let out = Bytes.create (n * bs) in
  (* [lo, hi) is a maximal run of missing blocks: fetch it with one call
     below so a cold multi-block read still costs a single device IO. *)
  let fetch_run lo hi =
    if hi > lo then begin
      let count = hi - lo in
      t.misses <- t.misses + count;
      let b = fetch (addr + lo) count in
      Bytes.blit b 0 out (lo * bs) (count * bs);
      for k = lo to hi - 1 do
        insert t (addr + k) (Bytes.sub b ((k - lo) * bs) bs)
      done
    end
  in
  let run = ref 0 in
  for i = 0 to n - 1 do
    match Hashtbl.find_opt t.table (addr + i) with
    | Some node ->
        fetch_run !run i;
        run := i + 1;
        t.hits <- t.hits + 1;
        touch t node;
        Bytes.blit node.data 0 out (i * bs) bs
    | None -> ()
  done;
  fetch_run !run n;
  out

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits
let misses t = t.misses
