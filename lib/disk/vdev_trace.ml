type op = Read | Write | Zero
type entry = { op : op; addr : int; nblocks : int; busy_s : float }

type t = {
  lower : Vdev.t;
  capacity : int;
  log : entry Queue.t;
  mutable reads : int;
  mutable writes : int;
  mutable zeros : int;
  mutable traced_busy_s : float;
  mutable view : Vdev.t option;  (* tied after [create] builds the closures *)
}

let record t op addr nblocks f =
  let before = (Vdev.stats t.lower).Io_stats.busy_s in
  let finish () =
    let busy_s = (Vdev.stats t.lower).Io_stats.busy_s -. before in
    if t.capacity > 0 then begin
      if Queue.length t.log >= t.capacity then ignore (Queue.pop t.log);
      Queue.push { op; addr; nblocks; busy_s } t.log
    end;
    (match op with
    | Read -> t.reads <- t.reads + 1
    | Write -> t.writes <- t.writes + 1
    | Zero -> t.zeros <- t.zeros + 1);
    t.traced_busy_s <- t.traced_busy_s +. busy_s
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let create ?(name = "trace") ?(capacity = 1024) lower =
  let t =
    {
      lower;
      capacity;
      log = Queue.create ();
      reads = 0;
      writes = 0;
      zeros = 0;
      traced_busy_s = 0.0;
      view = None;
    }
  in
  let bs = Vdev.block_size lower in
  (* Busy time is measured as the delta around the submit; under queued
     IO service happens later, so entries record the submit-time cost
     (zero) — the per-op timings are a Direct-mode notion. *)
  let view =
    {
      lower with
      Vdev.name;
      read_blocks =
        (fun addr n -> record t Read addr n (fun () -> Vdev.read_blocks lower addr n));
      write_blocks =
        (fun addr b ->
          let n = Bytes.length b / bs in
          record t Write addr n (fun () -> Vdev.write_blocks lower addr b));
      zero_blocks =
        (fun addr n -> record t Zero addr n (fun () -> Vdev.zero_blocks lower addr n));
      submit_read =
        (fun ?now addr n ->
          record t Read addr n (fun () -> Vdev.submit_read ?now lower addr n));
      submit_write =
        (fun ?now addr b ->
          let n = Bytes.length b / bs in
          record t Write addr n (fun () -> Vdev.submit_write ?now lower addr b));
    }
  in
  t.view <- Some view;
  t

let vdev t = match t.view with Some v -> v | None -> assert false
let entries t = List.of_seq (Queue.to_seq t.log)
let reads t = t.reads
let writes t = t.writes
let zeros t = t.zeros
let traced_busy_s t = t.traced_busy_s

let register_metrics ?prefix metrics t =
  let module M = Lfs_obs.Metrics in
  let p =
    match prefix with Some p -> p | None -> "vdev." ^ (vdev t).Vdev.name
  in
  let g name f = M.gauge_fn metrics (p ^ "." ^ name) f in
  g "traced_reads" (fun () -> float_of_int t.reads);
  g "traced_writes" (fun () -> float_of_int t.writes);
  g "traced_zeros" (fun () -> float_of_int t.zeros);
  g "traced_busy_s" (fun () -> t.traced_busy_s)

let reset t =
  Queue.clear t.log;
  t.reads <- 0;
  t.writes <- 0;
  t.zeros <- 0;
  t.traced_busy_s <- 0.0

let pp_entry ppf e =
  let k = match e.op with Read -> "R" | Write -> "W" | Zero -> "Z" in
  Format.fprintf ppf "%s addr=%d n=%d busy=%.6fs" k e.addr e.nblocks e.busy_s
