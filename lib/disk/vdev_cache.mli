(** A write-through/read-through block-cache layer over any vdev.

    Lifts the {!Block_cache} wiring that {!Lfs_core.Fs} and
    {!Lfs_ffs.Ffs} used to hand-roll into one reusable device layer:
    single-block reads are served from an exact-LRU cache, writes update
    the device and then the cache, multi-block reads pass straight
    through (segment-sized transfers would only wash the LRU out).

    Crash coherence: a write first invalidates the affected range, then
    forwards, and only re-populates the cache on success — so a torn
    write ({!Vdev.Crashed} from below) leaves no stale blocks, and reads
    against a crashed lower device raise instead of serving hits. *)

type t

val create : ?name:string -> capacity:int -> Vdev.t -> t
(** Capacity in blocks; zero disables caching (all reads pass through). *)

val vdev : t -> Vdev.t
(** The cached device: same geometry and crash plumbing as the wrapped
    vdev, [stats] delegates to it (cache hits cost no modelled time). *)

val hits : t -> int
val misses : t -> int

val clear : t -> unit
(** Drop every cached block (simulates a cold file cache). *)
