(** A write-through/read-through block-cache layer over any vdev.

    Lifts the {!Block_cache} wiring that {!Lfs_core.Fs} and
    {!Lfs_ffs.Ffs} used to hand-roll into one reusable device layer:
    every read is served per-block from an exact-LRU cache (multi-block
    reads consult and populate it too, with maximal runs of missing
    blocks fetched in one lower IO), and writes update the device and
    then the cache.

    Crash coherence: a write first invalidates the affected range, then
    forwards, and only re-populates the cache on success — so a torn
    write ({!Vdev.Crashed} from below) leaves no stale blocks, and reads
    against a crashed lower device raise instead of serving hits. *)

type t

val create : ?name:string -> capacity:int -> Vdev.t -> t
(** Capacity in blocks; zero disables caching (all reads pass through). *)

val vdev : t -> Vdev.t
(** The cached device: same geometry and crash plumbing as the wrapped
    vdev, [stats] delegates to it (cache hits cost no modelled time). *)

val hits : t -> int
val misses : t -> int

val hit_rate : t -> float
(** Hits over total accesses; [nan] (undefined) before any access. *)

val clear : t -> unit
(** Drop every cached block and reset the hit/miss counters (simulates a
    cold file cache). *)

val register_metrics : ?prefix:string -> Lfs_obs.Metrics.t -> t -> unit
(** Register [<prefix>.hits], [<prefix>.misses] and [<prefix>.hit_rate]
    callback gauges; [prefix] defaults to ["vdev." ^ name].  Combine with
    {!Vdev.register_metrics} on {!vdev} for the IO-level view. *)
