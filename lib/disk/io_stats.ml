type t = {
  mutable reads : int;
  mutable writes : int;
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable seeks : int;
  mutable busy_s : float;
  mutable queue_wait_s : float;
  mutable max_queue_depth : int;
}

let create () =
  {
    reads = 0;
    writes = 0;
    blocks_read = 0;
    blocks_written = 0;
    seeks = 0;
    busy_s = 0.0;
    queue_wait_s = 0.0;
    max_queue_depth = 0;
  }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.blocks_read <- 0;
  t.blocks_written <- 0;
  t.seeks <- 0;
  t.busy_s <- 0.0;
  t.queue_wait_s <- 0.0;
  t.max_queue_depth <- 0

let copy t =
  {
    reads = t.reads;
    writes = t.writes;
    blocks_read = t.blocks_read;
    blocks_written = t.blocks_written;
    seeks = t.seeks;
    busy_s = t.busy_s;
    queue_wait_s = t.queue_wait_s;
    max_queue_depth = t.max_queue_depth;
  }

(* [max_queue_depth] is a watermark, not a counter: a diff keeps the
   later watermark rather than subtracting. *)
let diff now before =
  {
    reads = now.reads - before.reads;
    writes = now.writes - before.writes;
    blocks_read = now.blocks_read - before.blocks_read;
    blocks_written = now.blocks_written - before.blocks_written;
    seeks = now.seeks - before.seeks;
    busy_s = now.busy_s -. before.busy_s;
    queue_wait_s = now.queue_wait_s -. before.queue_wait_s;
    max_queue_depth = now.max_queue_depth;
  }

let merge a b =
  {
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    blocks_read = a.blocks_read + b.blocks_read;
    blocks_written = a.blocks_written + b.blocks_written;
    seeks = a.seeks + b.seeks;
    busy_s = a.busy_s +. b.busy_s;
    queue_wait_s = a.queue_wait_s +. b.queue_wait_s;
    max_queue_depth = max a.max_queue_depth b.max_queue_depth;
  }

let bytes_read ~block_size t = t.blocks_read * block_size
let bytes_written ~block_size t = t.blocks_written * block_size
let total_ios t = t.reads + t.writes

let pp ppf t =
  Format.fprintf ppf
    "reads=%d (%d blk) writes=%d (%d blk) seeks=%d busy=%.3fs qwait=%.3fs qmax=%d"
    t.reads t.blocks_read t.writes t.blocks_written t.seeks t.busy_s
    t.queue_wait_s t.max_queue_depth
