module Prng = Lfs_util.Prng
module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Vdev_fault = Lfs_disk.Vdev_fault
module Geometry = Lfs_disk.Geometry
module Fsops = Lfs_workload.Fsops
module Model = Lfs_model.Fs_model

(* The subjects and the crash-state oracle live in [Lfs_model] — one
   definition of crash semantics shared with the model-based refinement
   checker ([lfs_tool modelcheck]).  This harness keeps its own
   enumeration loop because it exercises a different fault surface:
   device-level Torn/Dropped/Reordered transfers under synchronous
   submission, where the refinement driver cuts the queued elevator in
   commit order. *)

module type SUBJECT = Lfs_model.Subject.SUBJECT

module Lfs = Lfs_model.Subject.Lfs
module Ffs = Lfs_model.Subject.Ffs

module Tier = Lfs_model.Subject.Tier

module type SHARD_SHAPE = Lfs_model.Subject.SHARD_SHAPE

module Shard = Lfs_model.Subject.Shard

module type HEAD_SHAPE = Lfs_model.Subject.HEAD_SHAPE

module Lfs_heads = Lfs_model.Subject.Lfs_heads

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

type workload = { wname : string; run : Lfs_workload.Fsops.t -> unit }

let smallfile ?(nfiles = 48) ?(file_size = 1024) ?(files_per_dir = 12) () =
  let p =
    { Lfs_workload.Smallfile.default_params with nfiles; file_size; files_per_dir }
  in
  {
    wname = Printf.sprintf "smallfile(n=%d,size=%d)" nfiles file_size;
    run = (fun fsops -> ignore (Lfs_workload.Smallfile.run p fsops));
  }

let andrew ?(dirs = 4) ?(files = 16) ?(file_bytes = 2048) () =
  let p = { Lfs_workload.Andrew.default_params with dirs; files; file_bytes } in
  {
    wname = Printf.sprintf "andrew(dirs=%d,files=%d)" dirs files;
    run = (fun fsops -> ignore (Lfs_workload.Andrew.run p fsops));
  }

let script ?(ops = 60) ~seed () =
  let run (fs : Fsops.t) =
    let prng = Prng.create ~seed in
    let dirs = [| "/w0"; "/w1" |] in
    Array.iter (fun d -> ignore (fs.Fsops.mkdir_path d)) dirs;
    fs.Fsops.sync ();
    let path i = Printf.sprintf "%s/f%d" dirs.(i mod 2) (i mod 6) in
    let fresh_bytes len =
      Bytes.init len (fun _ -> Char.chr (Char.code 'a' + Prng.int prng 26))
    in
    for _step = 1 to ops do
      let p = path (Prng.int prng 12) in
      match Prng.int prng 10 with
      | 0 | 1 | 2 | 3 ->
          (* create-or-overwrite with fresh content *)
          let data = fresh_bytes (1 + Prng.int prng 20_000) in
          let ino =
            match fs.Fsops.resolve p with
            | Some ino -> ino
            | None -> fs.Fsops.create_path p
          in
          fs.Fsops.write ino ~off:0 data
      | 4 | 5 -> (
          (* append *)
          match fs.Fsops.resolve p with
          | Some ino ->
              let data = fresh_bytes (1 + Prng.int prng 6_000) in
              fs.Fsops.write ino ~off:(fs.Fsops.file_size ino) data
          | None -> ())
      | 6 -> (
          match fs.Fsops.resolve (Filename.dirname p) with
          | Some dir when fs.Fsops.resolve p <> None ->
              fs.Fsops.unlink ~dir (Filename.basename p)
          | _ -> ())
      | 7 -> fs.Fsops.sync ()
      | _ -> (
          match fs.Fsops.resolve p with
          | Some ino ->
              let len = min 4096 (fs.Fsops.file_size ino) in
              if len > 0 then ignore (fs.Fsops.read ino ~off:0 ~len)
          | None -> ())
    done
  in
  { wname = Printf.sprintf "script(seed=%d,ops=%d)" seed ops; run }

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type failure = {
  cut : int;
  mode : Lfs_disk.Vdev_fault.mode;
  stage : string;
  detail : string;
}

type report = {
  subject : string;
  workload : string;
  seed : int;
  total_blocks : int;
  points : int;
  crashes : int;
  fsck_failures : failure list;
  oracle_failures : failure list;
}

let is_clean r = r.fsck_failures = [] && r.oracle_failures = []

let pp_failure ppf f =
  Format.fprintf ppf "cut %d (%s) %s: %s" f.cut
    (Vdev_fault.mode_name f.mode)
    f.stage f.detail

let pp_report ppf r =
  Format.fprintf ppf "crashtest: subject=%s workload=%s seed=%d@\n" r.subject
    r.workload r.seed;
  Format.fprintf ppf "  crash-point space: %d blocks; replayed %d point%s (%d crashed)@\n"
    r.total_blocks r.points
    (if r.points = 1 then "" else "s")
    r.crashes;
  Format.fprintf ppf "  fsck/recovery failures: %d@\n" (List.length r.fsck_failures);
  Format.fprintf ppf "  oracle divergences:     %d@\n" (List.length r.oracle_failures);
  let show label fs =
    List.iteri
      (fun i f ->
        if i < 10 then Format.fprintf ppf "  %s %a@\n" label pp_failure f
        else if i = 10 then Format.fprintf ppf "  %s ...@\n" label)
      fs
  in
  show "FSCK" r.fsck_failures;
  show "ORACLE" r.oracle_failures;
  Format.fprintf ppf "  %s (replay with seed %d)"
    (if is_clean r then "PASS" else "FAIL")
    r.seed

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

module Make (S : SUBJECT) = struct
  module Ops = Lfs_workload.Fsops.Make (S)

  let make_fsops fs =
    Ops.make ~name:S.subject_name ~async_writes:S.async_writes fs

  (* [S.ndevices] fresh devices; device 0 wears the fault layer, so the
     crash-point space is that device's writes — for multi-device
     subjects the other devices never crash and the oracle checks their
     durable state survives a neighbour's power cut. *)
  let fresh_fault ~blocks ~seed =
    let mk () = Vdev.of_disk (Disk.create (Geometry.instant ~blocks)) in
    let fault = Vdev_fault.create ~seed (mk ()) in
    let rest = List.init (S.ndevices - 1) (fun _ -> mk ()) in
    (fault, Vdev_fault.vdev fault :: rest)

  (* Walk the recovered tree against the shared model oracle: the
     recovered namespace must be some state in the (durable, crash-op]
     window of the recorded event log. *)
  let check_oracle ~bs ~events ~durable ~upto fs =
    let model_dirs = Model.dirs_of_events events ~upto in
    let files, dirs =
      Model.walk ~root:S.root
        ~readdir:(fun ino -> S.readdir fs ino)
        ~file_size:(fun ino -> S.file_size fs ino)
        ~read:(fun ino ~off ~len -> S.read fs ino ~off ~len)
        ~model_dirs
    in
    Model.check ~bs ~events ~durable ~upto ~files ~dirs

  let run ?(blocks = 1024) ?(stride = 1) ?cuts ?(seed = 0)
      ?(modes = [ Vdev_fault.Torn; Dropped; Reordered ]) (w : workload) =
    if stride < 1 then invalid_arg "Crashtest.run: stride";
    if modes = [] then invalid_arg "Crashtest.run: modes";
    (* Reference run: learn the crash-point space. *)
    let fault, devs = fresh_fault ~blocks ~seed in
    S.format devs;
    let base = Vdev_fault.blocks_written fault in
    let fs = S.mount devs in
    let recorder = Model.Recorder.create ~root:S.root in
    w.run (Model.Recorder.instrument recorder (make_fsops fs));
    let total = Vdev_fault.blocks_written fault - base in
    let bs = (List.hd devs).Vdev.block_size in
    let points =
      match cuts with
      | Some cs -> List.filter (fun c -> c >= 0 && c < total) cs
      | None ->
          let rec gen i acc = if i >= total then acc else gen (i + stride) (i :: acc) in
          let pts = gen 0 [] in
          (* always probe the final write *)
          let pts =
            if total > 0 && not (List.mem (total - 1) pts) then (total - 1) :: pts
            else pts
          in
          List.rev pts
    in
    let mode_rng = Prng.create ~seed:(seed lxor 0x1fe3a9) in
    let mode_arr = Array.of_list modes in
    let crashes = ref 0 in
    let fsck_failures = ref [] and oracle_failures = ref [] in
    List.iter
      (fun cut ->
        let mode = mode_arr.(Prng.int mode_rng (Array.length mode_arr)) in
        let fail bucket stage detail =
          bucket := { cut; mode; stage; detail } :: !bucket
        in
        let fault, devs = fresh_fault ~blocks ~seed in
        S.format devs;
        Vdev_fault.plan_crash fault ~mode ~after_blocks:cut ();
        let r = Model.Recorder.create ~root:S.root in
        let crashed =
          try
            let fs = S.mount devs in
            w.run (Model.Recorder.instrument r (make_fsops fs));
            false
          with Vdev.Crashed -> true
        in
        if crashed then incr crashes
        else fail fsck_failures "replay" "power cut never fired (non-deterministic workload?)";
        Vdev_fault.reboot fault;
        match (try Ok (S.recover devs) with e -> Error e) with
        | Error e -> fail fsck_failures "recover" (Printexc.to_string e)
        | Ok fs2 -> (
            match S.fsck_errors fs2 with
            | _ :: _ as errs ->
                fail fsck_failures "fsck" (String.concat "; " errs)
            | [] -> (
                match
                  try
                    Ok
                      (check_oracle ~bs
                         ~events:(Model.Recorder.events r)
                         ~durable:(Model.Recorder.durable r)
                         ~upto:(Model.Recorder.op r) fs2)
                  with e -> Error e
                with
                | Error e -> fail fsck_failures "walk" (Printexc.to_string e)
                | Ok [] -> ()
                | Ok divs ->
                    fail oracle_failures "oracle" (String.concat "; " divs))))
      points;
    {
      subject = S.subject_name;
      workload = w.wname;
      seed;
      total_blocks = total;
      points = List.length points;
      crashes = !crashes;
      fsck_failures = List.rev !fsck_failures;
      oracle_failures = List.rev !oracle_failures;
    }
end

module Lfs_runner = Make (Lfs)
module Ffs_runner = Make (Ffs)
module Tier_runner = Make (Tier)

let run_lfs ?blocks ?stride ?cuts ?seed ?modes w =
  Lfs_runner.run ?blocks ?stride ?cuts ?seed ?modes w

let run_ffs ?blocks ?stride ?cuts ?seed ?modes w =
  Ffs_runner.run ?blocks ?stride ?cuts ?seed ?modes w

let run_tier ?blocks ?stride ?cuts ?seed ?modes w =
  Tier_runner.run ?blocks ?stride ?cuts ?seed ?modes w

let run_heads ?(heads = 2) ?blocks ?stride ?cuts ?seed ?modes w =
  let module R =
    Make (Lfs_heads (struct
      let heads = heads
    end))
  in
  R.run ?blocks ?stride ?cuts ?seed ?modes w

let run_shard ?(shards = 2) ?(policy = Lfs_shard.Shard_router.By_hash) ?blocks
    ?stride ?cuts ?seed ?modes w =
  let module R =
    Make (Shard (struct
      let shards = shards
      let policy = policy
    end))
  in
  R.run ?blocks ?stride ?cuts ?seed ?modes w
