module Prng = Lfs_util.Prng
module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Vdev_fault = Lfs_disk.Vdev_fault
module Geometry = Lfs_disk.Geometry
module Fsops = Lfs_workload.Fsops

module type SUBJECT = sig
  include Lfs_core.Fs_intf.DURABLE

  val subject_name : string
  val async_writes : bool
  val ndevices : int
  val fsck_errors : t -> string list
end

(* Single-device subjects take exactly one device. *)
let the_dev = function
  | [ d ] -> d
  | devs ->
      invalid_arg
        (Printf.sprintf "crashtest subject: expected 1 device, got %d"
           (List.length devs))

(* Small configurations keep segments and write buffers tight so even a
   short workload crosses many flush and checkpoint boundaries — the
   interesting crash points. *)

let lfs_config =
  {
    Lfs_core.Config.default with
    max_inodes = 512;
    seg_blocks = 32;
    write_buffer_blocks = 16;
    clean_start = 3;
    clean_stop = 6;
    segs_per_pass = 3;
    cache_blocks = 128;
  }

module Lfs = struct
  include Lfs_core.Fs

  let subject_name = "lfs"
  let async_writes = true
  let ndevices = 1
  let format devs = Lfs_core.Fs.format (the_dev devs) lfs_config
  let mount devs = Lfs_core.Fs.mount (the_dev devs)
  let recover devs = fst (Lfs_core.Fs.recover (the_dev devs))
  let fsck_errors fs = (Lfs_core.Fsck.check fs).Lfs_core.Fsck.errors
end

let ffs_config =
  {
    Lfs_ffs.Ffs.default_config with
    cg_blocks = 256;
    inodes_per_cg = 128;
    write_buffer_blocks = 16;
    cache_blocks = 64;
  }

module Ffs = struct
  include Lfs_ffs.Ffs

  let subject_name = "ffs"
  let async_writes = false
  let ndevices = 1
  let format devs = Lfs_ffs.Ffs.format (the_dev devs) ffs_config
  let mount devs = Lfs_ffs.Ffs.mount (the_dev devs)

  (* FFS has no roll-forward; post-crash "recovery" is a plain mount,
     and it draws no checkpoint/sync distinction either. *)
  let recover devs = Lfs_ffs.Ffs.mount (the_dev devs)
  let checkpoint t = Lfs_ffs.Ffs.sync t
  let fsck_errors _ = []
end

module type SHARD_SHAPE = sig
  val shards : int
  val policy : Lfs_shard.Shard_router.policy
end

(* Every shard runs the same tight LFS config the single-disk subject
   uses, so per-shard crash points stay as dense as the LFS run's. *)
module Shard (P : SHARD_SHAPE) = struct
  include Lfs_shard.Shard_router

  let subject_name =
    Printf.sprintf "shard:%d:%s" P.shards
      (Lfs_shard.Shard_router.policy_name P.policy)

  let async_writes = true
  let ndevices = P.shards
  let format devs = Lfs_shard.Shard_router.format ~config:lfs_config devs

  let mount devs =
    Lfs_shard.Shard_router.mount ~config:lfs_config ~policy:P.policy devs

  let recover devs =
    fst (Lfs_shard.Shard_router.recover ~config:lfs_config ~policy:P.policy devs)

  let fsck_errors t =
    List.concat
      (List.init (shard_count t) (fun i ->
           List.map
             (Printf.sprintf "shard%d: %s" i)
             (Lfs_core.Fsck.check (shard_fs t i)).Lfs_core.Fsck.errors))
end

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

type workload = { wname : string; run : Lfs_workload.Fsops.t -> unit }

let smallfile ?(nfiles = 48) ?(file_size = 1024) ?(files_per_dir = 12) () =
  let p =
    { Lfs_workload.Smallfile.default_params with nfiles; file_size; files_per_dir }
  in
  {
    wname = Printf.sprintf "smallfile(n=%d,size=%d)" nfiles file_size;
    run = (fun fsops -> ignore (Lfs_workload.Smallfile.run p fsops));
  }

let andrew ?(dirs = 4) ?(files = 16) ?(file_bytes = 2048) () =
  let p = { Lfs_workload.Andrew.default_params with dirs; files; file_bytes } in
  {
    wname = Printf.sprintf "andrew(dirs=%d,files=%d)" dirs files;
    run = (fun fsops -> ignore (Lfs_workload.Andrew.run p fsops));
  }

let script ?(ops = 60) ~seed () =
  let run (fs : Fsops.t) =
    let prng = Prng.create ~seed in
    let dirs = [| "/w0"; "/w1" |] in
    Array.iter (fun d -> ignore (fs.Fsops.mkdir_path d)) dirs;
    fs.Fsops.sync ();
    let path i = Printf.sprintf "%s/f%d" dirs.(i mod 2) (i mod 6) in
    let fresh_bytes len =
      Bytes.init len (fun _ -> Char.chr (Char.code 'a' + Prng.int prng 26))
    in
    for _step = 1 to ops do
      let p = path (Prng.int prng 12) in
      match Prng.int prng 10 with
      | 0 | 1 | 2 | 3 ->
          (* create-or-overwrite with fresh content *)
          let data = fresh_bytes (1 + Prng.int prng 20_000) in
          let ino =
            match fs.Fsops.resolve p with
            | Some ino -> ino
            | None -> fs.Fsops.create_path p
          in
          fs.Fsops.write ino ~off:0 data
      | 4 | 5 -> (
          (* append *)
          match fs.Fsops.resolve p with
          | Some ino ->
              let data = fresh_bytes (1 + Prng.int prng 6_000) in
              fs.Fsops.write ino ~off:(fs.Fsops.file_size ino) data
          | None -> ())
      | 6 -> (
          match fs.Fsops.resolve (Filename.dirname p) with
          | Some dir when fs.Fsops.resolve p <> None ->
              fs.Fsops.unlink ~dir (Filename.basename p)
          | _ -> ())
      | 7 -> fs.Fsops.sync ()
      | _ -> (
          match fs.Fsops.resolve p with
          | Some ino ->
              let len = min 4096 (fs.Fsops.file_size ino) in
              if len > 0 then ignore (fs.Fsops.read ino ~off:0 ~len)
          | None -> ())
    done
  in
  { wname = Printf.sprintf "script(seed=%d,ops=%d)" seed ops; run }

(* ------------------------------------------------------------------ *)
(* The logical-state probe                                             *)
(* ------------------------------------------------------------------ *)

(* The probe shadows every mutating Fsops call with its intended logical
   effect, numbered by operation.  [durable] is the index of the last
   completed [sync]; the oracle uses the (durable, crash-op] window to
   decide which states a recovered path may legally show. *)

type event =
  | Efile of string * bytes option  (* full logical content; None = unlinked *)
  | Edir of string

type probe = {
  mutable op : int;
  mutable durable : int;
  mutable events_rev : (int * event) list;
  ino_path : (Lfs_core.Types.ino, string) Hashtbl.t;
}

let new_probe ~root =
  let p = { op = 0; durable = 0; events_rev = []; ino_path = Hashtbl.create 64 } in
  Hashtbl.replace p.ino_path root "";
  p

let latest_content probe path =
  let rec find = function
    | (_, Efile (p, v)) :: _ when String.equal p path -> v
    | _ :: rest -> find rest
    | [] -> None
  in
  find probe.events_rev

(* Record the intended effect {e before} invoking the real operation:
   a crash mid-operation may have persisted part of it.  If the
   operation instead fails logically (Fs_error), pop the event. *)
let step probe ev f =
  probe.op <- probe.op + 1;
  let op = probe.op in
  (match ev with
  | Some e -> probe.events_rev <- (op, e) :: probe.events_rev
  | None -> ());
  try f ()
  with Lfs_core.Types.Fs_error _ as exn ->
    (match probe.events_rev with
    | (o, _) :: rest when o = op -> probe.events_rev <- rest
    | _ -> ());
    raise exn

let instrument probe (inner : Fsops.t) =
  {
    inner with
    Fsops.create_path =
      (fun path ->
        let ino =
          step probe
            (Some (Efile (path, Some Bytes.empty)))
            (fun () -> inner.Fsops.create_path path)
        in
        Hashtbl.replace probe.ino_path ino path;
        ino);
    mkdir_path =
      (fun path ->
        let ino =
          step probe (Some (Edir path)) (fun () -> inner.Fsops.mkdir_path path)
        in
        Hashtbl.replace probe.ino_path ino path;
        ino);
    resolve =
      (fun path ->
        let r = step probe None (fun () -> inner.Fsops.resolve path) in
        (match r with
        | Some ino -> Hashtbl.replace probe.ino_path ino path
        | None -> ());
        r);
    unlink =
      (fun ~dir name ->
        let dpath =
          match Hashtbl.find_opt probe.ino_path dir with
          | Some p -> p
          | None -> "?"
        in
        let path = dpath ^ "/" ^ name in
        step probe
          (Some (Efile (path, None)))
          (fun () -> inner.Fsops.unlink ~dir name));
    write =
      (fun ino ~off b ->
        let ev =
          match Hashtbl.find_opt probe.ino_path ino with
          | None -> None
          | Some path ->
              let old =
                match latest_content probe path with
                | Some c -> c
                | None -> Bytes.empty
              in
              let len = max (Bytes.length old) (off + Bytes.length b) in
              let m = Bytes.make len '\000' in
              Bytes.blit old 0 m 0 (Bytes.length old);
              Bytes.blit b 0 m off (Bytes.length b);
              Some (Efile (path, Some m))
        in
        step probe ev (fun () -> inner.Fsops.write ino ~off b));
    read = (fun ino ~off ~len -> step probe None (fun () -> inner.Fsops.read ino ~off ~len));
    file_size = (fun ino -> step probe None (fun () -> inner.Fsops.file_size ino));
    sync =
      (fun () ->
        step probe None (fun () -> inner.Fsops.sync ());
        probe.durable <- probe.op);
    drop_caches = (fun () -> step probe None (fun () -> inner.Fsops.drop_caches ()));
  }

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

(* Version chain of [path] at a cut: the newest content with op <=
   durable (None if the path did not exist then), plus every version in
   the in-flight window (durable, upto]. *)
let chain events path ~durable ~upto =
  let durable_v = ref None and window = ref [] in
  List.iter
    (fun (op, ev) ->
      match ev with
      | Efile (p, v) when String.equal p path ->
          if op <= durable then durable_v := v
          else if op <= upto then window := v :: !window
      | _ -> ())
    events;
  (!durable_v, List.rev !window)

(* Recovered content is legal if it equals some version outright, or if
   every [bs]-sized block of it matches the corresponding block of some
   version.  The device persists flushed data at block granularity, so
   a crash can mix blocks of adjacent versions but can never fabricate a
   block no version contained.  A zero block is additionally accepted
   only on a growth frontier (some version ends before it): a partially
   persisted extension may leave an unwritten hole, but a file whose
   every version covers the block must really hold its data. *)
let content_acceptable ~bs versions c =
  List.exists (fun v -> Bytes.equal v c) versions
  ||
  let len = Bytes.length c in
  List.exists (fun v -> Bytes.length v >= len) versions
  &&
  let nblocks = (len + bs - 1) / bs in
  let block_ok i =
    let lo = i * bs in
    let hi = min len (lo + bs) in
    let matches v =
      Bytes.length v >= hi
      && Bytes.equal (Bytes.sub c lo (hi - lo)) (Bytes.sub v lo (hi - lo))
    in
    let zero_frontier () =
      List.exists (fun v -> Bytes.length v < hi) versions
      &&
      let rec z j = j >= hi || (Bytes.get c j = '\000' && z (j + 1)) in
      z lo
    in
    List.exists matches versions || zero_frontier ()
  in
  let rec all i = i >= nblocks || (block_ok i && all (i + 1)) in
  all 0

(* First offending region of [c], for failure reports. *)
let explain_mismatch ~bs versions c =
  let len = Bytes.length c in
  if not (List.exists (fun v -> Bytes.length v >= len) versions) then
    Printf.sprintf "len %d exceeds every version (lens %s)" len
      (String.concat "," (List.map (fun v -> string_of_int (Bytes.length v)) versions))
  else
    let nblocks = (len + bs - 1) / bs in
    let rec find i =
      if i >= nblocks then "?"
      else
        let lo = i * bs in
        let hi = min len (lo + bs) in
        let matches v =
          Bytes.length v >= hi
          && Bytes.equal (Bytes.sub c lo (hi - lo)) (Bytes.sub v lo (hi - lo))
        in
        if List.exists matches versions then find (i + 1)
        else
          Printf.sprintf "block %d of %d (len %d, %d versions: %s)" i nblocks len
            (List.length versions)
            (String.concat ","
               (List.map (fun v -> string_of_int (Bytes.length v)) versions))
    in
    find 0

type failure = {
  cut : int;
  mode : Lfs_disk.Vdev_fault.mode;
  stage : string;
  detail : string;
}

type report = {
  subject : string;
  workload : string;
  seed : int;
  total_blocks : int;
  points : int;
  crashes : int;
  fsck_failures : failure list;
  oracle_failures : failure list;
}

let is_clean r = r.fsck_failures = [] && r.oracle_failures = []

let pp_failure ppf f =
  Format.fprintf ppf "cut %d (%s) %s: %s" f.cut
    (Vdev_fault.mode_name f.mode)
    f.stage f.detail

let pp_report ppf r =
  Format.fprintf ppf "crashtest: subject=%s workload=%s seed=%d@\n" r.subject
    r.workload r.seed;
  Format.fprintf ppf "  crash-point space: %d blocks; replayed %d point%s (%d crashed)@\n"
    r.total_blocks r.points
    (if r.points = 1 then "" else "s")
    r.crashes;
  Format.fprintf ppf "  fsck/recovery failures: %d@\n" (List.length r.fsck_failures);
  Format.fprintf ppf "  oracle divergences:     %d@\n" (List.length r.oracle_failures);
  let show label fs =
    List.iteri
      (fun i f ->
        if i < 10 then Format.fprintf ppf "  %s %a@\n" label pp_failure f
        else if i = 10 then Format.fprintf ppf "  %s ...@\n" label)
      fs
  in
  show "FSCK" r.fsck_failures;
  show "ORACLE" r.oracle_failures;
  Format.fprintf ppf "  %s (replay with seed %d)"
    (if is_clean r then "PASS" else "FAIL")
    r.seed

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

module Make (S : SUBJECT) = struct
  module Ops = Lfs_workload.Fsops.Make (S)

  let make_fsops fs =
    Ops.make ~name:S.subject_name ~async_writes:S.async_writes fs

  (* [S.ndevices] fresh devices; device 0 wears the fault layer, so the
     crash-point space is that device's writes — for multi-device
     subjects the other devices never crash and the oracle checks their
     durable state survives a neighbour's power cut. *)
  let fresh_fault ~blocks ~seed =
    let mk () = Vdev.of_disk (Disk.create (Geometry.instant ~blocks)) in
    let fault = Vdev_fault.create ~seed (mk ()) in
    let rest = List.init (S.ndevices - 1) (fun _ -> mk ()) in
    (fault, Vdev_fault.vdev fault :: rest)

  (* Walk the recovered tree.  Only paths the model knows as directories
     are entered; everything else is read as a file.  Returns
     (files : path -> content, dirs : path set). *)
  let walk fs ~model_dirs =
    let files = Hashtbl.create 64 and dirs = Hashtbl.create 16 in
    let rec go dpath ino =
      Hashtbl.replace dirs dpath ();
      List.iter
        (fun (name, child) ->
          let cpath = dpath ^ "/" ^ name in
          if Hashtbl.mem model_dirs cpath then go cpath child
          else
            let sz = S.file_size fs child in
            Hashtbl.replace files cpath (S.read fs child ~off:0 ~len:sz))
        (S.readdir fs ino)
    in
    go "" S.root;
    (files, dirs)

  let check_oracle ~bs ~events ~durable ~upto fs =
    let model_files = Hashtbl.create 64 and model_dirs = Hashtbl.create 16 in
    List.iter
      (fun (op, ev) ->
        if op <= upto then
          match ev with
          | Efile (p, _) -> Hashtbl.replace model_files p ()
          | Edir p -> Hashtbl.replace model_dirs p ())
      events;
    let recovered_files, recovered_dirs = walk fs ~model_dirs in
    let divs = ref [] in
    let div fmt = Printf.ksprintf (fun s -> divs := s :: !divs) fmt in
    List.iter
      (fun (op, ev) ->
        match ev with
        | Edir p when op <= durable && not (Hashtbl.mem recovered_dirs p) ->
            div "durable directory %s missing" p
        | _ -> ())
      events;
    Hashtbl.iter
      (fun path () ->
        let durable_v, window = chain events path ~durable ~upto in
        match Hashtbl.find_opt recovered_files path with
        | None ->
            let absent_ok =
              durable_v = None || List.exists (fun v -> v = None) window
            in
            if not absent_ok then div "%s: durable content lost" path
        | Some c ->
            let versions = List.filter_map Fun.id (durable_v :: window) in
            if not (content_acceptable ~bs versions c) then
              div "%s: recovered content matches no state the workload passed through (%s)"
                path
                (explain_mismatch ~bs versions c))
      model_files;
    Hashtbl.iter
      (fun path _ ->
        if not (Hashtbl.mem model_files path) then
          div "%s: path never written by the workload" path)
      recovered_files;
    List.rev !divs

  let run ?(blocks = 1024) ?(stride = 1) ?cuts ?(seed = 0)
      ?(modes = [ Vdev_fault.Torn; Dropped; Reordered ]) (w : workload) =
    if stride < 1 then invalid_arg "Crashtest.run: stride";
    if modes = [] then invalid_arg "Crashtest.run: modes";
    (* Reference run: learn the crash-point space and the event log. *)
    let fault, devs = fresh_fault ~blocks ~seed in
    S.format devs;
    let base = Vdev_fault.blocks_written fault in
    let fs = S.mount devs in
    let probe = new_probe ~root:S.root in
    w.run (instrument probe (make_fsops fs));
    let total = Vdev_fault.blocks_written fault - base in
    let events = List.rev probe.events_rev in
    let bs = (List.hd devs).Vdev.block_size in
    let points =
      match cuts with
      | Some cs -> List.filter (fun c -> c >= 0 && c < total) cs
      | None ->
          let rec gen i acc = if i >= total then acc else gen (i + stride) (i :: acc) in
          let pts = gen 0 [] in
          (* always probe the final write *)
          let pts =
            if total > 0 && not (List.mem (total - 1) pts) then (total - 1) :: pts
            else pts
          in
          List.rev pts
    in
    let mode_rng = Prng.create ~seed:(seed lxor 0x1fe3a9) in
    let mode_arr = Array.of_list modes in
    let crashes = ref 0 in
    let fsck_failures = ref [] and oracle_failures = ref [] in
    List.iter
      (fun cut ->
        let mode = mode_arr.(Prng.int mode_rng (Array.length mode_arr)) in
        let fail bucket stage detail =
          bucket := { cut; mode; stage; detail } :: !bucket
        in
        let fault, devs = fresh_fault ~blocks ~seed in
        S.format devs;
        Vdev_fault.plan_crash fault ~mode ~after_blocks:cut ();
        let rprobe = new_probe ~root:S.root in
        let crashed =
          try
            let fs = S.mount devs in
            w.run (instrument rprobe (make_fsops fs));
            false
          with Vdev.Crashed -> true
        in
        if crashed then incr crashes
        else fail fsck_failures "replay" "power cut never fired (non-deterministic workload?)";
        Vdev_fault.reboot fault;
        match (try Ok (S.recover devs) with e -> Error e) with
        | Error e -> fail fsck_failures "recover" (Printexc.to_string e)
        | Ok fs2 -> (
            match S.fsck_errors fs2 with
            | _ :: _ as errs ->
                fail fsck_failures "fsck" (String.concat "; " errs)
            | [] -> (
                match
                  try
                    Ok
                      (check_oracle ~bs ~events ~durable:rprobe.durable
                         ~upto:rprobe.op fs2)
                  with e -> Error e
                with
                | Error e -> fail fsck_failures "walk" (Printexc.to_string e)
                | Ok [] -> ()
                | Ok divs ->
                    fail oracle_failures "oracle" (String.concat "; " divs))))
      points;
    {
      subject = S.subject_name;
      workload = w.wname;
      seed;
      total_blocks = total;
      points = List.length points;
      crashes = !crashes;
      fsck_failures = List.rev !fsck_failures;
      oracle_failures = List.rev !oracle_failures;
    }
end

module Lfs_runner = Make (Lfs)
module Ffs_runner = Make (Ffs)

let run_lfs ?blocks ?stride ?cuts ?seed ?modes w =
  Lfs_runner.run ?blocks ?stride ?cuts ?seed ?modes w

let run_ffs ?blocks ?stride ?cuts ?seed ?modes w =
  Ffs_runner.run ?blocks ?stride ?cuts ?seed ?modes w

let run_shard ?(shards = 2) ?(policy = Lfs_shard.Shard_router.By_hash) ?blocks
    ?stride ?cuts ?seed ?modes w =
  let module R =
    Make (Shard (struct
      let shards = shards
      let policy = policy
    end))
  in
  R.run ?blocks ?stride ?cuts ?seed ?modes w
