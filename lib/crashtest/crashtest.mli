(** Systematic crash-point enumeration.

    Section 4 of the paper argues that a log-structured file system can
    recover quickly and correctly from any crash because the log tail
    plus the last checkpoint bound the damage.  This harness tests that
    claim exhaustively rather than anecdotally: it records a workload's
    every device write through a {!Lfs_disk.Vdev_fault} layer, then for
    {e each} write (or a strided subset) replays the workload from
    scratch, cuts the power at exactly that block — tearing, dropping,
    or reordering the in-flight transfer — reboots, runs the subject's
    recovery and fsck, and checks the surviving namespace against a
    logical-state oracle:

    - everything acknowledged before the last successful [sync] must
      survive byte-for-byte;
    - anything newer may be missing or partial, but every recovered
      block must belong to some state the workload actually passed
      through (no foreign data, no mixed-up files, no resurrected
      deletions).

    The harness is a functor over {!SUBJECT}, a small extension of the
    shared {!Lfs_core.Fs_intf.DURABLE} lifecycle, so the same
    enumeration runs against the LFS, the FFS baseline and the shard
    router.  FFS has no recovery protocol and writes metadata in place,
    so its runs are expected to report oracle divergences — the harness
    reports them, it does not crash.

    Multi-device subjects (the shard router) declare [ndevices]; the
    harness plants the fault layer on device 0 only, so the enumeration
    crashes one shard at every one of its write points while the other
    shards keep serving — the oracle then checks that the surviving
    shards' durable state is intact alongside the crashed shard's
    recovery.

    All randomness (crash modes per point, reorder subsets, script
    workloads) derives from one seed, so every reported failure replays
    exactly from the printed seed. *)

module type SUBJECT = sig
  include Lfs_core.Fs_intf.DURABLE
  (** [format]/[mount]/[recover] take the full device list (singleton
      for LFS/FFS, one per shard for the router) with a harness-chosen
      small config baked in; [recover] is roll-forward for LFS, a plain
      mount for FFS. *)

  val subject_name : string
  val async_writes : bool

  val ndevices : int
  (** How many devices the subject mounts across.  The harness creates
      exactly this many and faults device 0. *)

  val fsck_errors : t -> string list
  (** Structural-consistency errors; [[]] means clean.  Subjects with no
      checker return [[]]. *)
end

module Lfs : SUBJECT with type t = Lfs_core.Fs.t
module Ffs : SUBJECT with type t = Lfs_ffs.Ffs.t

module Tier : SUBJECT with type t = Lfs_core.Fs.t
(** A tiered LFS over two children: device 0 is the fast child (which
    wears the fault layer, so crash points cover placement-map writes
    and promotion copies), device 1 the slow child.  Each durability
    barrier runs one demotion step first, so the sweep enumerates cuts
    mid-demotion. *)

module type HEAD_SHAPE = sig
  val heads : int
end

module Lfs_heads (P : HEAD_SHAPE) : SUBJECT with type t = Lfs_core.Fs.t
(** A multi-head LFS ([P.heads] log write heads) on one device: the
    sweep enumerates cuts inside every head's summary chain, exercising
    the seq-merged roll-forward and the global torn-write cutoff. *)

module type SHARD_SHAPE = sig
  val shards : int
  val policy : Lfs_shard.Shard_router.policy
end

module Shard (P : SHARD_SHAPE) :
  SUBJECT with type t = Lfs_shard.Shard_router.t
(** An [P.shards]-way sharded volume; the harness faults shard 0's
    device only, so every crash point exercises one shard's recovery
    while the others must keep their durable state intact. *)

(** {1 Workloads} *)

type workload = {
  wname : string;
  run : Lfs_workload.Fsops.t -> unit;
      (** Must be deterministic: the reference run and every replay
          re-execute it and count on identical device traffic. *)
}

val smallfile :
  ?nfiles:int -> ?file_size:int -> ?files_per_dir:int -> unit -> workload
(** A scaled-down {!Lfs_workload.Smallfile} (create / read / delete). *)

val andrew : ?dirs:int -> ?files:int -> ?file_bytes:int -> unit -> workload
(** A scaled-down {!Lfs_workload.Andrew} run. *)

val script : ?ops:int -> seed:int -> unit -> workload
(** A seeded random mix of creates, whole-file overwrites, appends,
    deletes, reads and syncs over a small namespace. *)

(** {1 Reports} *)

type failure = {
  cut : int;  (** crash point: payload blocks written before the cut *)
  mode : Lfs_disk.Vdev_fault.mode;
  stage : string;  (** ["replay"], ["recover"], ["fsck"], ["walk"] or ["oracle"] *)
  detail : string;
}

type report = {
  subject : string;
  workload : string;
  seed : int;
  total_blocks : int;  (** size of the crash-point space *)
  points : int;  (** crash points actually replayed *)
  crashes : int;  (** replays in which the power cut fired *)
  fsck_failures : failure list;
      (** recovery raised, fsck reported errors, or the post-recovery
          walk itself hit corruption *)
  oracle_failures : failure list;  (** logical-state divergences *)
}

val is_clean : report -> bool
val pp_report : Format.formatter -> report -> unit

(** {1 Enumeration} *)

module Make (S : SUBJECT) : sig
  val run :
    ?blocks:int ->
    ?stride:int ->
    ?cuts:int list ->
    ?seed:int ->
    ?modes:Lfs_disk.Vdev_fault.mode list ->
    workload ->
    report
  (** [run w] records [w] once on fresh [?blocks]-block devices
      (default 1024 each, [S.ndevices] of them) to learn the crash-point
      space — the writes that reached device 0 — then replays one crash
      per point.  [?stride] (default 1) thins the enumeration but
      always keeps the final write; [?cuts] replays exactly the given
      points instead.  The crash mode at each point is drawn from
      [?modes] (default all three) using [?seed] (default 0). *)
end

val run_lfs :
  ?blocks:int ->
  ?stride:int ->
  ?cuts:int list ->
  ?seed:int ->
  ?modes:Lfs_disk.Vdev_fault.mode list ->
  workload ->
  report

val run_ffs :
  ?blocks:int ->
  ?stride:int ->
  ?cuts:int list ->
  ?seed:int ->
  ?modes:Lfs_disk.Vdev_fault.mode list ->
  workload ->
  report

val run_tier :
  ?blocks:int ->
  ?stride:int ->
  ?cuts:int list ->
  ?seed:int ->
  ?modes:Lfs_disk.Vdev_fault.mode list ->
  workload ->
  report
(** {!Make} over {!Tier}: a fast and a slow device of [?blocks] each,
    crash points enumerated over the fast child's writes. *)

val run_heads :
  ?heads:int ->
  ?blocks:int ->
  ?stride:int ->
  ?cuts:int list ->
  ?seed:int ->
  ?modes:Lfs_disk.Vdev_fault.mode list ->
  workload ->
  report
(** {!Make} over {!Lfs_heads}: a single device, [?heads] (default 2)
    log write heads. *)

val run_shard :
  ?shards:int ->
  ?policy:Lfs_shard.Shard_router.policy ->
  ?blocks:int ->
  ?stride:int ->
  ?cuts:int list ->
  ?seed:int ->
  ?modes:Lfs_disk.Vdev_fault.mode list ->
  workload ->
  report
(** {!Make} over {!Shard}: [?shards] (default 2) devices of [?blocks]
    each, [?policy] (default [By_hash]) placement, crash points
    enumerated over shard 0's writes. *)
