type cleaning_policy = Greedy | Cost_benefit | Age_only | Random_victim
type grouping_policy = In_order | Age_sort
type cleaner_read_policy = Whole_segment | Live_blocks

type t = {
  block_size : int;
  seg_blocks : int;
  max_inodes : int;
  clean_start : int;
  clean_stop : int;
  bg_clean_start : int;
  bg_clean_stop : int;
  segs_per_pass : int;
  write_buffer_blocks : int;
  cache_blocks : int;
  checkpoint_interval_ops : int;
  checkpoint_interval_blocks : int;
  cleaning_policy : cleaning_policy;
  grouping_policy : grouping_policy;
  cleaner_read : cleaner_read_policy;
  demote_age_s : float;
  promote_reads : int;
  log_heads : int;
}

let default =
  {
    block_size = 4096;
    seg_blocks = 256;
    max_inodes = 65536;
    clean_start = 4;
    clean_stop = 8;
    bg_clean_start = 12;
    bg_clean_stop = 16;
    segs_per_pass = 8;
    write_buffer_blocks = 256;
    cache_blocks = 4096;
    checkpoint_interval_ops = 0;
    checkpoint_interval_blocks = 0;
    cleaning_policy = Cost_benefit;
    grouping_policy = Age_sort;
    cleaner_read = Whole_segment;
    demote_age_s = 64.0;
    promote_reads = 0;
    log_heads = 1;
  }

let small =
  {
    block_size = 1024;
    seg_blocks = 16;
    max_inodes = 512;
    clean_start = 3;
    clean_stop = 5;
    bg_clean_start = 7;
    bg_clean_stop = 9;
    segs_per_pass = 4;
    write_buffer_blocks = 16;
    cache_blocks = 64;
    checkpoint_interval_ops = 0;
    checkpoint_interval_blocks = 0;
    cleaning_policy = Cost_benefit;
    grouping_policy = Age_sort;
    cleaner_read = Whole_segment;
    demote_age_s = 64.0;
    promote_reads = 0;
    log_heads = 1;
  }

let with_policy ?cleaning ?grouping t =
  let t =
    match cleaning with None -> t | Some p -> { t with cleaning_policy = p }
  in
  match grouping with None -> t | Some g -> { t with grouping_policy = g }

let validate t ~disk_blocks =
  let fail fmt = Format.kasprintf invalid_arg fmt in
  if t.block_size < 512 then fail "Config: block_size %d < 512" t.block_size;
  if t.block_size land (t.block_size - 1) <> 0 then
    fail "Config: block_size %d is not a power of two" t.block_size;
  if t.seg_blocks < 4 then fail "Config: seg_blocks %d < 4" t.seg_blocks;
  if t.max_inodes < 2 then fail "Config: max_inodes %d < 2" t.max_inodes;
  if t.clean_start < 2 then fail "Config: clean_start %d < 2" t.clean_start;
  if t.clean_stop <= t.clean_start then
    fail "Config: clean_stop %d <= clean_start %d" t.clean_stop t.clean_start;
  if t.bg_clean_start < t.clean_start then
    fail "Config: bg_clean_start %d < clean_start %d (background must engage \
          before the emergency threshold)" t.bg_clean_start t.clean_start;
  if t.bg_clean_stop <= t.bg_clean_start then
    fail "Config: bg_clean_stop %d <= bg_clean_start %d" t.bg_clean_stop
      t.bg_clean_start;
  if t.segs_per_pass < 1 then fail "Config: segs_per_pass %d < 1" t.segs_per_pass;
  if t.write_buffer_blocks < 1 then
    fail "Config: write_buffer_blocks %d < 1" t.write_buffer_blocks;
  if not (t.demote_age_s >= 0.0) then
    fail "Config: demote_age_s %g < 0 (or NaN)" t.demote_age_s;
  if t.promote_reads < 0 then
    fail "Config: promote_reads %d < 0" t.promote_reads;
  if t.log_heads < 1 || t.log_heads > 8 then
    fail "Config: log_heads %d outside 1..8" t.log_heads;
  (* Every head pins two segments (current + reservation); the clean
     pool must still recover above the stop watermark beyond those. *)
  if disk_blocks / t.seg_blocks < t.clean_stop + (2 * t.log_heads) then
    fail "Config: disk of %d blocks has only %d segments; need at least %d"
      disk_blocks (disk_blocks / t.seg_blocks)
      (t.clean_stop + (2 * t.log_heads))

let cleaning_policy_name = function
  | Greedy -> "greedy"
  | Cost_benefit -> "cost-benefit"
  | Age_only -> "age-only"
  | Random_victim -> "random"

let grouping_policy_name = function
  | In_order -> "in-order"
  | Age_sort -> "age-sort"

let cleaner_read_policy_name = function
  | Whole_segment -> "whole-segment"
  | Live_blocks -> "live-blocks"
