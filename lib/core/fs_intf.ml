(** The file-system surface shared by every implementation in the tree.

    {!Fs} (the log-structured file system), {!Lfs_ffs.Ffs} (the FFS
    baseline) and [Lfs_shard.Shard_router] (N LFS instances behind one
    namespace) all satisfy {!S} as-is, so workload generators, the
    benchmarks and the crash-point enumeration harness can be written
    once as functors over this signature and run against any of them
    unchanged ([lib/workload]'s {!Lfs_workload.Fsops.Make},
    [lib/crashtest]'s [Crashtest.Make]).

    The signature deliberately covers only the common namespace / IO /
    lifecycle operations.  Mount-time construction and crash recovery
    live in the {!DURABLE} extension; pieces that are genuinely
    implementation-specific (LFS cleaning knobs, FFS's [fsck_scan])
    stay on the concrete modules.

    Error conventions follow {!Types}: absence of a name is an expected
    outcome and is reported as [None] ([lookup], [resolve], [read_path]);
    {!Types.Fs_error} means the request itself was unsatisfiable (name
    already exists, directory not empty, disk full); {!Types.Corrupt}
    means an on-disk structure failed validation. *)

module type S = sig
  type t
  (** A mounted file system. *)

  val root : Types.ino
  (** Inode number of the root directory. *)

  (** {1 Namespace} *)

  val create : t -> dir:Types.ino -> string -> Types.ino
  val mkdir : t -> dir:Types.ino -> string -> Types.ino
  val lookup : t -> dir:Types.ino -> string -> Types.ino option
  val readdir : t -> Types.ino -> (string * Types.ino) list
  val unlink : t -> dir:Types.ino -> string -> unit
  (** Remove a regular file's name.  Refuses directories (use {!rmdir}). *)

  val rmdir : t -> dir:Types.ino -> string -> unit
  (** Remove an empty directory. *)

  val rename : t -> odir:Types.ino -> string -> ndir:Types.ino -> string -> unit
  (** Move a name; an existing (non-directory) target is replaced.
      Implementations that cannot move a particular source atomically
      (the shard router and directories) raise {!Types.Fs_error}. *)

  (** {1 File IO} *)

  val write : t -> Types.ino -> off:int -> bytes -> unit
  val read : t -> Types.ino -> off:int -> len:int -> bytes
  val truncate : t -> Types.ino -> len:int -> unit
  val file_size : t -> Types.ino -> int

  (** {1 Path helpers} *)

  val resolve : t -> string -> Types.ino option
  val create_path : t -> string -> Types.ino
  val mkdir_path : t -> string -> Types.ino
  val write_path : t -> string -> bytes -> unit
  val read_path : t -> string -> bytes option

  (** {1 Lifecycle} *)

  val sync : t -> unit
  (** Make every acknowledged operation durable.  For multi-device
      implementations this is a fan-out barrier: it returns only once
      every underlying device has made its share durable. *)

  val drop_caches : t -> unit
  (** Forget volatile caches so subsequent reads hit the device. *)

  val devices : t -> Lfs_disk.Vdev.t list
  (** The devices the file system is mounted on, in a stable order.
      Singleton for {!Fs} and [Ffs]; one per shard for the router.
      Never empty. *)
end

(** A mounted file system packed with the module that knows how to
    drive it.  This is how tools hold "some file system" without
    dispatching over a closed variant of implementations: anything
    satisfying {!S} can be packed, handed across an API boundary, and
    unpacked with ordinary pattern matching:

    {[
      let sync (Any.Any ((module F), fs)) = F.sync fs
    ]} *)
module Any = struct
  type t = Any : (module S with type t = 'a) * 'a -> t

  let pack (type a) (module F : S with type t = a) (fs : a) : t =
    Any ((module F), fs)

  let devices (Any ((module F), fs)) = F.devices fs
  let sync (Any ((module F), fs)) = F.sync fs
  let drop_caches (Any ((module F), fs)) = F.drop_caches fs
end

(** Durability lifecycle: construction, crash recovery and checkpoint.

    {!S} describes a file system that is already mounted; [DURABLE]
    additionally knows how to make one (and bring one back after a
    crash) from a list of devices.  Concrete modules keep their richer
    constructors (configs, recovery reports); a [DURABLE] instance is
    an adapter that bakes those choices in, so harnesses that exercise
    the crash cycle — the crashtest functor above all — compose over
    any implementation, including the shard router, without ad-hoc
    module plumbing.

    [format]/[mount]/[recover] take the device list in the same stable
    order that {!S.devices} reports.  Single-device implementations
    require a singleton list and raise [Invalid_argument] otherwise. *)
module type DURABLE = sig
  include S

  val format : Lfs_disk.Vdev.t list -> unit
  (** Write a fresh, empty file system across [devices]. *)

  val mount : Lfs_disk.Vdev.t list -> t
  (** Mount a cleanly formatted (or cleanly unmounted) system. *)

  val recover : Lfs_disk.Vdev.t list -> t
  (** Mount after a crash, replaying whatever the implementation can
      roll forward.  For implementations without a recovery protocol
      this is [mount]. *)

  val checkpoint : t -> unit
  (** Force a durable consistency point stronger than {!S.sync} if the
      implementation distinguishes the two (LFS checkpoint regions);
      otherwise equivalent to [sync]. *)
end
