(** The file-system surface shared by every implementation in the tree.

    {!Fs} (the log-structured file system) and {!Lfs_ffs.Ffs} (the FFS
    baseline) both satisfy {!S} as-is, so workload generators, the
    benchmarks and the crash-point enumeration harness can be written
    once as functors over this signature and run against either system
    unchanged ([lib/workload]'s {!Lfs_workload.Fsops.Make},
    [lib/crashtest]'s [Crashtest.Make]).

    The signature deliberately covers only the common namespace / IO /
    lifecycle operations.  Lifecycle pieces that differ between the two
    systems — mount-time configuration, LFS's [recover]/[checkpoint],
    FFS's [fsck_scan] — stay on the concrete modules; harnesses that
    need them (the crashtest subjects) extend [S] with exactly the extra
    operations they require.

    Error conventions follow {!Types}: absence of a name is an expected
    outcome and is reported as [None] ([lookup], [resolve], [read_path]);
    {!Types.Fs_error} means the request itself was unsatisfiable (name
    already exists, directory not empty, disk full); {!Types.Corrupt}
    means an on-disk structure failed validation. *)

module type S = sig
  type t
  (** A mounted file system. *)

  val root : Types.ino
  (** Inode number of the root directory. *)

  (** {1 Namespace} *)

  val create : t -> dir:Types.ino -> string -> Types.ino
  val mkdir : t -> dir:Types.ino -> string -> Types.ino
  val lookup : t -> dir:Types.ino -> string -> Types.ino option
  val readdir : t -> Types.ino -> (string * Types.ino) list
  val unlink : t -> dir:Types.ino -> string -> unit

  (** {1 File IO} *)

  val write : t -> Types.ino -> off:int -> bytes -> unit
  val read : t -> Types.ino -> off:int -> len:int -> bytes
  val truncate : t -> Types.ino -> len:int -> unit
  val file_size : t -> Types.ino -> int

  (** {1 Path helpers} *)

  val resolve : t -> string -> Types.ino option
  val create_path : t -> string -> Types.ino
  val mkdir_path : t -> string -> Types.ino
  val write_path : t -> string -> bytes -> unit
  val read_path : t -> string -> bytes option

  (** {1 Lifecycle} *)

  val sync : t -> unit
  (** Make every acknowledged operation durable. *)

  val drop_caches : t -> unit
  (** Forget volatile caches so subsequent reads hit the device. *)

  val disk : t -> Lfs_disk.Vdev.t
  (** The device the file system is mounted on. *)
end
