(** Long-term accounting of log traffic and cleaning, powering the write
    cost of Section 3.4, Table 2's cleaning statistics and Table 4's
    log-bandwidth breakdown. *)

type t

val create : unit -> t
val reset : t -> unit

val note_written : t -> Types.block_kind -> cleaner:bool -> blocks:int -> unit
(** Blocks appended to the log, attributed to new data or to the
    cleaner. *)

val note_segment_read : t -> blocks:int -> unit
(** A whole victim segment read by the cleaner. *)

val note_segment_cleaned : t -> u:float -> unit
(** A victim finished; [u] is its utilisation when selected. *)

val note_checkpoint : t -> unit

val blocks_written_new : t -> int
(** All log blocks written on behalf of new data (including metadata and
    summary blocks). *)

val blocks_written_cleaner : t -> int
val blocks_read_cleaner : t -> int
val written_by_kind : t -> Types.block_kind -> int
(** Total log blocks of this kind (new + cleaner). *)

val segments_cleaned : t -> int
val segments_cleaned_empty : t -> int

val avg_cleaned_u_nonempty : t -> float
(** Mean utilisation of the non-empty segments cleaned (Table 2's "u"
    column). *)

val checkpoints : t -> int

val write_cost : t -> float
(** (blocks written + cleaner reads) / new-data blocks, the paper's
    formula.  [nan] (undefined) when no new data has been written — a
    cleaner-only interval has no meaningful cost ratio, and pretending
    1.0 would under-report it.  Reports render [nan] as "undefined". *)

val log_bandwidth_fraction : t -> Types.block_kind -> float
(** Fraction of all log blocks of the given kind (Table 4, "Log
    bandwidth" column). *)
