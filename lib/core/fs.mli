(** Sprite LFS: the public file-system API.

    All modifications are buffered in the file cache and written to disk
    sequentially in large log writes ({!Log_writer}); the segment cleaner
    ({!Cleaner} policies) regenerates empty segments; checkpoints plus
    roll-forward ({!Recovery}) provide crash recovery.

    Time inside the file system is a logical clock that advances by one
    tick per mutating operation, which keeps every experiment
    deterministic. *)

type t

type stat = {
  st_ino : Types.ino;
  st_ftype : Types.ftype;
  st_size : int;
  st_nlink : int;
  st_mtime : float;
  st_atime : float;
  st_version : int;
}

(** {1 Lifecycle} *)

val format : Lfs_disk.Vdev.t -> Config.t -> unit
(** Create a fresh file system on the device: superblock, empty inode
    map and usage table, root directory, initial checkpoint. *)

val mount :
  ?config:Config.t ->
  ?metrics:Lfs_obs.Metrics.t ->
  ?tier:Lfs_disk.Vdev_tier.t ->
  Lfs_disk.Vdev.t ->
  t
(** Load the latest checkpoint and discard anything after it (how the
    paper's production systems rebooted).  [config] overrides mount-time
    policies (cleaning/grouping/thresholds); geometry always comes from
    the superblock.  [metrics] supplies the registry (view) this mount
    registers its instruments into — pass a {!Lfs_obs.Metrics.scoped}
    view when several mounts share one registry, or omit it for a fresh
    private registry.  [tier] hands over the tiered volume the device
    exports (chunks must be this layout's segments 1:1, or
    [Invalid_argument] is raised); it enables the demotion/promotion
    regimes and tier verification in {!Fsck}.  Raises {!Types.Corrupt}
    if no valid checkpoint. *)

type recovery_report = {
  writes_replayed : int;
  inodes_recovered : int;
  data_blocks_recovered : int;
  dirops_applied : int;
  segments_scanned : int;
}

val recover :
  ?config:Config.t ->
  ?metrics:Lfs_obs.Metrics.t ->
  ?tier:Lfs_disk.Vdev_tier.t ->
  Lfs_disk.Vdev.t ->
  t * recovery_report
(** Mount, then roll the log forward from the checkpoint: reprocess
    recovered inodes, adjust segment utilisations, replay the directory
    operation log, and write a fresh checkpoint.  [metrics] as in
    {!mount}. *)

val unmount : t -> unit
(** Flush everything and checkpoint.  The [t] must not be used after. *)

(** {1 Namespace operations} *)

val root : Types.ino

val create : t -> dir:Types.ino -> string -> Types.ino
(** New empty regular file.  Raises {!Types.Fs_error} if the name exists
    or [dir] is not a directory. *)

val mkdir : t -> dir:Types.ino -> string -> Types.ino
val lookup : t -> dir:Types.ino -> string -> Types.ino option
val readdir : t -> Types.ino -> (string * Types.ino) list

val link : t -> dir:Types.ino -> string -> Types.ino -> unit
(** Hard link to a regular file. *)

val unlink : t -> dir:Types.ino -> string -> unit
(** Remove a name; the file dies when its last link goes.  Refuses to
    unlink directories (use {!rmdir}). *)

val rmdir : t -> dir:Types.ino -> string -> unit
(** Remove an empty directory. *)

val rename :
  t -> odir:Types.ino -> string -> ndir:Types.ino -> string -> unit
(** Atomic rename; an existing target (non-directory) is replaced. *)

(** {1 File IO} *)

val write : t -> Types.ino -> off:int -> bytes -> unit
val read : t -> Types.ino -> off:int -> len:int -> bytes
(** Reads past EOF are truncated; holes read as zeros. *)

val truncate : t -> Types.ino -> len:int -> unit
(** Truncating to zero bumps the file's uid version (Section 3.3). *)

val stat : t -> Types.ino -> stat
val file_size : t -> Types.ino -> int

(** {1 Paths} — convenience wrappers resolving ["/a/b/c"] from the root *)

val resolve : t -> string -> Types.ino option
val create_path : t -> string -> Types.ino
val mkdir_path : t -> string -> Types.ino
val write_path : t -> string -> bytes -> unit
(** Create-or-replace the file's entire contents. *)

val read_path : t -> string -> bytes option
(** Whole-file read; [None] when no file lives at the path (matching
    [lookup]/[resolve]: absence is an option, exceptions mean
    corruption or misuse — see {!Types}). *)

(** {1 Durability and maintenance} *)

val sync : t -> unit
(** Flush the file cache to the log (data reaches disk; metadata
    locations become durable at the next checkpoint). *)

val checkpoint : t -> unit
(** Flush and write a checkpoint region. *)

val on_checkpoint : t -> (unit -> unit) -> unit
(** Register a callback invoked after every completed checkpoint,
    including the automatic ones taken by the cleaner and the
    interval/volume triggers.  {!Nvram_fs} uses it to discard its
    journal exactly when the journalled operations become durable. *)

val on_log_batch : t -> (blocks:int -> unit) -> unit
(** Register a callback invoked after every physical log batch write
    with its total block count (payload plus summary).  The serving
    layer uses it to measure how many blocks each shared group-commit
    flush carries. *)

val pending_log_blocks : t -> int
(** Log blocks queued in the writer but not yet on disk — the part of
    the current batch a {!sync} would flush. *)

val clean : t -> unit
(** Run cleaning passes until the clean-segment target is reached;
    normally automatic, exposed for experiments.  Invocations triggered
    by the write path stall their caller for the whole duration — the
    stall is recorded in the [fs.cleaner.stall_s] histogram. *)

val clean_step : ?max_segments:int -> t -> int
(** One budgeted background cleaning pass, meant to be called from idle
    time (the paper's "clean at night or during idle periods", §4).
    Paced by the [bg_clean_start]/[bg_clean_stop] watermarks with
    hysteresis: a step only does work once the clean pool has dropped
    below the low watermark, and steps keep reporting work until the
    pool refills to the high one.  Cleans at most [max_segments] victims
    (default [segs_per_pass]) and checkpoints, then returns how many
    segments are still owed — [0] means "nothing to do right now", so a
    scheduler can stop polling until the next idle window.  Work done
    here is attributed to [fs.cleaner.bg.*] instead of [fs.cleaner.fg.*]
    and never shows up in [fs.cleaner.stall_s]. *)

(** On a tiered volume an idle step that owes no compaction work instead
    spends the window demoting cold segments (see {!demote_step}); on a
    flat volume the behaviour is unchanged. *)

val demote_step : ?max_segments:int -> t -> int
(** One demotion pass (tiered volumes; [0] and a no-op otherwise): pick
    up to [max_segments] (default [segs_per_pass]) cold, high-utilisation
    fast-tier segments at least [demote_age_s] old — cost-benefit
    inverted, because a full cold segment frees a whole fast segment for
    one sequential copy while compacting it would copy everything for
    nothing — and migrate them to the slow tier.  Bounded by the slow
    tier's free-chunk pool; returns the number of eligible candidates
    still waiting (0 = rest, either done or the slow tier is full).
    Block addresses are tier-logical, so no FS metadata changes and no
    checkpoint is taken; crash consistency is the placement map's
    (see {!Lfs_disk.Vdev_tier}).  Attributed to [fs.cleaner.demote.*]. *)

val tier : t -> Lfs_disk.Vdev_tier.t option
(** The tiered volume handed to {!mount}/{!recover}, if any. *)

val clean_segment_count : t -> int

val drop_caches : t -> unit
(** Flush, then forget cached inodes, block maps and directory contents,
    so subsequent operations hit the disk (cold-cache benchmark
    phases). *)

(** {1 Introspection for benchmarks, fsck and tests} *)

val devices : t -> Lfs_disk.Vdev.t list
(** Singleton: the device this mount sits on ({!Fs_intf.S.devices}). *)

val layout : t -> Layout.t
val config : t -> Config.t
val stats : t -> Fs_stats.t
val clock : t -> float

val metrics : t -> Lfs_obs.Metrics.t
(** The observability registry of this mount.  Every layer is already
    registered: per-vdev-layer IO gauges (the handed-in device and the
    block cache, via {!Lfs_disk.Vdev.register_metrics} /
    {!Lfs_disk.Vdev_cache.register_metrics}), per-operation modelled
    latency histograms ([fs.op.<op>.busy_s]), checkpoint count, duration
    and blocks ([fs.checkpoint.*]), cleaner passes and the live victim
    utilisation distribution ([fs.cleaner.*], Fig 6), and the running
    {!Fs_stats} gauges including [fs.write_cost].  Callers may register
    additional layers of their own stack into the same registry. *)

val utilization : t -> float
(** Live bytes / log capacity (disk capacity utilisation). *)

val segment_histogram : t -> bins:int -> Lfs_util.Histogram.t
(** Per-segment utilisation distribution, excluding the segment being
    written (Figures 5-6, 10). *)

type live_breakdown = { by_kind : (Types.block_kind * int) list; total_bytes : int }

val live_breakdown : t -> live_breakdown
(** Walk all live structures and attribute bytes by kind (Table 4's
    "Live data" column).  Flushes first. *)

val iter_files : t -> (Types.ino -> Inode.t -> unit) -> unit
(** Visit every allocated inode (flushed state). *)

val with_handle : t -> Types.ino -> (Inode.t -> Filemap.t -> 'a) -> 'a
(** Read-only access to a file's inode and block map (for fsck). *)

val imap_location : t -> Types.ino -> Types.Iaddr.t
val imap_block_addr : t -> int -> Types.baddr
val usage_block_addrs : t -> Types.baddr list
val segment_live_bytes : t -> int -> int
val segment_mtime : t -> int -> float
