module Vdev = Lfs_disk.Vdev

type write = { summary : Summary.t; blocks : (int * bytes) list }
type tail = { tail_seg : int; tail_off : int; tail_next_seg : int }

type result = {
  writes : write list;
  tails : tail array;
  next_seq : int;
  segments_scanned : int;
}

(* Whether entry [i] of a summary must be loaded during the scan:
   recovery reprocesses inodes and directory-log records; data blocks
   stay where they are and are only referenced by address. *)
let needs_payload (e : Summary.entry) =
  match e.Summary.kind with
  | Types.Inode_block | Types.Dir_log -> true
  | Types.Data | Types.Indirect | Types.Dindirect | Types.Imap
  | Types.Seg_usage | Types.Summary ->
      false

let load_blocks layout disk s =
  List.concat
    (List.mapi
       (fun i e ->
         if needs_payload e then
           [ (i, Vdev.read_block disk (Summary.entry_addr s layout i)) ]
         else [])
       s.Summary.entries)

(* One head's chain walk.  [steps] are the intact summaries in walk
   order (strictly increasing seq); [torn] is the first summary whose
   payload failed its checksum, which ends the chain. *)
type chain = {
  steps : Summary.t list;
  torn : Summary.t option;
  scanned : int;
}

let walk_chain layout disk ~ckpt ~start_seg =
  let seg_blocks = layout.Layout.seg_blocks in
  let steps = ref [] in
  let torn = ref None in
  let scanned = ref 0 in
  let visited = Hashtbl.create 16 in
  (* last_seq grows strictly along the walk; summaries written before the
     checkpoint (or left over from a segment's previous life) fail the
     monotonicity test or the self-identification test and end the
     walk. *)
  let rec walk_segment seg slot last_seq =
    if Hashtbl.mem visited (seg, slot) then ()
    else begin
      Hashtbl.replace visited (seg, slot) ();
      if slot <= seg_blocks - 2 then begin
        let first = Layout.seg_first_block layout seg in
        let sum_block = Vdev.read_block disk (first + slot) in
        match Summary.decode sum_block with
        | None -> ()
        | Some s ->
            if s.Summary.seg <> seg || s.Summary.slot <> slot then ()
            else if s.Summary.seq <= last_seq then ()
            else begin
              let n = List.length s.Summary.entries in
              if slot + 1 + n > seg_blocks then ()
              else begin
                (* Every post-checkpoint write must verify its payload
                   checksum: with queued submission the device commits
                   blocks out of submission order, so a crash can
                   persist a later summary while an earlier write's
                   payload never made it.  The first torn write ends
                   this chain — and, because the fsync barrier spans
                   every head, truncates all chains at its sequence
                   number (see [scan]). *)
                let intact =
                  s.Summary.seq < ckpt.Checkpoint.log_seq
                  ||
                  let payload =
                    Vdev.read_blocks disk (first + slot + 1) n
                  in
                  Summary.payload_checksum payload = s.Summary.payload_sum
                in
                if not intact then torn := Some s
                else begin
                  steps := s :: !steps;
                  let next = Summary.next_slot s in
                  if next <= seg_blocks - 2 then
                    walk_segment seg next s.Summary.seq
                  else begin
                    (* Segment exhausted: follow the head's thread. *)
                    incr scanned;
                    if
                      s.Summary.next_seg >= 0
                      && s.Summary.next_seg < layout.Layout.nsegs
                    then walk_segment s.Summary.next_seg 0 s.Summary.seq
                  end
                end
              end
            end
      end
    end
  in
  (* Start from the head of the checkpoint's tail segment: writes earlier
     in that segment predate the checkpoint and are skipped by the seq
     filter, but they carry the chain to the post-checkpoint tail. *)
  incr scanned;
  walk_segment start_seg 0 0;
  { steps = List.rev !steps; torn = !torn; scanned = !scanned }

let scan layout disk ~ckpt =
  let chains =
    Array.map
      (fun (h : Checkpoint.head_pos) ->
        walk_chain layout disk ~ckpt ~start_seg:h.cur_seg)
      ckpt.Checkpoint.heads
  in
  (* The durability frontier is global: a completed fsync barrier awaits
     every head's unflushed batches, so nothing with a sequence number at
     or beyond the earliest torn write was ever acknowledged — and a
     surviving write there may reference payloads (in another head's
     chain) that never made it.  Truncate every chain at that point. *)
  let cutoff =
    Array.fold_left
      (fun acc c ->
        match c.torn with Some s -> min acc s.Summary.seq | None -> acc)
      max_int chains
  in
  let tails =
    Array.mapi
      (fun i c ->
        let h = ckpt.Checkpoint.heads.(i) in
        let kept, rejected =
          List.partition (fun s -> s.Summary.seq < cutoff) c.steps
        in
        let tail_at (s : Summary.t) =
          {
            tail_seg = s.Summary.seg;
            tail_off = s.Summary.slot;
            tail_next_seg = s.Summary.next_seg;
          }
        in
        match (rejected, c.torn) with
        | s :: _, _ -> tail_at s
        | [], Some s -> tail_at s
        | [], None -> (
            match List.rev kept with
            | s :: _ ->
                {
                  tail_seg = s.Summary.seg;
                  tail_off = Summary.next_slot s;
                  tail_next_seg = s.Summary.next_seg;
                }
            | [] ->
                {
                  tail_seg = h.Checkpoint.cur_seg;
                  tail_off = h.Checkpoint.cur_off;
                  tail_next_seg = h.Checkpoint.next_seg;
                }))
      chains
  in
  (* Roll-forward merges the chains back into one log order by the
     shared sequence number. *)
  let writes =
    Array.to_list chains
    |> List.concat_map (fun c ->
           List.filter
             (fun s ->
               s.Summary.seq < cutoff
               && s.Summary.seq >= ckpt.Checkpoint.log_seq)
             c.steps)
    |> List.sort (fun a b -> compare a.Summary.seq b.Summary.seq)
    |> List.map (fun s -> { summary = s; blocks = load_blocks layout disk s })
  in
  let next_seq =
    if cutoff < max_int then cutoff
    else
      List.fold_left
        (fun acc w -> max acc (w.summary.Summary.seq + 1))
        ckpt.Checkpoint.log_seq writes
  in
  {
    writes;
    tails;
    next_seq;
    segments_scanned =
      Array.fold_left (fun acc c -> acc + c.scanned) 0 chains;
  }
