module Vdev = Lfs_disk.Vdev

type write = { summary : Summary.t; blocks : (int * bytes) list }

type result = {
  writes : write list;
  tail_seg : int;
  tail_off : int;
  tail_next_seg : int;
  next_seq : int;
  segments_scanned : int;
}

(* Whether entry [i] of a summary must be loaded during the scan:
   recovery reprocesses inodes and directory-log records; data blocks
   stay where they are and are only referenced by address. *)
let needs_payload (e : Summary.entry) =
  match e.Summary.kind with
  | Types.Inode_block | Types.Dir_log -> true
  | Types.Data | Types.Indirect | Types.Dindirect | Types.Imap
  | Types.Seg_usage | Types.Summary ->
      false

let load_blocks layout disk s =
  List.concat
    (List.mapi
       (fun i e ->
         if needs_payload e then
           [ (i, Vdev.read_block disk (Summary.entry_addr s layout i)) ]
         else [])
       s.Summary.entries)

let scan layout disk ~ckpt =
  let seg_blocks = layout.Layout.seg_blocks in
  let writes = ref [] in
  let tail_seg = ref ckpt.Checkpoint.cur_seg in
  let tail_off = ref ckpt.Checkpoint.cur_off in
  let tail_next_seg = ref ckpt.Checkpoint.next_seg in
  let next_seq = ref ckpt.Checkpoint.log_seq in
  let segments_scanned = ref 0 in
  let visited = Hashtbl.create 16 in
  (* last_seq grows strictly along the walk; summaries written before the
     checkpoint (or left over from a segment's previous life) fail the
     monotonicity test or the self-identification test and end the
     walk. *)
  let rec walk_segment seg slot last_seq =
    if Hashtbl.mem visited (seg, slot) then ()
    else begin
      Hashtbl.replace visited (seg, slot) ();
      if slot <= seg_blocks - 2 then begin
        let first = Layout.seg_first_block layout seg in
        let sum_block = Vdev.read_block disk (first + slot) in
        match Summary.decode sum_block with
        | None -> ()
        | Some s ->
            if s.Summary.seg <> seg || s.Summary.slot <> slot then ()
            else if s.Summary.seq <= last_seq then ()
            else begin
              let n = List.length s.Summary.entries in
              if slot + 1 + n > seg_blocks then ()
              else begin
                (* Every post-checkpoint write must verify its payload
                   checksum: with queued submission the device commits
                   blocks out of submission order, so a crash can
                   persist a later summary while an earlier write's
                   payload never made it.  The first torn write ends the
                   replayable prefix — nothing at or after it was ever
                   acknowledged durable (the sync barrier covering it
                   did not complete), so the log is truncated there and
                   the walk stops. *)
                let intact =
                  s.Summary.seq < ckpt.Checkpoint.log_seq
                  ||
                  let payload =
                    Vdev.read_blocks disk (first + slot + 1) n
                  in
                  Summary.payload_checksum payload = s.Summary.payload_sum
                in
                if not intact then begin
                  tail_seg := seg;
                  tail_off := slot;
                  next_seq := s.Summary.seq;
                  tail_next_seg := s.Summary.next_seg
                end
                else begin
                  if s.Summary.seq >= ckpt.Checkpoint.log_seq then
                    writes :=
                      { summary = s; blocks = load_blocks layout disk s }
                      :: !writes;
                  tail_seg := seg;
                  tail_off := Summary.next_slot s;
                  tail_next_seg := s.Summary.next_seg;
                  next_seq := s.Summary.seq + 1;
                  let next = Summary.next_slot s in
                  if next <= seg_blocks - 2 then
                    walk_segment seg next s.Summary.seq
                  else begin
                    (* Segment exhausted: follow the log thread. *)
                    incr segments_scanned;
                    if
                      s.Summary.next_seg >= 0
                      && s.Summary.next_seg < layout.Layout.nsegs
                    then walk_segment s.Summary.next_seg 0 s.Summary.seq
                  end
                end
              end
            end
      end
    end
  in
  (* Start from the head of the checkpoint's tail segment: writes earlier
     in that segment predate the checkpoint and are skipped by the seq
     filter, but they carry the chain to the post-checkpoint tail. *)
  incr segments_scanned;
  walk_segment ckpt.Checkpoint.cur_seg 0 0;
  {
    writes = List.rev !writes;
    tail_seg = !tail_seg;
    tail_off = !tail_off;
    tail_next_seg = !tail_next_seg;
    next_seq = !next_seq;
    segments_scanned = !segments_scanned;
  }
