module Vdev = Lfs_disk.Vdev
module Vdev_cache = Lfs_disk.Vdev_cache
module Vdev_tier = Lfs_disk.Vdev_tier
module Io_stats = Lfs_disk.Io_stats
module Prng = Lfs_util.Prng
module Metrics = Lfs_obs.Metrics

type stat = {
  st_ino : Types.ino;
  st_ftype : Types.ftype;
  st_size : int;
  st_nlink : int;
  st_mtime : float;
  st_atime : float;
  st_version : int;
}

type handle = {
  inode : Inode.t;
  fmap : Filemap.t;
  mutable inode_dirty : bool;
  mutable content : bytes option;  (* whole-content cache, directories only *)
}

(* Observability handles: one {!Lfs_obs.Metrics} registry per mounted
   file system, plus the instruments that hot paths update directly.
   Latency histograms record modelled disk time (the busy_s of the
   device the caller handed us), not wall-clock. *)
type obs = {
  metrics : Metrics.t;
  op_create : Metrics.histogram;
  op_mkdir : Metrics.histogram;
  op_link : Metrics.histogram;
  op_unlink : Metrics.histogram;
  op_rmdir : Metrics.histogram;
  op_rename : Metrics.histogram;
  op_read : Metrics.histogram;
  op_write : Metrics.histogram;
  op_truncate : Metrics.histogram;
  ckpt_busy : Metrics.histogram;
  ckpt_blocks : Metrics.histogram;
  victim_u : Metrics.dist;
  victim_fill : Metrics.histogram;
      (* fullness of each victim when cleaned, as a histogram rather
         than a mean: with segregated heads the bench expects a bimodal
         shape — cold segments stay full while hot ones decay empty *)
  victim_age : Metrics.histogram;
      (* modelled-time age of each cleaned victim: the axis demotion
         policy tuning needs next to utilisation (Fig. 6 plots both) *)
  cleaner_passes : Metrics.counter;
  (* Foreground (threshold-triggered, writer-stalling) and background
     (idle-time {!clean_step}) cleaning accounted separately, so a bench
     can show cleaning load migrating out of the write path. *)
  fg_passes : Metrics.counter;
  bg_passes : Metrics.counter;
  fg_segments : Metrics.counter;
  bg_segments : Metrics.counter;
  fg_busy : Metrics.histogram;
  bg_busy : Metrics.histogram;
  cleaner_stall : Metrics.histogram;
      (* disk time a foreground [clean] invocation held up its caller *)
  (* Tiered volumes: the cleaner's third regime (demotion passes) and
     promotion-on-read, accounted like fg/bg cleaning. *)
  demote_passes : Metrics.counter;
  demote_segments : Metrics.counter;
  demote_busy : Metrics.histogram;
  promote_segments : Metrics.counter;
}

let make_obs ?metrics () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let op name = Metrics.histogram metrics ("fs.op." ^ name ^ ".busy_s") in
  {
    metrics;
    op_create = op "create";
    op_mkdir = op "mkdir";
    op_link = op "link";
    op_unlink = op "unlink";
    op_rmdir = op "rmdir";
    op_rename = op "rename";
    op_read = op "read";
    op_write = op "write";
    op_truncate = op "truncate";
    ckpt_busy = Metrics.histogram metrics "fs.checkpoint.busy_s";
    ckpt_blocks =
      Metrics.histogram ~lo:1.0 ~hi:1e6 metrics "fs.checkpoint.blocks";
    victim_u = Metrics.dist metrics "fs.cleaner.victim_u";
    victim_fill =
      Metrics.histogram ~lo:0.001 ~hi:1.0 metrics "fs.cleaner.victim_fill";
    victim_age =
      Metrics.histogram ~lo:1.0 ~hi:1e6 metrics "fs.cleaner.victim_age";
    cleaner_passes = Metrics.counter metrics "fs.cleaner.passes";
    fg_passes = Metrics.counter metrics "fs.cleaner.fg.passes";
    bg_passes = Metrics.counter metrics "fs.cleaner.bg.passes";
    fg_segments = Metrics.counter metrics "fs.cleaner.fg.segments";
    bg_segments = Metrics.counter metrics "fs.cleaner.bg.segments";
    fg_busy = Metrics.histogram metrics "fs.cleaner.fg.busy_s";
    bg_busy = Metrics.histogram metrics "fs.cleaner.bg.busy_s";
    cleaner_stall = Metrics.histogram metrics "fs.cleaner.stall_s";
    demote_passes = Metrics.counter metrics "fs.cleaner.demote.passes";
    demote_segments = Metrics.counter metrics "fs.cleaner.demote.segments";
    demote_busy = Metrics.histogram metrics "fs.cleaner.demote.busy_s";
    promote_segments = Metrics.counter metrics "fs.cleaner.promote.segments";
  }

type t = {
  disk : Vdev.t;  (* the device the caller handed us (may itself be a stack) *)
  cache : Vdev_cache.t;
  dev : Vdev.t;  (* [disk] behind the block cache; all internal IO uses this *)
  layout : Layout.t;
  mutable config : Config.t;
  imap : Inode_map.t;
  usage : Seg_usage.t;
  log : Log_writer.t;
  handles : (Types.ino, handle) Hashtbl.t;
  dirty_data : (Types.ino * int, bytes) Hashtbl.t;
  mutable dirty_count : int;
  mutable pending_dirops : Dir_log.record list;  (* newest first *)
  reusable : int list ref;  (* checkpoint-persisted clean segments *)
  reusable_len : int ref;
  cleaner_attr : bool ref;  (* current appends belong to the cleaner *)
  stats : Fs_stats.t;
  mutable clock : float;
  mutable ops_since_ckpt : int;
  mutable blocks_since_ckpt : int;
  mutable ckpt_region : int;  (* region to write next *)
  mutable in_cleaner : bool;
  mutable bg_active : bool;  (* background cleaner engaged (hysteresis latch) *)
  mutable in_checkpoint : bool;
  mutable checkpoint_hook : unit -> unit;
  log_batch_hook : (blocks:int -> unit) ref;
  cleaning_victims : (int, unit) Hashtbl.t;
  rng : Prng.t;
  obs : obs;
  tier : Vdev_tier.t option;
      (* set when [disk] is (or wraps) a tiered volume whose chunks are
         this layout's segments; enables demotion/promotion *)
  tier_reads : (int, int) Hashtbl.t;  (* slow segment -> disk reads seen *)
}

type recovery_report = {
  writes_replayed : int;
  inodes_recovered : int;
  data_blocks_recovered : int;
  dirops_applied : int;
  segments_scanned : int;
}

let root = Types.root_ino

let devices t = [ t.disk ]
let tier t = t.tier
let metrics t = t.obs.metrics
let on_log_batch t f = t.log_batch_hook := f
let pending_log_blocks t = Log_writer.pending_blocks t.log

(* Modelled time for spans: the outer device's cumulative busy time. *)
let op_span t h f =
  Metrics.span h ~clock:(fun () -> (Vdev.stats t.disk).Io_stats.busy_s) f
let layout t = t.layout
let config t = t.config
let stats t = t.stats
let clock t = t.clock

let block_size t = t.layout.Layout.block_size

let tick t =
  t.clock <- t.clock +. 1.0;
  t.clock

(* In-memory location for inodes created but not yet written to the log;
   block 0 is the superblock so no real inode can ever live there. *)
let placeholder_iaddr = Types.Iaddr.make ~block:0 ~slot:0

let read_disk_block t addr = Vdev.read_block t.dev addr

let kill_addr t addr ~bytes =
  let seg = Layout.seg_of_block t.layout addr in
  if seg < 0 then
    Types.corrupt "attempt to kill fixed-area block %d" addr;
  Seg_usage.kill t.usage seg ~bytes;
  (* A segment whose last live byte dies is reclaimed without cleaning
     (Section 3.6); Table 2 counts such segments as cleaned-empty. *)
  if
    Seg_usage.live_bytes t.usage seg = 0
    && not (Hashtbl.mem t.cleaning_victims seg)
  then Fs_stats.note_segment_cleaned t.stats ~u:0.0

(* Every log append goes through here so traffic is attributed — and
   routed by temperature (Section 3.5): fresh foreground data to head 0,
   cleaner survivors to the cold head(s).  With more than two heads the
   survivors spread into age bins, [demote_age_s] wide, so data that has
   already proven cold lands apart from the merely lukewarm. *)
let append_block t ~kind ~ino ~blockno ~version ~mtime payload =
  Fs_stats.note_written t.stats kind ~cleaner:!(t.cleaner_attr) ~blocks:1;
  t.blocks_since_ckpt <- t.blocks_since_ckpt + 1;
  let head =
    let n = Log_writer.nheads t.log in
    if n = 1 || not !(t.cleaner_attr) then 0
    else if n = 2 then 1
    else
      let age = Float.max 0.0 (t.clock -. mtime) in
      let bin = int_of_float (age /. Float.max 1.0 t.config.Config.demote_age_s) in
      1 + min (n - 2) bin
  in
  Log_writer.append ~head t.log ~kind ~ino ~blockno ~version ~mtime payload

(* {1 Inode handles} *)

let load_handle t ino =
  let iaddr = Inode_map.location t.imap ino in
  if Types.Iaddr.is_nil iaddr then Types.fs_error "no such inode %d" ino;
  if Types.Iaddr.equal iaddr placeholder_iaddr then
    Types.corrupt "inode %d has no on-disk copy and no handle" ino;
  let b = read_disk_block t (Types.Iaddr.block iaddr) in
  match Inode.decode b ~slot:(Types.Iaddr.slot iaddr) with
  | None -> Types.corrupt "inode %d: slot %a is unused" ino Types.Iaddr.pp iaddr
  | Some inode ->
      if inode.Inode.ino <> ino then
        Types.corrupt "inode %d: slot holds inode %d" ino inode.Inode.ino;
      let fmap = Filemap.load ~read:(read_disk_block t) t.layout inode in
      { inode; fmap; inode_dirty = false; content = None }

let get_handle t ino =
  match Hashtbl.find_opt t.handles ino with
  | Some h -> h
  | None ->
      let h = load_handle t ino in
      Hashtbl.replace t.handles ino h;
      h

(* Bound the handle cache; only clean handles may be dropped. *)
let handle_cache_limit = 100_000

let maybe_evict_handles t =
  if Hashtbl.length t.handles > handle_cache_limit then begin
    let victims = ref [] in
    Hashtbl.iter
      (fun ino h ->
        if
          (not h.inode_dirty)
          && (not (Filemap.dirty h.fmap))
          && ino <> Types.root_ino
        then victims := ino :: !victims)
      t.handles;
    List.iter (Hashtbl.remove t.handles) !victims
  end

let version_of t ino = Inode_map.version t.imap ino

(* {1 File block IO} *)

(* Promotion-on-read (tiered volumes): count disk reads landing in
   slow-tier segments and migrate a segment back under the fast tier
   once [promote_reads] of them accumulate.  Metadata traffic from the
   cleaner and checkpoint machinery is excluded — only demand reads
   prove a segment hot. *)
let note_tier_read t addr =
  match t.tier with
  | None -> ()
  | Some ti ->
      let threshold = t.config.Config.promote_reads in
      if threshold > 0 && (not t.in_cleaner) && not t.in_checkpoint then begin
        let seg = Layout.seg_of_block t.layout addr in
        let active = Log_writer.active_segments t.log in
        if
          seg >= 0
          && seg < Vdev_tier.nchunks ti
          && (not (List.mem seg active))
          && (not (Hashtbl.mem t.cleaning_victims seg))
          && Vdev_tier.chunk_tier ti seg = Vdev_tier.Slow
        then begin
          let n =
            1 + Option.value ~default:0 (Hashtbl.find_opt t.tier_reads seg)
          in
          let promote () =
            if Vdev_tier.free_chunks ti ~tier:Vdev_tier.Fast > 0 then
              Vdev_tier.migrate ti ~chunk:seg ~target:Vdev_tier.Fast
            else
              (* Free pool drained: swap with a clean fast-mapped segment
                 (overwrite-safe by the checkpoint rule), which lands on
                 the slow tier as demotion capacity in the same move. *)
              let donor_ok s =
                s <> seg
                && (not (List.mem s active))
                && (not (Hashtbl.mem t.cleaning_victims s))
                && Vdev_tier.chunk_tier ti s = Vdev_tier.Fast
              in
              match List.filter donor_ok !(t.reusable) with
              (* Keep at least one fast clean segment in reserve for the
                 write head — promotion must not starve [pick_clean]. *)
              | d :: _ :: _ -> Vdev_tier.swap ti ~chunk:seg ~dead:d
              | _ -> false
          in
          if n >= threshold && promote () then begin
            Hashtbl.remove t.tier_reads seg;
            Metrics.incr t.obs.promote_segments
          end
          else Hashtbl.replace t.tier_reads seg n
        end
      end

let read_file_block t h ino blockno =
  match Hashtbl.find_opt t.dirty_data (ino, blockno) with
  | Some b -> Bytes.copy b
  | None ->
      let addr = Filemap.get h.fmap blockno in
      if addr = Types.nil_addr then Bytes.make (block_size t) '\000'
      else begin
        note_tier_read t addr;
        read_disk_block t addr
      end

let put_dirty_block t ino blockno b =
  if not (Hashtbl.mem t.dirty_data (ino, blockno)) then
    t.dirty_count <- t.dirty_count + 1;
  Hashtbl.replace t.dirty_data (ino, blockno) b

(* {1 Flushing the file cache to the log} *)

let flush_dirops t =
  if t.pending_dirops <> [] then begin
    let records = List.rev t.pending_dirops in
    t.pending_dirops <- [];
    let blocks = Dir_log.encode_blocks ~block_size:(block_size t) records in
    List.iter
      (fun b ->
        let (_ : Types.baddr) =
          append_block t ~kind:Types.Dir_log ~ino:0 ~blockno:0 ~version:0
            ~mtime:t.clock (Log_writer.Bytes b)
        in
        ())
      blocks
  end

let flush_data_blocks t =
  if Hashtbl.length t.dirty_data > 0 then begin
    (* Group by inode, ascending block numbers, for sequential layout. *)
    let by_ino = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (ino, blockno) b ->
        let l = Option.value ~default:[] (Hashtbl.find_opt by_ino ino) in
        Hashtbl.replace by_ino ino ((blockno, b) :: l))
      t.dirty_data;
    let inos = Hashtbl.fold (fun ino _ acc -> ino :: acc) by_ino [] in
    List.iter
      (fun ino ->
        let h = get_handle t ino in
        let blocks =
          List.sort (fun (a, _) (b, _) -> compare a b) (Hashtbl.find by_ino ino)
        in
        List.iter
          (fun (blockno, b) ->
            let old = Filemap.get h.fmap blockno in
            let addr =
              append_block t ~kind:Types.Data ~ino ~blockno
                ~version:(version_of t ino) ~mtime:h.inode.Inode.mtime
                (Log_writer.Bytes b)
            in
            Filemap.set h.fmap blockno addr;
            if old <> Types.nil_addr then kill_addr t old ~bytes:(block_size t);
            Hashtbl.remove t.dirty_data (ino, blockno))
          blocks;
        h.inode_dirty <- true)
      (List.sort compare inos);
    t.dirty_count <- 0
  end

let flush_filemaps_and_inodes t =
  (* Indirect blocks first (the inode must point at their new copies). *)
  let dirty_inos = ref [] in
  Hashtbl.iter
    (fun ino h ->
      (* The map flush also refreshes the inode's direct pointers, so it
         must run for every inode about to be written, not only when an
         indirect chunk is dirty. *)
      if Filemap.dirty h.fmap || h.inode_dirty then begin
        Filemap.flush h.fmap h.inode
          ~alloc:(fun ~kind ~blockno payload ->
            append_block t ~kind ~ino ~blockno ~version:(version_of t ino)
              ~mtime:h.inode.Inode.mtime (Log_writer.Bytes payload))
          ~free:(fun addr -> kill_addr t addr ~bytes:(block_size t));
        dirty_inos := (ino, h) :: !dirty_inos
      end)
    t.handles;
  (* Pack dirty inodes into inode blocks. *)
  let pending = List.sort (fun (a, _) (b, _) -> compare a b) !dirty_inos in
  let per_block = t.layout.Layout.inodes_per_block in
  let inode_size = t.layout.Layout.inode_size in
  let rec pack = function
    | [] -> ()
    | group ->
        let n = min per_block (List.length group) in
        let batch = List.filteri (fun i _ -> i < n) group in
        let rest = List.filteri (fun i _ -> i >= n) group in
        let b = Bytes.make (block_size t) '\000' in
        let newest =
          List.fold_left
            (fun acc (_, h) -> Float.max acc h.inode.Inode.mtime)
            0.0 batch
        in
        List.iteri (fun slot (_, h) -> Inode.encode h.inode b ~slot) batch;
        let addr =
          append_block t ~kind:Types.Inode_block ~ino:0 ~blockno:0 ~version:0
            ~mtime:newest (Log_writer.Bytes b)
        in
        let seg = Layout.seg_of_block t.layout addr in
        List.iteri
          (fun slot (ino, h) ->
            let old = Inode_map.location t.imap ino in
            if
              (not (Types.Iaddr.is_nil old))
              && not (Types.Iaddr.equal old placeholder_iaddr)
            then
              Seg_usage.kill t.usage
                (Layout.seg_of_block t.layout (Types.Iaddr.block old))
                ~bytes:inode_size;
            Seg_usage.add_live t.usage seg ~bytes:inode_size
              ~mtime:h.inode.Inode.mtime;
            Inode_map.set_location t.imap ino (Types.Iaddr.make ~block:addr ~slot);
            h.inode_dirty <- false)
          batch;
        pack rest
  in
  pack pending

(* Flush order matters for recovery: directory-log records first, then
   data, then indirect blocks, then inodes (Section 4.2). *)
let flush_internal t ~cleaner =
  let saved = !(t.cleaner_attr) in
  t.cleaner_attr := cleaner;
  Fun.protect
    ~finally:(fun () -> t.cleaner_attr := saved)
    (fun () ->
      flush_dirops t;
      flush_data_blocks t;
      flush_filemaps_and_inodes t;
      Log_writer.sync t.log)

(* [sync] is the fsync barrier: flush, then await every outstanding log
   write so durability is settled before returning.  Internal flushes
   (buffer pressure, the cleaner) skip the barrier and pipeline. *)
let sync t =
  flush_internal t ~cleaner:false;
  ignore (Log_writer.barrier t.log)

(* {1 Checkpoints} *)

let refresh_reusable t =
  let active = Log_writer.active_segments t.log in
  t.reusable :=
    List.filter
      (fun s -> not (List.mem s active))
      (Seg_usage.clean_segments t.usage);
  t.reusable_len := List.length !(t.reusable)

let checkpoint t =
  if t.in_checkpoint then ()
  else begin
    t.in_checkpoint <- true;
    let before = Io_stats.copy (Vdev.stats t.disk) in
    Fun.protect
      ~finally:(fun () ->
        t.in_checkpoint <- false;
        let d = Io_stats.diff (Vdev.stats t.disk) before in
        Metrics.observe t.obs.ckpt_busy d.Io_stats.busy_s;
        Metrics.observe t.obs.ckpt_blocks
          (float_of_int d.Io_stats.blocks_written))
      (fun () ->
        flush_internal t ~cleaner:false;
        (* Imap and usage blocks self-describe accounting that appending
           them changes, so payloads are rendered lazily at batch-write
           time and the dirty flag is cleared when the payload is
           rendered.  A batch may auto-sync mid-cycle, in which case the
           cycle's later appends re-dirty already-written blocks — so
           cycles repeat until a whole cycle lands in one batch and
           nothing is dirty after the sync. *)
        let cycles = ref 0 in
        let dirty_remains () =
          Inode_map.dirty_blocks t.imap <> [] || Seg_usage.dirty_blocks t.usage <> []
        in
        while dirty_remains () do
          incr cycles;
          if !cycles > 100 then
            Types.corrupt "checkpoint: metadata flush failed to converge";
          List.iter
            (fun i ->
              let old = Inode_map.block_addr t.imap i in
              let fresh =
                append_block t ~kind:Types.Imap ~ino:0 ~blockno:i ~version:0
                  ~mtime:t.clock
                  (Log_writer.Lazy
                     (fun () ->
                       let b = Inode_map.encode_block t.imap i in
                       Inode_map.clear_block_dirty t.imap i;
                       b))
              in
              Inode_map.set_block_addr t.imap i fresh;
              if old <> Types.nil_addr then kill_addr t old ~bytes:(block_size t))
            (Inode_map.dirty_blocks t.imap);
          List.iter
            (fun i ->
              let old = Seg_usage.block_addr t.usage i in
              let fresh =
                append_block t ~kind:Types.Seg_usage ~ino:0 ~blockno:i
                  ~version:0 ~mtime:t.clock
                  (Log_writer.Lazy
                     (fun () ->
                       let b = Seg_usage.encode_block t.usage i in
                       Seg_usage.clear_block_dirty t.usage i;
                       b))
              in
              Seg_usage.set_block_addr t.usage i fresh;
              if old <> Types.nil_addr then kill_addr t old ~bytes:(block_size t))
            (Seg_usage.dirty_blocks t.usage);
          Log_writer.sync t.log
        done;
        (* The checkpoint region must not land ahead of the log blocks
           it points at: barrier before writing it. *)
        ignore (Log_writer.barrier t.log);
        let region =
          {
            Checkpoint.timestamp = t.clock;
            log_seq = Log_writer.seq t.log;
            heads =
              Array.map
                (fun (p : Log_writer.position) ->
                  {
                    Checkpoint.cur_seg = p.Log_writer.pos_seg;
                    cur_off = p.Log_writer.pos_off;
                    next_seg = p.Log_writer.pos_next;
                  })
                (Log_writer.positions t.log);
            imap_addrs =
              Array.init (Inode_map.nblocks t.imap) (Inode_map.block_addr t.imap);
            usage_addrs =
              Array.init (Seg_usage.nblocks t.usage) (Seg_usage.block_addr t.usage);
          }
        in
        Checkpoint.write t.layout t.disk ~region:t.ckpt_region region;
        t.ckpt_region <- 1 - t.ckpt_region;
        t.ops_since_ckpt <- 0;
        t.blocks_since_ckpt <- 0;
        Fs_stats.note_checkpoint t.stats;
        refresh_reusable t;
        maybe_evict_handles t;
        t.checkpoint_hook ())
  end

(* {1 The segment cleaner} *)

let seg_utilization t s = Seg_usage.utilization t.usage s
let clean_segment_count t = Seg_usage.clean_count t.usage

(* One buffer flush can consume several segments before the cleaner gets
   another chance to run — in the worst case every buffered block belongs
   to a different large file and drags two indirect-block rewrites and an
   inode with it — so the trigger must leave that much headroom
   regardless of the configured threshold. *)
let flush_need t =
  ((3 * t.config.Config.write_buffer_blocks) + t.layout.Layout.seg_blocks - 1)
  / t.layout.Layout.seg_blocks

(* Each write head beyond the first pins one extra clean segment as its
   standing reservation; those count as "clean" in the usage table but
   can never be handed out, so the watermarks must sit above them. *)
let head_reserve t = t.config.Config.log_heads - 1

let clean_start_effective t =
  max t.config.Config.clean_start (flush_need t + 2) + head_reserve t

let clean_stop_effective t =
  max (t.config.Config.clean_stop + head_reserve t) (clean_start_effective t + 2)

(* Parse every log write found in a victim segment's in-memory image.
   Stale summaries from a previous life of the segment may survive here;
   the entries they describe simply fail the liveness checks. *)
let parse_segment_image t ~seg buf =
  let bs = block_size t in
  let seg_blocks = t.layout.Layout.seg_blocks in
  let results = ref [] in
  let rec walk slot =
    if slot <= seg_blocks - 2 then begin
      let sum_block = Bytes.sub buf (slot * bs) bs in
      match Summary.decode sum_block with
      | None -> ()
      | Some s ->
          if s.Summary.seg <> seg || s.Summary.slot <> slot then ()
          else begin
            let n = List.length s.Summary.entries in
            if slot + 1 + n > seg_blocks then ()
            else begin
              List.iteri
                (fun i e ->
                  let addr = Layout.seg_first_block t.layout seg + slot + 1 + i in
                  let payload = Bytes.sub buf ((slot + 1 + i) * bs) bs in
                  results := (e, addr, payload) :: !results)
                s.Summary.entries;
              walk (Summary.next_slot s)
            end
          end
    end
  in
  walk 0;
  List.rev !results

(* Read [addrs] into [prefetched], coalescing consecutive addresses into
   one ranged read each.  Runs contain exactly the requested blocks (no
   dead filler), so the read accounting still reflects "just the live
   blocks"; going through [t.dev] keeps the block cache coherent and
   lets already-cached blocks satisfy part of a run. *)
let prefetch_runs t ~prefetched addrs =
  let addrs =
    List.sort_uniq compare
      (List.filter (fun a -> not (Hashtbl.mem prefetched a)) addrs)
  in
  let bs = block_size t in
  let read_run first len =
    Fs_stats.note_segment_read t.stats ~blocks:len;
    let buf = Vdev.read_blocks t.dev first len in
    for i = 0 to len - 1 do
      Hashtbl.replace prefetched (first + i) (Bytes.sub buf (i * bs) bs)
    done
  in
  let rec go = function
    | [] -> ()
    | first :: rest ->
        let rec run last = function
          | a :: more when a = last + 1 -> run a more
          | tail ->
              read_run first (last - first + 1);
              go tail
        in
        run first rest
  in
  go addrs

(* Live-blocks cleaning: walk the summary chain, handing out payload
   thunks that serve from [prefetched] when the coalescing pass already
   pulled the block in, and fall back to a single cached read otherwise
   — the device is only ever charged for blocks actually needed
   (Section 3.4's untried idea). *)
let parse_segment_chain_live t ~prefetched ~seg =
  let seg_blocks = t.layout.Layout.seg_blocks in
  let first = Layout.seg_first_block t.layout seg in
  let results = ref [] in
  let rec walk slot =
    if slot <= seg_blocks - 2 then begin
      Fs_stats.note_segment_read t.stats ~blocks:1;
      let sum_block = Vdev.read_block t.dev (first + slot) in
      match Summary.decode sum_block with
      | None -> ()
      | Some su ->
          if su.Summary.seg <> seg || su.Summary.slot <> slot then ()
          else begin
            let n = List.length su.Summary.entries in
            if slot + 1 + n > seg_blocks then ()
            else begin
              List.iteri
                (fun i e ->
                  let addr = first + slot + 1 + i in
                  let payload () =
                    match Hashtbl.find_opt prefetched addr with
                    | Some b -> b
                    | None ->
                        Fs_stats.note_segment_read t.stats ~blocks:1;
                        Vdev.read_block t.dev addr
                  in
                  results := (e, addr, payload) :: !results)
                su.Summary.entries;
              walk (Summary.next_slot su)
            end
          end
    end
  in
  walk 0;
  List.rev !results

type live_item =
  | Live_data of {
      ino : Types.ino;
      blockno : int;
      version : int;
      payload : unit -> bytes;
          (** whole-segment cleaning hands out a slice of the segment
              image; live-blocks cleaning reads the block on demand *)
      mtime : float;
    }
  | Live_indirect of { ino : Types.ino; sblockno : int }
  | Live_inode of Types.ino
  | Live_imap_block of int
  | Live_usage_block of int

(* Liveness tests of Section 3.3: version (uid) first — a stale version
   discards the block with no further IO — then the block pointer. *)
let classify_live t (e : Summary.entry) addr payload =
  match e.Summary.kind with
  | Types.Summary | Types.Dir_log -> []
  | Types.Data ->
      if
        Inode_map.is_allocated t.imap e.Summary.ino
        && Inode_map.version t.imap e.Summary.ino = e.Summary.version
      then begin
        let h = get_handle t e.Summary.ino in
        if Filemap.get h.fmap e.Summary.blockno = addr then
          [
            Live_data
              {
                ino = e.Summary.ino;
                blockno = e.Summary.blockno;
                version = e.Summary.version;
                payload;
                mtime = e.Summary.mtime;
              };
          ]
        else []
      end
      else []
  | Types.Indirect | Types.Dindirect ->
      if
        Inode_map.is_allocated t.imap e.Summary.ino
        && Inode_map.version t.imap e.Summary.ino = e.Summary.version
      then begin
        let h = get_handle t e.Summary.ino in
        if Filemap.indirect_addr h.fmap ~sblockno:e.Summary.blockno = addr then
          [ Live_indirect { ino = e.Summary.ino; sblockno = e.Summary.blockno } ]
        else []
      end
      else []
  | Types.Inode_block ->
      let payload = payload () in
      let acc = ref [] in
      for slot = 0 to t.layout.Layout.inodes_per_block - 1 do
        match Inode.decode payload ~slot with
        | None -> ()
        | Some inode ->
            let ino = inode.Inode.ino in
            if
              ino >= 0
              && ino < Inode_map.max_inodes t.imap
              && Types.Iaddr.equal
                   (Inode_map.location t.imap ino)
                   (Types.Iaddr.make ~block:addr ~slot)
            then acc := Live_inode ino :: !acc
      done;
      List.rev !acc
  | Types.Imap ->
      if
        e.Summary.blockno >= 0
        && e.Summary.blockno < Inode_map.nblocks t.imap
        && Inode_map.block_addr t.imap e.Summary.blockno = addr
      then [ Live_imap_block e.Summary.blockno ]
      else []
  | Types.Seg_usage ->
      if
        e.Summary.blockno >= 0
        && e.Summary.blockno < Seg_usage.nblocks t.usage
        && Seg_usage.block_addr t.usage e.Summary.blockno = addr
      then [ Live_usage_block e.Summary.blockno ]
      else []

let relocate_item t item =
  match item with
  | Live_data { ino; blockno; version; payload; mtime } ->
      let h = get_handle t ino in
      let old = Filemap.get h.fmap blockno in
      let addr =
        append_block t ~kind:Types.Data ~ino ~blockno ~version ~mtime
          (Log_writer.Bytes (payload ()))
      in
      Filemap.set h.fmap blockno addr;
      h.inode_dirty <- true;
      if old <> Types.nil_addr then kill_addr t old ~bytes:(block_size t)
  | Live_indirect { ino; sblockno } ->
      let h = get_handle t ino in
      Filemap.mark_indirect_dirty h.fmap ~sblockno;
      h.inode_dirty <- true
  | Live_inode ino ->
      let h = get_handle t ino in
      h.inode_dirty <- true
  | Live_imap_block i ->
      let old = Inode_map.block_addr t.imap i in
      let fresh =
        append_block t ~kind:Types.Imap ~ino:0 ~blockno:i ~version:0
          ~mtime:t.clock
          (Log_writer.Lazy
             (fun () ->
               let b = Inode_map.encode_block t.imap i in
               Inode_map.clear_block_dirty t.imap i;
               b))
      in
      Inode_map.set_block_addr t.imap i fresh;
      if old <> Types.nil_addr then kill_addr t old ~bytes:(block_size t)
  | Live_usage_block i ->
      let old = Seg_usage.block_addr t.usage i in
      let fresh =
        append_block t ~kind:Types.Seg_usage ~ino:0 ~blockno:i ~version:0
          ~mtime:t.clock
          (Log_writer.Lazy
             (fun () ->
               let b = Seg_usage.encode_block t.usage i in
               Seg_usage.clear_block_dirty t.usage i;
               b))
      in
      Seg_usage.set_block_addr t.usage i fresh;
      if old <> Types.nil_addr then kill_addr t old ~bytes:(block_size t)

let clean_victims t ~bg victims =
  (* Read the victims and identify live data across all of them, then
     write the survivors out grouped by the mount-time policy. *)
  List.iter (fun seg -> Hashtbl.replace t.cleaning_victims seg ()) victims;
  Metrics.incr t.obs.cleaner_passes;
  Metrics.incr (if bg then t.obs.bg_passes else t.obs.fg_passes);
  Metrics.incr
    ~by:(List.length victims)
    (if bg then t.obs.bg_segments else t.obs.fg_segments);
  let prefetched = Hashtbl.create 64 in
  let live = ref [] in
  let data_addrs = ref [] in
  List.iter
    (fun seg ->
      let u = seg_utilization t seg in
      Fs_stats.note_segment_cleaned t.stats ~u;
      Metrics.dist_add t.obs.victim_u u;
      Metrics.observe t.obs.victim_fill u;
      Metrics.observe t.obs.victim_age
        (Float.max 0.0 (t.clock -. Seg_usage.mtime t.usage seg));
      if Seg_usage.live_bytes t.usage seg > 0 then begin
        let entries =
          match t.config.Config.cleaner_read with
          | Config.Whole_segment ->
              let buf =
                Vdev.read_blocks t.dev
                  (Layout.seg_first_block t.layout seg)
                  t.layout.Layout.seg_blocks
              in
              Fs_stats.note_segment_read t.stats
                ~blocks:t.layout.Layout.seg_blocks;
              List.map
                (fun (e, addr, payload) -> (e, addr, fun () -> payload))
                (parse_segment_image t ~seg buf)
          | Config.Live_blocks ->
              let entries = parse_segment_chain_live t ~prefetched ~seg in
              (* Classification decodes inode blocks immediately; pull
                 them in as coalesced runs before it starts. *)
              prefetch_runs t ~prefetched
                (List.filter_map
                   (fun ((e : Summary.entry), addr, _) ->
                     match e.Summary.kind with
                     | Types.Inode_block -> Some addr
                     | _ -> None)
                   entries);
              entries
        in
        List.iter
          (fun (e, addr, payload) ->
            List.iter
              (fun item ->
                (match item with
                | Live_data _ -> data_addrs := addr :: !data_addrs
                | _ -> ());
                live := (item, e.Summary.mtime) :: !live)
              (classify_live t e addr payload))
          entries
      end)
    victims;
  (* Live data payloads are only read at relocation time; now that the
     live set is known, fetch it as coalesced runs across all victims so
     the thunks hit [prefetched] instead of seeking block by block. *)
  (match t.config.Config.cleaner_read with
  | Config.Live_blocks -> prefetch_runs t ~prefetched !data_addrs
  | Config.Whole_segment -> ());
  let ordered =
    Cleaner.order_for_grouping ~grouping:t.config.Config.grouping_policy
      (List.rev !live)
  in
  let saved = !(t.cleaner_attr) in
  t.cleaner_attr := true;
  Fun.protect
    ~finally:(fun () -> t.cleaner_attr := saved)
    (fun () ->
      List.iter (relocate_item t) ordered;
      flush_internal t ~cleaner:true);
  (* Everything live has been relocated; the victims must be empty. *)
  List.iter
    (fun seg ->
      let left = Seg_usage.live_bytes t.usage seg in
      if left <> 0 then
        Types.corrupt "segment %d still has %d live bytes after cleaning" seg
          left;
      Seg_usage.set_clean t.usage seg)
    victims;
  Hashtbl.reset t.cleaning_victims

(* A background pass must compact, not merely copy: relocating a
   (nearly) fully-live segment consumes as much clean space as it frees,
   so an idle loop at a pool it cannot raise would churn the disk
   forever.  The emergency path keeps no such floor — under
   [clean_start] any yield matters. *)
let bg_max_u = 0.95

(* One budgeted victim batch.  [candidates] holds the dirty-segment ids
   scanned once by the caller; cleaned victims are subtracted so later
   passes never re-walk the whole usage table.  Utilisation and age are
   still re-read per pass (relocation changes both).  Returns
   [(cleaned, freed)]: how many victims the pass consumed and the net
   change in clean segments — a pass can clean a victim yet free nothing
   this step (the relocation rolled the log into a fresh segment) while
   still compacting. *)
let clean_pass t ~bg ~max_victims ~candidates =
  op_span t (if bg then t.obs.bg_busy else t.obs.fg_busy) @@ fun () ->
  let before = clean_segment_count t in
  let active = Log_writer.active_segments t.log in
  let scored =
    !candidates
    |> List.filter (fun s ->
           (not (List.mem s active)) && Seg_usage.live_bytes t.usage s > 0)
    |> List.map (fun s ->
           {
             Cleaner.seg = s;
             u = seg_utilization t s;
             age = Float.max 0.0 (t.clock -. Seg_usage.mtime t.usage s);
           })
  in
  let scored =
    if bg then List.filter (fun c -> c.Cleaner.u <= bg_max_u) scored
    else scored
  in
  (* Below the critical threshold (the pool can no longer absorb even
     one buffer flush), yield is all that matters: fall back to greedy
     so a cost-benefit (or ablation) policy that favours old nearly-full
     segments cannot starve the writer of clean segments. *)
  let policy =
    if !(t.reusable_len) < flush_need t then Config.Greedy
    else t.config.Config.cleaning_policy
  in
  let victims =
    Cleaner.select ~policy
      ~rand:(fun n -> Prng.int t.rng n)
      ~candidates:scored ~count:max_victims ()
  in
  (* Relocation writes into clean segments before any victim is freed,
     so bound the pass by what the reusable pool can absorb, keeping one
     segment of slack for the checkpoint and 30% headroom for the inode
     and indirect blocks rewritten alongside the relocated data. *)
  let budget = Float.max 0.7 (float_of_int (!(t.reusable_len) - 1)) in
  let victims =
    let acc = ref 0.0 in
    List.filter
      (fun s ->
        let cost = (seg_utilization t s *. 1.3) +. 0.05 in
        if !acc +. cost <= budget then begin
          acc := !acc +. cost;
          true
        end
        else false)
      victims
  in
  if victims = [] then (0, 0)
  else begin
    clean_victims t ~bg victims;
    (* Persist the pass: victims only become reusable once the
       checkpoint no longer references their old contents. *)
    checkpoint t;
    candidates := List.filter (fun s -> not (List.mem s victims)) !candidates;
    (List.length victims, clean_segment_count t - before)
  end

let clean t =
  if t.in_cleaner then ()
  else begin
    t.in_cleaner <- true;
    let before = Io_stats.copy (Vdev.stats t.disk) in
    Fun.protect
      ~finally:(fun () ->
        t.in_cleaner <- false;
        (* The whole invocation — flush, passes, checkpoints — stalls
           the foreground caller that triggered it. *)
        let d = Io_stats.diff (Vdev.stats t.disk) before in
        Metrics.observe t.obs.cleaner_stall d.Io_stats.busy_s)
      (fun () ->
        flush_internal t ~cleaner:false;
        (* Scan the usage table once; passes subtract their victims. *)
        let candidates = ref (Seg_usage.dirty_segments t.usage) in
        let continue_cleaning = ref true in
        while
          !continue_cleaning && clean_segment_count t < clean_stop_effective t
        do
          let _, freed =
            clean_pass t ~bg:false
              ~max_victims:t.config.Config.segs_per_pass ~candidates
          in
          if freed <= 0 then continue_cleaning := false
        done;
        (* Segments that emptied by themselves since the last checkpoint
           also only become reusable once a checkpoint stops referencing
           their contents — so always finish with one, even when no pass
           ran. *)
        checkpoint t)
  end

(* {2 Idle-time background cleaning}

   The paper suggests cleaning "at night or during idle periods"
   (Section 4): an idle caller pulls the clean pool up to a high
   watermark well above the emergency threshold, so foreground writers
   (almost) never hit the stall in [clean].  The effective watermarks sit
   strictly above the foreground trigger, [clean_start_effective]. *)

let bg_clean_start_effective t =
  max t.config.Config.bg_clean_start (clean_start_effective t + 1)

let bg_clean_stop_effective t =
  max t.config.Config.bg_clean_stop (bg_clean_start_effective t + 2)

(* Hysteresis latch: engage when the pool falls below the low watermark,
   stay engaged until it refills to the high one.  Returns the segments
   still owed (0 = nothing to do right now). *)
let bg_pending t =
  let n = clean_segment_count t in
  if t.bg_active then
    if n >= bg_clean_stop_effective t then begin
      t.bg_active <- false;
      0
    end
    else bg_clean_stop_effective t - n
  else if n < bg_clean_start_effective t then begin
    t.bg_active <- true;
    bg_clean_stop_effective t - n
  end
  else 0

let bg_clean_step ?max_segments t =
  if t.in_cleaner then 0
  else if bg_pending t = 0 then 0
  else begin
    let max_victims =
      match max_segments with
      | Some n -> max 1 n
      | None -> t.config.Config.segs_per_pass
    in
    t.in_cleaner <- true;
    Fun.protect
      ~finally:(fun () -> t.in_cleaner <- false)
      (fun () ->
        flush_internal t ~cleaner:false;
        let candidates = ref (Seg_usage.dirty_segments t.usage) in
        let cleaned, _freed = clean_pass t ~bg:true ~max_victims ~candidates in
        if cleaned = 0 then begin
          (* Nothing worth cleaning: every remaining dirty segment is
             pinned, nearly fully live, or over budget.  Disengage so an
             idle caller stops spinning — the watermarks may simply be
             unreachable at this utilisation; the latch re-arms when the
             pool next drains below the low watermark.  (A pass that
             cleaned a victim but freed nothing net still compacted —
             the log just rolled into a fresh segment — so it keeps the
             latch engaged.) *)
          t.bg_active <- false;
          0
        end
        else bg_pending t)
  end

(* {2 Demotion passes (tiered volumes)}

   The cleaner's third regime: instead of compacting, pick cold
   fast-tier segments that are nearly full — cost-benefit {e inverted},
   old age and high u — and copy them wholesale to the slow tier.  One
   sequential chunk copy frees a whole fast-tier segment for the write
   head; compacting the same segment would copy as much data for almost
   no space.  The placement map is the only thing that changes: block
   addresses are tier-logical, so no FS metadata moves and no checkpoint
   is needed. *)

let demote_step ?max_segments t =
  match t.tier with
  | None -> 0
  | Some ti ->
      if t.in_cleaner then 0
      else begin
        let active = Log_writer.active_segments t.log in
        let eligible s =
          (not (List.mem s active))
          && (not (Hashtbl.mem t.cleaning_victims s))
          && Seg_usage.live_bytes t.usage s > 0
          && Vdev_tier.chunk_tier ti s = Vdev_tier.Fast
        in
        let candidate s =
          {
            Cleaner.seg = s;
            u = seg_utilization t s;
            age = Float.max 0.0 (t.clock -. Seg_usage.mtime t.usage s);
          }
        in
        let candidates =
          Seg_usage.dirty_segments t.usage |> List.filter eligible
          |> List.map candidate
        in
        (* Capacity = the free pool plus clean slow-mapped segments,
           whose dead contents can absorb a demoted chunk via [swap]
           (the donor surfaces on the fast tier as a clean segment for
           the write head — demotion and head placement in one move).
           Reusable segments are overwrite-safe by the checkpoint rule,
           exactly the contract [swap] asks for. *)
        let donor_ok s =
          (not (List.mem s active))
          && (not (Hashtbl.mem t.cleaning_victims s))
          && Vdev_tier.chunk_tier ti s = Vdev_tier.Slow
        in
        let donors = ref (List.filter donor_ok !(t.reusable)) in
        let capacity () =
          Vdev_tier.free_chunks ti ~tier:Vdev_tier.Slow + List.length !donors
        in
        if capacity () = 0 then 0
        else begin
          let budget =
            let cap =
              match max_segments with
              | Some n -> max 1 n
              | None -> t.config.Config.segs_per_pass
            in
            min cap (capacity ())
          in
          let victims =
            Cleaner.select_demotion ~candidates
              ~min_age:t.config.Config.demote_age_s ~count:budget
          in
          if victims = [] then 0
          else begin
            op_span t t.obs.demote_busy (fun () ->
                Metrics.incr t.obs.demote_passes;
                List.iter
                  (fun s ->
                    let moved =
                      if Vdev_tier.free_chunks ti ~tier:Vdev_tier.Slow > 0 then
                        Vdev_tier.migrate ti ~chunk:s ~target:Vdev_tier.Slow
                      else
                        match !donors with
                        | [] -> false
                        | d :: rest ->
                            donors := rest;
                            Vdev_tier.swap ti ~chunk:s ~dead:d
                    in
                    if moved then Metrics.incr t.obs.demote_segments)
                  victims);
            (* Report remaining work only while there is migration
               capacity left, so an idle loop drains candidates and then
               stops: a slow tier with no free chunk and no clean donor
               is a legitimate resting state, refilled when the cleaner
               frees slow segments. *)
            if capacity () = 0 then 0
            else
              List.length
                (List.filter
                   (fun (c : Cleaner.candidate) ->
                     eligible c.Cleaner.seg
                     && c.Cleaner.age >= t.config.Config.demote_age_s)
                   candidates)
          end
        end
      end

(* An idle step first serves the compaction watermarks (clean space is
   the scarcer resource), then spends leftover idleness demoting cold
   segments off the fast tier.  It also restocks the reusable pool:
   segments that emptied since the last checkpoint only become reusable
   once a checkpoint stops referencing their contents, and when the
   clean pool is already above the bg watermarks no pass runs to
   provide one — left alone, the pool drains until a foreground write
   hits the emergency [clean] stall.  Paying for the checkpoint here
   keeps it in the idle window. *)
let clean_step ?max_segments t =
  (* The gap must clear 2 because [refresh_reusable] always excludes the
     current and reserved segments — a smaller gap means a checkpoint
     would recover nothing, and firing on it would checkpoint on every
     idle step. *)
  if
    (not t.in_cleaner)
    && !(t.reusable_len) < bg_clean_stop_effective t
    && clean_segment_count t - !(t.reusable_len) > 2
  then checkpoint t;
  let owed = bg_clean_step ?max_segments t in
  if owed > 0 then owed else demote_step ?max_segments t

let on_checkpoint t hook = t.checkpoint_hook <- hook

let drop_caches t =
  flush_internal t ~cleaner:false;
  Hashtbl.reset t.handles;
  Vdev_cache.clear t.cache

(* {1 Operation epilogue} *)

let finish_op t =
  t.ops_since_ckpt <- t.ops_since_ckpt + 1;
  if
    (not t.in_checkpoint)
    && ((t.config.Config.checkpoint_interval_ops > 0
        && t.ops_since_ckpt >= t.config.Config.checkpoint_interval_ops)
       || (t.config.Config.checkpoint_interval_blocks > 0
          && t.blocks_since_ckpt >= t.config.Config.checkpoint_interval_blocks))
  then checkpoint t;
  if (not t.in_cleaner) && !(t.reusable_len) < clean_start_effective t then
    clean t

(* {1 File IO} *)

let get_file_handle t ino =
  let h = get_handle t ino in
  (match h.inode.Inode.ftype with
  | Types.Regular -> ()
  | Types.Directory -> Types.fs_error "inode %d is a directory" ino);
  h

let write_blocks_of t h ino ~off data =
  let bs = block_size t in
  let len = Bytes.length data in
  if off < 0 then Types.fs_error "negative offset";
  let first = off / bs and last = (off + len - 1) / bs in
  h.inode.Inode.mtime <- tick t;
  h.inode_dirty <- true;
  for blockno = first to last do
    let block_start = blockno * bs in
    let lo = max off block_start in
    let hi = min (off + len) (block_start + bs) in
    let b =
      if lo = block_start && hi = block_start + bs then
        Bytes.sub data (lo - off) bs
      else begin
        let b = read_file_block t h ino blockno in
        Bytes.blit data (lo - off) b (lo - block_start) (hi - lo);
        b
      end
    in
    put_dirty_block t ino blockno b;
    (* Grow the size with the buffered prefix so a mid-write buffer
       flush persists a self-consistent inode (matters after a crash). *)
    h.inode.Inode.size <- max h.inode.Inode.size hi;
    if t.dirty_count >= t.config.Config.write_buffer_blocks then begin
      flush_internal t ~cleaner:false;
      if (not t.in_cleaner) && !(t.reusable_len) < clean_start_effective t
      then clean t
    end
  done

let write t ino ~off data =
  if Bytes.length data > 0 then
    op_span t t.obs.op_write (fun () ->
        let h = get_file_handle t ino in
        write_blocks_of t h ino ~off data;
        finish_op t)

let read_any t ino ~off ~len =
  let h = get_handle t ino in
  let bs = block_size t in
  if off < 0 || len < 0 then Types.fs_error "negative read range";
  let len = max 0 (min len (h.inode.Inode.size - off)) in
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blockno = abs / bs in
    let in_block = abs mod bs in
    let n = min (bs - in_block) (len - !pos) in
    let b = read_file_block t h ino blockno in
    Bytes.blit b in_block out !pos n;
    pos := !pos + n
  done;
  Inode_map.set_atime t.imap ino t.clock;
  out

let read t ino ~off ~len =
  op_span t t.obs.op_read (fun () -> read_any t ino ~off ~len)

let drop_cached_blocks_from t ino ~first_block =
  let doomed = ref [] in
  Hashtbl.iter
    (fun (i, blockno) _ ->
      if i = ino && blockno >= first_block then doomed := blockno :: !doomed)
    t.dirty_data;
  List.iter
    (fun blockno ->
      Hashtbl.remove t.dirty_data (ino, blockno);
      t.dirty_count <- t.dirty_count - 1)
    !doomed

let truncate_internal t ino ~len =
  let h = get_handle t ino in
  if len < 0 then Types.fs_error "negative truncate length";
  let bs = block_size t in
  let keep_blocks = (len + bs - 1) / bs in
  drop_cached_blocks_from t ino ~first_block:keep_blocks;
  Filemap.truncate h.fmap ~blocks:keep_blocks
    ~free:(fun addr -> kill_addr t addr ~bytes:bs);
  if len < h.inode.Inode.size && len mod bs <> 0 then begin
    (* Zero the tail of the new last block so extends re-read zeros. *)
    let blockno = len / bs in
    let b = read_file_block t h ino blockno in
    Bytes.fill b (len mod bs) (bs - (len mod bs)) '\000';
    put_dirty_block t ino blockno b
  end;
  h.inode.Inode.size <- len;
  h.inode.Inode.mtime <- tick t;
  h.inode_dirty <- true;
  if len = 0 then Inode_map.bump_version t.imap ino

let truncate t ino ~len =
  op_span t t.obs.op_truncate (fun () ->
      let (_ : handle) = get_file_handle t ino in
      truncate_internal t ino ~len;
      finish_op t)

(* {1 Directories} *)

let get_dir_handle t ino =
  let h = get_handle t ino in
  (match h.inode.Inode.ftype with
  | Types.Directory -> ()
  | Types.Regular -> Types.fs_error "inode %d is not a directory" ino);
  h

let dir_contents t ino =
  let h = get_dir_handle t ino in
  match h.content with
  | Some b -> Directory.of_bytes b
  | None ->
      let b = read_any t ino ~off:0 ~len:h.inode.Inode.size in
      h.content <- Some b;
      Directory.of_bytes b

(* Rewrite a directory's contents, dirtying only the blocks that
   actually changed (appending an entry touches the count block and the
   tail, not the whole file). *)
let set_dir_contents t ino d =
  let h = get_dir_handle t ino in
  let bs = block_size t in
  let fresh = Directory.to_bytes d in
  let old = match h.content with Some b -> b | None -> Bytes.create 0 in
  let nblocks = (Bytes.length fresh + bs - 1) / bs in
  for blockno = 0 to nblocks - 1 do
    let lo = blockno * bs in
    let hi = min (Bytes.length fresh) (lo + bs) in
    let changed =
      lo >= Bytes.length old
      || hi > Bytes.length old
      || not (Bytes.equal (Bytes.sub fresh lo (hi - lo)) (Bytes.sub old lo (hi - lo)))
    in
    if changed then begin
      let b = Bytes.make bs '\000' in
      Bytes.blit fresh lo b 0 (hi - lo);
      put_dirty_block t ino blockno b
    end
  done;
  if Bytes.length fresh < h.inode.Inode.size then begin
    drop_cached_blocks_from t ino ~first_block:nblocks;
    Filemap.truncate h.fmap ~blocks:nblocks
      ~free:(fun addr -> kill_addr t addr ~bytes:bs)
  end;
  h.inode.Inode.size <- Bytes.length fresh;
  h.inode.Inode.mtime <- tick t;
  h.inode_dirty <- true;
  h.content <- Some fresh;
  if t.dirty_count >= t.config.Config.write_buffer_blocks then begin
    flush_internal t ~cleaner:false;
    if (not t.in_cleaner) && !(t.reusable_len) < clean_start_effective t
    then clean t
  end

let lookup t ~dir name = Directory.find (dir_contents t dir) name

let readdir t ino = Directory.entries (dir_contents t ino)

let queue_dirop t record = t.pending_dirops <- record :: t.pending_dirops

let create_node t ~dir name ~ftype =
  Directory.check_name name;
  let d = dir_contents t dir in
  if Directory.mem d name then Types.fs_error "name %S already exists" name;
  let ino = Inode_map.allocate t.imap in
  let inode = Inode.create ~ino ~ftype ~mtime:(tick t) in
  let h =
    {
      inode;
      fmap = Filemap.create_empty t.layout inode;
      inode_dirty = true;
      content = (match ftype with Types.Directory -> Some (Directory.to_bytes Directory.empty) | Types.Regular -> None);
    }
  in
  Hashtbl.replace t.handles ino h;
  Inode_map.set_location t.imap ino placeholder_iaddr;
  queue_dirop t (Dir_log.Add { dir; name; ino; nlink = 1; fresh = true });
  set_dir_contents t dir (Directory.add d name ino);
  (match ftype with
  | Types.Directory ->
      set_dir_contents t ino Directory.empty
  | Types.Regular -> ());
  finish_op t;
  ino

let create t ~dir name =
  op_span t t.obs.op_create (fun () ->
      create_node t ~dir name ~ftype:Types.Regular)

let mkdir t ~dir name =
  op_span t t.obs.op_mkdir (fun () ->
      create_node t ~dir name ~ftype:Types.Directory)

let link t ~dir name ino =
  op_span t t.obs.op_link @@ fun () ->
  Directory.check_name name;
  let h = get_file_handle t ino in
  let d = dir_contents t dir in
  if Directory.mem d name then Types.fs_error "name %S already exists" name;
  h.inode.Inode.nlink <- h.inode.Inode.nlink + 1;
  h.inode_dirty <- true;
  queue_dirop t
    (Dir_log.Add { dir; name; ino; nlink = h.inode.Inode.nlink; fresh = false });
  set_dir_contents t dir (Directory.add d name ino);
  finish_op t

let delete_file t ino =
  let h = get_handle t ino in
  let bs = block_size t in
  drop_cached_blocks_from t ino ~first_block:0;
  Filemap.iter_mapped h.fmap (fun _ addr -> kill_addr t addr ~bytes:bs);
  List.iter
    (fun (_, addr) -> kill_addr t addr ~bytes:bs)
    (Filemap.indirect_blocks h.fmap);
  let loc = Inode_map.location t.imap ino in
  if
    (not (Types.Iaddr.is_nil loc))
    && not (Types.Iaddr.equal loc placeholder_iaddr)
  then
    Seg_usage.kill t.usage
      (Layout.seg_of_block t.layout (Types.Iaddr.block loc))
      ~bytes:t.layout.Layout.inode_size;
  Inode_map.free t.imap ino;
  Hashtbl.remove t.handles ino

let unlink_internal t ~dir name ~expect =
  let d = dir_contents t dir in
  match Directory.find d name with
  | None -> Types.fs_error "no such entry %S" name
  | Some ino ->
      let h = get_handle t ino in
      (match (expect, h.inode.Inode.ftype) with
      | `File, Types.Directory ->
          Types.fs_error "%S is a directory (use rmdir)" name
      | `Dir, Types.Regular -> Types.fs_error "%S is not a directory" name
      | `Dir, Types.Directory ->
          if not (Directory.is_empty (dir_contents t ino)) then
            Types.fs_error "directory %S is not empty" name
      | `File, Types.Regular -> ());
      let nlink = h.inode.Inode.nlink - 1 in
      queue_dirop t (Dir_log.Remove { dir; name; ino; nlink });
      set_dir_contents t dir (Directory.remove d name);
      if nlink <= 0 then delete_file t ino
      else begin
        h.inode.Inode.nlink <- nlink;
        h.inode_dirty <- true
      end

let unlink t ~dir name =
  op_span t t.obs.op_unlink (fun () ->
      unlink_internal t ~dir name ~expect:`File;
      finish_op t)

let rmdir t ~dir name =
  op_span t t.obs.op_rmdir (fun () ->
      unlink_internal t ~dir name ~expect:`Dir;
      finish_op t)

let rename t ~odir oname ~ndir nname =
  op_span t t.obs.op_rename @@ fun () ->
  Directory.check_name nname;
  let od = dir_contents t odir in
  match Directory.find od oname with
  | None -> Types.fs_error "no such entry %S" oname
  | Some ino ->
      if odir = ndir && oname = nname then ()
      else if lookup t ~dir:ndir nname = Some ino then
        (* POSIX: source and target are links to the same file: no-op. *)
        ()
      else begin
        (* Replace an existing (non-directory) target first. *)
        (match lookup t ~dir:ndir nname with
        | Some _ -> unlink_internal t ~dir:ndir nname ~expect:`File
        | None -> ());
        queue_dirop t (Dir_log.Rename { odir; oname; ndir; nname; ino });
        set_dir_contents t odir (Directory.remove (dir_contents t odir) oname);
        set_dir_contents t ndir (Directory.add (dir_contents t ndir) nname ino);
        finish_op t
      end

(* {1 Stat} *)

let stat t ino =
  let h = get_handle t ino in
  {
    st_ino = ino;
    st_ftype = h.inode.Inode.ftype;
    st_size = h.inode.Inode.size;
    st_nlink = h.inode.Inode.nlink;
    st_mtime = h.inode.Inode.mtime;
    st_atime = Inode_map.atime t.imap ino;
    st_version = Inode_map.version t.imap ino;
  }

let file_size t ino = (get_handle t ino).inode.Inode.size

(* {1 Paths} *)

let split_path path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let resolve t path =
  let rec go dir = function
    | [] -> Some dir
    | name :: rest -> (
        match lookup t ~dir name with
        | None -> None
        | Some ino -> go ino rest)
  in
  go root (split_path path)

let parent_and_leaf t path =
  match List.rev (split_path path) with
  | [] -> Types.fs_error "path %S has no leaf" path
  | leaf :: rev_dirs -> (
      let dirs = List.rev rev_dirs in
      match
        List.fold_left
          (fun acc name ->
            match acc with
            | None -> None
            | Some dir -> lookup t ~dir name)
          (Some root) dirs
      with
      | None -> Types.fs_error "path %S: missing directory" path
      | Some dir -> (dir, leaf))

let create_path t path =
  let dir, leaf = parent_and_leaf t path in
  create t ~dir leaf

let mkdir_path t path =
  let dir, leaf = parent_and_leaf t path in
  mkdir t ~dir leaf

let write_path t path data =
  let dir, leaf = parent_and_leaf t path in
  let ino =
    match lookup t ~dir leaf with
    | Some ino -> ino
    | None -> create t ~dir leaf
  in
  truncate t ino ~len:0;
  write t ino ~off:0 data

let read_path t path =
  match resolve t path with
  | None -> None
  | Some ino -> Some (read t ino ~off:0 ~len:(file_size t ino))

(* {1 Construction} *)

(* Point the registry at every layer we own plus the live Fs_stats
   accounting; callback gauges read the current values at report time. *)
let register_fs_metrics t =
  let m = t.obs.metrics in
  Vdev.register_metrics m t.disk;
  Vdev_cache.register_metrics m t.cache;
  let s = t.stats in
  let g name f = Metrics.gauge_fn m ("fs." ^ name) f in
  let gi name f = g name (fun () -> float_of_int (f s)) in
  gi "log.blocks_new" Fs_stats.blocks_written_new;
  gi "log.blocks_cleaner" Fs_stats.blocks_written_cleaner;
  List.iter
    (fun kind ->
      gi
        ("log.blocks." ^ Types.block_kind_name kind)
        (fun s -> Fs_stats.written_by_kind s kind))
    Types.all_block_kinds;
  gi "cleaner.blocks_read" Fs_stats.blocks_read_cleaner;
  gi "cleaner.segments_cleaned" Fs_stats.segments_cleaned;
  gi "cleaner.segments_cleaned_empty" Fs_stats.segments_cleaned_empty;
  g "cleaner.avg_cleaned_u" (fun () -> Fs_stats.avg_cleaned_u_nonempty s);
  g "write_cost" (fun () -> Fs_stats.write_cost s);
  gi "checkpoints" Fs_stats.checkpoints;
  g "clean_segments" (fun () -> float_of_int (clean_segment_count t));
  (* Per-head traffic: with segregation on, the bench expects the cold
     heads' [blocks] to stay a small fraction of head 0's. *)
  for i = 0 to Log_writer.nheads t.log - 1 do
    let hname field = Printf.sprintf "log.head.%d.%s" i field in
    let hstat f = float_of_int (f (Log_writer.head_stats t.log i)) in
    g (hname "segments") (fun () -> hstat (fun h -> h.Log_writer.segments));
    g (hname "blocks") (fun () -> hstat (fun h -> h.Log_writer.blocks));
    g (hname "syncs") (fun () -> hstat (fun h -> h.Log_writer.syncs))
  done;
  match t.tier with
  | None -> ()
  | Some ti -> Vdev_tier.register_metrics m ti

let make_t ?metrics ?tier disk sb ~config ~imap ~usage ~heads ~seq ~clock
    ~ckpt_region =
  let layout = sb.Superblock.layout in
  (match tier with
  | None -> ()
  | Some ti ->
      (* Chunks must be this layout's segments 1:1 — the demotion and
         promotion paths index the placement map by segment id. *)
      if
        Vdev_tier.base ti <> layout.Layout.seg_start
        || Vdev_tier.chunk_blocks ti <> layout.Layout.seg_blocks
        || Vdev_tier.nchunks ti <> layout.Layout.nsegs
      then
        invalid_arg
          "Fs: tier geometry does not match the layout (chunks must equal \
           segments)");
  let reusable = ref [] in
  let reusable_len = ref 0 in
  let cleaner_attr = ref false in
  let stats = Fs_stats.create () in
  let obs = make_obs ?metrics () in
  let cache = Vdev_cache.create ~capacity:config.Config.cache_blocks disk in
  let dev = Vdev_cache.vdev cache in
  let pick_clean ~exclude =
    let rec pop ~want acc = function
      | [] -> None
      | s :: rest ->
          if List.mem s exclude || not (want s) then pop ~want (s :: acc) rest
          else begin
            reusable := List.rev_append acc rest;
            decr reusable_len;
            Some s
          end
    in
    let any s = ignore s; true in
    let picked =
      match tier with
      | None -> pop ~want:any [] !reusable
      | Some ti -> (
          (* Keep the write head on the fast tier: prefer a clean segment
             already placed there; otherwise take any and re-point it at a
             free fast chunk without copying (its contents are dead) —
             which also recycles the slow chunk into demotion capacity.
             With no free fast chunk the log simply writes to the slow
             tier; correct, and the next demotion pass frees fast space. *)
          let on_fast s = Vdev_tier.chunk_tier ti s = Vdev_tier.Fast in
          match pop ~want:(fun s -> on_fast s) [] !reusable with
          | Some s -> Some s
          | None -> (
              match pop ~want:any [] !reusable with
              | None -> None
              | Some s ->
                  ignore (Vdev_tier.rehome ti ~chunk:s ~target:Vdev_tier.Fast);
                  Some s))
    in
    match picked with
    | Some s -> s
    | None ->
        Types.fs_error
          "log is out of clean segments (disk full or checkpoint-starved)"
  in
  let on_append kind ~seg ~mtime =
    let bytes =
      match kind with
      | Types.Data | Types.Indirect | Types.Dindirect | Types.Imap
      | Types.Seg_usage ->
          layout.Layout.block_size
      | Types.Inode_block | Types.Summary | Types.Dir_log -> 0
    in
    Seg_usage.add_live usage seg ~bytes ~mtime
  in
  let log_batch_hook = ref (fun ~blocks:_ -> ()) in
  let on_batch ~head:_ ~addr:_ ~blocks =
    (* Log batches flow through the cache layer, which keeps itself
       coherent when the log reuses cleaned segments. *)
    Fs_stats.note_written stats Types.Summary ~cleaner:!cleaner_attr ~blocks:1;
    !log_batch_hook ~blocks
  in
  let log =
    Log_writer.create layout dev ~pick_clean ~on_append ~on_batch ~heads ~seq
  in
  let t =
    {
      disk;
      cache;
      dev;
      layout;
      config;
      imap;
      usage;
      log;
      handles = Hashtbl.create 256;
      dirty_data = Hashtbl.create 256;
      dirty_count = 0;
      pending_dirops = [];
      reusable;
      reusable_len;
      cleaner_attr;
      stats;
      clock;
      ops_since_ckpt = 0;
      blocks_since_ckpt = 0;
      ckpt_region;
      in_cleaner = false;
      bg_active = false;
      in_checkpoint = false;
      checkpoint_hook = (fun () -> ());
      log_batch_hook;
      cleaning_victims = Hashtbl.create 16;
      rng = Prng.create ~seed:0x5EED;
      obs;
      tier;
      tier_reads = Hashtbl.create 16;
    }
  in
  register_fs_metrics t;
  refresh_reusable t;
  t

let format disk cfg =
  Config.validate cfg ~disk_blocks:(Vdev.nblocks disk);
  if Vdev.block_size disk <> cfg.Config.block_size then
    invalid_arg "Fs.format: config block size does not match the device";
  let sb = Superblock.create cfg ~disk_blocks:(Vdev.nblocks disk) in
  Superblock.store sb disk;
  let layout = sb.Superblock.layout in
  let imap = Inode_map.create layout in
  let usage = Seg_usage.create layout in
  (* Head i starts writing segment 2i with 2i+1 reserved. *)
  let nheads = cfg.Config.log_heads in
  let heads =
    Array.init nheads (fun i ->
        { Log_writer.pos_seg = 2 * i; pos_off = 0; pos_next = (2 * i) + 1 })
  in
  let t =
    make_t disk sb ~config:cfg ~imap ~usage ~heads ~seq:1 ~clock:1.0
      ~ckpt_region:0
  in
  (* Fresh disk: every segment not pinned by a head is writable. *)
  t.reusable :=
    List.filter
      (fun s -> s >= 2 * nheads)
      (List.init layout.Layout.nsegs (fun i -> i));
  t.reusable_len := List.length !(t.reusable);
  let ino = Inode_map.allocate t.imap in
  assert (ino = Types.root_ino);
  let inode = Inode.create ~ino ~ftype:Types.Directory ~mtime:(tick t) in
  let h =
    {
      inode;
      fmap = Filemap.create_empty layout inode;
      inode_dirty = true;
      content = Some (Directory.to_bytes Directory.empty);
    }
  in
  Hashtbl.replace t.handles ino h;
  Inode_map.set_location t.imap ino placeholder_iaddr;
  set_dir_contents t ino Directory.empty;
  checkpoint t

let mount ?config ?metrics ?tier disk =
  let sb = Superblock.load disk in
  let layout = sb.Superblock.layout in
  let cfg = Option.value ~default:sb.Superblock.config config in
  if cfg.Config.block_size <> sb.Superblock.config.Config.block_size
     || cfg.Config.seg_blocks <> sb.Superblock.config.Config.seg_blocks
     || cfg.Config.max_inodes <> sb.Superblock.config.Config.max_inodes
     || cfg.Config.log_heads <> sb.Superblock.config.Config.log_heads
  then invalid_arg "Fs.mount: geometry fields cannot be overridden";
  match Checkpoint.read_latest layout disk with
  | None -> Types.corrupt "no valid checkpoint region: not a formatted LFS"
  | Some (region, ck) ->
      let read = Vdev.read_block disk in
      let imap =
        Inode_map.load layout ~read ~block_addrs:ck.Checkpoint.imap_addrs
      in
      let usage =
        Seg_usage.load layout ~read ~block_addrs:ck.Checkpoint.usage_addrs
      in
      let heads =
        Array.map
          (fun (h : Checkpoint.head_pos) ->
            {
              Log_writer.pos_seg = h.Checkpoint.cur_seg;
              pos_off = h.Checkpoint.cur_off;
              pos_next = h.Checkpoint.next_seg;
            })
          ck.Checkpoint.heads
      in
      make_t ?metrics ?tier disk sb ~config:cfg ~imap ~usage ~heads
        ~seq:ck.Checkpoint.log_seq
        ~clock:(ck.Checkpoint.timestamp +. 1.0)
        ~ckpt_region:(1 - region)

let unmount t = checkpoint t

(* {1 Roll-forward} *)

let recover ?config ?metrics ?tier disk =
  let sb = Superblock.load disk in
  let layout = sb.Superblock.layout in
  let cfg = Option.value ~default:sb.Superblock.config config in
  match Checkpoint.read_latest layout disk with
  | None -> Types.corrupt "no valid checkpoint region: not a formatted LFS"
  | Some (region, ck) ->
      let scan = Recovery.scan layout disk ~ckpt:ck in
      let read = Vdev.read_block disk in
      let imap =
        Inode_map.load layout ~read ~block_addrs:ck.Checkpoint.imap_addrs
      in
      let usage =
        Seg_usage.load layout ~read ~block_addrs:ck.Checkpoint.usage_addrs
      in
      let newest_ts =
        List.fold_left
          (fun acc w -> Float.max acc w.Recovery.summary.Summary.timestamp)
          ck.Checkpoint.timestamp scan.Recovery.writes
      in
      let heads =
        Array.map
          (fun (tl : Recovery.tail) ->
            {
              Log_writer.pos_seg = tl.Recovery.tail_seg;
              pos_off = tl.Recovery.tail_off;
              pos_next = tl.Recovery.tail_next_seg;
            })
          scan.Recovery.tails
      in
      let t =
        make_t ?metrics ?tier disk sb ~config:cfg ~imap ~usage ~heads
          ~seq:scan.Recovery.next_seq
          ~clock:(newest_ts +. 1.0)
          ~ckpt_region:(1 - region)
      in
      (* Segments holding post-checkpoint writes look clean in the
         checkpoint's usage table but contain the data being recovered;
         they must not be handed out for writing until the adjusted
         usage table says so. *)
      let touched = Hashtbl.create 8 in
      Array.iter
        (fun (tl : Recovery.tail) ->
          Hashtbl.replace touched tl.Recovery.tail_seg ())
        scan.Recovery.tails;
      List.iter
        (fun w -> Hashtbl.replace touched w.Recovery.summary.Summary.seg ())
        scan.Recovery.writes;
      t.reusable := List.filter (fun s -> not (Hashtbl.mem touched s)) !(t.reusable);
      t.reusable_len := List.length !(t.reusable);
      let bs = block_size t in
      (* Phase 1: the latest recovered copy of each inode wins.
         [recovered_seq] remembers which log write carried it, so dirop
         replay can tell a re-created incarnation from a stale copy of a
         dead one (see [survives_reuse] below). *)
      let recovered : (Types.ino, Types.Iaddr.t) Hashtbl.t = Hashtbl.create 64 in
      let recovered_seq : (Types.ino, int) Hashtbl.t = Hashtbl.create 64 in
      let dirlogs = ref [] in
      let data_blocks = ref 0 in
      List.iter
        (fun w ->
          List.iteri
            (fun i (e : Summary.entry) ->
              let addr = Summary.entry_addr w.Recovery.summary t.layout i in
              match e.Summary.kind with
              | Types.Inode_block ->
                  let payload = List.assoc i w.Recovery.blocks in
                  for slot = 0 to t.layout.Layout.inodes_per_block - 1 do
                    match Inode.decode payload ~slot with
                    | None -> ()
                    | Some inode ->
                        Hashtbl.replace recovered inode.Inode.ino
                          (Types.Iaddr.make ~block:addr ~slot);
                        Hashtbl.replace recovered_seq inode.Inode.ino
                          w.Recovery.summary.Summary.seq
                  done
              | Types.Data -> incr data_blocks
              | Types.Dir_log ->
                  let payload = List.assoc i w.Recovery.blocks in
                  dirlogs :=
                    List.rev_append
                      (List.map
                         (fun r -> (w.Recovery.summary.Summary.seq, r))
                         (Dir_log.decode_block payload))
                      !dirlogs
              | Types.Indirect | Types.Dindirect | Types.Imap
              | Types.Seg_usage | Types.Summary ->
                  ())
            w.Recovery.summary.Summary.entries)
        scan.Recovery.writes;
      let dirlogs = List.rev !dirlogs in
      (* Phase 2: incorporate each recovered inode and adjust segment
         utilisations by diffing the old and new block maps. *)
      let adjust_for_inode ino new_iaddr =
        let old_iaddr = Inode_map.location t.imap ino in
        let old_map = Hashtbl.create 64 in
        (if not (Types.Iaddr.is_nil old_iaddr) then
           match
             Inode.decode
               (read_disk_block t (Types.Iaddr.block old_iaddr))
               ~slot:(Types.Iaddr.slot old_iaddr)
           with
           | None -> ()
           | Some old_inode ->
               let old_fmap =
                 Filemap.load ~read:(read_disk_block t) t.layout old_inode
               in
               Filemap.iter_mapped old_fmap (fun i a ->
                   Hashtbl.replace old_map (`Data i) a);
               List.iter
                 (fun (s, a) -> Hashtbl.replace old_map (`Ind s) a)
                 (Filemap.indirect_blocks old_fmap));
        (* Old inode slot dies; new one lives. *)
        if not (Types.Iaddr.is_nil old_iaddr) then
          Seg_usage.kill t.usage
            (Layout.seg_of_block t.layout (Types.Iaddr.block old_iaddr))
            ~bytes:t.layout.Layout.inode_size;
        Inode_map.set_location t.imap ino new_iaddr;
        let h = load_handle t ino in
        Hashtbl.replace t.handles ino h;
        Seg_usage.add_live t.usage
          (Layout.seg_of_block t.layout (Types.Iaddr.block new_iaddr))
          ~bytes:t.layout.Layout.inode_size ~mtime:h.inode.Inode.mtime;
        let seen = Hashtbl.create 64 in
        let account key addr =
          Hashtbl.replace seen key ();
          let old = Hashtbl.find_opt old_map key in
          if old <> Some addr then begin
            (match old with
            | Some a -> kill_addr t a ~bytes:bs
            | None -> ());
            Seg_usage.add_live t.usage
              (Layout.seg_of_block t.layout addr)
              ~bytes:bs ~mtime:h.inode.Inode.mtime
          end
        in
        Filemap.iter_mapped h.fmap (fun i a -> account (`Data i) a);
        List.iter
          (fun (s, a) -> account (`Ind s) a)
          (Filemap.indirect_blocks h.fmap);
        (* Blocks the old inode had but the new one dropped. *)
        Hashtbl.iter
          (fun key a -> if not (Hashtbl.mem seen key) then kill_addr t a ~bytes:bs)
          old_map
      in
      (* Process recovered inodes in on-disk order so the inode-block
         reads stream sequentially instead of seeking per file. *)
      let recovered_sorted =
        List.sort
          (fun (_, a) (_, b) ->
            compare (Types.Iaddr.to_int a) (Types.Iaddr.to_int b))
          (Hashtbl.fold (fun ino ia acc -> (ino, ia) :: acc) recovered [])
      in
      List.iter (fun (ino, ia) -> adjust_for_inode ino ia) recovered_sorted;
      (* Phase 3: replay the directory operation log (ensure-style, so
         operations whose effects did reach disk are no-ops). *)
      let dirops_applied = ref 0 in
      let inode_live ino =
        Inode_map.is_allocated t.imap ino
      in
      (* A parent referenced by a journal record can be live yet no
         longer a directory: its ino was freed by an [rmdir] and reused
         for a regular file inside the recovery window.  Every entry of
         the dead directory incarnation is moot, so such records are
         skipped exactly like ones whose parent died outright. *)
      let dir_live ino =
        inode_live ino
        && (get_handle t ino).inode.Inode.ftype = Types.Directory
      in
      (* An inode number freed and reallocated inside the recovery window
         appears in the journal twice: records for the dead incarnation
         must not touch the surviving one — but only if the new
         incarnation actually survived.  Inodes carry no on-disk version,
         so the log order decides: the re-created inode's copy can only
         appear in a write at or after the one carrying its fresh [Add]
         (by then the old incarnation is dead and is never flushed
         again).  If no recovered copy is that late, the re-create never
         reached the log: the [Remove] must still take effect, and the
         later [Add] then drops its entry as a create without an inode. *)
      let dirlog_arr = Array.of_list dirlogs in
      let fresh_add_seq_after i ino =
        let rec scan j =
          if j >= Array.length dirlog_arr then None
          else
            match dirlog_arr.(j) with
            | seq, Dir_log.Add { ino = ino'; fresh = true; _ } when ino' = ino ->
                Some seq
            | _, (Dir_log.Add _ | Dir_log.Remove _ | Dir_log.Rename _) ->
                scan (j + 1)
        in
        scan (i + 1)
      in
      let survives_reuse i ino =
        match fresh_add_seq_after i ino with
        | None -> false
        | Some add_seq -> (
            match Hashtbl.find_opt recovered_seq ino with
            | Some s -> s >= add_seq
            | None -> false)
      in
      let apply_dirop i (_seq, op) =
        incr dirops_applied;
        match op with
        | Dir_log.Add { dir; name; ino; nlink; fresh } ->
            if dir_live dir then begin
              let d = dir_contents t dir in
              (* A fresh create can reuse an ino freed earlier in the
                 window.  If the only recovered copy of that ino
                 predates this create's write, it is the dead
                 incarnation — left live when its Remove was suppressed
                 to protect a durable rename destination.  Attaching it
                 here would alias two names to one inode; the create's
                 own inode never reached the log, so the entry drops. *)
              let freed_earlier =
                let rec scan j =
                  j < i
                  &&
                  match dirlog_arr.(j) with
                  | _, Dir_log.Remove { ino = ino'; nlink = nl; _ }
                    when ino' = ino && nl <= 0 ->
                      true
                  | _ -> scan (j + 1)
                in
                scan 0
              in
              let stale_reuse =
                fresh && freed_earlier
                &&
                match Hashtbl.find_opt recovered_seq ino with
                | Some s -> s < _seq
                | None -> true
              in
              if inode_live ino && not stale_reuse then begin
                if Directory.find d name <> Some ino then
                  set_dir_contents t dir (Directory.replace d name ino);
                let h = get_handle t ino in
                if h.inode.Inode.nlink <> nlink then begin
                  h.inode.Inode.nlink <- nlink;
                  h.inode_dirty <- true
                end
              end
              else if Directory.find d name = Some ino then
                (* Create whose inode never reached the log: the paper's
                   one uncompletable operation — drop the entry. *)
                set_dir_contents t dir (Directory.remove d name)
            end
        | Dir_log.Remove { dir; name; ino; nlink } ->
            (* A rename onto an existing name queues (Remove old-dst,
               Rename) as one operation.  When the renamed inode never
               survived to the log, the Rename below is skipped; the
               Remove must then be suppressed too, or an unacknowledged
               rename would destroy its durable destination.  Unless,
               that is, the removed ino was reused by a later create
               that did survive: the inode now belongs to the new file,
               so keeping the old entry would alias two names to one
               inode — the entry must drop. *)
            let covered_by_dead_rename =
              i + 1 < Array.length dirlog_arr
              && (match dirlog_arr.(i + 1) with
                 | _, Dir_log.Rename { ndir; nname; ino = rino; _ } ->
                     ndir = dir && nname = name && not (inode_live rino)
                 | _ -> false)
              && not (survives_reuse i ino)
            in
            if not covered_by_dead_rename then begin
              if dir_live dir then begin
                let d = dir_contents t dir in
                if Directory.find d name = Some ino then
                  set_dir_contents t dir (Directory.remove d name)
              end;
              if inode_live ino && not (survives_reuse i ino) then begin
                if nlink <= 0 then delete_file t ino
                else begin
                  let h = get_handle t ino in
                  if h.inode.Inode.nlink <> nlink then begin
                    h.inode.Inode.nlink <- nlink;
                    h.inode_dirty <- true
                  end
                end
              end
            end
        | Dir_log.Rename { odir; oname; ndir; nname; ino } ->
            if inode_live ino then begin
              if dir_live odir then begin
                let d = dir_contents t odir in
                if Directory.find d oname = Some ino then
                  set_dir_contents t odir (Directory.remove d oname)
              end;
              if dir_live ndir then begin
                let d = dir_contents t ndir in
                if Directory.find d nname <> Some ino then
                  set_dir_contents t ndir (Directory.replace d nname ino)
              end
            end
      in
      List.iteri apply_dirop dirlogs;
      (* Phase 3b: drop orphans.  Replay can leave a recovered inode
         with no surviving directory entry — its create's parent
         directory died (or its ino was reused as a file) inside the
         recovery window, so the [Add] above was skipped.  Walk the
         surviving namespace and delete every allocated inode nothing
         references; anything else would fail fsck's reachability and
         nlink accounting forever after. *)
      let reachable = Hashtbl.create 64 in
      let rec mark ino =
        if not (Hashtbl.mem reachable ino) then begin
          Hashtbl.replace reachable ino ();
          let h = get_handle t ino in
          if h.inode.Inode.ftype = Types.Directory then
            List.iter (fun (_, child) -> mark child) (readdir t ino)
        end
      in
      mark Types.root_ino;
      let orphans = ref [] in
      Inode_map.iter_allocated t.imap (fun ino _ ->
          if not (Hashtbl.mem reachable ino) then orphans := ino :: !orphans);
      List.iter (fun ino -> delete_file t ino) !orphans;
      (* Phase 4: persist the recovered state. *)
      refresh_reusable t;
      checkpoint t;
      ( t,
        {
          writes_replayed = List.length scan.Recovery.writes;
          inodes_recovered = Hashtbl.length recovered;
          data_blocks_recovered = !data_blocks;
          dirops_applied = !dirops_applied;
          segments_scanned = scan.Recovery.segments_scanned;
        } )

(* {1 Introspection} *)

let utilization t =
  let live = ref 0 in
  for s = 0 to Seg_usage.nsegs t.usage - 1 do
    live := !live + Seg_usage.live_bytes t.usage s
  done;
  float_of_int !live
  /. float_of_int
       (Seg_usage.nsegs t.usage * t.layout.Layout.seg_blocks
      * t.layout.Layout.block_size)

let segment_histogram t ~bins =
  let curs =
    Array.to_list
      (Array.map
         (fun (p : Log_writer.position) -> p.Log_writer.pos_seg)
         (Log_writer.positions t.log))
  in
  Seg_usage.utilization_histogram t.usage ~bins ~exclude:(fun s ->
      List.mem s curs)

type live_breakdown = { by_kind : (Types.block_kind * int) list; total_bytes : int }

let live_breakdown t =
  flush_internal t ~cleaner:false;
  let bs = block_size t in
  let tally = Hashtbl.create 8 in
  let add kind bytes =
    let cur = Option.value ~default:0 (Hashtbl.find_opt tally kind) in
    Hashtbl.replace tally kind (cur + bytes)
  in
  Inode_map.iter_allocated t.imap (fun ino _ ->
      add Types.Inode_block t.layout.Layout.inode_size;
      let h = get_handle t ino in
      Filemap.iter_mapped h.fmap (fun _ _ -> add Types.Data bs);
      List.iter
        (fun (s, _) ->
          match Filemap.classify_sblockno s with
          | `Single | `L1 _ -> add Types.Indirect bs
          | `L2 -> add Types.Dindirect bs
          | `Data _ -> ())
        (Filemap.indirect_blocks h.fmap));
  for i = 0 to Inode_map.nblocks t.imap - 1 do
    if Inode_map.block_addr t.imap i <> Types.nil_addr then add Types.Imap bs
  done;
  for i = 0 to Seg_usage.nblocks t.usage - 1 do
    if Seg_usage.block_addr t.usage i <> Types.nil_addr then
      add Types.Seg_usage bs
  done;
  let by_kind =
    List.map
      (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt tally k)))
      Types.all_block_kinds
  in
  let total_bytes = List.fold_left (fun acc (_, b) -> acc + b) 0 by_kind in
  { by_kind; total_bytes }

let iter_files t f =
  flush_internal t ~cleaner:false;
  Inode_map.iter_allocated t.imap (fun ino _ ->
      let h = get_handle t ino in
      f ino h.inode)

let with_handle t ino f =
  let h = get_handle t ino in
  f h.inode h.fmap

let imap_location t ino = Inode_map.location t.imap ino
let imap_block_addr t i = Inode_map.block_addr t.imap i

let usage_block_addrs t =
  List.init (Seg_usage.nblocks t.usage) (Seg_usage.block_addr t.usage)

let segment_live_bytes t s = Seg_usage.live_bytes t.usage s
let segment_mtime t s = Seg_usage.mtime t.usage s
