(** Shared primitive types of the log-structured file system. *)

type ino = int
(** Inode number.  [root_ino] is the root directory; 0 is never used. *)

type baddr = int
(** Disk block address.  {!nil_addr} marks "no block". *)

val nil_addr : baddr
val root_ino : ino

(** Address of an inode *inside* an inode block: block address plus slot
    index.  Packed into a single int for the inode map. *)
module Iaddr : sig
  type t

  val nil : t
  val is_nil : t -> bool
  val make : block:baddr -> slot:int -> t
  val block : t -> baddr
  val slot : t -> int
  val to_int : t -> int
  val of_int : int -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** The kind of every block written to the log; recorded in segment
    summaries and used for the Table 4 bandwidth accounting. *)
type block_kind =
  | Data           (** file contents *)
  | Indirect       (** single-indirect pointer block *)
  | Dindirect      (** double-indirect pointer block *)
  | Inode_block    (** packed inodes *)
  | Imap           (** inode-map block *)
  | Seg_usage      (** segment-usage-table block *)
  | Summary        (** segment summary block *)
  | Dir_log        (** directory operation log block *)

val block_kind_to_int : block_kind -> int
val block_kind_of_int : int -> block_kind
(** Raises [Invalid_argument] on an unknown tag (corrupt summary). *)

val block_kind_name : block_kind -> string
val all_block_kinds : block_kind list

type ftype = Regular | Directory

val ftype_to_int : ftype -> int
val ftype_of_int : int -> ftype

(** {1 Error conventions}

    Every failure surfaced by the file systems falls into exactly one of
    two exceptions, and plain absence is never an exception at all:

    - {!Corrupt} — the bytes on disk are wrong.  Only raised while
      decoding or validating an on-disk structure; it indicates the
      medium (or a lower vdev layer, e.g. injected bit-rot) returned
      data that fails its own invariants.
    - {!Fs_error} — the bytes on disk are fine but the request cannot be
      satisfied: API misuse, a name that already exists, a directory
      that is not empty, a full disk.
    - absence — looking up a name that simply is not there is an
      expected outcome, not an error: [lookup], [resolve] and
      [read_path] return ['a option] and reserve exceptions for
      corruption.  Operations that {e need} the name to exist
      ([unlink], [rename]) raise {!Fs_error} when it does not, because
      there the caller asserted existence. *)

exception Corrupt of string
(** Raised when an on-disk structure fails validation (bad magic,
    checksum mismatch, impossible field). *)

exception Fs_error of string
(** Raised on API misuse or unsatisfiable requests (disk full, name
    exists, directory not empty...).  Never used to report a merely
    missing name from a lookup-style operation — those return [None]. *)

val corrupt : ('a, Format.formatter, unit, 'b) format4 -> 'a
val fs_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
