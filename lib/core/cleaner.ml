type candidate = { seg : int; u : float; age : float }

let benefit_cost c = (1.0 -. c.u) *. c.age /. (1.0 +. c.u)

let take n l =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

(* Decorated candidate: the sort key is computed exactly once, and
   [pos] (the input position) breaks ties, reproducing the stable-sort
   ordering of the naive implementation.  Fs hands candidates over in
   ascending segment order, so ties are effectively broken by segment
   id — deterministic regardless of how the list was built. *)
type keyed = { key : float; pos : int; kseg : int }

(* [before a b]: does [a] come ahead of [b] in the cleaning order?
   Keys are "smaller cleans first". *)
let before a b = a.key < b.key || (a.key = b.key && a.pos < b.pos)

(* Top-k partial selection: one pass over [keyed], maintaining the best
   [k] seen so far in a sorted buffer.  O(n*k) comparisons but zero key
   recomputation; for the cleaner k is [segs_per_pass], a small
   constant, while n is every dirty segment on the disk. *)
let top_k k keyed =
  let buf = Array.make k { key = 0.0; pos = 0; kseg = 0 } in
  let len = ref 0 in
  List.iter
    (fun c ->
      if !len < k || before c buf.(!len - 1) then begin
        (* Insert in order, dropping the current worst when full. *)
        let i = ref (min !len (k - 1)) in
        while !i > 0 && before c buf.(!i - 1) do
          buf.(!i) <- buf.(!i - 1);
          decr i
        done;
        buf.(!i) <- c;
        if !len < k then incr len
      end)
    keyed;
  Array.to_list (Array.sub buf 0 !len)

let select ~policy ?rand ~candidates ~count () =
  let empty, nonempty = List.partition (fun c -> c.u = 0.0) candidates in
  let by_key key_of =
    (* Decorate-sort-undecorate: the key function runs once per
       candidate instead of once per comparison. *)
    let keyed =
      List.mapi (fun pos c -> { key = key_of c; pos; kseg = c.seg }) nonempty
    in
    let n = List.length keyed in
    let want = max 0 (count - List.length empty) in
    if want = 0 then []
    else if want < n / 4 then top_k want keyed
    else
      List.stable_sort (fun a b -> if before a b then -1 else 1) keyed
      |> take want
  in
  let ordered =
    match policy with
    | Config.Greedy -> by_key (fun c -> c.u)
    | Config.Cost_benefit -> by_key (fun c -> -.benefit_cost c)
    | Config.Age_only -> by_key (fun c -> -.c.age)
    | Config.Random_victim ->
        let rand =
          match rand with
          | Some r -> r
          | None -> invalid_arg "Cleaner.select: Random_victim needs ~rand"
        in
        let arr = Array.of_list nonempty in
        for i = Array.length arr - 1 downto 1 do
          let j = rand (i + 1) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp
        done;
        Array.to_list arr
        |> List.mapi (fun pos c -> { key = 0.0; pos; kseg = c.seg })
  in
  take count (List.map (fun c -> c.seg) empty @ List.map (fun c -> c.kseg) ordered)

(* Demotion inverts cost-benefit: the best segments to move OUT of the
   cleaner's way are old (cold — utilisation decays slowest, Section
   3.5) and full (high u — compacting them would copy almost everything
   for almost no free space, while demoting frees a whole fast-tier
   segment for the cost of one sequential copy).  Rank by u*age
   descending; empty or young segments are never worth a copy. *)
let select_demotion ~candidates ~min_age ~count =
  let eligible =
    List.filter (fun c -> c.u > 0.0 && c.age >= min_age) candidates
  in
  let keyed =
    List.mapi (fun pos c -> { key = -.(c.u *. c.age); pos; kseg = c.seg }) eligible
  in
  let n = List.length keyed in
  let picked =
    if count <= 0 then []
    else if count < n / 4 then top_k count keyed
    else
      List.stable_sort (fun a b -> if before a b then -1 else 1) keyed
      |> take count
  in
  List.map (fun c -> c.kseg) picked

let order_for_grouping ~grouping pairs =
  match grouping with
  | Config.In_order -> List.map fst pairs
  | Config.Age_sort ->
      List.map fst
        (List.stable_sort (fun (_, a) (_, b) -> compare b a) pairs)
