type t = {
  new_by_kind : int array;
  cleaner_by_kind : int array;
  mutable cleaner_blocks_read : int;
  mutable segments_cleaned : int;
  mutable segments_cleaned_empty : int;
  mutable cleaned_u_sum : float;
  mutable cleaned_u_count : int;
  mutable checkpoints : int;
}

let nkinds = List.length Types.all_block_kinds

let create () =
  {
    new_by_kind = Array.make nkinds 0;
    cleaner_by_kind = Array.make nkinds 0;
    cleaner_blocks_read = 0;
    segments_cleaned = 0;
    segments_cleaned_empty = 0;
    cleaned_u_sum = 0.0;
    cleaned_u_count = 0;
    checkpoints = 0;
  }

let reset t =
  Array.fill t.new_by_kind 0 nkinds 0;
  Array.fill t.cleaner_by_kind 0 nkinds 0;
  t.cleaner_blocks_read <- 0;
  t.segments_cleaned <- 0;
  t.segments_cleaned_empty <- 0;
  t.cleaned_u_sum <- 0.0;
  t.cleaned_u_count <- 0;
  t.checkpoints <- 0

let note_written t kind ~cleaner ~blocks =
  let a = if cleaner then t.cleaner_by_kind else t.new_by_kind in
  let i = Types.block_kind_to_int kind in
  a.(i) <- a.(i) + blocks

let note_segment_read t ~blocks = t.cleaner_blocks_read <- t.cleaner_blocks_read + blocks

let note_segment_cleaned t ~u =
  t.segments_cleaned <- t.segments_cleaned + 1;
  if u = 0.0 then t.segments_cleaned_empty <- t.segments_cleaned_empty + 1
  else begin
    t.cleaned_u_sum <- t.cleaned_u_sum +. u;
    t.cleaned_u_count <- t.cleaned_u_count + 1
  end

let note_checkpoint t = t.checkpoints <- t.checkpoints + 1

let sum = Array.fold_left ( + ) 0
let blocks_written_new t = sum t.new_by_kind
let blocks_written_cleaner t = sum t.cleaner_by_kind
let blocks_read_cleaner t = t.cleaner_blocks_read

let written_by_kind t kind =
  let i = Types.block_kind_to_int kind in
  t.new_by_kind.(i) + t.cleaner_by_kind.(i)

let segments_cleaned t = t.segments_cleaned
let segments_cleaned_empty t = t.segments_cleaned_empty

let avg_cleaned_u_nonempty t =
  if t.cleaned_u_count = 0 then 0.0
  else t.cleaned_u_sum /. float_of_int t.cleaned_u_count

let checkpoints t = t.checkpoints

let write_cost t =
  let fresh = blocks_written_new t in
  (* No fresh data written: the ratio is undefined, and reporting 1.0
     would hide any cleaner traffic in the interval.  nan here; reports
     print it as "undefined". *)
  if fresh = 0 then Float.nan
  else
    float_of_int (fresh + blocks_written_cleaner t + t.cleaner_blocks_read)
    /. float_of_int fresh

let log_bandwidth_fraction t kind =
  let total = blocks_written_new t + blocks_written_cleaner t in
  if total = 0 then 0.0
  else float_of_int (written_by_kind t kind) /. float_of_int total
