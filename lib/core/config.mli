(** File-system geometry and policy configuration, fixed at [mkfs] time
    (geometry) or adjustable at mount time (policies). *)

(** Which segments the cleaner picks (Section 3.4, policy question 3). *)
type cleaning_policy =
  | Greedy        (** always the least-utilised segments *)
  | Cost_benefit  (** highest (1-u)*age / (1+u), the paper's winner *)
  | Age_only      (** oldest first — ablation *)
  | Random_victim (** uniform random dirty segment — ablation *)

(** How live blocks are regrouped when written out (policy question 4). *)
type grouping_policy =
  | In_order  (** same order they appeared in the cleaned segments *)
  | Age_sort  (** sorted by age, oldest first — segregates cold data *)

(** How a victim segment's live data is brought into memory.  The paper
    (Section 3.4) assumes whole-segment reads in the write-cost formula
    but notes "it may be faster to read just the live blocks,
    particularly if the utilization is very low (we haven't tried this
    in Sprite LFS)" — [Live_blocks] tries it. *)
type cleaner_read_policy =
  | Whole_segment  (** one big sequential read per victim *)
  | Live_blocks    (** summary chain, then only the live blocks *)

type t = {
  block_size : int;        (** bytes; must match the disk geometry *)
  seg_blocks : int;        (** blocks per segment (paper: 512 KB - 1 MB) *)
  max_inodes : int;        (** capacity of the inode map *)
  clean_start : int;       (** start cleaning below this many clean segs *)
  clean_stop : int;        (** stop cleaning at this many clean segs *)
  bg_clean_start : int;
      (** background watermark: an idle-time cleaner ({!Fs.clean_step})
          starts working when the clean pool drops below this.  Sits
          above [clean_start] so background passes absorb the cleaning
          load before any foreground writer ever stalls on it (the
          paper's "clean at night or during idle periods", Section 4). *)
  bg_clean_stop : int;
      (** background watermark: idle-time cleaning pauses once the pool
          recovers to this many clean segments (hysteresis, so the
          background cleaner does not thrash around one threshold). *)
  segs_per_pass : int;     (** victims examined per cleaning pass *)
  write_buffer_blocks : int;  (** dirty blocks buffered before a log flush *)
  cache_blocks : int;      (** LRU buffer-cache capacity for reads *)
  checkpoint_interval_ops : int;
      (** automatic checkpoint every N operations; 0 disables (the paper
          uses a 30 s timer; ours is a deterministic operation count) *)
  checkpoint_interval_blocks : int;
      (** automatic checkpoint after N blocks of new log data; 0
          disables.  The paper's suggested alternative (Section 4.1):
          "perform checkpoints after a given amount of new data has been
          written to the log; this would set a limit on recovery time". *)
  cleaning_policy : cleaning_policy;
  grouping_policy : grouping_policy;
  cleaner_read : cleaner_read_policy;
  demote_age_s : float;
      (** tiered volumes only: a dirty fast-tier segment becomes a
          demotion candidate once its youngest block is at least this
          old in modelled time (Section 3.5's cold data — utilisation
          decays slowest, so moving it to the slow tier is cheap
          capacity).  Inert when the volume has no slow tier. *)
  promote_reads : int;
      (** tiered volumes only: migrate a slow-tier segment back to the
          fast tier after this many distinct block reads hit it on disk;
          0 disables promotion ("never").  Inert without a slow tier. *)
  log_heads : int;
      (** independent log write heads (1..8).  With 1 the log is the
          classic single thread; with more, fresh foreground data goes
          to head 0 and cleaner/demotion survivors to higher heads
          binned by age (Section 3.5's hot/cold segregation).  Each
          head pins two segments (current + reservation). *)
}

val default : t
(** 4 KB blocks, 256-block (1 MB) segments, thresholds from Section 3.4
    ("a few tens" to start, 50-100 to stop, scaled to disk size by
    {!validate}), cost-benefit cleaning with age-sorting. *)

val small : t
(** Small geometry for unit tests: 1 KB blocks, 16-block segments. *)

val with_policy :
  ?cleaning:cleaning_policy -> ?grouping:grouping_policy -> t -> t

val validate : t -> disk_blocks:int -> unit
(** Raises [Invalid_argument] when the configuration cannot fit the disk
    (fewer than 4 segments, zero inodes, thresholds inverted...). *)

val cleaning_policy_name : cleaning_policy -> string
val grouping_policy_name : grouping_policy -> string
val cleaner_read_policy_name : cleaner_read_policy -> string
