module Vdev = Lfs_disk.Vdev
module Io_queue = Lfs_disk.Io_queue

type payload = Bytes of bytes | Lazy of (unit -> bytes)

type pending = {
  kind : Types.block_kind;
  ino : Types.ino;
  blockno : int;
  version : int;
  mtime : float;
  payload : payload;
}

type t = {
  layout : Layout.t;
  disk : Vdev.t;
  pick_clean : exclude:int list -> int;
  on_append : Types.block_kind -> seg:int -> mtime:float -> unit;
  on_batch : addr:int -> blocks:int -> unit;
  max_batch : int;
  mutable cur_seg : int;
  mutable cur_off : int;  (* next free slot, counting queued blocks *)
  mutable next_seg : int;
  mutable seq : int;
  mutable batch : pending list;  (* newest first *)
  mutable batch_count : int;
  mutable batch_slot : int;      (* slot reserved for the batch summary *)
  mutable timestamp : float;
  mutable unflushed : Io_queue.ticket list;
      (* batch writes submitted but not yet confirmed by a barrier *)
}

let create layout disk ~pick_clean ~on_append ~on_batch ~cur_seg ~cur_off
    ~next_seg ~seq =
  {
    layout;
    disk;
    pick_clean;
    on_append;
    on_batch;
    max_batch = Summary.max_entries ~block_size:layout.Layout.block_size;
    cur_seg;
    cur_off;
    next_seg;
    seq;
    batch = [];
    batch_count = 0;
    batch_slot = -1;
    timestamp = 0.0;
    unflushed = [];
  }

let current_segment t = t.cur_seg
let current_offset t = t.cur_off
let reserved_segment t = t.next_seg
let seq t = t.seq
let pending_blocks t = t.batch_count

let segment_bytes_remaining t =
  (t.layout.Layout.seg_blocks - t.cur_off) * t.layout.Layout.block_size

let render = function Bytes b -> b | Lazy f -> f ()

(* Write the queued batch (summary + payloads) as one sequential IO. *)
let sync t =
  if t.batch_count > 0 then begin
    let bs = t.layout.Layout.block_size in
    let pendings = List.rev t.batch in
    let payload = Bytes.create (t.batch_count * bs) in
    List.iteri
      (fun i p ->
        let b = render p.payload in
        if Bytes.length b <> bs then
          invalid_arg "Log_writer: payload is not exactly one block";
        Bytes.blit b 0 payload (i * bs) bs)
      pendings;
    let entries =
      List.map
        (fun p ->
          {
            Summary.kind = p.kind;
            ino = p.ino;
            blockno = p.blockno;
            version = p.version;
            mtime = p.mtime;
          })
        pendings
    in
    let summary =
      {
        Summary.seq = t.seq;
        seg = t.cur_seg;
        slot = t.batch_slot;
        next_seg = t.next_seg;
        timestamp = t.timestamp;
        payload_sum = Summary.payload_checksum payload;
        entries;
      }
    in
    let sum_block = Summary.encode ~block_size:bs summary in
    let buf = Bytes.create ((t.batch_count + 1) * bs) in
    Bytes.blit sum_block 0 buf 0 bs;
    Bytes.blit payload 0 buf bs (Bytes.length payload);
    let addr = Layout.seg_first_block t.layout t.cur_seg + t.batch_slot in
    (* Submit the batch as one tagged sequential transfer.  Under Direct
       mode this services immediately (the historical behaviour); under
       queued IO the write pipelines ahead of the next fsync barrier. *)
    let tk = Vdev.submit_write t.disk addr buf in
    t.unflushed <- tk :: t.unflushed;
    t.on_batch ~addr ~blocks:(t.batch_count + 1);
    t.seq <- t.seq + 1;
    t.batch <- [];
    t.batch_count <- 0;
    t.batch_slot <- -1
  end

(* Fsync barrier: await every batch write not yet confirmed.  Returns an
   upper bound on the completion time of the latest one ([neg_infinity]
   when nothing was pending).  A no-op timing-wise under Direct mode,
   where every write was serviced at submit. *)
let barrier t =
  let fin =
    List.fold_left
      (fun acc tk -> Float.max acc (Vdev.await tk))
      neg_infinity t.unflushed
  in
  t.unflushed <- [];
  fin

let unflushed_batches t = List.length t.unflushed

let advance_segment t =
  assert (t.batch_count = 0);
  let from = t.next_seg in
  let fresh = t.pick_clean ~exclude:[ t.cur_seg; from ] in
  t.cur_seg <- from;
  t.cur_off <- 0;
  t.next_seg <- fresh

(* An open batch needs one more payload slot; a new batch additionally
   needs its summary slot. *)
let ensure_room t =
  let need = if t.batch_count = 0 then 2 else 1 in
  if t.cur_off + need > t.layout.Layout.seg_blocks then begin
    sync t;
    advance_segment t
  end

let append t ~kind ~ino ~blockno ~version ~mtime payload =
  ensure_room t;
  if t.batch_count = 0 then begin
    t.batch_slot <- t.cur_off;
    t.cur_off <- t.cur_off + 1
  end;
  let addr = Layout.seg_first_block t.layout t.cur_seg + t.cur_off in
  t.cur_off <- t.cur_off + 1;
  t.batch <- { kind; ino; blockno; version; mtime; payload } :: t.batch;
  t.batch_count <- t.batch_count + 1;
  if mtime > t.timestamp then t.timestamp <- mtime;
  t.on_append kind ~seg:t.cur_seg ~mtime;
  if t.batch_count >= t.max_batch || t.cur_off >= t.layout.Layout.seg_blocks
  then sync t;
  addr
