module Vdev = Lfs_disk.Vdev
module Io_queue = Lfs_disk.Io_queue

type payload = Bytes of bytes | Lazy of (unit -> bytes)

type pending = {
  kind : Types.block_kind;
  ino : Types.ino;
  blockno : int;
  version : int;
  mtime : float;
  payload : payload;
}

type position = { pos_seg : int; pos_off : int; pos_next : int }
type head_stats = { segments : int; blocks : int; syncs : int }

(* One write head: its own segment, open batch, and summary chain.  All
   heads share the global sequence counter and the clean-segment
   allocator held in [t]. *)
type head = {
  mutable cur_seg : int;
  mutable cur_off : int;  (* next free slot, counting queued blocks *)
  mutable next_seg : int;
  mutable batch : pending list;  (* newest first *)
  mutable batch_count : int;
  mutable batch_slot : int;      (* slot reserved for the batch summary *)
  mutable timestamp : float;
  mutable unflushed : Io_queue.ticket list;
      (* batch writes submitted but not yet confirmed by a barrier *)
  mutable stat_segments : int;   (* segments this head has opened *)
  mutable stat_blocks : int;     (* payload blocks appended *)
  mutable stat_syncs : int;      (* batch writes issued *)
}

type t = {
  layout : Layout.t;
  disk : Vdev.t;
  pick_clean : exclude:int list -> int;
  on_append : Types.block_kind -> seg:int -> mtime:float -> unit;
  on_batch : head:int -> addr:int -> blocks:int -> unit;
  max_batch : int;
  heads : head array;
  mutable seq : int;  (* shared across heads: one global log order *)
}

let create layout disk ~pick_clean ~on_append ~on_batch ~heads ~seq =
  if Array.length heads = 0 then invalid_arg "Log_writer: no heads";
  {
    layout;
    disk;
    pick_clean;
    on_append;
    on_batch;
    max_batch = Summary.max_entries ~block_size:layout.Layout.block_size;
    heads =
      Array.map
        (fun p ->
          {
            cur_seg = p.pos_seg;
            cur_off = p.pos_off;
            next_seg = p.pos_next;
            batch = [];
            batch_count = 0;
            batch_slot = -1;
            timestamp = 0.0;
            unflushed = [];
            stat_segments = 0;
            stat_blocks = 0;
            stat_syncs = 0;
          })
        heads;
    seq;
  }

let nheads t = Array.length t.heads
let current_segment ?(head = 0) t = t.heads.(head).cur_seg
let current_offset ?(head = 0) t = t.heads.(head).cur_off
let reserved_segment ?(head = 0) t = t.heads.(head).next_seg
let seq t = t.seq

let position ?(head = 0) t =
  let h = t.heads.(head) in
  { pos_seg = h.cur_seg; pos_off = h.cur_off; pos_next = h.next_seg }

let positions t = Array.init (Array.length t.heads) (fun i -> position ~head:i t)

let pending_blocks t =
  Array.fold_left (fun acc h -> acc + h.batch_count) 0 t.heads

(* Every segment some head is writing into or holds reserved.  These must
   never be offered to the cleaner, the demoter, or reuse. *)
let active_segments t =
  Array.fold_left (fun acc h -> h.cur_seg :: h.next_seg :: acc) [] t.heads

let segment_bytes_remaining ?(head = 0) t =
  (t.layout.Layout.seg_blocks - t.heads.(head).cur_off)
  * t.layout.Layout.block_size

let head_stats t i =
  let h = t.heads.(i) in
  { segments = h.stat_segments; blocks = h.stat_blocks; syncs = h.stat_syncs }

let render = function Bytes b -> b | Lazy f -> f ()

(* Write one head's queued batch (summary + payloads) as one sequential
   IO. *)
let sync_head t i =
  let h = t.heads.(i) in
  if h.batch_count > 0 then begin
    let bs = t.layout.Layout.block_size in
    let pendings = List.rev h.batch in
    let payload = Bytes.create (h.batch_count * bs) in
    List.iteri
      (fun k p ->
        let b = render p.payload in
        if Bytes.length b <> bs then
          invalid_arg "Log_writer: payload is not exactly one block";
        Bytes.blit b 0 payload (k * bs) bs)
      pendings;
    let entries =
      List.map
        (fun p ->
          {
            Summary.kind = p.kind;
            ino = p.ino;
            blockno = p.blockno;
            version = p.version;
            mtime = p.mtime;
          })
        pendings
    in
    let summary =
      {
        Summary.seq = t.seq;
        seg = h.cur_seg;
        slot = h.batch_slot;
        next_seg = h.next_seg;
        timestamp = h.timestamp;
        payload_sum = Summary.payload_checksum payload;
        entries;
      }
    in
    let sum_block = Summary.encode ~block_size:bs summary in
    let buf = Bytes.create ((h.batch_count + 1) * bs) in
    Bytes.blit sum_block 0 buf 0 bs;
    Bytes.blit payload 0 buf bs (Bytes.length payload);
    let addr = Layout.seg_first_block t.layout h.cur_seg + h.batch_slot in
    (* Submit the batch as one tagged sequential transfer.  Under Direct
       mode this services immediately (the historical behaviour); under
       queued IO the write pipelines ahead of the next fsync barrier. *)
    let tk = Vdev.submit_write t.disk addr buf in
    h.unflushed <- tk :: h.unflushed;
    h.stat_syncs <- h.stat_syncs + 1;
    t.on_batch ~head:i ~addr ~blocks:(h.batch_count + 1);
    t.seq <- t.seq + 1;
    h.batch <- [];
    h.batch_count <- 0;
    h.batch_slot <- -1
  end

let sync t = Array.iteri (fun i _ -> sync_head t i) t.heads

(* Fsync barrier: await every batch write not yet confirmed, across every
   head — a non-default head's pending batch must not be missed by the
   engine's idle detection.  Returns an upper bound on the completion
   time of the latest one ([neg_infinity] when nothing was pending).  A
   no-op timing-wise under Direct mode, where every write was serviced
   at submit. *)
let barrier t =
  Array.fold_left
    (fun acc h ->
      let fin =
        List.fold_left
          (fun acc tk -> Float.max acc (Vdev.await tk))
          acc h.unflushed
      in
      h.unflushed <- [];
      fin)
    neg_infinity t.heads

let unflushed_batches t =
  Array.fold_left (fun acc h -> acc + List.length h.unflushed) 0 t.heads

let advance_segment t i =
  let h = t.heads.(i) in
  assert (h.batch_count = 0);
  let from = h.next_seg in
  (* Exclude every head's current and reserved segment: two heads must
     never be handed the same clean segment. *)
  let fresh = t.pick_clean ~exclude:(active_segments t) in
  h.cur_seg <- from;
  h.cur_off <- 0;
  h.next_seg <- fresh;
  h.stat_segments <- h.stat_segments + 1

(* An open batch needs one more payload slot; a new batch additionally
   needs its summary slot. *)
let ensure_room t i =
  let h = t.heads.(i) in
  let need = if h.batch_count = 0 then 2 else 1 in
  if h.cur_off + need > t.layout.Layout.seg_blocks then begin
    sync_head t i;
    advance_segment t i
  end

let append ?(head = 0) t ~kind ~ino ~blockno ~version ~mtime payload =
  ensure_room t head;
  let h = t.heads.(head) in
  if h.batch_count = 0 then begin
    h.batch_slot <- h.cur_off;
    h.cur_off <- h.cur_off + 1
  end;
  let addr = Layout.seg_first_block t.layout h.cur_seg + h.cur_off in
  h.cur_off <- h.cur_off + 1;
  h.batch <- { kind; ino; blockno; version; mtime; payload } :: h.batch;
  h.batch_count <- h.batch_count + 1;
  h.stat_blocks <- h.stat_blocks + 1;
  if mtime > h.timestamp then h.timestamp <- mtime;
  t.on_append kind ~seg:h.cur_seg ~mtime;
  if h.batch_count >= t.max_batch || h.cur_off >= t.layout.Layout.seg_blocks
  then sync_head t head;
  addr
