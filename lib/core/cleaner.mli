(** Segment-selection policies (Section 3.4, policy question 3).

    Pure functions from segment statistics to a cleaning order; the
    mechanical part of cleaning (reading victims, identifying live data,
    rewriting it) lives in {!Fs}. *)

type candidate = {
  seg : int;
  u : float;    (** utilisation: live bytes / capacity, in [\[0,1\]] *)
  age : float;  (** now - youngest data mtime; never negative *)
}

val benefit_cost : candidate -> float
(** The paper's cost-benefit ratio [(1-u)*age / (1+u)]: free space
    generated times how long it is expected to stay free, over the cost
    of reading the segment and rewriting its live data. *)

val select :
  policy:Config.cleaning_policy ->
  ?rand:(int -> int) ->
  candidates:candidate list ->
  count:int ->
  unit ->
  int list
(** Pick up to [count] victims.  [rand] (uniform in [\[0,n)]) is required
    by the [Random_victim] ablation policy and ignored otherwise.
    Candidates with [u = 0] are always taken first — a segment with no
    live blocks need not even be read (Section 3.4). *)

val select_demotion :
  candidates:candidate list -> min_age:float -> count:int -> int list
(** Pick up to [count] demotion victims for a tiered volume: dirty
    segments at least [min_age] old, ranked by [u * age] descending —
    cost-benefit {e inverted}, because the best segment to move to the
    slow tier is cold {e and} full (compacting it would copy nearly
    everything for nearly no space, while demoting it frees a whole
    fast-tier segment with one sequential copy).  Segments with [u = 0]
    are excluded: they are free space, not data worth a copy. *)

val order_for_grouping :
  grouping:Config.grouping_policy ->
  ('a * float) list ->
  'a list
(** Order live blocks for writing out (policy question 4): [In_order]
    keeps the given order; [Age_sort] sorts by the age value, oldest
    first, segregating cold data from hot. *)
