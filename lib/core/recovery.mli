(** Crash recovery: the log scan behind roll-forward (Section 4.2).

    Starting from the checkpoint's per-head log positions, the scan walks
    each head's summary chain — within a segment by hopping over each
    write's payload, and across segments by following the [next_seg]
    pointer every summary records.  A write is accepted only if its
    summary is intact, its sequence number strictly increases along its
    chain, and its self-identification (segment, slot) matches where it
    was found.  The chains are then merged back into one log order by the
    shared sequence number.

    Only inode-block and directory-log payloads are read (data blocks
    are referenced in place), which is what makes recovery time scale
    with the number of files recovered rather than bytes written
    (Table 3).  Every post-checkpoint write additionally verifies its
    payload checksum: under queued submission the device commits blocks
    out of submission order, so a crash can persist a later summary
    while an earlier write's payload never made it.  The first torn
    write truncates the log {e globally} — the fsync barrier spans every
    head, so nothing at or beyond its sequence number (in any chain) was
    acknowledged durable, and a later write in one chain may reference
    torn payloads in another.  Every chain is cut at that sequence
    number and each head's tail points at its first discarded summary.

    The scan is read-only; {!Fs.recover} applies the results. *)

type write = {
  summary : Summary.t;
  blocks : (int * bytes) list;
      (** payloads of the inode-block and dir-log entries, keyed by
          entry index within the summary *)
}

type tail = {
  tail_seg : int;       (** where this head should resume *)
  tail_off : int;
  tail_next_seg : int;  (** reservation in force at the tail *)
}

type result = {
  writes : write list;
      (** valid log writes with [seq >= ] the checkpoint's [log_seq] and
          below the torn-write cutoff, merged across chains into
          ascending sequence order — the data roll-forward must
          reprocess *)
  tails : tail array;   (** per-head resume positions, indexed by head *)
  next_seq : int;       (** sequence number for the next write *)
  segments_scanned : int;
}

val scan : Layout.t -> Lfs_disk.Vdev.t -> ckpt:Checkpoint.t -> result
(** Follow every head's chain from [ckpt]'s positions until each ends. *)
