(** Crash recovery: the log scan behind roll-forward (Section 4.2).

    Starting from the checkpoint's log position, the scan walks summary
    blocks — within a segment by hopping over each write's payload, and
    across segments by following the [next_seg] pointer every summary
    records.  A write is accepted only if its summary is intact, its
    sequence number strictly increases, and its self-identification
    (segment, slot) matches where it was found.

    Only inode-block and directory-log payloads are read (data blocks
    are referenced in place), which is what makes recovery time scale
    with the number of files recovered rather than bytes written
    (Table 3).  Every post-checkpoint write additionally verifies its
    payload checksum: under queued submission the device commits blocks
    out of submission order, so a crash can persist a later summary
    while an earlier write's payload never made it.  The first torn
    write truncates the log — nothing at or after it was acknowledged
    durable, so the walk stops and the tail points at the torn
    summary's slot.

    The scan is read-only; {!Fs.recover} applies the results. *)

type write = {
  summary : Summary.t;
  blocks : (int * bytes) list;
      (** payloads of the inode-block and dir-log entries, keyed by
          entry index within the summary *)
}

type result = {
  writes : write list;
      (** valid log writes with [seq >= ] the checkpoint's [log_seq], in
          log order — the data roll-forward must reprocess *)
  tail_seg : int;       (** where the log writer should resume *)
  tail_off : int;
  tail_next_seg : int;  (** reservation in force at the tail *)
  next_seq : int;       (** sequence number for the next write *)
  segments_scanned : int;
}

val scan : Layout.t -> Lfs_disk.Vdev.t -> ckpt:Checkpoint.t -> result
(** Follow the log from [ckpt]'s position until it ends. *)
