(** The log appender.

    Buffers blocks destined for the current segment and writes each batch
    as a single large sequential transfer preceded by its summary block —
    this is where "many small synchronous random writes become large
    asynchronous sequential transfers".  Batches are bounded by the
    summary's entry capacity and by the end of the segment (a
    partial-segment write, Section 3.2).

    The writer drives N independent {e heads} (Section 3.5's hot/cold
    segregation): each head owns its current segment, open batch, and
    summary chain, while all heads share one global sequence counter and
    one clean-segment allocator.  Head 0 is the hot head for fresh
    foreground data; higher heads receive cleaner and demotion survivors
    binned by age.  With one head the writer behaves exactly as the
    classic single-threaded log.

    Addresses are assigned at {!append} time so callers can update their
    maps immediately; payloads may be supplied lazily and are rendered at
    batch-write time (the inode map and segment usage table exploit this:
    their blocks self-describe accounting that the append itself
    changes).

    Every head always holds a reservation for its next segment
    ({!reserved_segment}); every summary records it, which is how
    roll-forward follows each head's chain across segment boundaries. *)

type payload = Bytes of bytes | Lazy of (unit -> bytes)

type position = { pos_seg : int; pos_off : int; pos_next : int }
(** One head's place in the log: current segment, next free slot, and the
    reserved next segment.  Recorded per head in every checkpoint. *)

type head_stats = { segments : int; blocks : int; syncs : int }
(** Per-head lifetime counters: segments opened, payload blocks appended,
    and batch writes issued. *)

type t

val create :
  Layout.t ->
  Lfs_disk.Vdev.t ->
  pick_clean:(exclude:int list -> int) ->
  on_append:(Types.block_kind -> seg:int -> mtime:float -> unit) ->
  on_batch:(head:int -> addr:int -> blocks:int -> unit) ->
  heads:position array ->
  seq:int ->
  t
(** [pick_clean ~exclude] must return a clean segment not in [exclude]
    (raising {!Types.Fs_error} when none remains).  [on_append] is called
    for every payload block as it is placed (for usage accounting);
    [on_batch] after each physical batch write with the issuing head, its
    disk address, and total block count including the summary.  [heads]
    gives each head's starting position; segments named there must be
    mutually distinct. *)

val append :
  ?head:int ->
  t ->
  kind:Types.block_kind ->
  ino:Types.ino ->
  blockno:int ->
  version:int ->
  mtime:float ->
  payload ->
  Types.baddr
(** Queue one block for [head]'s chain (default 0, the hot head) and
    return its (final) disk address. *)

val sync : t -> unit
(** Submit every head's buffered batch to disk, each as one tagged
    sequential transfer, in head order.  Under queued device modes the
    writes pipeline ahead of the next {!barrier}; in the default Direct
    mode they complete immediately. *)

val barrier : t -> float
(** Await every batch write not yet confirmed, across all heads (the
    fsync barrier); returns an upper bound on the completion time of the
    latest one, or [neg_infinity] when none was pending. *)

val unflushed_batches : t -> int
(** Batch writes submitted but not yet confirmed by {!barrier}, summed
    over all heads. *)

val nheads : t -> int

val current_segment : ?head:int -> t -> int
val current_offset : ?head:int -> t -> int
(** Next free slot in the head's current segment ({b including} queued
    blocks). *)

val reserved_segment : ?head:int -> t -> int

val position : ?head:int -> t -> position
val positions : t -> position array
(** Every head's position, indexed by head. *)

val active_segments : t -> int list
(** Every segment some head is writing into or holds reserved.  Callers
    must exclude these from cleaning, demotion, and reuse. *)

val seq : t -> int
(** Sequence number the next batch (from any head) will carry. *)

val pending_blocks : t -> int
(** Queued payload blocks not yet written, summed over all heads. *)

val head_stats : t -> int -> head_stats

val segment_bytes_remaining : ?head:int -> t -> int
