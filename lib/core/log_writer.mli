(** The log appender.

    Buffers blocks destined for the current segment and writes each batch
    as a single large sequential transfer preceded by its summary block —
    this is where "many small synchronous random writes become large
    asynchronous sequential transfers".  Batches are bounded by the
    summary's entry capacity and by the end of the segment (a
    partial-segment write, Section 3.2).

    Addresses are assigned at {!append} time so callers can update their
    maps immediately; payloads may be supplied lazily and are rendered at
    batch-write time (the inode map and segment usage table exploit this:
    their blocks self-describe accounting that the append itself
    changes).

    The writer always holds a reservation for the next segment of the log
    thread ({!reserved_segment}); every summary records it, which is how
    roll-forward follows the log across segment boundaries. *)

type payload = Bytes of bytes | Lazy of (unit -> bytes)

type t

val create :
  Layout.t ->
  Lfs_disk.Vdev.t ->
  pick_clean:(exclude:int list -> int) ->
  on_append:(Types.block_kind -> seg:int -> mtime:float -> unit) ->
  on_batch:(addr:int -> blocks:int -> unit) ->
  cur_seg:int ->
  cur_off:int ->
  next_seg:int ->
  seq:int ->
  t
(** [pick_clean ~exclude] must return a clean segment not in [exclude]
    (raising {!Types.Fs_error} when none remains).  [on_append] is called
    for every payload block as it is placed (for usage accounting);
    [on_batch]
    after each physical batch write with its disk address and total
    block count including the summary. *)

val append :
  t ->
  kind:Types.block_kind ->
  ino:Types.ino ->
  blockno:int ->
  version:int ->
  mtime:float ->
  payload ->
  Types.baddr
(** Queue one block for the log and return its (final) disk address. *)

val sync : t -> unit
(** Submit any buffered batch to disk as one tagged sequential transfer.
    Under queued device modes the write pipelines ahead of the next
    {!barrier}; in the default Direct mode it completes immediately. *)

val barrier : t -> float
(** Await every batch write not yet confirmed (the fsync barrier);
    returns an upper bound on the completion time of the latest one, or
    [neg_infinity] when none was pending. *)

val unflushed_batches : t -> int
(** Batch writes submitted but not yet confirmed by {!barrier}. *)

val current_segment : t -> int
val current_offset : t -> int
(** Next free slot in the current segment ({b including} queued blocks). *)

val reserved_segment : t -> int
val seq : t -> int
(** Sequence number the next batch will carry. *)

val pending_blocks : t -> int
(** Queued payload blocks not yet written. *)

val segment_bytes_remaining : t -> int
