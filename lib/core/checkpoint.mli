(** Checkpoint regions (Section 4.1).

    A checkpoint is a position in the log at which all file system
    structures are consistent and complete.  The region at a fixed disk
    address records the addresses of all inode map and segment usage
    table blocks plus every write head's log position (segment, offset,
    reservation) and the shared sequence number.  Two regions alternate
    so a crash during a checkpoint leaves the previous one intact; on
    reboot the valid region with the latest timestamp wins.  A
    whole-region checksum stands in for the paper's "time in the last
    block" trick — a torn region write simply fails validation. *)

type head_pos = {
  cur_seg : int;   (** segment this head is filling *)
  cur_off : int;   (** next free slot in that segment *)
  next_seg : int;  (** the head's reserved successor segment *)
}

type t = {
  timestamp : float;  (** logical clock at checkpoint time *)
  log_seq : int;      (** next log-write sequence number (shared) *)
  heads : head_pos array;  (** one position per write head, by index *)
  imap_addrs : Types.baddr array;
  usage_addrs : Types.baddr array;
}

val write : Layout.t -> Lfs_disk.Vdev.t -> region:int -> t -> unit
(** Serialise to region 0 (at [layout.ckpt_a]) or 1 ([ckpt_b]). *)

val read : Layout.t -> Lfs_disk.Vdev.t -> region:int -> t option
(** [None] if the region is invalid (never written, or torn). *)

val read_latest : Layout.t -> Lfs_disk.Vdev.t -> (int * t) option
(** The valid region with the most recent timestamp, with its index.
    [None] when neither region is valid (not a formatted LFS). *)
