module Codec = Lfs_util.Bytes_codec
module Checksum = Lfs_util.Checksum
module Vdev = Lfs_disk.Vdev

type t = { config : Config.t; layout : Layout.t }

let magic = 0x4C46_5331 (* "LFS1" *)
let format_version = 4

let create config ~disk_blocks =
  { config; layout = Layout.compute config ~disk_blocks }

let encode_policy = function
  | Config.Greedy -> 0
  | Config.Cost_benefit -> 1
  | Config.Age_only -> 2
  | Config.Random_victim -> 3

let decode_policy = function
  | 0 -> Config.Greedy
  | 1 -> Config.Cost_benefit
  | 2 -> Config.Age_only
  | 3 -> Config.Random_victim
  | n -> Types.corrupt "superblock: unknown cleaning policy %d" n

let store t disk =
  let bs = t.layout.Layout.block_size in
  let b = Bytes.make bs '\000' in
  let c = Codec.at b 8 in
  Codec.put_u32 c magic;
  Codec.put_u32 c format_version;
  Codec.put_int c t.config.Config.block_size;
  Codec.put_int c t.config.Config.seg_blocks;
  Codec.put_int c t.config.Config.max_inodes;
  Codec.put_int c t.config.Config.clean_start;
  Codec.put_int c t.config.Config.clean_stop;
  Codec.put_int c t.config.Config.bg_clean_start;
  Codec.put_int c t.config.Config.bg_clean_stop;
  Codec.put_int c t.config.Config.segs_per_pass;
  Codec.put_int c t.config.Config.write_buffer_blocks;
  Codec.put_int c t.config.Config.cache_blocks;
  Codec.put_int c t.config.Config.checkpoint_interval_ops;
  Codec.put_int c t.config.Config.checkpoint_interval_blocks;
  Codec.put_u8 c (encode_policy t.config.Config.cleaning_policy);
  Codec.put_u8 c
    (match t.config.Config.grouping_policy with
    | Config.In_order -> 0
    | Config.Age_sort -> 1);
  Codec.put_u8 c
    (match t.config.Config.cleaner_read with
    | Config.Whole_segment -> 0
    | Config.Live_blocks -> 1);
  Codec.put_float c t.config.Config.demote_age_s;
  Codec.put_int c t.config.Config.promote_reads;
  Codec.put_int c t.config.Config.log_heads;
  (* Whole-block checksum over everything after the checksum field. *)
  let sum = Checksum.adler32 ~pos:8 b in
  let c0 = Codec.writer b in
  Codec.put_u32 c0 (Int32.to_int sum land 0xffffffff);
  Codec.put_u32 c0 0;
  Vdev.write_block disk 0 b

let load disk =
  let b = Vdev.read_block disk 0 in
  let c0 = Codec.reader b in
  let stored_sum = Codec.get_u32 c0 in
  let _pad = Codec.get_u32 c0 in
  let sum = Int32.to_int (Checksum.adler32 ~pos:8 b) land 0xffffffff in
  if stored_sum <> sum then
    Types.corrupt "superblock: checksum mismatch (%x vs %x)" stored_sum sum;
  let c = Codec.at b 8 in
  let m = Codec.get_u32 c in
  if m <> magic then Types.corrupt "superblock: bad magic %x" m;
  let v = Codec.get_u32 c in
  if v <> format_version then Types.corrupt "superblock: unknown version %d" v;
  let block_size = Codec.get_int c in
  let seg_blocks = Codec.get_int c in
  let max_inodes = Codec.get_int c in
  let clean_start = Codec.get_int c in
  let clean_stop = Codec.get_int c in
  let bg_clean_start = Codec.get_int c in
  let bg_clean_stop = Codec.get_int c in
  let segs_per_pass = Codec.get_int c in
  let write_buffer_blocks = Codec.get_int c in
  let cache_blocks = Codec.get_int c in
  let checkpoint_interval_ops = Codec.get_int c in
  let checkpoint_interval_blocks = Codec.get_int c in
  let cleaning_policy = decode_policy (Codec.get_u8 c) in
  let grouping_policy =
    match Codec.get_u8 c with
    | 0 -> Config.In_order
    | 1 -> Config.Age_sort
    | n -> Types.corrupt "superblock: unknown grouping policy %d" n
  in
  let cleaner_read =
    match Codec.get_u8 c with
    | 0 -> Config.Whole_segment
    | 1 -> Config.Live_blocks
    | n -> Types.corrupt "superblock: unknown cleaner read policy %d" n
  in
  let demote_age_s = Codec.get_float c in
  let promote_reads = Codec.get_int c in
  let log_heads = Codec.get_int c in
  if block_size <> Vdev.block_size disk then
    Types.corrupt "superblock: block size %d but device has %d" block_size
      (Vdev.block_size disk);
  let config =
    {
      Config.block_size;
      seg_blocks;
      max_inodes;
      clean_start;
      clean_stop;
      bg_clean_start;
      bg_clean_stop;
      segs_per_pass;
      write_buffer_blocks;
      cache_blocks;
      checkpoint_interval_ops;
      checkpoint_interval_blocks;
      cleaning_policy;
      grouping_policy;
      cleaner_read;
      demote_age_s;
      promote_reads;
      log_heads;
    }
  in
  create config ~disk_blocks:(Vdev.nblocks disk)
