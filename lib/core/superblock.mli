(** The superblock: static configuration at a fixed location (block 0).

    It records the geometry needed to interpret the rest of the disk; it
    is written once by {!Fs.format} and never modified (Table 1:
    "Superblock — holds static configuration information"). *)

type t = { config : Config.t; layout : Layout.t }

val create : Config.t -> disk_blocks:int -> t

val store : t -> Lfs_disk.Vdev.t -> unit
(** Serialise to block 0. *)

val load : Lfs_disk.Vdev.t -> t
(** Read block 0 and validate magic / checksum / geometry against the
    device.  Raises {!Types.Corrupt} on mismatch. *)
