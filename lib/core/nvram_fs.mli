(** LFS with an NVRAM write buffer: zero data loss across crashes.

    Wraps {!Fs} so every mutation is journalled to battery-backed
    {!Nvram} before it enters the volatile file cache.  After a crash,
    {!recover} first runs the ordinary checkpoint + roll-forward
    recovery, then replays the journal in order — ensure-style, so
    operations that already reached the disk are no-ops and the final
    state reflects every operation ever acknowledged, not just those
    that reached the log.

    The journal is cleared at each {!checkpoint} (when everything it
    describes is durable) and a checkpoint is forced automatically when
    the NVRAM fills. *)

type t

val wrap : Fs.t -> Nvram.t -> t
(** Journal subsequent mutations of [fs] into the NVRAM.  Mutations must
    go through this interface to be protected.  Registers a checkpoint
    hook on [fs] so the journal is discarded whenever its contents
    become durable — including the file system's own automatic
    checkpoints. *)

val fs : t -> Fs.t
(** The underlying file system (safe for read-only access). *)

val create : t -> dir:Types.ino -> string -> Types.ino
val mkdir : t -> dir:Types.ino -> string -> Types.ino
val link : t -> dir:Types.ino -> string -> Types.ino -> unit
val unlink : t -> dir:Types.ino -> string -> unit
val rmdir : t -> dir:Types.ino -> string -> unit
val rename : t -> odir:Types.ino -> string -> ndir:Types.ino -> string -> unit
val write : t -> Types.ino -> off:int -> bytes -> unit
val truncate : t -> Types.ino -> len:int -> unit
val read : t -> Types.ino -> off:int -> len:int -> bytes
val resolve : t -> string -> Types.ino option
val write_path : t -> string -> bytes -> unit
val read_path : t -> string -> bytes option

val checkpoint : t -> unit
(** Make everything durable on disk and clear the journal. *)

type replay_report = { replayed : int; remapped_inodes : int }

val recover : Lfs_disk.Vdev.t -> Nvram.t -> t * replay_report
(** Crash recovery: mount the last checkpoint and replay the journal on
    top of it.  Because the journal holds exactly the operations since
    that checkpoint (see {!wrap}) and carries full data payloads, this
    restores every acknowledged operation — roll-forward over the log
    tail is unnecessary and skipped.  Inode numbers may differ after
    replay (a re-executed create can allocate a different inode);
    records referring to journalled inodes are remapped. *)
