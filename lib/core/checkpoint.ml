module Codec = Lfs_util.Bytes_codec
module Checksum = Lfs_util.Checksum
module Vdev = Lfs_disk.Vdev

type head_pos = { cur_seg : int; cur_off : int; next_seg : int }

type t = {
  timestamp : float;
  log_seq : int;
  heads : head_pos array;
  imap_addrs : Types.baddr array;
  usage_addrs : Types.baddr array;
}

let magic = 0x434B_5032 (* "CKP2": multi-head log positions *)

let region_addr layout region =
  match region with
  | 0 -> layout.Layout.ckpt_a
  | 1 -> layout.Layout.ckpt_b
  | n -> invalid_arg (Printf.sprintf "Checkpoint: region %d" n)

let write layout disk ~region t =
  let size = layout.Layout.ckpt_blocks * layout.Layout.block_size in
  let b = Bytes.make size '\000' in
  let c = Codec.at b 8 in
  Codec.put_u32 c magic;
  Codec.put_float c t.timestamp;
  Codec.put_u32 c t.log_seq;
  Codec.put_u32 c (Array.length t.heads);
  Array.iter
    (fun h ->
      Codec.put_u32 c h.cur_seg;
      Codec.put_u32 c h.cur_off;
      Codec.put_int c h.next_seg)
    t.heads;
  Codec.put_u32 c (Array.length t.imap_addrs);
  Codec.put_u32 c (Array.length t.usage_addrs);
  Array.iter (fun a -> Codec.put_int c a) t.imap_addrs;
  Array.iter (fun a -> Codec.put_int c a) t.usage_addrs;
  let sum = Int32.to_int (Checksum.adler32 ~pos:8 b) land 0xffffffff in
  let c0 = Codec.writer b in
  Codec.put_u32 c0 sum;
  Codec.put_u32 c0 0;
  Vdev.write_blocks disk (region_addr layout region) b

let read layout disk ~region =
  let b =
    Vdev.read_blocks disk (region_addr layout region) layout.Layout.ckpt_blocks
  in
  let c0 = Codec.reader b in
  let stored = Codec.get_u32 c0 in
  let _pad = Codec.get_u32 c0 in
  let sum = Int32.to_int (Checksum.adler32 ~pos:8 b) land 0xffffffff in
  if stored <> sum then None
  else begin
    let c = Codec.at b 8 in
    if Codec.get_u32 c <> magic then None
    else begin
      let timestamp = Codec.get_float c in
      let log_seq = Codec.get_u32 c in
      let n_heads = Codec.get_u32 c in
      let heads =
        Array.init n_heads (fun _ ->
            let cur_seg = Codec.get_u32 c in
            let cur_off = Codec.get_u32 c in
            let next_seg = Codec.get_int c in
            { cur_seg; cur_off; next_seg })
      in
      let n_imap = Codec.get_u32 c in
      let n_usage = Codec.get_u32 c in
      let imap_addrs = Array.init n_imap (fun _ -> Codec.get_int c) in
      let usage_addrs = Array.init n_usage (fun _ -> Codec.get_int c) in
      Some { timestamp; log_seq; heads; imap_addrs; usage_addrs }
    end
  end

let read_latest layout disk =
  match (read layout disk ~region:0, read layout disk ~region:1) with
  | None, None -> None
  | Some a, None -> Some (0, a)
  | None, Some b -> Some (1, b)
  | Some a, Some b -> if a.timestamp >= b.timestamp then Some (0, a) else Some (1, b)
