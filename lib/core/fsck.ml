module Vdev = Lfs_disk.Vdev

type report = {
  errors : string list;
  files : int;
  directories : int;
  live_data_blocks : int;
  live_indirect_blocks : int;
}

let is_clean r = r.errors = []

let check fs =
  Fs.sync fs;
  let layout = Fs.layout fs in
  let bs = layout.Layout.block_size in
  let errors = ref [] in
  let error fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let files = ref 0 and directories = ref 0 in
  let live_data = ref 0 and live_indirect = ref 0 in
  let expected_live = Array.make layout.Layout.nsegs 0 in
  let owners : (Types.baddr, string) Hashtbl.t = Hashtbl.create 1024 in
  let live_addrs : (Types.baddr, string) Hashtbl.t = Hashtbl.create 1024 in
  let claim addr ~bytes what =
    let seg = Layout.seg_of_block layout addr in
    if seg < 0 || seg >= layout.Layout.nsegs then
      error "%s: block %d outside the log area" what addr
    else begin
      Hashtbl.replace live_addrs addr what;
      expected_live.(seg) <- expected_live.(seg) + bytes;
      (* Inode slots share a block; only whole blocks get uniqueness. *)
      if bytes = bs then begin
        (match Hashtbl.find_opt owners addr with
        | Some other -> error "block %d claimed by both %s and %s" addr other what
        | None -> ());
        Hashtbl.replace owners addr what
      end
    end
  in
  (* Inodes, block maps, data blocks. *)
  let allocated = ref [] in
  Fs.iter_files fs (fun ino inode ->
      allocated := ino :: !allocated;
      if inode.Inode.ino <> ino then
        error "inode %d stores number %d" ino inode.Inode.ino;
      (match inode.Inode.ftype with
      | Types.Regular -> incr files
      | Types.Directory -> incr directories);
      let iaddr = Fs.imap_location fs ino in
      claim (Types.Iaddr.block iaddr) ~bytes:layout.Layout.inode_size
        (Printf.sprintf "inode %d" ino);
      Fs.with_handle fs ino (fun inode fmap ->
          let max_blocks = (inode.Inode.size + bs - 1) / bs in
          Filemap.iter_mapped fmap (fun blockno addr ->
              incr live_data;
              if blockno >= max_blocks then
                error "inode %d: block %d beyond size %d" ino blockno
                  inode.Inode.size;
              claim addr ~bytes:bs (Printf.sprintf "data %d.%d" ino blockno));
          List.iter
            (fun (sblockno, addr) ->
              incr live_indirect;
              claim addr ~bytes:bs
                (Printf.sprintf "indirect %d.%d" ino sblockno))
            (Filemap.indirect_blocks fmap)));
  (* Inode map and usage table blocks. *)
  for i = 0 to layout.Layout.imap_blocks - 1 do
    let addr = Fs.imap_block_addr fs i in
    if addr <> Types.nil_addr then
      claim addr ~bytes:bs (Printf.sprintf "imap block %d" i)
  done;
  List.iteri
    (fun i addr ->
      if addr <> Types.nil_addr then
        claim addr ~bytes:bs (Printf.sprintf "usage block %d" i))
    (Fs.usage_block_addrs fs);
  (* Usage-table accounting must match the recomputation exactly. *)
  for s = 0 to layout.Layout.nsegs - 1 do
    let actual = Fs.segment_live_bytes fs s in
    if actual <> expected_live.(s) then
      error "segment %d: usage table says %d live bytes, walk found %d" s
        actual expected_live.(s)
  done;
  (* Data integrity: every live block must sit inside an intact
     summarized log write.  Each segment's writes chain from slot 0
     (stale summaries from the segment's previous life fail the
     self-identification or sequence-monotonicity test and end the
     walk), and each write stores an Adler-32 over its payload blocks.
     A live block whose covering write fails its checksum has rotted or
     was torn; a live block no chain reaches means the summary chain
     itself was truncated or corrupted.  Structural checks above can
     all pass in both cases — the block pointers are fine, the bytes
     are not. *)
  let disk = List.hd (Fs.devices fs) in
  let seg_blocks = layout.Layout.seg_blocks in
  let covered : (Types.baddr, bool) Hashtbl.t = Hashtbl.create 1024 in
  for seg = 0 to layout.Layout.nsegs - 1 do
    let first = Layout.seg_first_block layout seg in
    let rec walk slot last_seq =
      if slot <= seg_blocks - 2 then
        match Summary.decode (Vdev.read_block disk (first + slot)) with
        | None -> ()
        | Some s ->
            if s.Summary.seg <> seg || s.Summary.slot <> slot then ()
            else if s.Summary.seq <= last_seq then ()
            else begin
              let n = List.length s.Summary.entries in
              if slot + 1 + n > seg_blocks then ()
              else begin
                let ok =
                  Summary.payload_checksum
                    (Vdev.read_blocks disk (first + slot + 1) n)
                  = s.Summary.payload_sum
                in
                for i = 0 to n - 1 do
                  Hashtbl.replace covered (first + slot + 1 + i) ok
                done;
                walk (Summary.next_slot s) s.Summary.seq
              end
            end
    in
    walk 0 (-1)
  done;
  Hashtbl.iter
    (fun addr what ->
      match Hashtbl.find_opt covered addr with
      | Some true -> ()
      | Some false ->
          error "%s: block %d fails its write's payload checksum (bit rot \
                 or torn write)"
            what addr
      | None ->
          error "%s: block %d not covered by any summary chain" what addr)
    live_addrs;
  (* Directory tree: reachability, link counts, parse. *)
  let refcounts : (Types.ino, int) Hashtbl.t = Hashtbl.create 256 in
  let visited : (Types.ino, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec walk dir =
    if Hashtbl.mem visited dir then error "directory %d visited twice (cycle)" dir
    else begin
      Hashtbl.replace visited dir ();
      match Fs.readdir fs dir with
      | entries ->
          List.iter
            (fun (name, ino) ->
              (match Directory.check_name name with
              | () -> ()
              | exception Types.Fs_error m -> error "bad name in dir %d: %s" dir m);
              let prev = Option.value ~default:0 (Hashtbl.find_opt refcounts ino) in
              Hashtbl.replace refcounts ino (prev + 1);
              match (Fs.stat fs ino).Fs.st_ftype with
              | Types.Directory -> walk ino
              | Types.Regular -> ()
              | exception Types.Fs_error m ->
                  error "entry %d/%s -> missing inode %d: %s" dir name ino m)
            entries
      | exception Types.Corrupt m -> error "directory %d unreadable: %s" dir m
    end
  in
  Hashtbl.replace refcounts Types.root_ino 1;
  walk Types.root_ino;
  List.iter
    (fun ino ->
      let st = Fs.stat fs ino in
      let refs = Option.value ~default:0 (Hashtbl.find_opt refcounts ino) in
      (match st.Fs.st_ftype with
      | Types.Regular ->
          if refs = 0 then error "inode %d allocated but unreachable" ino
      | Types.Directory ->
          if not (Hashtbl.mem visited ino) then
            error "directory %d allocated but unreachable" ino);
      if st.Fs.st_nlink <> refs then
        error "inode %d: nlink %d but %d directory entries" ino st.Fs.st_nlink
          refs)
    !allocated;
  (* Tiered volumes: the placement map is metadata too — verify it like
     the inode map (checksums, generation, in-memory/durable agreement,
     free-pool bijectivity). *)
  (match Fs.tier fs with
  | None -> ()
  | Some ti ->
      List.iter (fun e -> error "tier: %s" e) (Lfs_disk.Vdev_tier.verify ti));
  {
    errors = List.rev !errors;
    files = !files;
    directories = !directories;
    live_data_blocks = !live_data;
    live_indirect_blocks = !live_indirect;
  }

let pp_report ppf r =
  Format.fprintf ppf "fsck: %d files, %d dirs, %d data blocks, %d indirect"
    r.files r.directories r.live_data_blocks r.live_indirect_blocks;
  if r.errors = [] then Format.fprintf ppf " — clean"
  else
    List.iter (fun e -> Format.fprintf ppf "@.  ERROR: %s" e) r.errors
