module Io_stats = Lfs_disk.Io_stats
module Disk = Lfs_disk.Disk

type phase = Create | Read | Delete

let phase_name = function
  | Create -> "create"
  | Read -> "read"
  | Delete -> "delete"

type phase_result = {
  phase : phase;
  files_per_sec : float;
  cpu_s : float;
  disk_s : float;
  elapsed_s : float;
  disk_busy_frac : float;
}

type result = { fs_name : string; phases : phase_result list }

type params = {
  nfiles : int;
  file_size : int;
  files_per_dir : int;
  cpu : Cpu_model.t;
}

let default_params =
  { nfiles = 10_000; file_size = 1024; files_per_dir = 100; cpu = Cpu_model.sun4_260 }

let path p i = Printf.sprintf "/d%d/f%d" (i / p.files_per_dir) i

let measure_phase p (fs : Fsops.t) phase ~ops ~blocks body =
  let before = Fsops.io_stats fs in
  body ();
  fs.Fsops.sync ();
  let after = Fsops.io_stats fs in
  let disk_s = (Io_stats.diff after before).Io_stats.busy_s in
  let cpu_s = Cpu_model.cost p.cpu ~ops ~blocks in
  let sync =
    match phase with
    | Read -> true  (* reads always wait for the disk *)
    | Create | Delete -> not fs.Fsops.async_writes
  in
  let elapsed_s = Cpu_model.elapsed ~sync ~cpu_s ~disk_s in
  {
    phase;
    files_per_sec = float_of_int p.nfiles /. elapsed_s;
    cpu_s;
    disk_s;
    elapsed_s;
    disk_busy_frac = (if elapsed_s > 0.0 then disk_s /. elapsed_s else 0.0);
  }

let run ?(on_phase = fun (_ : phase_result) -> ()) p (fs : Fsops.t) =
  let ndirs = ((p.nfiles + p.files_per_dir - 1) / p.files_per_dir) in
  for d = 0 to ndirs - 1 do
    ignore (fs.Fsops.mkdir_path (Printf.sprintf "/d%d" d))
  done;
  fs.Fsops.sync ();
  let payload = Bytes.make p.file_size 'a' in
  let blocks_per_file = max 1 ((p.file_size + 4095) / 4096) in
  let create =
    measure_phase p fs Create ~ops:p.nfiles ~blocks:(p.nfiles * blocks_per_file)
      (fun () ->
        for i = 0 to p.nfiles - 1 do
          let ino = fs.Fsops.create_path (path p i) in
          fs.Fsops.write ino ~off:0 payload
        done)
  in
  on_phase create;
  fs.Fsops.drop_caches ();
  let read =
    measure_phase p fs Read ~ops:p.nfiles ~blocks:(p.nfiles * blocks_per_file)
      (fun () ->
        for i = 0 to p.nfiles - 1 do
          match fs.Fsops.resolve (path p i) with
          | Some ino -> ignore (fs.Fsops.read ino ~off:0 ~len:p.file_size)
          | None -> failwith "smallfile: file vanished"
        done)
  in
  on_phase read;
  fs.Fsops.drop_caches ();
  let delete =
    measure_phase p fs Delete ~ops:p.nfiles ~blocks:0 (fun () ->
        for i = 0 to p.nfiles - 1 do
          match fs.Fsops.resolve (Printf.sprintf "/d%d" (i / p.files_per_dir)) with
          | Some dir -> fs.Fsops.unlink ~dir (Printf.sprintf "f%d" i)
          | None -> failwith "smallfile: directory vanished"
        done)
  in
  on_phase delete;
  { fs_name = fs.Fsops.name; phases = [ create; read; delete ] }

let predict_create p result ~cpu_multiple =
  match List.find_opt (fun r -> r.phase = Create) result.phases with
  | None -> invalid_arg "predict_create: no create phase"
  | Some r ->
      let cpu_s = r.cpu_s /. cpu_multiple in
      let sync = r.elapsed_s > Float.max r.cpu_s r.disk_s +. 1e-9 in
      let elapsed = Cpu_model.elapsed ~sync ~cpu_s ~disk_s:r.disk_s in
      float_of_int p.nfiles /. elapsed
