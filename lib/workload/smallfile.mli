(** The small-file micro-benchmark of Figure 8: create N small files
    (spread across directories), read them back in creation order, then
    delete them.

    Between phases the file cache is dropped and the disk statistics are
    snapshotted, so each phase reports its own disk time; CPU time comes
    from {!Cpu_model}.  Figure 8(a) is [files_per_sec] of each phase;
    Figure 8(b) is {!predict_create} at CPU multiples. *)

type phase = Create | Read | Delete

val phase_name : phase -> string

type phase_result = {
  phase : phase;
  files_per_sec : float;
  cpu_s : float;
  disk_s : float;
  elapsed_s : float;
  disk_busy_frac : float;  (** disk_s / elapsed — 17% vs 85% in 5.1 *)
}

type result = { fs_name : string; phases : phase_result list }

type params = {
  nfiles : int;
  file_size : int;    (** bytes; the paper uses 1 KB *)
  files_per_dir : int;
  cpu : Cpu_model.t;
}

val default_params : params
(** 10000 x 1 KB files, 100 per directory, Sun-4/260 CPU. *)

val run : ?on_phase:(phase_result -> unit) -> params -> Fsops.t -> result
(** [on_phase] fires at each phase boundary (after the phase's sync and
    measurement, before caches are dropped for the next one) — the hook
    point for dumping a metrics registry per phase. *)

val predict_create : params -> result -> cpu_multiple:float -> float
(** Files/sec the create phase would reach with a CPU [cpu_multiple]
    times faster and the same disk (Figure 8(b)). *)
