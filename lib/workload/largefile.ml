module Io_stats = Lfs_disk.Io_stats
module Disk = Lfs_disk.Disk
module Prng = Lfs_util.Prng

type phase = Seq_write | Seq_read | Rand_write | Rand_read | Reread

let phase_name = function
  | Seq_write -> "write seq"
  | Seq_read -> "read seq"
  | Rand_write -> "write rand"
  | Rand_read -> "read rand"
  | Reread -> "reread seq"

type phase_result = {
  phase : phase;
  kbytes_per_sec : float;
  cpu_s : float;
  disk_s : float;
  elapsed_s : float;
}

type result = { fs_name : string; phases : phase_result list }

type params = { file_mb : int; chunk : int; cpu : Cpu_model.t; seed : int }

let default_params =
  { file_mb = 16; chunk = 8192; cpu = Cpu_model.sun4_260; seed = 7 }

let run p (fs : Fsops.t) =
  let total = p.file_mb * 1024 * 1024 in
  let nchunks = total / p.chunk in
  let blocks_per_chunk = (p.chunk + 4095) / 4096 in
  let payload = Bytes.make p.chunk 'L' in
  let prng = Prng.create ~seed:p.seed in
  let ino = fs.Fsops.create_path "/big" in
  let phase_of name ~write body =
    let before = Fsops.io_stats fs in
    body ();
    fs.Fsops.sync ();
    let after = Fsops.io_stats fs in
    let disk_s = (Io_stats.diff after before).Io_stats.busy_s in
    let cpu_s =
      Cpu_model.cost p.cpu ~ops:nchunks ~blocks:(nchunks * blocks_per_chunk)
    in
    (* Data writes are asynchronous on both systems (SunOS buffers file
       data too); FFS's synchronous-metadata penalty is already in its
       disk time.  Reads always wait for the disk. *)
    let elapsed_s = Cpu_model.elapsed ~sync:(not write) ~cpu_s ~disk_s in
    {
      phase = name;
      kbytes_per_sec = float_of_int total /. 1024.0 /. elapsed_s;
      cpu_s;
      disk_s;
      elapsed_s;
    }
  in
  let seq_write =
    phase_of Seq_write ~write:true (fun () ->
        for i = 0 to nchunks - 1 do
          fs.Fsops.write ino ~off:(i * p.chunk) payload
        done)
  in
  fs.Fsops.drop_caches ();
  let seq_read =
    phase_of Seq_read ~write:false (fun () ->
        for i = 0 to nchunks - 1 do
          ignore (fs.Fsops.read ino ~off:(i * p.chunk) ~len:p.chunk)
        done)
  in
  fs.Fsops.drop_caches ();
  let rand_write =
    phase_of Rand_write ~write:true (fun () ->
        for _ = 0 to nchunks - 1 do
          let i = Prng.int prng nchunks in
          fs.Fsops.write ino ~off:(i * p.chunk) payload
        done)
  in
  fs.Fsops.drop_caches ();
  let rand_read =
    phase_of Rand_read ~write:false (fun () ->
        for _ = 0 to nchunks - 1 do
          let i = Prng.int prng nchunks in
          ignore (fs.Fsops.read ino ~off:(i * p.chunk) ~len:p.chunk)
        done)
  in
  fs.Fsops.drop_caches ();
  let reread =
    phase_of Reread ~write:false (fun () ->
        for i = 0 to nchunks - 1 do
          ignore (fs.Fsops.read ino ~off:(i * p.chunk) ~len:p.chunk)
        done)
  in
  {
    fs_name = fs.Fsops.name;
    phases = [ seq_write; seq_read; rand_write; rand_read; reread ];
  }
