module Prng = Lfs_util.Prng
module Codec = Lfs_util.Bytes_codec

type op =
  | Mkdir of string
  | Create of string
  | Write of { path : string; off : int; len : int; seed : int }
  | Read of { path : string; off : int; len : int }
  | Unlink of string
  | Sync

type t = op list

let payload ~len ~seed =
  let prng = Prng.create ~seed in
  Bytes.init len (fun _ -> Char.chr (32 + Prng.int prng 95))

let record_random ~ops ?(files = 20) ?(dirs = 4) ~seed () =
  let prng = Prng.create ~seed in
  let dir_names = List.init dirs (fun d -> Printf.sprintf "/t%d" d) in
  let path () =
    Printf.sprintf "/t%d/f%d" (Prng.int prng dirs) (Prng.int prng files)
  in
  let live : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let trace = ref (List.rev_map (fun d -> Mkdir d) dir_names) in
  for _ = 1 to ops do
    let p = path () in
    let op =
      match Prng.int prng 10 with
      | 0 | 1 | 2 | 3 ->
          let len = 1 + Prng.int prng 30_000 in
          let seed = Prng.int prng 1_000_000 in
          if not (Hashtbl.mem live p) then begin
            Hashtbl.replace live p len;
            [ Write { path = p; off = 0; len; seed }; Create p ]
          end
          else begin
            Hashtbl.replace live p len;
            [ Write { path = p; off = 0; len; seed } ]
          end
      | 4 -> (
          match Hashtbl.find_opt live p with
          | Some size ->
              let off = Prng.int prng (max 1 size) in
              let len = 1 + Prng.int prng 4096 in
              Hashtbl.replace live p (max size (off + len));
              [ Write { path = p; off; len; seed = Prng.int prng 1_000_000 } ]
          | None -> [])
      | 5 | 6 -> (
          match Hashtbl.find_opt live p with
          | Some size -> [ Read { path = p; off = 0; len = min size 8192 } ]
          | None -> [])
      | 7 ->
          if Hashtbl.mem live p then begin
            Hashtbl.remove live p;
            [ Unlink p ]
          end
          else []
      | 8 -> [ Sync ]
      | _ -> []
    in
    trace := op @ !trace
  done;
  List.rev !trace

let replay trace (fs : Fsops.t) =
  (* Count the operations that resolve to nothing rather than dropping
     them silently: a trace replayed against the filesystem it was
     recorded on skips zero, so a non-zero count flags a hand-edited or
     mismatched trace instead of quietly shrinking the workload. *)
  let skipped = ref 0 in
  let skip () = incr skipped in
  let apply = function
    | Mkdir path -> if fs.Fsops.resolve path = None then ignore (fs.Fsops.mkdir_path path)
    | Create path ->
        if fs.Fsops.resolve path = None then ignore (fs.Fsops.create_path path)
    | Write { path; off; len; seed } -> (
        match fs.Fsops.resolve path with
        | Some ino -> fs.Fsops.write ino ~off (payload ~len ~seed)
        | None -> skip ())
    | Read { path; off; len } -> (
        match fs.Fsops.resolve path with
        | Some ino -> ignore (fs.Fsops.read ino ~off ~len)
        | None -> skip ())
    | Unlink path -> (
        match (fs.Fsops.resolve path, fs.Fsops.resolve (Filename.dirname path)) with
        | Some _, Some dir -> fs.Fsops.unlink ~dir (Filename.basename path)
        | _ -> skip ())
    | Sync -> fs.Fsops.sync ()
  in
  List.iter apply trace;
  !skipped

(* On-disk format: magic, count, then tagged records. *)
let magic = 0x4C54_5243 (* "LTRC" *)

let encoded_size t =
  List.fold_left
    (fun acc op ->
      acc
      +
      match op with
      | Mkdir p | Create p | Unlink p -> 1 + 2 + String.length p
      | Write { path; _ } -> 1 + 2 + String.length path + 24
      | Read { path; _ } -> 1 + 2 + String.length path + 16
      | Sync -> 1)
    8 t

let save t path =
  let b = Bytes.create (encoded_size t) in
  let c = Codec.writer b in
  Codec.put_u32 c magic;
  Codec.put_u32 c (List.length t);
  List.iter
    (fun op ->
      match op with
      | Mkdir p ->
          Codec.put_u8 c 1;
          Codec.put_string c p
      | Create p ->
          Codec.put_u8 c 2;
          Codec.put_string c p
      | Write { path; off; len; seed } ->
          Codec.put_u8 c 3;
          Codec.put_string c path;
          Codec.put_int c off;
          Codec.put_int c len;
          Codec.put_int c seed
      | Read { path; off; len } ->
          Codec.put_u8 c 4;
          Codec.put_string c path;
          Codec.put_int c off;
          Codec.put_int c len
      | Unlink p ->
          Codec.put_u8 c 5;
          Codec.put_string c p
      | Sync -> Codec.put_u8 c 6)
    t;
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc b)

let load path =
  let ic = open_in_bin path in
  let b =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        b)
  in
  let c = Codec.reader b in
  (try
     if Codec.get_u32 c <> magic then failwith "Trace.load: bad magic"
   with Codec.Overflow _ -> failwith "Trace.load: truncated header");
  let n = Codec.get_u32 c in
  try
    List.init n (fun _ ->
        match Codec.get_u8 c with
        | 1 -> Mkdir (Codec.get_string c)
        | 2 -> Create (Codec.get_string c)
        | 3 ->
            let path = Codec.get_string c in
            let off = Codec.get_int c in
            let len = Codec.get_int c in
            let seed = Codec.get_int c in
            Write { path; off; len; seed }
        | 4 ->
            let path = Codec.get_string c in
            let off = Codec.get_int c in
            let len = Codec.get_int c in
            Read { path; off; len }
        | 5 -> Unlink (Codec.get_string c)
        | 6 -> Sync
        | tag -> failwith (Printf.sprintf "Trace.load: unknown tag %d" tag))
  with Codec.Overflow _ -> failwith "Trace.load: truncated record"

let length = List.length

let bytes_written t =
  List.fold_left
    (fun acc -> function Write { len; _ } -> acc + len | _ -> acc)
    0 t
