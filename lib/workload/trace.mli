(** Operation traces: record a workload once, replay it against any file
    system through the common {!Fsops} driver.

    Traces make cross-system comparisons exact (both systems see the
    same operation sequence, byte for byte), let a generated workload be
    saved to disk for later runs, and double as regression fixtures.
    The format is a self-describing binary stream (see {!save} /
    {!load}); payload bytes are regenerated from a seed + length so
    traces stay small. *)

type op =
  | Mkdir of string
  | Create of string
  | Write of { path : string; off : int; len : int; seed : int }
  | Read of { path : string; off : int; len : int }
  | Unlink of string
  | Sync

type t = op list

val record_random :
  ops:int -> ?files:int -> ?dirs:int -> seed:int -> unit -> t
(** A reproducible random workload over a bounded namespace: mkdirs
    first, then a mix of writes, partial writes, reads, deletes and
    syncs. *)

val replay : t -> Fsops.t -> int
(** Run every operation and return how many were skipped.  Operations
    against paths that don't exist (e.g. a read after its file was
    deleted in a hand-edited trace) are skipped and counted; a replay of
    an unmodified trace on a fresh volume returns [0], so a non-zero
    count flags a mismatched or hand-edited trace. *)

val payload : len:int -> seed:int -> bytes
(** The deterministic payload associated with a [Write] record. *)

val save : t -> string -> unit
val load : string -> t
(** Raises [Failure] on a malformed trace file. *)

val length : t -> int
val bytes_written : t -> int
