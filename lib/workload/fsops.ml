module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Fs = Lfs_core.Fs
module Ffs = Lfs_ffs.Ffs

type t = {
  name : string;
  async_writes : bool;
  disk : Lfs_disk.Vdev.t;
  create_path : string -> Lfs_core.Types.ino;
  mkdir_path : string -> Lfs_core.Types.ino;
  resolve : string -> Lfs_core.Types.ino option;
  unlink : dir:Lfs_core.Types.ino -> string -> unit;
  write : Lfs_core.Types.ino -> off:int -> bytes -> unit;
  read : Lfs_core.Types.ino -> off:int -> len:int -> bytes;
  file_size : Lfs_core.Types.ino -> int;
  sync : unit -> unit;
  drop_caches : unit -> unit;
}

let of_lfs fs =
  {
    name = "Sprite LFS";
    async_writes = true;
    disk = Fs.disk fs;
    create_path = Fs.create_path fs;
    mkdir_path = Fs.mkdir_path fs;
    resolve = Fs.resolve fs;
    unlink = (fun ~dir name -> Fs.unlink fs ~dir name);
    write = (fun ino ~off b -> Fs.write fs ino ~off b);
    read = (fun ino ~off ~len -> Fs.read fs ino ~off ~len);
    file_size = Fs.file_size fs;
    sync = (fun () -> Fs.sync fs);
    drop_caches = (fun () -> Fs.drop_caches fs);
  }

let of_ffs fs =
  {
    name = "SunOS FFS";
    async_writes = false;
    disk = Ffs.disk fs;
    create_path = Ffs.create_path fs;
    mkdir_path = Ffs.mkdir_path fs;
    resolve = Ffs.resolve fs;
    unlink = (fun ~dir name -> Ffs.unlink fs ~dir name);
    write = (fun ino ~off b -> Ffs.write fs ino ~off b);
    read = (fun ino ~off ~len -> Ffs.read fs ino ~off ~len);
    file_size = Ffs.file_size fs;
    sync = (fun () -> Ffs.sync fs);
    drop_caches = (fun () -> Ffs.drop_caches fs);
  }

let fresh_lfs ?(config = Lfs_core.Config.default) geometry =
  let disk = Vdev.of_disk (Disk.create geometry) in
  Fs.format disk config;
  of_lfs (Fs.mount disk)

let fresh_ffs ?(config = Ffs.default_config) geometry =
  let disk = Vdev.of_disk (Disk.create geometry) in
  Ffs.format disk config;
  of_ffs (Ffs.mount disk)
