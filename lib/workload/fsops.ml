module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Fs = Lfs_core.Fs
module Ffs = Lfs_ffs.Ffs

type t = {
  name : string;
  async_writes : bool;
  devices : Lfs_disk.Vdev.t list;
  create_path : string -> Lfs_core.Types.ino;
  mkdir_path : string -> Lfs_core.Types.ino;
  resolve : string -> Lfs_core.Types.ino option;
  unlink : dir:Lfs_core.Types.ino -> string -> unit;
  rmdir : dir:Lfs_core.Types.ino -> string -> unit;
  rename :
    odir:Lfs_core.Types.ino -> string -> ndir:Lfs_core.Types.ino -> string -> unit;
  write : Lfs_core.Types.ino -> off:int -> bytes -> unit;
  truncate : Lfs_core.Types.ino -> len:int -> unit;
  read : Lfs_core.Types.ino -> off:int -> len:int -> bytes;
  file_size : Lfs_core.Types.ino -> int;
  sync : unit -> unit;
  drop_caches : unit -> unit;
  metrics : unit -> Lfs_obs.Metrics.t option;
  on_log_batch : ((blocks:int -> unit) -> unit) option;
  clean_step : (max_segments:int -> int) option;
}

(* Applying this functor doubles as the compile-time proof that the
   argument satisfies the shared surface (Fs and Ffs below). *)
module Make (F : Lfs_core.Fs_intf.S) = struct
  let make ~name ~async_writes fs =
    {
      name;
      async_writes;
      devices = F.devices fs;
      create_path = F.create_path fs;
      mkdir_path = F.mkdir_path fs;
      resolve = F.resolve fs;
      unlink = (fun ~dir name -> F.unlink fs ~dir name);
      rmdir = (fun ~dir name -> F.rmdir fs ~dir name);
      rename = (fun ~odir oname ~ndir nname -> F.rename fs ~odir oname ~ndir nname);
      write = (fun ino ~off b -> F.write fs ino ~off b);
      truncate = (fun ino ~len -> F.truncate fs ino ~len);
      read = (fun ino ~off ~len -> F.read fs ino ~off ~len);
      file_size = F.file_size fs;
      sync = (fun () -> F.sync fs);
      drop_caches = (fun () -> F.drop_caches fs);
      metrics = (fun () -> None);
      on_log_batch = None;
      clean_step = None;
    }
end

module Of_lfs = Make (Fs)
module Of_ffs = Make (Ffs)

let of_any ~name ~async_writes (Lfs_core.Fs_intf.Any.Any ((module F), fs)) =
  let module M = Make (F) in
  M.make ~name ~async_writes fs

let io_stats t =
  match t.devices with
  | [] -> invalid_arg "Fsops.io_stats: empty device list"
  | d :: rest ->
      List.fold_left
        (fun acc d -> Lfs_disk.Io_stats.merge acc (Vdev.stats d))
        (Lfs_disk.Io_stats.copy (Vdev.stats d))
        rest

let of_lfs fs =
  {
    (Of_lfs.make ~name:"Sprite LFS" ~async_writes:true fs) with
    metrics = (fun () -> Some (Fs.metrics fs));
    on_log_batch = Some (Fs.on_log_batch fs);
    clean_step = Some (fun ~max_segments -> Fs.clean_step ~max_segments fs);
  }
let of_ffs fs = Of_ffs.make ~name:"SunOS FFS" ~async_writes:false fs

let fresh_lfs ?(config = Lfs_core.Config.default) geometry =
  let disk = Vdev.of_disk (Disk.create geometry) in
  Fs.format disk config;
  of_lfs (Fs.mount disk)

let fresh_ffs ?(config = Ffs.default_config) geometry =
  let disk = Vdev.of_disk (Disk.create geometry) in
  Ffs.format disk config;
  of_ffs (Ffs.mount disk)
