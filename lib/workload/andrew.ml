module Io_stats = Lfs_disk.Io_stats
module Disk = Lfs_disk.Disk

type phase = Mkdir | Copy | Stat | Read | Compile

let phase_name = function
  | Mkdir -> "mkdir"
  | Copy -> "copy"
  | Stat -> "stat"
  | Read -> "read"
  | Compile -> "compile"

type phase_result = {
  phase : phase;
  elapsed_s : float;
  cpu_s : float;
  disk_s : float;
}

type result = {
  fs_name : string;
  phases : phase_result list;
  total_s : float;
  cpu_utilization : float;
}

type params = {
  dirs : int;
  files : int;
  file_bytes : int;
  compile_cpu_s_per_file : float;
  cpu : Cpu_model.t;
}

let default_params =
  {
    dirs = 20;
    files = 70;
    file_bytes = 4096;
    compile_cpu_s_per_file = 1.0;
    cpu = Cpu_model.sun4_260;
  }

let src p i = Printf.sprintf "/src/d%d/f%d.c" (i mod p.dirs) i
let obj p i = Printf.sprintf "/obj/d%d/f%d.o" (i mod p.dirs) i

let run p (fs : Fsops.t) =
  let blocks_per_file = max 1 ((p.file_bytes + 4095) / 4096) in
  let measure phase ~ops ~blocks ~extra_cpu body =
    let before = Fsops.io_stats fs in
    body ();
    fs.Fsops.sync ();
    let disk_s = (Io_stats.diff (Fsops.io_stats fs) before).Io_stats.busy_s in
    let cpu_s = Cpu_model.cost p.cpu ~ops ~blocks +. extra_cpu in
    let elapsed_s =
      Cpu_model.elapsed ~sync:(not fs.Fsops.async_writes) ~cpu_s ~disk_s
    in
    { phase; elapsed_s; cpu_s; disk_s }
  in
  let payload = Bytes.make p.file_bytes 'a' in
  let mkdir =
    measure Mkdir ~ops:(2 * p.dirs) ~blocks:0 ~extra_cpu:0.0 (fun () ->
        ignore (fs.Fsops.mkdir_path "/src");
        ignore (fs.Fsops.mkdir_path "/obj");
        for d = 0 to p.dirs - 1 do
          ignore (fs.Fsops.mkdir_path (Printf.sprintf "/src/d%d" d));
          ignore (fs.Fsops.mkdir_path (Printf.sprintf "/obj/d%d" d))
        done)
  in
  let copy =
    measure Copy ~ops:p.files
      ~blocks:(p.files * blocks_per_file)
      ~extra_cpu:0.0
      (fun () ->
        for i = 0 to p.files - 1 do
          let ino = fs.Fsops.create_path (src p i) in
          fs.Fsops.write ino ~off:0 payload
        done)
  in
  let stat =
    measure Stat ~ops:p.files ~blocks:0 ~extra_cpu:0.0 (fun () ->
        for i = 0 to p.files - 1 do
          match fs.Fsops.resolve (src p i) with
          | Some ino -> ignore (fs.Fsops.file_size ino)
          | None -> failwith "andrew: missing source"
        done)
  in
  let read =
    measure Read ~ops:p.files
      ~blocks:(p.files * blocks_per_file)
      ~extra_cpu:0.0
      (fun () ->
        for i = 0 to p.files - 1 do
          match fs.Fsops.resolve (src p i) with
          | Some ino -> ignore (fs.Fsops.read ino ~off:0 ~len:p.file_bytes)
          | None -> failwith "andrew: missing source"
        done)
  in
  let compile =
    (* Read each source, burn compiler CPU, write the object. *)
    measure Compile ~ops:(2 * p.files)
      ~blocks:(2 * p.files * blocks_per_file)
      ~extra_cpu:(float_of_int p.files *. p.compile_cpu_s_per_file)
      (fun () ->
        for i = 0 to p.files - 1 do
          (match fs.Fsops.resolve (src p i) with
          | Some ino -> ignore (fs.Fsops.read ino ~off:0 ~len:p.file_bytes)
          | None -> failwith "andrew: missing source");
          let ino = fs.Fsops.create_path (obj p i) in
          fs.Fsops.write ino ~off:0 payload
        done)
  in
  let phases = [ mkdir; copy; stat; read; compile ] in
  let total_s = List.fold_left (fun acc r -> acc +. r.elapsed_s) 0.0 phases in
  let cpu_total = List.fold_left (fun acc r -> acc +. r.cpu_s) 0.0 phases in
  {
    fs_name = fs.Fsops.name;
    phases;
    total_s;
    cpu_utilization = (if total_s > 0.0 then cpu_total /. total_s else 0.0);
  }
