module Prng = Lfs_util.Prng

type op_class = Create | Write | Read | Delete

let op_class_name = function
  | Create -> "create"
  | Write -> "write"
  | Read -> "read"
  | Delete -> "delete"

let op_classes = [ Create; Write; Read; Delete ]

type op = { cls : op_class; name : string; path : string; size : int }

type t = {
  client : int;
  dir : string;
  prng : Prng.t;
  files : int;
  write_size : int;
}

let create ~client ~seed ?(files = 32) ?(write_size = 8192) () =
  if files <= 0 then invalid_arg "Session.create: files must be positive";
  if write_size <= 0 then invalid_arg "Session.create: write_size must be positive";
  let dir = Printf.sprintf "/c%d" client in
  (* Mix the client id into the seed so equal-seeded clients still run
     distinct streams. *)
  let prng = Prng.create ~seed:(seed lxor (client * 0x9E3779B9)) in
  { client; dir; prng; files; write_size }

let client t = t.client
let dir t = t.dir

(* The office mix: writes dominate (small files are written whole), a
   steady trickle of creates keeps the working set populated, deletes
   are rare — Section 5.1's many-clients-small-files traffic. *)
let pick_class prng =
  let r = Prng.int prng 100 in
  if r < 20 then Create
  else if r < 55 then Write
  else if r < 90 then Read
  else Delete

let next t =
  let cls = pick_class t.prng in
  let slot = Prng.int t.prng t.files in
  let name = Printf.sprintf "f%d" slot in
  let size =
    match cls with
    | Create | Delete -> 0
    | Write | Read -> 1 + Prng.int t.prng t.write_size
  in
  { cls; name; path = t.dir ^ "/" ^ name; size }
