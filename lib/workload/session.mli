(** Per-client op streams for the serving engine.

    A session models one client of the office-workload file server of
    Section 5.1: a stream of small-file creates, whole-file overwrites,
    reads and deletes confined to the client's own directory, drawn from
    a seeded PRNG so the stream is a pure function of [(client, seed)].
    The stream is generated independently of file-system state — ops may
    name files that do not exist yet (a read before the create won) and
    the engine treats those as cheap no-ops, which keeps replays
    deterministic under any interleaving. *)

type op_class = Create | Write | Read | Delete

val op_class_name : op_class -> string
val op_classes : op_class list
(** All classes, in a fixed order (for per-class metrics). *)

type op = {
  cls : op_class;
  name : string;  (** leaf name inside the session directory *)
  path : string;  (** full path, [dir ^ "/" ^ name] *)
  size : int;  (** bytes written (Write) or read at most (Read) *)
}

type t

val create : client:int -> seed:int -> ?files:int -> ?write_size:int -> unit -> t
(** [files] is the size of the per-client working set (default [32]
    distinct names); [write_size] bounds the bytes of one write
    (default [8192]; each write draws uniformly in [\[1, write_size\]]). *)

val client : t -> int

val dir : t -> string
(** The session's private directory, ["/c<client>"] — the engine
    creates it before serving starts. *)

val next : t -> op
(** The next op of the stream (advances the session's PRNG). *)
