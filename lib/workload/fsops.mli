(** A common driver interface over {!Lfs_core.Fs} and {!Lfs_ffs.Ffs} so
    every benchmark runs identically against both systems. *)

type t = {
  name : string;
  async_writes : bool;
      (** writes are buffered and overlap with the CPU (LFS); false
          means metadata IO serialises with the caller (FFS) *)
  devices : Lfs_disk.Vdev.t list;
      (** the devices the system is mounted on, in a stable order
          ({!Lfs_core.Fs_intf.S.devices}); singleton for LFS/FFS, one
          per shard for sharded volumes — never empty *)
  create_path : string -> Lfs_core.Types.ino;
  mkdir_path : string -> Lfs_core.Types.ino;
  resolve : string -> Lfs_core.Types.ino option;
  unlink : dir:Lfs_core.Types.ino -> string -> unit;
  rmdir : dir:Lfs_core.Types.ino -> string -> unit;
  rename :
    odir:Lfs_core.Types.ino -> string -> ndir:Lfs_core.Types.ino -> string -> unit;
  write : Lfs_core.Types.ino -> off:int -> bytes -> unit;
  truncate : Lfs_core.Types.ino -> len:int -> unit;
  read : Lfs_core.Types.ino -> off:int -> len:int -> bytes;
  file_size : Lfs_core.Types.ino -> int;
  sync : unit -> unit;
  drop_caches : unit -> unit;
  metrics : unit -> Lfs_obs.Metrics.t option;
      (** the backing file system's observability registry, when it has
          one ({!of_lfs}); [None] for systems without instrumentation *)
  on_log_batch : ((blocks:int -> unit) -> unit) option;
      (** register a per-log-batch callback ({!Lfs_core.Fs.on_log_batch});
          [None] for systems without a log — the serving layer then
          counts each durable request as its own flush *)
  clean_step : (max_segments:int -> int) option;
      (** one budgeted background cleaning pass
          ({!Lfs_core.Fs.clean_step}), returning the segments still owed;
          [None] for systems without a cleaner — a serving layer's
          [--bg-clean] knob is then a no-op *)
}

module Make (F : Lfs_core.Fs_intf.S) : sig
  val make : name:string -> async_writes:bool -> F.t -> t
end
(** Build the driver record from any module satisfying the shared
    {!Lfs_core.Fs_intf.S} surface, so every workload in this library
    runs against a new file system the moment it implements the
    interface.  [of_lfs]/[of_ffs] below are instances. *)

val of_any : name:string -> async_writes:bool -> Lfs_core.Fs_intf.Any.t -> t
(** Build the driver record from a packed file system
    ({!Lfs_core.Fs_intf.Any}), for callers that receive "some file
    system" across an API boundary instead of a concrete module.  The
    optional hooks ([metrics], [on_log_batch], [clean_step]) start as
    [None]; builders that know more (e.g. the shard spec parser) fill
    them in with record update. *)

val io_stats : t -> Lfs_disk.Io_stats.t
(** A merged snapshot of {!Lfs_disk.Vdev.stats} across [devices]
    (per-field sums via {!Lfs_disk.Io_stats.merge}) — capture before and
    after a phase and {!Lfs_disk.Io_stats.diff} the two. *)

val of_lfs : Lfs_core.Fs.t -> t
val of_ffs : Lfs_ffs.Ffs.t -> t

val fresh_lfs :
  ?config:Lfs_core.Config.t -> Lfs_disk.Geometry.t -> t
(** Create a disk with the given geometry, format it as LFS, mount. *)

val fresh_ffs : ?config:Lfs_ffs.Ffs.config -> Lfs_disk.Geometry.t -> t
