module Prng = Lfs_util.Prng
module Disk = Lfs_disk.Disk
module Fs = Lfs_core.Fs
module Types = Lfs_core.Types

type spec = {
  name : string;
  disk_mb : int;
  seg_kb : int;
  mean_file_kb : float;
  target_util : float;
  traffic_to_disk_ratio : float;
  hot_fraction : float;
  hot_traffic : float;
  frozen_fraction : float;
  whole_file_writes : bool;
  create_delete_fraction : float;
  checkpoint_interval_ops : int;
  seed : int;
}

(* Disk sizes are the paper's divided by 20; everything else matches
   Table 2's description of each system. *)
let user6 =
  {
    name = "/user6";
    disk_mb = 64;
    seg_kb = 512;
    mean_file_kb = 23.5;
    target_util = 0.75;
    traffic_to_disk_ratio = 2.0;
    hot_fraction = 0.1;
    hot_traffic = 0.9;
    frozen_fraction = 0.75;
    whole_file_writes = true;
    create_delete_fraction = 0.3;
    checkpoint_interval_ops = 500;
    seed = 101;
  }

let pcs =
  {
    name = "/pcs";
    disk_mb = 48;
    seg_kb = 512;
    mean_file_kb = 10.5;
    target_util = 0.63;
    traffic_to_disk_ratio = 2.0;
    hot_fraction = 0.15;
    hot_traffic = 0.85;
    frozen_fraction = 0.7;
    whole_file_writes = true;
    create_delete_fraction = 0.35;
    checkpoint_interval_ops = 500;
    seed = 102;
  }

let src_kernel =
  {
    name = "/src/kernel";
    disk_mb = 64;
    seg_kb = 512;
    mean_file_kb = 37.5;
    target_util = 0.72;
    traffic_to_disk_ratio = 2.0;
    hot_fraction = 0.08;
    hot_traffic = 0.95;
    frozen_fraction = 0.8;
    whole_file_writes = true;
    create_delete_fraction = 0.5;
    checkpoint_interval_ops = 500;
    seed = 103;
  }

let tmp =
  {
    name = "/tmp";
    disk_mb = 16;
    seg_kb = 256;
    mean_file_kb = 28.9;
    target_util = 0.11;
    traffic_to_disk_ratio = 3.0;
    hot_fraction = 0.3;
    hot_traffic = 0.8;
    frozen_fraction = 0.0;
    whole_file_writes = true;
    create_delete_fraction = 0.7;
    checkpoint_interval_ops = 500;
    seed = 104;
  }

let swap2 =
  {
    name = "/swap2";
    disk_mb = 16;
    seg_kb = 256;
    mean_file_kb = 68.1;
    target_util = 0.65;
    traffic_to_disk_ratio = 3.0;
    hot_fraction = 0.25;
    hot_traffic = 0.75;
    frozen_fraction = 0.5;
    whole_file_writes = false;
    create_delete_fraction = 0.02;
    checkpoint_interval_ops = 500;
    seed = 105;
  }

let all = [ user6; pcs; src_kernel; tmp; swap2 ]

type result = {
  spec : spec;
  avg_file_size : float;
  in_use : float;
  segments_cleaned : int;
  cleaner_blocks_read : int;
  empty_fraction : float;
  avg_nonempty_u : float;
  write_cost : float;
  histogram : Lfs_util.Histogram.t;
  live_breakdown : (Types.block_kind * float) list;
  log_bandwidth : (Types.block_kind * float) list;
}

(* Heavy-tailed file sizes around the target mean: a 3:1 mix of
   exponential small files and a Pareto tail, which matches the paper's
   observation that most files are small but a few long files carry much
   of the data. *)
let sample_size prng ~mean_bytes ~max_bytes =
  let x =
    if Prng.bernoulli prng ~p:0.75 then
      Prng.exponential prng ~mean:(mean_bytes *. 0.4)
    else Prng.pareto prng ~alpha:1.6 ~x_min:(mean_bytes *. 0.8)
  in
  let x = Float.min x (Float.min (mean_bytes *. 50.0) max_bytes) in
  max 256 (int_of_float x)

let run ?(scale = 1.0) ?(policy = Lfs_core.Config.Cost_benefit)
    ?(cleaner_read = Lfs_core.Config.Whole_segment) spec =
  let prng = Prng.create ~seed:spec.seed in
  let disk_blocks = int_of_float (float_of_int (spec.disk_mb * 256) *. scale) in
  let geom = Lfs_disk.Geometry.wren_iv ~blocks:disk_blocks in
  let disk = Lfs_disk.Vdev.of_disk (Disk.create geom) in
  let config =
    {
      Lfs_core.Config.default with
      seg_blocks = spec.seg_kb * 1024 / 4096;
      max_inodes = 16384;
      write_buffer_blocks = spec.seg_kb * 1024 / 4096;
      checkpoint_interval_ops = spec.checkpoint_interval_ops;
      cleaning_policy = policy;
      cleaner_read;
    }
  in
  Fs.format disk config;
  let fs = Fs.mount disk in
  let mean_bytes = spec.mean_file_kb *. 1024.0 in
  let capacity = disk_blocks * 4096 in
  (* No single file may dominate a scaled-down disk. *)
  let max_bytes = float_of_int capacity /. 24.0 in
  let sample_size prng ~mean_bytes = sample_size prng ~mean_bytes ~max_bytes in
  (* Populate until the measured disk utilisation (which includes block
     rounding and metadata) reaches the target. *)
  let files = ref [] in
  let nfiles = ref 0 in
  ignore (Fs.mkdir_path fs "/data");
  let new_file_name () =
    incr nfiles;
    Printf.sprintf "/data/f%d" !nfiles
  in
  let payload_cache = Hashtbl.create 16 in
  let payload size =
    match Hashtbl.find_opt payload_cache size with
    | Some b -> b
    | None ->
        let b = Bytes.make size 'p' in
        Hashtbl.replace payload_cache size b;
        b
  in
  while Fs.utilization fs < spec.target_util do
    let size = sample_size prng ~mean_bytes in
    let name = new_file_name () in
    Fs.write_path fs name (payload size);
    files := (name, size) :: !files
  done;
  let files = Array.of_list (List.rev !files) in
  let count = Array.length files in
  Fs.checkpoint fs;
  (* Measure from a steady start. *)
  let stats = Fs.stats fs in
  Lfs_core.Fs_stats.reset stats;
  let traffic_target =
    spec.traffic_to_disk_ratio *. float_of_int capacity *. scale
  in
  let traffic = ref 0.0 in
  let pick_file () =
    let n = Array.length files in
    let active = max 2 (n - int_of_float (spec.frozen_fraction *. float_of_int n)) in
    let nhot = max 1 (int_of_float (spec.hot_fraction *. float_of_int active)) in
    if Prng.bernoulli prng ~p:spec.hot_traffic then Prng.int prng nhot
    else nhot + Prng.int prng (max 1 (active - nhot))
  in
  while !traffic < traffic_target do
    let i = pick_file () mod count in
    let name, size = files.(i) in
    if spec.whole_file_writes then begin
      if Prng.bernoulli prng ~p:spec.create_delete_fraction then begin
        (* Delete and recreate with a fresh size: whole-file turnover. *)
        (match Fs.resolve fs name with
        | Some _ ->
            let dir, leaf =
              match String.rindex_opt name '/' with
              | Some i ->
                  ( Option.get (Fs.resolve fs (String.sub name 0 (max 1 i))),
                    String.sub name (i + 1) (String.length name - i - 1) )
              | None -> (Fs.root, name)
            in
            Fs.unlink fs ~dir leaf
        | None -> ());
        (* Bound the random walk in total live data so utilisation stays
           near the target on small scaled disks. *)
        let size' = sample_size prng ~mean_bytes in
        let size' =
          if Fs.utilization fs > spec.target_util +. 0.02 then min size' size
          else size'
        in
        Fs.write_path fs name (payload size');
        files.(i) <- (name, size');
        traffic := !traffic +. float_of_int size'
      end
      else begin
        Fs.write_path fs name (payload size);
        traffic := !traffic +. float_of_int size
      end
    end
    else begin
      (* Swap-like: backing store is rewritten in large extents when a
         process pages out, with occasional single-page updates.  The
         allocation (and hence utilisation) stays stable. *)
      let pages = max 1 (size / 4096) in
      let extent =
        if Prng.bernoulli prng ~p:0.7 then min pages (16 + Prng.int prng 48)
        else 1
      in
      let start = Prng.int prng (max 1 (pages - extent + 1)) in
      let bytes = extent * 4096 in
      (match Fs.resolve fs name with
      | Some ino -> Fs.write fs ino ~off:(start * 4096) (payload bytes)
      | None -> Fs.write_path fs name (payload bytes));
      traffic := !traffic +. float_of_int bytes
    end
  done;
  Fs.checkpoint fs;
  let breakdown = Fs.live_breakdown fs in
  let total_live = float_of_int breakdown.Fs.total_bytes in
  let live_breakdown =
    List.map
      (fun (k, b) -> (k, if total_live = 0.0 then 0.0 else float_of_int b /. total_live))
      breakdown.Fs.by_kind
  in
  let log_bandwidth =
    List.map
      (fun k -> (k, Lfs_core.Fs_stats.log_bandwidth_fraction stats k))
      Types.all_block_kinds
  in
  let avg_file_size =
    Array.fold_left (fun acc (_, s) -> acc +. float_of_int s) 0.0 files
    /. float_of_int count
  in
  let cleaned = Lfs_core.Fs_stats.segments_cleaned stats in
  let empty = Lfs_core.Fs_stats.segments_cleaned_empty stats in
  {
    spec;
    avg_file_size;
    in_use = Fs.utilization fs;
    segments_cleaned = cleaned;
    cleaner_blocks_read = Lfs_core.Fs_stats.blocks_read_cleaner stats;
    empty_fraction =
      (if cleaned = 0 then 0.0 else float_of_int empty /. float_of_int cleaned);
    avg_nonempty_u = Lfs_core.Fs_stats.avg_cleaned_u_nonempty stats;
    write_cost = Lfs_core.Fs_stats.write_cost stats;
    histogram = Fs.segment_histogram fs ~bins:50;
    live_breakdown;
    log_bandwidth;
  }
