module Disk = Lfs_disk.Disk
module Io_stats = Lfs_disk.Io_stats
module Fs = Lfs_core.Fs

type params = { file_kb : int; data_mb : int; disk_mb : int; cpu : Cpu_model.t }

type result = {
  params : params;
  recovery_s : float;
  files_recovered : int;
  writes_replayed : int;
  segments_scanned : int;
}

(* 1 KB blocks so a 1 KB file costs ~1 KB of log, as in Sprite; the
   paper's grid writes up to 50 MB of 1 KB files. *)
let geometry p =
  { (Lfs_disk.Geometry.wren_iv ~blocks:(p.disk_mb * 1024)) with
    block_size = 1024 }

(* Format, mount and populate, stopping just short of the final sync:
   a checkpoint, then [data_mb] of fresh files living only in the log. *)
let prepare p disk =
  let nfiles = p.data_mb * 1024 / p.file_kb in
  (* Infinite checkpoint interval, as in the paper's special LFS; the
     inode map is sized to the experiment so loading it does not dwarf
     the roll-forward being measured. *)
  let config =
    {
      Lfs_core.Config.default with
      block_size = 1024;
      seg_blocks = 1024;
      write_buffer_blocks = 1024;
      max_inodes = max 4096 (nfiles * 5 / 4);
      checkpoint_interval_ops = 0;
    }
  in
  Fs.format disk config;
  let fs = Fs.mount disk in
  let payload = Bytes.make (p.file_kb * 1024) 'r' in
  let files_per_dir = 1000 in
  for d = 0 to ((nfiles - 1) / files_per_dir) do
    ignore (Fs.mkdir_path fs (Printf.sprintf "/d%d" d))
  done;
  Fs.checkpoint fs;
  for i = 0 to nfiles - 1 do
    let ino =
      Fs.create_path fs (Printf.sprintf "/d%d/f%d" (i / files_per_dir) i)
    in
    Fs.write fs ino ~off:0 payload
  done;
  fs

let measure p disk =
  let before = Io_stats.copy (Lfs_disk.Vdev.stats disk) in
  let _fs2, report = Fs.recover disk in
  let after = Lfs_disk.Vdev.stats disk in
  let disk_s = (Io_stats.diff after before).Io_stats.busy_s in
  (* Roll-forward work per inode is lighter than a full syscall: charge
     half the per-operation cost, plus per-block handling. *)
  let cpu_s =
    Cpu_model.cost p.cpu ~ops:(report.Fs.inodes_recovered / 2)
      ~blocks:report.Fs.data_blocks_recovered
  in
  {
    params = p;
    recovery_s = disk_s +. cpu_s;
    files_recovered = report.Fs.inodes_recovered;
    writes_replayed = report.Fs.writes_replayed;
    segments_scanned = report.Fs.segments_scanned;
  }

let run p =
  let disk = Lfs_disk.Vdev.of_disk (Disk.create (geometry p)) in
  let fs = prepare p disk in
  Fs.sync fs;
  (* Crash: abandon the mounted state and roll the disk forward. *)
  measure p disk

let run_crashed ?(mode = Lfs_disk.Vdev_fault.Torn) ?(seed = 0) p =
  let fault =
    Lfs_disk.Vdev_fault.create ~seed
      (Lfs_disk.Vdev.of_disk (Disk.create (geometry p)))
  in
  let disk = Lfs_disk.Vdev_fault.vdev fault in
  let fs = prepare p disk in
  (* Cut the power a few blocks into the final flush, so the log ends in
     a torn / dropped / reordered write exactly as a real power failure
     would leave it.  Recovery must discard the incomplete tail and roll
     forward everything before it. *)
  Lfs_disk.Vdev_fault.plan_crash fault ~mode ~after_blocks:4 ();
  (match Fs.sync fs with () -> () | exception Lfs_disk.Vdev.Crashed -> ());
  Lfs_disk.Vdev_fault.reboot fault;
  measure p disk

let table3 ?(disk_mb = 160) () =
  List.concat_map
    (fun file_kb ->
      List.map
        (fun data_mb ->
          let r =
            run { file_kb; data_mb; disk_mb; cpu = Cpu_model.sun4_260 }
          in
          (file_kb, data_mb, r))
        [ 1; 10; 50 ])
    [ 1; 10; 100 ]
