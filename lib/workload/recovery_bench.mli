(** The crash-recovery timing experiment of Table 3: write one, ten or
    fifty megabytes of fixed-size files with checkpoints disabled, crash,
    and time the roll-forward. *)

type params = {
  file_kb : int;       (** 1, 10 or 100 in the paper *)
  data_mb : int;       (** 1, 10 or 50 *)
  disk_mb : int;
  cpu : Cpu_model.t;
}

type result = {
  params : params;
  recovery_s : float;       (** modelled disk time + CPU time *)
  files_recovered : int;
  writes_replayed : int;
  segments_scanned : int;
}

val run : params -> result

val run_crashed :
  ?mode:Lfs_disk.Vdev_fault.mode -> ?seed:int -> params -> result
(** Like {!run}, but the crash is injected for real: the final flush is
    cut by a {!Lfs_disk.Vdev_fault} power failure (torn by default), so
    recovery also pays for detecting and discarding the incomplete log
    tail. *)

val table3 : ?disk_mb:int -> unit -> (int * int * result) list
(** The full 3x3 grid: [(file_kb, data_mb, result)]. *)
