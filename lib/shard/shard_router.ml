module Vdev = Lfs_disk.Vdev
module Fs = Lfs_core.Fs
module Config = Lfs_core.Config
module Types = Lfs_core.Types
module Metrics = Lfs_obs.Metrics

type policy = By_hash | By_subtree

let policy_name = function By_hash -> "by_hash" | By_subtree -> "by_subtree"

let policy_of_string = function
  | "by_hash" -> Some By_hash
  | "by_subtree" -> Some By_subtree
  | _ -> None

type t = {
  shards : Fs.t array;
  policy : policy;
  (* Router ino -> canonical path.  Volatile: rebuilt as handles are
     handed out (the root is preseeded), which recovery's walk-from-root
     does naturally. *)
  paths : (Types.ino, string) Hashtbl.t;
  metrics : Metrics.t;
  placed : Metrics.counter array;
}

let root = Types.root_ino

(* ------------------------------------------------------------------ *)
(* Ino encoding: shard id in the high bits, shard-local ino below.     *)
(* ------------------------------------------------------------------ *)

let shard_shift = 24
let local_mask = (1 lsl shard_shift) - 1
let encode ~shard local = ((shard + 1) lsl shard_shift) lor local

let ino_shard ino =
  let s = (ino lsr shard_shift) - 1 in
  if s < 0 then None else Some s

let decode t ino =
  match ino_shard ino with
  | Some s when s < Array.length t.shards -> (s, ino land local_mask)
  | Some _ | None ->
      Types.fs_error
        "shard router: inode %d carries no valid shard id (root directory, \
         or a handle from another volume?)"
        ino

(* ------------------------------------------------------------------ *)
(* Placement: rendezvous hash of a path-derived key.                   *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the key bytes with a splitmix-style finisher per shard.
   Plain integer arithmetic, no [Hashtbl.hash]: placement must be a
   stable contract across runs and compiler versions, because a volume
   remounted tomorrow must look for its files on the same shards. *)
let fnv1a s =
  let h = ref 0xcbf29ce4842223 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  !h

let mix h i =
  let z = h + ((i + 1) * 0x9e3779b97f4a7) in
  let z = (z lxor (z lsr 30)) * 0xbf58476d1ce4e5 in
  let z = (z lxor (z lsr 27)) * 0x94d049bb1331 in
  (z lxor (z lsr 31)) land max_int

(* Highest-random-weight choice: every key ranks all shards; adding a
   shard only moves the keys whose new rank wins, nothing else. *)
let rendezvous t key =
  let n = Array.length t.shards in
  if n = 1 then 0
  else begin
    let h = fnv1a key in
    let best = ref 0 and best_score = ref (mix h 0) in
    for i = 1 to n - 1 do
      let s = mix h i in
      if s > !best_score then begin
        best := i;
        best_score := s
      end
    done;
    !best
  end

let split path = List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let first_component path =
  match split path with [] -> "" | c :: _ -> c

(* Home shard of the object [name] under the directory at
   [parent_path] ("" is the root). *)
let place t ~parent_path ~name =
  let key =
    match t.policy with
    | By_hash -> if parent_path = "" then "/" else parent_path
    | By_subtree -> (
        (* The subtree root: the first component of the object's own
           path — for a child of the root that is the child itself. *)
        match first_component parent_path with "" -> name | c -> c)
  in
  rendezvous t key

let place_path t path =
  match List.rev (split path) with
  | [] -> invalid_arg "Shard_router.place_path: the root is not placed"
  | name :: rev_parents ->
      place t ~parent_path:(String.concat "/" (List.rev rev_parents)) ~name

(* ------------------------------------------------------------------ *)
(* Canonical paths and per-shard navigation                            *)
(* ------------------------------------------------------------------ *)

(* Canonical form: "" for the root, "a/b/c" (no leading slash) below it;
   the placement key code above is the only consumer that re-adds "/". *)
let child_path parent name = if parent = "" then name else parent ^ "/" ^ name

let path_of t ino =
  if ino = root then ""
  else
    match Hashtbl.find_opt t.paths ino with
    | Some p -> p
    | None ->
        Types.fs_error
          "shard router: unknown inode %d (stale handle from before a \
           remount?)"
          ino

let remember t ino path = Hashtbl.replace t.paths ino path

(* Walk [path] on one shard with plain lookups. *)
let resolve_on fs path =
  let rec go dir = function
    | [] -> Some dir
    | name :: rest -> (
        match Fs.lookup fs ~dir name with
        | None -> None
        | Some ino -> go ino rest)
  in
  go Fs.root (split path)

(* Make sure the directory chain for [path] exists on [fs], creating
   mirror shells as needed, and return its shard-local ino.  Ancestors
   are always directories here: a file and a directory of the same path
   share a placement key, so the canonical shard would have rejected
   whichever came second. *)
let ensure_dir_on fs path =
  List.fold_left
    (fun dir name ->
      match Fs.lookup fs ~dir name with
      | Some ino -> ino
      | None -> Fs.mkdir fs ~dir name)
    Fs.root (split path)

(* ------------------------------------------------------------------ *)
(* Namespace                                                           *)
(* ------------------------------------------------------------------ *)

let add_child t ~dir name ~op =
  let parent = path_of t dir in
  let s = place t ~parent_path:parent ~name in
  let fs = t.shards.(s) in
  let pdir = ensure_dir_on fs parent in
  let local = op fs ~dir:pdir name in
  Metrics.incr t.placed.(s);
  let ino = encode ~shard:s local in
  remember t ino (child_path parent name);
  ino

let create t ~dir name = add_child t ~dir name ~op:(fun fs ~dir n -> Fs.create fs ~dir n)
let mkdir t ~dir name = add_child t ~dir name ~op:(fun fs ~dir n -> Fs.mkdir fs ~dir n)

let lookup t ~dir name =
  let parent = path_of t dir in
  let s = place t ~parent_path:parent ~name in
  let fs = t.shards.(s) in
  match resolve_on fs parent with
  | None -> None
  | Some pdir -> (
      match Fs.lookup fs ~dir:pdir name with
      | None -> None
      | Some local ->
          let ino = encode ~shard:s local in
          remember t ino (child_path parent name);
          Some ino)

let readdir t ino =
  let path = path_of t ino in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iteri
    (fun s fs ->
      match resolve_on fs path with
      | None -> ()
      | Some d ->
          List.iter
            (fun (name, local) ->
              (* Keep the entry iff this shard is the child's home:
                 copies on other shards are mirror shells of the same
                 name, not the object. *)
              if
                place t ~parent_path:path ~name = s
                && not (Hashtbl.mem seen name)
              then begin
                Hashtbl.add seen name ();
                let cino = encode ~shard:s local in
                remember t cino (child_path path name);
                out := (name, cino) :: !out
              end)
            (Fs.readdir fs d))
    t.shards;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !out

let unlink t ~dir name =
  let parent = path_of t dir in
  let s = place t ~parent_path:parent ~name in
  let fs = t.shards.(s) in
  match resolve_on fs parent with
  | None -> Types.fs_error "no such entry %S" name
  | Some pdir -> Fs.unlink fs ~dir:pdir name

(* Removing a directory must also remove its mirror shells: the union
   [readdir] would otherwise keep resurrecting the name, and a later
   directory of the same name would inherit stale children. *)
let rmdir t ~dir name =
  let parent = path_of t dir in
  let path = child_path parent name in
  let s = place t ~parent_path:parent ~name in
  let fs = t.shards.(s) in
  match resolve_on fs parent with
  | None -> Types.fs_error "no such entry %S" name
  | Some pdir -> (
      match Fs.lookup fs ~dir:pdir name with
      | None -> Types.fs_error "no such entry %S" name
      | Some local ->
          if (Fs.stat fs local).Fs.st_ftype <> Types.Directory then
            Types.fs_error "%S is not a directory" name;
          (* Empty means empty on every shard holding the directory:
             canonical children live on their own home shards. *)
          Array.iter
            (fun sfs ->
              match resolve_on sfs path with
              | None -> ()
              | Some d ->
                  if Fs.readdir sfs d <> [] then
                    Types.fs_error "directory %S is not empty" name)
            t.shards;
          Fs.rmdir fs ~dir:pdir name;
          Array.iteri
            (fun i sfs ->
              if i <> s then
                match resolve_on sfs parent with
                | None -> ()
                | Some pd -> (
                    match Fs.lookup sfs ~dir:pd name with
                    | Some _ -> Fs.rmdir sfs ~dir:pd name
                    | None -> ()))
            t.shards;
          Hashtbl.remove t.paths (encode ~shard:s local))

(* Renaming a file between placement keys cannot be atomic across two
   logs; the move is copy-then-unlink, so a crash can briefly expose
   both names (never neither: the source is unlinked last).  Directory
   renames would re-key every descendant's placement and are refused. *)
let rename t ~odir oname ~ndir nname =
  let oparent = path_of t odir and nparent = path_of t ndir in
  let os = place t ~parent_path:oparent ~name:oname in
  let ns = place t ~parent_path:nparent ~name:nname in
  let ofs = t.shards.(os) in
  match resolve_on ofs oparent with
  | None -> Types.fs_error "no such entry %S" oname
  | Some opd -> (
      match Fs.lookup ofs ~dir:opd oname with
      | None -> Types.fs_error "no such entry %S" oname
      | Some olocal ->
          if (Fs.stat ofs olocal).Fs.st_ftype = Types.Directory then
            Types.fs_error
              "shard router: cannot rename directory %S (placement is \
               path-keyed)"
              oname;
          if os = ns then begin
            let npd = ensure_dir_on ofs nparent in
            Fs.rename ofs ~odir:opd oname ~ndir:npd nname;
            remember t (encode ~shard:os olocal) (child_path nparent nname)
          end
          else begin
            let nfs = t.shards.(ns) in
            let npd = ensure_dir_on nfs nparent in
            let data =
              Fs.read ofs olocal ~off:0 ~len:(Fs.file_size ofs olocal)
            in
            let nlocal =
              match Fs.lookup nfs ~dir:npd nname with
              | Some nlocal
                when (Fs.stat nfs nlocal).Fs.st_ftype = Types.Directory ->
                  Types.fs_error "%S is a directory" nname
              | Some nlocal ->
                  (* Overwrite the existing destination in place.
                     Unlink-then-create would let a crash destroy the
                     durable destination of an unacknowledged rename:
                     the unlink's journal record can persist while the
                     replacement inode never reaches the log.  Keeping
                     the inode means recovery rolls the content back to
                     a consistent point state instead. *)
                  Fs.truncate nfs nlocal ~len:0;
                  nlocal
              | None -> Fs.create nfs ~dir:npd nname
            in
            if Bytes.length data > 0 then Fs.write nfs nlocal ~off:0 data;
            Fs.unlink ofs ~dir:opd oname;
            Metrics.incr t.placed.(ns);
            remember t (encode ~shard:ns nlocal) (child_path nparent nname)
          end)

(* ------------------------------------------------------------------ *)
(* File IO: decode the shard, delegate.                                *)
(* ------------------------------------------------------------------ *)

let write t ino ~off b =
  let s, local = decode t ino in
  Fs.write t.shards.(s) local ~off b

let read t ino ~off ~len =
  let s, local = decode t ino in
  Fs.read t.shards.(s) local ~off ~len

let truncate t ino ~len =
  let s, local = decode t ino in
  Fs.truncate t.shards.(s) local ~len

let file_size t ino =
  let s, local = decode t ino in
  Fs.file_size t.shards.(s) local

(* ------------------------------------------------------------------ *)
(* Path helpers (same shape as Fs's)                                   *)
(* ------------------------------------------------------------------ *)

let resolve t path =
  let rec go dir = function
    | [] -> Some dir
    | name :: rest -> (
        match lookup t ~dir name with
        | None -> None
        | Some ino -> go ino rest)
  in
  go root (split path)

let parent_and_leaf t path =
  match List.rev (split path) with
  | [] -> Types.fs_error "path %S has no leaf" path
  | leaf :: rev_dirs -> (
      match
        List.fold_left
          (fun acc name ->
            match acc with None -> None | Some dir -> lookup t ~dir name)
          (Some root) (List.rev rev_dirs)
      with
      | None -> Types.fs_error "path %S: missing directory" path
      | Some dir -> (dir, leaf))

let create_path t path =
  let dir, leaf = parent_and_leaf t path in
  create t ~dir leaf

let mkdir_path t path =
  let dir, leaf = parent_and_leaf t path in
  mkdir t ~dir leaf

let write_path t path data =
  let dir, leaf = parent_and_leaf t path in
  let ino =
    match lookup t ~dir leaf with
    | Some ino -> ino
    | None -> create t ~dir leaf
  in
  truncate t ino ~len:0;
  write t ino ~off:0 data

let read_path t path =
  match resolve t path with
  | None -> None
  | Some ino -> Some (read t ino ~off:0 ~len:(file_size t ino))

(* ------------------------------------------------------------------ *)
(* Lifecycle and maintenance                                           *)
(* ------------------------------------------------------------------ *)

let sync t = Array.iter Fs.sync t.shards
let drop_caches t = Array.iter Fs.drop_caches t.shards
let devices t = List.concat_map Fs.devices (Array.to_list t.shards)
let checkpoint t = Array.iter Fs.checkpoint t.shards
let unmount t = Array.iter Fs.unmount t.shards

let clean_step ?max_segments t =
  Array.fold_left
    (fun owed fs -> owed + Fs.clean_step ?max_segments fs)
    0 t.shards

let on_log_batch t f = Array.iter (fun fs -> Fs.on_log_batch fs f) t.shards

let pending_log_blocks t =
  Array.fold_left (fun acc fs -> acc + Fs.pending_log_blocks fs) 0 t.shards

let metrics t = t.metrics
let shard_count t = Array.length t.shards
let policy t = t.policy
let shard_fs t i = t.shards.(i)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let check_devices = function
  | [] -> invalid_arg "Shard_router: need at least one device"
  | devs -> devs

let scope i = Printf.sprintf "shard%d." i

let check_local_space fs =
  let mi = (Fs.config fs).Config.max_inodes in
  if mi > local_mask then
    invalid_arg
      (Printf.sprintf
         "Shard_router: max_inodes %d overflows the %d-bit local-ino space"
         mi shard_shift)

let make ~policy shards metrics =
  Array.iter check_local_space shards;
  let n = Array.length shards in
  Metrics.set (Metrics.gauge metrics "router.shards") (float_of_int n);
  let placed =
    Array.init n (fun i ->
        Metrics.counter metrics (Printf.sprintf "router.placed.shard%d" i))
  in
  let t =
    { shards; policy; paths = Hashtbl.create 256; metrics; placed }
  in
  Hashtbl.replace t.paths root "";
  t

let format ?(config = Config.default) devs =
  List.iter (fun d -> Fs.format d config) (check_devices devs)

let mount ?config ?(policy = By_hash) devs =
  let devs = check_devices devs in
  let metrics = Metrics.create () in
  let shards =
    Array.of_list devs
    |> Array.mapi (fun i d ->
           Fs.mount ?config ~metrics:(Metrics.scoped metrics (scope i)) d)
  in
  make ~policy shards metrics

(* Post-crash mirror hygiene.  A mirror dirent is a name on a shard
   that is not its home; it only exists to carry the path down to
   canonical children.  Per-shard recovery can roll one shard back past
   the canonical entry's creation while mirror shells of it (created
   lazily, on other shards, in other logs) survive — leaving subtrees
   that the canonical namespace no longer accounts for.  Walk every
   shard's local tree and drop any entry whose canonical name did not
   survive on its home shard. *)
let revalidate_mirrors t =
  let dropped = ref 0 in
  let rec prune fs ~dir name local =
    (match (Fs.stat fs local).Fs.st_ftype with
    | Types.Directory ->
        List.iter
          (fun (n, l) -> prune fs ~dir:local n l)
          (Fs.readdir fs local);
        Fs.rmdir fs ~dir name
    | Types.Regular -> Fs.unlink fs ~dir name);
    incr dropped
  in
  let canonical_survives t ~home ~parent_path ~name =
    match resolve_on t.shards.(home) parent_path with
    | None -> false
    | Some pd -> Fs.lookup t.shards.(home) ~dir:pd name <> None
  in
  let rec walk s fs ~dir path =
    List.iter
      (fun (name, local) ->
        let home = place t ~parent_path:path ~name in
        if
          home <> s
          && not (canonical_survives t ~home ~parent_path:path ~name)
        then prune fs ~dir name local
        else if (Fs.stat fs local).Fs.st_ftype = Types.Directory then
          walk s fs ~dir:local (child_path path name))
      (Fs.readdir fs dir)
  in
  Array.iteri (fun s fs -> walk s fs ~dir:Fs.root "") t.shards;
  !dropped

let recover ?config ?(policy = By_hash) devs =
  let devs = check_devices devs in
  let metrics = Metrics.create () in
  let pairs =
    Array.of_list devs
    |> Array.mapi (fun i d ->
           Fs.recover ?config ~metrics:(Metrics.scoped metrics (scope i)) d)
  in
  let shards = Array.map fst pairs in
  let reports = Array.to_list (Array.map snd pairs) in
  let t = make ~policy shards metrics in
  let dropped = revalidate_mirrors t in
  Metrics.set
    (Metrics.gauge metrics "router.mirrors_dropped")
    (float_of_int dropped);
  (* Make the repairs durable before handing the volume out: a second
     crash must not resurrect what re-validation just removed. *)
  if dropped > 0 then sync t;
  (t, reports)
