module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Geometry = Lfs_disk.Geometry
module Config = Lfs_core.Config
module Fsops = Lfs_workload.Fsops

type t =
  | Lfs
  | Ffs
  | Shard of { shards : int; policy : Shard_router.policy }

let grammar_doc =
  "lfs | ffs | shard[:N][:by_hash|by_subtree] (e.g. shard:4, \
   shard:2:by_subtree)"

let parse ?(default_shards = 4) s =
  let usage = Printf.sprintf "bad fs spec %S; grammar: %s" s grammar_doc in
  match String.split_on_char ':' s with
  | [ "lfs" ] -> Ok Lfs
  | [ "ffs" ] -> Ok Ffs
  | "shard" :: rest -> (
      let count, policy_parts =
        match rest with
        | n :: more when int_of_string_opt n <> None ->
            (int_of_string n, more)
        | _ -> (default_shards, rest)
      in
      if count < 1 then Error (Printf.sprintf "shard count %d < 1" count)
      else
        match policy_parts with
        | [] -> Ok (Shard { shards = count; policy = Shard_router.By_hash })
        | [ p ] -> (
            match Shard_router.policy_of_string p with
            | Some policy -> Ok (Shard { shards = count; policy })
            | None -> Error usage)
        | _ -> Error usage)
  | _ -> Error usage

let to_string = function
  | Lfs -> "lfs"
  | Ffs -> "ffs"
  | Shard { shards; policy } ->
      Printf.sprintf "shard:%d:%s" shards (Shard_router.policy_name policy)

(* The default config needs clean_stop + 2 = 10 segments of 256 blocks,
   plus superblock/checkpoint metadata; round up generously so a shard
   always has working room even when N divides a small volume. *)
let min_shard_blocks = 16 * Config.default.Config.seg_blocks

let fresh ?shards ~blocks spec =
  match spec with
  | Lfs -> Fsops.fresh_lfs (Geometry.wren_iv ~blocks)
  | Ffs -> Fsops.fresh_ffs (Geometry.wren_iv ~blocks)
  | Shard { shards = n; policy } ->
      let n = match shards with Some n -> n | None -> n in
      if n < 1 then invalid_arg "Spec.fresh: shard count < 1";
      (* Equal split of the volume's capacity, floored so tiny volumes
         still mount: shard counts compare at (roughly) equal total
         capacity. *)
      let per = max min_shard_blocks (blocks / n) in
      let devs =
        List.init n (fun _ ->
            Vdev.of_disk (Disk.create (Geometry.wren_iv ~blocks:per)))
      in
      Shard_router.format devs;
      let r = Shard_router.mount ~policy devs in
      let name =
        Printf.sprintf "LFS x%d (%s)" n (Shard_router.policy_name policy)
      in
      {
        (Fsops.of_any ~name ~async_writes:true
           (Lfs_core.Fs_intf.Any.pack (module Shard_router) r))
        with
        metrics = (fun () -> Some (Shard_router.metrics r));
        on_log_batch = Some (Shard_router.on_log_batch r);
        clean_step =
          Some (fun ~max_segments -> Shard_router.clean_step ~max_segments r);
      }
