module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Vdev_tier = Lfs_disk.Vdev_tier
module Geometry = Lfs_disk.Geometry
module Config = Lfs_core.Config
module Layout = Lfs_core.Layout
module Fs = Lfs_core.Fs
module Fsops = Lfs_workload.Fsops

type t =
  | Lfs
  | Ffs
  | Heads of { heads : int }
  | Tier of { fast_pct : int; promote_reads : int }
  | Shard of { shards : int; policy : Shard_router.policy }

let default_fast_pct = 25

let grammar_doc =
  "lfs | ffs | lfs:heads=N | lfs:tier[:FAST%][:promote=N] | \
   shard[:N][:by_hash|by_subtree] (e.g. lfs:heads=2, lfs:tier:25, \
   lfs:tier:25:promote=2, shard:4, shard:2:by_subtree)"

let parse_promote s =
  match String.split_on_char '=' s with
  | [ "promote"; n ] -> int_of_string_opt n
  | _ -> None

let parse_heads s =
  match String.split_on_char '=' s with
  | [ "heads"; n ] -> int_of_string_opt n
  | _ -> None

let parse ?(default_shards = 4) s =
  let usage = Printf.sprintf "bad fs spec %S; grammar: %s" s grammar_doc in
  match String.split_on_char ':' s with
  | [ "lfs" ] -> Ok Lfs
  | [ "ffs" ] -> Ok Ffs
  | [ "lfs"; kv ] when parse_heads kv <> None -> (
      match parse_heads kv with
      | Some n when n >= 1 && n <= 8 -> Ok (Heads { heads = n })
      | Some n -> Error (Printf.sprintf "log heads %d outside 1..8" n)
      | None -> Error usage)
  | "lfs" :: "tier" :: rest -> (
      let pct, rest =
        match rest with
        | n :: more when int_of_string_opt n <> None -> (int_of_string n, more)
        | _ -> (default_fast_pct, rest)
      in
      if pct < 1 || pct > 99 then
        Error (Printf.sprintf "tier fast%% %d out of [1, 99]" pct)
      else
        match rest with
        | [] -> Ok (Tier { fast_pct = pct; promote_reads = 0 })
        | [ p ] -> (
            match parse_promote p with
            | Some n when n >= 0 ->
                Ok (Tier { fast_pct = pct; promote_reads = n })
            | _ -> Error usage)
        | _ -> Error usage)
  | "shard" :: rest -> (
      let count, policy_parts =
        match rest with
        | n :: more when int_of_string_opt n <> None ->
            (int_of_string n, more)
        | _ -> (default_shards, rest)
      in
      if count < 1 then Error (Printf.sprintf "shard count %d < 1" count)
      else
        match policy_parts with
        | [] -> Ok (Shard { shards = count; policy = Shard_router.By_hash })
        | [ p ] -> (
            match Shard_router.policy_of_string p with
            | Some policy -> Ok (Shard { shards = count; policy })
            | None -> Error usage)
        | _ -> Error usage)
  | _ -> Error usage

let to_string = function
  | Lfs -> "lfs"
  | Ffs -> "ffs"
  | Heads { heads } -> Printf.sprintf "lfs:heads=%d" heads
  | Tier { fast_pct; promote_reads } ->
      if promote_reads > 0 then
        Printf.sprintf "lfs:tier:%d:promote=%d" fast_pct promote_reads
      else Printf.sprintf "lfs:tier:%d" fast_pct
  | Shard { shards; policy } ->
      Printf.sprintf "shard:%d:%s" shards (Shard_router.policy_name policy)

(* The default config needs clean_stop + 2 = 10 segments of 256 blocks,
   plus superblock/checkpoint metadata; round up generously so a shard
   always has working room even when N divides a small volume. *)
let min_shard_blocks = 16 * Config.default.Config.seg_blocks

(* Solve the mutual dependence between the FS layout and the tier
   geometry: the layout's metadata reservation ([seg_start]) depends on
   the volume size, and the volume the tier exports depends on where the
   pinned prefix ends ([base] = [seg_start], so chunks line up with
   segments 1:1).  [seg_start] moves by a block only when the exported
   size crosses a usage-table boundary — hundreds of segments — so the
   iteration settles in one or two rounds; the bound is a corruption
   guard, not a tuning knob. *)
let tier_base ~config ~fast ~slow =
  let chunk_blocks = config.Config.seg_blocks in
  let exported base =
    (Vdev_tier.plan ~base ~chunk_blocks ~fast ~slow).Vdev_tier.p_nblocks
  in
  let seg_start_of blocks =
    (Layout.compute config ~disk_blocks:blocks).Layout.seg_start
  in
  let rec fix base i =
    if i > 16 then failwith "Spec: tier geometry failed to converge";
    let base' = seg_start_of (exported base) in
    if base' = base then base else fix base' (i + 1)
  in
  fix (seg_start_of (fast.Vdev.nblocks + slow.Vdev.nblocks)) 0

let tier_volume ~config ~fast ~slow =
  let base = tier_base ~config ~fast ~slow in
  Vdev_tier.format ~base ~chunk_blocks:config.Config.seg_blocks ~fast ~slow

let fresh ?shards ~blocks spec =
  match spec with
  | Lfs -> Fsops.fresh_lfs (Geometry.wren_iv ~blocks)
  | Ffs -> Fsops.fresh_ffs (Geometry.wren_iv ~blocks)
  | Heads { heads } ->
      let config = { Config.default with Config.log_heads = heads } in
      let name = Printf.sprintf "Sprite LFS (%d heads)" heads in
      { (Fsops.fresh_lfs ~config (Geometry.wren_iv ~blocks)) with name }
  | Tier { fast_pct; promote_reads } ->
      (* Equal total capacity: [fast_pct]% of the volume on a flash-class
         device, the rest on the paper's Wren IV — the timing asymmetry
         the placement policy trades on. *)
      let sb = Config.default.Config.seg_blocks in
      let fast_blocks = max (6 * sb) (blocks * fast_pct / 100) in
      let slow_blocks = max (8 * sb) (blocks - fast_blocks) in
      let fast = Vdev.of_disk (Disk.create (Geometry.flash ~blocks:fast_blocks)) in
      let slow = Vdev.of_disk (Disk.create (Geometry.wren_iv ~blocks:slow_blocks)) in
      let config = { Config.default with promote_reads } in
      let ti = tier_volume ~config ~fast ~slow in
      let dev = Vdev_tier.vdev ti in
      Fs.format dev config;
      let fs = Fs.mount ~tier:ti dev in
      let name = Printf.sprintf "LFS tier (%d%% fast)" fast_pct in
      { (Fsops.of_lfs fs) with name }
  | Shard { shards = n; policy } ->
      let n = match shards with Some n -> n | None -> n in
      if n < 1 then invalid_arg "Spec.fresh: shard count < 1";
      (* Equal split of the volume's capacity, floored so tiny volumes
         still mount: shard counts compare at (roughly) equal total
         capacity. *)
      let per = max min_shard_blocks (blocks / n) in
      let devs =
        List.init n (fun _ ->
            Vdev.of_disk (Disk.create (Geometry.wren_iv ~blocks:per)))
      in
      Shard_router.format devs;
      let r = Shard_router.mount ~policy devs in
      let name =
        Printf.sprintf "LFS x%d (%s)" n (Shard_router.policy_name policy)
      in
      {
        (Fsops.of_any ~name ~async_writes:true
           (Lfs_core.Fs_intf.Any.pack (module Shard_router) r))
        with
        metrics = (fun () -> Some (Shard_router.metrics r));
        on_log_batch = Some (Shard_router.on_log_batch r);
        clean_step =
          Some (fun ~max_segments -> Shard_router.clean_step ~max_segments r);
      }
