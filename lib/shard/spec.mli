(** The FS-spec grammar shared by the CLI tools and benches.

    A spec names a file-system implementation plus its configuration,
    replacing the closed [lfs|ffs] variant the tools used to dispatch
    over:

    {v
    lfs                    the log-structured file system
    ffs                    the FFS baseline
    lfs:heads=N            multi-head LFS: N log write heads (hot/cold
                           segregation; fresh data to head 0, cleaner
                           survivors to colder heads)
    lfs:tier               tiered LFS: 25% fast tier, no promotion
    lfs:tier:P             P% of the capacity on the fast tier
    lfs:tier:P:promote=N   promote a slow segment after N reads
    shard:N                N-way sharded LFS, by_hash placement
    shard:N:by_hash        parent-path placement (explicit)
    shard:N:by_subtree     first-path-component placement
    shard                  sharded with a caller-supplied default count
    v}

    {!fresh} builds a freshly formatted volume behind a
    {!Lfs_workload.Fsops.t} driver record via {!Lfs_core.Fs_intf.Any}
    packing, so callers never see which implementation they got. *)

type t =
  | Lfs
  | Ffs
  | Heads of { heads : int }
  | Tier of { fast_pct : int; promote_reads : int }
  | Shard of { shards : int; policy : Shard_router.policy }

val parse : ?default_shards:int -> string -> (t, string) result
(** Parse the grammar above.  [default_shards] (default [4]) supplies
    the count for a bare ["shard"]; [Error] carries a usage message. *)

val to_string : t -> string
(** Round-trips through {!parse}. *)

val grammar_doc : string
(** One-line description of the grammar for [--help] output. *)

val tier_volume :
  config:Lfs_core.Config.t ->
  fast:Lfs_disk.Vdev.t ->
  slow:Lfs_disk.Vdev.t ->
  Lfs_disk.Vdev_tier.t
(** Format a tiered volume whose chunks line up 1:1 with the segments of
    an LFS built from [config]: solves the fixpoint between the layout's
    metadata reservation and the exported size, then
    {!Lfs_disk.Vdev_tier.format}s.  Mount with
    [Fs.mount ~tier (Vdev_tier.vdev t)] after [Fs.format].  Shared with
    the modelcheck/crashtest subjects so every harness builds the same
    geometry. *)

val fresh : ?shards:int -> blocks:int -> t -> Lfs_workload.Fsops.t
(** A freshly formatted, mounted volume on simulated Wren IV disks
    totalling [blocks] 4 KB blocks: single-disk for [Lfs]/[Ffs], and
    for [Shard] the capacity splits evenly across the shards' devices
    (so shard counts compare at equal total capacity).  [shards]
    overrides a [Shard] spec's count (the [--shards] CLI passthrough)
    and is ignored for the others.  The driver record's [metrics],
    [on_log_batch] and [clean_step] hooks are populated for every
    implementation that supports them. *)
