(** N independent LFS instances behind one namespace.

    The paper's single append-only log is also its single serialization
    point: one log, one cleaner, one inode map.  The router scales that
    out by mounting N complete {!Lfs_core.Fs} instances — each with its
    own device, log, cleaner, checkpoint cadence and [shard<i>.]-scoped
    metrics — and placing every file and directory on exactly one of
    them.  Because the router itself satisfies {!Lfs_core.Fs_intf.S},
    everything written against that surface (workloads, the serving
    engine, the crashtest harness, [lfs_tool]) drives a sharded volume
    unchanged.

    {2 Placement}

    An object's {e home} shard is chosen by rendezvous hashing a
    placement key derived from its canonical path:

    - {!By_hash}: the key is the {e parent} directory's path, so all
      children of one directory colocate (a directory's entries live on
      one shard, and [readdir] needs no cross-shard merge);
    - {!By_subtree}: the key is the first path component, so an entire
      top-level subtree pins to one shard (locality for whole projects;
      children of the root hash by their own name).

    The hash is a plain FNV-1a/mix pipeline over the key bytes —
    deterministic across processes and OCaml versions, so the same
    volume always places the same paths on the same shards.

    {2 Namespace}

    Every object's canonical directory entry lives on its home shard.
    So that a home shard can hold an entry deep in the tree, the router
    lazily {e mirrors} the ancestor directory chain onto that shard
    (plain [Fs.mkdir] calls) the first time a descendant is placed
    there; mirrors are empty shells, and [readdir] keeps exactly the
    entries whose own placement says "this shard", so a mirror never
    shadows a canonical entry.  Files are never mirrored.  [rmdir]
    removes a directory's mirror shells along with the canonical entry,
    and {!recover} re-validates every mirror against its home shard —
    per-shard crash recovery can roll the canonical entry back while
    mirror shells of it survive in other shards' logs, and such
    unaccounted subtrees must not resurface.

    Router inode numbers pack the shard id into the high bits of
    {!Lfs_core.Types.ino} ([(shard + 1) lsl 24 lor local]); the root
    keeps {!Lfs_core.Types.root_ino}.  File IO decodes the shard from
    the ino and goes straight to it — no cross-shard traffic.

    [sync]/[checkpoint] fan out as barriers over every shard;
    [clean_step] gives each shard one budgeted pass per call, so no
    shard's cleaner starves while another's pool is healthy. *)

type t

type policy = By_hash | By_subtree

val policy_name : policy -> string
val policy_of_string : string -> policy option

(** {1 Lifecycle} *)

val format : ?config:Lfs_core.Config.t -> Lfs_disk.Vdev.t list -> unit
(** Format every device as an independent LFS (same config each). *)

val mount :
  ?config:Lfs_core.Config.t ->
  ?policy:policy ->
  Lfs_disk.Vdev.t list ->
  t
(** Mount one shard per device, in list order, sharing one metrics
    registry under [shard<i>.] scopes.  [policy] (default {!By_hash})
    is a mount-time choice and must be the same on every mount of a
    volume — it is not persisted.  Raises [Invalid_argument] on an
    empty device list or a config whose [max_inodes] overflows the
    24-bit local-ino space. *)

val recover :
  ?config:Lfs_core.Config.t ->
  ?policy:policy ->
  Lfs_disk.Vdev.t list ->
  t * Lfs_core.Fs.recovery_report list
(** Post-crash mount: every shard rolls its own log forward
    independently; the reports come back in shard order.  After the
    per-shard replays, mirror dirents are re-validated against their
    home shards and stale ones dropped (count in the
    [router.mirrors_dropped] gauge); if any were, the repairs are
    synced before the volume is handed out. *)

val unmount : t -> unit
val checkpoint : t -> unit

(** {1 The shared surface} *)

val root : Lfs_core.Types.ino

val create : t -> dir:Lfs_core.Types.ino -> string -> Lfs_core.Types.ino
val mkdir : t -> dir:Lfs_core.Types.ino -> string -> Lfs_core.Types.ino
val lookup : t -> dir:Lfs_core.Types.ino -> string -> Lfs_core.Types.ino option

val readdir : t -> Lfs_core.Types.ino -> (string * Lfs_core.Types.ino) list
(** Entries of the directory's canonical copies across shards, mirror
    shells filtered out, sorted by name (a deterministic order
    independent of shard count). *)

val unlink : t -> dir:Lfs_core.Types.ino -> string -> unit
(** Remove a regular file's name.  Refuses directories (use {!rmdir}). *)

val rmdir : t -> dir:Lfs_core.Types.ino -> string -> unit
(** Remove an empty directory — empty on {e every} shard — together
    with its mirror shells. *)

val rename :
  t ->
  odir:Lfs_core.Types.ino ->
  string ->
  ndir:Lfs_core.Types.ino ->
  string ->
  unit
(** Move a regular file's name.  Atomic when both names place on the
    same shard (one [Fs.rename]); otherwise copy-then-unlink across two
    logs, so a crash in between can expose both names (never neither).
    Directory renames raise {!Lfs_core.Types.Fs_error}: placement keys
    are path-derived, so moving a directory would re-home every
    descendant. *)

val write : t -> Lfs_core.Types.ino -> off:int -> bytes -> unit
val read : t -> Lfs_core.Types.ino -> off:int -> len:int -> bytes
val truncate : t -> Lfs_core.Types.ino -> len:int -> unit
val file_size : t -> Lfs_core.Types.ino -> int

val resolve : t -> string -> Lfs_core.Types.ino option
val create_path : t -> string -> Lfs_core.Types.ino
val mkdir_path : t -> string -> Lfs_core.Types.ino
val write_path : t -> string -> bytes -> unit
val read_path : t -> string -> bytes option

val sync : t -> unit
(** Fan-out barrier: every shard's acknowledged operations are durable
    when this returns. *)

val drop_caches : t -> unit
val devices : t -> Lfs_disk.Vdev.t list

(** {1 Maintenance and introspection} *)

val clean_step : ?max_segments:int -> t -> int
(** One budgeted background cleaning step on {e every} shard whose
    watermark latch is engaged ({!Lfs_core.Fs.clean_step}); returns the
    total segments still owed.  Polling all shards each idle window is
    what keeps per-shard cleaners independent — a disengaged shard
    returns 0 without touching its device. *)

val on_log_batch : t -> (blocks:int -> unit) -> unit
(** Register [f] on every shard: it sees the merged stream of per-shard
    log batch writes. *)

val pending_log_blocks : t -> int
(** Sum of unflushed log blocks across shards. *)

val metrics : t -> Lfs_obs.Metrics.t
(** The shared registry: per-shard instruments under [shard<i>.*]
    (e.g. [shard0.fs.cleaner.bg.segments]) plus router-level placement
    counters [router.placed.shard<i>] and the [router.shards] gauge. *)

val shard_count : t -> int
val policy : t -> policy

val shard_fs : t -> int -> Lfs_core.Fs.t
(** Direct access to shard [i]'s mount (tests, fsck sweeps). *)

val place_path : t -> string -> int
(** The home shard the router would pick for the object at [path] —
    placement is a pure function of (path, policy, shard count), so
    tests can assert determinism without mutating anything. *)

val ino_shard : Lfs_core.Types.ino -> int option
(** The shard id packed in a router ino; [None] for the root. *)
