(** A Berkeley Unix "fast file system" (FFS) baseline, as characterised
    in Sections 2.3 and 5 of the LFS paper.

    The traits that matter for the comparison are modelled faithfully:

    - inodes live at fixed disk addresses in per-cylinder-group tables,
      so file metadata, directory data and file data are physically
      separated (each access pays a seek);
    - metadata is written {e synchronously}: creating a file writes the
      file's inode twice, the directory's data block and the directory's
      inode before the operation returns — the five small IOs of
      Section 2.3;
    - file data is written asynchronously through a buffer cache but as
      individual block-at-a-time transfers (pre-clustering SunOS);
    - the allocator places a file's blocks contiguously within its
      cylinder group when it can, giving good sequential-read layout at
      the cost of the extra write-time seeks;
    - random writes update blocks in place.

    The public API mirrors {!Lfs_core.Fs} so benchmarks drive both
    systems with the same code. *)

type t

type config = {
  block_size : int;
  cg_blocks : int;        (** blocks per cylinder group *)
  inodes_per_cg : int;
  write_buffer_blocks : int;
  cache_blocks : int;     (** LRU buffer-cache capacity *)
  sync_double_inode_on_create : bool;
      (** write new-file inodes twice, as FFS does for crash recovery *)
  cluster_writes : bool;
      (** coalesce contiguous dirty blocks into one transfer at flush —
          the extent-like clustering of McVoy & Kleiman (the paper's
          ref [16]), which the paper predicts gives FFS sequential-write
          performance "equivalent to Sprite LFS" *)
}

val default_config : config

val format : Lfs_disk.Vdev.t -> config -> unit
val mount : Lfs_disk.Vdev.t -> t

val root : Lfs_core.Types.ino

val create : t -> dir:Lfs_core.Types.ino -> string -> Lfs_core.Types.ino
val mkdir : t -> dir:Lfs_core.Types.ino -> string -> Lfs_core.Types.ino
val lookup : t -> dir:Lfs_core.Types.ino -> string -> Lfs_core.Types.ino option
val readdir : t -> Lfs_core.Types.ino -> (string * Lfs_core.Types.ino) list
val unlink : t -> dir:Lfs_core.Types.ino -> string -> unit
(** Remove a regular file's name.  Refuses directories (use {!rmdir}). *)

val rmdir : t -> dir:Lfs_core.Types.ino -> string -> unit
(** Remove an empty directory. *)

val rename :
  t ->
  odir:Lfs_core.Types.ino ->
  string ->
  ndir:Lfs_core.Types.ino ->
  string ->
  unit
(** Move a name; an existing (non-directory) target is replaced. *)

val write : t -> Lfs_core.Types.ino -> off:int -> bytes -> unit
val read : t -> Lfs_core.Types.ino -> off:int -> len:int -> bytes
val truncate : t -> Lfs_core.Types.ino -> len:int -> unit
val file_size : t -> Lfs_core.Types.ino -> int

val resolve : t -> string -> Lfs_core.Types.ino option
val create_path : t -> string -> Lfs_core.Types.ino
val mkdir_path : t -> string -> Lfs_core.Types.ino
val write_path : t -> string -> bytes -> unit
val read_path : t -> string -> bytes option
(** Whole-file read; [None] when no file lives at the path (same
    convention as {!Lfs_core.Fs.read_path}). *)

val sync : t -> unit
val devices : t -> Lfs_disk.Vdev.t list

val free_blocks : t -> int

val fsck_scan : t -> unit
(** The Unix consistency scan the LFS paper contrasts with roll-forward
    (Section 4): read every cylinder group's bitmap and inode table and
    walk every file's indirect blocks.  Costs time proportional to the
    whole disk's metadata regardless of how little changed — measure the
    device's busy-time delta around the call. *)

val drop_caches : t -> unit
(** Forget cached inodes and block maps so subsequent reads hit the disk
    (cold-cache benchmark phases). *)
