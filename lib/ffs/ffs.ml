module Vdev = Lfs_disk.Vdev
module Vdev_cache = Lfs_disk.Vdev_cache
module Codec = Lfs_util.Bytes_codec
module Types = Lfs_core.Types
module Inode = Lfs_core.Inode
module Directory = Lfs_core.Directory

type config = {
  block_size : int;
  cg_blocks : int;
  inodes_per_cg : int;
  write_buffer_blocks : int;
  cache_blocks : int;
  sync_double_inode_on_create : bool;
  cluster_writes : bool;
}

let default_config =
  {
    block_size = 4096;
    cg_blocks = 2048;          (* 8 MB cylinder groups *)
    inodes_per_cg = 2048;
    write_buffer_blocks = 256;
    cache_blocks = 4096;
    sync_double_inode_on_create = true;
    cluster_writes = false;
  }

type layout = {
  cfg : config;
  ncg : int;
  itable_blocks : int;   (* inode-table blocks per group *)
  data_start : int;      (* first data block within a group *)
  inodes_per_block : int;
}

type handle = {
  inode : Inode.t;
  fmap : Lfs_core.Filemap.t;
  mutable content : bytes option;  (* directories *)
}

type t = {
  disk : Vdev.t;  (* the raw device, for cold scans (mount, fsck) *)
  cache : Vdev_cache.t;
  dev : Vdev.t;  (* [disk] behind the block cache; normal IO uses this *)
  layout : layout;
  lfs_layout : Lfs_core.Layout.t;  (* only for Filemap geometry *)
  block_bitmaps : Bitmap.t array;  (* per group, cached *)
  bitmap_dirty : bool array;
  inode_free : Bitmap.t array;     (* per group, in memory only *)
  handles : (Types.ino, handle) Hashtbl.t;
  dirty_data : (Types.ino * int, bytes) Hashtbl.t;
  mutable dirty_count : int;
  mutable clock : float;
  mutable next_dir_cg : int;
}

let root = Types.root_ino

let devices t = [ t.disk ]

let magic = 0x4646_5331 (* "FFS1" *)

let compute_layout cfg ~disk_blocks =
  if cfg.block_size < 512 || cfg.block_size land (cfg.block_size - 1) <> 0 then
    invalid_arg "Ffs: bad block size";
  let inodes_per_block = cfg.block_size / 128 in
  let itable_blocks = (cfg.inodes_per_cg + inodes_per_block - 1) / inodes_per_block in
  if cfg.cg_blocks < itable_blocks + 8 then invalid_arg "Ffs: groups too small";
  let ncg = (disk_blocks - 1) / cfg.cg_blocks in
  if ncg < 1 then invalid_arg "Ffs: disk too small for one cylinder group";
  { cfg; ncg; itable_blocks; data_start = 1 + itable_blocks; inodes_per_block }

(* Disk addresses. *)
let cg_first l cg = 1 + (cg * l.cfg.cg_blocks)
let bitmap_addr l cg = cg_first l cg
let itable_addr l cg = cg_first l cg + 1

let ino_cg l ino = (ino - 1) / l.cfg.inodes_per_cg
let ino_index l ino = (ino - 1) mod l.cfg.inodes_per_cg
let ino_of l cg index = 1 + (cg * l.cfg.inodes_per_cg) + index

let ino_block l ino =
  itable_addr l (ino_cg l ino) + (ino_index l ino / l.inodes_per_block)

let ino_slot l ino = ino_index l ino mod l.inodes_per_block

let cg_of_block l addr = (addr - 1) / l.cfg.cg_blocks
let block_index_in_cg l addr = (addr - 1) mod l.cfg.cg_blocks

(* A fake LFS layout so Lfs_core.Filemap (which only needs block_size,
   addrs_per_block and the max-file bound) can serve as FFS's block map
   machinery too. *)
let filemap_layout cfg =
  {
    Lfs_core.Layout.block_size = cfg.block_size;
    seg_blocks = cfg.cg_blocks;
    max_inodes = 1;
    nsegs = 1;
    seg_start = 1;
    ckpt_blocks = 0;
    ckpt_a = 0;
    ckpt_b = 0;
    imap_blocks = 0;
    usage_blocks = 0;
    inode_size = 128;
    inodes_per_block = cfg.block_size / 128;
    imap_entries_per_block = 1;
    usage_entries_per_block = 1;
    addrs_per_block = cfg.block_size / 8;
  }

let tick t =
  t.clock <- t.clock +. 1.0;
  t.clock

(* {1 Synchronous metadata IO}

   All reads and writes go through [t.dev], the {!Vdev_cache} layer:
   reads hit the cache, writes go through to the device and update it. *)

let write_inode t (inode : Inode.t) =
  let addr = ino_block t.layout inode.Inode.ino in
  let b = Vdev.read_block t.dev addr in
  Inode.encode inode b ~slot:(ino_slot t.layout inode.Inode.ino);
  Vdev.write_block t.dev addr b

let clear_inode t ino =
  let addr = ino_block t.layout ino in
  let b = Vdev.read_block t.dev addr in
  Inode.clear_slot b ~slot:(ino_slot t.layout ino);
  Vdev.write_block t.dev addr b

let read_inode t ino =
  let b = Vdev.read_block t.dev (ino_block t.layout ino) in
  match Inode.decode b ~slot:(ino_slot t.layout ino) with
  | None -> Types.fs_error "ffs: no such inode %d" ino
  | Some inode ->
      if inode.Inode.ino <> ino then
        Types.corrupt "ffs: inode %d slot holds %d" ino inode.Inode.ino;
      inode

(* {1 Allocation} *)

let mark_bitmap_dirty t cg = t.bitmap_dirty.(cg) <- true

let alloc_block t ~near =
  let l = t.layout in
  let start_cg, hint =
    if near >= 1 then (cg_of_block l near, block_index_in_cg l near + 1)
    else (0, l.data_start)
  in
  let rec try_cg attempt =
    if attempt >= l.ncg then Types.fs_error "ffs: disk full"
    else
      let cg = (start_cg + attempt) mod l.ncg in
      let hint = if attempt = 0 then hint else l.data_start in
      match Bitmap.find_free_from t.block_bitmaps.(cg) hint with
      | Some i when i >= l.data_start ->
          Bitmap.set t.block_bitmaps.(cg) i;
          mark_bitmap_dirty t cg;
          cg_first l cg + i
      | Some i ->
          (* Wrapped into the metadata area: skip past it. *)
          (match Bitmap.find_free_from t.block_bitmaps.(cg) l.data_start with
          | Some j when j >= l.data_start ->
              Bitmap.set t.block_bitmaps.(cg) j;
              mark_bitmap_dirty t cg;
              cg_first l cg + j
          | Some _ | None ->
              ignore i;
              try_cg (attempt + 1))
      | None -> try_cg (attempt + 1)
  in
  try_cg 0

let free_block t addr =
  let l = t.layout in
  let cg = cg_of_block l addr in
  Bitmap.clear t.block_bitmaps.(cg) (block_index_in_cg l addr);
  mark_bitmap_dirty t cg

let alloc_inode t ~cg =
  let l = t.layout in
  let rec try_cg attempt =
    if attempt >= l.ncg then Types.fs_error "ffs: out of inodes"
    else
      let cg = (cg + attempt) mod l.ncg in
      match Bitmap.find_free_from t.inode_free.(cg) 0 with
      | Some i ->
          Bitmap.set t.inode_free.(cg) i;
          ino_of l cg i
      | None -> try_cg (attempt + 1)
  in
  try_cg 0

(* {1 Handles} *)

let get_handle t ino =
  match Hashtbl.find_opt t.handles ino with
  | Some h -> h
  | None ->
      let inode = read_inode t ino in
      let fmap =
        Lfs_core.Filemap.load ~read:(Vdev.read_block t.dev) t.lfs_layout inode
      in
      let h = { inode; fmap; content = None } in
      Hashtbl.replace t.handles ino h;
      h

(* Flush a handle's block map: indirect blocks are written synchronously
   (they are metadata), then the inode. *)
let flush_fmap_and_inode t h =
  Lfs_core.Filemap.flush h.fmap h.inode
    ~alloc:(fun ~kind:_ ~blockno:_ payload ->
      let addr = alloc_block t ~near:(ino_block t.layout h.inode.Inode.ino) in
      Vdev.write_block t.dev addr payload;
      addr)
    ~free:(fun addr -> free_block t addr);
  write_inode t h.inode

(* {1 Data IO} *)

let read_file_block t h ino blockno =
  match Hashtbl.find_opt t.dirty_data (ino, blockno) with
  | Some b -> Bytes.copy b
  | None ->
      let addr = Lfs_core.Filemap.get h.fmap blockno in
      if addr = Types.nil_addr then Bytes.make t.layout.cfg.block_size '\000'
      else Vdev.read_block t.dev addr

let flush_data t =
  if Hashtbl.length t.dirty_data > 0 then begin
    let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.dirty_data [] in
    let items = List.sort compare items in
    let touched = Hashtbl.create 16 in
    List.iter
      (fun ((ino, blockno), b) ->
        let h = get_handle t ino in
        let addr =
          match Lfs_core.Filemap.get h.fmap blockno with
          | a when a <> Types.nil_addr -> a  (* update in place *)
          | _ ->
              let near =
                if blockno > 0 then Lfs_core.Filemap.get h.fmap (blockno - 1)
                else Types.nil_addr
              in
              let near =
                if near <> Types.nil_addr then near
                else ino_block t.layout ino
              in
              let a = alloc_block t ~near in
              Lfs_core.Filemap.set h.fmap blockno a;
              a
        in
        Vdev.write_block t.dev addr b;
        Hashtbl.replace touched ino ();
        Hashtbl.remove t.dirty_data (ino, blockno))
      items;
    t.dirty_count <- 0;
    Hashtbl.iter (fun ino () -> flush_fmap_and_inode t (get_handle t ino)) touched
  end

(* Clustered flush: allocate as before, then coalesce disk-contiguous
   runs into single transfers (McVoy & Kleiman's extent-like writes). *)
let flush_data_clustered t =
  if Hashtbl.length t.dirty_data > 0 then begin
    let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.dirty_data [] in
    let items = List.sort compare items in
    let touched = Hashtbl.create 16 in
    (* Pass 1: allocation, collecting (addr, bytes) pairs. *)
    let placed =
      List.map
        (fun ((ino, blockno), b) ->
          let h = get_handle t ino in
          let addr =
            match Lfs_core.Filemap.get h.fmap blockno with
            | a when a <> Types.nil_addr -> a
            | _ ->
                let near =
                  if blockno > 0 then Lfs_core.Filemap.get h.fmap (blockno - 1)
                  else Types.nil_addr
                in
                let near = if near <> Types.nil_addr then near else ino_block t.layout ino in
                let a = alloc_block t ~near in
                Lfs_core.Filemap.set h.fmap blockno a;
                a
          in
          Hashtbl.replace touched ino ();
          Hashtbl.remove t.dirty_data (ino, blockno);
          (addr, b))
        items
    in
    t.dirty_count <- 0;
    (* Pass 2: write contiguous runs as single transfers. *)
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) placed in
    let flush_run run =
      match List.rev run with
      | [] -> ()
      | (first_addr, _) :: _ as ordered ->
          let bs = t.layout.cfg.block_size in
          let buf = Bytes.create (List.length ordered * bs) in
          List.iteri (fun i (_, b) -> Bytes.blit b 0 buf (i * bs) bs) ordered;
          Vdev.write_blocks t.dev first_addr buf
    in
    let rec group run last = function
      | [] -> flush_run run
      | (addr, b) :: rest ->
          if addr = last + 1 then group ((addr, b) :: run) addr rest
          else begin
            flush_run run;
            group [ (addr, b) ] addr rest
          end
    in
    (match sorted with
    | [] -> ()
    | (addr, b) :: rest -> group [ (addr, b) ] addr rest);
    Hashtbl.iter (fun ino () -> flush_fmap_and_inode t (get_handle t ino)) touched
  end

let flush_bitmaps t =
  Array.iteri
    (fun cg dirty ->
      if dirty then begin
        Vdev.write_block t.dev
          (bitmap_addr t.layout cg)
          (Bitmap.to_bytes t.block_bitmaps.(cg)
             ~block_size:t.layout.cfg.block_size);
        t.bitmap_dirty.(cg) <- false
      end)
    t.bitmap_dirty

let sync t =
  if t.layout.cfg.cluster_writes then flush_data_clustered t else flush_data t;
  flush_bitmaps t

let put_dirty_block t ino blockno b =
  if not (Hashtbl.mem t.dirty_data (ino, blockno)) then
    t.dirty_count <- t.dirty_count + 1;
  Hashtbl.replace t.dirty_data (ino, blockno) b;
  if t.dirty_count >= t.layout.cfg.write_buffer_blocks then
    if t.layout.cfg.cluster_writes then flush_data_clustered t else flush_data t

let write t ino ~off data =
  let bs = t.layout.cfg.block_size in
  let len = Bytes.length data in
  if len > 0 then begin
    let h = get_handle t ino in
    let first = off / bs and last = (off + len - 1) / bs in
    for blockno = first to last do
      let block_start = blockno * bs in
      let lo = max off block_start in
      let hi = min (off + len) (block_start + bs) in
      let b =
        if lo = block_start && hi = block_start + bs then
          Bytes.sub data (lo - off) bs
        else begin
          let b = read_file_block t h ino blockno in
          Bytes.blit data (lo - off) b (lo - block_start) (hi - lo);
          b
        end
      in
      put_dirty_block t ino blockno b;
      h.inode.Inode.size <- max h.inode.Inode.size hi
    done;
    h.inode.Inode.mtime <- tick t
  end

let read t ino ~off ~len =
  let h = get_handle t ino in
  let bs = t.layout.cfg.block_size in
  let len = max 0 (min len (h.inode.Inode.size - off)) in
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blockno = abs / bs in
    let in_block = abs mod bs in
    let n = min (bs - in_block) (len - !pos) in
    let b = read_file_block t h ino blockno in
    Bytes.blit b in_block out !pos n;
    pos := !pos + n
  done;
  out

let truncate t ino ~len =
  let h = get_handle t ino in
  let bs = t.layout.cfg.block_size in
  let keep = (len + bs - 1) / bs in
  let doomed = ref [] in
  Hashtbl.iter
    (fun (i, blockno) _ -> if i = ino && blockno >= keep then doomed := blockno :: !doomed)
    t.dirty_data;
  List.iter
    (fun blockno ->
      Hashtbl.remove t.dirty_data (ino, blockno);
      t.dirty_count <- t.dirty_count - 1)
    !doomed;
  Lfs_core.Filemap.truncate h.fmap ~blocks:keep ~free:(fun a -> free_block t a);
  h.inode.Inode.size <- min h.inode.Inode.size len;
  h.inode.Inode.mtime <- tick t;
  flush_fmap_and_inode t h

let file_size t ino = (get_handle t ino).inode.Inode.size

(* {1 Directories: data and inode written synchronously} *)

let dir_contents t ino =
  let h = get_handle t ino in
  (match h.inode.Inode.ftype with
  | Types.Directory -> ()
  | Types.Regular -> Types.fs_error "ffs: inode %d is not a directory" ino);
  match h.content with
  | Some b -> Directory.of_bytes b
  | None ->
      let b = read t ino ~off:0 ~len:h.inode.Inode.size in
      h.content <- Some b;
      Directory.of_bytes b

let set_dir_contents t ino d =
  let h = get_handle t ino in
  let bs = t.layout.cfg.block_size in
  let fresh = Directory.to_bytes d in
  let old = match h.content with Some b -> b | None -> Bytes.create 0 in
  let nblocks = (Bytes.length fresh + bs - 1) / bs in
  for blockno = 0 to nblocks - 1 do
    let lo = blockno * bs in
    let hi = min (Bytes.length fresh) (lo + bs) in
    let changed =
      hi > Bytes.length old
      || not (Bytes.equal (Bytes.sub fresh lo (hi - lo)) (Bytes.sub old lo (hi - lo)))
    in
    if changed then begin
      let b = Bytes.make bs '\000' in
      Bytes.blit fresh lo b 0 (hi - lo);
      (* Synchronous directory-data write. *)
      let addr =
        match Lfs_core.Filemap.get h.fmap blockno with
        | a when a <> Types.nil_addr -> a
        | _ ->
            let a = alloc_block t ~near:(ino_block t.layout ino) in
            Lfs_core.Filemap.set h.fmap blockno a;
            a
      in
      Vdev.write_block t.dev addr b
    end
  done;
  if Bytes.length fresh < h.inode.Inode.size then
    Lfs_core.Filemap.truncate h.fmap ~blocks:nblocks
      ~free:(fun a -> free_block t a);
  h.inode.Inode.size <- Bytes.length fresh;
  h.inode.Inode.mtime <- tick t;
  h.content <- Some fresh;
  flush_fmap_and_inode t h

let lookup t ~dir name = Directory.find (dir_contents t dir) name
let readdir t ino = Directory.entries (dir_contents t ino)

let create_node t ~dir name ~ftype =
  Directory.check_name name;
  let d = dir_contents t dir in
  if Directory.mem d name then Types.fs_error "ffs: name %S exists" name;
  let cg =
    match ftype with
    | Types.Regular -> ino_cg t.layout dir
    | Types.Directory ->
        (* Spread directories across groups, as FFS does. *)
        t.next_dir_cg <- (t.next_dir_cg + 1) mod t.layout.ncg;
        t.next_dir_cg
  in
  let ino = alloc_inode t ~cg in
  let inode = Inode.create ~ino ~ftype ~mtime:(tick t) in
  let h =
    {
      inode;
      fmap = Lfs_core.Filemap.create_empty t.lfs_layout inode;
      content =
        (match ftype with
        | Types.Directory -> Some (Directory.to_bytes Directory.empty)
        | Types.Regular -> None);
    }
  in
  Hashtbl.replace t.handles ino h;
  (* Synchronous inode write(s): FFS writes new inodes twice. *)
  write_inode t inode;
  if t.layout.cfg.sync_double_inode_on_create then write_inode t inode;
  (* Synchronous directory data + directory inode writes. *)
  set_dir_contents t dir (Directory.add d name ino);
  (match ftype with
  | Types.Directory -> set_dir_contents t ino Directory.empty
  | Types.Regular -> ());
  ino

let create t ~dir name = create_node t ~dir name ~ftype:Types.Regular
let mkdir t ~dir name = create_node t ~dir name ~ftype:Types.Directory

let unlink_internal t ~dir name ~expect =
  let d = dir_contents t dir in
  match Directory.find d name with
  | None -> Types.fs_error "ffs: no such entry %S" name
  | Some ino ->
      let h = get_handle t ino in
      (match (expect, h.inode.Inode.ftype) with
      | `File, Types.Directory ->
          Types.fs_error "ffs: %S is a directory (use rmdir)" name
      | `Dir, Types.Regular -> Types.fs_error "ffs: %S is not a directory" name
      | `Dir, Types.Directory ->
          if not (Directory.is_empty (dir_contents t ino)) then
            Types.fs_error "ffs: directory %S not empty" name
      | `File, Types.Regular -> ());
      set_dir_contents t dir (Directory.remove d name);
      let doomed = ref [] in
      Hashtbl.iter
        (fun (i, blockno) _ -> if i = ino then doomed := blockno :: !doomed)
        t.dirty_data;
      List.iter
        (fun blockno ->
          Hashtbl.remove t.dirty_data (ino, blockno);
          t.dirty_count <- t.dirty_count - 1)
        !doomed;
      Lfs_core.Filemap.iter_mapped h.fmap (fun _ a -> free_block t a);
      List.iter (fun (_, a) -> free_block t a)
        (Lfs_core.Filemap.indirect_blocks h.fmap);
      clear_inode t ino;
      Bitmap.clear t.inode_free.(ino_cg t.layout ino) (ino_index t.layout ino);
      Hashtbl.remove t.handles ino

let unlink t ~dir name = unlink_internal t ~dir name ~expect:`File
let rmdir t ~dir name = unlink_internal t ~dir name ~expect:`Dir

(* Dirent move; directory data writes are synchronous as everywhere in
   FFS, so the removal and insertion both hit the disk before return. *)
let rename t ~odir oname ~ndir nname =
  let od = dir_contents t odir in
  match Directory.find od oname with
  | None -> Types.fs_error "ffs: no such entry %S" oname
  | Some ino ->
      if odir = ndir && oname = nname then ()
      else if lookup t ~dir:ndir nname = Some ino then
        (* POSIX: source and target are links to the same file: no-op. *)
        ()
      else begin
        (match lookup t ~dir:ndir nname with
        | Some _ -> unlink_internal t ~dir:ndir nname ~expect:`File
        | None -> ());
        set_dir_contents t odir (Directory.remove (dir_contents t odir) oname);
        set_dir_contents t ndir (Directory.add (dir_contents t ndir) nname ino)
      end

(* {1 Paths} *)

let split_path path = List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let resolve t path =
  let rec go dir = function
    | [] -> Some dir
    | name :: rest -> (
        match lookup t ~dir name with None -> None | Some ino -> go ino rest)
  in
  go root (split_path path)

let parent_and_leaf t path =
  match List.rev (split_path path) with
  | [] -> Types.fs_error "ffs: path %S has no leaf" path
  | leaf :: rev_dirs -> (
      match
        List.fold_left
          (fun acc name ->
            match acc with None -> None | Some dir -> lookup t ~dir name)
          (Some root) (List.rev rev_dirs)
      with
      | None -> Types.fs_error "ffs: path %S: missing directory" path
      | Some dir -> (dir, leaf))

let create_path t path =
  let dir, leaf = parent_and_leaf t path in
  create t ~dir leaf

let mkdir_path t path =
  let dir, leaf = parent_and_leaf t path in
  mkdir t ~dir leaf

let write_path t path data =
  let dir, leaf = parent_and_leaf t path in
  let ino =
    match lookup t ~dir leaf with Some ino -> ino | None -> create t ~dir leaf
  in
  truncate t ino ~len:0;
  write t ino ~off:0 data

let read_path t path =
  match resolve t path with
  | None -> None
  | Some ino -> Some (read t ino ~off:0 ~len:(file_size t ino))

(* {1 Lifecycle} *)

let store_super cfg disk =
  let b = Bytes.make cfg.block_size '\000' in
  let c = Codec.writer b in
  Codec.put_u32 c magic;
  Codec.put_int c cfg.block_size;
  Codec.put_int c cfg.cg_blocks;
  Codec.put_int c cfg.inodes_per_cg;
  Codec.put_int c cfg.write_buffer_blocks;
  Codec.put_int c cfg.cache_blocks;
  Codec.put_u8 c (if cfg.sync_double_inode_on_create then 1 else 0);
  Codec.put_u8 c (if cfg.cluster_writes then 1 else 0);
  Vdev.write_block disk 0 b

let load_super disk =
  let b = Vdev.read_block disk 0 in
  let c = Codec.reader b in
  if Codec.get_u32 c <> magic then Types.corrupt "ffs: bad superblock magic";
  let block_size = Codec.get_int c in
  let cg_blocks = Codec.get_int c in
  let inodes_per_cg = Codec.get_int c in
  let write_buffer_blocks = Codec.get_int c in
  let cache_blocks = Codec.get_int c in
  let sync_double_inode_on_create = Codec.get_u8 c = 1 in
  let cluster_writes = Codec.get_u8 c = 1 in
  { block_size; cg_blocks; inodes_per_cg; write_buffer_blocks; cache_blocks;
    sync_double_inode_on_create; cluster_writes }

let make disk cfg =
  let l = compute_layout cfg ~disk_blocks:(Vdev.nblocks disk) in
  let cache = Vdev_cache.create ~capacity:cfg.cache_blocks disk in
  {
    disk;
    cache;
    dev = Vdev_cache.vdev cache;
    layout = l;
    lfs_layout = filemap_layout cfg;
    block_bitmaps = Array.init l.ncg (fun _ -> Bitmap.create ~bits:cfg.cg_blocks);
    bitmap_dirty = Array.make l.ncg false;
    inode_free = Array.init l.ncg (fun _ -> Bitmap.create ~bits:cfg.inodes_per_cg);
    handles = Hashtbl.create 256;
    dirty_data = Hashtbl.create 256;
    dirty_count = 0;
    clock = 1.0;
    next_dir_cg = 0;
  }

let format disk cfg =
  if Vdev.block_size disk <> cfg.block_size then
    invalid_arg "Ffs.format: block size mismatch";
  store_super cfg disk;
  let t = make disk cfg in
  (* Reserve each group's metadata blocks in its bitmap and zero the
     inode tables. *)
  Array.iteri
    (fun cg bm ->
      for i = 0 to t.layout.data_start - 1 do
        Bitmap.set bm i
      done;
      Vdev.zero_blocks disk (itable_addr t.layout cg) t.layout.itable_blocks;
      t.bitmap_dirty.(cg) <- true)
    t.block_bitmaps;
  (* Root directory in group 0. *)
  Bitmap.set t.inode_free.(0) (ino_index t.layout root);
  let inode = Inode.create ~ino:root ~ftype:Types.Directory ~mtime:(tick t) in
  let h =
    {
      inode;
      fmap = Lfs_core.Filemap.create_empty t.lfs_layout inode;
      content = Some (Directory.to_bytes Directory.empty);
    }
  in
  Hashtbl.replace t.handles root h;
  write_inode t inode;
  set_dir_contents t root Directory.empty;
  sync t

let mount disk =
  let cfg = load_super disk in
  let t = make disk cfg in
  (* Bitmaps from disk; inode-free maps by scanning the inode tables. *)
  Array.iteri
    (fun cg bm ->
      let b = Vdev.read_block disk (bitmap_addr t.layout cg) in
      let loaded = Bitmap.of_bytes b ~bits:cfg.cg_blocks in
      for i = 0 to cfg.cg_blocks - 1 do
        if Bitmap.get loaded i then Bitmap.set bm i
      done)
    t.block_bitmaps;
  Array.iteri
    (fun cg free ->
      let table =
        Vdev.read_blocks disk (itable_addr t.layout cg) t.layout.itable_blocks
      in
      for idx = 0 to cfg.inodes_per_cg - 1 do
        let block = idx / t.layout.inodes_per_block in
        let slot = idx mod t.layout.inodes_per_block in
        let view = Bytes.sub table (block * cfg.block_size) cfg.block_size in
        match Inode.decode view ~slot with
        | Some _ -> Bitmap.set free idx
        | None -> ()
        | exception Types.Corrupt _ -> ()
      done)
    t.inode_free;
  t

let free_blocks t =
  let total = ref 0 in
  Array.iter
    (fun bm -> total := !total + (Bitmap.bits bm - Bitmap.popcount bm))
    t.block_bitmaps;
  !total

let fsck_scan t =
  let l = t.layout in
  for cg = 0 to l.ncg - 1 do
    (* Deliberately bypass the cache: fsck models a cold post-crash scan. *)
    ignore (Vdev.read_block t.disk (bitmap_addr l cg));
    let table = Vdev.read_blocks t.disk (itable_addr l cg) l.itable_blocks in
    for idx = 0 to l.cfg.inodes_per_cg - 1 do
      let block = idx / l.inodes_per_block in
      let slot = idx mod l.inodes_per_block in
      let view = Bytes.sub table (block * l.cfg.block_size) l.cfg.block_size in
      match Inode.decode view ~slot with
      | None -> ()
      | Some inode ->
          (* Walk the block pointers, as fsck does to rebuild the
             allocation picture; this reads the indirect blocks. *)
          ignore
            (Lfs_core.Filemap.load ~read:(Vdev.read_block t.disk) t.lfs_layout
               inode)
      | exception Types.Corrupt _ -> ()
    done
  done

let drop_caches t =
  sync t;
  Vdev_cache.clear t.cache;
  let keep = Hashtbl.create 1 in
  Hashtbl.iter (fun ino h -> if ino = root then Hashtbl.replace keep ino h) t.handles;
  Hashtbl.reset t.handles;
  Hashtbl.iter (fun ino h -> h.content <- None; Hashtbl.replace t.handles ino h) keep
