(** The executable reference model of the file-system surface.

    One pure definition of "what the namespace should contain" shared by
    every crash harness in the tree: a map of canonical paths to nodes,
    a {!step} function giving each operation's post-state and its
    {e events} (the per-path effects a crash window may partially
    persist), and the refinement oracle {!check} that decides whether a
    recovered namespace is some state between the durability frontier
    and the crash operation.

    Two drivers feed it: the op-sequence driver ({!Refine}) shadows
    scripted operations with {!step} directly, and the {!Recorder}
    wraps a live {!Lfs_workload.Fsops.t} so unscripted workloads (the
    serving engine, the legacy crashtest workloads) produce the same
    event vocabulary. *)

type node = Dir | File of bytes
type state

val empty : state
(** Just the root directory (path [""]). *)

val parent : string -> string
(** ["/a/b" -> "/a"], ["/a" -> ""] (the root). *)

val leaf : string -> string

val files : state -> (string * bytes) list
val dirs : state -> string list
(** Current files (path, content) / directory paths, root [""] included. *)

(** {1 Operations} *)

type op =
  | Mkdir of string
  | Create of string
  | Write of { path : string; off : int; data : bytes }
  | Truncate of { path : string; len : int }
  | Rename of { src : string; dst : string }
  | Remove of string
  | Rmdir of string
  | Sync

val pp_op : Format.formatter -> op -> unit
val op_to_string : op -> string

(** {1 Events and transitions} *)

type event =
  | Efile of string * bytes option
      (** full logical content after the op; [None] = removed *)
  | Edir of string * bool  (** directory present after the op? *)
  | Erename of { src : string; dst : string }
      (** namespace move: the oracle splices [src]'s pre-rename version
          chain into [dst]'s, because the directory entry can persist
          across a crash while the moved inode's data rolls back to an
          older version it held under the old name *)

val step : state -> op -> (state * event list, string) result
(** The transition relation.  [Ok (state', events)] when the backends
    must accept the op; [Error reason] when they must refuse it with
    {!Lfs_core.Types.Fs_error}.  Mirrors the verified backend
    semantics: no implicit ancestor creation, create/mkdir refuse
    existing names, truncate extends with zeros, rename is
    regular-file-only (directory renames are not modelled — the shard
    router cannot move them), same-path rename and empty writes are
    accepted no-ops. *)

val splice : bytes -> off:int -> bytes -> bytes
(** [splice old ~off data] — the content after writing [data] at [off]
    (zero-fills any gap beyond [old]). *)

val resize : bytes -> int -> bytes
(** The content after truncating to the given length (extension
    zero-fills). *)

(** {1 The refinement oracle} *)

val chain :
  (int * event) list ->
  string ->
  durable:int ->
  upto:int ->
  bytes option * bytes option list
(** Version chain of a file path at a cut: newest content with
    op <= [durable] plus every version in the ([durable], [upto]]
    window. *)

val dir_chain :
  (int * event) list -> string -> durable:int -> upto:int -> bool * bool list
(** Presence chain of a directory path (durably present?, window
    presence values). *)

val content_acceptable : bs:int -> bytes list -> bytes -> bool
(** Whether recovered content is block-wise assembled from the given
    versions; see the implementation comment for the zero-frontier
    rule. *)

val explain_mismatch : bs:int -> bytes list -> bytes -> string

val dirs_of_events : (int * event) list -> upto:int -> (string, unit) Hashtbl.t
(** Every path any [Edir] event up to [upto] mentions — the set of
    paths a recovered-tree walk should descend into. *)

val walk :
  root:'ino ->
  readdir:('ino -> (string * 'ino) list) ->
  file_size:('ino -> int) ->
  read:('ino -> off:int -> len:int -> bytes) ->
  model_dirs:(string, unit) Hashtbl.t ->
  (string, bytes) Hashtbl.t * (string, unit) Hashtbl.t
(** Read a recovered namespace into (files by path, dir-path set),
    entering only paths [model_dirs] knows as directories. *)

val check :
  bs:int ->
  events:(int * event) list ->
  durable:int ->
  upto:int ->
  files:(string, bytes) Hashtbl.t ->
  dirs:(string, unit) Hashtbl.t ->
  string list
(** The refinement check: given the event log, the durability frontier
    ([durable], last completed sync barrier) and the crash op ([upto]),
    decide whether the recovered namespace ([files], [dirs]) is some
    state in the ([durable], [upto]] window.  Returns human-readable
    divergences; [[]] means the recovery refines the model. *)

(** {1 Recording a live Fsops driver} *)

module Recorder : sig
  type t

  val create : root:Lfs_core.Types.ino -> t

  val instrument : t -> Lfs_workload.Fsops.t -> Lfs_workload.Fsops.t
  (** Shadow every mutating call with its intended events, numbered by
      operation.  Events are recorded {e before} the real call (a crash
      mid-op may persist part of the effect) and popped again when the
      call is refused with [Fs_error].  The durability frontier
      advances only when an inner [sync] {e returns} — an op
      acknowledged into a group-commit batch whose shared sync has not
      completed at the crash is still in the in-flight window. *)

  val op : t -> int
  (** Operations recorded so far (the [upto] of a crash here). *)

  val durable : t -> int
  (** Index of the last completed sync barrier. *)

  val events : t -> (int * event) list
end
