(* Deterministic random operation sequences for the refinement checker.

   The generator tracks the model state as it goes so most emitted ops
   are valid (a sequence of rejected ops would never move the log), but
   it deliberately keeps a small invalid-op rate: the checker asserts
   that model and backend agree on *rejections* too.

   Name pools are disjoint by kind — d* names only ever directories,
   f* names only ever files — so a path's type never flip-flops across
   a sequence and the oracle's per-path chains stay single-kinded. *)

module Prng = Lfs_util.Prng

let dir_names = [| "d0"; "d1"; "d2"; "d3" |]
let file_names = [| "f0"; "f1"; "f2"; "f3"; "f4"; "f5" |]

let sequence ~seed ~seq ~nops =
  let prng = Prng.create ~seed:(seed lxor ((seq + 1) * 0x9E3779B9)) in
  let st = ref Fs_model.empty in
  let dirs () = Fs_model.dirs !st in
  let files () = Fs_model.files !st in
  let pick arr = arr.(Prng.int prng (Array.length arr)) in
  let pick_list l = List.nth l (Prng.int prng (List.length l)) in
  let fresh_bytes len =
    Bytes.init len (fun _ -> Char.chr (Char.code 'a' + Prng.int prng 26))
  in
  (* A mostly-valid candidate path for a new child: an existing
     directory plus a pooled name. *)
  let child_path names = pick_list (dirs ()) ^ "/" ^ pick names in
  let gen_op () =
    match Prng.int prng 100 with
    | n when n < 14 -> Fs_model.Create (child_path file_names)
    | n when n < 30 -> (
        (* overwrite from offset 0 *)
        match files () with
        | [] -> Fs_model.Create (child_path file_names)
        | fs ->
            let p, _ = pick_list fs in
            Fs_model.Write
              { path = p; off = 0; data = fresh_bytes (1 + Prng.int prng 12_000) })
    | n when n < 42 -> (
        (* append, or a write starting inside the file *)
        match files () with
        | [] -> Fs_model.Create (child_path file_names)
        | fs ->
            let p, c = pick_list fs in
            let off =
              if Prng.bool prng then Bytes.length c
              else Prng.int prng (Bytes.length c + 1)
            in
            Fs_model.Write
              { path = p; off; data = fresh_bytes (1 + Prng.int prng 4_000) })
    | n when n < 50 -> (
        match files () with
        | [] -> Fs_model.Create (child_path file_names)
        | fs ->
            let p, c = pick_list fs in
            let len =
              if Prng.bool prng then Prng.int prng (Bytes.length c + 1)
              else Bytes.length c + Prng.int prng 4_000
            in
            Fs_model.Truncate { path = p; len })
    | n when n < 58 -> Fs_model.Mkdir (child_path dir_names)
    | n when n < 66 -> (
        match files () with
        | [] -> Fs_model.Create (child_path file_names)
        | fs ->
            let src, _ = pick_list fs in
            Fs_model.Rename { src; dst = child_path file_names })
    | n when n < 76 -> (
        match files () with
        | [] -> Fs_model.Create (child_path file_names)
        | fs -> Fs_model.Remove (fst (pick_list fs)))
    | n when n < 82 -> (
        match List.filter (fun d -> d <> "") (dirs ()) with
        | [] -> Fs_model.Mkdir (child_path dir_names)
        | ds -> Fs_model.Rmdir (pick_list ds))
    | n when n < 87 ->
        (* deliberately dubious: a path under a pooled dir name that may
           not exist — model and backend must agree on the rejection *)
        Fs_model.Create ("/" ^ pick dir_names ^ "/" ^ pick file_names)
    | _ -> Fs_model.Sync
  in
  let ops = ref [] in
  for _ = 1 to nops do
    let op = gen_op () in
    (match Fs_model.step !st op with
    | Ok (st', _) -> st := st'
    | Error _ -> ());
    ops := op :: !ops
  done;
  List.rev !ops
