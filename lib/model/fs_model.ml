module Smap = Map.Make (String)
module Fsops = Lfs_workload.Fsops
module Types = Lfs_core.Types

(* ------------------------------------------------------------------ *)
(* The pure reference state                                            *)
(* ------------------------------------------------------------------ *)

type node = Dir | File of bytes

type state = node Smap.t

(* "" is the root; every other path is canonical "/a/b". *)
let empty = Smap.add "" Dir Smap.empty

let parent path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> ""
  | Some i -> String.sub path 0 i

let leaf path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let node_at st p = Smap.find_opt p st
let dir_exists st p = match node_at st p with Some Dir -> true | _ -> false

let has_children st p =
  let prefix = p ^ "/" in
  Smap.exists (fun q _ -> String.starts_with ~prefix q) st

let files st =
  Smap.fold (fun p n acc -> match n with File b -> (p, b) :: acc | Dir -> acc) st []
  |> List.rev

let dirs st =
  Smap.fold (fun p n acc -> match n with Dir -> p :: acc | File _ -> acc) st []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

type op =
  | Mkdir of string
  | Create of string
  | Write of { path : string; off : int; data : bytes }
  | Truncate of { path : string; len : int }
  | Rename of { src : string; dst : string }
  | Remove of string
  | Rmdir of string
  | Sync

let pp_op ppf = function
  | Mkdir p -> Format.fprintf ppf "mkdir %s" p
  | Create p -> Format.fprintf ppf "create %s" p
  | Write { path; off; data } ->
      Format.fprintf ppf "write %s @%d +%d" path off (Bytes.length data)
  | Truncate { path; len } -> Format.fprintf ppf "truncate %s to %d" path len
  | Rename { src; dst } -> Format.fprintf ppf "rename %s -> %s" src dst
  | Remove p -> Format.fprintf ppf "remove %s" p
  | Rmdir p -> Format.fprintf ppf "rmdir %s" p
  | Sync -> Format.fprintf ppf "sync"

let op_to_string op = Format.asprintf "%a" pp_op op

(* ------------------------------------------------------------------ *)
(* Events: what a crash window may partially persist                   *)
(* ------------------------------------------------------------------ *)

type event =
  | Efile of string * bytes option  (* full logical content; None = removed *)
  | Edir of string * bool  (* present after this op? *)
  | Erename of { src : string; dst : string }
      (* namespace move: dst's acceptable contents include src's
         pre-rename versions (the dirent can persist while the moved
         inode's data rolls back) *)

(* The overwrite/extend result of [write old ~off data]. *)
let splice old ~off data =
  let len = max (Bytes.length old) (off + Bytes.length data) in
  let m = Bytes.make len '\000' in
  Bytes.blit old 0 m 0 (Bytes.length old);
  Bytes.blit data 0 m off (Bytes.length data);
  m

let resize old len =
  if len <= Bytes.length old then Bytes.sub old 0 len
  else splice old ~off:(Bytes.length old) (Bytes.make (len - Bytes.length old) '\000')

(* One transition: the post-state plus the events describing the op's
   intended effect, or [Error] when the backends must refuse it with
   {!Lfs_core.Types.Fs_error}.  The model covers the regular-file op
   surface the drivers generate: directory renames are always an error
   here even though the single-volume backends could move them (the
   shard router cannot — placement keys are path-derived — and no
   driver emits them). *)
let step st op =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  match op with
  | Mkdir p ->
      if p = "" then err "mkdir of root"
      else if not (dir_exists st (parent p)) then err "mkdir %s: missing parent" p
      else if Smap.mem p st then err "mkdir %s: exists" p
      else Ok (Smap.add p Dir st, [ Edir (p, true) ])
  | Create p ->
      if p = "" then err "create of root"
      else if not (dir_exists st (parent p)) then err "create %s: missing parent" p
      else if Smap.mem p st then err "create %s: exists" p
      else Ok (Smap.add p (File Bytes.empty) st, [ Efile (p, Some Bytes.empty) ])
  | Write { path; off; data } -> (
      match node_at st path with
      | Some (File old) ->
          if off < 0 then err "write %s: negative offset" path
          else if Bytes.length data = 0 then Ok (st, [])
          else
            let m = splice old ~off data in
            Ok (Smap.add path (File m) st, [ Efile (path, Some m) ])
      | Some Dir -> err "write %s: is a directory" path
      | None -> err "write %s: no such file" path)
  | Truncate { path; len } -> (
      match node_at st path with
      | Some (File old) ->
          if len < 0 then err "truncate %s: negative length" path
          else
            let m = resize old len in
            Ok (Smap.add path (File m) st, [ Efile (path, Some m) ])
      | Some Dir -> err "truncate %s: is a directory" path
      | None -> err "truncate %s: no such file" path)
  | Rename { src; dst } -> (
      match node_at st src with
      | None -> err "rename %s: no such file" src
      | Some Dir -> err "rename %s: directory renames are not modelled" src
      | Some (File c) ->
          if src = dst then Ok (st, [])
          else if not (dir_exists st (parent dst)) then
            err "rename to %s: missing parent" dst
          else if dir_exists st dst then err "rename to %s: target is a directory" dst
          else
            (* Copy-then-unlink backends may expose both names mid-crash;
               per-path, each intermediate matches one of these events. *)
            Ok
              ( Smap.add dst (File c) (Smap.remove src st),
                [
                  Erename { src; dst };
                  Efile (dst, Some c);
                  Efile (src, None);
                ] ))
  | Remove p -> (
      match node_at st p with
      | Some (File _) -> Ok (Smap.remove p st, [ Efile (p, None) ])
      | Some Dir -> err "remove %s: is a directory" p
      | None -> err "remove %s: no such file" p)
  | Rmdir p -> (
      match node_at st p with
      | _ when p = "" -> err "rmdir of root"
      | Some Dir ->
          if has_children st p then err "rmdir %s: not empty" p
          else Ok (Smap.remove p st, [ Edir (p, false) ])
      | Some (File _) -> err "rmdir %s: not a directory" p
      | None -> err "rmdir %s: no such directory" p)
  | Sync -> Ok (st, [])

(* ------------------------------------------------------------------ *)
(* The refinement oracle                                               *)
(* ------------------------------------------------------------------ *)

(* Version chain of [path] at a cut: the newest content with op <=
   durable (None if the path did not exist then), plus every version in
   the in-flight window (durable, upto].

   A window rename into [path] splices in the source's own pre-rename
   chain: the directory entry can persist while the moved inode's data
   rolls back, so any content [src] held before the rename may surface
   under [dst].  Absence markers do not transfer — data rollback
   exposes old content, never a missing file.  The recursion shrinks
   [upto] to the op before the rename, so rename cycles terminate. *)
let rec chain events path ~durable ~upto =
  let durable_v = ref None and window = ref [] in
  List.iter
    (fun (op, ev) ->
      match ev with
      | Efile (p, v) when String.equal p path ->
          if op <= durable then durable_v := v
          else if op <= upto then window := v :: !window
      | Erename { src; dst }
        when String.equal dst path && op > durable && op <= upto ->
          let sdur, swin = chain events src ~durable ~upto:(op - 1) in
          let contents = List.filter_map Fun.id (sdur :: swin) in
          window :=
            List.rev_append (List.map Option.some contents) !window
      | _ -> ())
    events;
  (!durable_v, List.rev !window)

(* Directory presence chain: durable presence (absent before any event)
   plus the presence value of every window event. *)
let dir_chain events path ~durable ~upto =
  let durable_p = ref false and window = ref [] in
  List.iter
    (fun (op, ev) ->
      match ev with
      | Edir (p, present) when String.equal p path ->
          if op <= durable then durable_p := present
          else if op <= upto then window := present :: !window
      | _ -> ())
    events;
  (!durable_p, List.rev !window)

(* Recovered content is legal if it equals some version outright, or if
   every [bs]-sized block of it matches the corresponding block of some
   version.  The device persists flushed data at block granularity, so
   a crash can mix blocks of adjacent versions but can never fabricate a
   block no version contained.  A zero block is additionally accepted
   only on a growth frontier (some version ends before it): a partially
   persisted extension may leave an unwritten hole, but a file whose
   every version covers the block must really hold its data. *)
let content_acceptable ~bs versions c =
  List.exists (fun v -> Bytes.equal v c) versions
  ||
  let len = Bytes.length c in
  List.exists (fun v -> Bytes.length v >= len) versions
  &&
  let nblocks = (len + bs - 1) / bs in
  let block_ok i =
    let lo = i * bs in
    let hi = min len (lo + bs) in
    let matches v =
      Bytes.length v >= hi
      && Bytes.equal (Bytes.sub c lo (hi - lo)) (Bytes.sub v lo (hi - lo))
    in
    let zero_frontier () =
      List.exists (fun v -> Bytes.length v < hi) versions
      &&
      let rec z j = j >= hi || (Bytes.get c j = '\000' && z (j + 1)) in
      z lo
    in
    List.exists matches versions || zero_frontier ()
  in
  let rec all i = i >= nblocks || (block_ok i && all (i + 1)) in
  all 0

(* First offending region of [c], for failure reports. *)
let explain_mismatch ~bs versions c =
  let len = Bytes.length c in
  if not (List.exists (fun v -> Bytes.length v >= len) versions) then
    Printf.sprintf "len %d exceeds every version (lens %s)" len
      (String.concat ","
         (List.map (fun v -> string_of_int (Bytes.length v)) versions))
  else
    let nblocks = (len + bs - 1) / bs in
    let rec find i =
      if i >= nblocks then "?"
      else
        let lo = i * bs in
        let hi = min len (lo + bs) in
        let matches v =
          Bytes.length v >= hi
          && Bytes.equal (Bytes.sub c lo (hi - lo)) (Bytes.sub v lo (hi - lo))
        in
        if List.exists matches versions then find (i + 1)
        else
          Printf.sprintf "block %d of %d (len %d, %d versions: %s)" i nblocks len
            (List.length versions)
            (String.concat ","
               (List.map (fun v -> string_of_int (Bytes.length v)) versions))
    in
    find 0

let dirs_of_events events ~upto =
  let t = Hashtbl.create 16 in
  List.iter
    (fun (op, ev) ->
      match ev with Edir (p, _) when op <= upto -> Hashtbl.replace t p () | _ -> ())
    events;
  t

(* Walk a recovered tree.  Only paths the event log knows as directories
   are entered; everything else is read as a file.  Polymorphic in the
   inode type so any {!Lfs_core.Fs_intf.S} instance fits. *)
let walk ~root ~readdir ~file_size ~read ~model_dirs =
  let files = Hashtbl.create 64 and dirs = Hashtbl.create 16 in
  let rec go dpath ino =
    Hashtbl.replace dirs dpath ();
    List.iter
      (fun (name, child) ->
        let cpath = dpath ^ "/" ^ name in
        if Hashtbl.mem model_dirs cpath then go cpath child
        else
          let sz = file_size child in
          Hashtbl.replace files cpath (read child ~off:0 ~len:sz))
      (readdir ino)
  in
  go "" root;
  (files, dirs)

(* The refinement check: the recovered namespace must be *some* state
   between the durable frontier and the crash op.  Per path:

   - a file's recovered content must be block-wise assembled from the
     versions in its (durable, upto] chain, and may be absent only if
     the durable version is absent or some window version removes it;
   - a directory may be present only if it was present durably or some
     window event creates it, and absent only if it was absent durably
     or some window event removes it;
   - nothing the event log never mentions may appear. *)
let check ~bs ~events ~durable ~upto ~files:recovered_files ~dirs:recovered_dirs =
  let model_files = Hashtbl.create 64 and model_dirs = Hashtbl.create 16 in
  List.iter
    (fun (op, ev) ->
      if op <= upto then
        match ev with
        | Efile (p, _) -> Hashtbl.replace model_files p ()
        | Edir (p, _) -> Hashtbl.replace model_dirs p ()
        | Erename _ -> ())
    events;
  let divs = ref [] in
  let div fmt = Printf.ksprintf (fun s -> divs := s :: !divs) fmt in
  Hashtbl.iter
    (fun path () ->
      let durable_p, window = dir_chain events path ~durable ~upto in
      let recovered = Hashtbl.mem recovered_dirs path in
      if recovered && not (durable_p || List.exists Fun.id window) then
        div "%s: removed directory resurrected" path
      else if
        (not recovered) && durable_p && not (List.exists (fun p -> not p) window)
      then div "%s: durable directory missing" path)
    model_dirs;
  Hashtbl.iter
    (fun path () ->
      let durable_v, window = chain events path ~durable ~upto in
      match Hashtbl.find_opt recovered_files path with
      | None ->
          let absent_ok =
            durable_v = None || List.exists (fun v -> v = None) window
          in
          if not absent_ok then div "%s: durable content lost" path
      | Some c ->
          let versions = List.filter_map Fun.id (durable_v :: window) in
          if not (content_acceptable ~bs versions c) then
            div
              "%s: recovered content matches no state the workload passed \
               through (%s)"
              path
              (explain_mismatch ~bs versions c))
    model_files;
  Hashtbl.iter
    (fun path _ ->
      if not (Hashtbl.mem model_files path) then
        div "%s: path never written by the workload" path)
    recovered_files;
  List.rev !divs

(* ------------------------------------------------------------------ *)
(* The recorder: shadow an Fsops driver with model events              *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  type t = {
    mutable op : int;
    mutable durable : int;
    mutable events_rev : (int * event) list;
    ino_path : (Types.ino, string) Hashtbl.t;
  }

  let create ~root =
    let t =
      { op = 0; durable = 0; events_rev = []; ino_path = Hashtbl.create 64 }
    in
    Hashtbl.replace t.ino_path root "";
    t

  let op t = t.op
  let durable t = t.durable
  let events t = List.rev t.events_rev

  let latest_content t path =
    let rec find = function
      | (_, Efile (p, v)) :: _ when String.equal p path -> v
      | _ :: rest -> find rest
      | [] -> None
    in
    find t.events_rev

  (* Record the intended effect {e before} invoking the real operation:
     a crash mid-operation may have persisted part of it.  If the
     operation instead fails logically (Fs_error), pop the events. *)
  let step t evs f =
    t.op <- t.op + 1;
    let op = t.op in
    List.iter (fun e -> t.events_rev <- (op, e) :: t.events_rev) evs;
    try f ()
    with Types.Fs_error _ as exn ->
      let rec pop = function
        | (o, _) :: rest when o = op -> pop rest
        | rest -> rest
      in
      t.events_rev <- pop t.events_rev;
      raise exn

  let path_of_dir t dir name =
    let dpath =
      match Hashtbl.find_opt t.ino_path dir with Some p -> p | None -> "?"
    in
    dpath ^ "/" ^ name

  let instrument t (inner : Fsops.t) =
    {
      inner with
      Fsops.create_path =
        (fun path ->
          let ino =
            step t
              [ Efile (path, Some Bytes.empty) ]
              (fun () -> inner.Fsops.create_path path)
          in
          Hashtbl.replace t.ino_path ino path;
          ino);
      mkdir_path =
        (fun path ->
          let ino =
            step t [ Edir (path, true) ] (fun () -> inner.Fsops.mkdir_path path)
          in
          Hashtbl.replace t.ino_path ino path;
          ino);
      resolve =
        (fun path ->
          let r = step t [] (fun () -> inner.Fsops.resolve path) in
          (match r with
          | Some ino -> Hashtbl.replace t.ino_path ino path
          | None -> ());
          r);
      unlink =
        (fun ~dir name ->
          let path = path_of_dir t dir name in
          step t [ Efile (path, None) ] (fun () -> inner.Fsops.unlink ~dir name));
      rmdir =
        (fun ~dir name ->
          let path = path_of_dir t dir name in
          step t [ Edir (path, false) ] (fun () -> inner.Fsops.rmdir ~dir name));
      rename =
        (fun ~odir oname ~ndir nname ->
          let src = path_of_dir t odir oname in
          let dst = path_of_dir t ndir nname in
          let evs =
            if String.equal src dst then []
            else
              let c =
                match latest_content t src with
                | Some c -> c
                | None -> Bytes.empty
              in
              [
                Erename { src; dst };
                Efile (dst, Some c);
                Efile (src, None);
              ]
          in
          step t evs (fun () -> inner.Fsops.rename ~odir oname ~ndir nname));
      write =
        (fun ino ~off b ->
          let evs =
            match Hashtbl.find_opt t.ino_path ino with
            | None -> []
            | Some path ->
                let old =
                  match latest_content t path with
                  | Some c -> c
                  | None -> Bytes.empty
                in
                [ Efile (path, Some (splice old ~off b)) ]
          in
          step t evs (fun () -> inner.Fsops.write ino ~off b));
      truncate =
        (fun ino ~len ->
          let evs =
            match Hashtbl.find_opt t.ino_path ino with
            | None -> []
            | Some path ->
                let old =
                  match latest_content t path with
                  | Some c -> c
                  | None -> Bytes.empty
                in
                [ Efile (path, Some (resize old len)) ]
          in
          step t evs (fun () -> inner.Fsops.truncate ino ~len));
      read =
        (fun ino ~off ~len -> step t [] (fun () -> inner.Fsops.read ino ~off ~len));
      file_size = (fun ino -> step t [] (fun () -> inner.Fsops.file_size ino));
      (* The durability frontier advances only when the barrier
         completes: a crash inside [sync] (its IO tags not yet all
         committed) leaves every op since the previous sync in the
         in-flight window, even if it was already acknowledged into a
         group-commit batch. *)
      sync =
        (fun () ->
          step t [] (fun () -> inner.Fsops.sync ());
          t.durable <- t.op);
      drop_caches = (fun () -> step t [] (fun () -> inner.Fsops.drop_caches ()));
    }
end
