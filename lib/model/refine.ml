(* The refinement driver.

   For one operation sequence it performs a reference run (no fault) to
   learn the crash-point space — every payload block device 0 receives —
   then replays the sequence from scratch once per enumerated point,
   cutting the power at exactly that block, rebooting, recovering, and
   asking {!Fs_model.check} whether the surviving namespace is some
   state between the durability frontier and the crash op.

   Ops flow through the same serving stack the benchmarks use: with
   [io_depth > 1] the devices run in queued submission, the driver keeps
   about [io_depth] transfers in flight via {!Lfs_disk.Vdev.pump}, and
   every generated [Sync] is a group-commit barrier.  The model is also
   checked in the *logical* direction on every op: backend acceptance
   must match {!Fs_model.step} acceptance exactly. *)

module Prng = Lfs_util.Prng
module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Vdev_fault = Lfs_disk.Vdev_fault
module Geometry = Lfs_disk.Geometry
module Fsops = Lfs_workload.Fsops
module Types = Lfs_core.Types
module Engine = Lfs_server.Engine

type divergence = { cut : int; stage : string; detail : string }

type seq_report = {
  subject : string;
  seed : int;
  seq : int;
  ops : int;
  total_blocks : int;
  points : int;
  crashes : int;
  divergences : divergence list;
}

let seq_clean r = r.divergences = []

let pp_divergence ppf d =
  Format.fprintf ppf "cut %d %s: %s" d.cut d.stage d.detail

let pp_seq_report ppf r =
  Format.fprintf ppf
    "modelcheck: subject=%s seed=%d seq=%d ops=%d space=%d points=%d crashes=%d"
    r.subject r.seed r.seq r.ops r.total_blocks r.points r.crashes;
  List.iteri
    (fun i d ->
      if i < 10 then Format.fprintf ppf "@\n  DIVERGENCE %a" pp_divergence d
      else if i = 10 then Format.fprintf ppf "@\n  DIVERGENCE ...")
    r.divergences;
  Format.fprintf ppf "@\n  %s (replay with --seed %d, sequence %d)"
    (if seq_clean r then "PASS" else "FAIL")
    r.seed r.seq

exception Semantics of string

module Make (S : Subject.SUBJECT) = struct
  module Ops = Fsops.Make (S)

  let make_fsops fs =
    Ops.make ~name:S.subject_name ~async_writes:S.async_writes fs

  (* [S.ndevices] fresh devices; device 0 wears the fault layer, so the
     crash-point space is that device's writes — for multi-device
     subjects the other devices never crash and the oracle checks their
     durable state survives a neighbour's power cut. *)
  let fresh_fault ~blocks ~seed =
    let mk () = Vdev.of_disk (Disk.create (Geometry.instant ~blocks)) in
    let fault = Vdev_fault.create ~seed (mk ()) in
    let rest = List.init (S.ndevices - 1) (fun _ -> mk ()) in
    (fault, Vdev_fault.vdev fault :: rest)

  (* Service queued transfers until at most [io_depth] remain in
     flight.  The counter clock only ever moves forward, so horizons
     computed at submit time are always reachable. *)
  let settle ~now ~io_depth devs =
    List.iter
      (fun d ->
        let guard = ref 0 in
        while
          Vdev.outstanding_in d ~lo:0 ~hi:max_int > io_depth
          && !guard < 1_000_000
        do
          incr guard;
          now := !now +. 1.0;
          ignore (Vdev.pump d ~now:!now)
        done)
      devs

  (* One op against the backend.  Logical rejections surface as
     {!Types.Fs_error}; anything else escapes. *)
  let exec (fsops : Fsops.t) op =
    let dir_ino p =
      match fsops.Fsops.resolve p with
      | Some ino -> ino
      | None -> Types.fs_error "%s: no such directory" p
    in
    let file_ino p =
      match fsops.Fsops.resolve p with
      | Some ino -> ino
      | None -> Types.fs_error "%s: no such file" p
    in
    match op with
    | Fs_model.Mkdir p -> ignore (fsops.Fsops.mkdir_path p)
    | Fs_model.Create p -> ignore (fsops.Fsops.create_path p)
    | Fs_model.Write { path; off; data } ->
        fsops.Fsops.write (file_ino path) ~off data
    | Fs_model.Truncate { path; len } ->
        fsops.Fsops.truncate (file_ino path) ~len
    | Fs_model.Rename { src; dst } ->
        let odir = dir_ino (Fs_model.parent src) in
        let ndir = dir_ino (Fs_model.parent dst) in
        fsops.Fsops.rename ~odir (Fs_model.leaf src) ~ndir (Fs_model.leaf dst)
    | Fs_model.Remove p ->
        fsops.Fsops.unlink ~dir:(dir_ino (Fs_model.parent p)) (Fs_model.leaf p)
    | Fs_model.Rmdir p ->
        fsops.Fsops.rmdir ~dir:(dir_ino (Fs_model.parent p)) (Fs_model.leaf p)
    | Fs_model.Sync -> fsops.Fsops.sync ()

  (* Drive the whole sequence, shadowing each op with the model.
     Events are recorded *before* execution (a crash mid-op may persist
     part of the effect) and popped again on logical rejection.  The
     durability frontier advances only when a [Sync]'s barrier
     completes — i.e. when the backend sync returns. *)
  let drive fsops ~pump ops ~st ~events_rev ~opn ~durable =
    List.iter
      (fun op ->
        incr opn;
        let n = !opn in
        let expected = Fs_model.step !st op in
        (match expected with
        | Ok (_, evs) ->
            List.iter (fun e -> events_rev := (n, e) :: !events_rev) evs
        | Error _ -> ());
        let actual =
          try
            exec fsops op;
            Ok ()
          with Types.Fs_error m -> Error m
        in
        (match (expected, actual) with
        | Ok (st', _), Ok () ->
            st := st';
            if op = Fs_model.Sync then durable := n
        | Error _, Error _ -> ()
        | Ok _, Error m ->
            let rec pop = function
              | (o, _) :: rest when o = n -> pop rest
              | rest -> rest
            in
            events_rev := pop !events_rev;
            raise
              (Semantics
                 (Printf.sprintf "op %d (%s): model accepts, backend refused: %s"
                    n (Fs_model.op_to_string op) m))
        | Error m, Ok () ->
            raise
              (Semantics
                 (Printf.sprintf "op %d (%s): model refuses (%s), backend \
                                  accepted"
                    n (Fs_model.op_to_string op) m)));
        pump ())
      ops

  type once = {
    crashed : bool;
    upto : int;
    durable : int;
    events : (int * Fs_model.event) list;
    total : int;
    fault : Vdev_fault.t;
    devs : Vdev.t list;
  }

  (* One full execution of [ops], optionally with a crash armed at
     [cut].  Devices come back drained and in Direct mode (fault device
     excepted when crashed — {!Vdev_fault.reboot} clears its queue). *)
  let run_once ~blocks ~seed ~io_depth ?cut ?mode ops =
    let fault, devs = fresh_fault ~blocks ~seed in
    S.format devs;
    let base = Vdev_fault.blocks_written fault in
    (match cut with
    | Some c ->
        Vdev_fault.plan_crash fault ?mode ~after_blocks:c ()
    | None -> ());
    let now = ref 0.0 in
    let queued = io_depth > 1 in
    let pump () = if queued then settle ~now ~io_depth devs in
    let st = ref Fs_model.empty in
    let events_rev = ref [] and opn = ref 0 and durable = ref 0 in
    let crashed =
      try
        let fs = S.mount devs in
        let fsops = make_fsops fs in
        if queued then
          List.iter
            (fun d -> Vdev.set_mode d (Vdev.Queued (fun () -> !now)))
            devs;
        drive fsops ~pump ops ~st ~events_rev ~opn ~durable;
        (* final flush outside the op list: its blocks extend the
           crash-point space, but the frontier stays at the last
           recorded Sync unless this barrier completes too *)
        fsops.Fsops.sync ();
        durable := !opn;
        false
      with Vdev.Crashed -> true
    in
    List.iter
      (fun d ->
        (try ignore (Vdev.drain d) with Vdev.Crashed -> ());
        Vdev.set_mode d Vdev.Direct)
      devs;
    {
      crashed;
      upto = !opn;
      durable = !durable;
      events = List.rev !events_rev;
      total = Vdev_fault.blocks_written fault - base;
      fault;
      devs;
    }

  (* Reboot, recover, fsck, walk, refinement-check.  [None] = clean. *)
  let verify ~bs ~events ~durable ~upto ~fault ~devs =
    Vdev_fault.reboot fault;
    match (try Ok (S.recover devs) with e -> Error e) with
    | Error e -> Some ("recover", Printexc.to_string e)
    | Ok fs2 -> (
        match S.fsck_errors fs2 with
        | _ :: _ as errs -> Some ("fsck", String.concat "; " errs)
        | [] -> (
            let model_dirs = Fs_model.dirs_of_events events ~upto in
            match
              try
                Ok
                  (Fs_model.walk ~root:S.root
                     ~readdir:(fun ino -> S.readdir fs2 ino)
                     ~file_size:(fun ino -> S.file_size fs2 ino)
                     ~read:(fun ino ~off ~len -> S.read fs2 ino ~off ~len)
                     ~model_dirs)
              with e -> Error e
            with
            | Error e -> Some ("walk", Printexc.to_string e)
            | Ok (files, dirs) -> (
                match
                  Fs_model.check ~bs ~events ~durable ~upto ~files ~dirs
                with
                | [] -> None
                | divs -> Some ("oracle", String.concat "; " divs))))

  let select_points ?cuts ~stride total =
    match cuts with
    | Some cs -> List.filter (fun c -> c >= 0 && c < total) cs
    | None ->
        let rec gen i acc =
          if i >= total then acc else gen (i + stride) (i :: acc)
        in
        let pts = gen 0 [] in
        let pts =
          if total > 0 && not (List.mem (total - 1) pts) then
            (total - 1) :: pts
          else pts
        in
        List.rev pts

  (* Replay modes keyed by (seed, cut), not by enumeration position, so
     a single (seed, seq, cut) triple replays bit-identically no matter
     which other points ran. *)
  let mode_for ~seed cut =
    let r = Prng.create ~seed:(seed lxor 0x1fe3a9 lxor (cut * 0x85ebca6b)) in
    [| Vdev_fault.Torn; Dropped; Reordered |].(Prng.int r 3)

  let check_ops ?(blocks = 1024) ?(io_depth = 4) ?(stride = 1) ?cuts
      ?(seed = 0) ?(seq = 0) ops =
    if stride < 1 then invalid_arg "Refine.check_ops: stride";
    let divergences = ref [] in
    let div cut stage detail =
      divergences := { cut; stage; detail } :: !divergences
    in
    let reference =
      try Some (run_once ~blocks ~seed ~io_depth ops)
      with Semantics m ->
        div (-1) "semantics" m;
        None
    in
    match reference with
    | None ->
        {
          subject = S.subject_name;
          seed;
          seq;
          ops = List.length ops;
          total_blocks = 0;
          points = 0;
          crashes = 0;
          divergences = List.rev !divergences;
        }
    | Some r ->
        let bs = (List.hd r.devs).Vdev.block_size in
        let points = select_points ?cuts ~stride r.total in
        let crashes = ref 0 in
        List.iter
          (fun cut ->
            let mode = mode_for ~seed cut in
            match
              try Ok (run_once ~blocks ~seed ~io_depth ~cut ~mode ops)
              with Semantics m -> Error m
            with
            | Error m -> div cut "semantics" m
            | Ok replay ->
                if replay.crashed then incr crashes
                else
                  div cut "replay"
                    "power cut never fired (non-deterministic replay?)";
                (match
                   verify ~bs ~events:replay.events ~durable:replay.durable
                     ~upto:replay.upto ~fault:replay.fault ~devs:replay.devs
                 with
                | None -> ()
                | Some (stage, detail) -> div cut stage detail))
          points;
        {
          subject = S.subject_name;
          seed;
          seq;
          ops = List.length ops;
          total_blocks = r.total;
          points = List.length points;
          crashes = !crashes;
          divergences = List.rev !divergences;
        }

  let check_seq ?blocks ?io_depth ?stride ?cuts ?(seed = 0) ?(nops = 60) ~seq
      () =
    let ops = Opgen.sequence ~seed ~seq ~nops in
    check_ops ?blocks ?io_depth ?stride ?cuts ~seed ~seq ops

  (* ---------------- the serving-engine path ---------------- *)

  (* Same enumeration, but the op stream is the request-serving engine's
     own generated load (group commit, admission control, io-depth) and
     the events come from a {!Fs_model.Recorder} shadowing the Fsops
     surface the engine drives. *)
  let engine_once ~blocks ~seed ?cut ?mode ecfg =
    let fault, devs = fresh_fault ~blocks ~seed in
    S.format devs;
    let base = Vdev_fault.blocks_written fault in
    (match cut with
    | Some c -> Vdev_fault.plan_crash fault ?mode ~after_blocks:c ()
    | None -> ());
    let recorder = Fs_model.Recorder.create ~root:S.root in
    let crashed =
      try
        let fs = S.mount devs in
        ignore
          (Engine.run ecfg (Fs_model.Recorder.instrument recorder (make_fsops fs)));
        false
      with Vdev.Crashed -> true
    in
    List.iter
      (fun d ->
        (try ignore (Vdev.drain d) with Vdev.Crashed -> ());
        Vdev.set_mode d Vdev.Direct)
      devs;
    {
      crashed;
      upto = Fs_model.Recorder.op recorder;
      durable = Fs_model.Recorder.durable recorder;
      events = Fs_model.Recorder.events recorder;
      total = Vdev_fault.blocks_written fault - base;
      fault;
      devs;
    }

  let check_engine ?(blocks = 1024) ?(stride = 1) ?cuts ?(seed = 0)
      (ecfg : Engine.config) =
    if stride < 1 then invalid_arg "Refine.check_engine: stride";
    let reference = engine_once ~blocks ~seed ecfg in
    let bs = (List.hd reference.devs).Vdev.block_size in
    let points = select_points ?cuts ~stride reference.total in
    let crashes = ref 0 in
    let divergences = ref [] in
    let div cut stage detail =
      divergences := { cut; stage; detail } :: !divergences
    in
    List.iter
      (fun cut ->
        let mode = mode_for ~seed cut in
        let replay = engine_once ~blocks ~seed ~cut ~mode ecfg in
        if replay.crashed then incr crashes
        else div cut "replay" "power cut never fired (non-deterministic replay?)";
        match
          verify ~bs ~events:replay.events ~durable:replay.durable
            ~upto:replay.upto ~fault:replay.fault ~devs:replay.devs
        with
        | None -> ()
        | Some (stage, detail) -> div cut stage detail)
      points;
    {
      subject = S.subject_name;
      seed;
      seq = -1;
      ops = reference.upto;
      total_blocks = reference.total;
      points = List.length points;
      crashes = !crashes;
      divergences = List.rev !divergences;
    }
end
