(* The systems under refinement checking.  A SUBJECT is the shared
   DURABLE lifecycle plus the few facts a crash harness needs: how many
   devices to create, and how to fsck the recovered instance.  The
   crashtest library re-exports these so both harnesses drive the exact
   same subject definitions. *)

module Vdev = Lfs_disk.Vdev

module type SUBJECT = sig
  include Lfs_core.Fs_intf.DURABLE

  val subject_name : string
  val async_writes : bool
  val ndevices : int
  val fsck_errors : t -> string list
end

(* Single-device subjects take exactly one device. *)
let the_dev = function
  | [ d ] -> d
  | devs ->
      invalid_arg
        (Printf.sprintf "model subject: expected 1 device, got %d"
           (List.length devs))

(* Small configurations keep segments and write buffers tight so even a
   short workload crosses many flush and checkpoint boundaries — the
   interesting crash points. *)

let lfs_config =
  {
    Lfs_core.Config.default with
    max_inodes = 512;
    seg_blocks = 32;
    write_buffer_blocks = 16;
    clean_start = 3;
    clean_stop = 6;
    segs_per_pass = 3;
    cache_blocks = 128;
  }

module Lfs = struct
  include Lfs_core.Fs

  let subject_name = "lfs"
  let async_writes = true
  let ndevices = 1
  let format devs = Lfs_core.Fs.format (the_dev devs) lfs_config
  let mount devs = Lfs_core.Fs.mount (the_dev devs)
  let recover devs = fst (Lfs_core.Fs.recover (the_dev devs))
  let fsck_errors fs = (Lfs_core.Fsck.check fs).Lfs_core.Fsck.errors
end

module type HEAD_SHAPE = sig
  val heads : int
end

(* Multi-head LFS on one device: the same tight geometry, with the log
   split across N write heads.  The crash-point sweep then enumerates
   cuts inside every head's summary chain, exercising the merged
   roll-forward and the global torn-write cutoff. *)
module Lfs_heads (P : HEAD_SHAPE) = struct
  include Lfs_core.Fs

  let subject_name = Printf.sprintf "lfs:heads=%d" P.heads
  let async_writes = true
  let ndevices = 1

  let config = { lfs_config with log_heads = P.heads }

  let format devs = Lfs_core.Fs.format (the_dev devs) config
  let mount devs = Lfs_core.Fs.mount (the_dev devs)
  let recover devs = fst (Lfs_core.Fs.recover (the_dev devs))
  let fsck_errors fs = (Lfs_core.Fsck.check fs).Lfs_core.Fsck.errors
end

let ffs_config =
  {
    Lfs_ffs.Ffs.default_config with
    cg_blocks = 256;
    inodes_per_cg = 128;
    write_buffer_blocks = 16;
    cache_blocks = 64;
  }

module Ffs = struct
  include Lfs_ffs.Ffs

  let subject_name = "ffs"
  let async_writes = false
  let ndevices = 1
  let format devs = Lfs_ffs.Ffs.format (the_dev devs) ffs_config
  let mount devs = Lfs_ffs.Ffs.mount (the_dev devs)

  (* FFS has no roll-forward; post-crash "recovery" is a plain mount,
     and it draws no checkpoint/sync distinction either. *)
  let recover devs = Lfs_ffs.Ffs.mount (the_dev devs)
  let checkpoint t = Lfs_ffs.Ffs.sync t
  let fsck_errors _ = []
end

(* Tiered volume: device 0 is the fast child — which wears the harness's
   fault layer, so the crash-point space covers the placement-map writes
   and promotion copies alongside ordinary log traffic — and device 1 is
   the slow child.  A tight demotion age plus promotion-on-2-reads makes
   short workloads migrate in both directions; [sync] runs one demotion
   step per durability barrier so the sweep enumerates cuts mid-demotion
   (the property under test: a crash there must never lose the only copy
   of a segment). *)
module Tier = struct
  include Lfs_core.Fs

  let subject_name = "tier"
  let async_writes = true
  let ndevices = 2

  let tier_config = { lfs_config with demote_age_s = 4.0; promote_reads = 2 }

  let two_devs = function
    | [ fast; slow ] -> (fast, slow)
    | devs ->
        invalid_arg
          (Printf.sprintf "tier subject: expected 2 devices, got %d"
             (List.length devs))

  let format devs =
    let fast, slow = two_devs devs in
    let ti = Lfs_shard.Spec.tier_volume ~config:tier_config ~fast ~slow in
    Lfs_core.Fs.format (Lfs_disk.Vdev_tier.vdev ti) tier_config

  let mount devs =
    let fast, slow = two_devs devs in
    let ti = Lfs_disk.Vdev_tier.load ~fast ~slow in
    Lfs_core.Fs.mount ~tier:ti (Lfs_disk.Vdev_tier.vdev ti)

  let recover devs =
    let fast, slow = two_devs devs in
    let ti = Lfs_disk.Vdev_tier.load ~fast ~slow in
    fst (Lfs_core.Fs.recover ~tier:ti (Lfs_disk.Vdev_tier.vdev ti))

  let sync fs =
    ignore (Lfs_core.Fs.demote_step ~max_segments:1 fs);
    Lfs_core.Fs.sync fs

  let fsck_errors fs = (Lfs_core.Fsck.check fs).Lfs_core.Fsck.errors
end

module type SHARD_SHAPE = sig
  val shards : int
  val policy : Lfs_shard.Shard_router.policy
end

(* Every shard runs the same tight LFS config the single-disk subject
   uses, so per-shard crash points stay as dense as the LFS run's. *)
module Shard (P : SHARD_SHAPE) = struct
  include Lfs_shard.Shard_router

  let subject_name =
    Printf.sprintf "shard:%d:%s" P.shards
      (Lfs_shard.Shard_router.policy_name P.policy)

  let async_writes = true
  let ndevices = P.shards
  let format devs = Lfs_shard.Shard_router.format ~config:lfs_config devs

  let mount devs =
    Lfs_shard.Shard_router.mount ~config:lfs_config ~policy:P.policy devs

  let recover devs =
    fst (Lfs_shard.Shard_router.recover ~config:lfs_config ~policy:P.policy devs)

  let fsck_errors t =
    List.concat
      (List.init (shard_count t) (fun i ->
           List.map
             (Printf.sprintf "shard%d: %s" i)
             (Lfs_core.Fsck.check (shard_fs t i)).Lfs_core.Fsck.errors))
end
