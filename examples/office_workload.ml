(* The paper's motivating workload (Section 2.2): office and engineering
   environments dominated by accesses to small files, where creation and
   deletion time is dominated by synchronous metadata writes in
   traditional file systems.

   This example runs the same burst of small-file activity against
   Sprite LFS and against the FFS baseline on identical (simulated)
   disks, and reports the disk time each needed.

   Run with:  dune exec examples/office_workload.exe *)

module W = Lfs_workload

let run_burst (fs : W.Fsops.t) =
  let before = W.Fsops.io_stats fs in
  (* A "compile-like" burst: sources, intermediate files that get
     deleted, and results, across a few directories. *)
  for d = 0 to 9 do
    ignore (fs.W.Fsops.mkdir_path (Printf.sprintf "/proj%d" d))
  done;
  for i = 0 to 499 do
    let dir = i mod 10 in
    let src = Printf.sprintf "/proj%d/mod%d.ml" dir i in
    let obj = Printf.sprintf "/proj%d/mod%d.cmo" dir i in
    let ino = fs.W.Fsops.create_path src in
    fs.W.Fsops.write ino ~off:0 (Bytes.make 2048 's');
    let ino_obj = fs.W.Fsops.create_path obj in
    fs.W.Fsops.write ino_obj ~off:0 (Bytes.make 4096 'o')
  done;
  (* Rebuild: delete all the intermediates and write fresh ones. *)
  for i = 0 to 499 do
    let dir_ino =
      Option.get (fs.W.Fsops.resolve (Printf.sprintf "/proj%d" (i mod 10)))
    in
    fs.W.Fsops.unlink ~dir:dir_ino (Printf.sprintf "mod%d.cmo" i);
    let ino = fs.W.Fsops.create_path (Printf.sprintf "/proj%d/mod%d.cmo" (i mod 10) i) in
    fs.W.Fsops.write ino ~off:0 (Bytes.make 4096 'O')
  done;
  fs.W.Fsops.sync ();
  let after = W.Fsops.io_stats fs in
  Lfs_disk.Io_stats.diff after before

let () =
  let geometry = Lfs_disk.Geometry.wren_iv ~blocks:16384 in
  let lfs = W.Fsops.fresh_lfs geometry in
  let ffs = W.Fsops.fresh_ffs geometry in
  let report (fs : W.Fsops.t) =
    let d = run_burst fs in
    Printf.printf "%-10s: %6.1f s of disk time, %6d IOs, %5d seeks\n"
      fs.W.Fsops.name d.Lfs_disk.Io_stats.busy_s
      (Lfs_disk.Io_stats.total_ios d)
      d.Lfs_disk.Io_stats.seeks;
    d.Lfs_disk.Io_stats.busy_s
  in
  print_endline "Office/engineering burst: 1000 creates, 500 deletes, 500 rewrites";
  let t_lfs = report lfs in
  let t_ffs = report ffs in
  Printf.printf "LFS needs %.1fx less disk time for the same work\n"
    (t_ffs /. t_lfs)
