(* Watching the segment cleaner at work (Sections 3.4-3.6).

   Runs a hot-and-cold overwrite workload on a small disk under the
   greedy and the cost-benefit cleaning policies, printing the segment
   utilisation distribution and the measured write cost — the live
   version of Figures 5-7.

   Run with:  dune exec examples/cleaner_tuning.exe *)

module Disk = Lfs_disk.Disk
module Fs = Lfs_core.Fs
module Prng = Lfs_util.Prng

let run_policy policy =
  let disk = Lfs_disk.Vdev.of_disk (Disk.create (Lfs_disk.Geometry.wren_iv ~blocks:16384)) in
  let config =
    {
      Lfs_core.Config.default with
      seg_blocks = 64;
      write_buffer_blocks = 64;
      cleaning_policy = policy;
    }
  in
  Fs.format disk config;
  let fs = Fs.mount disk in
  let prng = Prng.create ~seed:11 in
  (* Fill to ~75%: 120 files of ~384 KB total is about 48 MB. *)
  let nfiles = 120 in
  for i = 0 to nfiles - 1 do
    Fs.write_path fs
      (Printf.sprintf "/f%03d" i)
      (Bytes.make (380_000 + Prng.int prng 20_000) 'd')
  done;
  (* Hot-and-cold churn: 90% of writes hit 10% of the files. *)
  for _ = 1 to 1500 do
    let i =
      if Prng.bernoulli prng ~p:0.9 then Prng.int prng (nfiles / 10)
      else Prng.int prng nfiles
    in
    Fs.write_path fs
      (Printf.sprintf "/f%03d" i)
      (Bytes.make (380_000 + Prng.int prng 20_000) 'h')
  done;
  let stats = Fs.stats fs in
  Printf.printf
    "%-13s: write cost %.2f, %4d segments cleaned (%2.0f%% empty), avg u of \
     non-empty %.2f\n"
    (Lfs_core.Config.cleaning_policy_name policy)
    (Lfs_core.Fs_stats.write_cost stats)
    (Lfs_core.Fs_stats.segments_cleaned stats)
    (100.0
    *. float_of_int (Lfs_core.Fs_stats.segments_cleaned_empty stats)
    /. float_of_int (max 1 (Lfs_core.Fs_stats.segments_cleaned stats)))
    (Lfs_core.Fs_stats.avg_cleaned_u_nonempty stats);
  let h = Fs.segment_histogram fs ~bins:10 in
  Printf.printf "  segment utilisation distribution:\n";
  Array.iter
    (fun (x, f) ->
      Printf.printf "    %.2f %s\n" x
        (String.make (int_of_float (f *. 120.0)) '#'))
    (Lfs_util.Histogram.to_series h)

let () =
  print_endline "Hot-and-cold churn at ~75% utilisation, 256 KB segments:";
  List.iter run_policy
    [ Lfs_core.Config.Greedy; Lfs_core.Config.Cost_benefit ]
