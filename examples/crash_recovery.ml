(* Crash recovery walkthrough (Section 4): checkpoints, roll-forward and
   the directory operation log.

   The example cuts power at three nasty moments — mid data write,
   between a rename's directory updates, and during a checkpoint — and
   shows recovery restoring a consistent state each time.

   Run with:  dune exec examples/crash_recovery.exe *)

module Disk = Lfs_disk.Disk
module Vdev = Lfs_disk.Vdev
module Fs = Lfs_core.Fs

(* All crash plumbing goes through the [Vdev] view of the device: fault
   scheduling composes through whatever stack the file system is
   mounted on. *)
let small_fs () =
  let disk = Disk.create (Lfs_disk.Geometry.wren_iv ~blocks:8192) in
  let dev = Vdev.of_disk disk in
  Fs.format dev Lfs_core.Config.default;
  (dev, Fs.mount dev)

let check label dev =
  Vdev.reboot dev;
  let fs, report = Fs.recover dev in
  let fsck = Lfs_core.Fsck.check fs in
  Printf.printf "%-34s recovered %2d inodes, %2d dirops; fsck %s\n" label
    report.Fs.inodes_recovered report.Fs.dirops_applied
    (if Lfs_core.Fsck.is_clean fsck then "clean" else "BROKEN");
  fs

let () =
  (* 1. Power cut in the middle of flushing file data: the log write is
     torn; recovery ignores the incomplete tail and keeps everything up
     to the last complete log write. *)
  let dev, fs = small_fs () in
  Fs.write_path fs "/stable" (Bytes.of_string "checkpointed");
  Fs.checkpoint fs;
  Fs.write_path fs "/fresh" (Bytes.make 200_000 'x');
  Vdev.plan_crash dev ~after_blocks:20;
  (try Fs.sync fs with Vdev.Crashed -> ());
  let fs1 = check "crash mid data flush:" dev in
  Printf.printf "  /stable intact: %b; /fresh %s\n"
    (Fs.resolve fs1 "/stable" <> None)
    (match Fs.resolve fs1 "/fresh" with
    | Some ino -> Printf.sprintf "partially recovered (%d bytes)" (Fs.file_size fs1 ino)
    | None -> "not recovered (expected for a torn tail)");

  (* 2. Rename: the directory operation log makes it atomic.  After the
     crash the file is in exactly one of the two directories. *)
  let dev, fs = small_fs () in
  ignore (Fs.mkdir_path fs "/a");
  ignore (Fs.mkdir_path fs "/b");
  Fs.write_path fs "/a/file" (Bytes.of_string "payload");
  Fs.checkpoint fs;
  let a = Option.get (Fs.resolve fs "/a") in
  let b = Option.get (Fs.resolve fs "/b") in
  Fs.rename fs ~odir:a "file" ~ndir:b "file";
  Vdev.plan_crash dev ~after_blocks:6;
  (try Fs.sync fs with Vdev.Crashed -> ());
  let fs2 = check "crash during rename flush:" dev in
  let in_a = Fs.resolve fs2 "/a/file" <> None in
  let in_b = Fs.resolve fs2 "/b/file" <> None in
  Printf.printf "  in /a: %b, in /b: %b (exactly one: %b)\n" in_a in_b
    (in_a <> in_b);

  (* 3. Crash during the checkpoint-region write itself: the alternate
     region takes over (two regions, the newest valid one wins). *)
  let dev, fs = small_fs () in
  Fs.write_path fs "/one" (Bytes.of_string "1");
  Fs.checkpoint fs;
  Fs.write_path fs "/two" (Bytes.of_string "2");
  Fs.sync fs;
  (* /two is in the log; cut power while the checkpoint machinery is
     writing its metadata and region. *)
  Vdev.plan_crash dev ~after_blocks:3;
  (try Fs.checkpoint fs with Vdev.Crashed -> ());
  let fs3 = check "crash during checkpoint:" dev in
  Printf.printf "  /one intact: %b, /two recovered: %b\n"
    (Fs.resolve fs3 "/one" <> None)
    (Fs.resolve fs3 "/two" <> None)
