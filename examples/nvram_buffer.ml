(* The NVRAM write buffer (Section 2.1 of the paper): "write-buffering
   has the disadvantage of increasing the amount of data lost during a
   crash ... for applications that require better crash recovery,
   non-volatile RAM may be used for the write buffer."

   This example crashes an ordinary LFS and an NVRAM-backed LFS at the
   same point and compares what survives.

   Run with:  dune exec examples/nvram_buffer.exe *)

module Disk = Lfs_disk.Disk
module Fs = Lfs_core.Fs
module Nvram = Lfs_core.Nvram
module Nfs = Lfs_core.Nvram_fs

let fresh_disk () =
  let disk = Disk.create (Lfs_disk.Geometry.wren_iv ~blocks:8192) in
  Fs.format (Lfs_disk.Vdev.of_disk disk) Lfs_core.Config.default;
  disk

let files = List.init 8 (fun i -> (Printf.sprintf "/mail%d" i, 4000 + (i * 1000)))

let () =
  (* Plain LFS: acknowledged writes sit in the volatile file cache until
     the next flush; a power cut loses them. *)
  let disk = fresh_disk () in
  let fs = Fs.mount (Lfs_disk.Vdev.of_disk disk) in
  List.iter (fun (path, size) -> Fs.write_path fs path (Bytes.make size 'm')) files;
  (* power cut — nothing was synced *)
  let fs', _ = Fs.recover (Lfs_disk.Vdev.of_disk disk) in
  let survived =
    List.length (List.filter (fun (p, _) -> Fs.resolve fs' p <> None) files)
  in
  Printf.printf "plain LFS:  %d of %d acknowledged files survive the crash\n"
    survived (List.length files);

  (* NVRAM-backed LFS: every operation is journalled to battery-backed
     memory before being acknowledged; recovery replays the journal. *)
  let disk = fresh_disk () in
  let nvram = Nvram.create () in
  let nfs = Nfs.wrap (Fs.mount (Lfs_disk.Vdev.of_disk disk)) nvram in
  List.iter (fun (path, size) -> Nfs.write_path nfs path (Bytes.make size 'm')) files;
  Printf.printf "NVRAM journal holds %d bytes at the crash\n"
    (Nvram.used_bytes nvram);
  (* power cut *)
  let nfs', replay = Nfs.recover (Lfs_disk.Vdev.of_disk disk) nvram in
  let survived =
    List.length (List.filter (fun (p, _) -> Nfs.resolve nfs' p <> None) files)
  in
  Printf.printf "NVRAM LFS:  %d of %d survive (%d journal records replayed)\n"
    survived (List.length files) replay.Nfs.replayed;
  let r = Lfs_core.Fsck.check (Nfs.fs nfs') in
  Format.printf "%a@." Lfs_core.Fsck.pp_report r
