(* Quickstart: create a log-structured file system on a simulated disk,
   use it like any file system, survive a power cut, and look at the
   statistics the paper is about.

   Run with:  dune exec examples/quickstart.exe *)

module Disk = Lfs_disk.Disk
module Fs = Lfs_core.Fs

let () =
  (* A 64 MB disk with the timing characteristics of the paper's
     Wren IV (1.3 MB/s, 17.5 ms average seek). *)
  let disk = Lfs_disk.Vdev.of_disk (Disk.create (Lfs_disk.Geometry.wren_iv ~blocks:16384)) in

  (* mkfs + mount. *)
  Fs.format disk Lfs_core.Config.default;
  let fs = Fs.mount disk in

  (* Ordinary file-system work, via the path helpers. *)
  ignore (Fs.mkdir_path fs "/home");
  ignore (Fs.mkdir_path fs "/home/alice");
  Fs.write_path fs "/home/alice/notes.txt"
    (Bytes.of_string "log-structured file systems write sequentially\n");
  Fs.write_path fs "/home/alice/todo.txt" (Bytes.of_string "read the paper");

  Printf.printf "notes.txt: %s"
    (Bytes.to_string (Option.get (Fs.read_path fs "/home/alice/notes.txt")));
  Printf.printf "/home/alice contains: %s\n"
    (String.concat ", "
       (List.map fst (Fs.readdir fs (Option.get (Fs.resolve fs "/home/alice")))));

  (* Rename is atomic — the directory operation log guarantees it even
     across crashes. *)
  let alice = Option.get (Fs.resolve fs "/home/alice") in
  Fs.rename fs ~odir:alice "todo.txt" ~ndir:alice "done.txt";

  (* Make everything durable, then write something more and cut the
     power before the next checkpoint... *)
  Fs.checkpoint fs;
  Fs.write_path fs "/home/alice/draft.txt" (Bytes.of_string "unsaved work");
  Fs.sync fs;
  (* ... the data is in the log but no checkpoint covers it.  A reboot
     with roll-forward recovers it from the log tail. *)
  let fs', report = Fs.recover disk in
  Printf.printf "recovered %d inodes from %d log writes after the crash\n"
    report.Fs.inodes_recovered report.Fs.writes_replayed;
  Printf.printf "draft.txt survived: %S\n"
    (Bytes.to_string (Option.get (Fs.read_path fs' "/home/alice/draft.txt")));

  (* The numbers the paper cares about. *)
  let stats = Fs.stats fs' in
  Printf.printf "disk utilisation %.1f%%, write cost %.2f, %d checkpoints\n"
    (100.0 *. Fs.utilization fs')
    (Lfs_core.Fs_stats.write_cost stats)
    (Lfs_core.Fs_stats.checkpoints stats);

  (* And the integrity check used throughout the test suite. *)
  let r = Lfs_core.Fsck.check fs' in
  Format.printf "%a@." Lfs_core.Fsck.pp_report r
