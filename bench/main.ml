(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Rosenblum & Ousterhout, SOSP 1991).

   Usage:
     dune exec bench/main.exe            # everything except `micro`
     dune exec bench/main.exe -- fig4 table2 ...
     dune exec bench/main.exe -- quick   # reduced sweeps for smoke runs
     dune exec bench/main.exe -- micro   # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --metrics fig8 stripe
                                         # dump the Lfs_obs registry at
                                         # phase boundaries

   Absolute numbers come from the calibrated disk/CPU models (Wren IV +
   Sun-4/260); the shapes are what reproduce the paper. *)

module Table = Lfs_util.Table
module Plot = Lfs_util.Plot
module Histogram = Lfs_util.Histogram
module Sim = Lfs_sim.Simulator
module Access = Lfs_sim.Access
module Csim = Lfs_sim.Config_sim
module W = Lfs_workload

let quick = ref false
let metrics = ref false

(* With --metrics, dump a workload's observability registry (per-layer
   IO, op latency, cleaner and checkpoint stats) at phase boundaries. *)
let dump_metrics ?(title = "metrics") = function
  | None -> ()
  | Some m ->
      if !metrics then
        Printf.printf "\n%s" (Lfs_obs.Metrics.report ~title m)

let header title paper =
  Printf.printf "\n==== %s ====\n" title;
  Printf.printf "Paper: %s\n\n" paper

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)

(* ------------------------------------------------------------------ *)
(* Figure 3: analytic write cost vs u                                   *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "Figure 3 - write cost as a function of u (analytic)"
    "LFS curve 2/(1-u); FFS today ~10; FFS improved ~4; LFS beats FFS \
     today below u=0.8 and improved FFS below u=0.5";
  let series = Lfs_sim.Write_cost.series ~points:20 () in
  let flat v = Array.map (fun (u, _) -> (u, v)) series in
  Plot.print ~y_max:14.0 ~x_label:"fraction alive in segment cleaned (u)"
    ~title:"write cost"
    [
      { Plot.label = "LFS (2/(1-u))"; points = series };
      { Plot.label = "FFS today"; points = flat Lfs_sim.Write_cost.ffs_today };
      { Plot.label = "FFS improved"; points = flat Lfs_sim.Write_cost.ffs_improved };
    ];
  let crossover target =
    match Array.find_opt (fun (_, c) -> c > target) series with
    | Some (u, _) -> u
    | None -> 1.0
  in
  Printf.printf
    "Crossovers: LFS beats FFS-today below u=%.2f, FFS-improved below u=%.2f\n"
    (crossover Lfs_sim.Write_cost.ffs_today)
    (crossover Lfs_sim.Write_cost.ffs_improved)

(* ------------------------------------------------------------------ *)
(* Figures 4-7: the cleaning-policy simulator                           *)
(* ------------------------------------------------------------------ *)

let sim_base () =
  if !quick then
    { Sim.default_params with warmup_writes = 600_000; measured_writes = 200_000 }
  else Sim.default_params

let greedy_in = { Sim.selection = Csim.Greedy; grouping = Csim.In_order }
let greedy_age = { Sim.selection = Csim.Greedy; grouping = Csim.Age_sort }
let cb_age = { Sim.selection = Csim.Cost_benefit; grouping = Csim.Age_sort }

let sweep params =
  let points = if !quick then 5 else 8 in
  Sim.sweep_utilization ~points ~lo:0.15 ~hi:0.9 params

let cost_points results =
  Array.of_list (List.map (fun (u, r) -> (u, r.Sim.write_cost)) results)

let fig4 () =
  header
    "Figure 4 - simulated write cost vs disk capacity utilisation \
     (greedy cleaner)"
    "LFS uniform ~5.5 at 75%; hot-and-cold (greedy+age-sort) is WORSE \
     than uniform - locality hurts the greedy policy";
  let base = sim_base () in
  let uniform = sweep { base with pattern = Access.Uniform; policy = greedy_in } in
  let hotcold =
    sweep { base with pattern = Access.default_hot_cold; policy = greedy_age }
  in
  let novar =
    Array.init 16 (fun i ->
        let u = 0.9 *. float_of_int i /. 15.0 in
        (u, Lfs_sim.Write_cost.lfs ~u))
  in
  Plot.print ~y_max:14.0 ~x_label:"disk capacity utilisation"
    ~title:"write cost (simulator)"
    [
      { Plot.label = "no variance (2/(1-u))"; points = novar };
      { Plot.label = "LFS uniform (greedy)"; points = cost_points uniform };
      { Plot.label = "LFS hot-and-cold (greedy+age)"; points = cost_points hotcold };
      { Plot.label = "FFS today"; points = [| (0.0, 10.0); (0.9, 10.0) |] };
      { Plot.label = "FFS improved"; points = [| (0.0, 4.0); (0.9, 4.0) |] };
    ];
  Table.print ~title:"Write cost by utilisation"
    ~header:[ "util"; "uniform"; "hot-and-cold"; "no-variance" ]
    (List.map2
       (fun (u, a) (_, b) ->
         [
           Table.fmt_float u;
           Table.fmt_float a.Sim.write_cost;
           Table.fmt_float b.Sim.write_cost;
           Table.fmt_float (Lfs_sim.Write_cost.lfs ~u);
         ])
       uniform hotcold)

let print_histogram_table title rows =
  Table.print ~title
    ~header:("utilisation" :: List.map fst rows)
    (List.init 10 (fun i ->
         let lo = float_of_int i /. 10.0 in
         Printf.sprintf "%.1f-%.1f" lo (lo +. 0.1)
         :: List.map
              (fun (_, h) ->
                let total = ref 0.0 in
                Array.iter
                  (fun (x, f) ->
                    if x >= lo && x < lo +. 0.1 then total := !total +. f)
                  (Histogram.to_series h);
                pct !total)
              rows))

let fig5 () =
  header "Figure 5 - segment utilisation distributions, greedy cleaner @75%"
    "hot-and-cold is skewed toward the cleaning point (~0.7-0.8); \
     uniform is broader and lower";
  let base = { (sim_base ()) with utilization = 0.75 } in
  let uni = Sim.run { base with pattern = Access.Uniform; policy = greedy_in } in
  let hc =
    Sim.run { base with pattern = Access.default_hot_cold; policy = greedy_age }
  in
  Plot.print ~x_label:"segment utilisation" ~title:"fraction of segments"
    [
      { Plot.label = "uniform"; points = Histogram.to_series uni.Sim.cleaner_histogram };
      { Plot.label = "hot-and-cold"; points = Histogram.to_series hc.Sim.cleaner_histogram };
    ];
  print_histogram_table "Cleaner-visible segment utilisation"
    [ ("uniform", uni.Sim.cleaner_histogram); ("hot-and-cold", hc.Sim.cleaner_histogram) ];
  Printf.printf "Avg cleaned u: uniform %.2f, hot-and-cold %.2f\n"
    uni.Sim.avg_cleaned_u hc.Sim.avg_cleaned_u

let fig6 () =
  header "Figure 6 - segment utilisation distribution with cost-benefit @75%"
    "cost-benefit yields a bimodal distribution: cold segments cleaned \
     around 75% utilisation, hot around 15%";
  let base =
    { (sim_base ()) with utilization = 0.75; pattern = Access.default_hot_cold }
  in
  let greedy = Sim.run { base with policy = greedy_age } in
  let cb = Sim.run { base with policy = cb_age } in
  Plot.print ~x_label:"segment utilisation" ~title:"fraction of segments"
    [
      { Plot.label = "LFS cost-benefit"; points = Histogram.to_series cb.Sim.cleaner_histogram };
      { Plot.label = "LFS greedy"; points = Histogram.to_series greedy.Sim.cleaner_histogram };
    ];
  print_histogram_table "Cleaner-visible segment utilisation"
    [ ("cost-benefit", cb.Sim.cleaner_histogram); ("greedy", greedy.Sim.cleaner_histogram) ];
  Printf.printf "Avg cleaned u: cost-benefit %.2f vs greedy %.2f\n"
    cb.Sim.avg_cleaned_u greedy.Sim.avg_cleaned_u

let fig7 () =
  header "Figure 7 - write cost including the cost-benefit policy"
    "cost-benefit is substantially better than greedy for hot-and-cold, \
     especially above 60% utilisation (paper: ~7 vs ~14 at 90%)";
  let base = { (sim_base ()) with pattern = Access.default_hot_cold } in
  let greedy = sweep { base with policy = greedy_age } in
  let cb = sweep { base with policy = cb_age } in
  Plot.print ~y_max:14.0 ~x_label:"disk capacity utilisation"
    ~title:"write cost (simulator)"
    [
      { Plot.label = "LFS greedy"; points = cost_points greedy };
      { Plot.label = "LFS cost-benefit"; points = cost_points cb };
      { Plot.label = "FFS today"; points = [| (0.0, 10.0); (0.9, 10.0) |] };
      { Plot.label = "FFS improved"; points = [| (0.0, 4.0); (0.9, 4.0) |] };
    ];
  Table.print ~title:"Write cost by utilisation (hot-and-cold)"
    ~header:[ "util"; "greedy"; "cost-benefit"; "improvement" ]
    (List.map2
       (fun (u, g) (_, c) ->
         [
           Table.fmt_float u;
           Table.fmt_float g.Sim.write_cost;
           Table.fmt_float c.Sim.write_cost;
           pct (1.0 -. (c.Sim.write_cost /. g.Sim.write_cost));
         ])
       greedy cb)

(* ------------------------------------------------------------------ *)
(* Figure 8: small-file performance                                     *)
(* ------------------------------------------------------------------ *)

(* Sprite LFS packs small files tightly in the log (the paper's 17%-busy
   create phase implies ~1 KB of log per 1 KB file), which we model with
   a 1 KB-block LFS; SunOS FFS runs with 4 KB blocks. *)
let fig8_lfs () =
  let geom =
    { (Lfs_disk.Geometry.wren_iv ~blocks:131072) with block_size = 1024 }
  in
  let disk = Lfs_disk.Vdev.of_disk (Lfs_disk.Disk.create geom) in
  let config =
    {
      Lfs_core.Config.default with
      block_size = 1024;
      seg_blocks = 1024;
      write_buffer_blocks = 1024;
      cache_blocks = 16384;
      max_inodes = 32768;
    }
  in
  Lfs_core.Fs.format disk config;
  W.Fsops.of_lfs (Lfs_core.Fs.mount disk)

let fig8_ffs () = W.Fsops.fresh_ffs (Lfs_disk.Geometry.wren_iv ~blocks:32768)

let fig8 () =
  header "Figure 8 - small-file performance (10000 x 1 KB create/read/delete)"
    "LFS ~10x SunOS for create and delete; comparable for read; LFS \
     create is CPU-bound (disk ~17% busy) so it scales with CPU speed, \
     SunOS is disk-bound (~85%) and does not";
  let p =
    if !quick then { W.Smallfile.default_params with nfiles = 2000 }
    else W.Smallfile.default_params
  in
  let lfs_ops = fig8_lfs () in
  let lfs =
    W.Smallfile.run
      ~on_phase:(fun ph ->
        dump_metrics
          ~title:
            ("fig8 LFS after " ^ W.Smallfile.phase_name ph.W.Smallfile.phase)
          (lfs_ops.W.Fsops.metrics ()))
      p lfs_ops
  in
  let ffs = W.Smallfile.run p (fig8_ffs ()) in
  let row (r : W.Smallfile.result) =
    r.W.Smallfile.fs_name
    :: List.concat_map
         (fun (ph : W.Smallfile.phase_result) ->
           [
             Printf.sprintf "%.0f/s" ph.W.Smallfile.files_per_sec;
             pct ph.W.Smallfile.disk_busy_frac;
           ])
         r.W.Smallfile.phases
  in
  Table.print ~title:"Figure 8(a): files/sec and disk busy fraction"
    ~header:[ "system"; "create"; "busy"; "read"; "busy"; "delete"; "busy" ]
    [ row lfs; row ffs ];
  Table.print
    ~title:"Figure 8(b): predicted create rate on faster CPUs (same disk)"
    ~header:[ "system"; "Sun4"; "2*Sun4"; "4*Sun4" ]
    (List.map
       (fun (r : W.Smallfile.result) ->
         r.W.Smallfile.fs_name
         :: List.map
              (fun k ->
                Printf.sprintf "%.0f/s"
                  (W.Smallfile.predict_create p r ~cpu_multiple:k))
              [ 1.0; 2.0; 4.0 ])
       [ lfs; ffs ]);
  let rate phase (r : W.Smallfile.result) =
    match
      List.find_opt (fun ph -> ph.W.Smallfile.phase = phase) r.W.Smallfile.phases
    with
    | Some ph -> ph.W.Smallfile.files_per_sec
    | None -> 0.0
  in
  Printf.printf "Speedups LFS/FFS: create %.1fx, read %.1fx, delete %.1fx\n"
    (rate W.Smallfile.Create lfs /. rate W.Smallfile.Create ffs)
    (rate W.Smallfile.Read lfs /. rate W.Smallfile.Read ffs)
    (rate W.Smallfile.Delete lfs /. rate W.Smallfile.Delete ffs)

(* ------------------------------------------------------------------ *)
(* Figure 9: large-file performance                                     *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  header
    "Figure 9 - large-file performance (seq write/read, random \
     write/read, seq reread)"
    "LFS faster for all writes (random writes become sequential); equal \
     random reads; slower only for sequential reread of a randomly \
     written file";
  let p =
    if !quick then { W.Largefile.default_params with file_mb = 8 }
    else W.Largefile.default_params
  in
  let geom = Lfs_disk.Geometry.wren_iv ~blocks:(p.W.Largefile.file_mb * 256 * 5) in
  let lfs = W.Largefile.run p (W.Fsops.fresh_lfs geom) in
  let ffs = W.Largefile.run p (W.Fsops.fresh_ffs geom) in
  (* "A newer version of SunOS groups writes [16] and should therefore
     have performance equivalent to Sprite LFS" — test that claim. *)
  let clustered =
    W.Largefile.run p
      (W.Fsops.fresh_ffs
         ~config:
           { Lfs_ffs.Ffs.default_config with Lfs_ffs.Ffs.cluster_writes = true }
         geom)
  in
  let clustered =
    { clustered with W.Largefile.fs_name = "SunOS + clustering" }
  in
  let row (r : W.Largefile.result) =
    r.W.Largefile.fs_name
    :: List.map
         (fun (ph : W.Largefile.phase_result) ->
           Printf.sprintf "%.0f" ph.W.Largefile.kbytes_per_sec)
         r.W.Largefile.phases
  in
  Table.print ~title:"kilobytes/sec per phase"
    ~header:
      [ "system"; "write seq"; "read seq"; "write rand"; "read rand"; "reread seq" ]
    [ row lfs; row ffs; row clustered ];
  let phase_rate name (r : W.Largefile.result) =
    match
      List.find_opt (fun ph -> ph.W.Largefile.phase = name) r.W.Largefile.phases
    with
    | Some ph -> ph.W.Largefile.kbytes_per_sec
    | None -> 0.0
  in
  Printf.printf
    "Random-write speedup LFS/FFS: %.1fx; reread penalty FFS/LFS: %.1fx\n"
    (phase_rate W.Largefile.Rand_write lfs /. phase_rate W.Largefile.Rand_write ffs)
    (phase_rate W.Largefile.Reread ffs /. phase_rate W.Largefile.Reread lfs)

(* ------------------------------------------------------------------ *)
(* Table 1: data-structure inventory (documentation check)              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1 - on-disk data structures"
    "inode, inode map, indirect block, segment summary, segment usage \
     table, superblock, checkpoint region, directory change log";
  Table.print
    ~header:[ "structure"; "location"; "module" ]
    [
      [ "Inode (10 direct + indirect + dbl-indirect)"; "log"; "Lfs_core.Inode" ];
      [ "Inode map (location, version, atime)"; "log"; "Lfs_core.Inode_map" ];
      [ "Indirect block"; "log"; "Lfs_core.Filemap" ];
      [ "Segment summary"; "log"; "Lfs_core.Summary" ];
      [ "Segment usage table"; "log"; "Lfs_core.Seg_usage" ];
      [ "Superblock"; "fixed"; "Lfs_core.Superblock" ];
      [ "Checkpoint region (x2, alternating)"; "fixed"; "Lfs_core.Checkpoint" ];
      [ "Directory change log"; "log"; "Lfs_core.Dir_log" ];
    ];
  print_endline
    "Note: as in Sprite LFS, there is neither a free-block list nor a bitmap."

(* ------------------------------------------------------------------ *)
(* Table 2 + Figure 10 + Table 4: production file systems               *)
(* ------------------------------------------------------------------ *)

let production_results = ref []

let run_production () =
  if !production_results = [] then begin
    let scale = if !quick then 0.5 else 1.0 in
    production_results :=
      List.map (fun spec -> W.Production.run ~scale spec) W.Production.all
  end;
  !production_results

let table2 () =
  header "Table 2 - cleaning statistics of five production file systems"
    "write costs 1.2-1.6 - far below the simulator's prediction at the \
     same utilisation; many cleaned segments are empty; u far below the \
     disk average";
  let results = run_production () in
  Table.print
    ~header:
      [ "file system"; "avg file"; "in use"; "segs cleaned"; "empty"; "avg u"; "write cost" ]
    (List.map
       (fun (r : W.Production.result) ->
         [
           r.W.Production.spec.W.Production.name;
           Printf.sprintf "%.1f KB" (r.W.Production.avg_file_size /. 1024.0);
           pct r.W.Production.in_use;
           string_of_int r.W.Production.segments_cleaned;
           pct r.W.Production.empty_fraction;
           Table.fmt_float r.W.Production.avg_nonempty_u;
           Table.fmt_float r.W.Production.write_cost;
         ])
       results);
  List.iter
    (fun (r : W.Production.result) ->
      let u = r.W.Production.in_use in
      let predicted =
        if u < 0.2 then 1.3 else Lfs_sim.Write_cost.lfs ~u:(Float.max 0.05 (u -. 0.25))
      in
      Printf.printf "  %-12s measured %.2f vs simulator-style prediction ~%.1f\n"
        r.W.Production.spec.W.Production.name r.W.Production.write_cost predicted)
    results

let fig10 () =
  header "Figure 10 - /user6 segment utilisation snapshot"
    "strongly bimodal: many full segments and many empty ones";
  match run_production () with
  | user6 :: _ ->
      Plot.print ~x_label:"segment utilisation" ~title:"fraction of segments"
        [ { Plot.label = "/user6"; points = Histogram.to_series user6.W.Production.histogram } ];
      print_histogram_table "/user6 distribution"
        [ ("/user6", user6.W.Production.histogram) ]
  | [] -> ()

let table4 () =
  header "Table 4 - disk space and log bandwidth by block type (/user6)"
    ">99% of live data is file data + indirect blocks; metadata is a \
     much larger share of the log bandwidth (~13%) because the short \
     checkpoint interval rewrites it constantly";
  match run_production () with
  | user6 :: _ ->
      let live = user6.W.Production.live_breakdown in
      let bw = user6.W.Production.log_bandwidth in
      Table.print
        ~header:[ "block type"; "live data"; "log bandwidth" ]
        (List.map
           (fun kind ->
             [
               Lfs_core.Types.block_kind_name kind;
               Printf.sprintf "%.1f%%" (100.0 *. List.assoc kind live);
               Printf.sprintf "%.1f%%" (100.0 *. List.assoc kind bw);
             ])
           Lfs_core.Types.all_block_kinds);
      let meta_bw =
        List.fold_left
          (fun acc (k, f) ->
            match k with
            | Lfs_core.Types.Inode_block | Lfs_core.Types.Imap
            | Lfs_core.Types.Seg_usage | Lfs_core.Types.Summary
            | Lfs_core.Types.Dir_log ->
                acc +. f
            | Lfs_core.Types.Data | Lfs_core.Types.Indirect
            | Lfs_core.Types.Dindirect ->
                acc)
          0.0 bw
      in
      Printf.printf "Metadata share of log bandwidth: %s\n" (pct meta_bw)
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Table 3: recovery time                                               *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3 - recovery time (seconds) by file size and data recovered"
    "recovery time is dominated by the number of files recovered: rows \
     1 KB >> 10 KB >> 100 KB; columns grow with data written";
  let grid = W.Recovery_bench.table3 ~disk_mb:(if !quick then 96 else 160) () in
  let cell file_kb data_mb =
    match List.find_opt (fun (f, d, _) -> f = file_kb && d = data_mb) grid with
    | Some (_, _, r) -> Printf.sprintf "%.2f" r.W.Recovery_bench.recovery_s
    | None -> "-"
  in
  Table.print
    ~header:[ "file size"; "1 MB"; "10 MB"; "50 MB" ]
    (List.map
       (fun file_kb ->
         Printf.sprintf "%d KB" file_kb
         :: List.map (fun mb -> cell file_kb mb) [ 1; 10; 50 ])
       [ 1; 10; 100 ]);
  (* The paper bounds recovery by checkpointing per volume: "maximum
     recovery time would grow by one second for every 70 seconds of
     checkpoint interval" at 150 MB/hour, i.e. ~1 s per 2.9 MB. *)
  (match
     ( List.find_opt (fun (f, d, _) -> f = 10 && d = 1) grid,
       List.find_opt (fun (f, d, _) -> f = 10 && d = 50) grid )
   with
  | Some (_, _, r1), Some (_, _, r50) ->
      Printf.printf
        "Marginal cost (10 KB files): %.2f s of recovery per MB written          since the checkpoint (paper: ~0.35 s/MB)
"
        ((r50.W.Recovery_bench.recovery_s -. r1.W.Recovery_bench.recovery_s)
        /. 49.0)
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* Recovery time under injected crashes (Table 3 companion)             *)
(* ------------------------------------------------------------------ *)

let crashsweep () =
  header "Recovery time vs log length under injected power failures"
    "recovery cost grows linearly with the log written since the \
     checkpoint and is unaffected by how the final write died (torn, \
     dropped or reordered): the tail checksum discards it either way";
  let disk_mb = if !quick then 96 else 160 in
  let sweep = if !quick then [ 1; 5 ] else [ 1; 2; 5; 10 ] in
  let cell data_mb mode =
    let r =
      W.Recovery_bench.run_crashed ~mode ~seed:data_mb
        { W.Recovery_bench.file_kb = 10; data_mb; disk_mb;
          cpu = W.Cpu_model.sun4_260 }
    in
    Printf.sprintf "%.2f (%d files)" r.W.Recovery_bench.recovery_s
      r.W.Recovery_bench.files_recovered
  in
  Table.print
    ~header:[ "log since ckpt"; "torn"; "dropped"; "reordered" ]
    (List.map
       (fun data_mb ->
         Printf.sprintf "%d MB" data_mb
         :: List.map (cell data_mb)
              [ Lfs_disk.Vdev_fault.Torn; Dropped; Reordered ])
       sweep)

(* ------------------------------------------------------------------ *)
(* The modified Andrew benchmark (Section 5's 20% observation)          *)
(* ------------------------------------------------------------------ *)

let andrew () =
  header "Modified Andrew benchmark - whole-application comparison"
    "Sprite LFS is only ~20% faster than SunOS: the benchmark has a CPU      utilisation over 80%, so removing the synchronous writes is all      that disk management can contribute";
  let p = W.Andrew.default_params in
  let geom = Lfs_disk.Geometry.wren_iv ~blocks:8192 in
  let lfs = W.Andrew.run p (W.Fsops.fresh_lfs geom) in
  let ffs = W.Andrew.run p (W.Fsops.fresh_ffs geom) in
  let row (r : W.Andrew.result) =
    r.W.Andrew.fs_name
    :: (List.map
          (fun (ph : W.Andrew.phase_result) ->
            Printf.sprintf "%.1f" ph.W.Andrew.elapsed_s)
          r.W.Andrew.phases
       @ [ Printf.sprintf "%.1f" r.W.Andrew.total_s; pct r.W.Andrew.cpu_utilization ])
  in
  Table.print ~title:"Elapsed seconds per phase"
    ~header:[ "system"; "mkdir"; "copy"; "stat"; "read"; "compile"; "total"; "cpu util" ]
    [ row lfs; row ffs ];
  Printf.printf "LFS speedup: %.0f%% (paper: ~20%%)
"
    (100.0 *. ((ffs.W.Andrew.total_s /. lfs.W.Andrew.total_s) -. 1.0))

(* ------------------------------------------------------------------ *)
(* Recovery vs fsck (Section 4's motivation, not a numbered figure)     *)
(* ------------------------------------------------------------------ *)

let fsckcmp () =
  header
    "Recovery vs fsck - LFS roll-forward against a full Unix      consistency scan"
    "Section 4: Unix must scan all metadata on disk (tens of minutes,      growing with disk size); LFS examines only the log written since      the last checkpoint";
  let busy disk = (Lfs_disk.Vdev.stats disk).Lfs_disk.Io_stats.busy_s in
  let fill_paths = 200 in
  let row disk_mb =
    let blocks = disk_mb * 256 in
    (* FFS: populate, then time the full fsck scan. *)
    let ffs_disk = Lfs_disk.Vdev.of_disk (Lfs_disk.Disk.create (Lfs_disk.Geometry.wren_iv ~blocks)) in
    Lfs_ffs.Ffs.format ffs_disk Lfs_ffs.Ffs.default_config;
    let ffs = Lfs_ffs.Ffs.mount ffs_disk in
    for i = 0 to fill_paths - 1 do
      Lfs_ffs.Ffs.write_path ffs (Printf.sprintf "/f%d" i)
        (Bytes.make ((disk_mb * 2048) / fill_paths) 'f')
    done;
    Lfs_ffs.Ffs.sync ffs;
    let t0 = busy ffs_disk in
    Lfs_ffs.Ffs.fsck_scan ffs;
    let ffs_fsck_s = busy ffs_disk -. t0 in
    (* LFS: same fill, checkpoint, 2 MB of post-checkpoint work, crash,
       time the roll-forward. *)
    let lfs_disk = Lfs_disk.Vdev.of_disk (Lfs_disk.Disk.create (Lfs_disk.Geometry.wren_iv ~blocks)) in
    Lfs_core.Fs.format lfs_disk
      { Lfs_core.Config.default with max_inodes = 4096 };
    let lfs = Lfs_core.Fs.mount lfs_disk in
    for i = 0 to fill_paths - 1 do
      Lfs_core.Fs.write_path lfs (Printf.sprintf "/f%d" i)
        (Bytes.make ((disk_mb * 2048) / fill_paths) 'f')
    done;
    Lfs_core.Fs.checkpoint lfs;
    for i = 0 to 15 do
      Lfs_core.Fs.write_path lfs (Printf.sprintf "/post%d" i)
        (Bytes.make 131072 'p')
    done;
    Lfs_core.Fs.sync lfs;
    let t0 = busy lfs_disk in
    let _fs, _report = Lfs_core.Fs.recover lfs_disk in
    let lfs_recover_s = busy lfs_disk -. t0 in
    [
      Printf.sprintf "%d MB" disk_mb;
      Printf.sprintf "%.1f s" ffs_fsck_s;
      Printf.sprintf "%.1f s" lfs_recover_s;
      Printf.sprintf "%.0fx" (ffs_fsck_s /. lfs_recover_s);
    ]
  in
  Table.print
    ~title:"Consistency-restore time after a crash (2 MB written since checkpoint)"
    ~header:[ "disk"; "FFS fsck scan"; "LFS roll-forward"; "speedup" ]
    (List.map row (if !quick then [ 32; 64 ] else [ 32; 64; 128; 256 ]));
  print_endline
    "FFS's scan grows with the disk; LFS's roll-forward depends only on
     the data written since the last checkpoint."

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                    *)
(* ------------------------------------------------------------------ *)

let ablate () =
  header "Ablations - cleaning policy, grouping, segment size"
    "(not in the paper; supports its design choices)";
  let base =
    { (sim_base ()) with utilization = 0.75; pattern = Access.default_hot_cold }
  in
  Table.print ~title:"Policy x grouping, hot-and-cold @75% (simulator)"
    ~header:[ "selection"; "grouping"; "write cost"; "avg cleaned u" ]
    (List.map
       (fun (sel, grp) ->
         let r = Sim.run { base with policy = { selection = sel; grouping = grp } } in
         [
           Csim.selection_name sel;
           Csim.grouping_name grp;
           Table.fmt_float r.Sim.write_cost;
           Table.fmt_float r.Sim.avg_cleaned_u;
         ])
       [
         (Csim.Greedy, Csim.In_order);
         (Csim.Greedy, Csim.Age_sort);
         (Csim.Cost_benefit, Csim.In_order);
         (Csim.Cost_benefit, Csim.Age_sort);
       ]);
  (* "We tried varying the degree of locality (e.g. 95% of accesses to
     5% of data) and found that performance got worse and worse as the
     locality increased" — Section 3.5, for the greedy cleaner. *)
  Table.print ~title:"Degree of locality, greedy+age-sort @75% (simulator)"
    ~header:[ "pattern"; "write cost (greedy)"; "write cost (cost-benefit)" ]
    (List.map
       (fun (label, pattern) ->
         let run sel =
           (Sim.run
              {
                base with
                pattern;
                policy = { selection = sel; grouping = Csim.Age_sort };
              })
             .Sim.write_cost
         in
         [
           label;
           Table.fmt_float (run Csim.Greedy);
           Table.fmt_float (run Csim.Cost_benefit);
         ])
       [
         ("uniform", Access.Uniform);
         ("80/20", Access.Hot_cold { hot_fraction = 0.2; hot_traffic = 0.8 });
         ("90/10", Access.default_hot_cold);
         ("95/5", Access.Hot_cold { hot_fraction = 0.05; hot_traffic = 0.95 });
       ]);
  Table.print ~title:"Segment size (uniform @75%, greedy)"
    ~header:[ "seg blocks"; "write cost" ]
    (List.map
       (fun spseg ->
         let r =
           Sim.run
             {
               base with
               pattern = Access.Uniform;
               policy = greedy_in;
               blocks_per_seg = spseg;
               nsegs = 256 * 256 / spseg;
             }
         in
         [ string_of_int spseg; Table.fmt_float r.Sim.write_cost ])
       [ 64; 128; 256; 512 ]);
  Table.print ~title:"Full FS: cleaning policy on the /user6 workload"
    ~header:[ "policy"; "write cost"; "avg cleaned u" ]
    (List.map
       (fun policy ->
         let spec = { W.Production.user6 with W.Production.seed = 777 } in
         let r = W.Production.run ~scale:0.5 ~policy spec in
         [
           Lfs_core.Config.cleaning_policy_name policy;
           Table.fmt_float r.W.Production.write_cost;
           Table.fmt_float r.W.Production.avg_nonempty_u;
         ])
       [
         Lfs_core.Config.Cost_benefit;
         Lfs_core.Config.Greedy;
         Lfs_core.Config.Age_only;
         Lfs_core.Config.Random_victim;
       ]);
  (* Section 3.4's untried idea: read only the live blocks of a victim
     instead of the whole segment. *)
  Table.print
    ~title:"Cleaner read policy on the /user6 workload (Section 3.4 footnote)"
    ~header:[ "read policy"; "cleaner blocks read"; "write cost" ]
    (List.map
       (fun cleaner_read ->
         let spec = { W.Production.user6 with W.Production.seed = 999 } in
         let r = W.Production.run ~scale:0.5 ~cleaner_read spec in
         [
           Lfs_core.Config.cleaner_read_policy_name cleaner_read;
           string_of_int r.W.Production.cleaner_blocks_read;
           Table.fmt_float r.W.Production.write_cost;
         ])
       [ Lfs_core.Config.Whole_segment; Lfs_core.Config.Live_blocks ]);
  (* Section 5.4: the paper blames its 13% metadata bandwidth on the
     "much too short" 30 s checkpoint interval. *)
  Table.print
    ~title:"Checkpoint interval vs metadata share of log bandwidth (/user6)"
    ~header:[ "interval (ops)"; "metadata bandwidth"; "write cost" ]
    (List.map
       (fun interval ->
         let spec =
           {
             W.Production.user6 with
             W.Production.seed = 888;
             checkpoint_interval_ops = interval;
           }
         in
         let r = W.Production.run ~scale:0.5 spec in
         let meta =
           List.fold_left
             (fun acc (k, f) ->
               match k with
               | Lfs_core.Types.Inode_block | Lfs_core.Types.Imap
               | Lfs_core.Types.Seg_usage | Lfs_core.Types.Summary
               | Lfs_core.Types.Dir_log ->
                   acc +. f
               | Lfs_core.Types.Data | Lfs_core.Types.Indirect
               | Lfs_core.Types.Dindirect ->
                   acc)
             0.0 r.W.Production.log_bandwidth
         in
         [
           string_of_int interval;
           pct meta;
           Table.fmt_float r.W.Production.write_cost;
         ])
       [ 25; 100; 500; 2000 ])

(* ------------------------------------------------------------------ *)
(* Vdev_stripe: log bandwidth vs spindle count                          *)
(* ------------------------------------------------------------------ *)

(* The paper's large-write regime is bandwidth-limited (Section 5.1);
   striping the log across N disks multiplies that bandwidth because
   every segment-sized transfer fans out into one contiguous transfer
   per spindle.  Modelled elapsed time is the busiest spindle (they
   work in parallel); the aggregated Io_stats come from the stripe's
   own Io_stats.merge-based [stats]. *)
let stripe () =
  header "Vdev_stripe - modelled log-write bandwidth vs spindle count"
    "RAID-0 under the log: sequential-log bandwidth scales with the     number of spindles";
  let data_mb = if !quick then 16 else 48 in
  let chunk = Bytes.make (1024 * 1024) 'w' in
  let row n =
    let disks =
      Array.init n (fun _ ->
          Lfs_disk.Disk.create (Lfs_disk.Geometry.wren_iv ~blocks:32768))
    in
    let dev = Lfs_disk.Vdev_stripe.create (Array.map Lfs_disk.Vdev.of_disk disks) in
    let config =
      { Lfs_core.Config.default with write_buffer_blocks = 256; max_inodes = 4096 }
    in
    Lfs_core.Fs.format dev config;
    let fs = Lfs_core.Fs.mount dev in
    (* The mount already registered the stripe itself; add a gauge set
       per spindle so the dump shows the fan-out. *)
    if !metrics then
      Array.iteri
        (fun i d ->
          Lfs_disk.Vdev.register_metrics
            ~prefix:(Printf.sprintf "vdev.spindle%d" i)
            (Lfs_core.Fs.metrics fs)
            (Lfs_disk.Vdev.of_disk d))
        disks;
    let before = Lfs_disk.Io_stats.copy (Lfs_disk.Vdev.stats dev) in
    let before_busy =
      Array.map (fun d -> (Lfs_disk.Disk.stats d).Lfs_disk.Io_stats.busy_s) disks
    in
    let ino = Lfs_core.Fs.create_path fs "/big" in
    for i = 0 to data_mb - 1 do
      Lfs_core.Fs.write fs ino ~off:(i * 1024 * 1024) chunk;
      if i mod 8 = 7 then Lfs_core.Fs.sync fs
    done;
    Lfs_core.Fs.sync fs;
    let agg = Lfs_disk.Io_stats.diff (Lfs_disk.Vdev.stats dev) before in
    let elapsed =
      (* spindles run in parallel: the busiest one bounds completion *)
      Array.to_list disks
      |> List.mapi (fun i d ->
             (Lfs_disk.Disk.stats d).Lfs_disk.Io_stats.busy_s -. before_busy.(i))
      |> List.fold_left Float.max 0.0
    in
    let mb_written =
      float_of_int (Lfs_disk.Io_stats.bytes_written ~block_size:4096 agg)
      /. (1024.0 *. 1024.0)
    in
    Printf.printf "  N=%d aggregated: %s\n" n
      (Format.asprintf "%a" Lfs_disk.Io_stats.pp agg);
    dump_metrics
      ~title:(Printf.sprintf "stripe N=%d" n)
      (Some (Lfs_core.Fs.metrics fs));
    [
      string_of_int n;
      Printf.sprintf "%.0f MB" mb_written;
      Printf.sprintf "%.1f s" elapsed;
      Printf.sprintf "%.2f MB/s" (mb_written /. elapsed);
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf "Log-write bandwidth, %d MB of large-file writes" data_mb)
    ~header:[ "spindles"; "log written"; "elapsed (busiest disk)"; "bandwidth" ]
    (List.map row [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* The serving engine: throughput vs concurrency (Figure 8's            *)
(* multi-client analogue)                                               *)
(* ------------------------------------------------------------------ *)

(* Sweep client counts over LFS and FFS behind the request-serving
   engine.  Group commit is the whole story: LFS batches the durable
   requests of concurrent sessions into shared log flushes, so its
   modelled disk time per op falls as concurrency grows, while FFS pays
   synchronous metadata IO per request and saturates. *)
let server () =
  header
    "Server - throughput and tail latency vs client count (serving engine)"
    "group commit amortises the log flush across concurrent clients: \
     LFS throughput scales with offered load while FFS saturates on \
     per-op synchronous writes; p95/p99 from the engine's latency \
     histograms";
  let module Engine = Lfs_server.Engine in
  let sweep = if !quick then [ 1; 4; 8 ] else [ 1; 2; 4; 8; 16 ] in
  let ops = if !quick then 50 else 100 in
  let p95_write m =
    match Lfs_obs.Metrics.value m "server.latency.write.s" with
    | Some (Lfs_obs.Metrics.Summary { p95; _ }) -> p95
    | _ -> Float.nan
  in
  let row fresh clients =
    let fs = fresh (Lfs_disk.Geometry.wren_iv ~blocks:16384) in
    let cfg =
      { Engine.default with Engine.clients; ops_per_client = ops }
    in
    let r = Engine.run cfg fs in
    dump_metrics
      ~title:(Printf.sprintf "server %s N=%d" r.Engine.fs_name clients)
      (Some r.Engine.metrics);
    [
      r.Engine.fs_name;
      string_of_int clients;
      Printf.sprintf "%.1f" r.Engine.throughput_ops_s;
      Printf.sprintf "%.2f"
        (1000.0 *. r.Engine.disk_s /. float_of_int r.Engine.completed);
      (if Float.is_nan r.Engine.mean_batch then "-"
       else Printf.sprintf "%.2f" r.Engine.mean_batch);
      Printf.sprintf "%.1f" (1000.0 *. p95_write r.Engine.metrics);
      string_of_int r.Engine.shed;
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf "%d ops/client, 50 ms think, group-commit window 10 ms"
         ops)
    ~header:
      [ "system"; "clients"; "ops/s"; "disk ms/op"; "mean batch";
        "p95 write ms"; "shed" ]
    (List.map (row W.Fsops.fresh_lfs) sweep
    @ List.map (row W.Fsops.fresh_ffs) sweep);
  print_endline
    "LFS disk ms/op falls as clients grow (bigger batches per flush);\n\
     FFS disk ms/op grows with queueing on synchronous writes."

(* ------------------------------------------------------------------ *)
(* IO depth: overlapped device requests through the submit/complete     *)
(* pipeline                                                             *)
(* ------------------------------------------------------------------ *)

(* Same offered load at every depth (think-time bound, the server has
   headroom), so the comparison isolates queueing: at depth 1 every
   request's IO serialises behind the single server slot; at depth N up
   to N requests overlap their transfers through the per-device C-LOOK
   elevator and group-commit flushes become fsync barriers that await
   only their own log writes.  The win is in the latency tails, not the
   throughput. *)
let iodepth () =
  header
    "Server - request latency vs IO depth (submit/complete pipeline)"
    "overlapping device requests removes the serial-server queueing \
     delay: cached reads stop waiting behind durable writes and flush \
     barriers await only their own log batch; same think-time-bound \
     offered load at every depth";
  let module Engine = Lfs_server.Engine in
  let module Metrics = Lfs_obs.Metrics in
  let sweep = if !quick then [ 1; 4; 32 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let ops = if !quick then 50 else 100 in
  let clients = 16 in
  let pct m name q =
    match Metrics.value m name with
    | Some (Metrics.Summary { p95; p99; _ }) ->
        1000.0 *. (if q = `P95 then p95 else p99)
    | _ -> Float.nan
  in
  let gauge m name =
    match Metrics.value m name with
    | Some (Metrics.Float f) -> f
    | _ -> Float.nan
  in
  let row io_depth =
    let fs = W.Fsops.fresh_lfs (Lfs_disk.Geometry.wren_iv ~blocks:16384) in
    let cfg =
      {
        Engine.default with
        Engine.clients;
        ops_per_client = ops;
        think_mean_s = 0.2;
        io_depth;
      }
    in
    let r = Engine.run cfg fs in
    let m = r.Engine.metrics in
    dump_metrics ~title:(Printf.sprintf "iodepth %d" io_depth) (Some m);
    [
      string_of_int io_depth;
      Printf.sprintf "%.1f" r.Engine.throughput_ops_s;
      Printf.sprintf "%.1f" (pct m "server.latency.write.s" `P95);
      Printf.sprintf "%.1f" (pct m "server.latency.write.s" `P99);
      Printf.sprintf "%.1f" (pct m "server.latency.read.s" `P95);
      Printf.sprintf "%.3f" (gauge m "server.dev.queue_wait_s");
      Printf.sprintf "%.0f" (gauge m "server.dev.max_queue_depth");
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Sprite LFS, %d clients x %d ops, 200 ms think (same seed per depth)"
         clients ops)
    ~header:
      [ "io depth"; "ops/s"; "p95 write ms"; "p99 write ms"; "p95 read ms";
        "dev wait s"; "dev max q" ]
    (List.map row sweep);
  print_endline
    "depth 1 is the serial-equivalent path (zero device queue wait by \
     construction);\ndeeper pipelines cut p95/p99 while throughput stays \
     think-time bound."

(* ------------------------------------------------------------------ *)
(* Sharding: serve throughput vs shard count at equal total capacity    *)
(* ------------------------------------------------------------------ *)

(* The paper's single append-only log is also its single serialization
   point.  [Lfs_shard.Shard_router] mounts N complete LFS instances —
   each with its own device, log and cleaner — behind one namespace, so
   the same serving engine drives them unchanged and request IO spreads
   over N independent spindles.  Total device capacity is held constant
   across the sweep (the spec splits it evenly), so any win comes from
   parallelism, not from extra disk. *)
let shard () =
  header
    "Server - throughput vs shard count (multi-shard volumes)"
    "beyond the paper: N independent logs behind one namespace remove \
     the single-log serialization point; the serving engine's disk-bound \
     throughput scales with shard count at equal total capacity, and \
     per-shard cleaner metrics show no shard starves";
  let module Engine = Lfs_server.Engine in
  let module Metrics = Lfs_obs.Metrics in
  let sweep = [ 1; 2; 4 ] in
  let clients = 16 in
  let ops = if !quick then 100 else 150 in
  let blocks = 16384 in
  let results =
    List.map
      (fun shards ->
        let fs =
          Lfs_shard.Spec.fresh ~blocks
            (Lfs_shard.Spec.Shard
               { shards; policy = Lfs_shard.Shard_router.By_hash })
        in
        let cfg =
          {
            Engine.default with
            Engine.clients;
            ops_per_client = ops;
            think_mean_s = 0.002;
            io_depth = 16;
            bg_clean = true;
          }
        in
        let r = Engine.run cfg fs in
        let fsm =
          match fs.W.Fsops.metrics () with
          | Some m -> m
          | None -> assert false
        in
        dump_metrics ~title:(Printf.sprintf "shard x%d" shards) (Some fsm);
        (shards, r, fsm))
      sweep
  in
  let cleaner_col fsm shards =
    (* segments cleaned per shard: every engaged shard's cleaner makes
       progress in the idle windows, none starves behind a neighbour *)
    String.concat "/"
      (List.init shards (fun i ->
           Printf.sprintf "%.0f"
             (Metrics.float_value fsm
                (Printf.sprintf "shard%d.fs.cleaner.segments_cleaned" i))))
  in
  Table.print
    ~title:
      (Printf.sprintf
         "%d clients x %d ops, 2 ms think, io-depth 16, bg-clean, %d blocks \
          total"
         clients ops blocks)
    ~header:
      [ "shards"; "ops/s"; "disk ms/op"; "mean batch"; "segs cleaned/shard" ]
    (List.map
       (fun (shards, r, fsm) ->
         [
           string_of_int shards;
           Printf.sprintf "%.1f" r.Engine.throughput_ops_s;
           Printf.sprintf "%.2f"
             (1000.0 *. r.Engine.disk_s /. float_of_int r.Engine.completed);
           (if Float.is_nan r.Engine.mean_batch then "-"
            else Printf.sprintf "%.2f" r.Engine.mean_batch);
           cleaner_col fsm shards;
         ])
       results);
  let tput shards =
    match List.find_opt (fun (s, _, _) -> s = shards) results with
    | Some (_, r, _) -> r.Engine.throughput_ops_s
    | None -> Float.nan
  in
  Printf.printf
    "1 -> 4 shards scales serve throughput %.2fx (independent logs, \
     cleaners and devices behind one namespace).\n"
    (tput 4 /. tput 1)

(* ------------------------------------------------------------------ *)
(* Background vs foreground cleaning at high disk utilisation           *)
(* ------------------------------------------------------------------ *)

(* The disk is prefilled to ~85% live with dead blocks scattered across
   the early segments, so the serving run must clean to keep going.
   Foreground-only: whole cleaning episodes land inside unlucky
   requests' service times — the p95/p99 write-latency cliff.  With
   --bg-clean the engine runs budgeted single-victim cleaner steps in
   idle windows ("clean during idle periods", paper Section 4), paced by
   the background watermarks, and the tail collapses. *)
let server_bgclean () =
  header
    "Server - background vs foreground cleaning at high disk utilisation"
    "idle-scheduled cleaner steps keep the clean pool above the \
     emergency threshold so foreground writers stop stalling on whole \
     cleaning episodes; same offered load, same seed, same disk image";
  let module Engine = Lfs_server.Engine in
  let module Fs = Lfs_core.Fs in
  let module Metrics = Lfs_obs.Metrics in
  let ops = if !quick then 80 else 200 in
  let clients = 8 in
  let write_size = 32768 in
  (* 512 KB segments on a 64 MB disk (128 segments) keep a single-victim
     background step a sub-second stall.  The background band is pinned
     to the foreground one (engage one segment above the emergency
     trigger, refill to the same stop), so both modes maintain the same
     clean pool over the same dirt — total cleaning work is conserved
     and the comparison isolates *where* it runs, not how much.
     Live-blocks reads halve what a mostly-dead victim costs. *)
  let bench_config =
    {
      Lfs_core.Config.default with
      seg_blocks = 128;
      write_buffer_blocks = 128;
      bg_clean_start = 5;
      bg_clean_stop = 8;
      cleaner_read = Lfs_core.Config.Live_blocks;
    }
  in
  let prefill () =
    let geom = Lfs_disk.Geometry.wren_iv ~blocks:16384 in
    let disk = Lfs_disk.Vdev.of_disk (Lfs_disk.Disk.create geom) in
    Fs.format disk bench_config;
    let fs = Fs.mount disk in
    (* The sessions' working set at full size first, so the measured run
       overwrites in place instead of growing the live set into the
       little headroom the disk has left. *)
    let ws = Bytes.make write_size 'w' in
    for c = 0 to clients - 1 do
      ignore (Fs.mkdir_path fs (Printf.sprintf "/c%d" c));
      for f = 0 to 31 do
        Fs.write_path fs (Printf.sprintf "/c%d/f%d" c f) ws
      done
    done;
    (* Fresh fill in 8-file groups (one segment each) until only a
       small clean pool remains above the foreground threshold. *)
    let payload = Bytes.make (16 * 4096) 'x' in
    ignore (Fs.mkdir_path fs "/fill");
    let group = ref 0 in
    while Fs.clean_segment_count fs > 12 do
      for f = 0 to 7 do
        Fs.write_path fs (Printf.sprintf "/fill/g%d_%d" !group f) payload
      done;
      incr group
    done;
    (* Scatter dirt: rewriting six of the eight files of every other
       group leaves the group's old segment three-quarters dead
       (u ~ 0.25) — profitable, plentiful dirt at constant live bytes,
       so both modes pick the same cheap victims and differ only in
       *when* they clean.  The foreground cleaner fires below its
       threshold while we churn; its prefill passes are snapshotted away
       before the measured run. *)
    for g = 0 to !group - 1 do
      if g mod 2 = 0 then
        for f = 0 to 5 do
          Fs.write_path fs (Printf.sprintf "/fill/g%d_%d" g f) payload
        done
    done;
    (* Top the pool back up to the stop watermark so both modes start
       from the same settled state — otherwise the initial client burst
       lands on a near-trigger pool before the first idle window and
       charges a start-transient foreground pass to the bg-clean run. *)
    Fs.clean fs;
    Fs.sync fs;
    fs
  in
  let counter m name =
    match Metrics.value m name with Some (Metrics.Int n) -> n | _ -> 0
  in
  let write_pct m q =
    match Metrics.value m "server.latency.write.s" with
    | Some (Metrics.Summary { p95; p99; _ }) ->
        1000.0 *. (if q = `P95 then p95 else p99)
    | _ -> Float.nan
  in
  let conserve = ref [] in
  let row ~bg =
    let fs = prefill () in
    let m = Fs.metrics fs in
    let util0 = Fs.utilization fs in
    let fg_passes0 = counter m "fs.cleaner.fg.passes" in
    let fg0 = counter m "fs.cleaner.fg.segments" in
    let bg0 = counter m "fs.cleaner.bg.segments" in
    let cfg =
      {
        Engine.default with
        Engine.clients;
        ops_per_client = ops;
        write_size;
        (* Open-loop but unsaturated: ~4 req/s offered against a server
           good for 7+, so real idle windows exist for the background
           cleaner — and write latency measures service + flush wait,
           not unbounded queueing. *)
        think_mean_s = 2.0;
        bg_clean = bg;
      }
    in
    let r = Engine.run cfg (W.Fsops.of_lfs fs) in
    let fg_passes = counter m "fs.cleaner.fg.passes" - fg_passes0 in
    let fg_segs = counter m "fs.cleaner.fg.segments" - fg0 in
    let bg_segs = counter m "fs.cleaner.bg.segments" - bg0 in
    conserve := (bg, fg_segs + bg_segs) :: !conserve;
    dump_metrics
      ~title:(Printf.sprintf "server bg-clean=%b" bg)
      (Some r.Engine.metrics);
    [
      (if bg then "bg-clean" else "fg-only");
      pct util0;
      Printf.sprintf "%.1f" r.Engine.throughput_ops_s;
      Printf.sprintf "%.2f"
        (1000.0 *. r.Engine.disk_s /. float_of_int r.Engine.completed);
      Printf.sprintf "%.1f" (write_pct r.Engine.metrics `P95);
      Printf.sprintf "%.1f" (write_pct r.Engine.metrics `P99);
      string_of_int fg_passes;
      string_of_int fg_segs;
      string_of_int bg_segs;
    ]
  in
  let rows = [ row ~bg:false; row ~bg:true ] in
  Table.print
    ~title:
      (Printf.sprintf
         "%d clients x %d ops, %d KB max writes (same seed both runs)"
         clients ops (write_size / 1024))
    ~header:
      [ "mode"; "start util"; "ops/s"; "disk ms/op"; "p95 write ms";
        "p99 write ms"; "fg passes"; "fg segs"; "bg segs" ]
    rows;
  (match (List.assoc_opt false !conserve, List.assoc_opt true !conserve) with
  | Some fg_total, Some bg_total ->
      Printf.printf
        "work conservation: %d segments cleaned fg-only vs %d with \
         bg-clean (same dirt, same load)\n"
        fg_total bg_total
  | _ -> ());
  print_endline
    "bg-clean moves (nearly) all cleaned segments into background steps \
     and cuts the write-latency tail."

(* ------------------------------------------------------------------ *)
(* Tiered storage: hot/cold placement across flash + disk               *)
(* ------------------------------------------------------------------ *)

(* A hot/cold working set over a tiered volume (25% flash, 75% Wren IV):
   cold files are prefilled once and left alone; a small hot set is
   re-read and rewritten every round, with idle demotion passes between
   rounds.  At steady state the demotion policy should have pushed the
   cold majority of live segments onto the slow tier while the write
   head keeps landing on flash — so hot-write latency stays close to an
   all-flash volume of the same capacity. *)
let tier () =
  header "Tiered storage - hot/cold segment placement (flash + Wren IV)"
    "cold segments decay slowest (Section 3.5), so demoting old, full \
     segments to a slow tier frees flash for the write head at the cost \
     of one sequential copy; promotion-on-read pulls a re-warmed \
     segment back";
  let blocks = if !quick then 12288 else 24576 in
  let rounds = if !quick then 8 else 14 in
  let config =
    { Lfs_core.Config.default with demote_age_s = 8.0; promote_reads = 2 }
  in
  let fast_pct = 25 in
  let p95 samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    if Array.length a = 0 then Float.nan
    else a.(min (Array.length a - 1) (Array.length a * 95 / 100))
  in
  (* The same routine runs over any (fs, busy-clock) pair; returns hot
     write+sync latencies from the steady-state rounds. *)
  let exercise fs busy =
    let module Fs = Lfs_core.Fs in
    let layout = Fs.layout fs in
    let seg_bytes = layout.Lfs_core.Layout.seg_blocks * 4096 in
    let nsegs = layout.Lfs_core.Layout.nsegs in
    (* Cold prefill: ~55% of the log, one segment-sized file each. *)
    let ncold = nsegs * 55 / 100 in
    let cold_data = Bytes.make seg_bytes 'c' in
    for i = 0 to ncold - 1 do
      Lfs_core.Fs.write_path fs (Printf.sprintf "/cold%d" i) cold_data
    done;
    Lfs_core.Fs.sync fs;
    let nhot = 8 in
    let hot_data = Bytes.make (seg_bytes / 4) 'h' in
    let lat = ref [] in
    for round = 1 to rounds do
      for i = 0 to nhot - 1 do
        let path = Printf.sprintf "/hot%d" i in
        (match Lfs_core.Fs.resolve fs path with
        | Some ino -> ignore (Lfs_core.Fs.read fs ino ~off:0 ~len:4096)
        | None -> ());
        let before = busy () in
        Lfs_core.Fs.write_path fs path hot_data;
        Lfs_core.Fs.sync fs;
        if round > rounds / 2 then lat := (busy () -. before) :: !lat
      done;
      (* Idle window: the cleaner's demotion regime. *)
      for _ = 1 to 4 do
        ignore (Lfs_core.Fs.clean_step ~max_segments:4 fs)
      done
    done;
    !lat
  in
  (* Tiered volume, built exactly like Spec.fresh's Tier case but with
     the Vdev_tier handle kept for placement accounting. *)
  let fast_blocks = blocks * fast_pct / 100 in
  let fast =
    Lfs_disk.Vdev.of_disk
      (Lfs_disk.Disk.create (Lfs_disk.Geometry.flash ~blocks:fast_blocks))
  in
  let slow =
    Lfs_disk.Vdev.of_disk
      (Lfs_disk.Disk.create
         (Lfs_disk.Geometry.wren_iv ~blocks:(blocks - fast_blocks)))
  in
  let ti = Lfs_shard.Spec.tier_volume ~config ~fast ~slow in
  let dev = Lfs_disk.Vdev_tier.vdev ti in
  Lfs_core.Fs.format dev config;
  let tfs = Lfs_core.Fs.mount ~tier:ti dev in
  let busy_of v () = (Lfs_disk.Vdev.stats v).Lfs_disk.Io_stats.busy_s in
  let tier_lat = exercise tfs (busy_of dev) in
  (* All-flash baseline at the same capacity. *)
  let flat =
    Lfs_disk.Vdev.of_disk
      (Lfs_disk.Disk.create (Lfs_disk.Geometry.flash ~blocks))
  in
  Lfs_core.Fs.format flat config;
  let ffs = Lfs_core.Fs.mount flat in
  let flat_lat = exercise ffs (busy_of flat) in
  (* Placement at steady state: where do live segments sit? *)
  let layout = Lfs_core.Fs.layout tfs in
  let live_fast = ref 0 and live_slow = ref 0 in
  for s = 0 to layout.Lfs_core.Layout.nsegs - 1 do
    if Lfs_core.Fs.segment_live_bytes tfs s > 0 then
      match Lfs_disk.Vdev_tier.chunk_tier ti s with
      | Lfs_disk.Vdev_tier.Fast -> incr live_fast
      | Lfs_disk.Vdev_tier.Slow -> incr live_slow
  done;
  let live_total = !live_fast + !live_slow in
  let slow_share =
    if live_total = 0 then 0.0
    else float_of_int !live_slow /. float_of_int live_total
  in
  let p95_tier = p95 tier_lat and p95_flat = p95 flat_lat in
  let ratio = p95_tier /. p95_flat in
  Table.print
    ~title:
      (Printf.sprintf
         "Tier placement and hot-write latency (%d%% flash, %d blocks)"
         fast_pct blocks)
    ~header:[ "metric"; "value" ]
    [
      [ "live segments (fast/slow)";
        Printf.sprintf "%d / %d" !live_fast !live_slow ];
      [ "live segments on slow"; pct slow_share ];
      [ "demotions"; string_of_int (Lfs_disk.Vdev_tier.demotions ti) ];
      [ "promotions"; string_of_int (Lfs_disk.Vdev_tier.promotions ti) ];
      [ "hot write+sync p95 (tier)"; Printf.sprintf "%.2f ms" (1000.0 *. p95_tier) ];
      [ "hot write+sync p95 (all-flash)";
        Printf.sprintf "%.2f ms" (1000.0 *. p95_flat) ];
      [ "p95 ratio (tier / all-flash)"; Printf.sprintf "%.2fx" ratio ];
    ];
  dump_metrics ~title:"tier" (Some (Lfs_core.Fs.metrics tfs));
  Printf.printf "gate: >=50%% of live segments on slow: %s (%s)\n"
    (pct slow_share)
    (if slow_share >= 0.5 then "PASS" else "FAIL");
  Printf.printf "gate: hot p95 within 1.25x of all-flash: %.2fx (%s)\n" ratio
    (if ratio <= 1.25 then "PASS" else "FAIL");
  if slow_share < 0.5 || ratio > 1.25 then exit 1

(* ------------------------------------------------------------------ *)
(* Multi-head log: write cost vs utilisation with hot/cold segregation  *)
(* ------------------------------------------------------------------ *)

(* The paper's Figure 9 point: segregating hot from cold data makes the
   bimodal segment distribution sharper, so the cleaner finds emptier
   victims and the write cost falls.  With one write head, cleaner
   survivors (cold by selection) land in the same segments as fresh hot
   data and re-pollute them; with [log_heads >= 2] survivors stream to
   their own cold segments and the hot head's segments decay to
   near-empty before they are cleaned.  A 90/10 overwrite workload at a
   fixed disk utilisation measures the steady-state write cost of both
   configurations on the real FS (not the simulator). *)
let writecost () =
  header
    "Write cost vs utilisation - multi-head hot/cold segregation \
     (lfs:heads=N)"
    "one write head mixes cleaner survivors back into the hot stream; a \
     second (cold) head keeps them apart, sharpening the bimodal \
     segment distribution and cutting the steady-state write cost at \
     high utilisation (Sections 3.5, 5.1)";
  let module Fs = Lfs_core.Fs in
  let module Fs_stats = Lfs_core.Fs_stats in
  let module Prng = Lfs_util.Prng in
  let blocks = 32768 in
  let utils = if !quick then [ 0.70; 0.85 ] else [ 0.60; 0.70; 0.80; 0.85 ] in
  let head_counts = if !quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let file_blocks = 16 in
  let measure ~heads ~util =
    let config =
      {
        Lfs_core.Config.default with
        log_heads = heads;
        max_inodes = 4096;
        (* 128 half-MB segments: the default clean pool (8 segments) is
           then a small enough fraction of the disk that 85% utilisation
           leaves the cleaner real working room. *)
        seg_blocks = 128;
        write_buffer_blocks = 128;
        cleaner_read = Lfs_core.Config.Live_blocks;
        (* Background watermarks sit above the foreground trigger so the
           idle-window cleaner (one victim per request, below) does all
           the cleaning.  Single-victim steps are what make the
           comparison meaningful: each step's survivors land in whatever
           segment the survivor head has open, so with one head they
           interleave with the foreground stream. *)
        bg_clean_start = 10;
        bg_clean_stop = 12;
      }
    in
    let disk =
      Lfs_disk.Vdev.of_disk
        (Lfs_disk.Disk.create (Lfs_disk.Geometry.instant ~blocks))
    in
    Fs.format disk config;
    let fs = Fs.mount disk in
    let layout = Fs.layout fs in
    let capacity = layout.Lfs_core.Layout.nsegs * layout.Lfs_core.Layout.seg_blocks in
    (* Size the file population so live data (plus ~6% metadata) sits at
       the target utilisation. *)
    let nfiles = int_of_float (util *. float_of_int capacity) / (file_blocks + 1) in
    let nhot = max 1 (nfiles / 10) in
    let file_bytes = file_blocks * layout.Lfs_core.Layout.block_size in
    let name i = Printf.sprintf "/f%d" i in
    let payload = Bytes.make file_bytes 'd' in
    for i = 0 to nfiles - 1 do
      Fs.write_path fs (name i) payload
    done;
    Fs.sync fs;
    (* 90% of overwrite traffic hits the 10% hot files.  The same seed
       drives every head count at a given utilisation, so the workloads
       are identical streams. *)
    let prng = Prng.create ~seed:(int_of_float (util *. 1000.0)) in
    (* Idle-window cleaning between requests, as a server would run it
       (one victim per step): at heads=1 each step's survivors land in
       the middle of the foreground's current segment, re-polluting it
       with cold data; a cold head keeps the streams apart. *)
    let overwrite () =
      let i =
        if Prng.bernoulli prng ~p:0.9 then Prng.int prng nhot
        else nhot + Prng.int prng (max 1 (nfiles - nhot))
      in
      Fs.write_path fs (name i) payload;
      ignore (Fs.clean_step ~max_segments:1 fs)
    in
    let warmup = 2 * nfiles in
    let measured = nfiles in
    for _ = 1 to warmup do overwrite () done;
    Fs.sync fs;
    Fs_stats.reset (Fs.stats fs);
    for _ = 1 to measured do overwrite () done;
    Fs.sync fs;
    dump_metrics
      ~title:(Printf.sprintf "writecost heads=%d util=%.2f" heads util)
      (Some (Fs.metrics fs));
    (Fs_stats.write_cost (Fs.stats fs), Fs.utilization fs)
  in
  let results =
    List.map
      (fun util ->
        (util, List.map (fun h -> (h, measure ~heads:h ~util)) head_counts))
      utils
  in
  Table.print
    ~title:
      "Steady-state write cost, 90/10 overwrites (real FS, 256 x 512 KB \
       segments, idle-window cleaning)"
    ~header:
      ([ "target util"; "measured util" ]
      @ List.map (fun h -> Printf.sprintf "heads=%d" h) head_counts
      @ [ "improvement (2 vs 1)" ])
    (List.map
       (fun (util, row) ->
         let cost h = fst (List.assoc h row) in
         let measured_u = snd (List.assoc 1 row) in
         [ pct util; pct measured_u ]
         @ List.map (fun h -> Table.fmt_float (cost h)) head_counts
         @ [ pct (1.0 -. (cost 2 /. cost 1)) ])
       results);
  (* Gate: at >= 85% utilisation the cold head must buy at least 20%. *)
  let failures =
    List.filter_map
      (fun (util, row) ->
        if util >= 0.85 then
          let c1 = fst (List.assoc 1 row) and c2 = fst (List.assoc 2 row) in
          let improvement = 1.0 -. (c2 /. c1) in
          Printf.printf
            "gate: heads=2 write cost >=20%% below heads=1 at %s: %s vs %s \
             (%s) %s\n"
            (pct util) (Table.fmt_float c2) (Table.fmt_float c1)
            (pct improvement)
            (if improvement >= 0.20 then "PASS" else "FAIL");
          if improvement >= 0.20 then None else Some util
        else None)
      results
  in
  if failures <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (Bechamel)" "(implementation-level, not in the paper)";
  let open Bechamel in
  let disk = Lfs_disk.Vdev.of_disk (Lfs_disk.Disk.create (Lfs_disk.Geometry.instant ~blocks:16384)) in
  Lfs_core.Fs.format disk Lfs_core.Config.default;
  let fs = Lfs_core.Fs.mount disk in
  let ino = Lfs_core.Fs.create_path fs "/bench" in
  let payload = Bytes.make 4096 'b' in
  let counter = ref 0 in
  let test_write =
    Test.make ~name:"fs-write-4k"
      (Staged.stage (fun () ->
           incr counter;
           Lfs_core.Fs.write fs ino ~off:(4096 * (!counter mod 64)) payload))
  in
  let test_read =
    Test.make ~name:"fs-read-4k"
      (Staged.stage (fun () -> ignore (Lfs_core.Fs.read fs ino ~off:0 ~len:4096)))
  in
  let b = Bytes.make 4096 '\000' in
  let inode = Lfs_core.Inode.create ~ino:7 ~ftype:Lfs_core.Types.Regular ~mtime:1.0 in
  let test_inode_codec =
    Test.make ~name:"inode-encode-decode"
      (Staged.stage (fun () ->
           Lfs_core.Inode.encode inode b ~slot:3;
           ignore (Lfs_core.Inode.decode b ~slot:3)))
  in
  let test_checksum =
    Test.make ~name:"adler32-4k"
      (Staged.stage (fun () -> ignore (Lfs_util.Checksum.adler32 payload)))
  in
  let dir =
    List.fold_left
      (fun d i -> Lfs_core.Directory.add d (Printf.sprintf "entry%d" i) i)
      Lfs_core.Directory.empty
      (List.init 100 (fun i -> i + 2))
  in
  let dirb = Lfs_core.Directory.to_bytes dir in
  let test_dir_codec =
    Test.make ~name:"directory-decode-100"
      (Staged.stage (fun () -> ignore (Lfs_core.Directory.of_bytes dirb)))
  in
  let test_sim =
    Test.make ~name:"simulator-1k-writes"
      (Staged.stage (fun () ->
           ignore
             (Sim.run
                {
                  Sim.default_params with
                  nsegs = 64;
                  blocks_per_seg = 32;
                  warmup_writes = 1000;
                  measured_writes = 0;
                })))
  in
  let tests =
    Test.make_grouped ~name:"lfs"
      [ test_write; test_read; test_inode_codec; test_checksum; test_dir_codec; test_sim ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | Some [] | None -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "  %-32s %14.1f ns/op\n" name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("crashsweep", crashsweep);
    ("table4", table4);
    ("andrew", andrew);
    ("fsckcmp", fsckcmp);
    ("ablate", ablate);
    ("stripe", stripe);
    ("server", server);
    ("shard", shard);
    ("bgclean", server_bgclean);
    ("iodepth", iodepth);
    ("tier", tier);
    ("writecost", writecost);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "quick" || a = "--quick" then begin
          quick := true;
          false
        end
        else if a = "--metrics" then begin
          metrics := true;
          false
        end
        else true)
      args
  in
  (* `bench server --bg-clean` reads naturally; map the flag onto the
     bgclean experiment. *)
  let args =
    List.map (fun a -> if a = "--bg-clean" then "bgclean" else a) args
  in
  let t0 = Unix.gettimeofday () in
  (match args with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None when name = "micro" -> micro ()
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s micro\n" name
                (String.concat " " (List.map fst experiments));
              exit 2)
        names);
  Printf.printf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
