# Convenience targets; everything is plain dune underneath.

# pipefail so `| tee` in verify cannot mask a failing build or test run.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- quick

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/office_workload.exe
	dune exec examples/crash_recovery.exe
	dune exec examples/cleaner_tuning.exe
	dune exec examples/nvram_buffer.exe

verify:
	dune build @all
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

ci:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- quick
	dune exec bin/lfs_tool.exe -- crashtest --workload smallfile --stride 3 --seed 1
	dune exec bin/lfs_tool.exe -- crashtest --workload script --stride 3 --seed 1
	# Model-based crash refinement smoke: random op sequences checked
	# against the pure model at strided commit-order crash points with
	# group commit and io-depth 4 in flight.  Gates on zero divergences
	# for lfs and the shard router, and on determinism — the same seed
	# twice must produce byte-identical JSON.
	dune exec bin/lfs_tool.exe -- modelcheck --fs lfs --seqs 6 --stride 4 --seed 1
	dune exec bin/lfs_tool.exe -- modelcheck --fs shard:2 --seqs 4 --stride 4 --seed 1
	dune exec bin/lfs_tool.exe -- modelcheck --fs lfs --seqs 3 --stride 5 --seed 2 --json > ci-model-a.json
	dune exec bin/lfs_tool.exe -- modelcheck --fs lfs --seqs 3 --stride 5 --seed 2 --json > ci-model-b.json
	cmp ci-model-a.json ci-model-b.json
	rm -f ci-model-a.json ci-model-b.json
	# Stats smoke: exercise a small image (geometry chosen so the cleaner
	# engages), then --check fails on any NaN/negative metric in the JSON.
	dune exec bin/lfs_tool.exe -- mkfs ci-stats.img --blocks 1024 --segment-blocks 64
	dune exec bin/lfs_tool.exe -- stats ci-stats.img --exercise 120 --json --check > ci-stats.json
	dune exec bin/lfs_tool.exe -- stats ci-stats.img --exercise 120 > /dev/null
	rm -f ci-stats.img ci-stats.json
	# Server smoke: a small client sweep over both backends with metric
	# validation, then the determinism gate — the same seed twice must
	# produce byte-identical JSON.
	dune exec bench/main.exe -- server quick
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --check > /dev/null
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs ffs --check > /dev/null
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --json --check > ci-serve-a.json
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --json --check > ci-serve-b.json
	cmp ci-serve-a.json ci-serve-b.json
	rm -f ci-serve-a.json ci-serve-b.json
	# Background-cleaning smoke: the --bg-clean flag on both backends
	# (a no-op on ffs), the bench sweep, and the determinism gate again
	# with the flag on — idle cleaner steps run on the modelled clock,
	# so equal seeds must still produce byte-identical JSON.
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --bg-clean --check > /dev/null
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs ffs --bg-clean --check > /dev/null
	dune exec bench/main.exe -- bgclean quick
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --bg-clean --json --check > ci-bgclean-a.json
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --bg-clean --json --check > ci-bgclean-b.json
	cmp ci-bgclean-a.json ci-bgclean-b.json
	rm -f ci-bgclean-a.json ci-bgclean-b.json
	# IO-depth smoke: the queued submit/complete pipeline on both
	# backends, the depth sweep, and the determinism gate — device
	# completions are events on the modelled clock, so equal seeds must
	# still produce byte-identical JSON.
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --io-depth 8 --check > /dev/null
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs ffs --io-depth 8 --check > /dev/null
	dune exec bench/main.exe -- iodepth quick
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --io-depth 8 --json --check > ci-iodepth-a.json
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --io-depth 8 --json --check > ci-iodepth-b.json
	cmp ci-iodepth-a.json ci-iodepth-b.json
	rm -f ci-iodepth-a.json ci-iodepth-b.json
	# Sharding smoke: both placement policies through the serving engine,
	# an exercised in-memory sharded volume with metric validation, the
	# one-faulted-shard crash sweep, the scaling sweep, and the
	# determinism gate on a sharded volume — equal seeds must produce
	# byte-identical JSON across four independent logs.
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs shard:4:by_hash --check > /dev/null
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs shard:4:by_subtree --check > /dev/null
	dune exec bin/lfs_tool.exe -- stats --fs shard:4 --exercise 80 --json --check > /dev/null
	dune exec bin/lfs_tool.exe -- crashtest --fs shard:2 --workload script --stride 7 --seed 1
	dune exec bench/main.exe -- quick shard
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --fs shard:4 --io-depth 8 --json --check > ci-shard-a.json
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --fs shard:4 --io-depth 8 --json --check > ci-shard-b.json
	cmp ci-shard-a.json ci-shard-b.json
	rm -f ci-shard-a.json ci-shard-b.json
	# Tiered-storage smoke: both promotion policies through the serving
	# engine, the tier crash sweep and refinement check (cuts enumerated
	# over the fast child, so they land inside placement-map writes and
	# demotion copies), the placement/latency bench gates, and the
	# determinism gate on a tiered volume.
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs lfs:tier:25 --check > /dev/null
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs lfs:tier:25:promote=2 --check > /dev/null
	dune exec bin/lfs_tool.exe -- stats --fs lfs:tier --exercise 80 --json --check > /dev/null
	dune exec bin/lfs_tool.exe -- crashtest --fs lfs:tier --workload script --stride 7 --seed 1
	dune exec bin/lfs_tool.exe -- modelcheck --fs lfs:tier --seqs 3 --stride 5 --seed 1
	dune exec bench/main.exe -- quick tier
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --fs lfs:tier:25:promote=2 --json --check > ci-tier-a.json
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --fs lfs:tier:25:promote=2 --json --check > ci-tier-b.json
	cmp ci-tier-a.json ci-tier-b.json
	rm -f ci-tier-a.json ci-tier-b.json
	# Multi-head log smoke: serve on lfs:heads=2 with and without the
	# background cleaner (survivors route through the cold head), metric
	# validation, the crash sweep and refinement check with cuts landing
	# in either head's summary chain, the write-cost segregation gate,
	# and the determinism gate — equal seeds must produce byte-identical
	# JSON with two log heads, bg-clean on and off.
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs lfs:heads=2 --check > /dev/null
	dune exec bin/lfs_tool.exe -- serve --clients 8 --ops 50 --seed 1 --fs lfs:heads=2 --bg-clean --check > /dev/null
	dune exec bin/lfs_tool.exe -- stats --fs lfs:heads=2 --exercise 80 --json --check > /dev/null
	dune exec bin/lfs_tool.exe -- crashtest --fs lfs:heads=2 --workload script --stride 7 --seed 1
	dune exec bin/lfs_tool.exe -- modelcheck --fs lfs:heads=2 --seqs 3 --stride 5 --seed 1
	dune exec bench/main.exe -- quick writecost
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --fs lfs:heads=2 --json --check > ci-heads-a.json
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --fs lfs:heads=2 --json --check > ci-heads-b.json
	cmp ci-heads-a.json ci-heads-b.json
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --fs lfs:heads=2 --bg-clean --json --check > ci-heads-bg-a.json
	dune exec bin/lfs_tool.exe -- serve --clients 16 --ops 50 --seed 42 --fs lfs:heads=2 --bg-clean --json --check > ci-heads-bg-b.json
	cmp ci-heads-bg-a.json ci-heads-bg-b.json
	rm -f ci-heads-a.json ci-heads-b.json ci-heads-bg-a.json ci-heads-bg-b.json

clean:
	dune clean

.PHONY: all test bench bench-quick micro examples verify ci clean
