(* Tests for the file block map: direct/indirect translation, dirty
   tracking, flushing, truncation and the on-disk round trip. *)

module Types = Lfs_core.Types
module Layout = Lfs_core.Layout
module Inode = Lfs_core.Inode
module Filemap = Lfs_core.Filemap

(* A tiny layout so double-indirect ranges are reachable: 512-byte
   blocks hold 64 addresses. *)
let layout =
  Layout.compute
    {
      Helpers.test_config with
      Lfs_core.Config.block_size = 512;
      seg_blocks = 16;
      max_inodes = 64;
    }
    ~disk_blocks:2048

let k = layout.Layout.addrs_per_block

let mk_inode () = Inode.create ~ino:9 ~ftype:Types.Regular ~mtime:1.0

(* An in-memory "disk" for alloc/read callbacks. *)
let mk_store () =
  let store : (Types.baddr, bytes) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 5000 in
  let alloc ~kind:_ ~blockno:_ payload =
    incr next;
    Hashtbl.replace store !next payload;
    !next
  in
  let read addr = Hashtbl.find store addr in
  (store, alloc, read)

let flush_map fm inode alloc =
  Filemap.flush fm inode ~alloc ~free:(fun _ -> ())

let test_empty_map () =
  let fm = Filemap.create_empty layout (mk_inode ()) in
  Alcotest.(check int) "hole" Types.nil_addr (Filemap.get fm 0);
  Alcotest.(check int) "far hole" Types.nil_addr (Filemap.get fm 10_000);
  Alcotest.(check bool) "not dirty" false (Filemap.dirty fm)

let test_direct_range () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  Filemap.set fm 0 111;
  Filemap.set fm 9 999;
  Alcotest.(check int) "get 0" 111 (Filemap.get fm 0);
  Alcotest.(check int) "get 9" 999 (Filemap.get fm 9);
  (* Direct pointers live in the inode: no indirect dirt. *)
  Alcotest.(check bool) "no indirect dirt" false (Filemap.dirty fm);
  let _, alloc, _ = mk_store () in
  flush_map fm inode alloc;
  Alcotest.(check int) "inode direct updated" 111 inode.Inode.direct.(0);
  Alcotest.(check int) "inode direct 9" 999 inode.Inode.direct.(9);
  Alcotest.(check int) "no indirect" Types.nil_addr inode.Inode.indirect

let test_single_indirect () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  Filemap.set fm 10 1010;
  Filemap.set fm (10 + k - 1) 2020;
  Alcotest.(check bool) "dirty" true (Filemap.dirty fm);
  let _, alloc, read = mk_store () in
  flush_map fm inode alloc;
  Alcotest.(check bool) "indirect allocated" true (inode.Inode.indirect <> Types.nil_addr);
  Alcotest.(check bool) "clean after flush" false (Filemap.dirty fm);
  (* Reload from "disk" and verify translation survives. *)
  let fm' = Filemap.load ~read layout inode in
  Alcotest.(check int) "reloaded 10" 1010 (Filemap.get fm' 10);
  Alcotest.(check int) "reloaded last" 2020 (Filemap.get fm' (10 + k - 1))

let test_double_indirect () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  let first_dbl = 10 + k in
  Filemap.set fm first_dbl 3030;
  Filemap.set fm (first_dbl + k) 4040;        (* second L1 chunk *)
  Filemap.set fm (first_dbl + (3 * k) + 7) 5050;  (* fourth L1 chunk *)
  let _, alloc, read = mk_store () in
  flush_map fm inode alloc;
  Alcotest.(check bool) "dindirect allocated" true
    (inode.Inode.dindirect <> Types.nil_addr);
  let fm' = Filemap.load ~read layout inode in
  Alcotest.(check int) "chunk0" 3030 (Filemap.get fm' first_dbl);
  Alcotest.(check int) "chunk1" 4040 (Filemap.get fm' (first_dbl + k));
  Alcotest.(check int) "chunk3" 5050 (Filemap.get fm' (first_dbl + (3 * k) + 7));
  Alcotest.(check int) "hole between" Types.nil_addr
    (Filemap.get fm' (first_dbl + 1))

let test_indirect_blocks_listed () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  Filemap.set fm 10 1;
  Filemap.set fm (10 + k) 2;
  let _, alloc, _ = mk_store () in
  flush_map fm inode alloc;
  let blocks = Filemap.indirect_blocks fm in
  (* single + L2 + one L1 chunk *)
  Alcotest.(check int) "three indirect blocks" 3 (List.length blocks);
  List.iter
    (fun (sb, addr) ->
      Alcotest.(check int) "addr matches accessor" addr
        (Filemap.indirect_addr fm ~sblockno:sb))
    blocks

let test_truncate_frees () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  for i = 0 to 19 do
    Filemap.set fm i (6000 + i)
  done;
  let freed = ref [] in
  Filemap.truncate fm ~blocks:5 ~free:(fun a -> freed := a :: !freed);
  Alcotest.(check int) "freed 15 blocks" 15 (List.length !freed);
  Alcotest.(check int) "kept block" 6004 (Filemap.get fm 4);
  Alcotest.(check int) "dropped block" Types.nil_addr (Filemap.get fm 5);
  (* After flushing, the now-empty indirect block disappears. *)
  let _, alloc, _ = mk_store () in
  let freed_indirect = ref 0 in
  Filemap.flush fm inode ~alloc ~free:(fun _ -> incr freed_indirect);
  Alcotest.(check int) "no single indirect left" Types.nil_addr inode.Inode.indirect

let test_truncate_to_zero () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  Filemap.set fm 0 77;
  Filemap.set fm 12 88;
  Filemap.truncate fm ~blocks:0 ~free:(fun _ -> ());
  Alcotest.(check int) "mapped_blocks" 0 (Filemap.mapped_blocks fm);
  Filemap.iter_mapped fm (fun _ _ -> Alcotest.fail "nothing should remain")

let test_flush_replaces_old_indirect () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  Filemap.set fm 10 1;
  let _, alloc, _ = mk_store () in
  flush_map fm inode alloc;
  let first = inode.Inode.indirect in
  Filemap.set fm 11 2;
  let freed = ref [] in
  Filemap.flush fm inode ~alloc ~free:(fun a -> freed := a :: !freed);
  Alcotest.(check bool) "new copy" true (inode.Inode.indirect <> first);
  Alcotest.(check (list int)) "old copy freed" [ first ] !freed

let test_mark_indirect_dirty_forces_rewrite () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  Filemap.set fm 10 1;
  let _, alloc, _ = mk_store () in
  flush_map fm inode alloc;
  Alcotest.(check bool) "clean" false (Filemap.dirty fm);
  Filemap.mark_indirect_dirty fm ~sblockno:Filemap.sblockno_single;
  Alcotest.(check bool) "dirty again" true (Filemap.dirty fm)

let test_iter_mapped_complete () =
  let inode = mk_inode () in
  let fm = Filemap.create_empty layout inode in
  let expected = [ (0, 100); (9, 109); (10, 110); (10 + k + 2, 200) ] in
  List.iter (fun (i, a) -> Filemap.set fm i a) expected;
  let seen = ref [] in
  Filemap.iter_mapped fm (fun i a -> seen := (i, a) :: !seen);
  Alcotest.(check bool) "all mappings visited" true
    (List.sort compare !seen = List.sort compare expected)

let test_classify_sblockno () =
  Alcotest.(check bool) "data" true (Filemap.classify_sblockno 5 = `Data 5);
  Alcotest.(check bool) "single" true
    (Filemap.classify_sblockno Filemap.sblockno_single = `Single);
  Alcotest.(check bool) "l2" true (Filemap.classify_sblockno Filemap.sblockno_l2 = `L2);
  Alcotest.(check bool) "l1 7" true
    (Filemap.classify_sblockno (Filemap.sblockno_l1 7) = `L1 7)

let test_too_large_rejected () =
  let fm = Filemap.create_empty layout (mk_inode ()) in
  match Filemap.set fm (Layout.max_file_blocks layout + 1) 1 with
  | () -> Alcotest.fail "should reject"
  | exception Types.Fs_error _ -> ()

let prop_set_get =
  QCheck.Test.make ~count:100 ~name:"filemap set/get agree with a model"
    QCheck.(small_list (pair (int_bound 500) (int_range 1 100000)))
    (fun ops ->
      let fm = Filemap.create_empty layout (mk_inode ()) in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (i, a) ->
          Filemap.set fm i a;
          Hashtbl.replace model i a)
        ops;
      Hashtbl.fold (fun i a ok -> ok && Filemap.get fm i = a) model true)

let prop_flush_load_roundtrip =
  QCheck.Test.make ~count:50 ~name:"filemap flush/load roundtrip"
    QCheck.(small_list (pair (int_bound 300) (int_range 1 100000)))
    (fun ops ->
      let inode = mk_inode () in
      let fm = Filemap.create_empty layout inode in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (i, a) ->
          Filemap.set fm i a;
          Hashtbl.replace model i a)
        ops;
      let _, alloc, read = mk_store () in
      flush_map fm inode alloc;
      let fm' = Filemap.load ~read layout inode in
      Hashtbl.fold (fun i a ok -> ok && Filemap.get fm' i = a) model true)

let suite =
  ( "filemap",
    [
      Alcotest.test_case "empty map" `Quick test_empty_map;
      Alcotest.test_case "direct range" `Quick test_direct_range;
      Alcotest.test_case "single indirect" `Quick test_single_indirect;
      Alcotest.test_case "double indirect" `Quick test_double_indirect;
      Alcotest.test_case "indirect blocks listed" `Quick test_indirect_blocks_listed;
      Alcotest.test_case "truncate frees" `Quick test_truncate_frees;
      Alcotest.test_case "truncate to zero" `Quick test_truncate_to_zero;
      Alcotest.test_case "flush replaces old" `Quick test_flush_replaces_old_indirect;
      Alcotest.test_case "mark indirect dirty" `Quick test_mark_indirect_dirty_forces_rewrite;
      Alcotest.test_case "iter mapped" `Quick test_iter_mapped_complete;
      Alcotest.test_case "classify sblockno" `Quick test_classify_sblockno;
      Alcotest.test_case "too large rejected" `Quick test_too_large_rejected;
      QCheck_alcotest.to_alcotest prop_set_get;
      QCheck_alcotest.to_alcotest prop_flush_load_roundtrip;
    ] )
