test/test_sim.ml: Alcotest Array Fun Lfs_sim Lfs_util List Printf
