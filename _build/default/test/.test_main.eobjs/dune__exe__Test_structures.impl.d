test/test_structures.ml: Alcotest Array Bytes Char Gen Hashtbl Helpers Lfs_core Lfs_disk Lfs_util List Option Printf QCheck QCheck_alcotest String
