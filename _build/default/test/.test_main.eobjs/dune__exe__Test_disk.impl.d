test/test_disk.ml: Alcotest Bytes Filename Fun Helpers Lfs_disk Lfs_util Printf Sys
