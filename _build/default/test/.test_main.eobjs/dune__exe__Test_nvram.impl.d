test/test_nvram.ml: Alcotest Bytes Hashtbl Helpers Lfs_core Lfs_disk Lfs_util List Printf String
