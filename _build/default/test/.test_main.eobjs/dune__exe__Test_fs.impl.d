test/test_fs.ml: Alcotest Bytes Helpers Lfs_core Lfs_disk Lfs_util List Printf
