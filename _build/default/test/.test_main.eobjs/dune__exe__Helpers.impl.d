test/helpers.ml: Alcotest Array Bytes Char Filename Hashtbl Lfs_core Lfs_disk Lfs_util Option Printf
