test/test_log_writer.ml: Alcotest Bytes Hashtbl Helpers Lfs_core Lfs_disk List Option
