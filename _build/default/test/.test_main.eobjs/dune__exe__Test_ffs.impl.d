test/test_ffs.ml: Alcotest Bytes Helpers Lfs_core Lfs_disk Lfs_ffs List Printf
