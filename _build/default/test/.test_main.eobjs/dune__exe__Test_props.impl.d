test/test_props.ml: Bytes Char Helpers Lfs_core Lfs_disk List Option Printf QCheck QCheck_alcotest String
