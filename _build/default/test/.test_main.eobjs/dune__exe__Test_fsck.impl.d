test/test_fsck.ml: Alcotest Bytes Format Helpers Lfs_core Lfs_disk Option String
