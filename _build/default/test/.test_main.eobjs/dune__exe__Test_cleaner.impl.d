test/test_cleaner.ml: Alcotest Array Bytes Helpers Lfs_core Lfs_util List Printf String
