test/test_filemap.ml: Alcotest Array Hashtbl Helpers Lfs_core List QCheck QCheck_alcotest
