test/test_util.ml: Alcotest Array Bytes Fun Gen Lfs_util List QCheck QCheck_alcotest String
