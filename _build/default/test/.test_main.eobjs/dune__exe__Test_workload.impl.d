test/test_workload.ml: Alcotest Bytes Filename Fun Helpers Lfs_disk Lfs_sim Lfs_workload List Printf Sys
