test/test_recovery.ml: Alcotest Bytes Char Helpers Lfs_core Lfs_disk Lfs_util List Option Printf String
