(* Tests for the Section 3.5 cleaning-policy simulator and the analytic
   write-cost model. *)

module Sim = Lfs_sim.Simulator
module Access = Lfs_sim.Access
module Csim = Lfs_sim.Config_sim
module Wc = Lfs_sim.Write_cost
module Prng = Lfs_util.Prng

(* Small, fast parameters for unit tests. *)
let small =
  {
    Sim.default_params with
    nsegs = 64;
    blocks_per_seg = 32;
    warmup_writes = 60_000;
    measured_writes = 30_000;
  }

let test_formula () =
  Alcotest.(check (float 1e-9)) "u=0 costs 1" 1.0 (Wc.lfs ~u:0.0);
  Alcotest.(check (float 1e-9)) "u=0.5 costs 4" 4.0 (Wc.lfs ~u:0.5);
  Alcotest.(check (float 1e-9)) "u=0.8 costs 10" 10.0 (Wc.lfs ~u:0.8);
  Alcotest.(check bool) "monotone" true (Wc.lfs ~u:0.9 > Wc.lfs ~u:0.8)

let test_formula_series () =
  let s = Wc.series ~points:10 () in
  Alcotest.(check int) "points" 10 (Array.length s);
  Alcotest.(check (float 1e-9)) "starts at u=0" 1.0 (snd s.(0))

let test_access_uniform_covers () =
  let p = Prng.create ~seed:1 in
  let sample = Access.sampler Access.Uniform ~nfiles:10 p in
  let seen = Array.make 10 false in
  for _ = 1 to 500 do
    seen.(sample ()) <- true
  done;
  Alcotest.(check bool) "all files hit" true (Array.for_all Fun.id seen)

let test_access_hot_cold_bias () =
  let p = Prng.create ~seed:2 in
  let sample = Access.sampler Access.default_hot_cold ~nfiles:1000 p in
  let hot_hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if sample () < 100 then incr hot_hits
  done;
  let frac = float_of_int !hot_hits /. float_of_int n in
  Alcotest.(check bool) "~90% to hot files" true (frac > 0.85 && frac < 0.95)

let test_sim_write_cost_reasonable () =
  let r = Sim.run { small with utilization = 0.5 } in
  Alcotest.(check bool) "at least 1" true (r.Sim.write_cost >= 1.0);
  Alcotest.(check bool) "below no-variance bound + slack" true
    (r.Sim.write_cost < Wc.lfs ~u:0.75)

let test_sim_low_utilization_cheap () =
  let r = Sim.run { small with utilization = 0.1 } in
  Alcotest.(check bool) "write cost near 1-2" true (r.Sim.write_cost < 2.5)

let test_sim_cost_increases_with_utilization () =
  let lo = Sim.run { small with utilization = 0.3 } in
  let hi = Sim.run { small with utilization = 0.8 } in
  Alcotest.(check bool) "monotone in utilisation" true
    (hi.Sim.write_cost > lo.Sim.write_cost)

let test_sim_deterministic () =
  let a = Sim.run small and b = Sim.run small in
  Alcotest.(check (float 0.0)) "same cost" a.Sim.write_cost b.Sim.write_cost;
  Alcotest.(check int) "same cleanings" a.Sim.segments_cleaned b.Sim.segments_cleaned

let test_sim_seed_changes_result () =
  let a = Sim.run small and b = Sim.run { small with seed = small.Sim.seed + 1 } in
  Alcotest.(check bool) "different streams differ" true
    (a.Sim.write_cost <> b.Sim.write_cost)

let test_sim_cost_benefit_beats_greedy_hot_cold () =
  (* The paper's headline simulator result, at paper-scale segments. *)
  let base =
    {
      Sim.default_params with
      nsegs = 128;
      blocks_per_seg = 256;
      utilization = 0.85;
      pattern = Access.default_hot_cold;
      warmup_writes = 1_000_000;
      measured_writes = 300_000;
    }
  in
  let greedy =
    Sim.run { base with policy = { selection = Csim.Greedy; grouping = Csim.Age_sort } }
  in
  let cb =
    Sim.run
      { base with policy = { selection = Csim.Cost_benefit; grouping = Csim.Age_sort } }
  in
  Alcotest.(check bool)
    (Printf.sprintf "cost-benefit (%.2f) < greedy (%.2f)" cb.Sim.write_cost
       greedy.Sim.write_cost)
    true
    (cb.Sim.write_cost < greedy.Sim.write_cost)

let test_sim_histograms_populated () =
  let r = Sim.run { small with utilization = 0.7 } in
  Alcotest.(check bool) "cleaner histogram has samples" true
    (Lfs_util.Histogram.total r.Sim.cleaner_histogram > 0.0);
  Alcotest.(check bool) "final histogram has samples" true
    (Lfs_util.Histogram.total r.Sim.final_histogram > 0.0)

let test_sim_avg_cleaned_u_bounds () =
  let r = Sim.run { small with utilization = 0.75 } in
  Alcotest.(check bool) "in [0,1]" true
    (r.Sim.avg_cleaned_u >= 0.0 && r.Sim.avg_cleaned_u <= 1.0);
  (* Variance means victims are cleaner than the disk average. *)
  Alcotest.(check bool) "below overall utilisation + margin" true
    (r.Sim.avg_cleaned_u < 0.95)

let test_sim_rejects_impossible_utilization () =
  match Sim.run { small with utilization = 0.99 } with
  | _ -> Alcotest.fail "should reject"
  | exception Invalid_argument _ -> ()

let test_sweep_is_ordered () =
  let results = Sim.sweep_utilization ~points:3 ~lo:0.2 ~hi:0.6 small in
  let us = List.map fst results in
  Alcotest.(check (list (float 1e-9))) "x axis" [ 0.2; 0.4; 0.6 ] us

let suite =
  ( "sim",
    [
      Alcotest.test_case "write-cost formula" `Quick test_formula;
      Alcotest.test_case "formula series" `Quick test_formula_series;
      Alcotest.test_case "uniform covers" `Quick test_access_uniform_covers;
      Alcotest.test_case "hot-cold bias" `Quick test_access_hot_cold_bias;
      Alcotest.test_case "write cost reasonable" `Quick test_sim_write_cost_reasonable;
      Alcotest.test_case "low utilisation cheap" `Quick test_sim_low_utilization_cheap;
      Alcotest.test_case "cost rises with utilisation" `Quick
        test_sim_cost_increases_with_utilization;
      Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
      Alcotest.test_case "seed sensitivity" `Quick test_sim_seed_changes_result;
      Alcotest.test_case "cost-benefit beats greedy" `Slow
        test_sim_cost_benefit_beats_greedy_hot_cold;
      Alcotest.test_case "histograms populated" `Quick test_sim_histograms_populated;
      Alcotest.test_case "avg cleaned u bounds" `Quick test_sim_avg_cleaned_u_bounds;
      Alcotest.test_case "impossible utilisation" `Quick
        test_sim_rejects_impossible_utilization;
      Alcotest.test_case "sweep ordered" `Quick test_sweep_is_ordered;
    ] )
