examples/nvram_buffer.ml: Bytes Format Lfs_core Lfs_disk List Printf
