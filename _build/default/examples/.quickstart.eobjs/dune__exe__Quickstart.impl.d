examples/quickstart.ml: Bytes Format Lfs_core Lfs_disk List Option Printf String
