examples/crash_recovery.ml: Bytes Lfs_core Lfs_disk Option Printf
