examples/nvram_buffer.mli:
