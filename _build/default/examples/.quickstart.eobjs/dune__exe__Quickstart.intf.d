examples/quickstart.mli:
