examples/office_workload.mli:
