examples/cleaner_tuning.ml: Array Bytes Lfs_core Lfs_disk Lfs_util List Printf String
