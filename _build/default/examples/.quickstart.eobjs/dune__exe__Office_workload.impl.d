examples/office_workload.ml: Bytes Lfs_disk Lfs_workload Option Printf
