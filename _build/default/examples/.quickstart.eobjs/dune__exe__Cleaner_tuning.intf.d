examples/cleaner_tuning.mli:
