module Codec = Lfs_util.Bytes_codec

type t = (string * Types.ino) list
(* Insertion order preserved; lookups are linear, which is fine for the
   directory sizes in the paper's workloads (Sprite LFS did the same). *)

let max_name = 255

let empty = []

let check_name name =
  let n = String.length name in
  if n = 0 then Types.fs_error "empty file name";
  if n > max_name then Types.fs_error "file name longer than %d bytes" max_name;
  String.iter
    (fun ch ->
      if ch = '/' || ch = '\000' then
        Types.fs_error "file name %S contains '/' or NUL" name)
    name

let of_bytes b =
  try
    let c = Codec.reader b in
    let n = Codec.get_u32 c in
    if n > Bytes.length b then
      Types.corrupt "directory: impossible entry count %d" n;
    List.init n (fun _ ->
        let name = Codec.get_string c in
        let ino = Codec.get_u32 c in
        (name, ino))
  with Codec.Overflow msg -> Types.corrupt "directory: truncated (%s)" msg

let to_bytes t =
  let size =
    4 + List.fold_left (fun acc (name, _) -> acc + 2 + String.length name + 4) 0 t
  in
  let b = Bytes.make size '\000' in
  let c = Codec.writer b in
  Codec.put_u32 c (List.length t);
  List.iter
    (fun (name, ino) ->
      Codec.put_string c name;
      Codec.put_u32 c ino)
    t;
  b

let is_empty t = t = []
let cardinal = List.length
let find t name = List.assoc_opt name t
let mem t name = List.mem_assoc name t

let add t name ino =
  check_name name;
  if mem t name then Types.fs_error "name %S already exists" name;
  t @ [ (name, ino) ]

let remove t name =
  if not (mem t name) then Types.fs_error "no such entry %S" name;
  List.filter (fun (n, _) -> n <> name) t

let replace t name ino =
  check_name name;
  if mem t name then
    List.map (fun (n, i) -> if n = name then (n, ino) else (n, i)) t
  else t @ [ (name, ino) ]

let entries t = t
