module Codec = Lfs_util.Bytes_codec
module Checksum = Lfs_util.Checksum

type entry = {
  kind : Types.block_kind;
  ino : Types.ino;
  blockno : int;
  version : int;
  mtime : float;
}

type t = {
  seq : int;
  seg : int;
  slot : int;
  next_seg : int;
  timestamp : float;
  payload_sum : int;
  entries : entry list;
}

let magic = 0x5355_4D31 (* "SUM1" *)
let header_size = 64
let entry_size = 25

let max_entries ~block_size = (block_size - header_size) / entry_size

let encode ~block_size t =
  let n = List.length t.entries in
  if n > max_entries ~block_size then
    invalid_arg
      (Printf.sprintf "Summary.encode: %d entries exceed capacity %d" n
         (max_entries ~block_size));
  let b = Bytes.make block_size '\000' in
  let c = Codec.at b 8 in
  Codec.put_u32 c magic;
  Codec.put_u32 c t.seq;
  Codec.put_u32 c t.seg;
  Codec.put_u32 c t.slot;
  Codec.put_int c t.next_seg;
  Codec.put_float c t.timestamp;
  Codec.put_u32 c t.payload_sum;
  Codec.put_u32 c n;
  Codec.seek c header_size;
  List.iter
    (fun e ->
      Codec.put_u8 c (Types.block_kind_to_int e.kind);
      Codec.put_u32 c e.ino;
      Codec.put_int c e.blockno;
      Codec.put_u32 c e.version;
      Codec.put_float c e.mtime)
    t.entries;
  let sum = Int32.to_int (Checksum.adler32 ~pos:8 b) land 0xffffffff in
  let c0 = Codec.writer b in
  Codec.put_u32 c0 sum;
  Codec.put_u32 c0 0;
  b

let decode b =
  let c0 = Codec.reader b in
  let stored = Codec.get_u32 c0 in
  let _pad = Codec.get_u32 c0 in
  let sum = Int32.to_int (Checksum.adler32 ~pos:8 b) land 0xffffffff in
  if stored <> sum then None
  else begin
    let c = Codec.at b 8 in
    let m = Codec.get_u32 c in
    if m <> magic then None
    else begin
      let seq = Codec.get_u32 c in
      let seg = Codec.get_u32 c in
      let slot = Codec.get_u32 c in
      let next_seg = Codec.get_int c in
      let timestamp = Codec.get_float c in
      let payload_sum = Codec.get_u32 c in
      let n = Codec.get_u32 c in
      if n > max_entries ~block_size:(Bytes.length b) then None
      else begin
        Codec.seek c header_size;
        let entries =
          List.init n (fun _ ->
              let kind = Types.block_kind_of_int (Codec.get_u8 c) in
              let ino = Codec.get_u32 c in
              let blockno = Codec.get_int c in
              let version = Codec.get_u32 c in
              let mtime = Codec.get_float c in
              { kind; ino; blockno; version; mtime })
        in
        Some { seq; seg; slot; next_seg; timestamp; payload_sum; entries }
      end
    end
  end

let payload_checksum payload =
  Int32.to_int (Checksum.adler32 payload) land 0xffffffff

let entry_addr t layout i = Layout.seg_first_block layout t.seg + t.slot + 1 + i

let next_slot t = t.slot + 1 + List.length t.entries
