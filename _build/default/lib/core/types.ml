type ino = int
type baddr = int

let nil_addr = -1
let root_ino = 1

module Iaddr = struct
  type t = int

  (* block * 256 + slot; slots per block are bounded by block_size /
     inode_size which is well under 256 for any sane geometry. *)
  let slots_shift = 8
  let nil = -1
  let is_nil t = t < 0
  let make ~block ~slot =
    assert (slot >= 0 && slot < 1 lsl slots_shift);
    (block lsl slots_shift) lor slot

  let block t = t lsr slots_shift
  let slot t = t land ((1 lsl slots_shift) - 1)
  let to_int t = t
  let of_int i = i
  let equal = Int.equal

  let pp ppf t =
    if is_nil t then Format.pp_print_string ppf "<nil>"
    else Format.fprintf ppf "%d.%d" (block t) (slot t)
end

type block_kind =
  | Data
  | Indirect
  | Dindirect
  | Inode_block
  | Imap
  | Seg_usage
  | Summary
  | Dir_log

let block_kind_to_int = function
  | Data -> 0
  | Indirect -> 1
  | Dindirect -> 2
  | Inode_block -> 3
  | Imap -> 4
  | Seg_usage -> 5
  | Summary -> 6
  | Dir_log -> 7

let block_kind_of_int = function
  | 0 -> Data
  | 1 -> Indirect
  | 2 -> Dindirect
  | 3 -> Inode_block
  | 4 -> Imap
  | 5 -> Seg_usage
  | 6 -> Summary
  | 7 -> Dir_log
  | n -> invalid_arg (Printf.sprintf "block_kind_of_int: %d" n)

let block_kind_name = function
  | Data -> "data"
  | Indirect -> "indirect"
  | Dindirect -> "dindirect"
  | Inode_block -> "inode"
  | Imap -> "imap"
  | Seg_usage -> "seg-usage"
  | Summary -> "summary"
  | Dir_log -> "dir-log"

let all_block_kinds =
  [ Data; Indirect; Dindirect; Inode_block; Imap; Seg_usage; Summary; Dir_log ]

type ftype = Regular | Directory

let ftype_to_int = function Regular -> 0 | Directory -> 1

let ftype_of_int = function
  | 0 -> Regular
  | 1 -> Directory
  | n -> invalid_arg (Printf.sprintf "ftype_of_int: %d" n)

exception Corrupt of string
exception Fs_error of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt
let fs_error fmt = Format.kasprintf (fun s -> raise (Fs_error s)) fmt
