(** Disk layout computed from a {!Config.t} and the disk size.

    {v
    block 0        : superblock (fixed)
    1 .. c         : checkpoint region A (fixed, c = ckpt_blocks)
    1+c .. 1+2c    : checkpoint region B (fixed)
    seg_start ...  : nsegs segments of seg_blocks blocks each (the log)
    v}

    Everything else — inodes, inode map, segment usage table, directory
    log — lives inside the log, exactly as in Table 1 of the paper. *)

type t = {
  block_size : int;
  seg_blocks : int;
  max_inodes : int;
  nsegs : int;
  seg_start : int;        (** first block of segment 0 *)
  ckpt_blocks : int;      (** blocks per checkpoint region *)
  ckpt_a : int;           (** first block of region A *)
  ckpt_b : int;           (** first block of region B *)
  imap_blocks : int;      (** blocks needed by the whole inode map *)
  usage_blocks : int;     (** blocks needed by the whole usage table *)
  inode_size : int;       (** bytes per on-disk inode *)
  inodes_per_block : int;
  imap_entries_per_block : int;
  usage_entries_per_block : int;
  addrs_per_block : int;  (** pointers per indirect block *)
}

val compute : Config.t -> disk_blocks:int -> t
(** Derive the layout; validates the configuration against the disk. *)

val seg_first_block : t -> int -> int
(** [seg_first_block l s] is the disk address of the first block of
    segment [s]. *)

val seg_of_block : t -> int -> int
(** Segment containing disk block [addr]; -1 for the fixed area. *)

val max_file_blocks : t -> int
(** Largest file representable: 10 direct + single + double indirect. *)

val pp : Format.formatter -> t -> unit
