type t = {
  block_size : int;
  seg_blocks : int;
  max_inodes : int;
  nsegs : int;
  seg_start : int;
  ckpt_blocks : int;
  ckpt_a : int;
  ckpt_b : int;
  imap_blocks : int;
  usage_blocks : int;
  inode_size : int;
  inodes_per_block : int;
  imap_entries_per_block : int;
  usage_entries_per_block : int;
  addrs_per_block : int;
}

let inode_size = 128
let imap_entry_size = 24
let usage_entry_size = 16
let ckpt_header_size = 96

let cdiv a b = (a + b - 1) / b

let compute (c : Config.t) ~disk_blocks =
  Config.validate c ~disk_blocks;
  let block_size = c.Config.block_size in
  let imap_entries_per_block = block_size / imap_entry_size in
  let usage_entries_per_block = block_size / usage_entry_size in
  let imap_blocks = cdiv c.Config.max_inodes imap_entries_per_block in
  (* Upper bound on segments, used to size the usage table; the real
     count is computed below and can only be smaller. *)
  let nsegs_bound = disk_blocks / c.Config.seg_blocks in
  let usage_blocks = cdiv nsegs_bound usage_entries_per_block in
  let ckpt_payload = ckpt_header_size + ((imap_blocks + usage_blocks) * 8) in
  let ckpt_blocks = cdiv ckpt_payload block_size in
  let seg_start = 1 + (2 * ckpt_blocks) in
  let nsegs = (disk_blocks - seg_start) / c.Config.seg_blocks in
  if nsegs < c.Config.clean_stop + 2 then
    invalid_arg
      (Printf.sprintf
         "Layout.compute: only %d segments fit after the fixed area; need %d"
         nsegs (c.Config.clean_stop + 2));
  {
    block_size;
    seg_blocks = c.Config.seg_blocks;
    max_inodes = c.Config.max_inodes;
    nsegs;
    seg_start;
    ckpt_blocks;
    ckpt_a = 1;
    ckpt_b = 1 + ckpt_blocks;
    imap_blocks;
    usage_blocks;
    inode_size;
    inodes_per_block = block_size / inode_size;
    imap_entries_per_block;
    usage_entries_per_block;
    addrs_per_block = block_size / 8;
  }

let seg_first_block t s =
  assert (s >= 0 && s < t.nsegs);
  t.seg_start + (s * t.seg_blocks)

let seg_of_block t addr =
  if addr < t.seg_start then -1 else (addr - t.seg_start) / t.seg_blocks

let max_file_blocks t =
  10 + t.addrs_per_block + (t.addrs_per_block * t.addrs_per_block)

let pp ppf t =
  Format.fprintf ppf
    "layout: %d segs x %d blk (start %d), ckpt %d+%d blk @ %d/%d, imap %d blk, usage %d blk"
    t.nsegs t.seg_blocks t.seg_start t.ckpt_blocks t.ckpt_blocks t.ckpt_a
    t.ckpt_b t.imap_blocks t.usage_blocks
