(** Offline consistency checker.

    Walks the mounted file system and validates every cross-structure
    invariant; used heavily by the test suite (after random operation
    sequences, cleaning and crash recovery) to prove that the accounting
    the cleaner depends on is exact.

    Checks:
    - every allocated inode decodes and carries its own number;
    - the directory tree is acyclic from the root, every allocated inode
      is reachable, and reference counts equal the number of directory
      entries naming the inode;
    - directory payloads parse;
    - file sizes bound their block maps;
    - no two live blocks share a disk address, and live blocks lie inside
      the log area;
    - the segment usage table's live-byte counts exactly match a
      recomputation from the reachable structures. *)

type report = {
  errors : string list;
  files : int;
  directories : int;
  live_data_blocks : int;
  live_indirect_blocks : int;
}

val check : Fs.t -> report
(** Flushes, then validates.  [report.errors = []] means consistent. *)

val is_clean : report -> bool
val pp_report : Format.formatter -> report -> unit
