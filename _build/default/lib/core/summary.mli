(** Segment summary blocks (Section 3.2).

    Each log write (a whole or partial segment) is preceded by a summary
    block identifying every block of the write: kind, owning file and
    position, and the file's uid version so the cleaner can discard dead
    blocks without reading inodes.  Summaries also carry the write
    sequence number and a pointer to the next segment in the log thread,
    which is what lets crash recovery follow the log past the last
    checkpoint, and a checksum over the payload so torn writes are
    detected and ignored. *)

type entry = {
  kind : Types.block_kind;
  ino : Types.ino;   (** owning file; 0 for imap/usage/dir-log blocks *)
  blockno : int;
      (** file block number for data; {!Filemap} sentinel for indirect
          blocks; table index for imap/usage blocks; 0 otherwise *)
  version : int;     (** uid version of the owning file at write time *)
  mtime : float;     (** modify time of the block's data *)
}

type t = {
  seq : int;          (** global log-write sequence number *)
  seg : int;          (** segment this summary lives in *)
  slot : int;         (** block offset of the summary within the segment *)
  next_seg : int;     (** reserved successor segment of the log thread *)
  timestamp : float;
  payload_sum : int;  (** Adler-32 of the payload blocks that follow *)
  entries : entry list;
}

val max_entries : block_size:int -> int
(** How many payload blocks one summary block can describe. *)

val encode : block_size:int -> t -> bytes
(** Raises [Invalid_argument] if there are more entries than
    {!max_entries}. *)

val decode : bytes -> t option
(** [None] when the block is not a valid summary (bad magic or header
    checksum) — the normal way a log scan terminates. *)

val payload_checksum : bytes -> int
(** Checksum to store in / compare against [payload_sum]. *)

val entry_addr : t -> Layout.t -> int -> Types.baddr
(** Disk address of payload block [i] of this summary. *)

val next_slot : t -> int
(** Segment slot just past this write ([slot + 1 + entries]). *)
