type record =
  | Create of { dir : Types.ino; name : string; ino : Types.ino }
  | Mkdir of { dir : Types.ino; name : string; ino : Types.ino }
  | Link of { dir : Types.ino; name : string; ino : Types.ino }
  | Unlink of { dir : Types.ino; name : string; ino : Types.ino }
  | Rmdir of { dir : Types.ino; name : string; ino : Types.ino }
  | Rename of {
      odir : Types.ino;
      oname : string;
      ndir : Types.ino;
      nname : string;
      ino : Types.ino;
    }
  | Write of { ino : Types.ino; off : int; data : bytes }
  | Truncate of { ino : Types.ino; len : int }

type t = {
  capacity : int;
  mutable rev_records : record list;
  mutable used : int;
}

let header_bytes = 16

let record_bytes = function
  | Create { name; _ } | Mkdir { name; _ } | Link { name; _ }
  | Unlink { name; _ } | Rmdir { name; _ } ->
      header_bytes + String.length name
  | Rename { oname; nname; _ } ->
      header_bytes + String.length oname + String.length nname
  | Write { data; _ } -> header_bytes + Bytes.length data
  | Truncate _ -> header_bytes

let create ?(capacity_bytes = 8 * 1024 * 1024) () =
  { capacity = capacity_bytes; rev_records = []; used = 0 }

let append t r =
  t.rev_records <- r :: t.rev_records;
  t.used <- t.used + record_bytes r

let records t = List.rev t.rev_records

let clear t =
  t.rev_records <- [];
  t.used <- 0

let used_bytes t = t.used
let capacity_bytes t = t.capacity
let is_full t = t.used >= t.capacity - 65536
