(** In-memory block map of one file, backed by the on-disk direct and
    indirect pointers.

    The map caches every (file block -> disk address) translation plus
    the addresses of the indirect blocks themselves.  Mutations dirty the
    affected indirect "chunk"; {!flush} rewrites exactly the dirty
    indirect blocks to the log (new copies — this is a no-overwrite file
    system) and updates the inode's pointers.

    Summary-block position encoding for indirect blocks (the [blockno]
    field of a summary entry): data blocks use their non-negative file
    block number; indirect blocks use negative sentinels so the cleaner
    can locate the parent pointer (see {!classify_sblockno}). *)

type t

val load : read:(Types.baddr -> bytes) -> Layout.t -> Inode.t -> t
(** Materialise the map by reading the file's indirect blocks. *)

val create_empty : Layout.t -> Inode.t -> t
(** Map for a freshly created (empty) file; reads nothing. *)

val get : t -> int -> Types.baddr
(** Disk address of file block [i]; {!Types.nil_addr} for holes. *)

val set : t -> int -> Types.baddr -> unit
(** Point file block [i] at a new disk address. *)

val mapped_blocks : t -> int
(** Upper bound on indices that may be non-nil. *)

val iter_mapped : t -> (int -> Types.baddr -> unit) -> unit
(** Visit every non-nil data-block mapping. *)

val indirect_blocks : t -> (int * Types.baddr) list
(** Current on-disk indirect blocks as [(sblockno, addr)] pairs. *)

val indirect_addr : t -> sblockno:int -> Types.baddr
(** On-disk address currently holding the given indirect position. *)

val mark_indirect_dirty : t -> sblockno:int -> unit
(** Force the given indirect block to be rewritten at next {!flush}
    (used by the cleaner to relocate live indirect blocks). *)

val truncate : t -> blocks:int -> free:(Types.baddr -> unit) -> unit
(** Drop all mappings at index >= [blocks], calling [free] on each
    released data block (indirect blocks are released at {!flush}). *)

val dirty : t -> bool

val flush :
  t ->
  Inode.t ->
  alloc:(kind:Types.block_kind -> blockno:int -> bytes -> Types.baddr) ->
  free:(Types.baddr -> unit) ->
  unit
(** Write dirty indirect blocks via [alloc] (oldest level first), free
    the superseded copies, and update the inode's [indirect] /
    [dindirect] pointers.  After [flush], [dirty t = false]. *)

(** {2 Summary-position encoding} *)

val sblockno_single : int
val sblockno_l2 : int
val sblockno_l1 : int -> int

val classify_sblockno : int -> [ `Data of int | `Single | `L2 | `L1 of int ]
