(** The inode map (Section 3.1).

    Maps each inode number to the current location of its inode in the
    log, a version number (incremented whenever the file is deleted or
    truncated to length zero — together with the inode number it forms
    the unique identifier the cleaner uses to discard dead blocks without
    reading inodes), and the time of last access.

    The map is divided into blocks written to the log; the checkpoint
    region records every block's address.  The whole map is kept in
    memory ("inode maps are compact enough to keep the active portions
    cached in main memory"). *)

type t

val create : Layout.t -> t
(** Fresh map: every inode free, all versions 0, all blocks dirty. *)

val load :
  Layout.t -> read:(Types.baddr -> bytes) -> block_addrs:Types.baddr array -> t
(** Rebuild from the blocks recorded in a checkpoint. *)

val max_inodes : t -> int

val location : t -> Types.ino -> Types.Iaddr.t
(** Current inode location; [Iaddr.nil] for free/deleted inodes. *)

val version : t -> Types.ino -> int
val atime : t -> Types.ino -> float

val is_allocated : t -> Types.ino -> bool

val set_location : t -> Types.ino -> Types.Iaddr.t -> unit
val set_atime : t -> Types.ino -> float -> unit

val allocate : t -> Types.ino
(** Pick a free inode number (lowest-numbered free slot, starting after
    the root).  Raises {!Types.Fs_error} when the map is full.  The slot
    remains free until {!set_location} is called. *)

val free : t -> Types.ino -> unit
(** Release the inode: location becomes nil and the version is bumped,
    invalidating the uid of every block the file owned. *)

val bump_version : t -> Types.ino -> unit
(** Version bump without freeing (truncate to length zero). *)

val block_of_ino : t -> Types.ino -> int
(** Which map block holds the entry for [ino]. *)

val block_addr : t -> int -> Types.baddr
(** Current log address of map block [i] (nil if never written). *)

val set_block_addr : t -> int -> Types.baddr -> unit
(** Used by recovery when relocating map blocks. *)

val nblocks : t -> int
val dirty_blocks : t -> int list
val mark_block_dirty : t -> int -> unit
val clear_block_dirty : t -> int -> unit

val encode_block : t -> int -> bytes
(** Serialise map block [i] (for writing to the log). *)

val flush :
  t -> write:(index:int -> bytes -> Types.baddr) -> free:(Types.baddr -> unit) -> unit
(** Write every dirty block via [write], free superseded copies, record
    the new addresses, and clear dirtiness. *)

val iter_allocated : t -> (Types.ino -> Types.Iaddr.t -> unit) -> unit
val count_allocated : t -> int
