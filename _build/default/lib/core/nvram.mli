(** A battery-backed operation journal.

    Section 2.1 of the paper: write-buffering trades crash-loss for
    throughput, and "for applications that require better crash
    recovery, non-volatile RAM may be used for the write buffer".  This
    module models that NVRAM as an ordered journal of logical operations
    that survives power loss independently of the disk; {!Nvram_fs}
    journals every mutation into it and replays the journal after
    roll-forward, eliminating the lost-seconds window entirely. *)

type record =
  | Create of { dir : Types.ino; name : string; ino : Types.ino }
  | Mkdir of { dir : Types.ino; name : string; ino : Types.ino }
  | Link of { dir : Types.ino; name : string; ino : Types.ino }
  | Unlink of { dir : Types.ino; name : string; ino : Types.ino }
  | Rmdir of { dir : Types.ino; name : string; ino : Types.ino }
  | Rename of {
      odir : Types.ino;
      oname : string;
      ndir : Types.ino;
      nname : string;
      ino : Types.ino;
    }
      (** [ino] identifies which incarnation the operation applied to,
          so replay never unlinks or moves a file re-created under the
          same name later in the journal *)
  | Write of { ino : Types.ino; off : int; data : bytes }
  | Truncate of { ino : Types.ino; len : int }

type t

val create : ?capacity_bytes:int -> unit -> t
(** Default capacity 8 MB — the paper-era size of an NVRAM card. *)

val append : t -> record -> unit
val records : t -> record list
(** Oldest first. *)

val clear : t -> unit
(** Called once the journalled operations are durable on disk. *)

val used_bytes : t -> int
val capacity_bytes : t -> int

val is_full : t -> bool
(** The next append may not fit: the caller should checkpoint the file
    system and {!clear}. *)

val record_bytes : record -> int
