(** Shared primitive types of the log-structured file system. *)

type ino = int
(** Inode number.  [root_ino] is the root directory; 0 is never used. *)

type baddr = int
(** Disk block address.  {!nil_addr} marks "no block". *)

val nil_addr : baddr
val root_ino : ino

(** Address of an inode *inside* an inode block: block address plus slot
    index.  Packed into a single int for the inode map. *)
module Iaddr : sig
  type t

  val nil : t
  val is_nil : t -> bool
  val make : block:baddr -> slot:int -> t
  val block : t -> baddr
  val slot : t -> int
  val to_int : t -> int
  val of_int : int -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** The kind of every block written to the log; recorded in segment
    summaries and used for the Table 4 bandwidth accounting. *)
type block_kind =
  | Data           (** file contents *)
  | Indirect       (** single-indirect pointer block *)
  | Dindirect      (** double-indirect pointer block *)
  | Inode_block    (** packed inodes *)
  | Imap           (** inode-map block *)
  | Seg_usage      (** segment-usage-table block *)
  | Summary        (** segment summary block *)
  | Dir_log        (** directory operation log block *)

val block_kind_to_int : block_kind -> int
val block_kind_of_int : int -> block_kind
(** Raises [Invalid_argument] on an unknown tag (corrupt summary). *)

val block_kind_name : block_kind -> string
val all_block_kinds : block_kind list

type ftype = Regular | Directory

val ftype_to_int : ftype -> int
val ftype_of_int : int -> ftype

exception Corrupt of string
(** Raised when an on-disk structure fails validation (bad magic,
    checksum mismatch, impossible field). *)

exception Fs_error of string
(** Raised on API misuse or unsatisfiable requests (no such file, disk
    full, name exists...). *)

val corrupt : ('a, Format.formatter, unit, 'b) format4 -> 'a
val fs_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
