(** Inodes.

    As in Unix FFS (Section 3.1), an inode holds the file's attributes
    and the disk addresses of its first ten blocks plus single- and
    double-indirect pointer blocks.  Unlike FFS, inodes have no fixed
    home: they are packed {!Layout.inodes_per_block} to a block and
    written to the log; the inode map tracks their current location.

    Each on-disk inode slot is self-describing (magic + inode number) so
    the segment cleaner can identify every inode in a relocated inode
    block without consulting anything else. *)

type t = {
  ino : Types.ino;
  mutable ftype : Types.ftype;
  mutable nlink : int;
  mutable size : int;          (** bytes *)
  mutable mtime : float;
  direct : Types.baddr array;  (** always length {!ndirect} *)
  mutable indirect : Types.baddr;
  mutable dindirect : Types.baddr;
}

val ndirect : int
(** Number of direct block pointers (10, as in the paper). *)

val create : ino:Types.ino -> ftype:Types.ftype -> mtime:float -> t
(** A fresh empty inode with [nlink = 1]. *)

val copy : t -> t

val nblocks : block_size:int -> t -> int
(** Number of data blocks implied by [size]. *)

val encode : t -> bytes -> slot:int -> unit
(** Serialise into slot [slot] of an inode block. *)

val decode : bytes -> slot:int -> t option
(** Read back slot [slot]; [None] if the slot is unused.  Raises
    {!Types.Corrupt} on a bad magic. *)

val clear_slot : bytes -> slot:int -> unit
(** Mark a slot unused. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
