(** The segment usage table (Section 3.6).

    For each segment: the number of live bytes and the most recent
    modified time of any block in the segment.  These two values drive
    the cost-benefit cleaning policy.  Blocks of the table are written to
    the log; their addresses are recorded in the checkpoint region.

    A segment whose live count reaches zero can be reused without
    cleaning — Sprite LFS has neither a free list nor a bitmap. *)

type t

val create : Layout.t -> t
(** All segments empty (zero live bytes, zero mtime). *)

val load :
  Layout.t -> read:(Types.baddr -> bytes) -> block_addrs:Types.baddr array -> t

val nsegs : t -> int

val live_bytes : t -> int -> int
val mtime : t -> int -> float

val utilization : t -> int -> float
(** live bytes / segment capacity, in [\[0, 1\]]. *)

val add_live : t -> int -> bytes:int -> mtime:float -> unit
(** Blocks written into the segment: raise the live count and refresh the
    segment's youngest-data time. *)

val kill : t -> int -> bytes:int -> unit
(** Blocks overwritten or deleted: drop the live count. *)

val set_clean : t -> int -> unit
(** Force a segment empty (after cleaning). *)

val is_clean : t -> int -> bool
val clean_count : t -> int

val clean_segments : t -> int list
(** All currently-clean segments, ascending. *)

val dirty_segments : t -> int list
(** Segments with live data, ascending. *)

val block_addr : t -> int -> Types.baddr
val set_block_addr : t -> int -> Types.baddr -> unit
val nblocks : t -> int
val block_of_seg : t -> int -> int
val mark_block_dirty : t -> int -> unit
val clear_block_dirty : t -> int -> unit
val dirty_blocks : t -> int list
val encode_block : t -> int -> bytes

val flush :
  t -> write:(index:int -> bytes -> Types.baddr) -> free:(Types.baddr -> unit) -> unit

val utilization_histogram : t -> bins:int -> exclude:(int -> bool) -> Lfs_util.Histogram.t
(** Distribution of per-segment utilisation (Figures 5, 6, 10), skipping
    segments for which [exclude] is true (e.g. the segment being written). *)
