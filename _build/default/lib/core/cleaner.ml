type candidate = { seg : int; u : float; age : float }

let benefit_cost c = (1.0 -. c.u) *. c.age /. (1.0 +. c.u)

let take n l =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

let select ~policy ?rand ~candidates ~count () =
  let empty, nonempty = List.partition (fun c -> c.u = 0.0) candidates in
  let ordered =
    match policy with
    | Config.Greedy ->
        List.stable_sort (fun a b -> compare a.u b.u) nonempty
    | Config.Cost_benefit ->
        List.stable_sort
          (fun a b -> compare (benefit_cost b) (benefit_cost a))
          nonempty
    | Config.Age_only ->
        List.stable_sort (fun a b -> compare b.age a.age) nonempty
    | Config.Random_victim ->
        let rand =
          match rand with
          | Some r -> r
          | None -> invalid_arg "Cleaner.select: Random_victim needs ~rand"
        in
        let arr = Array.of_list nonempty in
        for i = Array.length arr - 1 downto 1 do
          let j = rand (i + 1) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp
        done;
        Array.to_list arr
  in
  take count (List.map (fun c -> c.seg) (empty @ ordered))

let order_for_grouping ~grouping pairs =
  match grouping with
  | Config.In_order -> List.map fst pairs
  | Config.Age_sort ->
      List.map fst
        (List.stable_sort (fun (_, a) (_, b) -> compare b a) pairs)
